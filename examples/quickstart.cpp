// Quickstart: a parallel sum in the View-Oriented Parallel Programming
// style, run on a simulated 8-node cluster under the VC_sd runtime.
//
//   $ ./quickstart
//
// Each node owns a slice of a big array (its own view), computes a partial
// sum locally, and folds it into a shared accumulator view. Node 0 then
// reads the result under an Rview. Compare the printed statistics with what
// the same program does under LRC_d and VC_d.
#include <cstdio>
#include <numeric>

#include "vopp/cluster.hpp"

using namespace vodsm;

namespace {

constexpr int kProcs = 8;
constexpr size_t kIntsPerNode = 4096;

double runOnce(dsm::Protocol proto) {
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = proto});

  // One data view per node plus one accumulator view.
  std::vector<dsm::ViewId> data;
  for (int i = 0; i < kProcs; ++i)
    data.push_back(cluster.defineView(kIntsPerNode * sizeof(int)));
  dsm::ViewId acc = cluster.defineView(sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    // 1. Fill my slice (exclusive view access).
    dsm::ViewId mine = data[static_cast<size_t>(node.id())];
    size_t off = node.cluster().viewOffset(mine);
    co_await node.acquireView(mine);
    co_await node.touchWrite(off, kIntsPerNode * sizeof(int));
    auto* p = reinterpret_cast<int*>(
        node.mem(off, kIntsPerNode * sizeof(int)).data());
    for (size_t i = 0; i < kIntsPerNode; ++i)
      p[i] = node.id() * 1000 + static_cast<int>(i % 7);
    node.chargeOps(kIntsPerNode, 20);
    co_await node.releaseView(mine);

    // 2. Partial sum, then fold into the shared accumulator.
    int64_t partial = std::accumulate(p, p + kIntsPerNode, int64_t{0});
    node.chargeOps(kIntsPerNode, 20);
    size_t aoff = node.cluster().viewOffset(acc);
    co_await node.acquireView(acc);
    co_await node.touchWrite(aoff, sizeof(int64_t));
    *reinterpret_cast<int64_t*>(node.mem(aoff, 8).data()) += partial;
    co_await node.releaseView(acc);

    // 3. Node 0 reads the total (concurrent read access).
    co_await node.barrier();
    if (node.id() == 0) {
      co_await node.acquireRview(acc);
      co_await node.touchRead(aoff, sizeof(int64_t));
      int64_t total =
          *reinterpret_cast<const int64_t*>(node.memView(aoff, 8).data());
      std::printf("  total = %lld\n", static_cast<long long>(total));
      co_await node.releaseRview(acc);
    }
    co_await node.barrier();
  });

  auto stats = cluster.dsmStats();
  std::printf(
      "  %-6s time=%.4fs acquires=%llu messages=%llu data=%.1fKB "
      "diff_requests=%llu\n",
      dsm::protocolName(proto).c_str(), cluster.seconds(),
      static_cast<unsigned long long>(stats.acquires),
      static_cast<unsigned long long>(cluster.netStats().messages),
      static_cast<double>(cluster.netStats().payload_bytes) / 1024.0,
      static_cast<unsigned long long>(stats.diff_requests));
  return cluster.seconds();
}

}  // namespace

int main() {
  std::printf("VOPP parallel sum on %d simulated nodes:\n", kProcs);
  for (auto proto : {dsm::Protocol::kLrcDiff, dsm::Protocol::kVcDiff,
                     dsm::Protocol::kVcSd})
    runOnce(proto);
  std::printf(
      "\nNote how VC_sd issues zero diff requests: every view grant arrives\n"
      "with one integrated diff per stale page (the paper's key idea).\n");
  return 0;
}
