// Protocol face-off: run the paper's four applications on all three DSM
// runtimes (plus MPI for NN) at a chosen processor count and print a
// side-by-side comparison — a one-screen summary of the paper's evaluation.
//
//   $ ./protocol_faceoff [nprocs]
#include <cstdio>
#include <string>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "support/table.hpp"

using namespace vodsm;

namespace {

harness::RunConfig cfg(dsm::Protocol proto, int procs) {
  harness::RunConfig c;
  c.protocol = proto;
  c.nprocs = procs;
  return c;
}

void report(TextTable& t, const std::string& app, const std::string& runtime,
            const harness::RunResult& r, bool ok) {
  t.row({app, runtime, TextTable::format(r.seconds),
         TextTable::format(r.dataMBytes()), TextTable::format(r.net.messages),
         TextTable::format(r.dsm.diff_requests), ok ? "ok" : "MISMATCH"});
}

}  // namespace

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::stoi(argv[1]) : 8;
  std::printf("Running IS, Gauss, SOR and NN on %d simulated nodes...\n\n",
              procs);

  TextTable t;
  t.header({"app", "runtime", "time(s)", "data(MB)", "msgs", "diffreq",
            "result"});

  {
    apps::IsParams p;
    p.n_keys = 1 << 16;
    p.max_key = (1 << 12) - 1;
    p.iterations = 5;
    auto serial = apps::isSerialRankSums(p, procs);
    auto lrc = apps::runIs(cfg(dsm::Protocol::kLrcDiff, procs), p,
                           apps::IsVariant::kTraditional);
    report(t, "IS", "LRC_d (traditional)", lrc.result, lrc.rank_sums == serial);
    auto vcd = apps::runIs(cfg(dsm::Protocol::kVcDiff, procs), p,
                           apps::IsVariant::kVopp);
    report(t, "IS", "VC_d  (VOPP)", vcd.result, vcd.rank_sums == serial);
    auto vcsd = apps::runIs(cfg(dsm::Protocol::kVcSd, procs), p,
                            apps::IsVariant::kVoppFewerBarriers);
    report(t, "IS", "VC_sd (VOPP, lb)", vcsd.result, vcsd.rank_sums == serial);
  }
  {
    apps::GaussParams p;
    p.n = 128;
    double serial = apps::gaussSerialChecksum(p);
    auto lrc = apps::runGauss(cfg(dsm::Protocol::kLrcDiff, procs), p,
                              apps::GaussVariant::kTraditional);
    report(t, "Gauss", "LRC_d (traditional)", lrc.result,
           lrc.checksum == serial);
    auto vcsd = apps::runGauss(cfg(dsm::Protocol::kVcSd, procs), p,
                               apps::GaussVariant::kVopp);
    report(t, "Gauss", "VC_sd (VOPP)", vcsd.result, vcsd.checksum == serial);
  }
  {
    apps::SorParams p;
    p.rows = 128;
    p.cols = 128;
    p.iterations = 8;
    double serial = apps::sorSerialChecksum(p);
    auto lrc = apps::runSor(cfg(dsm::Protocol::kLrcDiff, procs), p,
                            apps::SorVariant::kTraditional);
    report(t, "SOR", "LRC_d (traditional)", lrc.result, lrc.checksum == serial);
    auto vcsd = apps::runSor(cfg(dsm::Protocol::kVcSd, procs), p,
                             apps::SorVariant::kVopp);
    report(t, "SOR", "VC_sd (VOPP)", vcsd.result, vcsd.checksum == serial);
  }
  {
    apps::NnParams p;
    p.samples = 128;
    p.epochs = 6;
    double serial = apps::nnSerialChecksum(p, procs);
    auto lrc = apps::runNn(cfg(dsm::Protocol::kLrcDiff, procs), p,
                           apps::NnVariant::kTraditional);
    report(t, "NN", "LRC_d (traditional)", lrc.result, lrc.checksum == serial);
    auto vcsd = apps::runNn(cfg(dsm::Protocol::kVcSd, procs), p,
                            apps::NnVariant::kVopp);
    report(t, "NN", "VC_sd (VOPP)", vcsd.result, vcsd.checksum == serial);
    auto mpi =
        apps::runNn(cfg(dsm::Protocol::kVcSd, procs), p, apps::NnVariant::kMpi);
    report(t, "NN", "MPI", mpi.result, mpi.checksum == serial);
  }

  t.print(std::cout);
  std::printf(
      "\nEvery run is validated against the serial reference ('result' "
      "column).\n");
  return 0;
}
