// Heat diffusion on a 2-D plate — the SOR workload from the paper's
// evaluation, written directly against the VOPP API.
//
//   $ ./heat_diffusion [nprocs]
//
// A hot spot in the middle of a cold plate diffuses over 40 red-black SOR
// iterations. Each node keeps its row block in a local buffer and exchanges
// only border rows through small parity-alternating views (the paper's
// Section 3.3 conversion). Prints the temperature profile along the middle
// column and the communication statistics under VC_sd.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vopp/cluster.hpp"

using namespace vodsm;

namespace {
constexpr size_t kRows = 96;
constexpr size_t kCols = 96;
constexpr int kIters = 40;
constexpr double kOmega = 1.6;
}  // namespace

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::stoi(argv[1]) : 8;
  vopp::Cluster cluster({.nprocs = procs, .protocol = dsm::Protocol::kVcSd});

  auto rowLo = [&](int p) {
    return static_cast<size_t>(p) * kRows / static_cast<size_t>(procs);
  };
  auto rowHi = [&](int p) { return rowLo(p + 1); };
  const size_t row_bytes = kCols * sizeof(double);

  // Block views (initial distribution / final collection) and border views.
  std::vector<dsm::ViewId> blocks;
  std::vector<std::array<dsm::ViewId, 2>> borders;
  for (int p = 0; p < procs; ++p)
    blocks.push_back(
        cluster.defineView((rowHi(p) - rowLo(p)) * row_bytes, p));
  for (int p = 0; p < procs; ++p)
    borders.push_back({cluster.defineView(2 * row_bytes, p),
                       cluster.defineView(2 * row_bytes, p)});

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    const int pid = node.id();
    const size_t lo = rowLo(pid), hi = rowHi(pid), mine = hi - lo;

    // Local buffer with ghost rows; hot spot at the plate centre.
    std::vector<double> buf((mine + 2) * kCols, 0.0);
    auto row = [&](size_t i) { return buf.data() + (i - lo + 1) * kCols; };
    for (size_t i = lo; i < hi; ++i)
      if (i == kRows / 2) row(i)[kCols / 2] = 1000.0;

    int parity = 0;
    for (int it = 0; it < kIters; ++it) {
      for (int color = 0; color < 2; ++color) {
        // Publish my border rows.
        dsm::ViewId bv = borders[static_cast<size_t>(pid)]
                                [static_cast<size_t>(parity)];
        co_await node.acquireView(bv);
        size_t boff = node.cluster().viewOffset(bv);
        co_await node.copyIn(boff,
                             ByteSpan(reinterpret_cast<std::byte*>(row(lo)),
                                      row_bytes));
        co_await node.copyIn(boff + row_bytes,
                             ByteSpan(reinterpret_cast<std::byte*>(row(hi - 1)),
                                      row_bytes));
        co_await node.releaseView(bv);
        co_await node.barrier();

        // Fetch the neighbours' adjacent rows into my ghost rows.
        if (pid > 0) {
          dsm::ViewId nb = borders[static_cast<size_t>(pid - 1)]
                                  [static_cast<size_t>(parity)];
          co_await node.acquireRview(nb);
          co_await node.copyOut(node.cluster().viewOffset(nb) + row_bytes,
                                MutByteSpan(reinterpret_cast<std::byte*>(
                                                buf.data()),
                                            row_bytes));
          co_await node.releaseRview(nb);
        }
        if (pid < procs - 1) {
          dsm::ViewId nb = borders[static_cast<size_t>(pid + 1)]
                                  [static_cast<size_t>(parity)];
          co_await node.acquireRview(nb);
          co_await node.copyOut(node.cluster().viewOffset(nb),
                                MutByteSpan(reinterpret_cast<std::byte*>(
                                                row(hi)),
                                            row_bytes));
          co_await node.releaseRview(nb);
        }

        // Relax my rows (skip the plate boundary and keep the source hot).
        for (size_t i = std::max(lo, size_t{1});
             i < std::min(hi, kRows - 1); ++i) {
          double* r = row(i);
          const double* up = r - kCols;
          const double* dn = r + kCols;
          for (size_t j = 1 + ((i + 1 + static_cast<size_t>(color)) % 2);
               j + 1 < kCols; j += 2) {
            if (i == kRows / 2 && j == kCols / 2) continue;
            r[j] = (1 - kOmega) * r[j] +
                   kOmega * 0.25 * (up[j] + dn[j] + r[j - 1] + r[j + 1]);
          }
        }
        node.chargeOps(mine * kCols * 2, 60);
        parity ^= 1;
      }
    }

    // Collect the final plate at node 0.
    dsm::ViewId minev = blocks[static_cast<size_t>(pid)];
    co_await node.acquireView(minev);
    co_await node.copyIn(node.cluster().viewOffset(minev),
                         ByteSpan(reinterpret_cast<std::byte*>(row(lo)),
                                  mine * row_bytes));
    co_await node.releaseView(minev);
    co_await node.barrier();
    if (pid == 0) {
      std::printf("temperature along the middle column after %d iterations:\n",
                  kIters);
      for (int p = 0; p < procs; ++p) {
        dsm::ViewId v = blocks[static_cast<size_t>(p)];
        size_t rows = rowHi(p) - rowLo(p);
        co_await node.acquireRview(v);
        size_t off = node.cluster().viewOffset(v);
        co_await node.touchRead(off, rows * row_bytes);
        auto* m = reinterpret_cast<const double*>(
            node.memView(off, rows * row_bytes).data());
        for (size_t i = 0; i < rows; i += 4) {
          double t = m[i * kCols + kCols / 2];
          int bar = static_cast<int>(t / 4);
          static const char kBar[] =
              "############################################################";
          std::printf("  row %3zu | %-60.*s %.1f\n", rowLo(p) + i,
                      std::min(bar, 60), kBar, t);
        }
        co_await node.releaseRview(v);
      }
    }
    co_await node.barrier();
  });

  std::printf("\nsimulated time: %.3fs on %d nodes (VC_sd), %llu messages, "
              "%.1f KB over the wire\n",
              cluster.seconds(), procs,
              static_cast<unsigned long long>(cluster.netStats().messages),
              static_cast<double>(cluster.netStats().payload_bytes) / 1024.0);
  return 0;
}
