// vodsm_run — command-line experiment runner.
//
// Run any of the paper's applications on any runtime with explicit
// parameters and get the paper-style statistics row:
//
//   vodsm_run --app=is    --runtime=vc_sd --procs=16 --variant=vopp
//   vodsm_run --app=gauss --runtime=lrc_d --procs=8 --variant=traditional
//   vodsm_run --app=nn    --runtime=mpi   --procs=32 --epochs=100
//   vodsm_run --app=sor   --runtime=vc_d  --rows=1024 --cols=1024 --iters=50
//
// Every run is checked against the serial reference; the tool exits
// non-zero on mismatch.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "obs/profile_diff.hpp"
#include "support/table.hpp"

using namespace vodsm;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --app=is|gauss|sor|nn [options]\n"
      "  --runtime=lrc_d|vc_d|vc_sd|mpi   (default vc_sd; mpi is NN-only)\n"
      "  --variant=vopp|traditional|vopp_lb (default vopp)\n"
      "  --procs=N       processors (default 16)\n"
      "  --topology=SPEC cluster fabric: star (default), or\n"
      "                  fattree|leafspine[:leaf=N,spines=N,trunk-gbps=G,\n"
      "                  trunk-us=U] (multi-switch with contended trunks)\n"
      "  --barrier=central|tree|butterfly  barrier algorithm (default\n"
      "                  central, the paper's centralized manager)\n"
      "  --view-homes=default|hashed|migrate  view/lock directory sharding\n"
      "                  (default: id mod p; migrate moves VC view homes to\n"
      "                  their dominant writer)\n"
      "  --seed=N        simulation seed (default 42)\n"
      "  --sim-threads=N engine worker threads for the conservative\n"
      "                  parallel schedule; results are bit-identical to\n"
      "                  N=1 (default: VODSM_SIM_THREADS, else serial)\n"
      "  --trace=FILE    write a Chrome/Perfetto trace of the run\n"
      "  --breakdown     print per-node simulated-time breakdown\n"
      "  --netstats      print per-message-kind traffic breakdown\n"
      "  --critpath      print the run's critical-path attribution\n"
      "  --pageheat      print per-page contention table\n"
      "  --pageheat-csv=FILE  write the full per-page table as CSV\n"
      "  --diagnose[=FILE]  print the ranked why-is-this-run-slow report;\n"
      "                  with =FILE also write it as JSON\n"
      "  --profile=FILE  write the persisted run profile (byte-stable JSON\n"
      "                  summary: buckets, critical path, barrier episodes,\n"
      "                  page heat, metric peaks, wire counters)\n"
      "  --compare=BASE.profile.json  diff this run against a baseline\n"
      "                  profile and print the ranked why-is-B-slower report\n"
      "  --compare-json=FILE  also write the differential report as JSON\n"
      "                  (requires --compare)\n"
      "  --memstats      print peak/mean counter-gauge summary (twin/diff\n"
      "                  bytes, queue depths, link utilization)\n"
      "  --faults=SPEC   inject deterministic faults; SPEC is\n"
      "                  kind:k=v,...;kind:... (kinds: loss burst dup\n"
      "                  reorder degrade partition slow), @plan.json, or\n"
      "                  profile:NAME (lossy bursty degraded partition\n"
      "                  straggler flaky mixed)\n"
      "  --metrics-csv=FILE   write the sampled per-node metric time series\n"
      "  --metrics-interval=USEC  metric sampling period (default 1000)\n"
      "  IS:    --keys=N --buckets=N --iters=N\n"
      "  Gauss: --n=N\n"
      "  SOR:   --rows=N --cols=N --iters=N\n"
      "  NN:    --samples=N --epochs=N --hidden=N\n",
      argv0);
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  uint64_t num(const std::string& key, uint64_t dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::stoull(it->second);
  }
};

void printResult(const std::string& title, const harness::RunResult& r,
                 bool ok) {
  std::printf("%s\n", title.c_str());
  std::printf("  Time (Sec.)          %10.3f\n", r.seconds);
  std::printf("  Barriers             %10llu\n",
              static_cast<unsigned long long>(r.barrierEpisodes()));
  std::printf("  Acquires             %10llu\n",
              static_cast<unsigned long long>(r.dsm.acquires));
  std::printf("  Data (MByte)         %10.2f\n", r.dataMBytes());
  std::printf("  Num. Msg             %10llu\n",
              static_cast<unsigned long long>(r.net.messages));
  std::printf("  Diff Requests        %10llu\n",
              static_cast<unsigned long long>(r.dsm.diff_requests));
  std::printf("  Barrier Time (usec.) %10.2f\n", r.dsm.avgBarrierMicros());
  std::printf("  Acquire Time (usec.) %10.2f\n", r.dsm.avgAcquireMicros());
  std::printf("  Rexmit               %10llu\n",
              static_cast<unsigned long long>(r.net.retransmissions));
  // Fault-injection counters appear only when a plan actually fired, so
  // fault-free output stays byte-identical.
  if (r.net.frames_dropped_fault || r.net.frames_duplicated ||
      r.net.frames_reordered || r.net.frames_degraded) {
    std::printf("  Fault drops          %10llu\n",
                static_cast<unsigned long long>(r.net.frames_dropped_fault));
    std::printf("  Fault dups           %10llu\n",
                static_cast<unsigned long long>(r.net.frames_duplicated));
    std::printf("  Fault reorders       %10llu\n",
                static_cast<unsigned long long>(r.net.frames_reordered));
    std::printf("  Fault degraded       %10llu\n",
                static_cast<unsigned long long>(r.net.frames_degraded));
  }
  std::printf("  Result               %10s\n", ok ? "ok" : "MISMATCH");
}

void printNetKinds(const net::NetStats& s) {
  std::printf("\nPer-kind traffic\n");
  TextTable t;
  t.header({"kind", "messages", "payload (KB)", "rexmit", "drops"});
  for (int k = 0; k < net::kMsgClassCount; ++k) {
    const net::KindStats& ks = s.kind[k];
    if (ks.messages == 0 && ks.retransmissions == 0 && ks.drops == 0)
      continue;
    t.rowv(net::kMsgClassName[k], ks.messages,
           static_cast<double>(ks.payload_bytes) / 1000.0,
           ks.retransmissions, ks.drops);
  }
  t.rowv("acks", s.acks, 0.0, uint64_t{0}, s.ack_drops);
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Every flag this tool understands. A typo (--pagheat) used to be silently
  // ignored and the run would report nothing unusual; now it is an error.
  static const std::set<std::string> kKnownFlags = {
      "app",          "runtime",   "variant",      "procs",
      "topology",     "barrier",   "view-homes",   "seed",
      "sim-threads",  "trace",     "breakdown",    "netstats",
      "critpath",     "pageheat",  "pageheat-csv", "memstats",
      "metrics-csv",  "metrics-interval",          "faults",
      "diagnose",     "profile",   "compare",      "compare-json",
      "keys",         "buckets",   "iters",        "n",
      "rows",         "cols",      "samples",      "epochs",
      "hidden"};
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) usage(argv[0]);
    auto eq = a.find('=');
    const std::string key =
        eq == std::string::npos ? a.substr(2) : a.substr(2, eq - 2);
    if (!kKnownFlags.count(key)) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      usage(argv[0]);
    }
    if (eq == std::string::npos)
      args.kv[key] = "1";  // bare flag (--breakdown, --netstats)
    else
      args.kv[key] = a.substr(eq + 1);
  }
  const std::string app = args.get("app", "");
  const std::string runtime = args.get("runtime", "vc_sd");
  const std::string variant = args.get("variant", "vopp");

  harness::RunConfig cfg;
  cfg.nprocs = static_cast<int>(args.num("procs", 16));
  cfg.seed = args.num("seed", 42);
  cfg.sim_threads = static_cast<int>(args.num("sim-threads", 0));
  // Topology/barrier/directory specs are validated eagerly: a typo'd spec
  // used to silently fall back to the default and quietly measure the wrong
  // configuration.
  const std::string topo_spec = args.get("topology", "");
  if (!topo_spec.empty() &&
      !net::parseTopologySpec(topo_spec, &cfg.net.topology)) {
    std::fprintf(stderr, "error: invalid --topology spec '%s'\n",
                 topo_spec.c_str());
    usage(argv[0]);
  }
  const std::string barrier_spec = args.get("barrier", "");
  if (!barrier_spec.empty() &&
      !dsm::parseBarrierAlg(barrier_spec, &cfg.proto.barrier)) {
    std::fprintf(stderr, "error: invalid --barrier '%s'\n",
                 barrier_spec.c_str());
    usage(argv[0]);
  }
  const std::string homes_spec = args.get("view-homes", "");
  if (!homes_spec.empty() &&
      !dsm::parseViewHomes(homes_spec, &cfg.proto.view_homes)) {
    std::fprintf(stderr, "error: invalid --view-homes '%s'\n",
                 homes_spec.c_str());
    usage(argv[0]);
  }
  const std::string trace_path = args.get("trace", "");
  const bool want_breakdown = args.kv.count("breakdown") > 0;
  const bool want_netstats = args.kv.count("netstats") > 0;
  const bool want_critpath = args.kv.count("critpath") > 0;
  const bool want_pageheat = args.kv.count("pageheat") > 0;
  const std::string pageheat_csv = args.get("pageheat-csv", "");
  const bool want_memstats = args.kv.count("memstats") > 0;
  const std::string metrics_csv = args.get("metrics-csv", "");
  // --diagnose prints the ranked report; --diagnose=FILE also writes the
  // machine-readable JSON. Diagnosis consumes the trace and the metrics
  // summary, so it turns both on.
  const bool want_diagnose = args.kv.count("diagnose") > 0;
  const std::string diagnose_value = args.get("diagnose", "");
  const std::string diagnose_json =
      diagnose_value == "1" ? "" : diagnose_value;
  // Profiles and comparisons consume the trace and metrics summary, so they
  // turn both on (like --diagnose). Both are post-processing: the simulated
  // run stays bit-identical.
  const std::string profile_path = args.get("profile", "");
  const std::string compare_path = args.get("compare", "");
  const std::string compare_json = args.get("compare-json", "");
  if (!compare_json.empty() && compare_path.empty()) {
    std::fprintf(stderr, "error: --compare-json requires --compare\n");
    usage(argv[0]);
  }
  const bool want_profile = !profile_path.empty() || !compare_path.empty();
  obs::TraceRecorder recorder;
  if (!trace_path.empty() || want_breakdown || want_critpath || want_pageheat ||
      !pageheat_csv.empty() || want_diagnose || want_profile)
    cfg.trace = &recorder;
  cfg.critpath = want_critpath;
  cfg.pageheat = want_pageheat || !pageheat_csv.empty();
  cfg.diagnose = want_diagnose;
  cfg.profile = want_profile;
  // Metrics piggyback on any trace export (counter tracks) and are also
  // available standalone via --memstats / --metrics-csv.
  obs::MetricsRegistry registry{
      sim::usec(static_cast<int64_t>(args.num("metrics-interval", 1000)))};
  if (want_memstats || !metrics_csv.empty() || !trace_path.empty() ||
      want_diagnose || want_profile)
    cfg.metrics = &registry;
  net::FaultPlan fault_plan;
  const std::string fault_spec = args.get("faults", "");
  if (!fault_spec.empty()) {
    try {
      fault_plan = net::parseFaultPlan(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    cfg.faults = &fault_plan;
  }
  if (runtime == "lrc_d") cfg.protocol = dsm::Protocol::kLrcDiff;
  else if (runtime == "vc_d") cfg.protocol = dsm::Protocol::kVcDiff;
  else if (runtime == "vc_sd" || runtime == "mpi")
    cfg.protocol = dsm::Protocol::kVcSd;
  else usage(argv[0]);
  if (runtime == "mpi" && want_profile) {
    std::fprintf(stderr,
                 "error: --profile/--compare are not available for the mpi "
                 "runtime (no DSM trace to profile)\n");
    return 2;
  }

  const std::string title = app + " on " + runtime + " (" + variant + "), " +
                            std::to_string(cfg.nprocs) + " processors";
  harness::RunResult result;
  bool ok = false;
  try {
    if (app == "is") {
      apps::IsParams p;
      p.n_keys = args.num("keys", 1u << 20);
      p.max_key = static_cast<uint32_t>(args.num("buckets", 1u << 13) - 1);
      p.iterations = static_cast<int>(args.num("iters", 10));
      auto v = variant == "traditional" ? apps::IsVariant::kTraditional
               : variant == "vopp_lb"   ? apps::IsVariant::kVoppFewerBarriers
                                        : apps::IsVariant::kVopp;
      auto run = apps::runIs(cfg, p, v);
      result = run.result;
      ok = run.rank_sums == apps::isSerialRankSums(p, cfg.nprocs);
    } else if (app == "gauss") {
      apps::GaussParams p;
      p.n = args.num("n", 448);
      auto v = variant == "traditional" ? apps::GaussVariant::kTraditional
                                        : apps::GaussVariant::kVopp;
      auto run = apps::runGauss(cfg, p, v);
      result = run.result;
      ok = run.checksum == apps::gaussSerialChecksum(p);
    } else if (app == "sor") {
      apps::SorParams p;
      p.rows = args.num("rows", 512);
      p.cols = args.num("cols", 512);
      p.iterations = static_cast<int>(args.num("iters", 20));
      auto v = variant == "traditional" ? apps::SorVariant::kTraditional
                                        : apps::SorVariant::kVopp;
      auto run = apps::runSor(cfg, p, v);
      result = run.result;
      ok = run.checksum == apps::sorSerialChecksum(p);
    } else if (app == "nn") {
      apps::NnParams p;
      p.samples = args.num("samples", 512);
      p.epochs = static_cast<int>(args.num("epochs", 30));
      p.hidden = static_cast<int>(args.num("hidden", 40));
      auto v = runtime == "mpi"          ? apps::NnVariant::kMpi
               : variant == "traditional" ? apps::NnVariant::kTraditional
                                          : apps::NnVariant::kVopp;
      auto run = apps::runNn(cfg, p, v);
      result = run.result;
      ok = run.checksum == apps::nnSerialChecksum(p, cfg.nprocs);
    } else {
      usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  printResult(title, result, ok);
  if (want_netstats) printNetKinds(result.net);
  if (want_breakdown && result.breakdown.enabled())
    obs::printBreakdown(std::cout, result.breakdown, "Time breakdown");
  if (want_critpath)
    obs::printCriticalPath(std::cout, result.critpath, "Critical path");
  if (want_pageheat)
    obs::printPageHeat(std::cout, result.pageheat, "Page contention");
  if (want_diagnose) {
    obs::printDiagnosis(std::cout, result.diagnosis, "Diagnosis: " + title);
    if (!diagnose_json.empty()) {
      std::ofstream os(diagnose_json, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     diagnose_json.c_str());
        return 1;
      }
      obs::writeDiagnosisJson(os, result.diagnosis);
      std::printf("diagnosis: %zu findings -> %s\n",
                  result.diagnosis.findings.size(), diagnose_json.c_str());
    }
  }
  if (want_profile) result.profile.label = title;
  if (!profile_path.empty()) {
    std::ofstream os(profile_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", profile_path.c_str());
      return 1;
    }
    obs::writeRunProfileJson(os, result.profile);
    std::printf("profile -> %s\n", profile_path.c_str());
  }
  if (!compare_path.empty()) {
    try {
      const obs::RunProfile baseline = obs::loadRunProfileFile(compare_path);
      const obs::DiffReport report =
          obs::diffProfiles(baseline, result.profile);
      obs::printDiffReport(std::cout, report,
                           "Differential report: " + baseline.label +
                               " (A) vs " + title + " (B)");
      if (!compare_json.empty()) {
        std::ofstream os(compare_json, std::ios::binary);
        if (!os) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       compare_json.c_str());
          return 1;
        }
        obs::writeDiffReportJson(os, report);
        std::printf("differential report: %zu findings -> %s\n",
                    report.findings.size(), compare_json.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (want_memstats) {
    if (result.metrics.enabled())
      obs::printMemstats(std::cout, result.metrics, "Memory/utilization stats");
    else
      std::printf("\n(metrics not available for this runtime)\n");
  }
  if (!metrics_csv.empty()) {
    std::ofstream os(metrics_csv, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_csv.c_str());
      return 1;
    }
    obs::writeMetricsCsv(os, registry);
    std::printf("\nmetrics: %zu samples -> %s\n", registry.samples().size(),
                metrics_csv.c_str());
  }
  if (!pageheat_csv.empty()) {
    std::ofstream os(pageheat_csv, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", pageheat_csv.c_str());
      return 1;
    }
    obs::writePageHeatCsv(os, result.pageheat);
    std::printf("\npage heat: %zu pages -> %s\n", result.pageheat.rows.size(),
                pageheat_csv.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    obs::writeChromeTrace(os, recorder, cfg.metrics);
    std::printf("\ntrace: %zu events -> %s\n", recorder.size(),
                trace_path.c_str());
  }
  return ok ? 0 : 1;
}
