// vodsm_run — command-line experiment runner.
//
// Run any of the paper's applications on any runtime with explicit
// parameters and get the paper-style statistics row:
//
//   vodsm_run --app=is    --runtime=vc_sd --procs=16 --variant=vopp
//   vodsm_run --app=gauss --runtime=lrc_d --procs=8  --variant=traditional --n=512
//   vodsm_run --app=nn    --runtime=mpi   --procs=32 --epochs=100
//   vodsm_run --app=sor   --runtime=vc_d  --rows=1024 --cols=1024 --iters=50
//
// Every run is checked against the serial reference; the tool exits
// non-zero on mismatch.
#include <cstdio>
#include <map>
#include <string>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"

using namespace vodsm;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --app=is|gauss|sor|nn [options]\n"
      "  --runtime=lrc_d|vc_d|vc_sd|mpi   (default vc_sd; mpi is NN-only)\n"
      "  --variant=vopp|traditional|vopp_lb (default vopp)\n"
      "  --procs=N       processors (default 16)\n"
      "  --seed=N        simulation seed (default 42)\n"
      "  IS:    --keys=N --buckets=N --iters=N\n"
      "  Gauss: --n=N\n"
      "  SOR:   --rows=N --cols=N --iters=N\n"
      "  NN:    --samples=N --epochs=N --hidden=N\n",
      argv0);
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  uint64_t num(const std::string& key, uint64_t dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::stoull(it->second);
  }
};

void printResult(const std::string& title, const harness::RunResult& r,
                 bool ok) {
  std::printf("%s\n", title.c_str());
  std::printf("  Time (Sec.)          %10.3f\n", r.seconds);
  std::printf("  Barriers             %10llu\n",
              static_cast<unsigned long long>(r.barrierEpisodes()));
  std::printf("  Acquires             %10llu\n",
              static_cast<unsigned long long>(r.dsm.acquires));
  std::printf("  Data (MByte)         %10.2f\n", r.dataMBytes());
  std::printf("  Num. Msg             %10llu\n",
              static_cast<unsigned long long>(r.net.messages));
  std::printf("  Diff Requests        %10llu\n",
              static_cast<unsigned long long>(r.dsm.diff_requests));
  std::printf("  Barrier Time (usec.) %10.2f\n", r.dsm.avgBarrierMicros());
  std::printf("  Acquire Time (usec.) %10.2f\n", r.dsm.avgAcquireMicros());
  std::printf("  Rexmit               %10llu\n",
              static_cast<unsigned long long>(r.net.retransmissions));
  std::printf("  Result               %10s\n", ok ? "ok" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto eq = a.find('=');
    if (a.rfind("--", 0) != 0 || eq == std::string::npos) usage(argv[0]);
    args.kv[a.substr(2, eq - 2)] = a.substr(eq + 1);
  }
  const std::string app = args.get("app", "");
  const std::string runtime = args.get("runtime", "vc_sd");
  const std::string variant = args.get("variant", "vopp");

  harness::RunConfig cfg;
  cfg.nprocs = static_cast<int>(args.num("procs", 16));
  cfg.seed = args.num("seed", 42);
  if (runtime == "lrc_d") cfg.protocol = dsm::Protocol::kLrcDiff;
  else if (runtime == "vc_d") cfg.protocol = dsm::Protocol::kVcDiff;
  else if (runtime == "vc_sd" || runtime == "mpi")
    cfg.protocol = dsm::Protocol::kVcSd;
  else usage(argv[0]);

  const std::string title = app + " on " + runtime + " (" + variant + "), " +
                            std::to_string(cfg.nprocs) + " processors";
  try {
    if (app == "is") {
      apps::IsParams p;
      p.n_keys = args.num("keys", 1u << 20);
      p.max_key = static_cast<uint32_t>(args.num("buckets", 1u << 13) - 1);
      p.iterations = static_cast<int>(args.num("iters", 10));
      auto v = variant == "traditional" ? apps::IsVariant::kTraditional
               : variant == "vopp_lb"   ? apps::IsVariant::kVoppFewerBarriers
                                        : apps::IsVariant::kVopp;
      auto run = apps::runIs(cfg, p, v);
      printResult(title, run.result,
                  run.rank_sums == apps::isSerialRankSums(p, cfg.nprocs));
    } else if (app == "gauss") {
      apps::GaussParams p;
      p.n = args.num("n", 448);
      auto v = variant == "traditional" ? apps::GaussVariant::kTraditional
                                        : apps::GaussVariant::kVopp;
      auto run = apps::runGauss(cfg, p, v);
      printResult(title, run.result,
                  run.checksum == apps::gaussSerialChecksum(p));
    } else if (app == "sor") {
      apps::SorParams p;
      p.rows = args.num("rows", 512);
      p.cols = args.num("cols", 512);
      p.iterations = static_cast<int>(args.num("iters", 20));
      auto v = variant == "traditional" ? apps::SorVariant::kTraditional
                                        : apps::SorVariant::kVopp;
      auto run = apps::runSor(cfg, p, v);
      printResult(title, run.result,
                  run.checksum == apps::sorSerialChecksum(p));
    } else if (app == "nn") {
      apps::NnParams p;
      p.samples = args.num("samples", 512);
      p.epochs = static_cast<int>(args.num("epochs", 30));
      p.hidden = static_cast<int>(args.num("hidden", 40));
      auto v = runtime == "mpi"          ? apps::NnVariant::kMpi
               : variant == "traditional" ? apps::NnVariant::kTraditional
                                          : apps::NnVariant::kVopp;
      auto run = apps::runNn(cfg, p, v);
      printResult(title, run.result,
                  run.checksum == apps::nnSerialChecksum(p, cfg.nprocs));
    } else {
      usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
