// View tuning: the paper's Section 3.6 rule of thumb, demonstrated.
//
//   "The more views are acquired, the more messages there are in the
//    system; and the larger a view is, the more data traffic is caused
//    in the system when the view is acquired."
//
// A producer updates a small, hot slice of a big table every round; a
// consumer reads only that slice. We run the same workload with three view
// partitionings — one big view, a hot/cold split, and an over-fragmented
// split — and print messages, data and time for each, showing the sweet
// spot in the middle.
//
//   $ ./view_tuning
#include <cstdio>
#include <vector>

#include "vopp/cluster.hpp"

using namespace vodsm;

namespace {

constexpr size_t kTableBytes = 128 * 1024;  // 32 pages
constexpr size_t kHotBytes = 4096;          // 1 page actually changing
constexpr int kRounds = 50;

struct Outcome {
  double seconds;
  uint64_t messages;
  double data_kb;
};

// Partition the table into `views_for_hot` views covering the hot page and
// `views_for_cold` views covering the rest; producer writes hot, consumer
// reads hot.
Outcome run(size_t hot_views, size_t cold_views) {
  vopp::Cluster cluster({.nprocs = 2, .protocol = dsm::Protocol::kVcSd});
  std::vector<dsm::ViewId> hot, cold;
  for (size_t i = 0; i < hot_views; ++i)
    hot.push_back(cluster.defineView(kHotBytes / hot_views));
  for (size_t i = 0; i < cold_views; ++i)
    cold.push_back(cluster.defineView((kTableBytes - kHotBytes) / cold_views));
  // With ONE view total, hot and cold share it; model that by writing the
  // cold data into the single hot view when cold_views == 0.
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int round = 0; round < kRounds; ++round) {
      if (node.id() == 0) {
        // Producer: touch the whole cold region once, then update hot.
        if (round == 0) {
          for (dsm::ViewId v : cold) {
            const auto& def = node.cluster().views().view(v);
            co_await node.acquireView(v);
            co_await node.touchWrite(def.offset, def.bytes);
            auto span = node.mem(def.offset, def.bytes);
            std::fill(span.begin(), span.end(), std::byte{0x5a});
            co_await node.releaseView(v);
          }
        }
        for (dsm::ViewId v : hot) {
          const auto& def = node.cluster().views().view(v);
          co_await node.acquireView(v);
          co_await node.touchWrite(def.offset, def.bytes);
          auto span = node.mem(def.offset, def.bytes);
          std::fill(span.begin(), span.end(),
                    static_cast<std::byte>(round + 1));
          co_await node.releaseView(v);
        }
      }
      co_await node.barrier();
      if (node.id() == 1) {
        for (dsm::ViewId v : hot) {
          const auto& def = node.cluster().views().view(v);
          co_await node.acquireRview(v);
          co_await node.touchRead(def.offset, def.bytes);
          co_await node.releaseRview(v);
        }
      }
      co_await node.barrier();
    }
  });
  return {cluster.seconds(), cluster.netStats().messages,
          static_cast<double>(cluster.netStats().payload_bytes) / 1024.0};
}

// One huge view holding everything: consumer acquisitions drag the whole
// table's history along.
Outcome runMonolithic() {
  vopp::Cluster cluster({.nprocs = 2, .protocol = dsm::Protocol::kVcSd});
  dsm::ViewId all = cluster.defineView(kTableBytes);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    const auto& def = node.cluster().views().view(all);
    for (int round = 0; round < kRounds; ++round) {
      if (node.id() == 0) {
        co_await node.acquireView(all);
        if (round == 0) {
          co_await node.touchWrite(def.offset, def.bytes);  // cold fill
          auto span = node.mem(def.offset, def.bytes);
          std::fill(span.begin(), span.end(), std::byte{0x5a});
        }
        co_await node.touchWrite(def.offset, kHotBytes);
        auto span = node.mem(def.offset, kHotBytes);
        std::fill(span.begin(), span.end(), static_cast<std::byte>(round + 1));
        co_await node.releaseView(all);
      }
      co_await node.barrier();
      if (node.id() == 1) {
        co_await node.acquireRview(all);
        co_await node.touchRead(def.offset, kHotBytes);  // wants hot only
        co_await node.releaseRview(all);
      }
      co_await node.barrier();
    }
  });
  return {cluster.seconds(), cluster.netStats().messages,
          static_cast<double>(cluster.netStats().payload_bytes) / 1024.0};
}

void print(const char* label, const Outcome& o) {
  std::printf("  %-34s %8.4fs  %6llu msgs  %10.1f KB\n", label, o.seconds,
              static_cast<unsigned long long>(o.messages), o.data_kb);
}

}  // namespace

int main() {
  std::printf("Producer/consumer over a %zu KB table whose hot slice is %zu "
              "KB, %d rounds, VC_sd:\n\n",
              kTableBytes / 1024, kHotBytes / 1024, kRounds);
  print("one monolithic view", runMonolithic());
  print("hot/cold split (the sweet spot)", run(1, 1));
  print("over-fragmented (64 hot views)", run(64, 1));
  std::printf(
      "\nThe monolithic view moves the whole table on the first consumer\n"
      "read; the over-fragmented split multiplies acquire messages. The\n"
      "paper's rule of thumb (Section 3.6) picks the middle.\n");
  return 0;
}
