// The comparison core of bench_diff, header-only so unit tests can drive
// it directly (tests/test_bench_tools.cpp) while the bench_diff binary
// stays a thin main().
//
// Contract (see bench_diff.cpp for the CLI story):
//   * every field compares EXACTLY, except
//   * host-timing keys get a ratio tolerance with an absolute floor and
//     may be present in only one file, and
//   * ignored keys ("jobs", "sim_threads", "host") never compare at all —
//     they describe the machine that ran the suite, not the simulation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace vodsm::bench::diff {

// Profile file name for a cell id: '/' becomes '_' and ".profile.json" is
// appended ("IS/LRC_d/16p" -> "IS_LRC_d_16p.profile.json"). Shared between
// the table binaries (which write per-cell profiles under --profiles) and
// bench_diff --explain (which reads them back for drifted cells).
inline std::string cellProfileFileName(const std::string& cell_id) {
  std::string name = cell_id;
  for (char& c : name)
    if (c == '/') c = '_';
  return name + ".profile.json";
}

struct Config {
  // A host timing passes when the larger value is within `host_tolerance`
  // times the smaller, or both are under the floor. Generous by default:
  // the gate is for simulated drift, not for benchmarking the host.
  double host_tolerance = 25.0;
  double host_floor_seconds = 5.0;
  // Accept cells one side skipped via the analytic screen ("screened":
  // true): such a cell carries a model prediction instead of simulated
  // fields, so nothing in it compares. Off by default — the regression
  // gate must never run against a screened artifact by accident.
  bool allow_screened = false;
};

struct Report {
  int mismatches = 0;
  int host_checked = 0;
  int screened_skipped = 0;
  static constexpr int kMaxPrinted = 50;
  std::ostream* out = &std::cout;
  // Ids of the cells ("$.tables[].cells[]" objects, recognized by their
  // string "id" member) whose subtree drifted, in first-drift order.
  // bench_diff --explain uses these to pick which per-cell profile pairs
  // to difference.
  std::vector<std::string> drifted_cells;
  std::string current_cell;  // set while comparing inside a cell object

  void fail(const std::string& path, const std::string& why) {
    if (mismatches < kMaxPrinted)
      *out << "  " << path << ": " << why << "\n";
    else if (mismatches == kMaxPrinted)
      *out << "  ... further mismatches suppressed\n";
    ++mismatches;
    if (!current_cell.empty() &&
        std::find(drifted_cells.begin(), drifted_cells.end(),
                  current_cell) == drifted_cells.end())
      drifted_cells.push_back(current_cell);
  }
};

inline bool isHostTimingKey(const std::string& key) {
  return key == "host_seconds" || key == "wall_seconds" ||
         key == "serial_wall_seconds" || key == "speedup_vs_serial" ||
         key == "self_speedup_vs_serial";
}

// Host run-shape and provenance keys: thread counts and machine identity
// never change simulated output, so neither presence nor value compares.
// "axes" is a cell's coordinate record (model_suite input), not a
// simulated result, so a baseline from before the axis sweeps still gates
// exactly on every field it does have.
inline bool isIgnoredKey(const std::string& key) {
  return key == "jobs" || key == "sim_threads" || key == "host" ||
         key == "axes";
}

// Screen-provenance keys, ignored only under Config::allow_screened.
inline bool isScreenKey(const std::string& key) {
  return key == "screen" || key == "screened_cells";
}

// Under allow_screened, an object marked "screened": true on either side
// is a model prediction, not a measurement — nothing in it compares.
inline bool isScreenedCell(const support::Json& v) {
  if (!v.isObject()) return false;
  const support::Json* s = v.find("screened");
  return s != nullptr && s->type() == support::Json::Type::kBool &&
         s->asBool();
}

inline std::string describe(const support::Json& v) {
  using support::Json;
  switch (v.type()) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return v.asBool() ? "true" : "false";
    case Json::Type::kString: return "\"" + v.asString() + "\"";
    case Json::Type::kNumber: {
      std::ostringstream os;
      os << v.asNumber();
      return os.str();
    }
    case Json::Type::kArray:
      return "array[" + std::to_string(v.items().size()) + "]";
    case Json::Type::kObject:
      return "object{" + std::to_string(v.members().size()) + "}";
  }
  return "?";
}

inline void checkHostTiming(const support::Json& base,
                            const support::Json& cur,
                            const std::string& path, const Config& cfg,
                            Report& rep) {
  using support::Json;
  if (base.type() != Json::Type::kNumber ||
      cur.type() != Json::Type::kNumber) {
    rep.fail(path, "host-timing field is not a number");
    return;
  }
  ++rep.host_checked;
  const double a = base.asNumber();
  const double b = cur.asNumber();
  if (a <= cfg.host_floor_seconds && b <= cfg.host_floor_seconds) return;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  if (lo > 0 && hi / lo <= cfg.host_tolerance) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "host timing drifted beyond %.0fx: baseline %g vs current %g",
                cfg.host_tolerance, a, b);
  rep.fail(path, buf);
}

inline void compare(const support::Json& base, const support::Json& cur,
                    const std::string& path, const Config& cfg, Report& rep) {
  using support::Json;
  if (base.type() != cur.type()) {
    rep.fail(path, describe(base) + " became " + describe(cur));
    return;
  }
  switch (base.type()) {
    case Json::Type::kNull:
      return;
    case Json::Type::kBool:
      if (base.asBool() != cur.asBool())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kString:
      if (base.asString() != cur.asString())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kNumber:
      // Exact. Both files come from the same fixed-precision writer, so a
      // deterministic simulation reproduces the byte-identical text and
      // therefore the identical double.
      if (base.asNumber() != cur.asNumber())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kArray: {
      const auto& a = base.items();
      const auto& b = cur.items();
      if (a.size() != b.size()) {
        rep.fail(path, "array length " + std::to_string(a.size()) +
                           " became " + std::to_string(b.size()));
        return;
      }
      for (size_t i = 0; i < a.size(); ++i)
        compare(a[i], b[i], path + "[" + std::to_string(i) + "]", cfg, rep);
      return;
    }
    case Json::Type::kObject: {
      if (cfg.allow_screened &&
          (isScreenedCell(base) || isScreenedCell(cur))) {
        ++rep.screened_skipped;
        return;
      }
      // Cell objects carry a string "id"; remember it while comparing the
      // subtree so fail() can attribute drift to the cell.
      const Json* id = base.find("id");
      const bool is_cell =
          id != nullptr && id->type() == Json::Type::kString;
      const std::string saved_cell = rep.current_cell;
      if (is_cell) rep.current_cell = id->asString();
      for (const auto& [key, bval] : base.members()) {
        if (isIgnoredKey(key)) continue;
        if (cfg.allow_screened && isScreenKey(key)) continue;
        const std::string sub = path + "." + key;
        const Json* cval = cur.find(key);
        if (!cval) {
          // Host timings are run-shape dependent (e.g. serial_wall_seconds
          // only exists under --compare-serial); absence is not drift.
          if (!isHostTimingKey(key)) rep.fail(sub, "key disappeared");
          continue;
        }
        if (isHostTimingKey(key))
          checkHostTiming(bval, *cval, sub, cfg, rep);
        else
          compare(bval, *cval, sub, cfg, rep);
      }
      for (const auto& [key, cval] : cur.members()) {
        (void)cval;
        if (isIgnoredKey(key) || isHostTimingKey(key)) continue;
        if (cfg.allow_screened && isScreenKey(key)) continue;
        if (!base.find(key)) rep.fail(path + "." + key, "key appeared");
      }
      rep.current_cell = saved_cell;
      return;
    }
  }
}

}  // namespace vodsm::bench::diff
