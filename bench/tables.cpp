#include "bench/tables.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "bench/diff_compare.hpp"
#include "bench/paper_params.hpp"
#include "harness/parallel_runner.hpp"
#include "model/model_set.hpp"
#include "support/json.hpp"
#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/diagnose.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/profile.hpp"
#include "obs/profile_diff.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vodsm::bench {

namespace {

using apps::GaussVariant;
using apps::IsVariant;
using apps::NnVariant;
using apps::SorVariant;
using dsm::Protocol;
using harness::RunResult;

// Processor counts of the speedup tables (paper Tables 3, 5, 7, 9).
const std::vector<int> kSpeedupProcs = {2, 4, 8, 16, 24, 32};

// Compiler identification for the JSON "host" record. Host-dependent like
// the rest of that object, so bench_diff never compares it.
#if defined(__clang_version__)
constexpr const char* kCompilerId = "clang " __clang_version__;
#elif defined(__VERSION__)
constexpr const char* kCompilerId = "gcc " __VERSION__;
#else
constexpr const char* kCompilerId = "unknown";
#endif

std::string cellId(const std::string& app, const std::string& impl,
                   int procs) {
  return app + "/" + impl + "/" + std::to_string(procs) + "p";
}

// --- axis variations (table 10) -----------------------------------------

// One off-reference coordinate of the model axis space: a problem-size
// scale, a link bandwidth, or a frame-loss rate different from the paper
// testbed's. The suffix joins the cell id ("IS/LRC_d/16p/bw50").
struct AxisVariation {
  const char* suffix;
  double n_scale;
  double bw_mbps;
  double loss_pct;
};

// Two points per axis so every regressor of the model family is
// identified. Loss stays <= 0.5%: each lost frame costs a one-second RTO,
// so higher rates blow up simulated (and host) time.
constexpr AxisVariation kAxisVariations[] = {
    {"bw50", 1.0, 50.0, 0.0},    {"bw200", 1.0, 200.0, 0.0},
    {"loss0.2", 1.0, 100.0, 0.2}, {"loss0.5", 1.0, 100.0, 0.5},
    {"n0.5", 0.5, 100.0, 0.0},    {"n2", 2.0, 100.0, 0.0},
};

model::AxisPoint axisPoint(int procs, const AxisVariation& v) {
  model::AxisPoint a;
  a.procs = procs;
  a.n_scale = v.n_scale;
  a.bw_mbps = v.bw_mbps;
  a.loss_pct = v.loss_pct;
  a.explicit_axes = true;
  return a;
}

void applyAxes(harness::RunConfig& c, const model::AxisPoint& a) {
  c.net.bandwidth_bps = a.bw_mbps * 1e6;
  c.net.random_loss = a.loss_pct / 100.0;
}

// --- cell builders: one per (app, variant) pair -------------------------

// Which trace analyses a cell should run; copied out of Options so the
// cell lambdas stay self-contained. The fault plan travels by value for
// the same reason: every cell binds its own injector to its own run, so
// the parallel sweep shares no mutable fault state.
struct CellFlags {
  bool traced = false;
  bool critpath = false;
  bool pageheat = false;
  bool metrics = false;
  // Diagnosis implies tracing (and benefits from metrics; the caller turns
  // both on in flagsOf) — the Diagnoser is a pure trace/metrics consumer.
  bool diagnose = false;
  // Profiling implies tracing and metering (the caller turns both on in
  // flagsOf) — buildRunProfile is a pure trace/metrics consumer too.
  bool profile = false;
  net::FaultPlan faults;
  // Engine workers per cell (resolved through VODSM_SIM_THREADS when 0).
  int sim_threads = 1;
};

CellFlags flagsOf(const Options& o) {
  const bool profile = !o.profile_dir.empty() || !o.compare_dir.empty();
  CellFlags f{o.breakdown || o.critpath || o.pageheat || o.diagnose ||
                  profile,
              o.critpath,
              o.pageheat,
              o.metrics || o.diagnose || profile,
              o.diagnose,
              profile,
              {},
              sim::resolveSimThreads(o.sim_threads)};
  if (!o.faults.empty()) {
    try {
      f.faults = net::parseFaultPlan(o.faults);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      std::exit(2);
    }
  }
  return f;
}

// Runs one cell, tracing/metering it through cell-local observers when
// requested. The recorder and registry live only for the run; the folded
// analyses travel out by value inside RunResult, and per-cell ownership
// keeps the parallel sweep free of shared mutable state. The metrics
// registry samples at interval 0: the bench only consumes peaks and means,
// so no time series is recorded.
//
// With sim_threads > 1 the cell also reruns on the serial reference
// schedule, checks the simulated result agrees, and records the host-time
// self-speedup of the parallel engine for the JSON.
template <typename RunFn>
RunResult runCell(const CellFlags& flags, harness::RunConfig base,
                  RunFn&& run) {
  using Clock = std::chrono::steady_clock;
  auto attempt = [&](int threads, double& host_out) {
    obs::TraceRecorder rec;
    obs::MetricsRegistry mets;
    harness::RunConfig cfg = base;
    if (flags.traced) cfg.trace = &rec;
    if (flags.metrics) cfg.metrics = &mets;
    cfg.critpath = flags.critpath;
    cfg.pageheat = flags.pageheat;
    cfg.diagnose = flags.diagnose;
    cfg.profile = flags.profile;
    if (!flags.faults.empty()) cfg.faults = &flags.faults;
    cfg.sim_threads = threads;
    const auto t0 = Clock::now();
    RunResult r = run(cfg);
    host_out = std::chrono::duration<double>(Clock::now() - t0).count();
    return r;
  };
  double par_host = 0;
  RunResult r = attempt(flags.sim_threads, par_host);
  r.sim_threads = flags.sim_threads;
  if (flags.sim_threads > 1) {
    double ser_host = 0;
    const RunResult ref = attempt(1, ser_host);
    VODSM_CHECK_MSG(ref.seconds == r.seconds &&
                        ref.net.messages == r.net.messages &&
                        ref.net.payload_bytes == r.net.payload_bytes,
                    "parallel engine diverged from serial reference");
    r.self_speedup_vs_serial = par_host > 0 ? ser_host / par_host : 0;
  }
  return r;
}

Cell isCell(const Options& o, const std::string& impl, Protocol proto,
            IsVariant variant, int procs) {
  auto params = isParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("IS", impl, procs), [=] {
                return runCell(flags, baseConfig(proto, procs, o),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runIs(cfg, params, variant)
                                     .result;
                               });
              }};
}

Cell isSeqCell(const Options& o) {
  auto params = isParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("IS", "seq", 1), [=] {
                return runCell(flags, sequentialConfig(),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runIs(cfg, params,
                                                    IsVariant::kTraditional)
                                     .result;
                               });
              }};
}

Cell gaussCell(const Options& o, const std::string& impl, Protocol proto,
               GaussVariant variant, int procs) {
  auto params = gaussParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("Gauss", impl, procs), [=] {
                return runCell(flags, baseConfig(proto, procs, o),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runGauss(cfg, params, variant)
                                     .result;
                               });
              }};
}

Cell gaussSeqCell(const Options& o) {
  auto params = gaussParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("Gauss", "seq", 1),
              [=] {
                return runCell(flags, sequentialConfig(),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runGauss(
                                            cfg, params,
                                            GaussVariant::kTraditional)
                                     .result;
                               });
              }};
}

Cell sorCell(const Options& o, const std::string& impl, Protocol proto,
             SorVariant variant, int procs) {
  auto params = sorParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("SOR", impl, procs), [=] {
                return runCell(flags, baseConfig(proto, procs, o),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runSor(cfg, params, variant)
                                     .result;
                               });
              }};
}

Cell sorSeqCell(const Options& o) {
  auto params = sorParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("SOR", "seq", 1), [=] {
                return runCell(flags, sequentialConfig(),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runSor(cfg, params,
                                                     SorVariant::kTraditional)
                                     .result;
                               });
              }};
}

Cell nnCell(const Options& o, const std::string& impl, Protocol proto,
            NnVariant variant, int procs) {
  auto params = nnParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("NN", impl, procs), [=] {
                return runCell(flags, baseConfig(proto, procs, o),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runNn(cfg, params, variant)
                                     .result;
                               });
              }};
}

Cell nnSeqCell(const Options& o) {
  auto params = nnParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("NN", "seq", 1), [=] {
                return runCell(flags, sequentialConfig(),
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runNn(cfg, params,
                                                    NnVariant::kTraditional)
                                     .result;
                               });
              }};
}

// Axis-sweep builders: like isCell/sorCell but at an off-reference
// coordinate. The problem-size scale hits the app's natural work knob
// (IS: key count; SOR: iteration count — both scale total work linearly
// without changing the sharing pattern); bandwidth and loss go through
// NetConfig.
Cell isAxisCell(const Options& o, const std::string& impl, Protocol proto,
                IsVariant variant, int procs, const AxisVariation& v) {
  auto params = isParams(o.full);
  params.n_keys = static_cast<size_t>(
      static_cast<double>(params.n_keys) * v.n_scale);
  const CellFlags flags = flagsOf(o);
  const model::AxisPoint axes = axisPoint(procs, v);
  Cell cell{cellId("IS", impl, procs) + "/" + v.suffix, [=] {
              harness::RunConfig base = baseConfig(proto, procs, o);
              applyAxes(base, axes);
              return runCell(flags, base,
                             [&](const harness::RunConfig& cfg) {
                               return apps::runIs(cfg, params, variant)
                                   .result;
                             });
            }};
  cell.axes = axes;
  return cell;
}

Cell sorAxisCell(const Options& o, const std::string& impl, Protocol proto,
                 SorVariant variant, int procs, const AxisVariation& v) {
  auto params = sorParams(o.full);
  params.iterations = std::max(
      1, static_cast<int>(static_cast<double>(params.iterations) *
                          v.n_scale));
  const CellFlags flags = flagsOf(o);
  const model::AxisPoint axes = axisPoint(procs, v);
  Cell cell{cellId("SOR", impl, procs) + "/" + v.suffix, [=] {
              harness::RunConfig base = baseConfig(proto, procs, o);
              applyAxes(base, axes);
              return runCell(flags, base,
                             [&](const harness::RunConfig& cfg) {
                               return apps::runSor(cfg, params, variant)
                                   .result;
                             });
            }};
  cell.axes = axes;
  return cell;
}

// Scaling-sweep builder (table 11): an IS cell on either the paper's
// reference fabric (star + centralized barrier + id-mod-p homes) or the
// scalable stack (fat tree + tree barrier + hashed homes). The fabric is
// pinned per cell — the sweep compares the two stacks side by side — so
// this deliberately ignores any --topology/--barrier/--view-homes options.
Cell scalingCell(const Options& o, const std::string& impl, Protocol proto,
                 IsVariant variant, int procs, bool scalable) {
  auto params = isParams(o.full);
  const CellFlags flags = flagsOf(o);
  return Cell{cellId("IS", impl, procs), [=] {
                harness::RunConfig base = baseConfig(proto, procs);
                if (scalable) {
                  base.net.topology.kind = net::TopologyKind::kFatTree;
                  base.proto.barrier = dsm::BarrierAlg::kTree;
                  base.proto.view_homes = dsm::ViewHomes::kHashed;
                }
                return runCell(flags, base,
                               [&](const harness::RunConfig& cfg) {
                                 return apps::runIs(cfg, params, variant)
                                     .result;
                               });
              }};
}

// --- table shapes -------------------------------------------------------

// Stats table: one column per named cell, in cell order.
TableSpec statsSpec(std::string name, std::string title,
                    std::vector<std::string> col_names,
                    std::vector<Cell> cells, bool show_acquire_time = false) {
  TableSpec spec;
  spec.name = std::move(name);
  spec.cells = std::move(cells);
  spec.print = [title = std::move(title), col_names = std::move(col_names),
                show_acquire_time](std::ostream& os,
                                   const std::vector<RunResult>& results) {
    StatsTable table(title);
    for (size_t i = 0; i < results.size(); ++i)
      table.add(col_names[i], results[i], show_acquire_time);
    table.print(os);
  };
  return spec;
}

// Speedup table: cell 0 is the sequential baseline, then row-major
// (row r, processor count k) at index 1 + r * |procs| + k.
TableSpec speedupSpec(std::string name, std::string title,
                      std::vector<std::string> row_names, Cell seq_cell,
                      std::vector<Cell> grid_cells) {
  TableSpec spec;
  spec.name = std::move(name);
  spec.cells.push_back(std::move(seq_cell));
  for (auto& c : grid_cells) spec.cells.push_back(std::move(c));
  spec.print = [title = std::move(title), row_names = std::move(row_names)](
                   std::ostream& os, const std::vector<RunResult>& results) {
    SpeedupTable table(title, kSpeedupProcs);
    const double t_seq = results[0].seconds;
    const size_t np = kSpeedupProcs.size();
    for (size_t r = 0; r < row_names.size(); ++r) {
      std::vector<double> times;
      for (size_t k = 0; k < np; ++k)
        times.push_back(results[1 + r * np + k].seconds);
      table.add(row_names[r], t_seq, times);
    }
    table.print(os);
  };
  return spec;
}

}  // namespace

TableSpec table1Spec(const Options& o) {
  return statsSpec(
      "table1_is_stats",
      "Table 1: Statistics of IS on " + std::to_string(o.procs) +
          " processors",
      {"LRC_d", "VC_d", "VC_sd"},
      {isCell(o, "LRC_d", Protocol::kLrcDiff, IsVariant::kTraditional,
              o.procs),
       isCell(o, "VC_d", Protocol::kVcDiff, IsVariant::kVopp, o.procs),
       isCell(o, "VC_sd", Protocol::kVcSd, IsVariant::kVopp, o.procs)});
}

TableSpec table2Spec(const Options& o) {
  return statsSpec(
      "table2_is_fewer_barriers",
      "Table 2: Statistics of IS with fewer barriers on " +
          std::to_string(o.procs) + " processors",
      {"VC_d", "VC_sd"},
      {isCell(o, "VC_d_lb", Protocol::kVcDiff,
              IsVariant::kVoppFewerBarriers, o.procs),
       isCell(o, "VC_sd_lb", Protocol::kVcSd, IsVariant::kVoppFewerBarriers,
              o.procs)});
}

TableSpec table3Spec(const Options& o) {
  std::vector<Cell> grid;
  for (int p : kSpeedupProcs)
    grid.push_back(
        isCell(o, "LRC_d", Protocol::kLrcDiff, IsVariant::kTraditional, p));
  for (int p : kSpeedupProcs)
    grid.push_back(isCell(o, "VC_sd", Protocol::kVcSd, IsVariant::kVopp, p));
  for (int p : kSpeedupProcs)
    grid.push_back(isCell(o, "VC_sd_lb", Protocol::kVcSd,
                          IsVariant::kVoppFewerBarriers, p));
  return speedupSpec("table3_is_speedup",
                     "Table 3: Speedup of IS on LRC_d and VC_sd",
                     {"LRC_d", "VC_sd", "VC_sd lb"}, isSeqCell(o),
                     std::move(grid));
}

TableSpec table4Spec(const Options& o) {
  return statsSpec(
      "table4_gauss_stats",
      "Table 4: Statistics of Gauss on " + std::to_string(o.procs) +
          " processors",
      {"LRC_d", "VC_d", "VC_sd"},
      {gaussCell(o, "LRC_d", Protocol::kLrcDiff, GaussVariant::kTraditional,
                 o.procs),
       gaussCell(o, "VC_d", Protocol::kVcDiff, GaussVariant::kVopp, o.procs),
       gaussCell(o, "VC_sd", Protocol::kVcSd, GaussVariant::kVopp,
                 o.procs)});
}

TableSpec table5Spec(const Options& o) {
  std::vector<Cell> grid;
  for (int p : kSpeedupProcs)
    grid.push_back(gaussCell(o, "LRC_d", Protocol::kLrcDiff,
                             GaussVariant::kTraditional, p));
  for (int p : kSpeedupProcs)
    grid.push_back(
        gaussCell(o, "VC_sd", Protocol::kVcSd, GaussVariant::kVopp, p));
  return speedupSpec("table5_gauss_speedup",
                     "Table 5: Speedup of Gauss on LRC_d and VC_sd",
                     {"LRC_d", "VC_sd"}, gaussSeqCell(o), std::move(grid));
}

TableSpec table6Spec(const Options& o) {
  return statsSpec(
      "table6_sor_stats",
      "Table 6: Statistics of SOR on " + std::to_string(o.procs) +
          " processors",
      {"LRC_d", "VC_d", "VC_sd"},
      {sorCell(o, "LRC_d", Protocol::kLrcDiff, SorVariant::kTraditional,
               o.procs),
       sorCell(o, "VC_d", Protocol::kVcDiff, SorVariant::kVopp, o.procs),
       sorCell(o, "VC_sd", Protocol::kVcSd, SorVariant::kVopp, o.procs)});
}

TableSpec table7Spec(const Options& o) {
  std::vector<Cell> grid;
  for (int p : kSpeedupProcs)
    grid.push_back(
        sorCell(o, "LRC_d", Protocol::kLrcDiff, SorVariant::kTraditional, p));
  for (int p : kSpeedupProcs)
    grid.push_back(sorCell(o, "VC_sd", Protocol::kVcSd, SorVariant::kVopp, p));
  return speedupSpec("table7_sor_speedup",
                     "Table 7: Speedup of SOR on LRC_d and VC_sd",
                     {"LRC_d", "VC_sd"}, sorSeqCell(o), std::move(grid));
}

TableSpec table8Spec(const Options& o) {
  return statsSpec(
      "table8_nn_stats",
      "Table 8: Statistics of NN on " + std::to_string(o.procs) +
          " processors",
      {"LRC_d", "VC_d", "VC_sd"},
      {nnCell(o, "LRC_d", Protocol::kLrcDiff, NnVariant::kTraditional,
              o.procs),
       nnCell(o, "VC_d", Protocol::kVcDiff, NnVariant::kVopp, o.procs),
       nnCell(o, "VC_sd", Protocol::kVcSd, NnVariant::kVopp, o.procs)},
      /*show_acquire_time=*/true);
}

TableSpec table9Spec(const Options& o) {
  std::vector<Cell> grid;
  for (int p : kSpeedupProcs)
    grid.push_back(
        nnCell(o, "LRC_d", Protocol::kLrcDiff, NnVariant::kTraditional, p));
  for (int p : kSpeedupProcs)
    grid.push_back(nnCell(o, "VC_sd", Protocol::kVcSd, NnVariant::kVopp, p));
  for (int p : kSpeedupProcs)
    grid.push_back(nnCell(o, "MPI", Protocol::kVcSd, NnVariant::kMpi, p));
  return speedupSpec("table9_nn_speedup",
                     "Table 9: Speedup of NN on LRC_d, VC_sd and MPI",
                     {"LRC_d", "VC_sd", "MPI"}, nnSeqCell(o),
                     std::move(grid));
}

TableSpec table10Spec(const Options& o) {
  TableSpec spec;
  spec.name = "table10_axis_sweep";
  for (const AxisVariation& v : kAxisVariations) {
    spec.cells.push_back(isAxisCell(o, "LRC_d", Protocol::kLrcDiff,
                                    IsVariant::kTraditional, o.procs, v));
    spec.cells.push_back(
        isAxisCell(o, "VC_sd", Protocol::kVcSd, IsVariant::kVopp, o.procs, v));
    spec.cells.push_back(sorAxisCell(o, "LRC_d", Protocol::kLrcDiff,
                                     SorVariant::kTraditional, o.procs, v));
    spec.cells.push_back(sorAxisCell(o, "VC_sd", Protocol::kVcSd,
                                     SorVariant::kVopp, o.procs, v));
  }
  std::vector<std::string> ids;
  for (const Cell& c : spec.cells) ids.push_back(c.id);
  spec.print = [ids = std::move(ids), procs = o.procs](
                   std::ostream& os, const std::vector<RunResult>& results) {
    os << "\nTable 10: Axis sweep (bandwidth / loss / size) on "
       << std::to_string(procs) << " processors\n";
    TextTable t;
    t.header({"cell", "Time (Sec.)", "Num. Msg", "Rexmit"});
    for (size_t i = 0; i < results.size(); ++i)
      t.row({ids[i], TextTable::format(results[i].seconds),
             TextTable::format(results[i].net.messages),
             TextTable::format(results[i].net.retransmissions)});
    t.print(os);
  };
  return spec;
}

TableSpec table11Spec(const Options& o) {
  std::vector<int> procs = {32, 64, 128, 256};
  if (o.big) {
    procs.push_back(512);
    procs.push_back(1024);
  }
  TableSpec spec;
  spec.name = "table11_scaling";
  for (int p : procs) {
    // Past 256 processors the star/centralized cells are deep in
    // retransmission collapse — simulated time and host memory both blow
    // up on work the 256p rows already demonstrate — so the big-p rows
    // carry only the scalable stack.
    if (p <= 256) {
      spec.cells.push_back(scalingCell(o, "LRC_d", Protocol::kLrcDiff,
                                       IsVariant::kTraditional, p,
                                       /*scalable=*/false));
    }
    spec.cells.push_back(scalingCell(o, "LRC_d_ft", Protocol::kLrcDiff,
                                     IsVariant::kTraditional, p,
                                     /*scalable=*/true));
    if (p <= 256) {
      spec.cells.push_back(scalingCell(o, "VC_sd", Protocol::kVcSd,
                                       IsVariant::kVopp, p,
                                       /*scalable=*/false));
    }
    // VOPP IS lays out p^2 contribution views, so each node's page table
    // is O(p^2) and the cluster's host footprint O(p^3): ~7.5 GB at 512
    // processors, past any CI runner at 1024. The traditional variant's
    // flat bucket array keeps the 1024p row affordable, and still
    // exercises trunks, the tree barrier, and sharded homes at full
    // scale.
    if (p <= 512) {
      spec.cells.push_back(scalingCell(o, "VC_sd_ft", Protocol::kVcSd,
                                       IsVariant::kVopp, p,
                                       /*scalable=*/true));
    }
  }
  std::vector<std::string> ids;
  for (const Cell& c : spec.cells) ids.push_back(c.id);
  spec.print = [ids = std::move(ids)](
                   std::ostream& os, const std::vector<RunResult>& results) {
    os << "\nTable 11: IS scaling — star/central vs fat tree with tree "
          "barrier and hashed view homes (_ft)\n";
    TextTable t;
    t.header({"cell", "Time (Sec.)", "Num. Msg", "Barrier Time (usec.)",
              "Rexmit"});
    for (size_t i = 0; i < results.size(); ++i)
      t.row({ids[i], TextTable::format(results[i].seconds),
             TextTable::format(results[i].net.messages),
             TextTable::format(results[i].dsm.avgBarrierMicros()),
             TextTable::format(results[i].net.retransmissions)});
    t.print(os);
  };
  return spec;
}

std::vector<TableSpec> allTableSpecs(const Options& o) {
  std::vector<TableSpec> specs;
  specs.push_back(table1Spec(o));
  specs.push_back(table2Spec(o));
  specs.push_back(table3Spec(o));
  specs.push_back(table4Spec(o));
  specs.push_back(table5Spec(o));
  specs.push_back(table6Spec(o));
  specs.push_back(table7Spec(o));
  specs.push_back(table8Spec(o));
  specs.push_back(table9Spec(o));
  specs.push_back(table10Spec(o));
  return specs;
}

int applyScreen(std::vector<TableSpec>& specs, const std::string& model_path,
                double tol, std::ostream& log) {
  std::ifstream f(model_path, std::ios::binary);
  VODSM_CHECK_MSG(f.good(), "cannot read screen model " + model_path);
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::vector<model::CellEval> evals =
      model::loadModelEvals(support::Json::parse(buf.str()));
  std::map<std::string, const model::CellEval*> by_id;
  for (const model::CellEval& e : evals) by_id[e.id] = &e;

  int screened = 0;
  for (TableSpec& spec : specs) {
    for (Cell& cell : spec.cells) {
      const auto it = by_id.find(cell.id);
      // Only skip a cell the model has demonstrably hit: its recorded
      // prediction error (from the model's own fit run) must be within
      // tolerance. Unknown cells always simulate.
      if (it == by_id.end() || it->second->rel_err > tol) continue;
      const double predicted = it->second->predicted;
      const std::string note = it->second->note;
      cell.run = [predicted, note] {
        RunResult r;
        r.seconds = predicted;
        r.screened = true;
        r.screen_note = note;
        return r;
      };
      char line[64];
      std::snprintf(line, sizeof(line), "%.6f s (fit err %.1f%%", predicted,
                    it->second->rel_err * 100.0);
      log << "screen: skip " << cell.id << " — predicted " << line
          << ", model " << note << ")\n";
      ++screened;
    }
  }
  return screened;
}

SpecRun runSpec(const TableSpec& spec, int jobs) {
  using Clock = std::chrono::steady_clock;
  SpecRun out;
  out.results.resize(spec.cells.size());
  out.cell_host_seconds.resize(spec.cells.size(), 0.0);
  const auto t0 = Clock::now();
  harness::ParallelRunner(jobs).forEach(spec.cells.size(), [&](size_t i) {
    const auto c0 = Clock::now();
    out.results[i] = spec.cells[i].run();
    out.cell_host_seconds[i] =
        std::chrono::duration<double>(Clock::now() - c0).count();
  });
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

std::string profileFileName(const std::string& cell_id) {
  return diff::cellProfileFileName(cell_id);
}

int writeCellProfiles(const std::string& dir,
                      const std::vector<TableSpec>& specs,
                      const std::vector<SpecRun>& runs, std::ostream& log) {
  std::filesystem::create_directories(dir);
  int written = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    for (size_t i = 0; i < specs[s].cells.size(); ++i) {
      const RunResult& r = runs[s].results[i];
      if (!r.profile.enabled()) continue;  // screened / MPI reference cells
      obs::RunProfile p = r.profile;
      p.label = specs[s].cells[i].id;
      const std::filesystem::path path =
          std::filesystem::path(dir) / profileFileName(p.label);
      std::ofstream f(path);
      VODSM_CHECK_MSG(f.good(), "cannot write " + path.string());
      obs::writeRunProfileJson(f, p);
      ++written;
    }
  }
  log << "profiles: wrote " << written << " cell profiles to " << dir
      << "\n";
  return written;
}

int compareCellProfiles(const std::string& baseline_dir,
                        const std::vector<TableSpec>& specs,
                        const std::vector<SpecRun>& runs, std::ostream& os,
                        std::ostream& log) {
  int printed = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    for (size_t i = 0; i < specs[s].cells.size(); ++i) {
      const RunResult& r = runs[s].results[i];
      if (!r.profile.enabled()) continue;
      const std::string& id = specs[s].cells[i].id;
      const std::filesystem::path path =
          std::filesystem::path(baseline_dir) / profileFileName(id);
      if (!std::filesystem::exists(path)) {
        log << "compare: no baseline profile for " << id << " ("
            << path.string() << ")\n";
        continue;
      }
      const obs::RunProfile baseline =
          obs::loadRunProfileFile(path.string());
      obs::RunProfile current = r.profile;
      current.label = id;
      const obs::DiffReport report = obs::diffProfiles(baseline, current);
      obs::printDiffReport(os, report, "Differential report: " + id);
      ++printed;
    }
  }
  return printed;
}

namespace {

std::string jsonEsc(const std::string& s) {
  std::string esc;
  for (char c : s) {
    if (c == '"' || c == '\\') esc.push_back('\\');
    esc.push_back(c);
  }
  return esc;
}

}  // namespace

void writeTablesJson(std::ostream& os, const std::vector<TableSpec>& specs,
                     const std::vector<SpecRun>& runs, const Options& o,
                     int jobs, double wall_seconds,
                     double serial_wall_seconds) {
  size_t n_cells = 0;
  for (const auto& s : specs) n_cells += s.cells.size();
  size_t n_screened = 0;
  for (const auto& run : runs)
    for (const auto& r : run.results)
      if (r.screened) ++n_screened;
  os << std::setprecision(6) << std::fixed;
  os << "{\n";
  os << "  \"suite\": \"paper_tables\",\n";
  // Host provenance: which machine/configuration produced this artifact.
  // Every key here is host-dependent, so bench_diff ignores the whole
  // object (like "jobs"); the simulated fields it compares stay
  // byte-identical regardless of where the suite ran.
  os << "  \"host\": {\"cores\": " << std::thread::hardware_concurrency()
     << ", \"jobs\": " << jobs
     << ", \"sim_threads\": " << sim::resolveSimThreads(o.sim_threads)
     << ", \"compiler\": \"" << kCompilerId << "\"},\n";
  os << "  \"full\": " << (o.full ? "true" : "false") << ",\n";
  os << "  \"breakdown\": " << (o.breakdown ? "true" : "false") << ",\n";
  if (!o.faults.empty()) {
    // Record the active fault spec (escaped as a JSON string) so a faulted
    // artifact can never be mistaken for a baseline. Fault-free runs write
    // no fault keys at all, keeping the baseline byte-identical.
    os << "  \"faults\": \"" << jsonEsc(o.faults) << "\",\n";
  }
  if (!o.screen.empty()) {
    // Screen provenance, written only on screened sweeps (like "faults"):
    // a screened artifact names its model and how many cells it skipped,
    // so it can never be mistaken for a fully simulated baseline.
    // bench_diff only tolerates these keys under --allow-screened.
    os << "  \"screen\": \"" << jsonEsc(o.screen) << "\",\n";
    os << "  \"screened_cells\": " << n_screened << ",\n";
  }
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"cells\": " << n_cells << ",\n";
  os << "  \"wall_seconds\": " << wall_seconds << ",\n";
  if (serial_wall_seconds > 0) {
    os << "  \"serial_wall_seconds\": " << serial_wall_seconds << ",\n";
    os << "  \"speedup_vs_serial\": "
       << (wall_seconds > 0 ? serial_wall_seconds / wall_seconds : 0.0)
       << ",\n";
  }
  os << "  \"tables\": [\n";
  for (size_t s = 0; s < specs.size(); ++s) {
    os << "    {\"name\": \"" << specs[s].name << "\", \"wall_seconds\": "
       << runs[s].wall_seconds << ", \"cells\": [\n";
    for (size_t i = 0; i < specs[s].cells.size(); ++i) {
      const auto& r = runs[s].results[i];
      const model::AxisPoint& ax = specs[s].cells[i].axes;
      if (r.screened) {
        // A screened cell was never simulated: it records the model's
        // prediction and NO simulated fields, so it cannot contaminate a
        // baseline comparison (bench_diff skips it under --allow-screened
        // and fails loudly otherwise).
        os << "      {\"id\": \"" << specs[s].cells[i].id
           << "\", \"screened\": true, \"predicted_seconds\": " << r.seconds
           << ", \"screen_note\": \"" << jsonEsc(r.screen_note) << "\"}"
           << (i + 1 < specs[s].cells.size() ? "," : "") << "\n";
        continue;
      }
      os << "      {\"id\": \"" << specs[s].cells[i].id
         << "\", \"sim_seconds\": " << r.seconds;
      if (ax.explicit_axes) {
        // The cell's coordinates in the model axis space; input metadata,
        // not simulated output, so bench_diff ignores the object.
        os << ", \"axes\": {\"procs\": " << ax.procs
           << ", \"n_scale\": " << ax.n_scale
           << ", \"bw_mbps\": " << ax.bw_mbps
           << ", \"loss_pct\": " << ax.loss_pct << "}";
      }
      os << ", \"host_seconds\": " << runs[s].cell_host_seconds[i]
         << ", \"sim_threads\": " << r.sim_threads
         << ", \"messages\": " << r.net.messages
         << ", \"payload_bytes\": " << r.net.payload_bytes;
      if (r.self_speedup_vs_serial > 0) {
        // Host-time-only: parallel-engine self-speedup of this cell against
        // its own serial rerun (the gate tolerates these like host_seconds).
        os << ", \"self_speedup_vs_serial\": " << r.self_speedup_vs_serial;
      }
      if (!o.faults.empty()) {
        // Per-cell fault columns, present only on faulted sweeps.
        os << ", \"retransmissions\": " << r.net.retransmissions
           << ", \"frames_dropped_fault\": " << r.net.frames_dropped_fault
           << ", \"frames_duplicated\": " << r.net.frames_duplicated
           << ", \"frames_reordered\": " << r.net.frames_reordered
           << ", \"frames_degraded\": " << r.net.frames_degraded;
      }
      if (r.breakdown.enabled()) {
        const obs::BucketSet& b = r.breakdown.aggregate;
        os << ", \"breakdown_seconds\": {\"compute\": "
           << sim::toSeconds(b.compute)
           << ", \"barrier_wait\": " << sim::toSeconds(b.barrier_wait)
           << ", \"acquire_wait\": " << sim::toSeconds(b.acquire_wait)
           << ", \"fault_diff\": " << sim::toSeconds(b.fault_diff)
           << ", \"idle\": " << sim::toSeconds(b.idle) << "}";
      }
      if (r.critpath.enabled()) {
        // Critical-path attribution: the buckets partition the cell's
        // makespan exactly, so these sum to sim_seconds.
        const auto& cat = r.critpath.by_cat;
        os << ", \"critpath_seconds\": {";
        for (int c = 0; c < obs::kPathCatCount; ++c) {
          os << (c ? ", " : "") << "\"" << obs::kPathCatName[c]
             << "\": " << sim::toSeconds(cat[c]);
        }
        os << "}";
      }
      if (r.metrics.enabled()) {
        // Protocol memory footprint and network utilization. Peaks are
        // max-over-nodes high-water marks; utilization is busy time over
        // total link-direction-time (see obs::MetricsSummary). The MPI
        // reference cells are unmetered, so these keys are absent there.
        os << ", \"peak_twin_bytes\": "
           << r.metrics.maxPeak(obs::Metric::kTwinBytes)
           << ", \"peak_diff_bytes\": "
           << r.metrics.maxPeak(obs::Metric::kDiffStoreBytes)
           << ", \"mean_link_utilization\": "
           << r.metrics.meanLinkUtilization();
      }
      os << "}" << (i + 1 < specs[s].cells.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (s + 1 < specs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int tableMain(const TableSpec& spec, const Options& o) {
  SpecRun run = runSpec(spec, o.jobs);
  spec.print(std::cout, run.results);
  if (o.breakdown) {
    for (size_t i = 0; i < spec.cells.size(); ++i)
      if (run.results[i].breakdown.enabled())
        obs::printBreakdown(std::cout, run.results[i].breakdown,
                            "Time breakdown: " + spec.cells[i].id);
  }
  if (o.critpath) {
    for (size_t i = 0; i < spec.cells.size(); ++i)
      if (run.results[i].critpath.enabled())
        obs::printCriticalPath(std::cout, run.results[i].critpath,
                               "Critical path: " + spec.cells[i].id);
  }
  if (o.pageheat) {
    for (size_t i = 0; i < spec.cells.size(); ++i)
      if (run.results[i].pageheat.enabled())
        obs::printPageHeat(std::cout, run.results[i].pageheat,
                           "Page contention: " + spec.cells[i].id);
  }
  if (o.diagnose) {
    for (size_t i = 0; i < spec.cells.size(); ++i)
      if (run.results[i].diagnosis.enabled())
        obs::printDiagnosis(std::cout, run.results[i].diagnosis,
                            "Diagnosis: " + spec.cells[i].id);
  }
  try {
    if (!o.profile_dir.empty())
      writeCellProfiles(o.profile_dir, {spec}, {run}, std::cerr);
    if (!o.compare_dir.empty())
      compareCellProfiles(o.compare_dir, {spec}, {run}, std::cout,
                          std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!o.json.empty()) {
    std::ofstream f(o.json);
    if (!f) {
      std::cerr << "cannot write " << o.json << "\n";
      return 1;
    }
    writeTablesJson(f, {spec}, {run}, o, harness::resolveJobs(o.jobs),
                    run.wall_seconds, /*serial_wall_seconds=*/0);
  }
  return 0;
}

}  // namespace vodsm::bench
