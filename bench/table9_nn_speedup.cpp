// Table 9: speedup of NN on LRC_d, VC_sd and MPI (2..32 processors).
//
// Expected shape: VC_sd far above LRC_d; MPI comparable to VC_sd up to 16
// processors with the gap opening at 24-32 (the paper's closing
// observation).
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::nnParams(opts.full);

  const double t_seq =
      apps::runNn(bench::sequentialConfig(), params,
                  apps::NnVariant::kTraditional)
          .result.seconds;

  bench::SpeedupTable table("Table 9: Speedup of NN on LRC_d, VC_sd and MPI",
                            {2, 4, 8, 16, 24, 32});
  std::vector<double> lrc, vcsd, mpi;
  for (int p : table.procs()) {
    lrc.push_back(apps::runNn(bench::baseConfig(dsm::Protocol::kLrcDiff, p),
                              params, apps::NnVariant::kTraditional)
                      .result.seconds);
    vcsd.push_back(apps::runNn(bench::baseConfig(dsm::Protocol::kVcSd, p),
                               params, apps::NnVariant::kVopp)
                       .result.seconds);
    mpi.push_back(apps::runNn(bench::baseConfig(dsm::Protocol::kVcSd, p),
                              params, apps::NnVariant::kMpi)
                      .result.seconds);
  }
  table.add("LRC_d", t_seq, lrc);
  table.add("VC_sd", t_seq, vcsd);
  table.add("MPI", t_seq, mpi);
  table.print(std::cout);
  return 0;
}
