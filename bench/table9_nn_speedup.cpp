// Table 9: speedup of NN on LRC_d, VC_sd and MPI (2..32 processors).
//
// Expected shape: VC_sd far above LRC_d; MPI comparable to VC_sd up to 16
// processors with the gap opening at 24-32 (the paper's closing
// observation).
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table9Spec(opts), opts);
}
