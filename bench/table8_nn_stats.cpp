// Table 8: statistics of NN on 16 processors.
//
// Expected shape (paper Section 5.4): VC_d alone shows no advantage — the
// VOPP program uses more view primitives, so it sends more messages and
// data and runs slower than LRC_d. The potential only pays off with the
// integrated-diff implementation: VC_sd cuts messages and data sharply
// (diff integration + piggybacking) and beats LRC_d.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::nnParams(opts.full);

  bench::StatsTable table("Table 8: Statistics of NN on " +
                          std::to_string(opts.procs) + " processors");
  table.add("LRC_d",
            apps::runNn(bench::baseConfig(dsm::Protocol::kLrcDiff, opts.procs),
                        params, apps::NnVariant::kTraditional)
                .result,
            /*show_acquire_time=*/true);
  table.add("VC_d",
            apps::runNn(bench::baseConfig(dsm::Protocol::kVcDiff, opts.procs),
                        params, apps::NnVariant::kVopp)
                .result,
            /*show_acquire_time=*/true);
  table.add("VC_sd",
            apps::runNn(bench::baseConfig(dsm::Protocol::kVcSd, opts.procs),
                        params, apps::NnVariant::kVopp)
                .result,
            /*show_acquire_time=*/true);
  table.print(std::cout);
  return 0;
}
