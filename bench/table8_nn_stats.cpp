// Table 8: statistics of NN on 16 processors.
//
// Expected shape (paper Section 5.4): VC_d alone shows no advantage — the
// VOPP program uses more view primitives, so it sends more messages and
// data and runs slower than LRC_d. The potential only pays off with the
// integrated-diff implementation: VC_sd cuts messages and data sharply
// (diff integration + piggybacking) and beats LRC_d.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table8Spec(opts), opts);
}
