// Table 11: IS scaling sweep to 256 processors (nightly --big: 1024).
//
// Not a paper table: the paper's testbed stops at 32 processors. This sweep
// compares the paper's protocol stack (star fabric, centralized barrier
// manager, id-mod-p lock/view homes) against the scalable stack (fat-tree
// fabric, radix-4 tree barrier, hashed view homes — the "_ft" cells) as the
// processor count doubles past the testbed, and feeds the committed
// BENCH_scaling.json baseline behind the scaling_regression_gate ctest.
// fit_scaling --validate checks its star cells against crossover
// extrapolations fitted from the <= 32p paper grid.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table11Spec(opts), opts);
}
