// Microbenchmark: the simulated network's behaviour — one-way message
// latency and RPC round-trip time versus payload size, and throughput under
// fan-in. The *simulated* times are the interesting output (reported as
// counters); host time measures simulator overhead per message.
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "net/transport.hpp"
#include "sim/task.hpp"

namespace {

using namespace vodsm;

void BM_OneWayLatency(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  sim::Time last_latency = 0;
  for (auto _ : state) {
    sim::Engine e;
    net::NetConfig cfg;
    net::Network net(e, 2, cfg, 1);
    net::Endpoint a(e, net, 0), b(e, net, 1);
    sim::Time delivered = 0;
    b.setHandler([&](net::Delivery&& d, const net::ReplyToken&) {
      delivered = d.arrive;
    });
    a.post(1, 1, Bytes(size), 0);
    e.run();
    last_latency = delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["simulated_us"] = sim::toMicros(last_latency);
}
BENCHMARK(BM_OneWayLatency)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_RpcRoundTrip(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  sim::Time rtt = 0;
  for (auto _ : state) {
    sim::Engine e;
    net::NetConfig cfg;
    net::Network net(e, 2, cfg, 1);
    net::Endpoint a(e, net, 0), b(e, net, 1);
    b.setHandler([&](net::Delivery&& d, const net::ReplyToken& tok) {
      b.reply(tok, 2, Bytes(size), d.arrive);
    });
    sim::spawn([](net::Endpoint& ep, sim::Time& out) -> sim::Task<void> {
      auto r = co_await ep.request(1, 1, Bytes(64), 0);
      out = r.arrive;
    }(a, rtt));
    e.run();
    benchmark::DoNotOptimize(rtt);
  }
  state.counters["simulated_rtt_us"] = sim::toMicros(rtt);
}
BENCHMARK(BM_RpcRoundTrip)->Arg(64)->Arg(4096)->Arg(65536);

// N senders blast one receiver: measures fan-in serialization and (with
// small queues) drop behaviour.
void BM_FanIn(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  uint64_t rexmit = 0;
  sim::Time finish = 0;
  for (auto _ : state) {
    sim::Engine e;
    net::NetConfig cfg;
    cfg.rx_queue_frames = 32;
    net::Network net(e, static_cast<int>(senders) + 1, cfg, 1);
    std::vector<std::unique_ptr<net::Endpoint>> eps;
    for (int i = 0; i <= senders; ++i)
      eps.push_back(std::make_unique<net::Endpoint>(
          e, net, static_cast<net::NodeId>(i)));
    int received = 0;
    eps[0]->setHandler([&](net::Delivery&& d, const net::ReplyToken&) {
      received++;
      finish = d.arrive;
    });
    for (int i = 1; i <= senders; ++i)
      for (int m = 0; m < 4; ++m)
        eps[static_cast<size_t>(i)]->post(0, 1, Bytes(1024), 0);
    e.run();
    rexmit = net.stats().retransmissions;
    benchmark::DoNotOptimize(received);
  }
  state.counters["simulated_us"] = sim::toMicros(finish);
  state.counters["rexmit"] = static_cast<double>(rexmit);
}
BENCHMARK(BM_FanIn)->Arg(4)->Arg(16)->Arg(31);

}  // namespace

BENCHMARK_MAIN();
