// Extension (paper Section 6 future work): investigate the reasons behind
// the performance difference between VOPP and MPI programs on larger
// processor counts.
//
// Runs the NN workload on VC_sd and MPI across processor counts and
// decomposes the simulated time: compute is identical by construction, so
// the whole gap is synchronization + data movement. The decomposition shows
// the gap is dominated by (a) the per-epoch acquire round trips that VOPP
// pays for view coherence where MPI's allreduce pipelines the same bytes
// with no control messages, and (b) the barrier episodes that VOPP needs to
// order view reuse, which MPI's matched sends make implicit.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::nnParams(opts.full);

  std::printf("NN, VC_sd (VOPP) versus MPI: where does the gap come from?\n\n");
  TextTable t;
  t.header({"procs", "impl", "time(s)", "acquire-wait(s)", "barrier-wait(s)",
            "msgs", "data(MB)"});
  for (int p : {2, 4, 8, 16, 24, 32}) {
    auto vopp = apps::runNn(bench::baseConfig(dsm::Protocol::kVcSd, p), params,
                            apps::NnVariant::kVopp);
    auto mpi = apps::runNn(bench::baseConfig(dsm::Protocol::kVcSd, p), params,
                           apps::NnVariant::kMpi);
    // Aggregate per-node waits, averaged over nodes for comparability.
    double acq_wait =
        sim::toSeconds(vopp.result.dsm.acquire_wait_total) / p;
    double barr_wait =
        sim::toSeconds(vopp.result.dsm.barrier_wait_total) / p;
    t.row({std::to_string(p), "VC_sd", TextTable::format(vopp.result.seconds),
           TextTable::format(acq_wait), TextTable::format(barr_wait),
           TextTable::format(vopp.result.net.messages),
           TextTable::format(vopp.result.dataMBytes())});
    t.row({"", "MPI", TextTable::format(mpi.result.seconds), "-", "-",
           TextTable::format(mpi.result.net.messages),
           TextTable::format(mpi.result.dataMBytes())});
  }
  t.print(std::cout);
  std::printf(
      "\nCompute is bit-identical across the two implementations, so the\n"
      "entire gap is the acquire-wait and barrier-wait columns: VOPP's view\n"
      "coherence control traffic, which MPI's matched sends do not need.\n");
  return 0;
}
