// Table 2: statistics of IS with fewer barriers on 16 processors.
//
// The paper's Section 3.2 optimization: under VOPP the buffer-reuse barrier
// only replicated what view exclusivity already guarantees, so it is moved
// out of the loop. Expected shape: lower time than the Table 1 VOPP runs,
// with the same data volume.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table2Spec(opts), opts);
}
