// Table 2: statistics of IS with fewer barriers on 16 processors.
//
// The paper's Section 3.2 optimization: under VOPP the buffer-reuse barrier
// only replicated what view exclusivity already guarantees, so it is moved
// out of the loop. Expected shape: lower time than the Table 1 VOPP runs,
// with the same data volume.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::isParams(opts.full);

  bench::StatsTable table("Table 2: Statistics of IS with fewer barriers on " +
                          std::to_string(opts.procs) + " processors");
  table.add("VC_d",
            apps::runIs(bench::baseConfig(dsm::Protocol::kVcDiff, opts.procs),
                        params, apps::IsVariant::kVoppFewerBarriers)
                .result);
  table.add("VC_sd",
            apps::runIs(bench::baseConfig(dsm::Protocol::kVcSd, opts.procs),
                        params, apps::IsVariant::kVoppFewerBarriers)
                .result);
  table.print(std::cout);
  return 0;
}
