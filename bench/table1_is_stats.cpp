// Table 1: statistics of IS on 16 processors (LRC_d, VC_d, VC_sd).
//
// Expected shape (paper Section 5.1): VC_d sends MORE messages and data
// than LRC_d yet runs FASTER, because VC barriers carry no consistency
// (compare the Barrier Time rows) and the distributed traffic suffers fewer
// retransmissions (Rexmit row). VC_sd cuts both messages and data sharply
// and issues zero diff requests.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table1Spec(opts), opts);
}
