// Table 1: statistics of IS on 16 processors (LRC_d, VC_d, VC_sd).
//
// Expected shape (paper Section 5.1): VC_d sends MORE messages and data
// than LRC_d yet runs FASTER, because VC barriers carry no consistency
// (compare the Barrier Time rows) and the distributed traffic suffers fewer
// retransmissions (Rexmit row). VC_sd cuts both messages and data sharply
// and issues zero diff requests.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::isParams(opts.full);

  bench::StatsTable table("Table 1: Statistics of IS on " +
                          std::to_string(opts.procs) + " processors");
  table.add("LRC_d",
            apps::runIs(bench::baseConfig(dsm::Protocol::kLrcDiff, opts.procs),
                        params, apps::IsVariant::kTraditional)
                .result);
  table.add("VC_d",
            apps::runIs(bench::baseConfig(dsm::Protocol::kVcDiff, opts.procs),
                        params, apps::IsVariant::kVopp)
                .result);
  table.add("VC_sd",
            apps::runIs(bench::baseConfig(dsm::Protocol::kVcSd, opts.procs),
                        params, apps::IsVariant::kVopp)
                .result);
  table.print(std::cout);
  return 0;
}
