// Least-squares fitter for the parallel-cost model used by fit_scaling:
//
//     T(p) = c * p^a * log2(p)^b
//
// fitted in log space (ln T = ln c + a ln p + b ln log2 p) through the
// normal equations with partial pivoting. Header-only so the unit tests
// (tests/test_bench_tools.cpp) exercise exactly the solver the CLI uses.
// The elimination itself lives in model/linear.hpp, shared with the
// multi-axis fitter (model/fit.hpp) that generalizes this form.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "model/linear.hpp"

namespace vodsm::bench::fit {

struct Fit {
  double c = 0;
  double a = 0;
  double b = 0;
  double r2 = 0;
  int points = 0;
  bool ok = false;

  double eval(double p) const {
    return c * std::pow(p, a) * std::pow(std::log2(p), b);
  }
};

// Solves the 3x3 (or 2x2 when the log-log term is dropped) normal
// equations. `m` is the augmented matrix (n rows of n + 1). Returns false
// on a singular system. Kept under its historical name; the implementation
// is the shared one in model/linear.hpp.
inline bool solveNormal(std::vector<std::vector<double>> m,
                        std::vector<double>& x) {
  return model::solveNormal(std::move(m), x);
}

// Fits (p, T) samples; needs at least two points. The log2 exponent b is
// identified only with three or more points and a nonsingular system;
// otherwise the fit falls back to T = c * p^a (b = 0). Samples with p < 2
// or T <= 0 are the caller's responsibility to exclude (ln of them is
// undefined).
inline Fit fitSeries(const std::vector<std::pair<int, double>>& pts) {
  Fit fit;
  fit.points = static_cast<int>(pts.size());
  if (pts.size() < 2) return fit;

  // Design matrix rows: [1, ln p, ln log2 p] -> ln T.
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  for (const auto& [p, t] : pts) {
    rows.push_back({1.0, std::log(static_cast<double>(p)),
                    std::log(std::log2(static_cast<double>(p)))});
    ys.push_back(std::log(t));
  }

  auto normal = [&](size_t dims) {
    std::vector<std::vector<double>> m(dims,
                                       std::vector<double>(dims + 1, 0));
    for (size_t i = 0; i < rows.size(); ++i)
      for (size_t r = 0; r < dims; ++r) {
        for (size_t c = 0; c < dims; ++c) m[r][c] += rows[i][r] * rows[i][c];
        m[r][dims] += rows[i][r] * ys[i];
      }
    return m;
  };

  std::vector<double> coef;
  bool with_b = pts.size() >= 3 && solveNormal(normal(3), coef);
  if (!with_b) {
    // Fall back to T = c * p^a; the log-log term is collinear or there are
    // too few points to identify it.
    if (!solveNormal(normal(2), coef)) return fit;
    coef.push_back(0.0);
  }
  fit.c = std::exp(coef[0]);
  fit.a = coef[1];
  fit.b = coef[2];
  fit.ok = true;

  double mean = 0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ssr = 0, sst = 0;
  for (size_t i = 0; i < ys.size(); ++i) {
    const double pred = coef[0] + coef[1] * rows[i][1] + coef[2] * rows[i][2];
    ssr += (ys[i] - pred) * (ys[i] - pred);
    sst += (ys[i] - mean) * (ys[i] - mean);
  }
  fit.r2 = sst > 0 ? 1.0 - ssr / sst : 1.0;
  return fit;
}

}  // namespace vodsm::bench::fit
