// Whole-suite driver: every cell of the paper's nine evaluation tables
// (Tables 1-9) executed through the parallel experiment runner, then
// printed in table order and recorded to BENCH_tables.json.
//
// All ~120 cells across all tables are flattened into one work list and
// sharded over host threads, so the tail cells of one table overlap the
// next table's — the sweep's wall-clock is bounded by total work / cores,
// not by the slowest table. Results are collected in submission order, so
// stdout is byte-identical to running the nine binaries serially.
//
//   table_suite                      # all tables, all cores
//   table_suite --jobs=1             # serial fallback
//   table_suite --compare-serial     # also measure the serial sweep and
//                                    # record speedup in the JSON
//   table_suite --json=out.json      # default: BENCH_tables.json
//   table_suite --screen=model.json  # analytic screen: skip cells the
//                                    # fitted model predicts within
//                                    # --screen-tol (default 10%)
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/tables.hpp"
#include "harness/parallel_runner.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  using Clock = std::chrono::steady_clock;
  auto opts = bench::parseArgs(argc, argv);
  if (opts.json.empty()) opts.json = "BENCH_tables.json";
  // The suite always traces and meters: BENCH_tables.json carries a
  // per-cell time breakdown, critical-path attribution and memory/
  // utilization metrics, and neither tracing nor metering can perturb
  // the simulated results.
  opts.breakdown = true;
  opts.critpath = true;
  opts.metrics = true;
  const int jobs = harness::resolveJobs(opts.jobs);

  auto specs = bench::allTableSpecs(opts);

  if (!opts.screen.empty()) {
    // Replace model-predicted cells' runs with their predictions before
    // flattening; every skip is logged with the predicted value and the
    // model term it came from. Non-screened cells are untouched, so their
    // simulated fields stay byte-identical to a screen-free sweep.
    try {
      const int skipped =
          bench::applyScreen(specs, opts.screen, opts.screen_tol, std::cerr);
      std::cerr << "table_suite: screen " << opts.screen << " skipped "
                << skipped << " cells (tol "
                << static_cast<int>(opts.screen_tol * 100) << "%)\n";
    } catch (const std::exception& e) {
      std::cerr << "table_suite: " << e.what() << "\n";
      return 2;
    }
  }

  // Flatten every table's cells into one global sweep.
  struct Slot {
    size_t spec;
    size_t cell;
  };
  std::vector<Slot> slots;
  for (size_t s = 0; s < specs.size(); ++s)
    for (size_t c = 0; c < specs[s].cells.size(); ++c)
      slots.push_back({s, c});

  auto sweep = [&](int sweep_jobs) {
    std::vector<bench::SpecRun> runs(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      runs[s].results.resize(specs[s].cells.size());
      runs[s].cell_host_seconds.resize(specs[s].cells.size(), 0.0);
    }
    const auto t0 = Clock::now();
    harness::ParallelRunner(sweep_jobs).forEach(slots.size(), [&](size_t i) {
      const auto [s, c] = slots[i];
      const auto c0 = Clock::now();
      runs[s].results[c] = specs[s].cells[c].run();
      runs[s].cell_host_seconds[c] =
          std::chrono::duration<double>(Clock::now() - c0).count();
    });
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (auto& r : runs) r.wall_seconds = wall;  // one shared sweep
    return std::pair(std::move(runs), wall);
  };

  std::cerr << "table_suite: " << slots.size() << " cells across "
            << specs.size() << " tables, jobs=" << jobs
            << ", sim_threads=" << sim::resolveSimThreads(opts.sim_threads)
            << "\n";
  auto [runs, wall] = sweep(jobs);

  double serial_wall = 0;
  if (opts.compare_serial && jobs > 1) {
    std::cerr << "table_suite: re-running serially for comparison...\n";
    serial_wall = sweep(1).second;
  }

  for (size_t s = 0; s < specs.size(); ++s)
    specs[s].print(std::cout, runs[s].results);

  // Persisted per-cell run profiles and differential reports against a
  // baseline profile directory (see obs/profile.hpp, obs/profile_diff.hpp).
  // Both are pure post-processing over the sweep's traces.
  try {
    if (!opts.profile_dir.empty())
      bench::writeCellProfiles(opts.profile_dir, specs, runs, std::cerr);
    if (!opts.compare_dir.empty())
      bench::compareCellProfiles(opts.compare_dir, specs, runs, std::cout,
                                 std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "table_suite: " << e.what() << "\n";
    return 1;
  }

  std::ofstream f(opts.json);
  if (!f) {
    std::cerr << "cannot write " << opts.json << "\n";
    return 1;
  }
  bench::writeTablesJson(f, specs, runs, opts, jobs, wall, serial_wall);
  std::cerr << "table_suite: sweep took " << wall << " s";
  if (serial_wall > 0)
    std::cerr << " (serial: " << serial_wall
              << " s, speedup: " << serial_wall / wall << "x)";
  std::cerr << "; wrote " << opts.json << "\n";
  return 0;
}
