// Problem sizes for the paper-table benchmarks.
//
// `full` approximates the paper's sizes (Section 5); the default is a
// scaled-down configuration with identical structure that keeps the whole
// suite within seconds. EXPERIMENTS.md records which one each published
// result used.
#pragma once

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"

namespace vodsm::bench {

inline apps::IsParams isParams(bool full) {
  apps::IsParams p;
  if (full) {
    p.max_key = (1u << 15) - 1;  // 32 K buckets = 32 pages of counts
    p.n_keys = 1u << 23;
    p.iterations = 40;
  } else {
    p.max_key = (1u << 13) - 1;  // 8 K buckets = 8 pages of counts
    p.n_keys = 1u << 20;
    p.iterations = 10;
  }
  return p;
}

inline apps::GaussParams gaussParams(bool full) {
  apps::GaussParams p;
  p.flop_ns = 80;  // memory-bound row updates on the 350 MHz testbed
  p.n = full ? 1024 : 448;  // paper: 1024 elimination steps
  return p;
}

inline apps::SorParams sorParams(bool full) {
  apps::SorParams p;
  p.flop_ns = 80;  // memory-bound stencil updates
  if (full) {
    p.rows = 1024;
    p.cols = 1024;
    p.iterations = 50;  // paper: 50 iterations
  } else {
    p.rows = 512;
    p.cols = 512;
    p.iterations = 20;
  }
  return p;
}

inline apps::NnParams nnParams(bool full) {
  apps::NnParams p;
  // paper: 9-40-1-ish network, 235 epochs
  if (full) {
    p.samples = 1024;
    p.epochs = 235;
  } else {
    p.samples = 512;
    p.epochs = 30;
  }
  return p;
}

}  // namespace vodsm::bench
