# Bench regression gate, run as a ctest (see bench/CMakeLists.txt):
# regenerate every cell of the paper tables with table_suite, then require
# bench_diff to find zero simulated drift against the committed baseline.
#
#   cmake -DTABLE_SUITE=... -DBENCH_DIFF=... -DBASELINE=... -DOUT_DIR=...
#         -P regression_gate.cmake
foreach(var TABLE_SUITE BENCH_DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "regression_gate.cmake: -D${var}=... is required")
  endif()
endforeach()

set(fresh "${OUT_DIR}/fresh_tables.json")
execute_process(COMMAND "${TABLE_SUITE}" "--json=${fresh}"
                RESULT_VARIABLE suite_rc
                OUTPUT_QUIET)
if(NOT suite_rc EQUAL 0)
  message(FATAL_ERROR "table_suite failed (exit ${suite_rc})")
endif()

execute_process(COMMAND "${BENCH_DIFF}" "${BASELINE}" "${fresh}"
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "bench regression gate failed (exit ${diff_rc}): simulated fields "
          "drifted from ${BASELINE}; if the change is intended, regenerate "
          "the baseline with table_suite --json=BENCH_tables.json and commit "
          "it alongside the code change")
endif()
