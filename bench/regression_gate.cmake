# Bench regression gate, run as a ctest (see bench/CMakeLists.txt):
# regenerate every cell of the paper tables with table_suite, then require
# bench_diff to find zero simulated drift against the committed baseline.
#
# The suite run also captures one persisted run profile per cell into
# ${OUT_DIR}/fresh_profiles. On drift, bench_diff reruns with --explain
# against the committed baseline profiles (-DPROFILES, optional), printing
# a ranked differential report per drifted cell and writing the JSON
# reports to ${OUT_DIR}/explain so CI can upload them as a failure
# artifact.
#
#   cmake -DTABLE_SUITE=... -DBENCH_DIFF=... -DBASELINE=... -DOUT_DIR=...
#         [-DPROFILES=...] -P regression_gate.cmake
foreach(var TABLE_SUITE BENCH_DIFF BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "regression_gate.cmake: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(fresh "${OUT_DIR}/fresh_tables.json")
set(fresh_profiles "${OUT_DIR}/fresh_profiles")
execute_process(COMMAND "${TABLE_SUITE}" "--json=${fresh}"
                        "--profiles=${fresh_profiles}"
                RESULT_VARIABLE suite_rc
                OUTPUT_QUIET)
if(NOT suite_rc EQUAL 0)
  message(FATAL_ERROR "table_suite failed (exit ${suite_rc})")
endif()

execute_process(COMMAND "${BENCH_DIFF}" "${BASELINE}" "${fresh}"
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  if(DEFINED PROFILES AND EXISTS "${PROFILES}")
    # Explain the drift: difference each drifted cell's committed baseline
    # profile against the fresh one. This rerun exits nonzero again (the
    # drift is still there); the gate verdict is the original diff_rc.
    execute_process(COMMAND "${BENCH_DIFF}"
                            "--explain=${PROFILES},${fresh_profiles}"
                            "--explain-out=${OUT_DIR}/explain"
                            "${BASELINE}" "${fresh}")
  endif()
  message(FATAL_ERROR
          "bench regression gate failed (exit ${diff_rc}): simulated fields "
          "drifted from ${BASELINE}; if the change is intended, regenerate "
          "the baseline with table_suite --json=BENCH_tables.json "
          "--profiles=bench/profiles and commit both alongside the code "
          "change")
endif()
