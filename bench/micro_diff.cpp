// Microbenchmark: host-side cost of the diff machinery (create, apply,
// integrate) as a function of page dirtiness. These are the operations the
// cost model charges for; this bench grounds the constants.
#include <benchmark/benchmark.h>

#include "mem/diff.hpp"
#include "sim/rng.hpp"

namespace {

using vodsm::Bytes;
using vodsm::mem::Diff;
using vodsm::mem::kPageSize;

Bytes makePage(uint64_t seed) {
  vodsm::sim::Rng rng(seed);
  Bytes page(kPageSize);
  for (auto& b : page) b = static_cast<std::byte>(rng.below(256));
  return page;
}

Bytes mutate(const Bytes& base, double density, uint64_t seed) {
  vodsm::sim::Rng rng(seed);
  Bytes out = base;
  for (size_t w = 0; w + 4 <= out.size(); w += 4)
    if (rng.uniform() < density)
      out[w] = static_cast<std::byte>(rng.below(256));
  return out;
}

// Reference implementation of the pre-optimization 4-byte-word memcmp scan
// (the original Diff::create), kept here so the 64-bit-word production path
// can be compared against it — and checked equivalent — on every pattern.
Diff diffCreateWordScan(const Bytes& current, const Bytes& twin) {
  constexpr size_t kWord = 4;
  Diff d(0);
  size_t i = 0;
  while (i < kPageSize) {
    if (std::memcmp(current.data() + i, twin.data() + i, kWord) == 0) {
      i += kWord;
      continue;
    }
    size_t start = i;
    while (i < kPageSize &&
           std::memcmp(current.data() + i, twin.data() + i, kWord) != 0)
      i += kWord;
    d.addRun(static_cast<uint16_t>(start),
             vodsm::ByteSpan(current).subspan(start, i - start));
  }
  return d;
}

// Change patterns the protocols actually produce: empty (clean page at
// release), sparse scattered words, a dense page, and one contiguous run
// (the common "block rewrite" shape).
struct Pattern {
  const char* name;
  Bytes cur;
  Bytes twin;
};

Pattern makePattern(int which) {
  Bytes twin = makePage(1);
  switch (which) {
    case 0: return {"empty", twin, twin};
    case 1: return {"sparse1pct", mutate(twin, 0.01, 2), twin};
    case 2: return {"sparse10pct", mutate(twin, 0.10, 2), twin};
    case 3: return {"dense", mutate(twin, 1.0, 2), twin};
    default: {
      Bytes cur = twin;
      for (size_t i = kPageSize / 4; i < kPageSize / 2; ++i)
        cur[i] = static_cast<std::byte>(~std::to_integer<unsigned>(cur[i]));
      return {"one_block", cur, twin};
    }
  }
}

// Old vs new scan, throughput in bytes/s of page scanned (SetBytesProcessed
// prints it as MB/s or GB/s).
void BM_DiffCreateWordScan(benchmark::State& state) {
  Pattern p = makePattern(static_cast<int>(state.range(0)));
  state.SetLabel(p.name);
  for (auto _ : state) {
    Diff d = diffCreateWordScan(p.cur, p.twin);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_DiffCreateWordScan)->DenseRange(0, 4);

void BM_DiffCreate64BitScan(benchmark::State& state) {
  Pattern p = makePattern(static_cast<int>(state.range(0)));
  state.SetLabel(p.name);
  // The optimization must not change results: same runs, same bytes.
  if (!(Diff::create(0, p.cur, p.twin) == diffCreateWordScan(p.cur, p.twin))) {
    state.SkipWithError("64-bit scan diverges from word-scan reference");
    return;
  }
  for (auto _ : state) {
    Diff d = Diff::create(0, p.cur, p.twin);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_DiffCreate64BitScan)->DenseRange(0, 4);

void BM_DiffCreate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes twin = makePage(1);
  Bytes cur = mutate(twin, density, 2);
  for (auto _ : state) {
    Diff d = Diff::create(0, cur, twin);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes twin = makePage(1);
  Bytes cur = mutate(twin, density, 2);
  Diff d = Diff::create(0, cur, twin);
  Bytes target = twin;
  for (auto _ : state) {
    d.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.counters["wire_bytes"] = static_cast<double>(d.wireSize());
}
BENCHMARK(BM_DiffApply)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffIntegrate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes base = makePage(1);
  Bytes v1 = mutate(base, density, 2);
  Bytes v2 = mutate(v1, density, 3);
  Diff d1 = Diff::create(0, v1, base);
  Diff d2 = Diff::create(0, v2, v1);
  for (auto _ : state) {
    Diff merged = Diff::integrate(d1, d2);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_DiffIntegrate)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// Integration saves wire bytes versus shipping the chain: report the ratio.
void BM_IntegrationCompression(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  Bytes base = makePage(1);
  std::vector<Diff> diffs;
  Bytes prev = base;
  for (int i = 0; i < chain; ++i) {
    Bytes next = mutate(prev, 0.3, static_cast<uint64_t>(i + 2));
    diffs.push_back(Diff::create(0, next, prev));
    prev = next;
  }
  size_t chain_bytes = 0;
  for (const Diff& d : diffs) chain_bytes += d.wireSize();
  Diff merged = diffs[0];
  for (auto _ : state) {
    merged = diffs[0];
    for (int i = 1; i < chain; ++i)
      merged = Diff::integrate(merged, diffs[static_cast<size_t>(i)]);
    benchmark::DoNotOptimize(merged);
  }
  state.counters["chain_bytes"] = static_cast<double>(chain_bytes);
  state.counters["integrated_bytes"] = static_cast<double>(merged.wireSize());
  state.counters["compression"] =
      static_cast<double>(chain_bytes) / static_cast<double>(merged.wireSize());
}
BENCHMARK(BM_IntegrationCompression)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
