// Microbenchmark: host-side cost of the diff machinery (create, apply,
// integrate) as a function of page dirtiness. These are the operations the
// cost model charges for; this bench grounds the constants.
#include <benchmark/benchmark.h>

#include "mem/diff.hpp"
#include "sim/rng.hpp"

namespace {

using vodsm::Bytes;
using vodsm::mem::Diff;
using vodsm::mem::kPageSize;

Bytes makePage(uint64_t seed) {
  vodsm::sim::Rng rng(seed);
  Bytes page(kPageSize);
  for (auto& b : page) b = static_cast<std::byte>(rng.below(256));
  return page;
}

Bytes mutate(const Bytes& base, double density, uint64_t seed) {
  vodsm::sim::Rng rng(seed);
  Bytes out = base;
  for (size_t w = 0; w + 4 <= out.size(); w += 4)
    if (rng.uniform() < density) out[w] = static_cast<std::byte>(rng.below(256));
  return out;
}

void BM_DiffCreate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes twin = makePage(1);
  Bytes cur = mutate(twin, density, 2);
  for (auto _ : state) {
    Diff d = Diff::create(0, cur, twin);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes twin = makePage(1);
  Bytes cur = mutate(twin, density, 2);
  Diff d = Diff::create(0, cur, twin);
  Bytes target = twin;
  for (auto _ : state) {
    d.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.counters["wire_bytes"] = static_cast<double>(d.wireSize());
}
BENCHMARK(BM_DiffApply)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffIntegrate(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Bytes base = makePage(1);
  Bytes v1 = mutate(base, density, 2);
  Bytes v2 = mutate(v1, density, 3);
  Diff d1 = Diff::create(0, v1, base);
  Diff d2 = Diff::create(0, v2, v1);
  for (auto _ : state) {
    Diff merged = Diff::integrate(d1, d2);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_DiffIntegrate)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// Integration saves wire bytes versus shipping the chain: report the ratio.
void BM_IntegrationCompression(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  Bytes base = makePage(1);
  std::vector<Diff> diffs;
  Bytes prev = base;
  for (int i = 0; i < chain; ++i) {
    Bytes next = mutate(prev, 0.3, static_cast<uint64_t>(i + 2));
    diffs.push_back(Diff::create(0, next, prev));
    prev = next;
  }
  size_t chain_bytes = 0;
  for (const Diff& d : diffs) chain_bytes += d.wireSize();
  Diff merged = diffs[0];
  for (auto _ : state) {
    merged = diffs[0];
    for (int i = 1; i < chain; ++i) merged = Diff::integrate(merged, diffs[static_cast<size_t>(i)]);
    benchmark::DoNotOptimize(merged);
  }
  state.counters["chain_bytes"] = static_cast<double>(chain_bytes);
  state.counters["integrated_bytes"] = static_cast<double>(merged.wireSize());
  state.counters["compression"] =
      static_cast<double>(chain_bytes) / static_cast<double>(merged.wireSize());
}
BENCHMARK(BM_IntegrationCompression)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
