// Scaling-model fits over BENCH_tables.json.
//
// The speedup tables sample each (app, implementation) pair at p = 2..32
// processors. This tool fits every sampled time series — total simulated
// time and each per-cell breakdown bucket — to the standard parallel-cost
// form
//
//     T(p) = c * p^a * log2(p)^b
//
// by least squares in log space (ln T = ln c + a ln p + b ln log2 p, 3x3
// normal equations with partial pivoting; b is dropped when the system is
// singular, e.g. with fewer than three sample points — the solver lives in
// bench/fit_model.hpp, shared with the unit tests). The exponents make
// the asymptotics legible at a glance: a ≈ -1 is perfect strong scaling,
// a ≈ 0 a serial bottleneck, b > 0 a tree/combining term like the barrier
// fan-in.
//
// The fitted total-time models are then compared pairwise per app: the
// first integer p at which the predicted ordering of two implementations
// flips is reported as the model's crossover point — e.g. where VC_sd's
// lower barrier cost overtakes LRC_d's cheaper acquires, beyond the p the
// tables actually sampled.
//
//   fit_scaling                         # reads BENCH_tables.json
//   fit_scaling --json=other.json --max-p=1024
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fit_model.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using vodsm::TextTable;
using vodsm::bench::fit::Fit;
using vodsm::bench::fit::fitSeries;
using vodsm::support::Json;

struct Sample {
  int procs = 0;
  // Bucket name -> seconds; "total" is sim_seconds, the rest come from the
  // cell's breakdown_seconds object.
  std::map<std::string, double> seconds;
};

// One (app, implementation) time series from the speedup tables.
struct Series {
  std::string app;
  std::string impl;
  std::vector<Sample> samples;  // sorted by procs
};

// "IS/VC_sd/16p" -> app, impl, procs. Returns false for malformed ids.
bool splitCellId(const std::string& id, std::string& app, std::string& impl,
                 int& procs) {
  const size_t s1 = id.find('/');
  const size_t s2 = id.rfind('/');
  if (s1 == std::string::npos || s2 == s1) return false;
  app = id.substr(0, s1);
  impl = id.substr(s1 + 1, s2 - s1 - 1);
  const std::string tail = id.substr(s2 + 1);
  if (tail.empty() || tail.back() != 'p') return false;
  procs = std::atoi(tail.c_str());
  return procs > 0;
}

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_tables.json";
  std::string validate_path;
  double max_err = 0.25;
  int max_p = 4096;
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--json=PATH] [--max-p=N]"
                 " [--validate=SCALING.json [--max-err=F]]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      path = a.substr(7);
    } else if (a.rfind("--validate=", 0) == 0) {
      validate_path = a.substr(11);
    } else if (a.rfind("--max-err=", 0) == 0) {
      const std::string v = a.substr(10);
      char* end = nullptr;
      max_err = std::strtod(v.c_str(), &end);
      if (v.empty() || end != v.c_str() + v.size() || max_err <= 0) {
        std::cerr << a << ": --max-err needs a number > 0\n";
        return usage();
      }
    } else if (a.rfind("--max-p=", 0) == 0) {
      // atoi would silently turn a typo into 0; validate instead.
      const std::string v = a.substr(8);
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || end != v.c_str() + v.size() || n < 2) {
        std::cerr << a << ": --max-p needs an integer >= 2\n";
        return usage();
      }
      max_p = static_cast<int>(n);
    } else {
      return usage();
    }
  }

  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot read " << path
              << " (run bench/table_suite first)\n";
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();

  Json doc = Json::parse(buf.str());

  // Collect the speedup-table grids; the stats tables sample only one p and
  // the "seq" baselines have no scaling to fit.
  std::map<std::pair<std::string, std::string>, Series> series;
  for (const Json& table : doc.at("tables").items()) {
    if (table.at("name").asString().find("speedup") == std::string::npos)
      continue;
    for (const Json& cell : table.at("cells").items()) {
      std::string app, impl;
      int procs = 0;
      if (!splitCellId(cell.at("id").asString(), app, impl, procs)) continue;
      if (impl == "seq") continue;
      Sample s;
      s.procs = procs;
      s.seconds["total"] = cell.at("sim_seconds").asNumber();
      if (const Json* b = cell.find("breakdown_seconds"))
        for (const auto& [name, v] : b->members())
          s.seconds[name] = v.asNumber();
      Series& sr = series[{app, impl}];
      sr.app = app;
      sr.impl = impl;
      sr.samples.push_back(std::move(s));
    }
  }
  if (series.empty()) {
    std::cerr << path << " has no speedup-table cells\n";
    return 1;
  }

  std::cout << "Scaling fits from " << path
            << "  (model: T(p) = c * p^a * log2(p)^b)\n";

  // app -> impl -> total fit, for the crossover scan.
  std::map<std::string, std::map<std::string, Fit>> totals;

  std::string cur_app;
  TextTable t;
  auto flush = [&] {
    if (!cur_app.empty()) t.print(std::cout);
  };
  for (auto& [key, sr] : series) {
    if (sr.app != cur_app) {
      flush();
      cur_app = sr.app;
      std::cout << "\n" << cur_app << "\n";
      t = TextTable();
      t.header({"impl", "bucket", "c (s)", "a", "b", "R^2", "pts"});
    }
    std::sort(sr.samples.begin(), sr.samples.end(),
              [](const Sample& x, const Sample& y) {
                return x.procs < y.procs;
              });
    // Every bucket name seen anywhere in this series, "total" first.
    std::vector<std::string> buckets = {"total"};
    for (const Sample& s : sr.samples)
      for (const auto& [name, v] : s.seconds)
        if (name != "total" &&
            std::find(buckets.begin(), buckets.end(), name) == buckets.end())
          buckets.push_back(name);
    for (const std::string& bucket : buckets) {
      // ln T needs T > 0; buckets a protocol never pays (e.g. acquire_wait
      // under pure barriers) are skipped rather than fitted through zeros.
      std::vector<std::pair<int, double>> pts;
      for (const Sample& s : sr.samples) {
        auto it = s.seconds.find(bucket);
        if (it != s.seconds.end() && it->second > 0)
          pts.emplace_back(s.procs, it->second);
      }
      if (pts.size() < 2) continue;
      const Fit fit = fitSeries(pts);
      if (!fit.ok) continue;
      if (bucket == "total") totals[sr.app][sr.impl] = fit;
      t.row({bucket == "total" ? sr.impl : "", bucket, fmt(fit.c, 4),
             fmt(fit.a), fmt(fit.b), fmt(fit.r2), std::to_string(fit.points)});
    }
  }
  flush();

  // Pairwise crossover scan on the fitted totals: first integer p where the
  // predicted ordering flips relative to the smallest sampled p.
  std::cout << "\nModel-predicted crossovers (p scanned up to " << max_p
            << "):\n";
  for (const auto& [app, impls] : totals) {
    std::vector<std::pair<std::string, Fit>> v(impls.begin(), impls.end());
    for (size_t i = 0; i < v.size(); ++i)
      for (size_t j = i + 1; j < v.size(); ++j) {
        const Fit& fa = v[i].second;
        const Fit& fb = v[j].second;
        // Curved models (b != 0) can cross more than once; report every
        // flip of the predicted ordering, not just the first.
        bool a_ahead = fa.eval(2) < fb.eval(2);
        bool crossed = false;
        for (int p = 3; p <= max_p; ++p) {
          if ((fa.eval(p) < fb.eval(p)) == a_ahead) continue;
          a_ahead = !a_ahead;
          crossed = true;
          const std::string& winner = a_ahead ? v[i].first : v[j].first;
          const Fit& wf = a_ahead ? fa : fb;
          const Fit& lf = a_ahead ? fb : fa;
          std::cout << "  " << app << ": " << winner
                    << " pulls ahead at p = " << p << " (predicted "
                    << fmt(wf.eval(p), 4) << " s vs " << fmt(lf.eval(p), 4)
                    << " s)\n";
        }
        if (!crossed) {
          const std::string& fast = a_ahead ? v[i].first : v[j].first;
          const std::string& slow = a_ahead ? v[j].first : v[i].first;
          std::cout << "  " << app << ": " << fast << " stays ahead of "
                    << slow << " through p = " << max_p << "\n";
        }
      }
  }

  // --validate: check the fits' extrapolations against a measured large-p
  // sweep (BENCH_scaling.json from bench/table11_scaling). Only star-fabric
  // cells are comparable — the "_ft" cells run a different protocol stack
  // (fat tree, tree barrier, hashed view homes) than the grid the models
  // were fitted on — and only p beyond the training grid tests
  // extrapolation rather than interpolation. The gate is on the median
  // relative error: congestion collapse is a regime change the power-law
  // form cannot follow (star LRC at 256p), so the collapse cell is shown
  // in the report without dragging the verdict.
  if (!validate_path.empty()) {
    std::ifstream vf(validate_path);
    if (!vf) {
      std::cerr << "cannot read " << validate_path << "\n";
      return 1;
    }
    std::stringstream vbuf;
    vbuf << vf.rdbuf();
    Json vdoc = Json::parse(vbuf.str());

    struct Row {
      std::string id;
      double measured, predicted, rel_err;
    };
    std::vector<Row> rows;
    for (const Json& table : vdoc.at("tables").items()) {
      for (const Json& cell : table.at("cells").items()) {
        std::string app, impl;
        int procs = 0;
        if (!splitCellId(cell.at("id").asString(), app, impl, procs)) continue;
        if (impl == "seq") continue;
        if (impl.size() > 3 && impl.compare(impl.size() - 3, 3, "_ft") == 0)
          continue;
        auto ai = totals.find(app);
        if (ai == totals.end()) continue;
        auto ii = ai->second.find(impl);
        if (ii == ai->second.end()) continue;
        auto si = series.find({app, impl});
        if (si == series.end()) continue;
        int train_max = 0;
        for (const Sample& s : si->second.samples)
          train_max = std::max(train_max, s.procs);
        if (procs <= train_max) continue;
        const double meas = cell.at("sim_seconds").asNumber();
        if (meas <= 0) continue;
        // Refit on the asymptotic tail of the grid (top octave, e.g.
        // {16, 24, 32} of a 2..32 sweep). The full-grid fit is dominated by
        // the small-p points where compute still shrinks ~1/p; the rising
        // communication terms only show their exponent at the top of the
        // grid, and extrapolation has to follow those.
        std::vector<std::pair<int, double>> tail;
        for (const Sample& s : si->second.samples)
          if (2 * s.procs >= train_max) {
            auto ts = s.seconds.find("total");
            if (ts != s.seconds.end() && ts->second > 0)
              tail.emplace_back(s.procs, ts->second);
          }
        Fit tail_fit = tail.size() >= 2 ? fitSeries(tail) : Fit{};
        const Fit& model = tail_fit.ok ? tail_fit : ii->second;
        const double pred = model.eval(procs);
        rows.push_back({cell.at("id").asString(), meas, pred,
                        std::abs(pred - meas) / meas});
      }
    }
    if (rows.empty()) {
      std::cerr << validate_path
                << " has no star cells beyond the fitted grid\n";
      return 1;
    }
    std::cout << "\nExtrapolation check against " << validate_path << ":\n";
    TextTable vt;
    vt.header({"cell", "measured (s)", "predicted (s)", "rel err"});
    std::vector<double> errs;
    for (const Row& r : rows) {
      vt.row({r.id, fmt(r.measured, 4), fmt(r.predicted, 4),
              fmt(r.rel_err * 100, 1) + "%"});
      errs.push_back(r.rel_err);
    }
    vt.print(std::cout);
    std::sort(errs.begin(), errs.end());
    const double median = errs.size() % 2
                              ? errs[errs.size() / 2]
                              : 0.5 * (errs[errs.size() / 2 - 1] +
                                       errs[errs.size() / 2]);
    std::cout << "median relative error " << fmt(median * 100, 1) << "% over "
              << errs.size() << " cells (gate: " << fmt(max_err * 100, 1)
              << "%)\n";
    if (median > max_err) {
      std::cerr << "extrapolation gate failed: median error "
                << fmt(median * 100, 1) << "% > " << fmt(max_err * 100, 1)
                << "%\n";
      return 1;
    }
  }
  return 0;
}
