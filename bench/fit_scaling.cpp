// Scaling-model fits over BENCH_tables.json.
//
// The speedup tables sample each (app, implementation) pair at p = 2..32
// processors. This tool fits every sampled time series — total simulated
// time and each per-cell breakdown bucket — to the standard parallel-cost
// form
//
//     T(p) = c * p^a * log2(p)^b
//
// by least squares in log space (ln T = ln c + a ln p + b ln log2 p, 3x3
// normal equations with partial pivoting; b is dropped when the system is
// singular, e.g. with fewer than three sample points — the solver lives in
// bench/fit_model.hpp, shared with the unit tests). The exponents make
// the asymptotics legible at a glance: a ≈ -1 is perfect strong scaling,
// a ≈ 0 a serial bottleneck, b > 0 a tree/combining term like the barrier
// fan-in.
//
// The fitted total-time models are then compared pairwise per app: the
// first integer p at which the predicted ordering of two implementations
// flips is reported as the model's crossover point — e.g. where VC_sd's
// lower barrier cost overtakes LRC_d's cheaper acquires, beyond the p the
// tables actually sampled.
//
//   fit_scaling                         # reads BENCH_tables.json
//   fit_scaling --json=other.json --max-p=1024
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fit_model.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using vodsm::TextTable;
using vodsm::bench::fit::Fit;
using vodsm::bench::fit::fitSeries;
using vodsm::support::Json;

struct Sample {
  int procs = 0;
  // Bucket name -> seconds; "total" is sim_seconds, the rest come from the
  // cell's breakdown_seconds object.
  std::map<std::string, double> seconds;
};

// One (app, implementation) time series from the speedup tables.
struct Series {
  std::string app;
  std::string impl;
  std::vector<Sample> samples;  // sorted by procs
};

// "IS/VC_sd/16p" -> app, impl, procs. Returns false for malformed ids.
bool splitCellId(const std::string& id, std::string& app, std::string& impl,
                 int& procs) {
  const size_t s1 = id.find('/');
  const size_t s2 = id.rfind('/');
  if (s1 == std::string::npos || s2 == s1) return false;
  app = id.substr(0, s1);
  impl = id.substr(s1 + 1, s2 - s1 - 1);
  const std::string tail = id.substr(s2 + 1);
  if (tail.empty() || tail.back() != 'p') return false;
  procs = std::atoi(tail.c_str());
  return procs > 0;
}

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_tables.json";
  int max_p = 4096;
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--max-p=N]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) {
      path = a.substr(7);
    } else if (a.rfind("--max-p=", 0) == 0) {
      // atoi would silently turn a typo into 0; validate instead.
      const std::string v = a.substr(8);
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || end != v.c_str() + v.size() || n < 2) {
        std::cerr << a << ": --max-p needs an integer >= 2\n";
        return usage();
      }
      max_p = static_cast<int>(n);
    } else {
      return usage();
    }
  }

  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot read " << path
              << " (run bench/table_suite first)\n";
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();

  Json doc = Json::parse(buf.str());

  // Collect the speedup-table grids; the stats tables sample only one p and
  // the "seq" baselines have no scaling to fit.
  std::map<std::pair<std::string, std::string>, Series> series;
  for (const Json& table : doc.at("tables").items()) {
    if (table.at("name").asString().find("speedup") == std::string::npos)
      continue;
    for (const Json& cell : table.at("cells").items()) {
      std::string app, impl;
      int procs = 0;
      if (!splitCellId(cell.at("id").asString(), app, impl, procs)) continue;
      if (impl == "seq") continue;
      Sample s;
      s.procs = procs;
      s.seconds["total"] = cell.at("sim_seconds").asNumber();
      if (const Json* b = cell.find("breakdown_seconds"))
        for (const auto& [name, v] : b->members())
          s.seconds[name] = v.asNumber();
      Series& sr = series[{app, impl}];
      sr.app = app;
      sr.impl = impl;
      sr.samples.push_back(std::move(s));
    }
  }
  if (series.empty()) {
    std::cerr << path << " has no speedup-table cells\n";
    return 1;
  }

  std::cout << "Scaling fits from " << path
            << "  (model: T(p) = c * p^a * log2(p)^b)\n";

  // app -> impl -> total fit, for the crossover scan.
  std::map<std::string, std::map<std::string, Fit>> totals;

  std::string cur_app;
  TextTable t;
  auto flush = [&] {
    if (!cur_app.empty()) t.print(std::cout);
  };
  for (auto& [key, sr] : series) {
    if (sr.app != cur_app) {
      flush();
      cur_app = sr.app;
      std::cout << "\n" << cur_app << "\n";
      t = TextTable();
      t.header({"impl", "bucket", "c (s)", "a", "b", "R^2", "pts"});
    }
    std::sort(sr.samples.begin(), sr.samples.end(),
              [](const Sample& x, const Sample& y) {
                return x.procs < y.procs;
              });
    // Every bucket name seen anywhere in this series, "total" first.
    std::vector<std::string> buckets = {"total"};
    for (const Sample& s : sr.samples)
      for (const auto& [name, v] : s.seconds)
        if (name != "total" &&
            std::find(buckets.begin(), buckets.end(), name) == buckets.end())
          buckets.push_back(name);
    for (const std::string& bucket : buckets) {
      // ln T needs T > 0; buckets a protocol never pays (e.g. acquire_wait
      // under pure barriers) are skipped rather than fitted through zeros.
      std::vector<std::pair<int, double>> pts;
      for (const Sample& s : sr.samples) {
        auto it = s.seconds.find(bucket);
        if (it != s.seconds.end() && it->second > 0)
          pts.emplace_back(s.procs, it->second);
      }
      if (pts.size() < 2) continue;
      const Fit fit = fitSeries(pts);
      if (!fit.ok) continue;
      if (bucket == "total") totals[sr.app][sr.impl] = fit;
      t.row({bucket == "total" ? sr.impl : "", bucket, fmt(fit.c, 4),
             fmt(fit.a), fmt(fit.b), fmt(fit.r2), std::to_string(fit.points)});
    }
  }
  flush();

  // Pairwise crossover scan on the fitted totals: first integer p where the
  // predicted ordering flips relative to the smallest sampled p.
  std::cout << "\nModel-predicted crossovers (p scanned up to " << max_p
            << "):\n";
  for (const auto& [app, impls] : totals) {
    std::vector<std::pair<std::string, Fit>> v(impls.begin(), impls.end());
    for (size_t i = 0; i < v.size(); ++i)
      for (size_t j = i + 1; j < v.size(); ++j) {
        const Fit& fa = v[i].second;
        const Fit& fb = v[j].second;
        // Curved models (b != 0) can cross more than once; report every
        // flip of the predicted ordering, not just the first.
        bool a_ahead = fa.eval(2) < fb.eval(2);
        bool crossed = false;
        for (int p = 3; p <= max_p; ++p) {
          if ((fa.eval(p) < fb.eval(p)) == a_ahead) continue;
          a_ahead = !a_ahead;
          crossed = true;
          const std::string& winner = a_ahead ? v[i].first : v[j].first;
          const Fit& wf = a_ahead ? fa : fb;
          const Fit& lf = a_ahead ? fb : fa;
          std::cout << "  " << app << ": " << winner
                    << " pulls ahead at p = " << p << " (predicted "
                    << fmt(wf.eval(p), 4) << " s vs " << fmt(lf.eval(p), 4)
                    << " s)\n";
        }
        if (!crossed) {
          const std::string& fast = a_ahead ? v[i].first : v[j].first;
          const std::string& slow = a_ahead ? v[j].first : v[i].first;
          std::cout << "  " << app << ": " << fast << " stays ahead of "
                    << slow << " through p = " << max_p << "\n";
        }
      }
  }
  return 0;
}
