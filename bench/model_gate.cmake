# Model gates, run as ctests (see bench/CMakeLists.txt). -DGATE= selects:
#
#   crossval — fit models on the committed BENCH_tables.json with every
#     third cell held out; model_suite itself fails (exit 1) when the
#     median held-out relative error exceeds the documented 15% tolerance.
#
#   screen — end-to-end analytic-screen check: fit on the committed
#     baseline, rerun table_suite with --screen, then require (a) at least
#     one cell was skipped and (b) bench_diff --allow-screened finds zero
#     drift in the cells that WERE simulated.
#
#   cmake -DGATE=crossval -DMODEL_SUITE=... -DBASELINE=... -DOUT_DIR=...
#         [-DTABLE_SUITE=... -DBENCH_DIFF=...] -P model_gate.cmake
foreach(var GATE MODEL_SUITE BASELINE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "model_gate.cmake: -D${var}=... is required")
  endif()
endforeach()

if(GATE STREQUAL "crossval")
  execute_process(COMMAND "${MODEL_SUITE}" "--json=${BASELINE}"
                          "--crossval=3" "--tol=0.15"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "model crossval gate failed (exit ${rc}): fitted models no "
            "longer predict held-out cells of ${BASELINE} within 15% median "
            "relative error")
  endif()
elseif(GATE STREQUAL "screen")
  foreach(var TABLE_SUITE BENCH_DIFF)
    if(NOT DEFINED ${var})
      message(FATAL_ERROR "model_gate.cmake: -D${var}=... is required")
    endif()
  endforeach()
  set(model "${OUT_DIR}/screen_model.json")
  set(screened "${OUT_DIR}/screened_tables.json")
  execute_process(COMMAND "${MODEL_SUITE}" "--json=${BASELINE}"
                          "--model=${model}"
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "model_suite failed (exit ${rc})")
  endif()
  execute_process(COMMAND "${TABLE_SUITE}" "--screen=${model}"
                          "--json=${screened}"
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "table_suite --screen failed (exit ${rc})")
  endif()
  file(READ "${screened}" screened_text)
  string(REGEX MATCH "\"screened_cells\": ([0-9]+)" m "${screened_text}")
  if(NOT m OR CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR
            "screen gate failed: table_suite --screen skipped no cells "
            "(the fitted model predicts nothing within tolerance)")
  endif()
  execute_process(COMMAND "${BENCH_DIFF}" "--allow-screened"
                          "${BASELINE}" "${screened}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "screen gate failed (exit ${rc}): a cell the screen did NOT "
            "skip drifted from ${BASELINE} — screening must leave simulated "
            "cells byte-identical")
  endif()
else()
  message(FATAL_ERROR "model_gate.cmake: unknown GATE '${GATE}'")
endif()
