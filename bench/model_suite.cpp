// Compositional analytic performance models over BENCH_tables.json.
//
// Fits one model per (app, implementation) series: the total simulated
// time plus — where the suite recorded breakdowns — one model per runtime
// bucket, each over the axes the suite sweeps (p, problem size, bandwidth,
// loss; see src/model/). The per-bucket fits compose into the series'
// total prediction (they partition p * T, so the composed total is their
// sum over p, exact by construction), and model selection is by
// leave-one-out cross-validated error, not raw residual.
//
//   model_suite                          # fit + per-series report
//   model_suite --model=model.json       # write the fitted-model JSON
//                                        # (consumed by table_suite --screen)
//   model_suite --extrap=models.txt      # Extra-P text export
//   model_suite --crossval=3 --tol=0.15  # hold out every 3rd cell, FAIL
//                                        # (exit 1) when the median
//                                        # held-out rel. error exceeds tol
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "model/extrap.hpp"
#include "model/model_set.hpp"
#include "model/table_data.hpp"
#include "support/table.hpp"

namespace {

using vodsm::TextTable;
using namespace vodsm::model;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json=PATH] [--model=OUT.json] [--extrap=OUT.txt]"
               " [--crossval=K] [--tol=X]\n";
  return 2;
}

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fitCols(const MultiFit& f) {
  return f.formula() + "  (R^2 " + fmt(f.r2) +
         (f.loo_rel_err >= 0 ? ", LOO " + fmt(f.loo_rel_err) : "") + ", " +
         std::to_string(f.points) + " pts)";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_tables.json";
  std::string model_path;
  std::string extrap_path;
  int crossval = 0;
  double tol = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto num = [&](size_t prefix, double lo) {
      const std::string v = a.substr(prefix);
      char* end = nullptr;
      const double d = std::strtod(v.c_str(), &end);
      if (v.empty() || end != v.c_str() + v.size() || d < lo) {
        std::cerr << a << ": invalid value\n";
        std::exit(usage(argv[0]));
      }
      return d;
    };
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
    else if (a.rfind("--model=", 0) == 0) model_path = a.substr(8);
    else if (a.rfind("--extrap=", 0) == 0) extrap_path = a.substr(9);
    else if (a.rfind("--crossval=", 0) == 0)
      crossval = static_cast<int>(num(11, 2));
    else if (a.rfind("--tol=", 0) == 0) tol = num(6, 1e-9);
    else return usage(argv[0]);
  }

  try {
    const std::vector<CellSample> cells = loadTableCellsFile(json_path);
    const ModelSet set = buildModelSet(cells, crossval);
    if (set.series.empty()) {
      std::cerr << "model_suite: no fittable series in " << json_path << "\n";
      return 1;
    }

    std::cout << "Analytic models from " << json_path << " ("
              << set.series.size() << " series";
    if (crossval > 0)
      std::cout << ", holding out 1 cell in " << crossval;
    std::cout << ")\n";
    for (const SeriesModel& m : set.series) {
      std::cout << "\n" << m.app << "/" << m.impl << "  ("
                << m.train_points << " training cells"
                << (m.has_buckets ? ", composed from buckets" : "") << ")\n";
      TextTable t;
      t.header({"bucket", "model"});
      t.row({"total", m.has_buckets ? "sum(buckets) / p" : ""});
      if (!m.has_buckets || !m.total.ok)
        t.row({"(direct)", fitCols(m.total)});
      for (const BucketModel& b : m.buckets)
        t.row({b.name, b.zero ? "0 (never paid)" : fitCols(b.fit)});
      t.print(std::cout);
    }

    // Per-cell prediction quality; on a crossval run only held-out cells
    // are scored for the gate.
    std::cout << "\nPrediction errors (|pred/actual - 1|):\n";
    TextTable et;
    et.header({"cell", "measured", "predicted", "rel err", "held out"});
    for (const CellEval& e : set.evals)
      et.row({e.id, fmt(e.measured, 6), fmt(e.predicted, 6),
              fmt(e.rel_err * 100, 1) + "%", e.held_out ? "yes" : ""});
    et.print(std::cout);

    if (!model_path.empty()) {
      std::ofstream f(model_path, std::ios::binary);
      if (!f) {
        std::cerr << "cannot write " << model_path << "\n";
        return 1;
      }
      writeModelJson(f, set);
      std::cout << "\nwrote " << model_path << "\n";
    }
    if (!extrap_path.empty()) {
      std::ofstream f(extrap_path, std::ios::binary);
      if (!f) {
        std::cerr << "cannot write " << extrap_path << "\n";
        return 1;
      }
      writeExtrap(f, cells);
      std::cout << "wrote " << extrap_path << " (Extra-P text format)\n";
    }

    if (crossval > 0) {
      const double med = set.medianHeldOutRelErr();
      if (med < 0) {
        std::cerr << "model_suite: crossval held out no cells\n";
        return 1;
      }
      std::cout << "\ncrossval: median held-out relative error "
                << fmt(med * 100, 1) << "% (tolerance " << fmt(tol * 100, 1)
                << "%)\n";
      if (med > tol) {
        std::cerr << "model_suite: FAIL — models no longer predict held-out "
                     "cells within tolerance\n";
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "model_suite: " << e.what() << "\n";
    return 1;
  }
}
