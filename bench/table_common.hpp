// Shared helpers for the paper-table benchmark binaries.
//
// Each binary regenerates one table of the paper's evaluation (Section 5).
// Default problem sizes are scaled down from the paper's so the full suite
// runs in seconds; pass --full for paper-scale sizes and --procs=N to
// override the processor count of the statistics tables.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/run.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace vodsm::bench {

struct Options {
  bool full = false;
  int procs = 16;
  // Host threads for the cell sweep: 0 = VODSM_JOBS env or hardware
  // concurrency; 1 = serial.
  int jobs = 0;
  // Engine worker threads inside each cell (conservative parallel
  // schedule): 1 = serial reference, N > 1 = N workers with bit-identical
  // simulated results, 0 = VODSM_SIM_THREADS env (default serial). Cells
  // run with N > 1 also rerun serially and record the host-time
  // self-speedup per cell in the JSON.
  int sim_threads = 0;
  // When nonempty, append this run's machine-readable record there.
  std::string json;
  // Trace every cell and report per-run time breakdowns (stdout tables for
  // the per-table binaries, per-cell JSON fields everywhere). Each cell owns
  // its recorder, so the parallel sweep stays thread-safe; tracing never
  // charges simulated time, so all sim results are unchanged.
  bool breakdown = false;
  // Trace every cell and run the critical-path / page-contention analyses
  // on it (implies tracing for those cells; see bench/tables.cpp). Like
  // --breakdown these are pure trace consumers: sim results are unchanged.
  bool critpath = false;
  bool pageheat = false;
  // Meter every cell with a cell-local counter/gauge registry (no sampler,
  // peaks/means only) and record peak_twin_bytes / peak_diff_bytes /
  // mean_link_utilization per cell in the JSON. Metering never charges
  // simulated time, so all sim results are unchanged.
  bool metrics = false;
  // Trace every cell and print its ranked "why is this run slow" diagnosis
  // (obs::Diagnoser over the cell's trace + metrics). Pure post-processing
  // like the other analyses: sim results are unchanged, and the report is
  // byte-identical across --jobs / --sim-threads.
  bool diagnose = false;
  // Trace + meter every cell and write one persisted run profile
  // (obs::RunProfile JSON) per cell into this directory, named after the
  // cell id ("IS/LRC_d/16p" -> "IS_LRC_d_16p.profile.json"). Accepted as
  // --profile=DIR and --profiles=DIR. Post-processing only: sim results
  // are unchanged and the profiles are byte-identical across --jobs /
  // --sim-threads.
  std::string profile_dir;
  // Load the per-cell baseline profiles from this directory and print the
  // ranked differential report (baseline = A, this run = B) for every cell
  // present in both. Implies profiling this run's cells.
  std::string compare_dir;
  // table_suite only: also run the sweep serially and record the speedup.
  bool compare_serial = false;
  // Fault-plan spec applied to every cell (net::parseFaultPlan grammar).
  // Empty means no injection: cells run byte-identical to a plan-free
  // build, and the JSON gains no fault fields (bench_regression_gate
  // compares exactly).
  std::string faults;
  // table_suite only: analytic screen. Path to a model_suite JSON; cells
  // whose recorded in-sample prediction error is within screen_tol are NOT
  // simulated — their JSON row carries the model's prediction, marked
  // "screened". Incompatible with --faults (the model knows nothing about
  // injected faults).
  std::string screen;
  double screen_tol = 0.10;
  // Cluster fabric / barrier algorithm / view-home sharding applied to every
  // cell (parsed eagerly so a typo'd spec cannot silently measure the
  // defaults). Empty strings keep the paper's star + centralized protocol,
  // and the JSON stays byte-identical to a flag-free run.
  std::string topology;
  std::string barrier;
  std::string view_homes;
  // table11_scaling only: extend the processor sweep past 256 to the
  // nightly 512/1024 points (hours of host time on one core; the nightly
  // workflow owns it).
  bool big = false;
};

inline int parseIntArg(const std::string& a, size_t prefix_len) {
  try {
    size_t used = 0;
    int v = std::stoi(a.substr(prefix_len), &used);
    if (used == a.size() - prefix_len) return v;
  } catch (...) {
  }
  std::cerr << "not a number: '" << a << "'\n";
  std::exit(2);
}

inline double parseDoubleArg(const std::string& a, size_t prefix_len) {
  try {
    size_t used = 0;
    double v = std::stod(a.substr(prefix_len), &used);
    if (used == a.size() - prefix_len) return v;
  } catch (...) {
  }
  std::cerr << "not a number: '" << a << "'\n";
  std::exit(2);
}

inline Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--full") o.full = true;
    else if (a == "--big") o.big = true;
    else if (a == "--breakdown") o.breakdown = true;
    else if (a == "--critpath") o.critpath = true;
    else if (a == "--pageheat") o.pageheat = true;
    else if (a == "--metrics") o.metrics = true;
    else if (a == "--diagnose") o.diagnose = true;
    else if (a == "--compare-serial") o.compare_serial = true;
    else if (a.rfind("--procs=", 0) == 0) o.procs = parseIntArg(a, 8);
    else if (a.rfind("--jobs=", 0) == 0) o.jobs = parseIntArg(a, 7);
    else if (a.rfind("--sim-threads=", 0) == 0)
      o.sim_threads = parseIntArg(a, 14);
    else if (a.rfind("--json=", 0) == 0) o.json = a.substr(7);
    else if (a.rfind("--profile=", 0) == 0) o.profile_dir = a.substr(10);
    else if (a.rfind("--profiles=", 0) == 0) o.profile_dir = a.substr(11);
    else if (a.rfind("--compare=", 0) == 0) o.compare_dir = a.substr(10);
    else if (a.rfind("--faults=", 0) == 0) o.faults = a.substr(9);
    else if (a.rfind("--screen=", 0) == 0) o.screen = a.substr(9);
    else if (a.rfind("--screen-tol=", 0) == 0)
      o.screen_tol = parseDoubleArg(a, 13);
    else if (a.rfind("--topology=", 0) == 0) o.topology = a.substr(11);
    else if (a.rfind("--barrier=", 0) == 0) o.barrier = a.substr(10);
    else if (a.rfind("--view-homes=", 0) == 0) o.view_homes = a.substr(13);
    else {
      std::cerr << "usage: " << argv[0]
                << " [--full] [--procs=N] [--jobs=N] [--sim-threads=N]"
                   " [--json=PATH] [--breakdown] [--critpath] [--pageheat]"
                   " [--metrics] [--diagnose] [--profiles=DIR]"
                   " [--compare=DIR] [--compare-serial] [--faults=SPEC]"
                   " [--screen=MODEL.json] [--screen-tol=X]"
                   " [--topology=SPEC] [--barrier=ALG] [--view-homes=POLICY]\n";
      std::exit(2);
    }
  }
  // Validate the topology/barrier/directory specs up front so every table
  // binary rejects a typo with usage instead of measuring the defaults.
  net::TopologyConfig topo_check;
  if (!o.topology.empty() && !net::parseTopologySpec(o.topology, &topo_check)) {
    std::cerr << "invalid --topology spec '" << o.topology << "'\n";
    std::exit(2);
  }
  dsm::BarrierAlg barrier_check;
  if (!o.barrier.empty() && !dsm::parseBarrierAlg(o.barrier, &barrier_check)) {
    std::cerr << "invalid --barrier '" << o.barrier << "'\n";
    std::exit(2);
  }
  dsm::ViewHomes homes_check;
  if (!o.view_homes.empty() &&
      !dsm::parseViewHomes(o.view_homes, &homes_check)) {
    std::cerr << "invalid --view-homes '" << o.view_homes << "'\n";
    std::exit(2);
  }
  if (!o.screen.empty() && !o.faults.empty()) {
    // The fitted models describe fault-free runs; screening a faulted
    // sweep would silently substitute fault-free predictions.
    std::cerr << "--screen and --faults are mutually exclusive\n";
    std::exit(2);
  }
  if (!o.screen.empty() &&
      (o.diagnose || !o.profile_dir.empty() || !o.compare_dir.empty())) {
    // Screened cells are predicted, not simulated: there is no trace to
    // diagnose or profile, so these combinations would silently produce
    // empty analyses for the screened subset.
    std::cerr << "--screen cannot be combined with --diagnose, --profiles"
                 " or --compare\n";
    std::exit(2);
  }
  if (o.screen_tol <= 0) {
    std::cerr << "--screen-tol must be positive\n";
    std::exit(2);
  }
  return o;
}

inline harness::RunConfig baseConfig(dsm::Protocol proto, int nprocs) {
  harness::RunConfig c;
  c.protocol = proto;
  c.nprocs = nprocs;
  return c;
}

// Applies the sweep-wide fabric options (validated up front by parseArgs,
// so the parses here cannot fail). Empty specs leave the defaults — star
// fabric, centralized barrier, id-mod-p homes — untouched, keeping
// flag-free sweeps byte-identical to pre-topology builds.
inline void applyFabric(harness::RunConfig& c, const Options& o) {
  if (!o.topology.empty())
    VODSM_CHECK(net::parseTopologySpec(o.topology, &c.net.topology));
  if (!o.barrier.empty())
    VODSM_CHECK(dsm::parseBarrierAlg(o.barrier, &c.proto.barrier));
  if (!o.view_homes.empty())
    VODSM_CHECK(dsm::parseViewHomes(o.view_homes, &c.proto.view_homes));
}

inline harness::RunConfig baseConfig(dsm::Protocol proto, int nprocs,
                                     const Options& o) {
  harness::RunConfig c = baseConfig(proto, nprocs);
  applyFabric(c, o);
  return c;
}

// Configuration for the sequential baseline of the speedup tables: one
// processor and a zero-cost DSM (a real sequential program takes no page
// faults, makes no twins and diffs nothing), leaving pure compute time.
inline harness::RunConfig sequentialConfig() {
  harness::RunConfig c;
  c.protocol = dsm::Protocol::kLrcDiff;
  c.nprocs = 1;
  c.costs = dsm::DsmCosts{.page_fault = 0,
                          .twin_copy = 0,
                          .diff_create_base = 0,
                          .diff_create_per_kb = 0,
                          .diff_apply_base = 0,
                          .diff_apply_per_kb = 0,
                          .handler_service = 0,
                          .barrier_fold = 0,
                          .barrier_per_notice = 0,
                          .apply_notice = 0,
                          .copy_per_kb = 0};
  return c;
}

// Paper-style statistics table: one column per DSM implementation.
class StatsTable {
 public:
  explicit StatsTable(std::string title) : title_(std::move(title)) {}

  void add(const std::string& name, const harness::RunResult& r,
           bool show_acquire_time = false) {
    names_.push_back(name);
    runs_.push_back(r);
    show_acquire_time_ |= show_acquire_time;
  }

  void print(std::ostream& os) const {
    os << "\n" << title_ << "\n";
    TextTable t;
    std::vector<std::string> header{""};
    for (const auto& n : names_) header.push_back(n);
    t.header(header);
    row(t, "Time (Sec.)", [](const harness::RunResult& r) {
      return TextTable::format(r.seconds);
    });
    row(t, "Barriers", [](const harness::RunResult& r) {
      return TextTable::format(r.barrierEpisodes());
    });
    row(t, "Acquires", [](const harness::RunResult& r) {
      return TextTable::format(r.dsm.acquires);
    });
    row(t, "Data (MByte)", [](const harness::RunResult& r) {
      return TextTable::format(r.dataMBytes());
    });
    row(t, "Num. Msg", [](const harness::RunResult& r) {
      return TextTable::format(r.net.messages);
    });
    row(t, "Diff Requests", [](const harness::RunResult& r) {
      return TextTable::format(r.dsm.diff_requests);
    });
    row(t, "Barrier Time (usec.)", [](const harness::RunResult& r) {
      return TextTable::format(r.dsm.avgBarrierMicros());
    });
    if (show_acquire_time_) {
      row(t, "Acquire Time (usec.)", [](const harness::RunResult& r) {
        return TextTable::format(r.dsm.avgAcquireMicros());
      });
    }
    row(t, "Rexmit", [](const harness::RunResult& r) {
      return TextTable::format(r.net.retransmissions);
    });
    t.print(os);
  }

 private:
  template <typename F>
  void row(TextTable& t, const std::string& label, F&& fmt) const {
    std::vector<std::string> cells{label};
    for (const auto& r : runs_) cells.push_back(fmt(r));
    t.row(std::move(cells));
  }

  std::string title_;
  std::vector<std::string> names_;
  std::vector<harness::RunResult> runs_;
  bool show_acquire_time_ = false;
};

// Paper-style speedup table: rows are implementations, columns processor
// counts; speedup is sequential time / parallel time.
class SpeedupTable {
 public:
  SpeedupTable(std::string title, std::vector<int> procs)
      : title_(std::move(title)), procs_(std::move(procs)) {}

  const std::vector<int>& procs() const { return procs_; }

  void add(const std::string& name, double sequential_seconds,
           const std::vector<double>& parallel_seconds) {
    VODSM_CHECK(parallel_seconds.size() == procs_.size());
    std::vector<double> speedups;
    for (double t : parallel_seconds)
      speedups.push_back(t > 0 ? sequential_seconds / t : 0.0);
    rows_.emplace_back(name, std::move(speedups));
  }

  void print(std::ostream& os) const {
    os << "\n" << title_ << "\n";
    TextTable t;
    std::vector<std::string> header{""};
    for (int p : procs_) header.push_back(std::to_string(p) + "-p");
    t.header(header);
    for (const auto& [name, sp] : rows_) {
      std::vector<std::string> cells{name};
      for (double s : sp) cells.push_back(TextTable::format(s));
      t.row(std::move(cells));
    }
    t.print(os);
  }

 private:
  std::string title_;
  std::vector<int> procs_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace vodsm::bench
