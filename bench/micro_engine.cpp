// Microbenchmark: event throughput of the discrete-event engine, serial
// versus the lane-partitioned parallel schedule at 1/2/4/8 worker threads.
//
// The synthetic workload runs one self-rescheduling event chain per lane
// (one lane per simulated node); a configurable fraction of events also
// posts a cross-lane frame via atLane at exactly the lookahead horizon —
// the worst legal case for the conservative window schedule. Host-time
// events/second is the interesting output; the simulated schedule (and
// total event count) is identical for every thread count, so the counters
// double as a cheap self-check.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "support/check.hpp"

namespace {

using namespace vodsm;

// One event chain per lane; every event may post a no-op frame to another
// lane. A small LCG keeps the cross-lane pattern deterministic without
// host randomness.
class Driver {
 public:
  Driver(sim::Engine& e, uint32_t nlanes, int cross_permille,
         uint64_t events_per_lane)
      : e_(e), nlanes_(nlanes), permille_(cross_permille) {
    lanes_.resize(nlanes);
    for (uint32_t li = 0; li < nlanes; ++li) {
      lanes_[li].remaining = events_per_lane;
      lanes_[li].lcg = li * 2654435761u + 1u;
    }
  }

  void start() {
    for (uint32_t li = 0; li < nlanes_; ++li) {
      sim::Engine::LaneGuard g(e_, li);
      e_.at(sim::usec(1), [this, li] { step(li); });
    }
  }

 private:
  struct LaneState {
    uint64_t remaining = 0;
    uint32_t lcg = 0;
  };

  void step(uint32_t li) {
    LaneState& s = lanes_[li];
    if (s.remaining == 0) return;
    --s.remaining;
    s.lcg = s.lcg * 1664525u + 1013904223u;
    if (nlanes_ > 1 && static_cast<int>((s.lcg >> 16) % 1000) < permille_) {
      const uint32_t dst = (li + 1 + s.lcg % (nlanes_ - 1)) % nlanes_;
      // Post at exactly now + lookahead: the tightest legal cross-lane
      // frame, landing on the very next conservative window.
      e_.atLane(dst, e_.now() + e_.lookahead(), [] {});
    }
    if (s.remaining > 0) e_.after(sim::usec(1), [this, li] { step(li); });
  }

  sim::Engine& e_;
  uint32_t nlanes_;
  int permille_;
  std::vector<LaneState> lanes_;
};

void BM_EngineLanes(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int permille = static_cast<int>(state.range(1));
  constexpr uint32_t kLanes = 16;
  constexpr uint64_t kPerLane = 2000;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::Engine e;
    e.configureLanes(kLanes, threads);
    e.setLookahead(sim::usec(50));
    Driver d(e, kLanes, permille, kPerLane);
    d.start();
    events = e.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_EngineLanes)
    ->ArgNames({"threads", "cross_permille"})
    ->ArgsProduct({{1, 2, 4, 8}, {0, 50, 300}})
    ->Unit(benchmark::kMillisecond);

// Single-lane serial scheduling hot path: heap push/pop and callback-pool
// recycling with no lane machinery engaged. Guards the classic engine
// against regressions from the lane-partitioned refactor.
void BM_EngineSerialChain(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    uint64_t left = n;
    std::function<void()> step = [&] {
      if (--left > 0) e.after(sim::usec(1), [&step] { step(); });
    };
    e.at(sim::usec(1), [&step] { step(); });
    const uint64_t ran = e.run();
    VODSM_CHECK(ran == n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineSerialChain)->Arg(1000)->Arg(100000);

// Wide heap: k independent chains interleaved in one serial engine, so the
// heap holds k pending events at all times (sift depth ~log k).
void BM_EngineSerialWide(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  constexpr uint64_t kPerChain = 1000;
  for (auto _ : state) {
    sim::Engine e;
    std::vector<uint64_t> left(static_cast<size_t>(k), kPerChain);
    std::function<void(int)> step = [&](int c) {
      if (--left[static_cast<size_t>(c)] > 0)
        e.after(sim::usec(1), [&step, c] { step(c); });
    };
    for (int c = 0; c < k; ++c)
      e.at(sim::usec(1 + c), [&step, c] { step(c); });
    benchmark::DoNotOptimize(e.run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(k) *
                          static_cast<int64_t>(kPerChain) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineSerialWide)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
