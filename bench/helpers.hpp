// Umbrella header for the table benchmarks.
#pragma once

#include "bench/paper_params.hpp"
#include "bench/table_common.hpp"
