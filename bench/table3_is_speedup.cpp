// Table 3: speedup of IS on LRC_d and VC_sd (2..32 processors).
//
// Speedup is measured against the one-processor run of the traditional
// program. Expected shape: VC_sd well above LRC_d everywhere; the
// fewer-barriers variant (VC_sd lb) pulls further ahead as the processor
// count grows.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::isParams(opts.full);

  const double t_seq =
      apps::runIs(bench::sequentialConfig(), params,
                  apps::IsVariant::kTraditional)
          .result.seconds;

  bench::SpeedupTable table("Table 3: Speedup of IS on LRC_d and VC_sd",
                            {2, 4, 8, 16, 24, 32});
  std::vector<double> lrc, vcsd, vcsd_lb;
  for (int p : table.procs()) {
    lrc.push_back(apps::runIs(bench::baseConfig(dsm::Protocol::kLrcDiff, p),
                              params, apps::IsVariant::kTraditional)
                      .result.seconds);
    vcsd.push_back(apps::runIs(bench::baseConfig(dsm::Protocol::kVcSd, p),
                               params, apps::IsVariant::kVopp)
                       .result.seconds);
    vcsd_lb.push_back(apps::runIs(bench::baseConfig(dsm::Protocol::kVcSd, p),
                                  params, apps::IsVariant::kVoppFewerBarriers)
                          .result.seconds);
  }
  table.add("LRC_d", t_seq, lrc);
  table.add("VC_sd", t_seq, vcsd);
  table.add("VC_sd lb", t_seq, vcsd_lb);
  table.print(std::cout);
  return 0;
}
