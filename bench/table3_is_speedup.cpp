// Table 3: speedup of IS on LRC_d and VC_sd (2..32 processors).
//
// Speedup is measured against the one-processor run of the traditional
// program. Expected shape: VC_sd well above LRC_d everywhere; the
// fewer-barriers variant (VC_sd lb) pulls further ahead as the processor
// count grows.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table3Spec(opts), opts);
}
