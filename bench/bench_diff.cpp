// Regression gate over two BENCH_tables.json files.
//
// The simulator is deterministic: every simulated figure (sim_seconds,
// messages, payload bytes, breakdown/critpath buckets, metric peaks) must be
// byte-for-byte reproducible across commits and host thread counts. Host
// wall-clock figures are not. bench_diff encodes exactly that contract:
//
//   * every field is compared EXACTLY (numbers by parsed value, which for
//     our own fixed-format writer means byte equality), EXCEPT
//   * host-timing keys (host_seconds, wall_seconds, serial_wall_seconds,
//     speedup_vs_serial) get a ratio tolerance with an absolute floor —
//     sub-floor timings are noise and always pass — and may be present in
//     only one of the two files, and
//   * "jobs" (host thread count) is ignored outright.
//
//   bench_diff BASELINE.json CURRENT.json
//   bench_diff --host-tolerance=25 --host-floor-seconds=5 a.json b.json
//
// Exit 0: no simulated drift. Exit 1: drift (each divergence printed with
// its JSON path). Exit 2: usage or I/O error. CI runs this against the
// committed BENCH_tables.json, so any change to the simulation's output
// must be accompanied by a regenerated baseline in the same commit.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/json.hpp"

namespace {

using vodsm::support::Json;

struct Config {
  // A host timing passes when the larger value is within `host_tolerance`
  // times the smaller, or both are under the floor. Generous by default:
  // the gate is for simulated drift, not for benchmarking the host.
  double host_tolerance = 25.0;
  double host_floor_seconds = 5.0;
};

struct Report {
  int mismatches = 0;
  int host_checked = 0;
  static constexpr int kMaxPrinted = 50;

  void fail(const std::string& path, const std::string& why) {
    if (mismatches < kMaxPrinted)
      std::cout << "  " << path << ": " << why << "\n";
    else if (mismatches == kMaxPrinted)
      std::cout << "  ... further mismatches suppressed\n";
    ++mismatches;
  }
};

bool isHostTimingKey(const std::string& key) {
  return key == "host_seconds" || key == "wall_seconds" ||
         key == "serial_wall_seconds" || key == "speedup_vs_serial" ||
         key == "self_speedup_vs_serial";
}

// Host run-shape knobs: thread counts never change simulated output.
bool isIgnoredKey(const std::string& key) {
  return key == "jobs" || key == "sim_threads";
}

std::string describe(const Json& v) {
  switch (v.type()) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return v.asBool() ? "true" : "false";
    case Json::Type::kString: return "\"" + v.asString() + "\"";
    case Json::Type::kNumber: {
      std::ostringstream os;
      os << v.asNumber();
      return os.str();
    }
    case Json::Type::kArray:
      return "array[" + std::to_string(v.items().size()) + "]";
    case Json::Type::kObject:
      return "object{" + std::to_string(v.members().size()) + "}";
  }
  return "?";
}

void checkHostTiming(const Json& base, const Json& cur,
                     const std::string& path, const Config& cfg, Report& rep) {
  if (base.type() != Json::Type::kNumber ||
      cur.type() != Json::Type::kNumber) {
    rep.fail(path, "host-timing field is not a number");
    return;
  }
  ++rep.host_checked;
  const double a = base.asNumber();
  const double b = cur.asNumber();
  if (a <= cfg.host_floor_seconds && b <= cfg.host_floor_seconds) return;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  if (lo > 0 && hi / lo <= cfg.host_tolerance) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "host timing drifted beyond %.0fx: baseline %g vs current %g",
                cfg.host_tolerance, a, b);
  rep.fail(path, buf);
}

void compare(const Json& base, const Json& cur, const std::string& path,
             const Config& cfg, Report& rep) {
  if (base.type() != cur.type()) {
    rep.fail(path, describe(base) + " became " + describe(cur));
    return;
  }
  switch (base.type()) {
    case Json::Type::kNull:
      return;
    case Json::Type::kBool:
      if (base.asBool() != cur.asBool())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kString:
      if (base.asString() != cur.asString())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kNumber:
      // Exact. Both files come from the same fixed-precision writer, so a
      // deterministic simulation reproduces the byte-identical text and
      // therefore the identical double.
      if (base.asNumber() != cur.asNumber())
        rep.fail(path, describe(base) + " became " + describe(cur));
      return;
    case Json::Type::kArray: {
      const auto& a = base.items();
      const auto& b = cur.items();
      if (a.size() != b.size()) {
        rep.fail(path, "array length " + std::to_string(a.size()) +
                           " became " + std::to_string(b.size()));
        return;
      }
      for (size_t i = 0; i < a.size(); ++i)
        compare(a[i], b[i], path + "[" + std::to_string(i) + "]", cfg, rep);
      return;
    }
    case Json::Type::kObject: {
      for (const auto& [key, bval] : base.members()) {
        if (isIgnoredKey(key)) continue;
        const std::string sub = path + "." + key;
        const Json* cval = cur.find(key);
        if (!cval) {
          // Host timings are run-shape dependent (e.g. serial_wall_seconds
          // only exists under --compare-serial); absence is not drift.
          if (!isHostTimingKey(key)) rep.fail(sub, "key disappeared");
          continue;
        }
        if (isHostTimingKey(key))
          checkHostTiming(bval, *cval, sub, cfg, rep);
        else
          compare(bval, *cval, sub, cfg, rep);
      }
      for (const auto& [key, cval] : cur.members()) {
        (void)cval;
        if (isIgnoredKey(key) || isHostTimingKey(key)) continue;
        if (!base.find(key)) rep.fail(path + "." + key, "key appeared");
      }
      return;
    }
  }
}

Json loadFile(const std::string& name) {
  std::ifstream f(name, std::ios::binary);
  if (!f) throw vodsm::Error("cannot read " + name);
  std::ostringstream buf;
  buf << f.rdbuf();
  return Json::parse(buf.str());
}

[[noreturn]] void usage() {
  std::cerr << "usage: bench_diff [--host-tolerance=X]"
               " [--host-floor-seconds=S] BASELINE.json CURRENT.json\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--host-tolerance=", 0) == 0)
      cfg.host_tolerance = std::stod(a.substr(17));
    else if (a.rfind("--host-floor-seconds=", 0) == 0)
      cfg.host_floor_seconds = std::stod(a.substr(21));
    else if (a.rfind("--", 0) == 0)
      usage();
    else
      files.push_back(a);
  }
  if (files.size() != 2) usage();

  try {
    Json base = loadFile(files[0]);
    Json cur = loadFile(files[1]);
    Report rep;
    compare(base, cur, "$", cfg, rep);
    if (rep.mismatches > 0) {
      std::cout << "bench_diff: " << rep.mismatches
                << " simulated field(s) drifted between " << files[0]
                << " and " << files[1] << "\n";
      return 1;
    }
    std::cout << "bench_diff: OK — simulated fields identical ("
              << rep.host_checked << " host-timing fields within "
              << cfg.host_tolerance << "x)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
