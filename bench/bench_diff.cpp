// Regression gate over two BENCH_tables.json files.
//
// The simulator is deterministic: every simulated figure (sim_seconds,
// messages, payload bytes, breakdown/critpath buckets, metric peaks) must be
// byte-for-byte reproducible across commits and host thread counts. Host
// wall-clock figures are not. bench_diff encodes exactly that contract:
//
//   * every field is compared EXACTLY (numbers by parsed value, which for
//     our own fixed-format writer means byte equality), EXCEPT
//   * host-timing keys (host_seconds, wall_seconds, serial_wall_seconds,
//     speedup_vs_serial) get a ratio tolerance with an absolute floor —
//     sub-floor timings are noise and always pass — and may be present in
//     only one of the two files, and
//   * host run-shape/provenance keys ("jobs", "sim_threads", the "host"
//     metadata object) are ignored outright.
//
//   bench_diff BASELINE.json CURRENT.json
//   bench_diff --host-tolerance=25 --host-floor-seconds=5 a.json b.json
//   bench_diff --explain=PROFILES_A,PROFILES_B a.json b.json
//
// --explain upgrades the verdict into a diagnosis: when cells drifted and
// both sides captured per-cell run profiles (table binaries under
// --profiles=DIR; one .profile.json per cell), bench_diff loads the
// drifted cells' profile pairs and prints the ranked differential report
// for each — why B's makespan moved, attributed to critical-path
// categories, barrier episodes, pages and wire classes (see
// obs/profile_diff.hpp). --explain-out=DIR also writes each report as
// JSON next to the text output, so CI can upload the directory as a
// failure artifact.
//
// Exit 0: no simulated drift. Exit 1: drift (each divergence printed with
// its JSON path). Exit 2: usage or I/O error. CI runs this against the
// committed BENCH_tables.json, so any change to the simulation's output
// must be accompanied by a regenerated baseline in the same commit.
//
// The comparison core lives in bench/diff_compare.hpp so the unit tests
// exercise the same code path as this gate.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/diff_compare.hpp"
#include "obs/profile.hpp"
#include "obs/profile_diff.hpp"
#include "support/json.hpp"

namespace {

using vodsm::support::Json;

Json loadFile(const std::string& name) {
  std::ifstream f(name, std::ios::binary);
  if (!f) throw vodsm::Error("cannot read " + name);
  std::ostringstream buf;
  buf << f.rdbuf();
  return Json::parse(buf.str());
}

[[noreturn]] void usage() {
  std::cerr << "usage: bench_diff [--host-tolerance=X]"
               " [--host-floor-seconds=S] [--allow-screened]"
               " [--explain=PROFILES_A,PROFILES_B] [--explain-out=DIR]"
               " BASELINE.json CURRENT.json\n";
  std::exit(2);
}

// For each drifted cell with a persisted profile on both sides, prints the
// ranked differential report (baseline = A) and, when `out_dir` is set,
// writes the JSON report there. Missing profiles are noted, not fatal: a
// drifted cell the baseline never profiled still fails the gate, it just
// cannot be explained.
int explainDrift(const std::vector<std::string>& cells,
                 const std::string& dir_a, const std::string& dir_b,
                 const std::string& out_dir) {
  namespace fs = std::filesystem;
  using namespace vodsm;
  if (!out_dir.empty()) fs::create_directories(out_dir);
  int explained = 0;
  for (const std::string& id : cells) {
    const std::string file = bench::diff::cellProfileFileName(id);
    const fs::path pa = fs::path(dir_a) / file;
    const fs::path pb = fs::path(dir_b) / file;
    if (!fs::exists(pa) || !fs::exists(pb)) {
      std::cout << "explain: no profile pair for " << id << " ("
                << (fs::exists(pa) ? pb : pa).string() << " missing)\n";
      continue;
    }
    const obs::RunProfile a = obs::loadRunProfileFile(pa.string());
    const obs::RunProfile b = obs::loadRunProfileFile(pb.string());
    const obs::DiffReport report = obs::diffProfiles(a, b);
    obs::printDiffReport(std::cout, report, "Differential report: " + id);
    if (!out_dir.empty()) {
      std::string json_name = file;
      json_name.replace(json_name.size() - std::string(".profile.json").size(),
                        std::string::npos, ".diff.json");
      std::ofstream f(fs::path(out_dir) / json_name);
      if (!f) throw vodsm::Error("cannot write " + out_dir + "/" + json_name);
      obs::writeDiffReportJson(f, report);
    }
    ++explained;
  }
  return explained;
}

// Full-token positive number; stod alone would accept "1x" and throw an
// uncaught exception on "abc".
double parseNum(const std::string& flag, const std::string& v) {
  size_t used = 0;
  double d = 0;
  try {
    d = std::stod(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (v.empty() || used != v.size() || d <= 0) {
    std::cerr << flag << "=" << v << ": expected a positive number\n";
    usage();
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vodsm::bench;
  diff::Config cfg;
  std::vector<std::string> files;
  std::string explain_a, explain_b, explain_out;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--host-tolerance=", 0) == 0)
      cfg.host_tolerance = parseNum("--host-tolerance", a.substr(17));
    else if (a.rfind("--host-floor-seconds=", 0) == 0)
      cfg.host_floor_seconds = parseNum("--host-floor-seconds", a.substr(21));
    else if (a == "--allow-screened")
      cfg.allow_screened = true;
    else if (a.rfind("--explain=", 0) == 0) {
      const std::string dirs = a.substr(10);
      const size_t comma = dirs.find(',');
      if (comma == std::string::npos || comma == 0 ||
          comma + 1 == dirs.size()) {
        std::cerr << "--explain expects two directories:"
                     " --explain=PROFILES_A,PROFILES_B\n";
        usage();
      }
      explain_a = dirs.substr(0, comma);
      explain_b = dirs.substr(comma + 1);
    } else if (a.rfind("--explain-out=", 0) == 0)
      explain_out = a.substr(14);
    else if (a.rfind("--", 0) == 0)
      usage();
    else
      files.push_back(a);
  }
  if (files.size() != 2) usage();
  if (!explain_out.empty() && explain_a.empty()) {
    std::cerr << "--explain-out requires --explain\n";
    usage();
  }

  try {
    Json base = loadFile(files[0]);
    Json cur = loadFile(files[1]);
    diff::Report rep;
    diff::compare(base, cur, "$", cfg, rep);
    if (rep.mismatches > 0) {
      std::cout << "bench_diff: " << rep.mismatches
                << " simulated field(s) drifted between " << files[0]
                << " and " << files[1] << "\n";
      if (!explain_a.empty()) {
        std::cout << "bench_diff: explaining " << rep.drifted_cells.size()
                  << " drifted cell(s) from " << explain_a << " vs "
                  << explain_b << "\n";
        explainDrift(rep.drifted_cells, explain_a, explain_b, explain_out);
      }
      return 1;
    }
    std::cout << "bench_diff: OK — simulated fields identical ("
              << rep.host_checked << " host-timing fields within "
              << cfg.host_tolerance << "x";
    if (rep.screened_skipped > 0)
      std::cout << ", " << rep.screened_skipped << " screened cells skipped";
    std::cout << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
