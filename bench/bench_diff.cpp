// Regression gate over two BENCH_tables.json files.
//
// The simulator is deterministic: every simulated figure (sim_seconds,
// messages, payload bytes, breakdown/critpath buckets, metric peaks) must be
// byte-for-byte reproducible across commits and host thread counts. Host
// wall-clock figures are not. bench_diff encodes exactly that contract:
//
//   * every field is compared EXACTLY (numbers by parsed value, which for
//     our own fixed-format writer means byte equality), EXCEPT
//   * host-timing keys (host_seconds, wall_seconds, serial_wall_seconds,
//     speedup_vs_serial) get a ratio tolerance with an absolute floor —
//     sub-floor timings are noise and always pass — and may be present in
//     only one of the two files, and
//   * host run-shape/provenance keys ("jobs", "sim_threads", the "host"
//     metadata object) are ignored outright.
//
//   bench_diff BASELINE.json CURRENT.json
//   bench_diff --host-tolerance=25 --host-floor-seconds=5 a.json b.json
//
// Exit 0: no simulated drift. Exit 1: drift (each divergence printed with
// its JSON path). Exit 2: usage or I/O error. CI runs this against the
// committed BENCH_tables.json, so any change to the simulation's output
// must be accompanied by a regenerated baseline in the same commit.
//
// The comparison core lives in bench/diff_compare.hpp so the unit tests
// exercise the same code path as this gate.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/diff_compare.hpp"
#include "support/json.hpp"

namespace {

using vodsm::support::Json;

Json loadFile(const std::string& name) {
  std::ifstream f(name, std::ios::binary);
  if (!f) throw vodsm::Error("cannot read " + name);
  std::ostringstream buf;
  buf << f.rdbuf();
  return Json::parse(buf.str());
}

[[noreturn]] void usage() {
  std::cerr << "usage: bench_diff [--host-tolerance=X]"
               " [--host-floor-seconds=S] [--allow-screened]"
               " BASELINE.json CURRENT.json\n";
  std::exit(2);
}

// Full-token positive number; stod alone would accept "1x" and throw an
// uncaught exception on "abc".
double parseNum(const std::string& flag, const std::string& v) {
  size_t used = 0;
  double d = 0;
  try {
    d = std::stod(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (v.empty() || used != v.size() || d <= 0) {
    std::cerr << flag << "=" << v << ": expected a positive number\n";
    usage();
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vodsm::bench;
  diff::Config cfg;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--host-tolerance=", 0) == 0)
      cfg.host_tolerance = parseNum("--host-tolerance", a.substr(17));
    else if (a.rfind("--host-floor-seconds=", 0) == 0)
      cfg.host_floor_seconds = parseNum("--host-floor-seconds", a.substr(21));
    else if (a == "--allow-screened")
      cfg.allow_screened = true;
    else if (a.rfind("--", 0) == 0)
      usage();
    else
      files.push_back(a);
  }
  if (files.size() != 2) usage();

  try {
    Json base = loadFile(files[0]);
    Json cur = loadFile(files[1]);
    diff::Report rep;
    diff::compare(base, cur, "$", cfg, rep);
    if (rep.mismatches > 0) {
      std::cout << "bench_diff: " << rep.mismatches
                << " simulated field(s) drifted between " << files[0]
                << " and " << files[1] << "\n";
      return 1;
    }
    std::cout << "bench_diff: OK — simulated fields identical ("
              << rep.host_checked << " host-timing fields within "
              << cfg.host_tolerance << "x";
    if (rep.screened_skipped > 0)
      std::cout << ", " << rep.screened_skipped << " screened cells skipped";
    std::cout << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
