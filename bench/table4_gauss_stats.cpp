// Table 4: statistics of Gauss on 16 processors.
//
// Expected shape (paper Section 5.2): the VOPP conversion keeps the row
// blocks in local buffers, so VC_d issues far fewer diff requests than
// LRC_d and moves far less data; VC_sd eliminates diff requests entirely.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table4Spec(opts), opts);
}
