// Table 4: statistics of Gauss on 16 processors.
//
// Expected shape (paper Section 5.2): the VOPP conversion keeps the row
// blocks in local buffers, so VC_d issues far fewer diff requests than
// LRC_d and moves far less data; VC_sd eliminates diff requests entirely.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::gaussParams(opts.full);

  bench::StatsTable table("Table 4: Statistics of Gauss on " +
                          std::to_string(opts.procs) + " processors");
  table.add("LRC_d", apps::runGauss(
                         bench::baseConfig(dsm::Protocol::kLrcDiff, opts.procs),
                         params, apps::GaussVariant::kTraditional)
                         .result);
  table.add("VC_d", apps::runGauss(
                        bench::baseConfig(dsm::Protocol::kVcDiff, opts.procs),
                        params, apps::GaussVariant::kVopp)
                        .result);
  table.add("VC_sd", apps::runGauss(
                         bench::baseConfig(dsm::Protocol::kVcSd, opts.procs),
                         params, apps::GaussVariant::kVopp)
                         .result);
  table.print(std::cout);
  return 0;
}
