// Declarative table specs for the paper's nine evaluation tables.
//
// Each spec names its simulation cells (one cell = one independent,
// deterministic run) and knows how to render the paper-style table from the
// cell results. Splitting "which runs" from "run them" lets every table
// binary — and the whole-suite driver — execute its cells through the
// parallel runner while printing output byte-identical to the old serial
// loops (results are consumed in submission order).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "bench/table_common.hpp"
#include "model/axes.hpp"

namespace vodsm::bench {

struct Cell {
  Cell() = default;
  Cell(std::string id_, std::function<harness::RunResult()> run_)
      : id(std::move(id_)), run(std::move(run_)) {}

  std::string id;  // e.g. "IS/VC_sd/16p"
  std::function<harness::RunResult()> run;
  // Coordinates in the model axis space. Plain paper-table cells sit at
  // the reference configuration (explicit_axes false); axis-sweep cells
  // record their full coordinates in the JSON so model_suite can fit over
  // them.
  model::AxisPoint axes;
};

struct TableSpec {
  std::string name;  // machine name, e.g. "table3_is_speedup"
  std::vector<Cell> cells;
  std::function<void(std::ostream&, const std::vector<harness::RunResult>&)>
      print;
};

TableSpec table1Spec(const Options& o);
TableSpec table2Spec(const Options& o);
TableSpec table3Spec(const Options& o);
TableSpec table4Spec(const Options& o);
TableSpec table5Spec(const Options& o);
TableSpec table6Spec(const Options& o);
TableSpec table7Spec(const Options& o);
TableSpec table8Spec(const Options& o);
TableSpec table9Spec(const Options& o);
// Off-p-axis sweep (not from the paper): bandwidth, loss-rate and
// problem-size variations of the 16-processor IS and SOR cells, giving the
// multi-axis fitter real training data on every model axis.
TableSpec table10Spec(const Options& o);
// Scaling sweep (not from the paper): IS on LRC_d and VC_sd at p in
// {32, 64, 128, 256} (--big extends to 512 and 1024), both on the paper's
// star fabric with the centralized barrier and on a fat tree with the tree
// barrier and hashed view homes ("_ft" columns). Deliberately NOT part of
// allTableSpecs: it feeds its own baseline (BENCH_scaling.json) and gate,
// keeping BENCH_tables.json byte-identical.
TableSpec table11Spec(const Options& o);
std::vector<TableSpec> allTableSpecs(const Options& o);

// Analytic screen: for every cell whose id appears in `model_path`'s eval
// list with recorded prediction error <= tol, replaces the cell's run with
// the model's prediction (RunResult::screened) and logs the skip to `log`
// with the predicted value and the dominant model term. Returns the number
// of cells screened. Throws vodsm::Error on an unreadable model file.
int applyScreen(std::vector<TableSpec>& specs, const std::string& model_path,
                double tol, std::ostream& log);

// Results of executing one spec's cells.
struct SpecRun {
  std::vector<harness::RunResult> results;   // cells in submission order
  std::vector<double> cell_host_seconds;     // host wall-clock per cell
  double wall_seconds = 0;                   // host wall-clock of the sweep
};

// Runs a spec's cells across `jobs` host threads (see parallel_runner.hpp).
SpecRun runSpec(const TableSpec& spec, int jobs);

// Profile file name for a cell id: '/' becomes '_' and ".profile.json" is
// appended ("IS/LRC_d/16p" -> "IS_LRC_d_16p.profile.json").
std::string profileFileName(const std::string& cell_id);

// Writes each profiled cell's persisted run profile (obs::RunProfile JSON,
// labelled with the cell id) into `dir`, creating it if needed. Cells
// without a profile — screened cells and the unmetered MPI reference runs —
// are skipped. Logs a summary line to `log`; returns the number written.
int writeCellProfiles(const std::string& dir,
                      const std::vector<TableSpec>& specs,
                      const std::vector<SpecRun>& runs, std::ostream& log);

// Loads per-cell baseline profiles from `baseline_dir` and prints the
// ranked differential report (baseline = A, this run = B) to `os` for
// every profiled cell whose baseline exists, in cell order. Missing
// baselines are noted on `log`. Returns the number of reports printed.
int compareCellProfiles(const std::string& baseline_dir,
                        const std::vector<TableSpec>& specs,
                        const std::vector<SpecRun>& runs, std::ostream& os,
                        std::ostream& log);

// JSON record for BENCH_tables.json: per-cell simulated + host seconds,
// sweep wall-clock, and (when measured) the serial baseline and speedup.
void writeTablesJson(std::ostream& os, const std::vector<TableSpec>& specs,
                     const std::vector<SpecRun>& runs, const Options& o,
                     int jobs, double wall_seconds,
                     double serial_wall_seconds);

// Shared main() for the per-table binaries: run cells in parallel, print
// the table, optionally write the JSON record to o.json.
int tableMain(const TableSpec& spec, const Options& o);

}  // namespace vodsm::bench
