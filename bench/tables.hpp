// Declarative table specs for the paper's nine evaluation tables.
//
// Each spec names its simulation cells (one cell = one independent,
// deterministic run) and knows how to render the paper-style table from the
// cell results. Splitting "which runs" from "run them" lets every table
// binary — and the whole-suite driver — execute its cells through the
// parallel runner while printing output byte-identical to the old serial
// loops (results are consumed in submission order).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "bench/table_common.hpp"

namespace vodsm::bench {

struct Cell {
  std::string id;  // e.g. "IS/VC_sd/16p"
  std::function<harness::RunResult()> run;
};

struct TableSpec {
  std::string name;  // machine name, e.g. "table3_is_speedup"
  std::vector<Cell> cells;
  std::function<void(std::ostream&, const std::vector<harness::RunResult>&)>
      print;
};

TableSpec table1Spec(const Options& o);
TableSpec table2Spec(const Options& o);
TableSpec table3Spec(const Options& o);
TableSpec table4Spec(const Options& o);
TableSpec table5Spec(const Options& o);
TableSpec table6Spec(const Options& o);
TableSpec table7Spec(const Options& o);
TableSpec table8Spec(const Options& o);
TableSpec table9Spec(const Options& o);
std::vector<TableSpec> allTableSpecs(const Options& o);

// Results of executing one spec's cells.
struct SpecRun {
  std::vector<harness::RunResult> results;   // cells in submission order
  std::vector<double> cell_host_seconds;     // host wall-clock per cell
  double wall_seconds = 0;                   // host wall-clock of the sweep
};

// Runs a spec's cells across `jobs` host threads (see parallel_runner.hpp).
SpecRun runSpec(const TableSpec& spec, int jobs);

// JSON record for BENCH_tables.json: per-cell simulated + host seconds,
// sweep wall-clock, and (when measured) the serial baseline and speedup.
void writeTablesJson(std::ostream& os, const std::vector<TableSpec>& specs,
                     const std::vector<SpecRun>& runs, const Options& o,
                     int jobs, double wall_seconds,
                     double serial_wall_seconds);

// Shared main() for the per-table binaries: run cells in parallel, print
// the table, optionally write the JSON record to o.json.
int tableMain(const TableSpec& spec, const Options& o);

}  // namespace vodsm::bench
