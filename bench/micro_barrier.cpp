// Microbenchmark / ablation: barrier cost versus processor count for
// consistency-carrying barriers (LRC_d, with per-node dirty pages to merge
// and rebroadcast) versus pure-synchronization barriers (VC). This isolates
// the paper's central structural claim: "barriers in VOPP simply
// synchronize the processors without any consistency maintenance".
//
// BM_BarrierAlg then sweeps the barrier algorithm itself — centralized
// manager vs radix-4 combining tree vs butterfly (dissemination) — at
// p up to 256, reporting the simulated barrier time and the frame count on
// the manager's downlink (node 0), the centralized algorithm's incast
// bottleneck that the scalable algorithms exist to remove.
#include <benchmark/benchmark.h>

#include "vopp/cluster.hpp"

namespace {

using namespace vodsm;

struct BarrierRun {
  double barrier_micros = 0;
  // Frames delivered to node 0, the centralized manager's home: every
  // arrival and every ack funnels through here under kCentral, only the
  // node's own tree/butterfly neighbors otherwise.
  uint64_t manager_frames = 0;
};

BarrierRun barrierRun(dsm::Protocol proto, dsm::BarrierAlg alg, int procs,
                      bool dirty_pages, int rounds = 20) {
  vopp::Cluster cluster(
      {.nprocs = procs, .protocol = proto, .proto = {.barrier = alg}});
  // One view/region per node so every node dirties private pages between
  // barriers (the consistency payload for LRC).
  std::vector<dsm::ViewId> views;
  for (int i = 0; i < procs; ++i) views.push_back(cluster.defineView(4 * 4096));
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int round = 0; round < rounds; ++round) {
      if (dirty_pages) {
        dsm::ViewId v = views[static_cast<size_t>(node.id())];
        size_t off = node.cluster().viewOffset(v);
        co_await node.acquireView(v);
        co_await node.touchWrite(off, 4 * 4096);
        auto span = node.mem(off, 4 * 4096);
        std::fill(span.begin(), span.end(), static_cast<std::byte>(round));
        co_await node.releaseView(v);
      }
      co_await node.barrier();
    }
  });
  return {cluster.dsmStats().avgBarrierMicros(),
          cluster.netStatsFor(0).frames_delivered};
}

void BM_Barrier(benchmark::State& state) {
  const auto proto = static_cast<dsm::Protocol>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  double micros = 0;
  for (auto _ : state) {
    micros = barrierRun(proto, dsm::BarrierAlg::kCentral, procs,
                        /*dirty_pages=*/true)
                 .barrier_micros;
    benchmark::DoNotOptimize(micros);
  }
  state.counters["simulated_barrier_us"] = micros;
}

void registerArgs(benchmark::internal::Benchmark* b) {
  for (int proto : {0, 1, 2})  // LRC_d, VC_d, VC_sd
    for (int procs : {2, 8, 16, 32}) b->Args({proto, procs});
}
BENCHMARK(BM_Barrier)->Apply(registerArgs)->Unit(benchmark::kMillisecond);

void BM_BarrierAlg(benchmark::State& state) {
  const auto alg = static_cast<dsm::BarrierAlg>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  BarrierRun r;
  for (auto _ : state) {
    // VC_sd: the barrier carries no consistency payload, so the sweep
    // isolates pure synchronization cost.
    r = barrierRun(dsm::Protocol::kVcSd, alg, procs, /*dirty_pages=*/false);
    benchmark::DoNotOptimize(r.barrier_micros);
  }
  state.counters["simulated_barrier_ns"] = r.barrier_micros * 1e3;
  state.counters["manager_downlink_frames"] =
      static_cast<double>(r.manager_frames);
}

void registerAlgArgs(benchmark::internal::Benchmark* b) {
  for (int alg : {0, 1, 2})  // central, tree, butterfly
    for (int procs : {32, 64, 128, 256}) b->Args({alg, procs});
}
BENCHMARK(BM_BarrierAlg)->Apply(registerAlgArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
