// Microbenchmark / ablation: barrier cost versus processor count for
// consistency-carrying barriers (LRC_d, with per-node dirty pages to merge
// and rebroadcast) versus pure-synchronization barriers (VC). This isolates
// the paper's central structural claim: "barriers in VOPP simply
// synchronize the processors without any consistency maintenance".
#include <benchmark/benchmark.h>

#include "vopp/cluster.hpp"

namespace {

using namespace vodsm;

double barrierMicros(dsm::Protocol proto, int procs, bool dirty_pages) {
  vopp::Cluster cluster({.nprocs = procs, .protocol = proto});
  // One view/region per node so every node dirties private pages between
  // barriers (the consistency payload for LRC).
  std::vector<dsm::ViewId> views;
  for (int i = 0; i < procs; ++i) views.push_back(cluster.defineView(4 * 4096));
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int round = 0; round < 20; ++round) {
      if (dirty_pages) {
        dsm::ViewId v = views[static_cast<size_t>(node.id())];
        size_t off = node.cluster().viewOffset(v);
        co_await node.acquireView(v);
        co_await node.touchWrite(off, 4 * 4096);
        auto span = node.mem(off, 4 * 4096);
        std::fill(span.begin(), span.end(), static_cast<std::byte>(round));
        co_await node.releaseView(v);
      }
      co_await node.barrier();
    }
  });
  return cluster.dsmStats().avgBarrierMicros();
}

void BM_Barrier(benchmark::State& state) {
  const auto proto = static_cast<dsm::Protocol>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  double micros = 0;
  for (auto _ : state) {
    micros = barrierMicros(proto, procs, /*dirty_pages=*/true);
    benchmark::DoNotOptimize(micros);
  }
  state.counters["simulated_barrier_us"] = micros;
}

void registerArgs(benchmark::internal::Benchmark* b) {
  for (int proto : {0, 1, 2})  // LRC_d, VC_d, VC_sd
    for (int procs : {2, 8, 16, 32}) b->Args({proto, procs});
}
BENCHMARK(BM_Barrier)->Apply(registerArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
