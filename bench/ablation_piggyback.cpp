// Ablation: what exactly does VC_sd buy over VC_d?
//
// VC_sd differs from VC_d in two fused mechanisms: (1) successive diffs of
// a page are *integrated* into a single diff, and (2) the integrated diffs
// are *piggybacked* on the view-grant message instead of being pulled by
// page faults. Running the same view-ping-pong workload on both runtimes
// separates the protocols' costs; the version-chain length (how many writers
// touched the view between two acquisitions by the same node) controls how
// much integration can compress.
#include <benchmark/benchmark.h>

#include "vopp/cluster.hpp"

namespace {

using namespace vodsm;

struct Outcome {
  double seconds;
  uint64_t messages;
  uint64_t payload;
  uint64_t diff_requests;
};

// `writers` nodes update a shared view in turn; one reader then acquires
// it, having last seen it `writers` versions ago (version-chain length =
// writers).
Outcome chainWorkload(dsm::Protocol proto, int writers) {
  const int procs = writers + 1;
  vopp::Cluster cluster({.nprocs = procs, .protocol = proto});
  dsm::ViewId v = cluster.defineView(4 * 4096);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(v);
    for (int round = 0; round < 10; ++round) {
      if (node.id() < writers) {
        co_await node.acquireView(v);
        co_await node.touchWrite(off, 4 * 4096);
        auto span = node.mem(off, 4 * 4096);
        std::fill(span.begin(), span.end(),
                  static_cast<std::byte>(node.id() + round));
        co_await node.releaseView(v);
      }
      co_await node.barrier();
      if (node.id() == writers) {  // the reader
        co_await node.acquireRview(v);
        co_await node.touchRead(off, 4 * 4096);
        co_await node.releaseRview(v);
      }
      co_await node.barrier();
    }
  });
  return {cluster.seconds(), cluster.netStats().messages,
          cluster.netStats().payload_bytes, cluster.dsmStats().diff_requests};
}

void BM_VersionChain(benchmark::State& state) {
  const auto proto = state.range(0) == 0 ? dsm::Protocol::kVcDiff
                                         : dsm::Protocol::kVcSd;
  const int writers = static_cast<int>(state.range(1));
  Outcome out{};
  for (auto _ : state) {
    out = chainWorkload(proto, writers);
    benchmark::DoNotOptimize(out.seconds);
  }
  state.counters["simulated_s"] = out.seconds;
  state.counters["messages"] = static_cast<double>(out.messages);
  state.counters["payload_kb"] = static_cast<double>(out.payload) / 1024.0;
  state.counters["diff_requests"] = static_cast<double>(out.diff_requests);
}

void registerArgs(benchmark::internal::Benchmark* b) {
  for (int proto : {0, 1})
    for (int writers : {1, 2, 4, 8}) b->Args({proto, writers});
}
BENCHMARK(BM_VersionChain)->Apply(registerArgs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
