// Table 6: statistics of SOR on 16 processors.
//
// Expected shape (paper Section 5.3): local buffers plus border views cut
// the transferred data dramatically (paper: 11.85 MB -> 2.99 MB) and VC
// barriers are far cheaper than LRC's.
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::sorParams(opts.full);

  bench::StatsTable table("Table 6: Statistics of SOR on " +
                          std::to_string(opts.procs) + " processors");
  table.add("LRC_d",
            apps::runSor(bench::baseConfig(dsm::Protocol::kLrcDiff, opts.procs),
                         params, apps::SorVariant::kTraditional)
                .result);
  table.add("VC_d",
            apps::runSor(bench::baseConfig(dsm::Protocol::kVcDiff, opts.procs),
                         params, apps::SorVariant::kVopp)
                .result);
  table.add("VC_sd",
            apps::runSor(bench::baseConfig(dsm::Protocol::kVcSd, opts.procs),
                         params, apps::SorVariant::kVopp)
                .result);
  table.print(std::cout);
  return 0;
}
