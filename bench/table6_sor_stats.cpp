// Table 6: statistics of SOR on 16 processors.
//
// Expected shape (paper Section 5.3): local buffers plus border views cut
// the transferred data dramatically (paper: 11.85 MB -> 2.99 MB) and VC
// barriers are far cheaper than LRC's.
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table6Spec(opts), opts);
}
