// Table 7: speedup of SOR on LRC_d and VC_sd (2..32 processors).
#include "bench/helpers.hpp"

int main(int argc, char** argv) {
  using namespace vodsm;
  auto opts = bench::parseArgs(argc, argv);
  auto params = bench::sorParams(opts.full);

  const double t_seq =
      apps::runSor(bench::sequentialConfig(), params,
                   apps::SorVariant::kTraditional)
          .result.seconds;

  bench::SpeedupTable table("Table 7: Speedup of SOR on LRC_d and VC_sd",
                            {2, 4, 8, 16, 24, 32});
  std::vector<double> lrc, vcsd;
  for (int p : table.procs()) {
    lrc.push_back(apps::runSor(bench::baseConfig(dsm::Protocol::kLrcDiff, p),
                               params, apps::SorVariant::kTraditional)
                      .result.seconds);
    vcsd.push_back(apps::runSor(bench::baseConfig(dsm::Protocol::kVcSd, p),
                                params, apps::SorVariant::kVopp)
                       .result.seconds);
  }
  table.add("LRC_d", t_seq, lrc);
  table.add("VC_sd", t_seq, vcsd);
  table.print(std::cout);
  return 0;
}
