// Table 7: speedup of SOR on LRC_d and VC_sd (2..32 processors).
#include "bench/tables.hpp"

int main(int argc, char** argv) {
  auto opts = vodsm::bench::parseArgs(argc, argv);
  return vodsm::bench::tableMain(vodsm::bench::table7Spec(opts), opts);
}
