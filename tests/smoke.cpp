// Early smoke test: exercises the sim engine, coroutine tasks, transport,
// and diff machinery together.
#include <gtest/gtest.h>

#include "mem/diff.hpp"
#include "mem/page_store.hpp"
#include "net/transport.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vodsm {
namespace {

TEST(Smoke, EngineOrdersEvents) {
  sim::Engine e;
  std::vector<int> order;
  e.at(20, [&] { order.push_back(2); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 20);
}

TEST(Smoke, DiffRoundTrip) {
  Bytes twin(mem::kPageSize, std::byte{0});
  Bytes cur = twin;
  cur[100] = std::byte{7};
  cur[101] = std::byte{8};
  cur[4000] = std::byte{9};
  mem::Diff d = mem::Diff::create(3, cur, twin);
  EXPECT_FALSE(d.empty());
  Bytes out = twin;
  d.apply(out);
  EXPECT_EQ(out, cur);
}

TEST(Smoke, TransportRequestReply) {
  sim::Engine e;
  net::Network net(e, 2, net::NetConfig{}, /*seed=*/1);
  net::Endpoint a(e, net, 0);
  net::Endpoint b(e, net, 1);
  b.setHandler([&](net::Delivery&& d, const net::ReplyToken& tok) {
    EXPECT_EQ(d.type, 42);
    Writer w;
    w.u32(7);
    b.reply(tok, 43, w.take(), d.arrive + sim::usec(5));
  });
  bool done = false;
  sim::spawn(
      [](net::Endpoint& ep, bool& done_flag) -> sim::Task<void> {
        auto r = co_await ep.request(1, 42, Bytes{}, 0);
        EXPECT_EQ(r.type, 43);
        Reader rd(r.payload);
        EXPECT_EQ(rd.u32(), 7u);
        done_flag = true;
      }(a, done));
  e.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace vodsm
