// Unit tests for the sim substrate: engine, rng, tasks, waiters, clock.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/waiter.hpp"

namespace vodsm::sim {
namespace {

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TieBrokenByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) e.at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) e.after(10, chain);
  };
  e.at(0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int fired = 0;
  e.at(1, [&] {
    fired++;
    e.stop();
  });
  e.at(2, [&] { fired++; });
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunBoundedReportsDrainState) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.at(i, [] {});
  EXPECT_FALSE(e.runBounded(5));
  EXPECT_TRUE(e.runBounded(100));
}

// A stopped run abandons its queue: runBounded must never report it as
// drained, even when every scheduled event happened to execute first.
TEST(Engine, RunBoundedAfterStopReportsNotDrained) {
  Engine e;
  e.at(1, [&] { e.stop(); });
  e.at(2, [] {});
  EXPECT_FALSE(e.runBounded(100));
  EXPECT_TRUE(e.stopped());
  EXPECT_EQ(e.pending(), 1u);

  Engine e2;
  e2.at(1, [&] { e2.stop(); });  // stop on the very last event
  EXPECT_FALSE(e2.runBounded(100));
  EXPECT_EQ(e2.pending(), 0u);
}

// Aux (observer-only) events interleave at their times but never keep the
// engine alive; run() counts real events only.
TEST(Engine, AuxEventsDoNotKeepEngineAlive) {
  Engine e;
  int aux_fired = 0;
  int real_fired = 0;
  std::function<void()> tick = [&] {
    ++aux_fired;
    e.auxAfter(5, [&tick] { tick(); });
  };
  e.auxAt(0, [&tick] { tick(); });
  e.at(12, [&] { ++real_fired; });
  const uint64_t n = e.run();
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(real_fired, 1);
  EXPECT_EQ(aux_fired, 3);  // t = 0, 5, 10; the trailing tick is discarded
  EXPECT_EQ(e.now(), 12);
}

TEST(Engine, ResolveSimThreads) {
  const char* old = std::getenv("VODSM_SIM_THREADS");
  const std::string saved = old ? old : "";
  EXPECT_EQ(resolveSimThreads(3), 3);
  EXPECT_EQ(resolveSimThreads(-1), 1);
  ::setenv("VODSM_SIM_THREADS", "5", 1);
  EXPECT_EQ(resolveSimThreads(0), 5);
  ::unsetenv("VODSM_SIM_THREADS");
  EXPECT_EQ(resolveSimThreads(0), 1);
  if (old) ::setenv("VODSM_SIM_THREADS", saved.c_str(), 1);
}

// Cross-lane ping-pong chains: the per-lane execution records (times and
// chain positions) must be identical for every worker count, and the
// parallel schedules must actually run (lookahead published, >1 lane).
TEST(Engine, LaneScheduleIsThreadCountInvariant) {
  constexpr uint32_t kLanes = 4;
  using LaneLog = std::vector<std::pair<Time, int>>;
  auto runIt = [](int threads, std::array<LaneLog, kLanes>& logs) {
    Engine e;
    e.configureLanes(kLanes, threads);
    e.setLookahead(10);
    std::function<void(uint32_t, int)> hop = [&](uint32_t lane, int k) {
      logs[lane].emplace_back(e.now(), k);
      if (k < 50) {
        const uint32_t nxt = (lane + 1) % kLanes;
        e.atLane(nxt, e.now() + 10, [&hop, nxt, k] { hop(nxt, k + 1); });
      }
    };
    for (uint32_t l = 0; l < kLanes; ++l) {
      Engine::LaneGuard g(e, l);
      e.at(l + 1, [&hop, l] { hop(l, 0); });
    }
    const uint64_t n = e.run();
    EXPECT_EQ(n, kLanes * 51u);
    EXPECT_EQ(e.pending(), 0u);
  };
  std::array<LaneLog, kLanes> serial;
  runIt(1, serial);
  for (int threads : {2, 4}) {
    std::array<LaneLog, kLanes> par;
    runIt(threads, par);
    for (uint32_t l = 0; l < kLanes; ++l)
      EXPECT_EQ(serial[l], par[l]) << "lane " << l << ", threads " << threads;
  }
}

TEST(Engine, SchedulingInPastIsRejectedInDebug) {
#ifndef NDEBUG
  Engine e;
  e.at(10, [] {});
  e.run();
  EXPECT_THROW(e.at(5, [] {}), Error);
#else
  GTEST_SKIP() << "debug-only check";
#endif
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 1000 draws
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(1);
  Rng b = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

Task<int> answer() { co_return 42; }
Task<int> addOne(Task<int> inner) { co_return co_await std::move(inner) + 1; }

TEST(Task, ChainsThroughCoAwait) {
  int result = 0;
  spawn([](int& out) -> Task<void> {
    out = co_await addOne(answer());
  }(result));
  EXPECT_EQ(result, 43);
}

TEST(Task, ExceptionPropagatesToSpawnCallback) {
  std::string message;
  spawn(
      []() -> Task<void> {
        throw Error("boom");
        co_return;
      }(),
      [&](std::exception_ptr e) {
        try {
          if (e) std::rethrow_exception(e);
        } catch (const Error& err) {
          message = err.what();
        }
      });
  EXPECT_EQ(message, "boom");
}

TEST(TaskScope, CompletedTasksDeregister) {
  TaskScope scope;
  int result = 0;
  spawn(scope, [](int& out) -> Task<void> {
    out = co_await addOne(answer());
  }(result));
  EXPECT_EQ(result, 43);
  EXPECT_EQ(scope.liveCount(), 0u);
}

// A frame suspended forever (the deadlock shape: engine drained, task still
// waiting) must be reclaimed by its scope, including awaited child frames —
// this is what keeps abandoned runs leak-free under LeakSanitizer.
TEST(TaskScope, ReclaimsSuspendedFramesWithChildren) {
  Waiter<void> never;
  bool finished = false;
  {
    TaskScope scope;
    spawn(
        scope,
        [](Waiter<void>& w) -> Task<void> {
          co_await [](Waiter<void>& inner) -> Task<void> {
            co_await inner;  // never fulfilled
          }(w);
        }(never),
        [&](std::exception_ptr) { finished = true; });
    EXPECT_EQ(scope.liveCount(), 1u);
  }  // scope destroys the suspended driver + task + child frames
  EXPECT_FALSE(finished);  // destroyed, not resumed: done never fires
  EXPECT_FALSE(never.ready());
}

TEST(TaskScope, CancelAllIsIdempotent) {
  Waiter<void> never;
  TaskScope scope;
  spawn(scope, [](Waiter<void>& w) -> Task<void> { co_await w; }(never));
  scope.cancelAll();
  EXPECT_EQ(scope.liveCount(), 0u);
  scope.cancelAll();
  spawn(scope, []() -> Task<void> { co_return; }());
  EXPECT_EQ(scope.liveCount(), 0u);
}

TEST(Waiter, FulfillBeforeAwaitDoesNotSuspend) {
  Waiter<int> w;
  w.fulfill(9);
  int got = 0;
  spawn([](Waiter<int>& wt, int& out) -> Task<void> {
    out = co_await wt;
  }(w, got));
  EXPECT_EQ(got, 9);
}

TEST(Waiter, AwaitThenFulfillResumes) {
  Waiter<int> w;
  int got = 0;
  spawn([](Waiter<int>& wt, int& out) -> Task<void> {
    out = co_await wt;
  }(w, got));
  EXPECT_EQ(got, 0);
  w.fulfill(5);
  EXPECT_EQ(got, 5);
}

TEST(Waiter, DoubleFulfillThrows) {
  Waiter<void> w;
  w.fulfill();
  EXPECT_THROW(w.fulfill(), Error);
}

TEST(Countdown, ResumesAtZero) {
  Countdown c(3);
  bool done = false;
  spawn([](Countdown& cd, bool& flag) -> Task<void> {
    co_await cd;
    flag = true;
  }(c, done));
  c.arrive();
  c.arrive();
  EXPECT_FALSE(done);
  c.arrive();
  EXPECT_TRUE(done);
}

TEST(Countdown, OverArrivalThrows) {
  Countdown c(1);
  c.arrive();
  EXPECT_THROW(c.arrive(), Error);
}

TEST(Clock, ChargeAndClamp) {
  Clock c;
  c.charge(100);
  EXPECT_EQ(c.now(), 100);
  c.atLeast(50);  // no going backwards
  EXPECT_EQ(c.now(), 100);
  c.atLeast(200);
  EXPECT_EQ(c.now(), 200);
}

TEST(Clock, SleepForAdvancesWithEngine) {
  Engine e;
  Clock c;
  c.charge(usec(5));
  bool done = false;
  spawn([](Engine& eng, Clock& clk, bool& flag) -> Task<void> {
    co_await sleepFor(eng, clk, usec(10));
    flag = true;
  }(e, c, done));
  EXPECT_FALSE(done);
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.now(), usec(15));
  EXPECT_EQ(e.now(), usec(15));
}

}  // namespace
}  // namespace vodsm::sim
