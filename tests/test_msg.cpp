// Tests for the MPI-like message-passing library.
#include <gtest/gtest.h>

#include <numeric>

#include "msg/world.hpp"

namespace vodsm::msg {
namespace {

WorldOptions opts(int n) {
  WorldOptions o;
  o.nprocs = n;
  return o;
}

TEST(Msg, PointToPointFifoPerTag) {
  World world(opts(2));
  std::vector<int> got;
  world.run([&](Rank& rank) -> sim::Task<void> {
    if (rank.id() == 0) {
      for (int i = 0; i < 5; ++i) {
        Writer w;
        w.u32(static_cast<uint32_t>(i));
        rank.send(1, 7, w.take());
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        Bytes b = co_await rank.recv(0, 7);
        Reader r(b);
        got.push_back(static_cast<int>(r.u32()));
      }
    }
    co_return;
  });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Msg, TagsMatchIndependently) {
  World world(opts(2));
  int got_a = 0, got_b = 0;
  world.run([&](Rank& rank) -> sim::Task<void> {
    if (rank.id() == 0) {
      Writer wa, wb;
      wa.u32(11);
      wb.u32(22);
      rank.send(1, 2, wb.take());  // tag 2 first on the wire
      rank.send(1, 1, wa.take());
    } else {
      Bytes a = co_await rank.recv(0, 1);  // but receive tag 1 first
      Bytes b = co_await rank.recv(0, 2);
      Reader ra(a), rb(b);
      got_a = static_cast<int>(ra.u32());
      got_b = static_cast<int>(rb.u32());
    }
    co_return;
  });
  EXPECT_EQ(got_a, 11);
  EXPECT_EQ(got_b, 22);
}

class MsgCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MsgCollectives, BarrierSynchronizes) {
  World world(opts(GetParam()));
  std::vector<sim::Time> before(static_cast<size_t>(GetParam()));
  std::vector<sim::Time> after(static_cast<size_t>(GetParam()));
  world.run([&](Rank& rank) -> sim::Task<void> {
    rank.charge(sim::msec(rank.id()));  // staggered arrivals
    before[static_cast<size_t>(rank.id())] = rank.now();
    co_await rank.barrier();
    after[static_cast<size_t>(rank.id())] = rank.now();
  });
  sim::Time latest_arrival = *std::max_element(before.begin(), before.end());
  for (sim::Time t : after) EXPECT_GE(t, latest_arrival);
}

TEST_P(MsgCollectives, BcastDeliversRootBuffer) {
  World world(opts(GetParam()));
  std::vector<int> ok(static_cast<size_t>(GetParam()), 0);
  world.run([&](Rank& rank) -> sim::Task<void> {
    Bytes buf;
    if (rank.id() == 0) {
      Writer w;
      w.u64(0xfeedfaceULL);
      buf = w.take();
    }
    co_await rank.bcast(0, buf);
    Reader r(buf);
    ok[static_cast<size_t>(rank.id())] = r.u64() == 0xfeedfaceULL;
  });
  for (int v : ok) EXPECT_EQ(v, 1);
}

TEST_P(MsgCollectives, AllreduceSumsEverywhere) {
  const int P = GetParam();
  World world(opts(P));
  std::vector<std::vector<int64_t>> results(static_cast<size_t>(P));
  world.run([&](Rank& rank) -> sim::Task<void> {
    std::vector<int64_t> v{rank.id() + 1, 10 * (rank.id() + 1)};
    co_await rank.allreduce(v);
    results[static_cast<size_t>(rank.id())] = v;
  });
  int64_t expect0 = 0, expect1 = 0;
  for (int i = 1; i <= P; ++i) {
    expect0 += i;
    expect1 += 10 * i;
  }
  for (const auto& v : results) {
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], expect0);
    EXPECT_EQ(v[1], expect1);
  }
}

TEST_P(MsgCollectives, ReduceOnlyAtRoot) {
  const int P = GetParam();
  World world(opts(P));
  std::vector<int64_t> root_result;
  world.run([&](Rank& rank) -> sim::Task<void> {
    std::vector<int64_t> v{1};
    co_await rank.reduce(0, v);
    if (rank.id() == 0) root_result = v;
  });
  ASSERT_EQ(root_result.size(), 1u);
  EXPECT_EQ(root_result[0], P);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsgCollectives, ::testing::Values(1, 2, 3, 8),
                         [](const auto& info) {
                           return std::to_string(info.param) + "p";
                         });

TEST(Msg, DeadlockDetected) {
  World world(opts(2));
  EXPECT_THROW(world.run([](Rank& rank) -> sim::Task<void> {
    if (rank.id() == 0) (void)co_await rank.recv(1, 99);  // never sent
  }),
               Error);
}

}  // namespace
}  // namespace vodsm::msg
