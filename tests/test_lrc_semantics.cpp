// Focused LRC_d semantic tests: happens-before ordering of fetched diffs,
// multi-writer (false sharing) merges, lock manager behaviour, barrier
// consistency and interval bookkeeping.
#include <gtest/gtest.h>

#include "vopp/cluster.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

vopp::ClusterOptions lrc(int nprocs) {
  vopp::ClusterOptions o;
  o.protocol = Protocol::kLrcDiff;
  o.nprocs = nprocs;
  return o;
}

// Regression for the happens-before bug: a counter passed through a long
// lock chain across many nodes, then read cold by a node that must apply
// one diff per predecessor in the right order. Absolute-value diffs applied
// out of order would lose updates.
TEST(LrcSemantics, DiffChainAppliesInHappensBeforeOrder) {
  constexpr int kProcs = 8;
  constexpr int kRounds = 12;
  vopp::Cluster cluster(lrc(kProcs));
  size_t off = cluster.allocShared(8);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      co_await node.acquireLock(1);
      co_await node.touchWrite(off, 8);
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) += 1;
      co_await node.releaseLock(1);
    }
    co_await node.barrier();
    // Everyone reads cold: must merge the whole chain correctly.
    co_await node.touchRead(off, 8);
    int64_t got =
        *reinterpret_cast<const int64_t*>(node.memView(off, 8).data());
    if (got != int64_t{kProcs} * kRounds) throw Error("lost update in chain");
    co_await node.barrier();
  });
  SUCCEED();
}

// Two nodes write different halves of the same page concurrently (classic
// false sharing). After the barrier both halves must be visible everywhere
// — the multiple-writer merge through twins and diffs.
TEST(LrcSemantics, FalseSharingMergesConcurrentWriters) {
  constexpr int kProcs = 4;
  vopp::Cluster cluster(lrc(kProcs));
  size_t off = cluster.allocShared(kProcs * 64);  // one page, 4 slots
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t mine = off + static_cast<size_t>(node.id()) * 64;
    for (int r = 1; r <= 5; ++r) {
      co_await node.touchWrite(mine, 64);
      auto* p = reinterpret_cast<int64_t*>(node.mem(mine, 64).data());
      for (int k = 0; k < 8; ++k) p[k] = node.id() * 1000 + r;
      co_await node.barrier();
      // Every slot of every node must show this round's value.
      co_await node.touchRead(off, kProcs * 64);
      for (int q = 0; q < kProcs; ++q) {
        auto* s = reinterpret_cast<const int64_t*>(
            node.memView(off + static_cast<size_t>(q) * 64, 64).data());
        for (int k = 0; k < 8; ++k)
          if (s[k] != q * 1000 + r) throw Error("false-sharing merge lost");
      }
      co_await node.barrier();
    }
  });
  SUCCEED();
}

// A node that writes a page under one lock while receiving notices for the
// same page (from writers under another lock) must keep its own uncommitted
// changes through the invalidation (twin survives, fault merges under it).
TEST(LrcSemantics, InvalidationPreservesLocalUncommittedWrites) {
  vopp::Cluster cluster(lrc(2));
  size_t off = cluster.allocShared(128);  // two 64-byte slots, one page
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    if (node.id() == 0) {
      // Write slot 0 without synchronization, then acquire the lock that
      // node 1 used for slot 1: the grant invalidates our dirty page.
      co_await node.touchWrite(off, 64);
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) = 111;
      node.charge(sim::msec(5));  // let node 1 finish its critical section
      co_await node.acquireLock(7);
      co_await node.touchRead(off + 64, 8);
      int64_t theirs = *reinterpret_cast<const int64_t*>(
          node.memView(off + 64, 8).data());
      int64_t ours =
          *reinterpret_cast<const int64_t*>(node.memView(off, 8).data());
      if (theirs != 222) throw Error("missed the other writer's update");
      if (ours != 111) throw Error("lost own uncommitted write");
      co_await node.releaseLock(7);
    } else {
      co_await node.acquireLock(7);
      co_await node.touchWrite(off + 64, 8);
      *reinterpret_cast<int64_t*>(node.mem(off + 64, 8).data()) = 222;
      co_await node.releaseLock(7);
    }
    co_await node.barrier();
  });
  SUCCEED();
}

// Locks must be granted FIFO in manager arrival order under contention.
TEST(LrcSemantics, LocksAreMutuallyExclusive) {
  constexpr int kProcs = 6;
  vopp::Cluster cluster(lrc(kProcs));
  (void)cluster.allocShared(8);
  std::vector<std::pair<sim::Time, sim::Time>> holds;
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int r = 0; r < 3; ++r) {
      co_await node.acquireLock(5);
      sim::Time start = node.now();
      node.charge(sim::usec(500));
      holds.emplace_back(start, node.now());
      co_await node.releaseLock(5);
    }
    co_await node.barrier();
  });
  std::sort(holds.begin(), holds.end());
  for (size_t i = 1; i < holds.size(); ++i)
    EXPECT_GE(holds[i].first, holds[i - 1].second);
  EXPECT_EQ(holds.size(), static_cast<size_t>(kProcs) * 3);
}

// Distinct locks map to distinct managers and do not serialize each other.
TEST(LrcSemantics, IndependentLocksProceedInParallel) {
  constexpr int kProcs = 4;
  vopp::Cluster cluster(lrc(kProcs));
  (void)cluster.allocShared(8);
  std::vector<sim::Time> finish(kProcs);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    // Each node hammers its own lock id.
    for (int r = 0; r < 10; ++r) {
      co_await node.acquireLock(static_cast<dsm::LockId>(100 + node.id()));
      node.charge(sim::msec(1));
      co_await node.releaseLock(static_cast<dsm::LockId>(100 + node.id()));
    }
    finish[static_cast<size_t>(node.id())] = node.now();
    co_await node.barrier();
  });
  // If the locks serialized, the last node would finish ~4x later.
  sim::Time fastest = *std::min_element(finish.begin(), finish.end());
  sim::Time slowest = *std::max_element(finish.begin(), finish.end());
  EXPECT_LT(slowest, 2 * fastest);
}

// Barrier statistics: episodes counted once (not per node), acquires
// counted per call.
TEST(LrcSemantics, StatisticsCounting) {
  constexpr int kProcs = 3;
  vopp::Cluster cluster(lrc(kProcs));
  size_t off = cluster.allocShared(8);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int r = 0; r < 4; ++r) {
      co_await node.acquireLock(2);
      co_await node.touchWrite(off, 8);
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) += 1;
      co_await node.releaseLock(2);
      co_await node.barrier();
    }
  });
  auto stats = cluster.dsmStats();
  EXPECT_EQ(stats.barriers, 4u);                    // episodes
  EXPECT_EQ(stats.acquires, 4u * kProcs);           // calls
  EXPECT_EQ(stats.barrier_waits, 4u * kProcs);      // per-node waits
  EXPECT_GT(stats.diffs_created, 0u);
}

// Reads of never-written pages are satisfied locally (zeros, no traffic).
TEST(LrcSemantics, ColdPagesCostNothing) {
  vopp::Cluster cluster(lrc(2));
  size_t off = cluster.allocShared(64 * 1024);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    co_await node.touchRead(off, 64 * 1024);
    auto raw = node.memView(off, 64 * 1024);
    for (std::byte b : raw)
      if (b != std::byte{0}) throw Error("cold page not zeroed");
    co_await node.barrier();
  });
  EXPECT_EQ(cluster.dsmStats().diff_requests, 0u);
}

}  // namespace
}  // namespace vodsm
