// Unit tests for the bench-layer analysis tools:
//
//  * bench/fit_model.hpp — the least-squares fitter behind fit_scaling must
//    recover a known T(p) = c * p^a * log2(p)^b exactly from synthetic
//    samples, fall back to b = 0 with two points or a singular system, and
//    report failure (ok = false) when even the fallback is singular.
//  * bench/diff_compare.hpp — the bench_diff regression gate must compare
//    simulated fields exactly while stripping the host-shape keys ("jobs",
//    "sim_threads", and the "host" metadata object), so a baseline written
//    before the host record existed still gates a current file that has it.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/diff_compare.hpp"
#include "bench/fit_model.hpp"
#include "support/json.hpp"

namespace vodsm {
namespace {

using support::Json;

// --- fit_model ----------------------------------------------------------

std::vector<std::pair<int, double>> sampleModel(double c, double a, double b,
                                                const std::vector<int>& ps) {
  std::vector<std::pair<int, double>> pts;
  for (int p : ps)
    pts.emplace_back(p, c * std::pow(p, a) * std::pow(std::log2(p), b));
  return pts;
}

TEST(FitModel, RecoversSyntheticModelExactly) {
  // The paper-table sweep's processor counts; the model is noise-free, so
  // the normal equations must reproduce it to numerical precision.
  const double c = 0.5, a = -0.8, b = 1.2;
  bench::fit::Fit fit =
      bench::fit::fitSeries(sampleModel(c, a, b, {2, 4, 8, 16, 32}));
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 5);
  EXPECT_NEAR(fit.c, c, 1e-9);
  EXPECT_NEAR(fit.a, a, 1e-9);
  EXPECT_NEAR(fit.b, b, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.eval(64), c * std::pow(64, a) * std::pow(6.0, b), 1e-9);
}

TEST(FitModel, RecoversPurePowerLaw) {
  bench::fit::Fit fit =
      bench::fit::fitSeries(sampleModel(2.0, -1.0, 0.0, {2, 4, 8, 16}));
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.c, 2.0, 1e-9);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
  EXPECT_NEAR(fit.b, 0.0, 1e-9);
}

TEST(FitModel, TwoPointsFallBackToPowerLaw) {
  // Two samples cannot identify the log2 exponent: expect b = 0 and the
  // power law through both points, here T(p) = 1 * p^-1.
  bench::fit::Fit fit = bench::fit::fitSeries({{2, 0.5}, {4, 0.25}});
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 2);
  EXPECT_EQ(fit.b, 0.0);
  EXPECT_NEAR(fit.c, 1.0, 1e-9);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
}

TEST(FitModel, DuplicateProcsMakeTheLogTermSingular) {
  // Three samples but only two distinct p: the 3x3 system is singular
  // (the log-log column is an affine image of the ln p column), so the fit
  // must drop b and still solve the power law.
  bench::fit::Fit fit =
      bench::fit::fitSeries({{2, 1.0}, {4, 0.5}, {4, 0.5}});
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 3);
  EXPECT_EQ(fit.b, 0.0);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
}

TEST(FitModel, SingleDistinctProcIsUnfittable) {
  // One distinct p cannot pin an exponent at all: even the 2x2 fallback is
  // singular and the fit reports failure instead of inventing numbers.
  bench::fit::Fit fit =
      bench::fit::fitSeries({{4, 1.0}, {4, 2.0}, {4, 3.0}});
  EXPECT_FALSE(fit.ok);
  bench::fit::Fit too_few = bench::fit::fitSeries({{8, 1.0}});
  EXPECT_FALSE(too_few.ok);
  EXPECT_EQ(too_few.points, 1);
}

TEST(FitModel, SolveNormalRejectsSingularSystems) {
  std::vector<double> x;
  EXPECT_TRUE(bench::fit::solveNormal({{2, 0, 2}, {0, 4, 8}}, x));
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_FALSE(bench::fit::solveNormal({{1, 2, 3}, {2, 4, 6}}, x));
}

// --- diff_compare -------------------------------------------------------

// Runs the gate's comparator with printing routed to a sink; returns the
// mismatch count.
int mismatches(const std::string& base, const std::string& cur) {
  bench::diff::Config cfg;
  bench::diff::Report rep;
  std::ostringstream sink;
  rep.out = &sink;
  bench::diff::compare(Json::parse(base), Json::parse(cur), "$", cfg, rep);
  return rep.mismatches;
}

TEST(DiffCompare, HostShapeKeysAreIgnored) {
  EXPECT_TRUE(bench::diff::isIgnoredKey("jobs"));
  EXPECT_TRUE(bench::diff::isIgnoredKey("sim_threads"));
  EXPECT_TRUE(bench::diff::isIgnoredKey("host"));
  EXPECT_FALSE(bench::diff::isIgnoredKey("sim_seconds"));
  EXPECT_FALSE(bench::diff::isIgnoredKey("messages"));
  EXPECT_TRUE(bench::diff::isHostTimingKey("host_seconds"));
  EXPECT_TRUE(bench::diff::isHostTimingKey("self_speedup_vs_serial"));
  EXPECT_FALSE(bench::diff::isHostTimingKey("sim_seconds"));
}

TEST(DiffCompare, HostMetadataMayAppearWithoutRegeneratingTheBaseline) {
  // The committed baseline predates the "host" record; a current file that
  // carries one (with any contents) must still gate clean, in both
  // directions, and differing host contents must never count as drift.
  const std::string base = R"({"suite": "t", "sim_seconds": 1.5})";
  const std::string cur =
      R"({"suite": "t", "sim_seconds": 1.5,
          "host": {"cores": 64, "jobs": 8, "compiler": "gcc 12"}})";
  EXPECT_EQ(mismatches(base, cur), 0);
  EXPECT_EQ(mismatches(cur, base), 0);
  const std::string other_host =
      R"({"suite": "t", "sim_seconds": 1.5,
          "host": {"cores": 1, "jobs": 1, "compiler": "clang 17"}})";
  EXPECT_EQ(mismatches(cur, other_host), 0);
}

TEST(DiffCompare, ThreadCountsNeverCompare) {
  EXPECT_EQ(mismatches(R"({"jobs": 1, "sim_threads": 1, "messages": 10})",
                       R"({"jobs": 32, "sim_threads": 4, "messages": 10})"),
            0);
}

TEST(DiffCompare, SimulatedDriftStillFails) {
  EXPECT_EQ(mismatches(R"({"sim_seconds": 1.5})", R"({"sim_seconds": 1.6})"),
            1);
  // A non-ignored key appearing or disappearing is drift too.
  EXPECT_EQ(mismatches(R"({"a": 1})", R"({"a": 1, "b": 2})"), 1);
  EXPECT_EQ(mismatches(R"({"a": 1, "b": 2})", R"({"a": 1})"), 1);
}

TEST(DiffCompare, HostTimingsGetToleranceNotEquality) {
  // 20x apart but above the floor: within the default 25x tolerance.
  EXPECT_EQ(mismatches(R"({"wall_seconds": 10.0})",
                       R"({"wall_seconds": 200.0})"),
            0);
  // Beyond 25x: drift.
  EXPECT_EQ(mismatches(R"({"wall_seconds": 10.0})",
                       R"({"wall_seconds": 600.0})"),
            1);
  // Both under the 5s floor: noise, always passes.
  EXPECT_EQ(mismatches(R"({"host_seconds": 0.001})",
                       R"({"host_seconds": 4.9})"),
            0);
  // Present in only one file: not drift (run-shape dependent).
  EXPECT_EQ(mismatches(R"({"serial_wall_seconds": 9.0, "a": 1})",
                       R"({"a": 1})"),
            0);
}

}  // namespace
}  // namespace vodsm
