// Unit tests for the bench-layer analysis tools:
//
//  * bench/fit_model.hpp — the least-squares fitter behind fit_scaling must
//    recover a known T(p) = c * p^a * log2(p)^b exactly from synthetic
//    samples, fall back to b = 0 with two points or a singular system, and
//    report failure (ok = false) when even the fallback is singular.
//  * src/model — the multi-axis fitter must recover a generating model's
//    exact regressor subset from noise-free data, its leave-one-out score
//    must match hand-computed folds, the composed per-bucket models must
//    sum to the total model at EVERY axis point (including on a real traced
//    run, whose buckets provably partition p * T), and the model JSON /
//    Extra-P exports must be byte-deterministic and round-trip.
//  * bench/tables.hpp applyScreen — the analytic screen must skip exactly
//    the cells the model has demonstrably hit, and log each skip.
//  * bench/diff_compare.hpp — the bench_diff regression gate must compare
//    simulated fields exactly while stripping the host-shape keys ("jobs",
//    "sim_threads", the "host" metadata object, and the "axes" coordinate
//    record), so a baseline written before those records existed still
//    gates a current file that has them; screened cells compare only under
//    the explicit --allow-screened opt-in.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/is.hpp"
#include "bench/diff_compare.hpp"
#include "bench/fit_model.hpp"
#include "bench/tables.hpp"
#include "harness/run.hpp"
#include "model/extrap.hpp"
#include "model/fit.hpp"
#include "model/model_set.hpp"
#include "model/table_data.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "support/json.hpp"

namespace vodsm {
namespace {

using support::Json;

// --- fit_model ----------------------------------------------------------

std::vector<std::pair<int, double>> sampleModel(double c, double a, double b,
                                                const std::vector<int>& ps) {
  std::vector<std::pair<int, double>> pts;
  for (int p : ps)
    pts.emplace_back(p, c * std::pow(p, a) * std::pow(std::log2(p), b));
  return pts;
}

TEST(FitModel, RecoversSyntheticModelExactly) {
  // The paper-table sweep's processor counts; the model is noise-free, so
  // the normal equations must reproduce it to numerical precision.
  const double c = 0.5, a = -0.8, b = 1.2;
  bench::fit::Fit fit =
      bench::fit::fitSeries(sampleModel(c, a, b, {2, 4, 8, 16, 32}));
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 5);
  EXPECT_NEAR(fit.c, c, 1e-9);
  EXPECT_NEAR(fit.a, a, 1e-9);
  EXPECT_NEAR(fit.b, b, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.eval(64), c * std::pow(64, a) * std::pow(6.0, b), 1e-9);
}

TEST(FitModel, RecoversPurePowerLaw) {
  bench::fit::Fit fit =
      bench::fit::fitSeries(sampleModel(2.0, -1.0, 0.0, {2, 4, 8, 16}));
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.c, 2.0, 1e-9);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
  EXPECT_NEAR(fit.b, 0.0, 1e-9);
}

TEST(FitModel, TwoPointsFallBackToPowerLaw) {
  // Two samples cannot identify the log2 exponent: expect b = 0 and the
  // power law through both points, here T(p) = 1 * p^-1.
  bench::fit::Fit fit = bench::fit::fitSeries({{2, 0.5}, {4, 0.25}});
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 2);
  EXPECT_EQ(fit.b, 0.0);
  EXPECT_NEAR(fit.c, 1.0, 1e-9);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
}

TEST(FitModel, DuplicateProcsMakeTheLogTermSingular) {
  // Three samples but only two distinct p: the 3x3 system is singular
  // (the log-log column is an affine image of the ln p column), so the fit
  // must drop b and still solve the power law.
  bench::fit::Fit fit =
      bench::fit::fitSeries({{2, 1.0}, {4, 0.5}, {4, 0.5}});
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.points, 3);
  EXPECT_EQ(fit.b, 0.0);
  EXPECT_NEAR(fit.a, -1.0, 1e-9);
}

TEST(FitModel, SingleDistinctProcIsUnfittable) {
  // One distinct p cannot pin an exponent at all: even the 2x2 fallback is
  // singular and the fit reports failure instead of inventing numbers.
  bench::fit::Fit fit =
      bench::fit::fitSeries({{4, 1.0}, {4, 2.0}, {4, 3.0}});
  EXPECT_FALSE(fit.ok);
  bench::fit::Fit too_few = bench::fit::fitSeries({{8, 1.0}});
  EXPECT_FALSE(too_few.ok);
  EXPECT_EQ(too_few.points, 1);
}

TEST(FitModel, SolveNormalRejectsSingularSystems) {
  std::vector<double> x;
  EXPECT_TRUE(bench::fit::solveNormal({{2, 0, 2}, {0, 4, 8}}, x));
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_FALSE(bench::fit::solveNormal({{1, 2, 3}, {2, 4, 6}}, x));
}

// --- model/fit: the multi-axis fitter -----------------------------------

model::AxisPoint axisAt(int procs, double n = 1.0, double bw = 100.0,
                        double loss = 0.0) {
  model::AxisPoint x;
  x.procs = procs;
  x.n_scale = n;
  x.bw_mbps = bw;
  x.loss_pct = loss;
  return x;
}

// T(x) for a known constant + exponent vector, through the same regressor
// basis the fitter uses.
double truth(const model::AxisPoint& x, double c,
             const std::array<double, model::kRegressorCount>& e) {
  double ln = std::log(c);
  for (int r = 0; r < model::kRegressorCount; ++r)
    ln += e[r] * model::regressor(x, r);
  return std::exp(ln);
}

TEST(MultiFit, RecoversAMultiAxisModelExactly) {
  // Noise-free samples from c * p^1.3 * n^0.7 * (100/bw)^0.5 *
  // (1+100*loss)^0.25, varied on every axis: the fitter must recover the
  // generating subset — and nothing more — to numerical precision.
  const double c = 0.5;
  const std::array<double, model::kRegressorCount> e = {1.3, 0.0, 0.7, 0.5,
                                                        0.25};
  std::vector<model::FitSample> pts;
  for (int p : {2, 4, 8, 16, 32}) pts.push_back({axisAt(p), 0});
  pts.push_back({axisAt(4, 0.5), 0});
  pts.push_back({axisAt(4, 2.0), 0});
  pts.push_back({axisAt(8, 1.0, 50.0), 0});
  pts.push_back({axisAt(8, 1.0, 200.0), 0});
  pts.push_back({axisAt(16, 1.0, 100.0, 0.2), 0});
  pts.push_back({axisAt(16, 1.0, 100.0, 0.5), 0});
  for (model::FitSample& s : pts) s.value = truth(s.axes, c, e);

  const model::MultiFit fit = model::fitMulti(pts);
  ASSERT_TRUE(fit.ok);
  const uint32_t want = (1u << model::kLnP) | (1u << model::kLnN) |
                        (1u << model::kLnInvBw) | (1u << model::kLnLoss);
  EXPECT_EQ(fit.mask, want);
  EXPECT_NEAR(fit.c, c, 1e-6);
  for (int r = 0; r < model::kRegressorCount; ++r)
    EXPECT_NEAR(fit.exp[r], e[r], 1e-6) << model::kRegressorTerm[r];
  // Predicts an unseen coordinate, off-grid on every axis.
  const model::AxisPoint probe = axisAt(24, 1.5, 80.0, 0.3);
  EXPECT_NEAR(fit.eval(probe), truth(probe, c, e),
              1e-6 * truth(probe, c, e));
}

TEST(MultiFit, SelectsTheMinimalRegressorSubset) {
  // The value depends on p alone, but decoy axes vary across the samples.
  // Cross-validated selection with the fewest-terms tie-break must keep
  // only the p term — a decoy can fit the training data no better, so it
  // never survives the strict-improvement margin.
  std::vector<model::FitSample> pts = {
      {axisAt(2, 0.5), 0},
      {axisAt(4, 1.0, 50.0), 0},
      {axisAt(8, 1.0, 100.0, 0.5), 0},
      {axisAt(16), 0},
      {axisAt(32, 2.0), 0},
  };
  for (model::FitSample& s : pts)
    s.value = 3.0 * std::pow(static_cast<double>(s.axes.procs), 0.5);
  const model::MultiFit fit = model::fitMulti(pts);
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.mask, 1u << model::kLnP);
  EXPECT_NEAR(fit.c, 3.0, 1e-6);
  EXPECT_NEAR(fit.exp[model::kLnP], 0.5, 1e-6);
}

TEST(MultiFit, LoocvMatchesHandComputedFolds) {
  // Points (2,2), (4,4), (8,16) under the pure power law c * p^a:
  //   hold out (2,2):  fit on the rest gives p^2/4, predicts 1   -> 0.5
  //   hold out (4,4):  fit gives p^1.5/sqrt(2), predicts 2^2.5   -> sqrt(2)-1
  //   hold out (8,16): fit gives p, predicts 8                   -> 0.5
  // mean = (0.5 + sqrt(2)-1 + 0.5) / 3 = sqrt(2)/3.
  const std::vector<model::FitSample> pts = {
      {axisAt(2), 2.0}, {axisAt(4), 4.0}, {axisAt(8), 16.0}};
  EXPECT_NEAR(model::loocvRelErr(pts, 1u << model::kLnP),
              std::sqrt(2.0) / 3.0, 1e-12);
  // Two points cannot cross-validate a one-term model (each fold would fit
  // two coefficients to one sample): the score is reported incomputable.
  const std::vector<model::FitSample> two = {{axisAt(2), 2.0},
                                             {axisAt(4), 4.0}};
  EXPECT_LT(model::loocvRelErr(two, 1u << model::kLnP), 0);
}

// --- model/model_set: composition and cross-validation ------------------

// A synthetic (app, impl) series whose buckets follow known power laws;
// idle is structurally zero to exercise the zero-bucket path. Buckets are
// node-summed seconds, so sim_seconds = sum / p.
std::vector<model::CellSample> syntheticSeries() {
  std::vector<model::CellSample> cells;
  for (int p : {2, 4, 8, 16}) {
    model::CellSample c;
    c.id = "APP/X/" + std::to_string(p) + "p";
    c.app = std::string("APP");
    c.impl = std::string("X");
    c.axes = axisAt(p);
    c.has_breakdown = true;
    const double dp = p;
    c.breakdown = {2.0 * dp, 0.5 * dp * dp, 0.25 * dp, std::pow(dp, 1.5),
                   0.0};
    double sum = 0;
    for (double b : c.breakdown) sum += b;
    c.sim_seconds = sum / dp;
    cells.push_back(std::move(c));
  }
  return cells;
}

TEST(ModelSet, ComposedBucketsSumToTheTotalPredictionEverywhere) {
  const model::ModelSet set = model::buildModelSet(syntheticSeries(), 0);
  ASSERT_EQ(set.series.size(), 1u);
  const model::SeriesModel& m = set.series[0];
  ASSERT_TRUE(m.has_buckets);
  ASSERT_EQ(m.buckets.size(), static_cast<size_t>(model::kBucketCount));
  EXPECT_TRUE(m.buckets[4].zero);  // idle never paid
  EXPECT_EQ(m.buckets[4].eval(axisAt(8)), 0.0);
  // The composition is exact BY CONSTRUCTION at any coordinate, not just
  // the training grid — probe an off-grid point.
  const model::AxisPoint probe = axisAt(6);
  double node_sum = 0;
  for (const model::BucketModel& b : m.buckets) node_sum += b.eval(probe);
  EXPECT_DOUBLE_EQ(m.predictTotal(probe), node_sum / 6.0);
  // Noise-free power-law buckets: the composed model reproduces every
  // training cell.
  for (const model::CellEval& e : set.evals) EXPECT_LT(e.rel_err, 1e-6);
}

TEST(ModelSet, HoldoutSelectionIsDeterministicByIdOrder) {
  std::vector<model::CellSample> cells = syntheticSeries();
  // Sequential and 1-processor cells never enter a fit.
  model::CellSample seq;
  seq.id = "APP/seq/1p";
  seq.app = "APP";
  seq.impl = "seq";
  seq.axes = axisAt(1);
  seq.sim_seconds = 9.0;
  cells.push_back(seq);

  const model::ModelSet set = model::buildModelSet(cells, 3);
  EXPECT_EQ(set.evals.size(), 4u);  // the seq cell is excluded entirely
  // Id order is 16p < 2p < 4p < 8p (string sort), so with k = 3 the third
  // cell — APP/X/4p — is the one held out.
  int held = 0;
  for (const model::CellEval& e : set.evals)
    if (e.held_out) {
      ++held;
      EXPECT_EQ(e.id, "APP/X/4p");
      EXPECT_LT(e.rel_err, 1e-6);  // noise-free: predicted from the rest
    }
  EXPECT_EQ(held, 1);
  const double med = set.medianHeldOutRelErr();
  EXPECT_GE(med, 0.0);
  EXPECT_LT(med, 1e-6);
}

TEST(ModelSet, RealTracedBreakdownPartitionsAndComposes) {
  // A real traced IS run: the five aggregate buckets must partition
  // p * run_time EXACTLY (integer simulated time), and a model set built
  // from such cells must compose — bucket predictions summing to the total
  // prediction — at any coordinate.
  apps::IsParams params;
  params.n_keys = 1 << 12;
  params.max_key = (1 << 8) - 1;
  params.iterations = 3;

  std::vector<model::CellSample> cells;
  for (int procs : {2, 4}) {
    harness::RunConfig cfg;
    cfg.protocol = dsm::Protocol::kVcSd;
    cfg.nprocs = procs;
    obs::TraceRecorder rec;
    cfg.trace = &rec;
    const harness::RunResult r =
        apps::runIs(cfg, params, apps::IsVariant::kVopp).result;
    ASSERT_TRUE(r.breakdown.enabled());
    EXPECT_EQ(r.breakdown.aggregate.total(),
              static_cast<sim::Time>(procs) * r.breakdown.run_time);

    model::CellSample s;
    s.id = "IS/VC_sd/" + std::to_string(procs) + "p";
    s.app = "IS";
    s.impl = "VC_sd";
    s.axes = axisAt(procs);
    s.sim_seconds = r.seconds;
    s.has_breakdown = true;
    const obs::BucketSet& b = r.breakdown.aggregate;
    s.breakdown = {sim::toSeconds(b.compute), sim::toSeconds(b.barrier_wait),
                   sim::toSeconds(b.acquire_wait),
                   sim::toSeconds(b.fault_diff), sim::toSeconds(b.idle)};
    double sum = 0;
    for (double v : s.breakdown) sum += v;
    EXPECT_NEAR(sum, procs * s.sim_seconds, 1e-9);
    cells.push_back(std::move(s));
  }

  const model::ModelSet set = model::buildModelSet(cells, 0);
  ASSERT_EQ(set.series.size(), 1u);
  const model::SeriesModel& m = set.series[0];
  ASSERT_TRUE(m.has_buckets);
  const model::AxisPoint probe = axisAt(3);
  double node_sum = 0;
  for (const model::BucketModel& bm : m.buckets) node_sum += bm.eval(probe);
  EXPECT_DOUBLE_EQ(m.predictTotal(probe), node_sum / 3.0);
  EXPECT_FALSE(m.dominantTerm(probe).empty());
}

// --- model exports: byte determinism and round-trip ---------------------

TEST(ModelJson, ByteDeterministicAndEvalsRoundTrip) {
  const model::ModelSet set = model::buildModelSet(syntheticSeries(), 3);
  std::ostringstream a, b;
  model::writeModelJson(a, set);
  model::writeModelJson(b, set);
  EXPECT_EQ(a.str(), b.str());

  const std::vector<model::CellEval> evals =
      model::loadModelEvals(Json::parse(a.str()));
  ASSERT_EQ(evals.size(), set.evals.size());
  for (size_t i = 0; i < evals.size(); ++i) {
    EXPECT_EQ(evals[i].id, set.evals[i].id);
    EXPECT_EQ(evals[i].held_out, set.evals[i].held_out);
    EXPECT_EQ(evals[i].note, set.evals[i].note);
    // Written as %.6f: round-trips to within the printed precision.
    EXPECT_NEAR(evals[i].measured, set.evals[i].measured, 1e-6);
    EXPECT_NEAR(evals[i].predicted, set.evals[i].predicted, 1e-6);
    EXPECT_NEAR(evals[i].rel_err, set.evals[i].rel_err, 1e-6);
  }
  // Anything that is not a model document is rejected, not misread.
  EXPECT_ANY_THROW(model::loadModelEvals(Json::parse(R"({"kind": "x"})")));
}

TEST(Extrap, ExportIsByteDeterministic) {
  const std::vector<model::CellSample> cells = syntheticSeries();
  std::ostringstream a, b;
  model::writeExtrap(a, cells);
  model::writeExtrap(b, cells);
  EXPECT_EQ(a.str(), b.str());
  const std::string& text = a.str();
  EXPECT_NE(text.find("PARAMETER p"), std::string::npos);
  EXPECT_NE(text.find("REGION APP->X\n"), std::string::npos);
  EXPECT_NE(text.find("REGION APP->X->compute"), std::string::npos);
  EXPECT_NE(text.find("POINTS"), std::string::npos);
}

TEST(TableData, ParsesCellIdsWithAndWithoutVariationSuffix) {
  std::string app, impl;
  int procs = 0;
  ASSERT_TRUE(model::parseCellId("IS/LRC_d/16p/bw50", app, impl, procs));
  EXPECT_EQ(app, "IS");
  EXPECT_EQ(impl, "LRC_d");
  EXPECT_EQ(procs, 16);
  ASSERT_TRUE(model::parseCellId("SOR/VC_sd/2p", app, impl, procs));
  EXPECT_EQ(procs, 2);
  EXPECT_FALSE(model::parseCellId("not-a-cell-id", app, impl, procs));
  EXPECT_FALSE(model::parseCellId("IS/LRC_d/xp", app, impl, procs));
}

// --- bench/tables: the analytic screen ----------------------------------

TEST(ApplyScreen, SkipsOnlyDemonstratedCellsAndLogsThem) {
  // A model document with one cell inside tolerance (5%) and one outside
  // (50%); the spec also has a cell the model has never seen.
  model::ModelSet set;
  model::CellEval good;
  good.id = "IS/LRC_d/4p";
  good.measured = 1.0;
  good.predicted = 0.95;
  good.rel_err = 0.05;
  good.note = "compute: 0.95";
  model::CellEval bad;
  bad.id = "IS/LRC_d/8p";
  bad.measured = 1.0;
  bad.predicted = 1.5;
  bad.rel_err = 0.5;
  bad.note = "compute: 1.5";
  set.evals = {good, bad};
  const std::string path = ::testing::TempDir() + "vodsm_screen_model.json";
  {
    std::ofstream f(path, std::ios::binary);
    model::writeModelJson(f, set);
  }

  int simulated = 0;
  const auto real_run = [&simulated] {
    ++simulated;
    harness::RunResult r;
    r.seconds = 1.0;
    return r;
  };
  std::vector<bench::TableSpec> specs(1);
  specs[0].name = "t";
  specs[0].cells.emplace_back("IS/LRC_d/4p", real_run);
  specs[0].cells.emplace_back("IS/LRC_d/8p", real_run);
  specs[0].cells.emplace_back("IS/LRC_d/16p", real_run);

  std::ostringstream log;
  EXPECT_EQ(bench::applyScreen(specs, path, 0.10, log), 1);
  const harness::RunResult skipped = specs[0].cells[0].run();
  EXPECT_TRUE(skipped.screened);
  EXPECT_DOUBLE_EQ(skipped.seconds, 0.95);
  EXPECT_EQ(skipped.screen_note, "compute: 0.95");
  // The skip is logged with the predicted value and the model term.
  EXPECT_NE(log.str().find("screen: skip IS/LRC_d/4p"), std::string::npos);
  EXPECT_NE(log.str().find("0.950000 s"), std::string::npos);
  EXPECT_NE(log.str().find("compute: 0.95"), std::string::npos);
  // Out-of-tolerance and unknown cells still simulate.
  EXPECT_FALSE(specs[0].cells[1].run().screened);
  EXPECT_FALSE(specs[0].cells[2].run().screened);
  EXPECT_EQ(simulated, 2);

  EXPECT_ANY_THROW(
      bench::applyScreen(specs, path + ".does-not-exist", 0.10, log));
  std::remove(path.c_str());
}

// --- diff_compare -------------------------------------------------------

// Runs the gate's comparator with printing routed to a sink.
bench::diff::Report runCompare(const std::string& base,
                               const std::string& cur,
                               const bench::diff::Config& cfg) {
  bench::diff::Report rep;
  std::ostringstream sink;
  rep.out = &sink;
  bench::diff::compare(Json::parse(base), Json::parse(cur), "$", cfg, rep);
  rep.out = nullptr;  // the sink dies here; nobody prints after
  return rep;
}

// Mismatch count under the default config.
int mismatches(const std::string& base, const std::string& cur) {
  return runCompare(base, cur, bench::diff::Config{}).mismatches;
}

TEST(DiffCompare, HostShapeKeysAreIgnored) {
  EXPECT_TRUE(bench::diff::isIgnoredKey("jobs"));
  EXPECT_TRUE(bench::diff::isIgnoredKey("sim_threads"));
  EXPECT_TRUE(bench::diff::isIgnoredKey("host"));
  EXPECT_FALSE(bench::diff::isIgnoredKey("sim_seconds"));
  EXPECT_FALSE(bench::diff::isIgnoredKey("messages"));
  EXPECT_TRUE(bench::diff::isHostTimingKey("host_seconds"));
  EXPECT_TRUE(bench::diff::isHostTimingKey("self_speedup_vs_serial"));
  EXPECT_FALSE(bench::diff::isHostTimingKey("sim_seconds"));
}

TEST(DiffCompare, HostMetadataMayAppearWithoutRegeneratingTheBaseline) {
  // The committed baseline predates the "host" record; a current file that
  // carries one (with any contents) must still gate clean, in both
  // directions, and differing host contents must never count as drift.
  const std::string base = R"({"suite": "t", "sim_seconds": 1.5})";
  const std::string cur =
      R"({"suite": "t", "sim_seconds": 1.5,
          "host": {"cores": 64, "jobs": 8, "compiler": "gcc 12"}})";
  EXPECT_EQ(mismatches(base, cur), 0);
  EXPECT_EQ(mismatches(cur, base), 0);
  const std::string other_host =
      R"({"suite": "t", "sim_seconds": 1.5,
          "host": {"cores": 1, "jobs": 1, "compiler": "clang 17"}})";
  EXPECT_EQ(mismatches(cur, other_host), 0);
}

TEST(DiffCompare, ThreadCountsNeverCompare) {
  EXPECT_EQ(mismatches(R"({"jobs": 1, "sim_threads": 1, "messages": 10})",
                       R"({"jobs": 32, "sim_threads": 4, "messages": 10})"),
            0);
}

TEST(DiffCompare, SimulatedDriftStillFails) {
  EXPECT_EQ(mismatches(R"({"sim_seconds": 1.5})", R"({"sim_seconds": 1.6})"),
            1);
  // A non-ignored key appearing or disappearing is drift too.
  EXPECT_EQ(mismatches(R"({"a": 1})", R"({"a": 1, "b": 2})"), 1);
  EXPECT_EQ(mismatches(R"({"a": 1, "b": 2})", R"({"a": 1})"), 1);
}

TEST(DiffCompare, HostTimingsGetToleranceNotEquality) {
  // 20x apart but above the floor: within the default 25x tolerance.
  EXPECT_EQ(mismatches(R"({"wall_seconds": 10.0})",
                       R"({"wall_seconds": 200.0})"),
            0);
  // Beyond 25x: drift.
  EXPECT_EQ(mismatches(R"({"wall_seconds": 10.0})",
                       R"({"wall_seconds": 600.0})"),
            1);
  // Both under the 5s floor: noise, always passes.
  EXPECT_EQ(mismatches(R"({"host_seconds": 0.001})",
                       R"({"host_seconds": 4.9})"),
            0);
  // Present in only one file: not drift (run-shape dependent).
  EXPECT_EQ(mismatches(R"({"serial_wall_seconds": 9.0, "a": 1})",
                       R"({"a": 1})"),
            0);
}

TEST(DiffCompare, AxesCoordinateRecordsNeverCompare) {
  // "axes" is model_suite input (the cell's sweep coordinates), not a
  // simulated result: a baseline from before the axis sweeps must still
  // gate a current file that records them, and vice versa.
  EXPECT_TRUE(bench::diff::isIgnoredKey("axes"));
  const std::string base = R"({"id": "IS/LRC_d/16p/bw50", "sim_seconds": 2.0})";
  const std::string cur =
      R"({"id": "IS/LRC_d/16p/bw50", "sim_seconds": 2.0,
          "axes": {"procs": 16, "n_scale": 1, "bw_mbps": 50, "loss_pct": 0}})";
  EXPECT_EQ(mismatches(base, cur), 0);
  EXPECT_EQ(mismatches(cur, base), 0);
}

TEST(DiffCompare, ScreenedCellsAreDriftWithoutTheOptIn) {
  // A screened artifact must never slip through the default regression
  // gate: the screened cell carries none of the simulated fields, which
  // reads as drift unless --allow-screened was passed explicitly.
  const std::string base = R"({"cells": [{"id": "a", "sim_seconds": 1.5}]})";
  const std::string cur =
      R"({"cells": [{"id": "a", "screened": true,
                     "predicted_seconds": 1.4, "screen_note": "m"}],
          "screen": "model.json", "screened_cells": 1})";
  EXPECT_GT(mismatches(base, cur), 0);
}

TEST(DiffCompare, AllowScreenedSkipsPredictedCellsOnEitherSide) {
  bench::diff::Config cfg;
  cfg.allow_screened = true;
  const std::string measured =
      R"({"cells": [{"id": "a", "sim_seconds": 1.5},
                    {"id": "b", "sim_seconds": 2.5}]})";
  const std::string screened =
      R"({"cells": [{"id": "a", "screened": true,
                     "predicted_seconds": 1.4, "screen_note": "m"},
                    {"id": "b", "sim_seconds": 2.5}],
          "screen": "model.json", "screened_cells": 1})";
  bench::diff::Report rep = runCompare(measured, screened, cfg);
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_EQ(rep.screened_skipped, 1);
  // Symmetric: a screened BASELINE against a fresh measurement.
  rep = runCompare(screened, measured, cfg);
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_EQ(rep.screened_skipped, 1);
  // The opt-in only excuses screened cells — real drift in a cell that WAS
  // simulated still fails.
  const std::string drifted =
      R"({"cells": [{"id": "a", "screened": true,
                     "predicted_seconds": 1.4, "screen_note": "m"},
                    {"id": "b", "sim_seconds": 9.9}],
          "screen": "model.json", "screened_cells": 1})";
  EXPECT_EQ(runCompare(measured, drifted, cfg).mismatches, 1);
}

}  // namespace
}  // namespace vodsm
