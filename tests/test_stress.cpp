// Randomized stress tests: generated VOPP workloads whose results are
// order-independent (commutative updates), validated against analytically
// computed expectations, swept across protocols, processor counts and
// seeds. This is the suite most likely to shake out protocol races.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "harness/parallel_runner.hpp"
#include "sim/rng.hpp"
#include "vopp/cluster.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

struct StressCase {
  Protocol proto;
  int nprocs;
  uint64_t seed;
};

std::string stressName(const ::testing::TestParamInfo<StressCase>& info) {
  return dsm::protocolName(info.param.proto) + "_" +
         std::to_string(info.param.nprocs) + "p_s" +
         std::to_string(info.param.seed);
}

// Random ledger: K counter views; every node performs R rounds, each round
// adding deterministic pseudo-random amounts to a pseudo-random subset of
// views under exclusive acquires, with a barrier per round. Addition
// commutes, so the expected totals are independent of acquisition order.
constexpr int kLedgerViews = 7;
constexpr int kLedgerCounters = 96;  // crosses a page boundary

struct LedgerOutcome {
  std::vector<std::vector<int64_t>> totals;    // observed, per view
  std::vector<std::vector<int64_t>> expected;  // analytic, per view
};

// Whole ledger workload as a pure function of its case: builds its own
// cluster (engine, network, runtimes), so concurrent invocations share
// nothing — the shape the parallel experiment runner requires.
LedgerOutcome runLedger(const StressCase& param) {
  constexpr int kViews = kLedgerViews;
  constexpr int kRounds = 6;
  constexpr int kCountersPerView = kLedgerCounters;

  vopp::Cluster cluster({.nprocs = param.nprocs,
                         .protocol = param.proto,
                         .seed = param.seed});
  std::vector<dsm::ViewId> views;
  for (int v = 0; v < kViews; ++v)
    views.push_back(cluster.defineView(kCountersPerView * sizeof(int64_t)));

  // Expected totals, computed from the same deterministic op stream.
  std::vector<std::vector<int64_t>> expect(
      kViews, std::vector<int64_t>(kCountersPerView, 0));
  auto opsOf = [&](int pid, int round) {
    // (view, counter, amount) triples for this node and round.
    std::vector<std::tuple<int, int, int64_t>> ops;
    sim::Rng rng(param.seed ^ (static_cast<uint64_t>(pid) << 16 ^
                               static_cast<uint64_t>(round)));
    int n = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i)
      ops.emplace_back(static_cast<int>(rng.below(kViews)),
                       static_cast<int>(rng.below(kCountersPerView)),
                       static_cast<int64_t>(rng.below(1000)) - 500);
    return ops;
  };
  for (int pid = 0; pid < param.nprocs; ++pid)
    for (int r = 0; r < kRounds; ++r)
      for (auto [v, c, amt] : opsOf(pid, r))
        expect[static_cast<size_t>(v)][static_cast<size_t>(c)] += amt;

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      // Group this round's ops by view so each view is acquired once
      // (acquire_view cannot nest).
      std::map<int, std::vector<std::pair<int, int64_t>>> by_view;
      for (auto [v, c, amt] : opsOf(node.id(), r))
        by_view[v].emplace_back(c, amt);
      for (auto& [v, edits] : by_view) {
        dsm::ViewId view = views[static_cast<size_t>(v)];
        co_await node.acquireView(view);
        size_t off = node.cluster().viewOffset(view);
        for (auto [c, amt] : edits) {
          size_t coff = off + static_cast<size_t>(c) * 8;
          co_await node.touchWrite(coff, 8);
          *reinterpret_cast<int64_t*>(node.mem(coff, 8).data()) += amt;
        }
        co_await node.releaseView(view);
      }
      co_await node.barrier();
    }
    // Node 0 pulls everything for validation.
    if (node.id() == 0) co_await node.mergeViews();
    co_await node.barrier();
  });

  LedgerOutcome out;
  out.expected = expect;
  for (int v = 0; v < kViews; ++v) {
    size_t off = cluster.viewOffset(views[static_cast<size_t>(v)]);
    auto raw = cluster.memoryOf(0, off, kCountersPerView * 8);
    std::vector<int64_t> got(kCountersPerView);
    std::memcpy(got.data(), raw.data(), raw.size());
    out.totals.push_back(std::move(got));
  }
  return out;
}

class LedgerStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(LedgerStress, TotalsMatchExpectation) {
  LedgerOutcome out = runLedger(GetParam());
  for (int v = 0; v < kLedgerViews; ++v)
    EXPECT_EQ(out.totals[static_cast<size_t>(v)],
              out.expected[static_cast<size_t>(v)])
        << "view " << v;
}

// Mixed readers and writers: writers bump a generation counter; readers
// assert they never observe torn or stale-beyond-acquire state (the
// generation and its replicated copy in the same view always agree).
class ConsistencyStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ConsistencyStress, ReadersNeverSeeTornState) {
  const auto& param = GetParam();
  constexpr int kRounds = 12;
  constexpr size_t kBytes = 2 * 4096 + 128;  // three pages

  vopp::Cluster cluster({.nprocs = param.nprocs,
                         .protocol = param.proto,
                         .seed = param.seed});
  dsm::ViewId v = cluster.defineView(kBytes);

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(v);
    sim::Rng rng(param.seed ^ static_cast<uint64_t>(node.id()));
    for (int r = 0; r < kRounds; ++r) {
      if (rng.chance(0.5)) {
        co_await node.acquireView(v);
        co_await node.touchWrite(off, kBytes);
        // The generation is written at the start, middle and end of the
        // view; a reader that ever sees disagreement caught a violation of
        // view atomicity.
        auto gen = reinterpret_cast<int64_t*>(node.mem(off, 8).data());
        int64_t next = *gen + 1;
        *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) = next;
        *reinterpret_cast<int64_t*>(node.mem(off + kBytes / 2, 8).data()) =
            next;
        *reinterpret_cast<int64_t*>(node.mem(off + kBytes - 8, 8).data()) =
            next;
        co_await node.releaseView(v);
      } else {
        co_await node.acquireRview(v);
        co_await node.touchRead(off, kBytes);
        int64_t a =
            *reinterpret_cast<const int64_t*>(node.memView(off, 8).data());
        int64_t b = *reinterpret_cast<const int64_t*>(
            node.memView(off + kBytes / 2, 8).data());
        int64_t c = *reinterpret_cast<const int64_t*>(
            node.memView(off + kBytes - 8, 8).data());
        if (a != b || b != c) throw Error("torn view state observed");
        co_await node.releaseRview(v);
      }
      co_await node.barrier();
    }
  });
  SUCCEED();
}

const StressCase kCases[] = {
    {Protocol::kLrcDiff, 3, 1}, {Protocol::kLrcDiff, 8, 2},
    {Protocol::kVcDiff, 3, 1},  {Protocol::kVcDiff, 8, 2},
    {Protocol::kVcDiff, 16, 3}, {Protocol::kVcSd, 3, 1},
    {Protocol::kVcSd, 8, 2},    {Protocol::kVcSd, 16, 3},
    {Protocol::kVcSd, 5, 4},    {Protocol::kVcDiff, 5, 4},
};

INSTANTIATE_TEST_SUITE_P(Sweep, LedgerStress, ::testing::ValuesIn(kCases),
                         stressName);
INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyStress, ::testing::ValuesIn(kCases),
                         stressName);

// The same sweep through the parallel experiment runner: all cases execute
// concurrently across host threads (each owns its own cluster), and every
// outcome must match both the analytic expectation and a serial rerun —
// the end-to-end proof that simulation results are independent of host
// scheduling.
TEST(ParallelLedgerSweep, MatchesExpectationAndSerialRun) {
  std::vector<std::function<LedgerOutcome()>> tasks;
  for (const StressCase& c : kCases)
    tasks.push_back([c] { return runLedger(c); });

  auto parallel = harness::runAll(tasks, /*jobs=*/0);  // env/core default
  auto serial = harness::runAll(tasks, /*jobs=*/1);

  ASSERT_EQ(parallel.size(), std::size(kCases));
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].totals, parallel[i].expected)
        << dsm::protocolName(kCases[i].proto) << " " << kCases[i].nprocs
        << "p seed " << kCases[i].seed;
    EXPECT_EQ(parallel[i].totals, serial[i].totals)
        << "parallel vs serial divergence in case " << i;
  }
}

// Lossy-network stress: the same ledger workload must stay correct when
// the wire drops 2% of frames (exercising retransmission paths end to end).
class LossyStress : public ::testing::TestWithParam<Protocol> {};

TEST_P(LossyStress, LedgerSurvivesFrameLoss) {
  vopp::ClusterOptions o;
  o.nprocs = 4;
  o.protocol = GetParam();
  o.net.random_loss = 0.02;
  o.net.rto = sim::msec(20);  // keep simulated time bounded
  vopp::Cluster cluster(o);
  dsm::ViewId v = cluster.defineView(sizeof(int64_t));
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(v);
    for (int r = 0; r < 10; ++r) {
      co_await node.acquireView(v);
      co_await node.touchWrite(off, 8);
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) += 1;
      co_await node.releaseView(v);
    }
    co_await node.barrier();
    if (node.id() == 0) {
      co_await node.acquireRview(v);
      co_await node.touchRead(off, 8);
      co_await node.releaseRview(v);
    }
    co_await node.barrier();
  });
  auto raw = cluster.memoryOf(0, cluster.viewOffset(v), 8);
  int64_t got;
  std::memcpy(&got, raw.data(), 8);
  EXPECT_EQ(got, 40);
  EXPECT_GT(cluster.netStats().retransmissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, LossyStress,
                         ::testing::Values(Protocol::kLrcDiff,
                                           Protocol::kVcDiff,
                                           Protocol::kVcSd),
                         [](const auto& info) {
                           return dsm::protocolName(info.param);
                         });

}  // namespace
}  // namespace vodsm
