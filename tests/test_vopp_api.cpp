// VOPP programming-model contract tests: misuse detection, Rview
// concurrency, determinism, merge_views, per-protocol invariants.
#include <gtest/gtest.h>

#include "vopp/cluster.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

vopp::ClusterOptions opts(Protocol proto, int nprocs, uint64_t seed = 42) {
  vopp::ClusterOptions o;
  o.protocol = proto;
  o.nprocs = nprocs;
  o.seed = seed;
  return o;
}

template <typename Body>
void expectVoppError(Protocol proto, const std::string& needle, Body body) {
  vopp::Cluster cluster(opts(proto, 2));
  dsm::ViewId v1 = cluster.defineView(64);
  dsm::ViewId v2 = cluster.defineView(64);
  try {
    cluster.run([&](vopp::Node& node) -> sim::Task<void> {
      if (node.id() == 0) co_await body(node, v1, v2);
      co_return;
    });
    FAIL() << "expected Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual: " << e.what();
  }
}

class VcApiTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(VcApiTest, NestedAcquireViewRejected) {
  expectVoppError(GetParam(), "nested",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId b) -> sim::Task<void> {
                    co_await n.acquireView(a);
                    co_await n.acquireView(b);
                  });
}

TEST_P(VcApiTest, ReleaseWithoutAcquireRejected) {
  expectVoppError(GetParam(), "not held",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.releaseView(a);
                  });
}

TEST_P(VcApiTest, ReleaseRviewWithoutAcquireRejected) {
  expectVoppError(GetParam(), "not read-held",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.releaseRview(a);
                  });
}

TEST_P(VcApiTest, WriteWithoutViewRejected) {
  expectVoppError(GetParam(), "without",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    size_t off = n.cluster().viewOffset(a);
                    co_await n.touchWrite(off, 8);
                  });
}

TEST_P(VcApiTest, WriteUnderRviewRejected) {
  expectVoppError(GetParam(), "without write-acquiring",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.acquireRview(a);
                    size_t off = n.cluster().viewOffset(a);
                    co_await n.touchWrite(off, 8);
                  });
}

TEST_P(VcApiTest, WriteToOtherViewRejected) {
  expectVoppError(GetParam(), "without write-acquiring",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId b) -> sim::Task<void> {
                    co_await n.acquireView(a);
                    size_t off = n.cluster().viewOffset(b);
                    co_await n.touchWrite(off, 8);
                  });
}

TEST_P(VcApiTest, BarrierWhileHoldingViewRejected) {
  expectVoppError(GetParam(), "barrier while holding",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.acquireView(a);
                    co_await n.barrier();
                  });
}

TEST_P(VcApiTest, RviewWhileWriteHoldingSameViewRejected) {
  expectVoppError(GetParam(), "while write-holding",
                  [](vopp::Node& n, dsm::ViewId a,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.acquireView(a);
                    co_await n.acquireRview(a);
                  });
}

TEST_P(VcApiTest, LockPrimitivesRejected) {
  expectVoppError(GetParam(), "lock primitives",
                  [](vopp::Node& n, dsm::ViewId,
                     dsm::ViewId) -> sim::Task<void> {
                    co_await n.acquireLock(0);
                  });
}

// Rview holders must actually overlap in time (reader concurrency).
TEST_P(VcApiTest, RviewsOverlapInTime) {
  vopp::Cluster cluster(opts(GetParam(), 4));
  dsm::ViewId v = cluster.defineView(4096);
  std::vector<sim::Time> hold_start(4), hold_end(4);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    co_await node.barrier();
    co_await node.acquireRview(v);
    hold_start[static_cast<size_t>(node.id())] = node.now();
    node.charge(sim::msec(10));  // hold the Rview for a long time
    hold_end[static_cast<size_t>(node.id())] = node.now();
    co_await node.releaseRview(v);
    co_await node.barrier();
  });
  // All four hold intervals of ~10ms must overlap pairwise: end-to-end the
  // program takes ~10ms, not ~40ms.
  sim::Time max_start = *std::max_element(hold_start.begin(), hold_start.end());
  sim::Time min_end = *std::min_element(hold_end.begin(), hold_end.end());
  EXPECT_LT(max_start, min_end) << "readers were serialized";
}

// Writers exclude each other: exclusive hold intervals must not overlap.
TEST_P(VcApiTest, WritersAreSerialized) {
  vopp::Cluster cluster(opts(GetParam(), 4));
  dsm::ViewId v = cluster.defineView(4096);
  std::vector<std::pair<sim::Time, sim::Time>> holds;
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    co_await node.acquireView(v);
    sim::Time start = node.now();
    node.charge(sim::msec(1));
    holds.emplace_back(start, node.now());
    co_await node.releaseView(v);
    co_await node.barrier();
  });
  std::sort(holds.begin(), holds.end());
  for (size_t i = 1; i < holds.size(); ++i)
    EXPECT_GE(holds[i].first, holds[i - 1].second) << "writer overlap";
}

TEST_P(VcApiTest, MergeViewsBringsEverythingUpToDate) {
  vopp::Cluster cluster(opts(GetParam(), 3));
  std::vector<dsm::ViewId> views;
  for (int i = 0; i < 3; ++i) views.push_back(cluster.defineView(256));
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    dsm::ViewId mine = views[static_cast<size_t>(node.id())];
    co_await node.acquireView(mine);
    size_t off = node.cluster().viewOffset(mine);
    co_await node.touchWrite(off, 8);
    *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) = node.id() + 100;
    co_await node.releaseView(mine);
    co_await node.barrier();
    co_await node.mergeViews();
    // After merge_views every view's content is locally visible.
    for (int i = 0; i < 3; ++i) {
      size_t o = node.cluster().viewOffset(views[static_cast<size_t>(i)]);
      int64_t got =
          *reinterpret_cast<const int64_t*>(node.memView(o, 8).data());
      if (got != i + 100) throw Error("merge_views left stale data");
    }
    co_await node.barrier();
  });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Protocols, VcApiTest,
                         ::testing::Values(Protocol::kVcDiff, Protocol::kVcSd),
                         [](const auto& info) {
                           return dsm::protocolName(info.param);
                         });

// Cross-cutting invariants.
TEST(ClusterApi, RunTwiceRejected) {
  vopp::Cluster cluster(opts(Protocol::kVcSd, 2));
  cluster.defineView(8);
  auto noop = [](vopp::Node& node) -> sim::Task<void> {
    co_await node.barrier();
  };
  cluster.run(noop);
  EXPECT_THROW(cluster.run(noop), Error);
}

TEST(ClusterApi, DefineViewAfterRunRejected) {
  vopp::Cluster cluster(opts(Protocol::kVcSd, 2));
  cluster.defineView(8);
  cluster.run([](vopp::Node& node) -> sim::Task<void> {
    co_await node.barrier();
  });
  EXPECT_THROW(cluster.defineView(8), Error);
}

TEST(ClusterApi, DeadlockIsDetected) {
  vopp::Cluster cluster(opts(Protocol::kVcSd, 2));
  cluster.defineView(8);
  EXPECT_THROW(
      cluster.run([](vopp::Node& node) -> sim::Task<void> {
        // Node 1 never arrives at node 0's barrier.
        if (node.id() == 0) co_await node.barrier();
      }),
      Error);
}

TEST(ClusterApi, VcSdNeverIssuesDiffRequests) {
  for (int procs : {2, 4, 8}) {
    vopp::Cluster cluster(opts(Protocol::kVcSd, procs));
    dsm::ViewId v = cluster.defineView(8192);
    cluster.run([&](vopp::Node& node) -> sim::Task<void> {
      for (int r = 0; r < 5; ++r) {
        co_await node.acquireView(v);
        size_t off = node.cluster().viewOffset(v);
        co_await node.touchWrite(off, 8192);
        node.mem(off, 1)[0] = static_cast<std::byte>(node.id() + r);
        co_await node.releaseView(v);
      }
      co_await node.barrier();
    });
    EXPECT_EQ(cluster.dsmStats().diff_requests, 0u) << procs << " procs";
  }
}

TEST(ClusterApi, DeterministicAcrossIdenticalRuns) {
  auto once = [](uint64_t seed) {
    vopp::Cluster cluster(opts(Protocol::kVcDiff, 4, seed));
    dsm::ViewId v = cluster.defineView(4096);
    cluster.run([&](vopp::Node& node) -> sim::Task<void> {
      for (int r = 0; r < 10; ++r) {
        co_await node.acquireView(v);
        size_t off = node.cluster().viewOffset(v);
        co_await node.touchWrite(off, 64);
        node.mem(off, 1)[0] = static_cast<std::byte>(r);
        co_await node.releaseView(v);
      }
      co_await node.barrier();
    });
    return std::tuple{cluster.finishTime(), cluster.netStats().messages,
                      cluster.dsmStats().acquires,
                      cluster.dsmStats().diff_requests};
  };
  EXPECT_EQ(once(1), once(1));
  EXPECT_EQ(once(9), once(9));
}

}  // namespace
}  // namespace vodsm
