// support/json.hpp: the minimal DOM parser behind bench/fit_scaling.
#include <gtest/gtest.h>

#include <string>

#include "support/json.hpp"

namespace vodsm {
namespace {

using support::Json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").isNull());
  EXPECT_TRUE(Json::parse("true").asBool());
  EXPECT_FALSE(Json::parse("false").asBool());
  EXPECT_DOUBLE_EQ(Json::parse("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.125").asNumber(), -0.125);
  EXPECT_DOUBLE_EQ(Json::parse("6.02e23").asNumber(), 6.02e23);
  EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\n\t")").asString(), "a\"b\\c\n\t");
  EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
  // Non-ASCII BMP codepoint -> UTF-8, and a surrogate pair.
  EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");
  EXPECT_EQ(Json::parse(R"("😀")").asString(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParsesNestedStructure) {
  // The shape fit_scaling actually reads: tables -> cells -> numbers.
  Json doc = Json::parse(R"({
    "suite": "paper_tables",
    "tables": [
      {"name": "table3_is_speedup", "cells": [
        {"id": "IS/VC_sd/8p", "sim_seconds": 0.25,
         "breakdown_seconds": {"compute": 0.1, "barrier_wait": 0.05}}
      ]}
    ]
  })");
  EXPECT_EQ(doc.at("suite").asString(), "paper_tables");
  const Json& cell = doc.at("tables").items()[0].at("cells").items()[0];
  EXPECT_EQ(cell.at("id").asString(), "IS/VC_sd/8p");
  EXPECT_DOUBLE_EQ(cell.at("sim_seconds").asNumber(), 0.25);
  EXPECT_DOUBLE_EQ(cell.at("breakdown_seconds").at("compute").asNumber(),
                   0.1);
  // Object members keep file order.
  EXPECT_EQ(cell.at("breakdown_seconds").members()[1].first, "barrier_wait");
  EXPECT_EQ(cell.find("missing"), nullptr);
  EXPECT_THROW(cell.at("missing"), Error);
}

TEST(Json, ParsesEmptyContainersAndWhitespace) {
  EXPECT_TRUE(Json::parse(" [ ] ").items().empty());
  EXPECT_TRUE(Json::parse("\n{\t}\r\n").members().empty());
  EXPECT_EQ(Json::parse("[1, [2, 3], {\"a\": [4]}]").items().size(), 3u);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1,}", "tru", "01a", "\"open",
        "\"bad\\q\"", "1 2", "[1] x", "{\"a\": }"}) {
    EXPECT_THROW(Json::parse(bad), Error) << "input: " << bad;
  }
}

TEST(Json, TypeMismatchThrows) {
  Json v = Json::parse("[1]");
  EXPECT_THROW(v.asNumber(), Error);
  EXPECT_THROW(v.asString(), Error);
  EXPECT_THROW(v.members(), Error);
  EXPECT_THROW(Json::parse("3").items(), Error);
}

}  // namespace
}  // namespace vodsm
