// Chaos suite: every app under every protocol must survive injected
// network and node faults with its results intact and its books balanced.
//
// Each cell runs one small app instance (4 processors) under one chaos
// profile and one seed, traced and metered, and asserts:
//
//  * the run terminates and its result matches the serial reference
//    bit for bit (faults may change timing, never answers);
//  * the frame books reconcile exactly: delivered + dropped equals
//    sent + duplicated, per-class drops plus ack drops equal the three
//    drop counters, and the metrics registry agrees with NetStats;
//  * the critical-path attribution still partitions the makespan to the
//    nanosecond on a faulted, traced run;
//  * rerunning the cell under the conservative parallel engine
//    (--sim-threads=4) reproduces the serial leg bit for bit — results,
//    trace events, metrics, the critical-path makespan partition, and the
//    rendered diagnosis report.
//
// The PR gate sweeps 3 profiles x 3 seeds; the nightly chaos workflow
// extends the sweep via VODSM_CHAOS_PROFILES=all / VODSM_CHAOS_SEEDS=N and
// collects failing-run traces, diagnosis JSONs, and repro lines under
// VODSM_CHAOS_ARTIFACTS (see .github/workflows/chaos.yml).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "harness/run.hpp"
#include "net/faults.hpp"
#include "obs/diagnose.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;

struct ChaosParam {
  std::string app;      // is | gauss | sor | nn
  dsm::Protocol proto;  // kLrcDiff runs the traditional variant
  std::string profile;  // chaos profile name (net::chaosProfileSpec)
  uint64_t seed;
};

std::string protoName(dsm::Protocol p) {
  switch (p) {
    case dsm::Protocol::kLrcDiff: return "lrc_d";
    case dsm::Protocol::kVcDiff: return "vc_d";
    case dsm::Protocol::kVcSd: return "vc_sd";
  }
  return "?";
}

std::string paramName(const testing::TestParamInfo<ChaosParam>& info) {
  return info.param.app + "_" + protoName(info.param.proto) + "_" +
         info.param.profile + "_s" + std::to_string(info.param.seed);
}

// Problem sizes chosen so one cell simulates in well under a second of
// host time while still crossing every protocol path a few times.
apps::IsParams chaosIs() {
  apps::IsParams p;
  p.n_keys = 1 << 10;
  p.max_key = (1 << 7) - 1;
  p.iterations = 2;
  return p;
}

apps::GaussParams chaosGauss() {
  apps::GaussParams p;
  p.n = 32;
  return p;
}

apps::SorParams chaosSor() {
  apps::SorParams p;
  p.rows = 32;
  p.cols = 32;
  p.iterations = 2;
  return p;
}

apps::NnParams chaosNn() {
  apps::NnParams p;
  p.samples = 16;
  p.epochs = 2;
  p.hidden = 8;
  return p;
}

constexpr int kChaosProcs = 4;

// The sweep axes, extendable for the nightly run without recompiling.
std::vector<std::string> sweepProfiles() {
  const char* env = std::getenv("VODSM_CHAOS_PROFILES");
  if (!env || !*env) return {"lossy", "partition", "straggler"};
  if (std::string(env) == "all") return net::chaosProfileNames();
  std::vector<std::string> out;
  std::string cur;
  for (const char* c = env;; ++c) {
    if (*c == ',' || *c == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*c == '\0') break;
    } else {
      cur.push_back(*c);
    }
  }
  return out;
}

int sweepSeeds() {
  const char* env = std::getenv("VODSM_CHAOS_SEEDS");
  if (!env || !*env) return 3;
  const int n = std::atoi(env);
  return n > 0 ? n : 3;
}

std::vector<ChaosParam> sweep() {
  const std::vector<dsm::Protocol> protos = {
      dsm::Protocol::kLrcDiff, dsm::Protocol::kVcDiff, dsm::Protocol::kVcSd};
  std::vector<ChaosParam> out;
  for (const char* app : {"is", "gauss", "sor", "nn"})
    for (dsm::Protocol proto : protos)
      for (const std::string& profile : sweepProfiles())
        for (int s = 0; s < sweepSeeds(); ++s)
          out.push_back({app, proto, profile, static_cast<uint64_t>(s + 1)});
  return out;
}

class ChaosSweep : public testing::TestWithParam<ChaosParam> {
 protected:
  // On failure, drop the run's trace, its ranked diagnosis, and an exact
  // repro line where the nightly workflow can pick them up as artifacts —
  // the diagnosis is the "why was this cell slow/broken" head start for
  // whoever picks the bundle up.
  void TearDown() override {
    const char* dir = std::getenv("VODSM_CHAOS_ARTIFACTS");
    if (!HasFailure() || !dir || !*dir) return;
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();  // "Suite/cell" -> "Suite_cell"
    for (char& ch : name)
      if (ch == '/') ch = '_';
    const std::string stem = std::string(dir) + "/" + name;
    {
      std::ofstream out(stem + ".trace.json");
      obs::writeChromeTrace(out, trace_);
    }
    if (diagnosis_.enabled()) {
      std::ofstream out(stem + ".diagnosis.json");
      obs::writeDiagnosisJson(out, diagnosis_);
    }
    std::ofstream repro(stem + ".repro.txt");
    repro << "tests/test_chaos --gtest_filter=" << info->test_suite_name()
          << "." << info->name() << "\n"
          << "faults spec: " << spec_ << " (seed " << GetParam().seed
          << ", " << kChaosProcs << " procs)\n";
  }

  obs::TraceRecorder trace_;
  obs::Diagnosis diagnosis_;
  std::string spec_;
};

// The rendered diagnosis (human report + JSON) as one byte string, for
// exact cross-schedule comparison.
std::string renderDiagnosis(const obs::Diagnosis& d) {
  std::ostringstream os;
  obs::printDiagnosis(os, d, "chaos");
  obs::writeDiagnosisJson(os, d);
  return os.str();
}

TEST_P(ChaosSweep, SurvivesWithBooksBalanced) {
  const ChaosParam& param = GetParam();
  spec_ = "profile:" + param.profile;
  const net::FaultPlan plan = net::parseFaultPlan(spec_);

  // One cell, parameterized by the engine schedule; checksum assertions
  // run on every leg, so a parallel-only corruption cannot hide behind
  // the serial reference.
  auto runCell = [&](int sim_threads, obs::TraceRecorder& tr,
                     obs::MetricsRegistry& mr) {
    RunConfig c;
    c.protocol = param.proto;
    c.nprocs = kChaosProcs;
    c.seed = param.seed;
    c.sim_threads = sim_threads;
    c.faults = &plan;
    c.trace = &tr;
    c.metrics = &mr;
    c.critpath = true;
    c.diagnose = true;

    const bool traditional = param.proto == dsm::Protocol::kLrcDiff;
    RunResult r;
    if (param.app == "is") {
      apps::IsParams p = chaosIs();
      apps::IsRun run = apps::runIs(
          c, p,
          traditional ? apps::IsVariant::kTraditional : apps::IsVariant::kVopp);
      EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, c.nprocs));
      r = run.result;
    } else if (param.app == "gauss") {
      apps::GaussParams p = chaosGauss();
      apps::GaussRun run =
          apps::runGauss(c, p,
                         traditional ? apps::GaussVariant::kTraditional
                                     : apps::GaussVariant::kVopp);
      EXPECT_EQ(run.checksum, apps::gaussSerialChecksum(p));
      r = run.result;
    } else if (param.app == "sor") {
      apps::SorParams p = chaosSor();
      apps::SorRun run =
          apps::runSor(c, p,
                       traditional ? apps::SorVariant::kTraditional
                                   : apps::SorVariant::kVopp);
      EXPECT_EQ(run.checksum, apps::sorSerialChecksum(p));
      r = run.result;
    } else {
      apps::NnParams p = chaosNn();
      apps::NnRun run = apps::runNn(
          c, p,
          traditional ? apps::NnVariant::kTraditional : apps::NnVariant::kVopp);
      EXPECT_EQ(run.checksum, apps::nnSerialChecksum(p, kChaosProcs));
      r = run.result;
    }
    return r;
  };

  obs::MetricsRegistry reg;  // aggregates only; no sampler
  RunResult r = runCell(/*sim_threads=*/1, trace_, reg);
  diagnosis_ = r.diagnosis;

  // The run terminated (Engine::run drained) with positive simulated time.
  EXPECT_GT(r.seconds, 0.0);

  // The diagnoser ran over the faulted trace and produced a well-formed
  // report (its findings are the failure bundle's first lead).
  ASSERT_TRUE(r.diagnosis.enabled());
  EXPECT_EQ(r.diagnosis.nprocs, kChaosProcs);

  // Frame conservation: everything sent was delivered or accounted to
  // exactly one drop counter; switch-made duplicates enter the books too.
  const net::NetStats& s = r.net;
  const uint64_t drops = s.frames_dropped_overflow + s.frames_dropped_random +
                         s.frames_dropped_fault;
  EXPECT_EQ(s.frames_delivered + drops, s.frames_sent + s.frames_duplicated);

  // Per-class attribution reconciles with the global counters exactly.
  uint64_t class_drops = 0, class_rexmit = 0, class_msgs = 0;
  for (int k = 0; k < net::kMsgClassCount; ++k) {
    class_drops += s.kind[k].drops;
    class_rexmit += s.kind[k].retransmissions;
    class_msgs += s.kind[k].messages;
  }
  EXPECT_EQ(class_drops + s.ack_drops, drops);
  EXPECT_EQ(class_rexmit, s.retransmissions);
  EXPECT_EQ(class_msgs, s.messages);

  // The metrics registry saw the same drops the network counted.
  ASSERT_TRUE(r.metrics.enabled());
  EXPECT_EQ(r.metrics.totalFinal(obs::Metric::kFrameDrops),
            static_cast<int64_t>(drops));
  // Nothing left in flight once the run drained.
  EXPECT_EQ(r.metrics.totalFinal(obs::Metric::kInflightBytes), 0);

  // Critical-path attribution still partitions the faulted makespan.
  ASSERT_TRUE(r.critpath.enabled());
  EXPECT_EQ(r.critpath.total(), r.critpath.makespan);

  // Profile-specific sanity, only where firing is deterministic: the
  // partition window overlaps every run; probabilistic profiles (flaky's
  // 2% dup rate, say) may legitimately draw nothing on a tiny run.
  if (param.profile == "partition") {
    EXPECT_GT(s.frames_dropped_fault, 0u) << "partition window never hit";
  }

  // Parallel leg: the same cell under the conservative parallel engine.
  // Faulted runs are the adversarial case for the window schedule —
  // retransmission timers, fault windows, and per-destination RNG shards
  // must all land on the exact serial order.
  obs::TraceRecorder ptrace;
  obs::MetricsRegistry preg;
  RunResult pr = runCell(/*sim_threads=*/4, ptrace, preg);
  const net::NetStats& ps = pr.net;
  EXPECT_EQ(pr.seconds, r.seconds);
  EXPECT_EQ(ps.frames_sent, s.frames_sent);
  EXPECT_EQ(ps.frames_delivered, s.frames_delivered);
  EXPECT_EQ(ps.frames_dropped_overflow, s.frames_dropped_overflow);
  EXPECT_EQ(ps.frames_dropped_random, s.frames_dropped_random);
  EXPECT_EQ(ps.frames_dropped_fault, s.frames_dropped_fault);
  EXPECT_EQ(ps.frames_duplicated, s.frames_duplicated);
  EXPECT_EQ(ps.frames_reordered, s.frames_reordered);
  EXPECT_EQ(ps.messages, s.messages);
  EXPECT_EQ(ps.acks, s.acks);
  EXPECT_EQ(ps.payload_bytes, s.payload_bytes);
  EXPECT_EQ(ps.wire_bytes, s.wire_bytes);
  EXPECT_EQ(ps.retransmissions, s.retransmissions);

  // The frame books reconcile on the parallel leg too, and the metrics
  // registry agrees with them.
  const uint64_t pdrops = ps.frames_dropped_overflow +
                          ps.frames_dropped_random + ps.frames_dropped_fault;
  EXPECT_EQ(ps.frames_delivered + pdrops,
            ps.frames_sent + ps.frames_duplicated);
  ASSERT_TRUE(pr.metrics.enabled());
  EXPECT_EQ(pr.metrics.totalFinal(obs::Metric::kFrameDrops),
            static_cast<int64_t>(pdrops));
  EXPECT_EQ(pr.metrics.totalFinal(obs::Metric::kInflightBytes), 0);

  // The critical path still partitions the same makespan.
  ASSERT_TRUE(pr.critpath.enabled());
  EXPECT_EQ(pr.critpath.total(), pr.critpath.makespan);
  EXPECT_EQ(pr.critpath.makespan, r.critpath.makespan);

  // The diagnosis renders byte-identically under the parallel schedule:
  // same findings, same ranks, same evidence strings, same JSON.
  ASSERT_TRUE(pr.diagnosis.enabled());
  EXPECT_EQ(renderDiagnosis(pr.diagnosis), renderDiagnosis(r.diagnosis));

  // And the trace is the same byte stream: every event, every timestamp.
  const auto& se = trace_.events();
  const auto& pe = ptrace.events();
  ASSERT_EQ(pe.size(), se.size());
  EXPECT_TRUE(se.empty() ||
              std::memcmp(pe.data(), se.data(),
                          se.size() * sizeof(obs::Event)) == 0);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ChaosSweep, testing::ValuesIn(sweep()),
                         paramName);

// Replaying one faulted cell with the same seeds must reproduce every
// counter exactly: chaos runs are as deterministic as clean ones.
TEST(ChaosDeterminism, FaultedRunReplaysBitIdentically) {
  auto once = [] {
    const net::FaultPlan plan = net::parseFaultPlan("profile:mixed");
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = kChaosProcs;
    c.faults = &plan;
    return apps::runIs(c, chaosIs(), apps::IsVariant::kVopp).result;
  };
  RunResult a = once(), b = once();
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.net.frames_sent, b.net.frames_sent);
  EXPECT_EQ(a.net.frames_dropped_fault, b.net.frames_dropped_fault);
  EXPECT_EQ(a.net.frames_duplicated, b.net.frames_duplicated);
  EXPECT_EQ(a.net.frames_reordered, b.net.frames_reordered);
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions);
}

// Different plan seeds over the same run seed draw different fault
// streams: `seed:` exists so the nightly sweep explores distinct chaos.
TEST(ChaosDeterminism, PlanSeedVariesTheFaultStream) {
  auto withPlanSeed = [](uint64_t ps) {
    const net::FaultPlan plan =
        net::parseFaultPlan("seed:" + std::to_string(ps) + ";profile:mixed");
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = kChaosProcs;
    c.faults = &plan;
    return apps::runIs(c, chaosIs(), apps::IsVariant::kVopp).result;
  };
  RunResult a = withPlanSeed(1), b = withPlanSeed(2);
  // Timing, not answers, may differ; with the mixed profile's rates the
  // streams are overwhelmingly unlikely to coincide.
  EXPECT_NE(a.net.frames_dropped_fault + a.net.frames_duplicated +
                a.net.frames_reordered,
            b.net.frames_dropped_fault + b.net.frames_duplicated +
                b.net.frames_reordered);
}

}  // namespace
}  // namespace vodsm
