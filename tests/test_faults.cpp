// Unit tests for deterministic fault injection (net/faults.hpp).
//
//  * The spec parser: CLI grammar, node sets, profiles, JSON plans, errors.
//  * Injector mechanics: windows, periods, budgets, partitions, stragglers.
//  * Exact retransmission accounting: surgically dropping one data frame,
//    one ack, or one reply must produce a predictable resend count and
//    still deliver exactly once.
//  * Observation never perturbs: a null plan, an empty plan, and an
//    out-of-window plan produce bit-identical runs and traces.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/is.hpp"
#include "harness/run.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "sim/task.hpp"

namespace vodsm::net {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(FaultPlan, EmptySpecIsEmpty) {
  FaultPlan p = parseFaultPlan("");
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.seed, 0u);
}

TEST(FaultPlan, CliGrammarParsesKeysAndWindows) {
  FaultPlan p =
      parseFaultPlan("loss:p=0.25,from=0,to=3,t0=0.5,t1=2.5,count=7");
  ASSERT_EQ(p.rules.size(), 1u);
  const FaultRule& r = p.rules[0];
  EXPECT_EQ(r.kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(r.p, 0.25);
  EXPECT_EQ(r.src, 0u);
  EXPECT_EQ(r.dst, 3u);
  EXPECT_EQ(r.t0, sim::msec(500));
  EXPECT_EQ(r.t1, sim::msec(2500));
  EXPECT_EQ(r.budget, 7u);
}

TEST(FaultPlan, MultiSegmentSpecAndSeed) {
  FaultPlan p = parseFaultPlan("seed:42;loss:p=0.1;degrade:bw=4,lat=0.0003");
  EXPECT_EQ(p.seed, 42u);
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.rules[0].kind, FaultKind::kLoss);
  EXPECT_EQ(p.rules[1].kind, FaultKind::kDegrade);
  EXPECT_DOUBLE_EQ(p.rules[1].factor, 4.0);
  EXPECT_EQ(p.rules[1].delay, sim::usec(300));
}

TEST(FaultPlan, NodeSetSyntax) {
  FaultPlan p = parseFaultPlan("partition:nodes=0+2-4");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].node_set, 0b11101ull);
}

TEST(FaultPlan, SlowOverNodeSetExpandsPerNode) {
  FaultPlan p = parseFaultPlan("slow:nodes=1-2,factor=3");
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.rules[0].kind, FaultKind::kSlow);
  EXPECT_EQ(p.rules[0].node, 1u);
  EXPECT_EQ(p.rules[1].node, 2u);
  EXPECT_EQ(p.rules[0].node_set, 0u);
  EXPECT_DOUBLE_EQ(p.rules[1].factor, 3.0);
}

void expectSameRule(const FaultRule& a, const FaultRule& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.t0, b.t0);
  EXPECT_EQ(a.t1, b.t1);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.duty, b.duty);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.node_set, b.node_set);
  EXPECT_DOUBLE_EQ(a.p, b.p);
  EXPECT_DOUBLE_EQ(a.factor, b.factor);
  EXPECT_EQ(a.delay, b.delay);
  EXPECT_EQ(a.budget, b.budget);
}

TEST(FaultPlan, EveryProfileExpands) {
  for (const std::string& name : chaosProfileNames()) {
    FaultPlan via_profile = parseFaultPlan("profile:" + name);
    FaultPlan direct = parseFaultPlan(chaosProfileSpec(name));
    EXPECT_FALSE(via_profile.empty()) << name;
    ASSERT_EQ(via_profile.rules.size(), direct.rules.size()) << name;
    for (size_t i = 0; i < direct.rules.size(); ++i)
      expectSameRule(via_profile.rules[i], direct.rules[i]);
  }
}

TEST(FaultPlan, JsonFileRoundTrip) {
  const std::string path = testing::TempDir() + "fault_plan.json";
  {
    std::ofstream out(path);
    out << R"({"seed": 7, "rules": [)"
        << R"({"kind": "loss", "p": 0.5, "t0": 0.001, "count": 3},)"
        << R"({"kind": "partition", "nodes": [1, 3]},)"
        << R"({"kind": "slow", "nodes": [0, 2], "factor": 2.5}]})";
  }
  FaultPlan p = parseFaultPlan("@" + path);
  EXPECT_EQ(p.seed, 7u);
  ASSERT_EQ(p.rules.size(), 4u);  // the slow set expands to two rules
  EXPECT_EQ(p.rules[0].kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(p.rules[0].p, 0.5);
  EXPECT_EQ(p.rules[0].t0, sim::msec(1));
  EXPECT_EQ(p.rules[0].budget, 3u);
  EXPECT_EQ(p.rules[1].kind, FaultKind::kPartition);
  EXPECT_EQ(p.rules[1].node_set, 0b1010ull);
  EXPECT_EQ(p.rules[2].node, 0u);
  EXPECT_EQ(p.rules[3].node, 2u);
}

TEST(FaultPlan, BareJsonArrayIsAPlan) {
  const std::string path = testing::TempDir() + "fault_rules.json";
  {
    std::ofstream out(path);
    out << R"([{"kind": "dup", "p": 0.25}])";
  }
  FaultPlan p = parseFaultPlan("@" + path);
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].kind, FaultKind::kDup);
  EXPECT_EQ(p.seed, 0u);
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW(parseFaultPlan("zap:p=1"), Error);        // unknown kind
  EXPECT_THROW(parseFaultPlan("loss:zzz=1"), Error);     // unknown key
  EXPECT_THROW(parseFaultPlan("loss:p=1.5"), Error);     // p outside [0,1]
  EXPECT_THROW(parseFaultPlan("loss:p"), Error);         // missing value
  EXPECT_THROW(parseFaultPlan("partition"), Error);      // needs nodes
  EXPECT_THROW(parseFaultPlan("slow:factor=2"), Error);  // needs node
  EXPECT_THROW(parseFaultPlan("burst:period=0.1"), Error);  // needs duty
  EXPECT_THROW(parseFaultPlan("partition:nodes=64"), Error);
  EXPECT_THROW(parseFaultPlan("profile:nope"), Error);
  EXPECT_THROW(parseFaultPlan("@/nonexistent/plan.json"), Error);
}

// ---------------------------------------------------------------------------
// Injector mechanics (onFrame queried directly).

TEST(FaultInjector, BurstBudgetDropsExactly) {
  FaultInjector inj(parseFaultPlan("burst:from=0,to=1,count=2"), 1, 2);
  EXPECT_TRUE(inj.onFrame(0, 1, 0).drop);
  EXPECT_FALSE(inj.onFrame(1, 0, 0).drop);  // reverse link untouched
  EXPECT_TRUE(inj.onFrame(0, 1, 0).drop);
  EXPECT_FALSE(inj.onFrame(0, 1, 0).drop);  // budget exhausted
  EXPECT_EQ(inj.droppedBy(0), 2u);
}

TEST(FaultInjector, WindowGatesHalfOpen) {
  FaultInjector inj(parseFaultPlan("loss:p=1,t0=0.001,t1=0.002"), 1, 2);
  EXPECT_FALSE(inj.onFrame(0, 1, sim::usec(500)).drop);
  EXPECT_TRUE(inj.onFrame(0, 1, sim::usec(1500)).drop);
  EXPECT_TRUE(inj.onFrame(0, 1, sim::msec(1)).drop);    // t0 inclusive
  EXPECT_FALSE(inj.onFrame(0, 1, sim::msec(2)).drop);   // t1 exclusive
}

TEST(FaultInjector, PeriodicDutyCycle) {
  FaultInjector inj(parseFaultPlan("burst:period=0.01,duty=0.002"), 1, 2);
  EXPECT_TRUE(inj.onFrame(0, 1, sim::usec(500)).drop);     // in first duty
  EXPECT_FALSE(inj.onFrame(0, 1, sim::msec(5)).drop);      // between bursts
  EXPECT_TRUE(inj.onFrame(0, 1, sim::usec(10500)).drop);   // next period
}

TEST(FaultInjector, PartitionDropsBoundaryCrossingsOnly) {
  FaultInjector inj(parseFaultPlan("partition:nodes=1"), 1, 3);
  EXPECT_TRUE(inj.onFrame(0, 1, 0).drop);
  EXPECT_TRUE(inj.onFrame(1, 2, 0).drop);
  EXPECT_FALSE(inj.onFrame(0, 2, 0).drop);  // both outside the set
}

TEST(FaultInjector, SlowRuleScalesOnlyItsNodeInWindow) {
  FaultInjector inj(parseFaultPlan("slow:node=1,factor=4,t0=0,t1=0.01"), 1,
                    2);
  EXPECT_EQ(inj.chargeScalerFor(0), nullptr);
  const sim::ChargeScaler* s = inj.chargeScalerFor(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->scale(1000, sim::msec(5)), 4000);
  EXPECT_EQ(s->scale(1000, sim::msec(20)), 1000);  // window over
}

TEST(FaultInjector, DegradeStacksAndReorderAddsDelay) {
  FaultInjector inj(
      parseFaultPlan("degrade:bw=2;degrade:bw=3,lat=0.0001;reorder:p=1,"
                     "delay=0.0002"),
      1, 2);
  FaultAction a = inj.onFrame(0, 1, 0);
  EXPECT_FALSE(a.drop);
  EXPECT_TRUE(a.degraded);
  EXPECT_TRUE(a.reordered);
  EXPECT_DOUBLE_EQ(a.tx_factor, 6.0);
  EXPECT_EQ(a.extra_delay, sim::usec(300));
}

// ---------------------------------------------------------------------------
// Exact retransmission accounting through the reliable transport.

struct Pair {
  sim::Engine engine;
  NetConfig cfg;
  Network net;
  Endpoint a, b;
  explicit Pair(NetConfig c = NetConfig{}, uint64_t seed = 1)
      : cfg(c), net(engine, 2, cfg, seed), a(engine, net, 0),
        b(engine, net, 1) {}
};

NetConfig fastRto() {
  NetConfig cfg;
  cfg.rto = sim::msec(50);
  return cfg;
}

TEST(FaultTransport, DroppedDataFrameIsResentExactlyOnce) {
  Pair p(fastRto());
  FaultInjector inj(parseFaultPlan("burst:from=0,to=1,count=1"), 1, 2);
  p.net.setFaults(&inj);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  p.a.post(1, 9, Bytes(100), 0);
  p.engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(p.net.stats().frames_dropped_fault, 1u);
  EXPECT_EQ(p.net.stats().retransmissions, 1u);
  EXPECT_EQ(p.net.stats().acks, 1u);
  EXPECT_EQ(p.net.stats().frames_delivered + p.net.stats().frames_dropped_fault,
            p.net.stats().frames_sent);
}

TEST(FaultTransport, DroppedAckForcesResendButDeliversOnce) {
  Pair p(fastRto());
  // The first frame b sends back to a is the ack for the post.
  FaultInjector inj(parseFaultPlan("burst:from=1,to=0,count=1"), 1, 2);
  p.net.setFaults(&inj);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  p.a.post(1, 9, Bytes(100), 0);
  p.engine.run();
  EXPECT_EQ(count, 1);  // the duplicate data frame is deduplicated
  EXPECT_EQ(p.net.stats().frames_dropped_fault, 1u);
  EXPECT_EQ(p.net.stats().retransmissions, 1u);
  EXPECT_EQ(p.net.stats().acks, 2u);  // re-acked on the duplicate
  EXPECT_EQ(p.net.stats().ack_drops, 1u);
}

TEST(FaultTransport, DroppedReplyIsServedFromReplyCache) {
  Pair p(fastRto());
  // The first frame b sends back to a is the reply itself (replies double
  // as acks for requests).
  FaultInjector inj(parseFaultPlan("burst:from=1,to=0,count=1"), 1, 2);
  p.net.setFaults(&inj);
  int served = 0;
  p.b.setHandler([&](Delivery&& d, const ReplyToken& tok) {
    served++;
    p.b.reply(tok, static_cast<uint16_t>(d.type + 1), Bytes(d.payload),
              d.arrive);
  });
  int completed = 0;
  sim::spawn([](Endpoint& ep, int& done) -> sim::Task<void> {
    auto r = co_await ep.request(1, 5, Bytes(64), 0);
    EXPECT_EQ(r.type, 6);
    done++;
  }(p.a, completed));
  p.engine.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(served, 1);  // handler never re-runs; the cache answers
  EXPECT_EQ(p.net.stats().frames_dropped_fault, 1u);
  // Two resends: the requester repeats the request, the responder replays
  // the cached reply.
  EXPECT_EQ(p.net.stats().retransmissions, 2u);
}

TEST(FaultTransport, PartitionWindowYieldsExactRetransmitCount) {
  Pair p(fastRto());
  // Node 1 unreachable for 120 ms with a 50 ms RTO: the original send and
  // the resends at 50 and 100 ms die; the resend at 150 ms gets through.
  FaultInjector inj(parseFaultPlan("partition:nodes=1,t0=0,t1=0.12"), 1, 2);
  p.net.setFaults(&inj);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  p.a.post(1, 9, Bytes(100), 0);
  p.engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(p.net.stats().frames_dropped_fault, 3u);
  EXPECT_EQ(p.net.stats().retransmissions, 3u);
  EXPECT_EQ(p.net.stats().acks, 1u);
}

TEST(FaultTransport, DuplicationConservesFramesAndDeliversOnce) {
  Pair p(fastRto());
  FaultInjector inj(parseFaultPlan("dup:p=1"), 1, 2);
  p.net.setFaults(&inj);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  for (int i = 0; i < 10; ++i) p.a.post(1, 9, Bytes(20), 0);
  p.engine.run();
  EXPECT_EQ(count, 10);
  const NetStats& s = p.net.stats();
  EXPECT_GT(s.frames_duplicated, 0u);
  EXPECT_EQ(s.frames_delivered + s.frames_dropped_overflow +
                s.frames_dropped_random + s.frames_dropped_fault,
            s.frames_sent + s.frames_duplicated);
  EXPECT_EQ(s.retransmissions, 0u);  // duplicates never trip the RTO
}

TEST(FaultTransport, ReorderStillDeliversEveryPostExactlyOnce) {
  Pair p(fastRto());
  FaultInjector inj(parseFaultPlan("reorder:p=1,delay=0.0005"), 1, 2);
  p.net.setFaults(&inj);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  for (int i = 0; i < 5; ++i) p.a.post(1, 9, Bytes(200), 0);
  p.engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_GT(p.net.stats().frames_reordered, 0u);
  EXPECT_EQ(p.net.stats().frames_delivered,
            p.net.stats().frames_sent);  // reordering never loses frames
}

// ---------------------------------------------------------------------------
// Absent means absent: a run with no plan, an empty plan, and a plan whose
// rules can never fire must be bit-identical (results and trace streams).

apps::IsParams tinyIs() {
  apps::IsParams p;
  p.n_keys = 1 << 10;
  p.max_key = (1 << 7) - 1;
  p.iterations = 2;
  return p;
}

struct TracedRun {
  harness::RunResult result;
  std::vector<obs::Event> events;
};

TracedRun runTracedIs(const FaultPlan* plan) {
  harness::RunConfig c;
  c.protocol = dsm::Protocol::kVcSd;
  c.nprocs = 4;
  c.faults = plan;
  obs::TraceRecorder rec;
  c.trace = &rec;
  harness::RunResult r =
      apps::runIs(c, tinyIs(), apps::IsVariant::kVopp).result;
  return {r, rec.events()};
}

void expectIdentical(const TracedRun& a, const TracedRun& b,
                     const std::string& what) {
  EXPECT_EQ(a.result.seconds, b.result.seconds) << what;
  EXPECT_EQ(a.result.net.frames_sent, b.result.net.frames_sent) << what;
  EXPECT_EQ(a.result.net.retransmissions, b.result.net.retransmissions)
      << what;
  EXPECT_EQ(a.result.net.frames_dropped_fault, 0u) << what;
  EXPECT_EQ(a.result.dsm.barrier_wait_total, b.result.dsm.barrier_wait_total)
      << what;
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  EXPECT_EQ(std::memcmp(a.events.data(), b.events.data(),
                        a.events.size() * sizeof(obs::Event)),
            0)
      << what;
}

TEST(FaultByteIdentity, AbsentEmptyAndInertPlansMatch) {
  TracedRun null_plan = runTracedIs(nullptr);
  FaultPlan empty;
  TracedRun empty_plan = runTracedIs(&empty);
  // Real rules whose window opens long after this ~half-second run ends:
  // the injector is installed but must neither fire nor perturb timing.
  FaultPlan inert = parseFaultPlan(
      "loss:p=1,t0=1000;dup:p=1,t0=1000;degrade:bw=9,t0=1000;"
      "slow:node=1,factor=9,t0=1000");
  TracedRun inert_plan = runTracedIs(&inert);
  expectIdentical(null_plan, empty_plan, "null vs empty plan");
  expectIdentical(null_plan, inert_plan, "null vs inert plan");
}

}  // namespace
}  // namespace vodsm::net
