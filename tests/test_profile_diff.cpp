// Persisted run profiles and the differential engine (src/obs/profile.hpp,
// src/obs/profile_diff.hpp):
//
//  * Round trip: write -> load -> write is byte-identical, so a profile can
//    live in git and be compared across commits.
//  * Purity: a profiled run's simulated results are bit-identical to an
//    unprofiled run's, for every protocol.
//  * Determinism: the profile JSON and the differential report are
//    byte-identical across engine schedules (--sim-threads) and host-thread
//    interleavings (--jobs).
//  * Exactness: on hand-crafted profiles the per-category deltas partition
//    the makespan difference to the nanosecond, and severities are the
//    calibrated fractions of that delta.
//  * Calibration on real runs: comparing 16-processor IS under LRC_d
//    against VC_sd ranks the transfer shift (diff fetch at fault time vs
//    grant-time carriage) as the top finding.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/is.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/profile_diff.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;
using support::Json;

apps::IsParams testIs() {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = (1 << 7) - 1;
  p.iterations = 2;
  return p;
}

RunResult runProfiledIs(dsm::Protocol proto, apps::IsVariant variant,
                        int nprocs, int sim_threads = 1,
                        apps::IsParams params = testIs()) {
  obs::TraceRecorder rec;
  obs::MetricsRegistry mets;
  RunConfig c;
  c.protocol = proto;
  c.nprocs = nprocs;
  c.sim_threads = sim_threads;
  c.trace = &rec;
  c.metrics = &mets;
  c.profile = true;
  return apps::runIs(c, params, variant).result;
}

std::string renderProfile(const obs::RunProfile& p) {
  std::ostringstream os;
  obs::writeRunProfileJson(os, p);
  return os.str();
}

// --- round trip ---------------------------------------------------------

TEST(RunProfile, WriteLoadWriteIsByteIdentical) {
  RunResult r = runProfiledIs(dsm::Protocol::kVcSd, apps::IsVariant::kVopp,
                              /*nprocs=*/4);
  ASSERT_TRUE(r.profile.enabled());
  const std::string first = renderProfile(r.profile);
  const obs::RunProfile loaded = obs::loadRunProfile(Json::parse(first));
  EXPECT_EQ(renderProfile(loaded), first);

  // The document carries the schema marker and the exact makespan.
  Json doc = Json::parse(first);
  EXPECT_EQ(doc.at("profile").asString(), "vodsm_run_profile");
  EXPECT_EQ(static_cast<sim::Time>(doc.at("makespan_ns").asNumber()),
            r.profile.makespan);
  EXPECT_EQ(doc.at("nprocs").asNumber(), 4);
}

TEST(RunProfile, CriticalPathCategoriesPartitionTheMakespan) {
  RunResult r = runProfiledIs(dsm::Protocol::kLrcDiff,
                              apps::IsVariant::kTraditional, /*nprocs=*/4);
  ASSERT_TRUE(r.profile.enabled());
  sim::Time sum = 0;
  for (int c = 0; c < obs::kPathCatCount; ++c) sum += r.profile.critpath[c];
  EXPECT_EQ(sum, r.profile.makespan);
}

// --- purity -------------------------------------------------------------

TEST(RunProfile, ProfiledRunMatchesUnprofiledRun) {
  for (dsm::Protocol proto : {dsm::Protocol::kLrcDiff, dsm::Protocol::kVcDiff,
                              dsm::Protocol::kVcSd}) {
    const apps::IsVariant variant = proto == dsm::Protocol::kLrcDiff
                                        ? apps::IsVariant::kTraditional
                                        : apps::IsVariant::kVopp;
    RunConfig plain_cfg;
    plain_cfg.protocol = proto;
    plain_cfg.nprocs = 4;
    RunResult plain = apps::runIs(plain_cfg, testIs(), variant).result;
    RunResult profiled = runProfiledIs(proto, variant, /*nprocs=*/4);
    EXPECT_FALSE(plain.profile.enabled());
    ASSERT_TRUE(profiled.profile.enabled());
    EXPECT_EQ(plain.seconds, profiled.seconds);
    EXPECT_EQ(plain.net.messages, profiled.net.messages);
    EXPECT_EQ(plain.net.payload_bytes, profiled.net.payload_bytes);
    EXPECT_EQ(plain.dsm.barriers, profiled.dsm.barriers);
    EXPECT_EQ(plain.dsm.acquires, profiled.dsm.acquires);
    EXPECT_EQ(plain.dsm.diff_requests, profiled.dsm.diff_requests);
  }
}

// --- determinism --------------------------------------------------------

TEST(RunProfile, ProfileIsByteIdenticalAcrossEngineSchedules) {
  RunResult serial = runProfiledIs(dsm::Protocol::kVcSd,
                                   apps::IsVariant::kVopp, /*nprocs=*/4,
                                   /*sim_threads=*/1);
  RunResult parallel = runProfiledIs(dsm::Protocol::kVcSd,
                                     apps::IsVariant::kVopp, /*nprocs=*/4,
                                     /*sim_threads=*/4);
  EXPECT_EQ(serial.seconds, parallel.seconds);
  EXPECT_EQ(renderProfile(serial.profile), renderProfile(parallel.profile));
}

TEST(RunProfile, ProfileAndReportAreByteIdenticalAcrossHostThreads) {
  const RunResult base = runProfiledIs(dsm::Protocol::kLrcDiff,
                                       apps::IsVariant::kTraditional,
                                       /*nprocs=*/4);
  const RunResult cand = runProfiledIs(dsm::Protocol::kVcSd,
                                       apps::IsVariant::kVopp, /*nprocs=*/4);
  auto renderDiff = [](const obs::RunProfile& a, const obs::RunProfile& b) {
    const obs::DiffReport rep = obs::diffProfiles(a, b);
    std::ostringstream os;
    obs::printDiffReport(os, rep, "test");
    obs::writeDiffReportJson(os, rep);
    return os.str();
  };
  const std::string reference =
      renderProfile(base.profile) + renderDiff(base.profile, cand.profile);
  std::vector<std::string> rendered(3);
  harness::ParallelRunner(3).forEach(rendered.size(), [&](size_t i) {
    const RunResult a = runProfiledIs(dsm::Protocol::kLrcDiff,
                                      apps::IsVariant::kTraditional,
                                      /*nprocs=*/4);
    const RunResult b = runProfiledIs(dsm::Protocol::kVcSd,
                                      apps::IsVariant::kVopp, /*nprocs=*/4);
    rendered[i] = renderProfile(a.profile) + renderDiff(a.profile, b.profile);
  });
  for (const std::string& r : rendered) EXPECT_EQ(r, reference);
}

// --- exactness on hand-crafted profiles ---------------------------------

// Two synthetic profiles whose critical paths partition their makespans
// exactly, differing by precisely known amounts: fault +500us and
// barrier_wait +100us (delta = +600us), plus one aligned barrier episode
// whose imbalance gap grows by 200us.
obs::RunProfile craftedA() {
  obs::RunProfile p;
  p.on = true;
  p.label = "A";
  p.nprocs = 4;
  p.makespan = 1'000'000;
  p.critpath[static_cast<int>(obs::PathCat::kCompute)] = 600'000;
  p.critpath[static_cast<int>(obs::PathCat::kFault)] = 250'000;
  p.critpath[static_cast<int>(obs::PathCat::kBarrierWait)] = 150'000;
  p.episodes_total = 1;
  obs::ProfileEpisode e;
  e.barrier = 7;
  e.episode = 0;
  e.slow_node = 2;
  e.first = 0;
  e.second = 10'000;
  e.last = 20'000;  // gap 10us
  e.release = 25'000;
  p.episodes.push_back(e);
  return p;
}

obs::RunProfile craftedB() {
  obs::RunProfile p = craftedA();
  p.label = "B";
  p.makespan = 1'600'000;
  p.critpath[static_cast<int>(obs::PathCat::kFault)] = 750'000;
  p.critpath[static_cast<int>(obs::PathCat::kBarrierWait)] = 250'000;
  p.episodes[0].slow_node = 3;
  p.episodes[0].last = 220'000;  // gap 210us: +200us vs A
  p.episodes[0].release = 230'000;
  return p;
}

TEST(DiffReport, HandCraftedDeltasAreNanosecondExact) {
  const obs::RunProfile a = craftedA();
  const obs::RunProfile b = craftedB();
  const obs::DiffReport r = obs::diffProfiles(a, b);
  ASSERT_TRUE(r.enabled());
  EXPECT_EQ(r.delta, 600'000);

  // The per-category deltas partition the makespan delta exactly.
  sim::Time sum = 0;
  for (int c = 0; c < obs::kPathCatCount; ++c)
    sum += r.cat_b[c] - r.cat_a[c];
  EXPECT_EQ(sum, r.delta);
  EXPECT_EQ(r.cat_b[static_cast<int>(obs::PathCat::kFault)] -
                r.cat_a[static_cast<int>(obs::PathCat::kFault)],
            500'000);
  EXPECT_EQ(r.cat_b[static_cast<int>(obs::PathCat::kBarrierWait)] -
                r.cat_a[static_cast<int>(obs::PathCat::kBarrierWait)],
            100'000);

  // Three findings, ranked: the fault service delta (0.95 * 500/600),
  // the episode gap growth (0.9 * 200/600), the barrier-wait symptom
  // (0.5 * 100/600).
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].cat, obs::FindingCat::kPathDelta);
  EXPECT_EQ(r.findings[0].location, "critical path: fault");
  EXPECT_DOUBLE_EQ(r.findings[0].severity, 0.95 * (500'000.0 / 600'000.0));
  EXPECT_EQ(r.findings[1].cat, obs::FindingCat::kEpisodeDelta);
  EXPECT_EQ(r.findings[1].location, "barrier 7 episode 0");
  EXPECT_EQ(r.findings[1].node, 3);
  EXPECT_DOUBLE_EQ(r.findings[1].severity, 0.9 * (200'000.0 / 600'000.0));
  EXPECT_EQ(r.findings[2].cat, obs::FindingCat::kPathDelta);
  EXPECT_EQ(r.findings[2].location, "critical path: barrier_wait");
  EXPECT_DOUBLE_EQ(r.findings[2].severity, 0.5 * (100'000.0 / 600'000.0));
  EXPECT_EQ(r.top(), &r.findings[0]);
}

TEST(DiffReport, IdenticalProfilesProduceNoFindings) {
  const obs::RunProfile a = craftedA();
  const obs::DiffReport r = obs::diffProfiles(a, a);
  EXPECT_EQ(r.delta, 0);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.top(), nullptr);
}

TEST(DiffReport, StructureMismatchIsFlagged) {
  const obs::RunProfile a = craftedA();
  obs::RunProfile b = craftedA();
  b.nprocs = 8;
  const obs::DiffReport r = obs::diffProfiles(a, b);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].cat, obs::FindingCat::kStructureDelta);
}

// --- calibration on real runs -------------------------------------------

TEST(DiffReport, LrcVsVcSdTopFindingIsTheTransferShift) {
  // The paper's central comparison at 16 processors: LRC_d fetches diffs at
  // fault time, VC_sd carries them on the grant. The differential engine
  // must name that protocol-point shift as the top finding, ahead of the
  // category/page/wire deltas it manifests as. Needs enough keys per page
  // for fault service to dominate LRC_d (at toy sizes VC_sd's extra
  // barriers win instead), so this test runs one bench-scale cell pair.
  apps::IsParams params;
  params.max_key = (1u << 13) - 1;
  params.n_keys = 1u << 20;
  params.iterations = 10;
  RunResult lrc = runProfiledIs(dsm::Protocol::kLrcDiff,
                                apps::IsVariant::kTraditional,
                                /*nprocs=*/16, /*sim_threads=*/1, params);
  RunResult vcsd = runProfiledIs(dsm::Protocol::kVcSd, apps::IsVariant::kVopp,
                                 /*nprocs=*/16, /*sim_threads=*/1, params);
  const obs::DiffReport r = obs::diffProfiles(lrc.profile, vcsd.profile);
  ASSERT_FALSE(r.findings.empty());
  std::ostringstream os;
  obs::printDiffReport(os, r, "LRC_d vs VC_sd");
  EXPECT_EQ(r.top()->cat, obs::FindingCat::kTransferShift) << os.str();
  EXPECT_LT(r.makespan_b, r.makespan_a) << os.str();
}

}  // namespace
}  // namespace vodsm
