// Integration tests of the full stack: VOPP programs running on all three
// DSM runtimes over the simulated cluster.
#include <gtest/gtest.h>

#include <numeric>

#include "vopp/cluster.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

class ProtocolTest : public ::testing::TestWithParam<Protocol> {};

// Each node adds its contribution into a shared accumulator view, one view
// section per node ("sum example" from the paper's Section 2).
TEST_P(ProtocolTest, PartitionedSum) {
  constexpr int kProcs = 4;
  constexpr int kPerNode = 1000;
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = GetParam()});
  // One accumulator view per node section plus a result view.
  std::vector<dsm::ViewId> sections;
  for (int i = 0; i < kProcs; ++i)
    sections.push_back(cluster.defineView(sizeof(int64_t)));
  dsm::ViewId result_view = cluster.defineView(sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    // Every node adds i (for its own i values) into every section,
    // exercising cross-node exclusive view access.
    for (int s = 0; s < kProcs; ++s) {
      int section = (node.id() + s) % kProcs;
      dsm::ViewId v = sections[static_cast<size_t>(section)];
      co_await node.acquireView(v);
      size_t off = node.cluster().viewOffset(v);
      co_await node.touchWrite(off, sizeof(int64_t));
      auto* p = reinterpret_cast<int64_t*>(node.mem(off, 8).data());
      for (int k = 0; k < kPerNode; ++k) *p += node.id() + 1;
      node.chargeOps(kPerNode, 20);
      co_await node.releaseView(v);
    }
    co_await node.barrier();
    if (node.id() == 0) {
      int64_t total = 0;
      for (int s = 0; s < kProcs; ++s) {
        dsm::ViewId v = sections[static_cast<size_t>(s)];
        co_await node.acquireRview(v);
        size_t off = node.cluster().viewOffset(v);
        co_await node.touchRead(off, sizeof(int64_t));
        total += *reinterpret_cast<const int64_t*>(node.memView(off, 8).data());
        co_await node.releaseRview(v);
      }
      co_await node.acquireView(result_view);
      size_t roff = node.cluster().viewOffset(result_view);
      co_await node.touchWrite(roff, sizeof(int64_t));
      *reinterpret_cast<int64_t*>(node.mem(roff, 8).data()) = total;
      co_await node.releaseView(result_view);
    }
    co_await node.barrier();
  });

  // Expected: every section accumulates sum over nodes of (id+1)*kPerNode.
  int64_t per_section = 0;
  for (int i = 0; i < kProcs; ++i) per_section += (i + 1) * kPerNode;
  size_t roff = cluster.viewOffset(result_view);
  auto raw = cluster.memoryOf(0, roff, sizeof(int64_t));
  int64_t got;
  std::memcpy(&got, raw.data(), sizeof(got));
  EXPECT_EQ(got, per_section * kProcs);
  EXPECT_GT(cluster.seconds(), 0.0);
  EXPECT_GT(cluster.dsmStats().acquires, 0u);
}

// Producer/consumer chain through a single view: strict ordering via
// repeated exclusive acquisitions must yield a linearizable counter.
TEST_P(ProtocolTest, ExclusiveCounterIsLinearizable) {
  constexpr int kProcs = 8;
  constexpr int kRounds = 25;
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = GetParam()});
  dsm::ViewId counter = cluster.defineView(sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(counter);
    for (int r = 0; r < kRounds; ++r) {
      co_await node.acquireView(counter);
      co_await node.touchWrite(off, sizeof(int64_t));
      auto* p = reinterpret_cast<int64_t*>(node.mem(off, 8).data());
      *p += 1;
      co_await node.releaseView(counter);
    }
    co_await node.barrier();
  });

  auto raw = cluster.memoryOf(0, cluster.viewOffset(counter), 8);
  // Node 0's copy may be stale (it last saw the view at its own final
  // acquisition) — so re-check via a fresh run that gathers at the end.
  (void)raw;
  SUCCEED();
}

// Same as above but with a final gather so the result is observable.
TEST_P(ProtocolTest, CounterGather) {
  constexpr int kProcs = 5;
  constexpr int kRounds = 10;
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = GetParam()});
  dsm::ViewId counter = cluster.defineView(sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(counter);
    for (int r = 0; r < kRounds; ++r) {
      co_await node.acquireView(counter);
      co_await node.touchWrite(off, sizeof(int64_t));
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) += 1;
      co_await node.releaseView(counter);
    }
    co_await node.barrier();
    if (node.id() == 0) {
      co_await node.acquireRview(counter);
      co_await node.touchRead(off, 8);
      co_await node.releaseRview(counter);
    }
    co_await node.barrier();
  });

  auto raw = cluster.memoryOf(0, cluster.viewOffset(counter), 8);
  int64_t got;
  std::memcpy(&got, raw.data(), sizeof(got));
  EXPECT_EQ(got, int64_t{kProcs} * kRounds);
}

// Concurrent Rview readers and page-crossing views.
TEST_P(ProtocolTest, RviewConcurrentReaders) {
  constexpr int kProcs = 6;
  constexpr size_t kInts = 3000;  // spans multiple pages
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = GetParam()});
  dsm::ViewId data = cluster.defineView(kInts * sizeof(int));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t off = node.cluster().viewOffset(data);
    if (node.id() == 0) {
      co_await node.acquireView(data);
      co_await node.touchWrite(off, kInts * sizeof(int));
      auto* p = reinterpret_cast<int*>(node.mem(off, kInts * 4).data());
      for (size_t i = 0; i < kInts; ++i) p[i] = static_cast<int>(i * 3);
      co_await node.releaseView(data);
    }
    co_await node.barrier();
    // All nodes read concurrently under Rviews.
    co_await node.acquireRview(data);
    co_await node.touchRead(off, kInts * sizeof(int));
    auto* p = reinterpret_cast<const int*>(node.memView(off, kInts * 4).data());
    int64_t sum = 0;
    for (size_t i = 0; i < kInts; ++i) sum += p[i];
    int64_t expect = 0;
    for (size_t i = 0; i < kInts; ++i) expect += static_cast<int64_t>(i) * 3;
    if (sum != expect) throw Error("reader observed stale data");
    co_await node.releaseRview(data);
    co_await node.barrier();
  });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolTest,
                         ::testing::Values(Protocol::kLrcDiff,
                                           Protocol::kVcDiff,
                                           Protocol::kVcSd),
                         [](const auto& info) {
                           return dsm::protocolName(info.param);
                         });

// Traditional (lock + barrier) program on LRC_d, with false sharing: many
// counters packed into the same pages, each updated by a different node.
TEST(LrcTraditional, FalseSharingCounters) {
  constexpr int kProcs = 4;
  constexpr int kRounds = 30;
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = Protocol::kLrcDiff});
  size_t base = cluster.allocShared(kProcs * sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    size_t mine = base + static_cast<size_t>(node.id()) * sizeof(int64_t);
    for (int r = 0; r < kRounds; ++r) {
      co_await node.touchWrite(mine, sizeof(int64_t));
      *reinterpret_cast<int64_t*>(node.mem(mine, 8).data()) += 1;
      co_await node.barrier();
    }
    // After the last barrier every node observes all counters.
    co_await node.touchRead(base, kProcs * sizeof(int64_t));
    auto* p =
        reinterpret_cast<const int64_t*>(node.memView(base, kProcs * 8).data());
    for (int i = 0; i < kProcs; ++i)
      if (p[i] != kRounds) throw Error("stale counter after barrier");
    co_await node.barrier();
  });
  SUCCEED();
}

// Locks must serialize a read-modify-write on LRC.
TEST(LrcTraditional, LockProtectedCounter) {
  constexpr int kProcs = 7;
  constexpr int kRounds = 15;
  vopp::Cluster cluster({.nprocs = kProcs, .protocol = Protocol::kLrcDiff});
  size_t off = cluster.allocShared(sizeof(int64_t));

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    for (int r = 0; r < kRounds; ++r) {
      co_await node.acquireLock(3);
      co_await node.touchWrite(off, 8);
      *reinterpret_cast<int64_t*>(node.mem(off, 8).data()) += 1;
      co_await node.releaseLock(3);
    }
    co_await node.barrier();
    co_await node.touchRead(off, 8);
    int64_t got =
        *reinterpret_cast<const int64_t*>(node.memView(off, 8).data());
    if (got != int64_t{kProcs} * kRounds) throw Error("lost update");
    co_await node.barrier();
  });
  SUCCEED();
}

}  // namespace
}  // namespace vodsm
