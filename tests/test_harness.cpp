// Tests for the harness records and the table formatter.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/run.hpp"
#include "support/table.hpp"

namespace vodsm {
namespace {

TEST(TextTable, ThousandsSeparators) {
  EXPECT_EQ(TextTable::withThousands(0), "0");
  EXPECT_EQ(TextTable::withThousands(999), "999");
  EXPECT_EQ(TextTable::withThousands(1000), "1,000");
  EXPECT_EQ(TextTable::withThousands(1234567), "1,234,567");
  EXPECT_EQ(TextTable::withThousands(-1234), "-1,234");
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"", "a", "bb"});
  t.row({"label", "1", "22"});
  t.row({"x", "333", "4"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  // Every line has the same length (alignment).
  std::istringstream is(out);
  std::string line;
  size_t len = 0;
  int lines = 0;
  while (std::getline(is, line)) {
    if (line.find('-') == 0) continue;  // rule line
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
    lines++;
  }
  EXPECT_EQ(lines, 3);
}

TEST(TextTable, FormatsDoublesWithTwoDecimals) {
  EXPECT_EQ(TextTable::format(3.14159), "3.14");
  EXPECT_EQ(TextTable::format(0.0), "0.00");
}

TEST(RunResult, DerivedQuantities) {
  harness::RunResult r;
  r.net.payload_bytes = 2'500'000;
  r.dsm.barriers = 7;
  r.dsm.barrier_wait_total = sim::usec(700);
  r.dsm.barrier_waits = 7;
  r.dsm.acquire_wait_total = sim::usec(90);
  r.dsm.acquire_waits = 9;
  EXPECT_DOUBLE_EQ(r.dataMBytes(), 2.5);
  EXPECT_DOUBLE_EQ(r.dataGBytes(), 0.0025);
  EXPECT_EQ(r.barrierEpisodes(), 7u);
  EXPECT_DOUBLE_EQ(r.dsm.avgBarrierMicros(), 100.0);
  EXPECT_DOUBLE_EQ(r.dsm.avgAcquireMicros(), 10.0);
}

TEST(DsmStats, AddAccumulates) {
  dsm::DsmStats a, b;
  a.acquires = 3;
  a.barrier_wait_total = 100;
  a.barrier_waits = 2;
  b.acquires = 4;
  b.barrier_wait_total = 50;
  b.barrier_waits = 1;
  a.add(b);
  EXPECT_EQ(a.acquires, 7u);
  EXPECT_EQ(a.barrier_wait_total, 150);
  EXPECT_EQ(a.barrier_waits, 3u);
}

TEST(DsmStats, AveragesHandleZeroCounts) {
  dsm::DsmStats s;
  EXPECT_DOUBLE_EQ(s.avgBarrierMicros(), 0.0);
  EXPECT_DOUBLE_EQ(s.avgAcquireMicros(), 0.0);
}

}  // namespace
}  // namespace vodsm
