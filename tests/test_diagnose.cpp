// Diagnosis contracts (see src/obs/diagnose.hpp):
//
//  * Pass mechanics: the default catalog is loaded, custom passes rank with
//    the built-ins, and the merged findings sort by severity then category
//    then location.
//  * Exactness on hand-crafted streams: the imbalance, grant-storm, and
//    partition detectors report the precisely-known gap, id, window, and
//    attribution encoded in a synthetic trace — and the partition's own
//    drops are never double-claimed by the retransmission-storm pass.
//  * Root causes outrank symptoms: for each injected-fault profile of the
//    chaos PR gate, the TOP-ranked finding on a real run names the injected
//    fault class and its location (straggler -> the slow node, partition ->
//    the cut node and a window inside the injected interval, loss -> a
//    retransmission storm, single-link degrade -> that link).
//  * Determinism: the rendered report (text + JSON) is byte-identical
//    across engine schedules (--sim-threads) and host-thread interleavings
//    (--jobs), and a diagnosed run's simulated results are bit-identical to
//    an undiagnosed run's.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/is.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run.hpp"
#include "net/faults.hpp"
#include "obs/diagnose.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;
using support::Json;

const obs::Finding* findCat(const obs::Diagnosis& d, obs::FindingCat c) {
  for (const obs::Finding& f : d.findings)
    if (f.cat == c) return &f;
  return nullptr;
}

std::string render(const obs::Diagnosis& d) {
  std::ostringstream os;
  obs::printDiagnosis(os, d, "test");
  obs::writeDiagnosisJson(os, d);
  return os.str();
}

// --- pass framework ----------------------------------------------------

TEST(Diagnoser, DefaultCatalogIsLoaded) {
  obs::Diagnoser with_catalog;
  EXPECT_EQ(with_catalog.passCount(), 11u);
  obs::Diagnoser empty(/*with_default_catalog=*/false);
  EXPECT_EQ(empty.passCount(), 0u);
}

// A stub pass emitting fixed findings, for ranking tests.
class StubPass : public obs::Pass {
 public:
  explicit StubPass(std::vector<obs::Finding> fs) : findings_(std::move(fs)) {}
  const char* name() const override { return "stub"; }
  void run(const obs::DiagnosisInput&,
           std::vector<obs::Finding>& out) const override {
    for (const obs::Finding& f : findings_) out.push_back(f);
  }

 private:
  std::vector<obs::Finding> findings_;
};

TEST(Diagnoser, FindingsRankBySeverityThenCategoryThenLocation) {
  obs::Finding weak;
  weak.cat = obs::FindingCat::kPartition;  // best category, worst severity
  weak.severity = 0.1;
  weak.location = "a";
  obs::Finding strong;
  strong.cat = obs::FindingCat::kHotspot;  // worst category, best severity
  strong.severity = 0.9;
  strong.location = "b";
  obs::Finding tied;  // ties with `strong` on severity; better category
  tied.cat = obs::FindingCat::kStraggler;
  tied.severity = 0.9;
  tied.location = "c";

  obs::Diagnoser d(/*with_default_catalog=*/false);
  d.addPass(std::make_unique<StubPass>(
      std::vector<obs::Finding>{weak, strong, tied}));
  EXPECT_EQ(d.passCount(), 1u);

  obs::DiagnosisInput in;
  in.nprocs = 2;
  in.finish = sim::usec(100);
  obs::Diagnosis out = d.run(in);
  ASSERT_TRUE(out.enabled());
  EXPECT_EQ(out.makespan, sim::usec(100));
  EXPECT_EQ(out.nprocs, 2);
  ASSERT_EQ(out.findings.size(), 3u);
  EXPECT_EQ(out.findings[0].cat, obs::FindingCat::kStraggler);
  EXPECT_EQ(out.findings[1].cat, obs::FindingCat::kHotspot);
  EXPECT_EQ(out.findings[2].cat, obs::FindingCat::kPartition);
  EXPECT_EQ(out.top(), &out.findings[0]);
}

TEST(Diagnoser, HealthyReportSaysSo) {
  obs::Diagnosis d;
  d.on = true;
  d.makespan = sim::usec(100);
  d.nprocs = 4;
  std::ostringstream os;
  obs::printDiagnosis(os, d, "healthy run");
  EXPECT_NE(os.str().find("no significant pattern detected"),
            std::string::npos);
  EXPECT_EQ(d.top(), nullptr);
}

TEST(Diagnoser, JsonEscapesAndParsesBack) {
  obs::Diagnosis d;
  d.on = true;
  d.makespan = sim::msec(5);
  d.nprocs = 3;
  obs::Finding f;
  f.cat = obs::FindingCat::kGrantStorm;
  f.severity = 0.25;
  f.location = "id \"7\" \\ strange\nname\ttab";
  f.node = 2;
  f.id = 7;
  f.window_begin = sim::usec(10);
  f.window_end = sim::usec(20);
  f.evidence = "because";
  f.remedy = "try things";
  d.findings.push_back(f);

  std::ostringstream os;
  obs::writeDiagnosisJson(os, d);
  Json doc = Json::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("makespan_seconds").asNumber(), 0.005);
  EXPECT_EQ(doc.at("nprocs").asNumber(), 3);
  const auto& items = doc.at("findings").items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].at("rank").asNumber(), 1);
  EXPECT_EQ(items[0].at("category").asString(), "grant_storm");
  EXPECT_DOUBLE_EQ(items[0].at("severity").asNumber(), 0.25);
  EXPECT_EQ(items[0].at("location").asString(),
            "id \"7\" \\ strange\nname\ttab");
  EXPECT_EQ(items[0].at("node").asNumber(), 2);
  EXPECT_DOUBLE_EQ(items[0].at("window_begin_seconds").asNumber(), 1e-5);
}

// --- exactness on hand-crafted streams ---------------------------------

TEST(DiagnosePasses, ImbalanceAttributesTheExactGap) {
  // Two nodes, one barrier episode. Node 0 arrives at t=20us; node 1
  // arrives at t=70us after a fault span [30, 60]. The imbalance gap is
  // exactly 50us = 30us fault/diff + 20us compute, window [20, 70].
  obs::TraceRecorder rec;
  auto us = [](int64_t n) { return sim::usec(n); };
  rec.begin(0, obs::Cat::kProgram, us(0));
  rec.begin(1, obs::Cat::kProgram, us(0));
  rec.begin(0, obs::Cat::kBarrierWait, us(20), /*barrier=*/0);
  rec.begin(1, obs::Cat::kFault, us(30), /*page=*/7);
  rec.end(1, obs::Cat::kFault, us(60), 7);
  rec.begin(1, obs::Cat::kBarrierWait, us(70), 0);
  rec.instant(0, obs::Cat::kBarrFold, us(71), 0, /*notices=*/0);
  rec.instant(0, obs::Cat::kBarrFold, us(72), 0, 0);
  rec.end(1, obs::Cat::kBarrierWait, us(80), 0);
  rec.end(0, obs::Cat::kBarrierWait, us(80), 0);
  rec.end(1, obs::Cat::kProgram, us(90));
  rec.end(0, obs::Cat::kProgram, us(100));

  obs::Diagnosis d = obs::diagnose(rec, /*nprocs=*/2, us(100));
  ASSERT_TRUE(d.enabled());
  const obs::Finding* f = findCat(d, obs::FindingCat::kLoadImbalance);
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->severity, 0.5);  // 50us of a 100us makespan
  EXPECT_EQ(f->node, 1);
  EXPECT_EQ(f->id, 0);
  EXPECT_EQ(f->window_begin, us(20));
  EXPECT_EQ(f->window_end, us(70));
  EXPECT_EQ(f->location, "barrier 0 episode 0, node 1");
  // 30us of the gap was fault service, 20us plain compute — so the remedy
  // points at fault/diff, not at work placement.
  EXPECT_NE(f->evidence.find("20.00 us compute"), std::string::npos)
      << f->evidence;
  EXPECT_NE(f->evidence.find("30.00 us fault/diff"), std::string::npos)
      << f->evidence;
  EXPECT_NE(f->remedy.find("fault/diff"), std::string::npos);
}

TEST(DiagnosePasses, GrantStormNamesTheIdAndManager) {
  // One id (5) granted 6 times from manager node 0 to both nodes: over the
  // 2*nprocs grant threshold with every node a requester.
  obs::TraceRecorder rec;
  auto us = [](int64_t n) { return sim::usec(n); };
  rec.begin(0, obs::Cat::kProgram, us(0));
  rec.begin(1, obs::Cat::kProgram, us(0));
  for (int i = 0; i < 6; ++i)
    rec.instant(0, obs::Cat::kGrant, us(10 + i * 10), /*id=*/5,
                /*requester=*/static_cast<uint64_t>(i % 2));
  rec.end(0, obs::Cat::kProgram, us(100));
  rec.end(1, obs::Cat::kProgram, us(100));

  obs::Diagnosis d = obs::diagnose(rec, /*nprocs=*/2, us(100));
  const obs::Finding* f = findCat(d, obs::FindingCat::kGrantStorm);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->location, "id 5 (manager node 0)");
  EXPECT_EQ(f->node, 0);
  EXPECT_EQ(f->id, 5);
  EXPECT_NE(f->evidence.find("granted 6 times to 2 distinct requesters"),
            std::string::npos)
      << f->evidence;
}

TEST(DiagnosePasses, PartitionClaimsItsDropsExactlyOnce) {
  // Three nodes; four drops in [10us, 20us], every one involving node 1
  // (as sender or receiver), all four flows recovered by t=40us. That is a
  // partition of node 1 with window [10, 20] and severity
  // (recovery - t0) / finish = (40 - 10) / 100 = 0.3 — and because the
  // partition claims those flows, the retransmission-storm pass must stay
  // silent rather than re-reporting the same drops.
  obs::TraceRecorder rec;
  auto us = [](int64_t n) { return sim::usec(n); };
  for (uint32_t n = 0; n < 3; ++n) rec.begin(n, obs::Cat::kProgram, us(0));

  struct Wire {
    uint32_t src, dst;
    int64_t send_us, drop_us, deliver_us;
    uint64_t corr;
  };
  const std::vector<Wire> wires = {{1, 0, 9, 10, 35, 101},
                                   {1, 2, 11, 12, 36, 102},
                                   {0, 1, 14, 15, 38, 103},
                                   {2, 1, 18, 20, 40, 104}};
  for (const Wire& w : wires) {
    rec.instant(w.src, obs::Cat::kSend, us(w.send_us), /*type=*/0,
                /*bytes=*/256, w.corr);
    rec.instant(w.dst, obs::Cat::kDrop, us(w.drop_us), /*sender=*/w.src,
                /*bytes=*/256, w.corr);
    rec.instant(w.dst, obs::Cat::kDeliver, us(w.deliver_us), /*kind=*/0,
                /*bytes=*/256, w.corr);
  }
  for (uint32_t n = 0; n < 3; ++n) rec.end(n, obs::Cat::kProgram, us(100));

  obs::Diagnosis d = obs::diagnose(rec, /*nprocs=*/3, us(100));
  const obs::Finding* f = findCat(d, obs::FindingCat::kPartition);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->node, 1);
  EXPECT_EQ(f->window_begin, us(10));
  EXPECT_EQ(f->window_end, us(20));
  EXPECT_DOUBLE_EQ(f->severity, 0.3);
  EXPECT_NE(f->location.find("node 1 cut off"), std::string::npos);
  EXPECT_NE(f->evidence.find("4 of 4 dropped frames"), std::string::npos)
      << f->evidence;
  EXPECT_EQ(findCat(d, obs::FindingCat::kRetransmitStorm), nullptr)
      << "the storm pass re-claimed the partition's drops";
}

// --- injected-fault profiles: the top finding names the fault -----------

apps::IsParams diagIs() {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = (1 << 7) - 1;
  p.iterations = 2;
  return p;
}

constexpr int kDiagProcs = 4;

struct DiagRun {
  RunResult result;
  std::string rendered;  // text report + JSON, for byte comparison
};

DiagRun runDiagnosedIs(const std::string& spec, int sim_threads = 1) {
  net::FaultPlan plan;
  if (!spec.empty()) plan = net::parseFaultPlan(spec);
  obs::TraceRecorder rec;
  obs::MetricsRegistry mets;
  RunConfig c;
  c.protocol = dsm::Protocol::kVcSd;
  c.nprocs = kDiagProcs;
  c.sim_threads = sim_threads;
  if (!spec.empty()) c.faults = &plan;
  c.trace = &rec;
  c.metrics = &mets;
  c.diagnose = true;
  RunResult r = apps::runIs(c, diagIs(), apps::IsVariant::kVopp).result;
  return {std::move(r), render(r.diagnosis)};
}

TEST(DiagnoseProfiles, StragglerTopFindingNamesTheSlowNode) {
  DiagRun run = runDiagnosedIs("slow:node=1,factor=6,t0=0.001,t1=0.25");
  ASSERT_TRUE(run.result.diagnosis.enabled());
  const obs::Finding* top = run.result.diagnosis.top();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->cat, obs::FindingCat::kStraggler) << run.rendered;
  EXPECT_EQ(top->node, 1) << run.rendered;
}

TEST(DiagnoseProfiles, PartitionTopFindingNamesTheCutNodeAndWindow) {
  DiagRun run = runDiagnosedIs("partition:nodes=1,t0=0.002,t1=0.012");
  const obs::Finding* top = run.result.diagnosis.top();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->cat, obs::FindingCat::kPartition) << run.rendered;
  EXPECT_EQ(top->node, 1) << run.rendered;
  // The detected drop window sits inside the injected [2ms, 12ms] cut
  // (drops stop as soon as the senders back off into retransmit timers, so
  // the window may end well before the cut heals).
  EXPECT_GE(top->window_begin, sim::msec(2)) << run.rendered;
  EXPECT_LE(top->window_end, sim::msec(12)) << run.rendered;
}

TEST(DiagnoseProfiles, LossTopFindingIsARetransmissionStorm) {
  DiagRun run = runDiagnosedIs("loss:p=0.01");
  const obs::Finding* top = run.result.diagnosis.top();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->cat, obs::FindingCat::kRetransmitStorm) << run.rendered;
}

TEST(DiagnoseProfiles, DegradedLinkTopFindingNamesTheLink) {
  DiagRun run = runDiagnosedIs("degrade:bw=8,to=2");
  const obs::Finding* top = run.result.diagnosis.top();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->cat, obs::FindingCat::kDegradedLink) << run.rendered;
  EXPECT_EQ(top->node, 2) << run.rendered;
  EXPECT_NE(top->location.find("downlink to node 2"), std::string::npos)
      << run.rendered;
}

TEST(DiagnoseProfiles, FaultFreeRunHasNoFaultFindings) {
  DiagRun run = runDiagnosedIs("");
  ASSERT_TRUE(run.result.diagnosis.enabled());
  EXPECT_EQ(findCat(run.result.diagnosis, obs::FindingCat::kPartition),
            nullptr);
  EXPECT_EQ(findCat(run.result.diagnosis, obs::FindingCat::kStraggler),
            nullptr);
  EXPECT_EQ(findCat(run.result.diagnosis, obs::FindingCat::kDegradedLink),
            nullptr);
  EXPECT_EQ(findCat(run.result.diagnosis, obs::FindingCat::kRetransmitStorm),
            nullptr);
  // The report's JSON half parses and mirrors the findings list.
  std::ostringstream os;
  obs::writeDiagnosisJson(os, run.result.diagnosis);
  Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("findings").items().size(),
            run.result.diagnosis.findings.size());
  EXPECT_EQ(doc.at("nprocs").asNumber(), kDiagProcs);
}

// --- determinism --------------------------------------------------------

TEST(DiagnoseDeterminism, ReportIsByteIdenticalAcrossEngineSchedules) {
  const std::string spec = "loss:p=0.01";
  DiagRun serial = runDiagnosedIs(spec, /*sim_threads=*/1);
  DiagRun parallel = runDiagnosedIs(spec, /*sim_threads=*/4);
  EXPECT_EQ(serial.result.seconds, parallel.result.seconds);
  EXPECT_EQ(serial.rendered, parallel.rendered);
}

TEST(DiagnoseDeterminism, ReportIsByteIdenticalAcrossHostThreads) {
  // The same diagnosed cell swept under a multi-threaded host runner (the
  // --jobs path): every interleaving must render the identical report.
  DiagRun reference = runDiagnosedIs("loss:p=0.01");
  std::vector<std::string> rendered(3);
  harness::ParallelRunner(3).forEach(rendered.size(), [&](size_t i) {
    rendered[i] = runDiagnosedIs("loss:p=0.01").rendered;
  });
  for (const std::string& r : rendered) EXPECT_EQ(r, reference.rendered);
}

TEST(DiagnoseDeterminism, DiagnosedRunMatchesUndiagnosedRun) {
  const net::FaultPlan plan = net::parseFaultPlan("loss:p=0.01");
  auto once = [&](bool diagnose, obs::TraceRecorder* rec,
                  obs::MetricsRegistry* mets) {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = kDiagProcs;
    c.faults = &plan;
    c.trace = rec;
    c.metrics = mets;
    c.diagnose = diagnose;
    return apps::runIs(c, diagIs(), apps::IsVariant::kVopp).result;
  };
  RunResult plain = once(false, nullptr, nullptr);
  obs::TraceRecorder rec;
  obs::MetricsRegistry mets;
  RunResult diagnosed = once(true, &rec, &mets);
  EXPECT_FALSE(plain.diagnosis.enabled());
  EXPECT_TRUE(diagnosed.diagnosis.enabled());
  EXPECT_EQ(plain.seconds, diagnosed.seconds);
  EXPECT_EQ(plain.net.messages, diagnosed.net.messages);
  EXPECT_EQ(plain.net.payload_bytes, diagnosed.net.payload_bytes);
  EXPECT_EQ(plain.net.retransmissions, diagnosed.net.retransmissions);
  EXPECT_EQ(plain.dsm.barriers, diagnosed.dsm.barriers);
  EXPECT_EQ(plain.dsm.acquires, diagnosed.dsm.acquires);
}

}  // namespace
}  // namespace vodsm
