// Determinism regression: the same RunConfig + seed must produce a
// bit-identical RunResult (a) across repeated runs, (b) under the serial
// runner versus the parallel runner, and (c) independently of how many
// sibling cells execute concurrently. This is the guarantee the parallel
// experiment driver rests on: a cell owns its whole simulator stack, so
// host-thread scheduling can never leak into simulated results.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run.hpp"
#include "support/check.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;

// Exact (bit-level) comparison of every field the tables report.
void expectResultEq(const RunResult& a, const RunResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;  // doubles: bit-identical or bust
  EXPECT_EQ(a.dsm.barriers, b.dsm.barriers) << what;
  EXPECT_EQ(a.dsm.acquires, b.dsm.acquires) << what;
  EXPECT_EQ(a.dsm.diff_requests, b.dsm.diff_requests) << what;
  EXPECT_EQ(a.dsm.page_faults, b.dsm.page_faults) << what;
  EXPECT_EQ(a.dsm.diffs_created, b.dsm.diffs_created) << what;
  EXPECT_EQ(a.dsm.diffs_applied, b.dsm.diffs_applied) << what;
  EXPECT_EQ(a.dsm.notices_recorded, b.dsm.notices_recorded) << what;
  EXPECT_EQ(a.dsm.barrier_wait_total, b.dsm.barrier_wait_total) << what;
  EXPECT_EQ(a.dsm.barrier_waits, b.dsm.barrier_waits) << what;
  EXPECT_EQ(a.dsm.acquire_wait_total, b.dsm.acquire_wait_total) << what;
  EXPECT_EQ(a.dsm.acquire_waits, b.dsm.acquire_waits) << what;
  EXPECT_EQ(a.net.frames_sent, b.net.frames_sent) << what;
  EXPECT_EQ(a.net.frames_delivered, b.net.frames_delivered) << what;
  EXPECT_EQ(a.net.frames_dropped_overflow, b.net.frames_dropped_overflow)
      << what;
  EXPECT_EQ(a.net.frames_dropped_random, b.net.frames_dropped_random) << what;
  EXPECT_EQ(a.net.wire_bytes, b.net.wire_bytes) << what;
  EXPECT_EQ(a.net.messages, b.net.messages) << what;
  EXPECT_EQ(a.net.acks, b.net.acks) << what;
  EXPECT_EQ(a.net.payload_bytes, b.net.payload_bytes) << what;
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions) << what;
}

// A small but protocol-diverse cell sweep: all four apps, all three
// protocols represented, sizes chosen so the whole suite stays in test
// time. `sim_threads` selects the engine schedule inside every cell
// (1 = serial reference); results must not depend on it.
std::vector<std::pair<std::string, std::function<RunResult()>>> makeCells(
    int sim_threads = 1) {
  std::vector<std::pair<std::string, std::function<RunResult()>>> cells;

  apps::IsParams is;
  is.n_keys = 1 << 12;
  is.max_key = (1 << 8) - 1;
  is.iterations = 3;
  for (auto [name, proto, variant] :
       {std::tuple{"IS/LRC_d", dsm::Protocol::kLrcDiff,
                   apps::IsVariant::kTraditional},
        std::tuple{"IS/VC_d", dsm::Protocol::kVcDiff, apps::IsVariant::kVopp},
        std::tuple{"IS/VC_sd", dsm::Protocol::kVcSd,
                   apps::IsVariant::kVopp}}) {
    RunConfig c;
    c.protocol = proto;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    cells.emplace_back(name,
                       [=] { return apps::runIs(c, is, variant).result; });
  }

  apps::GaussParams gauss;
  gauss.n = 64;
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    cells.emplace_back("Gauss/VC_sd", [=] {
      return apps::runGauss(c, gauss, apps::GaussVariant::kVopp).result;
    });
  }

  apps::SorParams sor;
  sor.rows = 64;
  sor.cols = 64;
  sor.iterations = 3;
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kLrcDiff;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    cells.emplace_back("SOR/LRC_d", [=] {
      return apps::runSor(c, sor, apps::SorVariant::kTraditional).result;
    });
  }

  apps::NnParams nn;
  nn.samples = 64;
  nn.epochs = 3;
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    cells.emplace_back("NN/MPI", [=] {
      return apps::runNn(c, nn, apps::NnVariant::kMpi).result;
    });
  }

  // A lossy-network cell: retransmission paths must be deterministic too
  // (the loss RNG is seeded per run, not shared).
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    c.net.random_loss = 0.02;
    c.net.rto = sim::msec(20);
    cells.emplace_back("IS/VC_sd/lossy", [=] {
      return apps::runIs(c, is, apps::IsVariant::kVopp).result;
    });
  }

  // Multi-switch fabrics with the scalable protocol stack: trunk FIFOs,
  // tree/butterfly barrier traffic, and hashed/migrating view homes all
  // add event paths that must stay schedule-independent too.
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 8;
    c.sim_threads = sim_threads;
    VODSM_CHECK(net::parseTopologySpec("fattree:leaf=4", &c.net.topology));
    c.proto.barrier = dsm::BarrierAlg::kTree;
    c.proto.view_homes = dsm::ViewHomes::kHashed;
    cells.emplace_back("IS/VC_sd/fattree-tree", [=] {
      return apps::runIs(c, is, apps::IsVariant::kVopp).result;
    });
  }
  {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 8;
    c.sim_threads = sim_threads;
    VODSM_CHECK(net::parseTopologySpec("leafspine:leaf=4,spines=2",
                                       &c.net.topology));
    c.proto.barrier = dsm::BarrierAlg::kButterfly;
    c.proto.view_homes = dsm::ViewHomes::kMigrate;
    cells.emplace_back("IS/VC_sd/leafspine-butterfly", [=] {
      return apps::runIs(c, is, apps::IsVariant::kVopp).result;
    });
  }

  // Fault-injected cells: the injector's per-destination RNG shards and
  // budgets must behave identically under every engine schedule.
  for (const char* profile : {"profile:mixed", "profile:partition"}) {
    static std::map<std::string, net::FaultPlan> plans;
    auto [it, inserted] = plans.try_emplace(profile);
    if (inserted) it->second = net::parseFaultPlan(profile);
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 4;
    c.sim_threads = sim_threads;
    c.faults = &it->second;
    cells.emplace_back(std::string("IS/VC_sd/") + profile, [=] {
      return apps::runIs(c, is, apps::IsVariant::kVopp).result;
    });
  }

  return cells;
}

// The tentpole guarantee of the conservative parallel engine: the same
// cell produces a bit-identical RunResult for every --sim-threads value,
// across all apps, protocols, and fault profiles in the sweep.
TEST(Determinism, SimThreadSweepIsBitIdentical) {
  auto base = makeCells(/*sim_threads=*/1);
  std::vector<RunResult> ref;
  ref.reserve(base.size());
  for (auto& [name, run] : base) ref.push_back(run());
  for (int threads : {2, 4, 8}) {
    auto cells = makeCells(threads);
    ASSERT_EQ(cells.size(), ref.size());
    for (size_t i = 0; i < cells.size(); ++i)
      expectResultEq(ref[i], cells[i].second(),
                     cells[i].first + " (sim_threads=" +
                         std::to_string(threads) + ")");
  }
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  for (auto& [name, run] : makeCells()) {
    RunResult first = run();
    RunResult second = run();
    expectResultEq(first, second, name + " (repeat)");
  }
}

TEST(Determinism, ParallelRunnerMatchesSerialRunner) {
  auto cells = makeCells();
  std::vector<std::function<RunResult()>> tasks;
  for (auto& [name, run] : cells) tasks.push_back(run);

  // Serial runner: jobs=1 is the documented serial fallback path.
  std::vector<RunResult> serial = harness::runAll(tasks, /*jobs=*/1);
  // Parallel runner: more workers than cells, to force real interleaving.
  std::vector<RunResult> parallel = harness::runAll(tasks, /*jobs=*/8);
  // And again, to catch any run-to-run wobble under threading.
  std::vector<RunResult> parallel2 = harness::runAll(tasks, /*jobs=*/3);

  ASSERT_EQ(serial.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    expectResultEq(serial[i], parallel[i], cells[i].first + " (serial vs 8j)");
    expectResultEq(serial[i], parallel2[i], cells[i].first + " (serial vs 3j)");
  }
}

TEST(ParallelRunner, PreservesSubmissionOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([i] { return i * i; });
  auto out = harness::runAll(tasks, /*jobs=*/7);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(ParallelRunner, PropagatesTaskExceptions) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back([i]() -> int {
      if (i == 5) throw std::runtime_error("cell 5 exploded");
      return i;
    });
  EXPECT_THROW(harness::runAll(tasks, /*jobs=*/4), std::runtime_error);
  EXPECT_THROW(harness::runAll(tasks, /*jobs=*/1), std::runtime_error);
}

TEST(ParallelRunner, JobResolution) {
  EXPECT_GE(harness::defaultJobs(), 1);
  EXPECT_EQ(harness::resolveJobs(-3), 1);
  EXPECT_EQ(harness::resolveJobs(5), 5);
  EXPECT_GE(harness::resolveJobs(0), 1);
}

}  // namespace
}  // namespace vodsm
