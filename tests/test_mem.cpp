// Unit and property tests for the memory substrate: diffs, diff
// integration, page store, vector clocks, view map.
#include <gtest/gtest.h>

#include "dsm/view_map.hpp"
#include "mem/diff.hpp"
#include "mem/page_store.hpp"
#include "mem/vclock.hpp"
#include "sim/rng.hpp"

namespace vodsm {
namespace {

using mem::Diff;
using mem::kPageSize;

Bytes randomPage(sim::Rng& rng) {
  Bytes page(kPageSize);
  for (auto& b : page) b = static_cast<std::byte>(rng.below(256));
  return page;
}

// Mutate `page` at roughly `density` fraction of its words.
void mutatePage(sim::Rng& rng, MutByteSpan page, double density) {
  for (size_t w = 0; w + 4 <= page.size(); w += 4) {
    if (rng.uniform() < density) {
      page[w] = static_cast<std::byte>(rng.below(256));
      page[w + 1] = static_cast<std::byte>(rng.below(256));
    }
  }
}

class DiffProperty : public ::testing::TestWithParam<double> {};

// apply(create(cur, twin), twin) == cur — for any edit density.
TEST_P(DiffProperty, RoundTrip) {
  sim::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes twin = randomPage(rng);
    Bytes cur = twin;
    mutatePage(rng, cur, GetParam());
    Diff d = Diff::create(1, cur, twin);
    Bytes out = twin;
    d.apply(out);
    EXPECT_EQ(out, cur);
  }
}

// integrate(d1, d2) applied to base == d1 then d2 applied to base.
TEST_P(DiffProperty, IntegrationEqualsSequentialApplication) {
  sim::Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    Bytes base = randomPage(rng);
    Bytes v1 = base;
    mutatePage(rng, v1, GetParam());
    Bytes v2 = v1;
    mutatePage(rng, v2, GetParam());
    Diff d1 = Diff::create(2, v1, base);
    Diff d2 = Diff::create(2, v2, v1);
    Diff merged = Diff::integrate(d1, d2);

    Bytes seq = base;
    d1.apply(seq);
    d2.apply(seq);
    Bytes intg = base;
    merged.apply(intg);
    EXPECT_EQ(intg, seq);
  }
}

// Wire round trip preserves the diff exactly.
TEST_P(DiffProperty, SerializationRoundTrip) {
  sim::Rng rng(77);
  Bytes twin = randomPage(rng);
  Bytes cur = twin;
  mutatePage(rng, cur, GetParam());
  Diff d = Diff::create(3, cur, twin);
  Writer w;
  d.serialize(w);
  Bytes encoded = w.take();
  Reader r(encoded);
  Diff back = Diff::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(d, back);
  EXPECT_EQ(encoded.size(), d.wireSize());
}

INSTANTIATE_TEST_SUITE_P(Densities, DiffProperty,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0),
                         [](const auto& info) {
                           return "density_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(Diff, EmptyWhenIdentical) {
  Bytes page(kPageSize, std::byte{5});
  Diff d = Diff::create(0, page, page);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.runs().size(), 0u);
}

TEST(Diff, CoalescesAdjacentWords) {
  Bytes twin(kPageSize, std::byte{0});
  Bytes cur = twin;
  for (size_t i = 100; i < 120; ++i) cur[i] = std::byte{1};
  Diff d = Diff::create(0, cur, twin);
  EXPECT_EQ(d.runs().size(), 1u);
  EXPECT_EQ(d.runs()[0].offset, 100u);
  EXPECT_EQ(d.runs()[0].length, 20u);
}

TEST(Diff, IntegrationNewerWinsOnOverlap) {
  Diff older(4), newer(4);
  Bytes a{std::byte{1}, std::byte{1}, std::byte{1}, std::byte{1}};
  Bytes b{std::byte{2}, std::byte{2}};
  older.addRun(0, a);
  newer.addRun(2, b);
  Diff merged = Diff::integrate(older, newer);
  Bytes page(kPageSize, std::byte{0});
  merged.apply(page);
  EXPECT_EQ(page[0], std::byte{1});
  EXPECT_EQ(page[1], std::byte{1});
  EXPECT_EQ(page[2], std::byte{2});
  EXPECT_EQ(page[3], std::byte{2});
}

TEST(PageStore, TwinLifecycle) {
  mem::PageStore store(4 * kPageSize);
  EXPECT_EQ(store.pageCount(), 4u);
  store.range(0, 8)[0] = std::byte{9};
  store.makeTwin(0);
  EXPECT_TRUE(store.hasTwin(0));
  store.range(0, 8)[0] = std::byte{7};
  Diff d = store.diffAgainstTwin(0);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.runs()[0].offset, 0u);
  store.dropTwin(0);
  EXPECT_FALSE(store.hasTwin(0));
}

TEST(PageStore, SizeRoundsToPages) {
  mem::PageStore store(kPageSize + 1);
  EXPECT_EQ(store.pageCount(), 2u);
  EXPECT_EQ(store.sizeBytes(), 2 * kPageSize);
}

TEST(VClock, CoversAndMerge) {
  mem::VClock a(3), b(3);
  a[0] = 2;
  b[1] = 5;
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  mem::VClock m = a;
  m.merge(b);
  EXPECT_TRUE(m.covers(a));
  EXPECT_TRUE(m.covers(b));
  EXPECT_EQ(m[0], 2u);
  EXPECT_EQ(m[1], 5u);
  EXPECT_TRUE(m.hasSeen(1, 5));
  EXPECT_FALSE(m.hasSeen(1, 6));
}

TEST(VClock, SerializationRoundTrip) {
  mem::VClock a(4);
  a[2] = 17;
  Writer w;
  a.serialize(w);
  Bytes enc = w.take();
  Reader r(enc);
  EXPECT_EQ(mem::VClock::deserialize(r), a);
}

TEST(ViewMap, ViewsArePageAlignedAndDisjoint) {
  dsm::ViewMap vm;
  dsm::ViewId a = vm.defineView(100);
  dsm::ViewId b = vm.defineView(5000);
  dsm::ViewId c = vm.defineView(1);
  EXPECT_EQ(vm.view(a).offset % kPageSize, 0u);
  EXPECT_EQ(vm.view(b).offset, kPageSize);      // a occupies one page
  EXPECT_EQ(vm.view(c).offset, 3 * kPageSize);  // b occupies two
  EXPECT_EQ(vm.viewOfPage(0), a);
  EXPECT_EQ(vm.viewOfPage(1), b);
  EXPECT_EQ(vm.viewOfPage(2), b);
  EXPECT_EQ(vm.viewOfPage(3), c);
  EXPECT_EQ(vm.viewOfPage(4), std::nullopt);
}

TEST(ViewMap, RawAllocationsPackAndShareNoViews) {
  dsm::ViewMap vm;
  size_t x = vm.allocRaw(12);
  size_t y = vm.allocRaw(4);
  EXPECT_EQ(y, x + 16);  // 8-aligned packing (false sharing by design)
  EXPECT_EQ(vm.viewOfPage(0), std::nullopt);
  dsm::ViewId v = vm.defineView(10);
  EXPECT_EQ(vm.view(v).offset % kPageSize, 0u);
}

TEST(ViewMap, HomesOverrideRoundRobin) {
  dsm::ViewMap vm;
  dsm::ViewId a = vm.defineView(8);       // default: id % nprocs
  dsm::ViewId b = vm.defineView(8, 3);    // pinned
  dsm::ViewId c = vm.defineView(8, 100);  // pinned, wraps
  EXPECT_EQ(vm.managerOf(a, 4), 0u);
  EXPECT_EQ(vm.managerOf(b, 4), 3u);
  EXPECT_EQ(vm.managerOf(c, 4), 0u);
}

TEST(ViewMap, ContainsRange) {
  dsm::ViewMap vm;
  dsm::ViewId v = vm.defineView(100);
  size_t off = vm.view(v).offset;
  EXPECT_TRUE(vm.viewContainsRange(v, off, 100));
  EXPECT_TRUE(vm.viewContainsRange(v, off + 50, 50));
  EXPECT_FALSE(vm.viewContainsRange(v, off + 50, 51));
}

TEST(BytesIO, WriterReaderRoundTrip) {
  Writer w;
  w.u8(7);
  w.u16(300);
  w.u32(70000);
  w.u64(1ull << 40);
  w.i64(-5);
  w.f64(3.25);
  Bytes inner{std::byte{1}, std::byte{2}};
  w.blob(inner);
  Bytes enc = w.take();
  Reader r(enc);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_EQ(r.i64(), -5);
  EXPECT_EQ(r.f64(), 3.25);
  ByteSpan blob = r.blob();
  EXPECT_EQ(blob.size(), 2u);
  EXPECT_TRUE(r.done());
}

TEST(BytesIO, ShortReadThrows) {
  Bytes enc{std::byte{1}};
  Reader r(enc);
  EXPECT_THROW(r.u32(), Error);
}

}  // namespace
}  // namespace vodsm
