// Unit tests for the network model and the reliable transport.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/parallel.hpp"
#include "net/transport.hpp"
#include "sim/task.hpp"

namespace vodsm::net {
namespace {

TEST(NetConfig, WireMath) {
  NetConfig c;
  EXPECT_EQ(c.wireBytes(0), c.header_bytes);
  EXPECT_EQ(c.wireBytes(100), 100 + c.header_bytes);
  // Two fragments once past the MTU payload.
  EXPECT_EQ(c.wireBytes(c.mtu_payload + 1),
            c.mtu_payload + 1 + 2 * c.header_bytes);
  // 100 Mbps: 1250 bytes take 100 microseconds.
  NetConfig fast = c;
  fast.header_bytes = 0;
  EXPECT_NEAR(static_cast<double>(fast.txTime(1250)),
              static_cast<double>(sim::usec(100)), 1000.0);
}

TEST(Network, DeliversWithLatencyAndBandwidth) {
  sim::Engine e;
  NetConfig cfg;
  Network net(e, 2, cfg, 1);
  sim::Time delivered_at = -1;
  net.setDeliver(1, [&](NodeId src, Bytes frame, sim::Time t) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(frame.size(), 1000u);
    delivered_at = t;
  });
  net.send(0, 1, Bytes(1000), 0);
  e.run();
  // send overhead + uplink tx + latency + downlink tx + recv service.
  sim::Time expect = cfg.sendOverhead(1000) + 2 * cfg.txTime(1000) +
                     cfg.wire_latency + cfg.recvOverhead(1000);
  EXPECT_EQ(delivered_at, expect);
  EXPECT_EQ(net.stats().frames_delivered, 1u);
}

TEST(Network, UplinkSerializesBackToBackSends) {
  sim::Engine e;
  NetConfig cfg;
  Network net(e, 3, cfg, 1);
  std::vector<sim::Time> arrivals;
  net.setDeliver(1, [&](NodeId, Bytes, sim::Time t) { arrivals.push_back(t); });
  net.setDeliver(2, [&](NodeId, Bytes, sim::Time t) { arrivals.push_back(t); });
  net.send(0, 1, Bytes(10000), 0);
  net.send(0, 2, Bytes(10000), 0);
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // The second frame waits for the first to clear the shared uplink.
  EXPECT_GE(arrivals[1] - arrivals[0], cfg.txTime(10000));
}

TEST(Network, RxQueueOverflowDrops) {
  sim::Engine e;
  NetConfig cfg;
  cfg.rx_queue_frames = 2;
  cfg.recv_base = sim::msec(10);  // absurdly slow receiver
  Network net(e, 5, cfg, 1);
  int delivered = 0;
  net.setDeliver(0, [&](NodeId, Bytes, sim::Time) { delivered++; });
  for (NodeId src = 1; src < 5; ++src) net.send(src, 0, Bytes(10), 0);
  e.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().frames_dropped_overflow, 2u);
}

TEST(Network, RandomLossDropsProportionally) {
  sim::Engine e;
  NetConfig cfg;
  cfg.random_loss = 0.5;
  Network net(e, 2, cfg, 99);
  int delivered = 0;
  net.setDeliver(1, [&](NodeId, Bytes, sim::Time) { delivered++; });
  for (int i = 0; i < 200; ++i)
    net.send(0, 1, Bytes(10), sim::msec(i));
  e.run();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_EQ(net.stats().frames_dropped_random + net.stats().frames_delivered,
            200u);
}

TEST(SeqTracker, DetectsDuplicatesAcrossGaps) {
  SeqTracker t;
  EXPECT_TRUE(t.markSeen(0));
  EXPECT_TRUE(t.markSeen(2));
  EXPECT_FALSE(t.markSeen(0));
  EXPECT_FALSE(t.markSeen(2));
  EXPECT_TRUE(t.markSeen(1));
  EXPECT_FALSE(t.markSeen(1));
  EXPECT_TRUE(t.markSeen(3));
}

struct Pair {
  sim::Engine engine;
  NetConfig cfg;
  Network net;
  Endpoint a, b;
  explicit Pair(NetConfig c = NetConfig{}, uint64_t seed = 1)
      : cfg(c), net(engine, 2, cfg, seed), a(engine, net, 0),
        b(engine, net, 1) {}
};

TEST(Transport, PostDeliversExactlyOnce) {
  Pair p;
  int count = 0;
  p.b.setHandler([&](Delivery&& d, const ReplyToken&) {
    EXPECT_EQ(d.type, 9);
    count++;
  });
  p.a.post(1, 9, Bytes(100), 0);
  p.engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(p.net.stats().acks, 1u);
}

TEST(Transport, PostSurvivesHeavyLoss) {
  NetConfig cfg;
  cfg.random_loss = 0.4;
  cfg.rto = sim::msec(50);
  Pair p(cfg, 7);
  int count = 0;
  p.b.setHandler([&](Delivery&&, const ReplyToken&) { count++; });
  for (int i = 0; i < 50; ++i) p.a.post(1, 9, Bytes(20), 0);
  p.engine.run();
  EXPECT_EQ(count, 50);  // exactly once despite losses and retransmissions
  EXPECT_GT(p.net.stats().retransmissions, 0u);
}

TEST(Transport, RequestReplySurvivesLoss) {
  NetConfig cfg;
  cfg.random_loss = 0.3;
  cfg.rto = sim::msec(50);
  Pair p(cfg, 11);
  int served = 0;
  p.b.setHandler([&](Delivery&& d, const ReplyToken& tok) {
    served++;
    p.b.reply(tok, static_cast<uint16_t>(d.type + 1), Bytes(d.payload),
              d.arrive);
  });
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    sim::spawn([](Endpoint& ep, int& done) -> sim::Task<void> {
      auto r = co_await ep.request(1, 5, Bytes(64), 0);
      EXPECT_EQ(r.type, 6);
      EXPECT_EQ(r.payload.size(), 64u);
      done++;
    }(p.a, completed));
  }
  p.engine.run();
  EXPECT_EQ(completed, 30);
  EXPECT_EQ(served, 30);  // reply cache answers duplicate requests
}

TEST(Transport, SelfSendStaysLocal) {
  Pair p;
  int count = 0;
  p.a.setHandler([&](Delivery&& d, const ReplyToken&) {
    EXPECT_EQ(d.src, 0u);
    count++;
  });
  p.a.post(0, 3, Bytes(10), 0);
  p.engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(p.net.stats().messages, 0u);  // never hit the wire
  EXPECT_EQ(p.net.stats().frames_sent, 0u);
}

TEST(Transport, RequestAllOverlapsRoundTrips) {
  sim::Engine e;
  NetConfig cfg;
  Network net(e, 4, cfg, 1);
  Endpoint a(e, net, 0), b(e, net, 1), c(e, net, 2), d(e, net, 3);
  auto serve = [](Endpoint& ep) {
    ep.setHandler([&ep](Delivery&& del, const ReplyToken& tok) {
      ep.reply(tok, 1, Bytes(2000), del.arrive + sim::usec(10));
    });
  };
  serve(b);
  serve(c);
  serve(d);
  sim::Time finished = 0;
  sim::spawn([](Endpoint& ep, sim::Engine& eng,
                sim::Time& done) -> sim::Task<void> {
    std::vector<RpcCall> calls;
    for (NodeId n = 1; n <= 3; ++n) calls.push_back(RpcCall{n, 0, Bytes(50)});
    auto results = co_await requestAll(ep, std::move(calls), 0);
    EXPECT_EQ(results.size(), 3u);
    for (auto& r : results) EXPECT_EQ(r.payload.size(), 2000u);
    done = eng.now();
  }(a, e, finished));
  e.run();
  // Three overlapped ~600us round trips must finish well under 3x serial.
  sim::Time one_rtt = cfg.sendOverhead(50) + 2 * cfg.txTime(50) +
                      cfg.wire_latency + cfg.recvOverhead(50) + sim::usec(10) +
                      cfg.sendOverhead(2000) + 2 * cfg.txTime(2000) +
                      cfg.wire_latency + cfg.recvOverhead(2000);
  EXPECT_LT(finished, 2 * one_rtt);
}

TEST(Transport, StatsCountPayloadBytes) {
  Pair p;
  p.b.setHandler([](Delivery&&, const ReplyToken&) {});
  p.a.post(1, 9, Bytes(500), 0);
  p.engine.run();
  EXPECT_EQ(p.net.stats().messages, 1u);
  EXPECT_EQ(p.net.stats().payload_bytes, 500u);
}

}  // namespace
}  // namespace vodsm::net
