// Property sweeps over the applications: odd, non-divisible problem sizes
// and processor counts, plus run-level determinism. Every case validates
// against the serial reference, so each is a full end-to-end correctness
// check of protocol + app under awkward partitioning.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

harness::RunConfig cfg(Protocol proto, int nprocs, uint64_t seed = 42) {
  harness::RunConfig c;
  c.protocol = proto;
  c.nprocs = nprocs;
  c.seed = seed;
  return c;
}

struct Shape {
  Protocol proto;
  int nprocs;
  size_t size;  // app-specific primary dimension
};

std::string shapeName(const ::testing::TestParamInfo<Shape>& info) {
  return dsm::protocolName(info.param.proto) + "_" +
         std::to_string(info.param.nprocs) + "p_" +
         std::to_string(info.param.size);
}

// Deliberately awkward: prime processor counts, sizes that do not divide.
const Shape kShapes[] = {
    {Protocol::kVcDiff, 3, 130},  {Protocol::kVcDiff, 7, 101},
    {Protocol::kVcSd, 3, 130},    {Protocol::kVcSd, 7, 101},
    {Protocol::kVcSd, 5, 64},     {Protocol::kLrcDiff, 3, 96},
    {Protocol::kVcSd, 13, 52},    {Protocol::kVcDiff, 13, 52},
};

class OddShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(OddShapes, Is) {
  const auto& s = GetParam();
  apps::IsParams p;
  p.n_keys = s.size * 37 + 11;  // not a multiple of anything
  p.max_key = 257;              // odd bucket count
  p.iterations = 2;
  auto run =
      apps::runIs(cfg(s.proto, s.nprocs), p, apps::IsVariant::kVopp);
  EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, s.nprocs));
}

TEST_P(OddShapes, Gauss) {
  const auto& s = GetParam();
  apps::GaussParams p;
  p.n = s.size;
  auto run =
      apps::runGauss(cfg(s.proto, s.nprocs), p, apps::GaussVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum, apps::gaussSerialChecksum(p));
}

TEST_P(OddShapes, Sor) {
  const auto& s = GetParam();
  apps::SorParams p;
  p.rows = std::max<size_t>(s.size, static_cast<size_t>(s.nprocs) * 2);
  p.cols = 53;  // rows not page aligned
  p.iterations = 3;
  auto run = apps::runSor(cfg(s.proto, s.nprocs), p, apps::SorVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum, apps::sorSerialChecksum(p));
}

TEST_P(OddShapes, Nn) {
  const auto& s = GetParam();
  apps::NnParams p;
  p.samples = s.size;
  p.epochs = 2;
  p.hidden = 17;
  auto run = apps::runNn(cfg(s.proto, s.nprocs), p, apps::NnVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum, apps::nnSerialChecksum(p, s.nprocs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OddShapes, ::testing::ValuesIn(kShapes),
                         shapeName);

// Determinism: identical configuration => identical simulated time and
// traffic statistics, for every app and protocol.
class AppDeterminism : public ::testing::TestWithParam<Protocol> {};

TEST_P(AppDeterminism, IsRunsAreBitIdentical) {
  apps::IsParams p;
  p.n_keys = 4096;
  p.max_key = 255;
  p.iterations = 2;
  auto a = apps::runIs(cfg(GetParam(), 4, 7), p, apps::IsVariant::kVopp);
  auto b = apps::runIs(cfg(GetParam(), 4, 7), p, apps::IsVariant::kVopp);
  EXPECT_EQ(a.result.seconds, b.result.seconds);
  EXPECT_EQ(a.result.net.messages, b.result.net.messages);
  EXPECT_EQ(a.result.net.payload_bytes, b.result.net.payload_bytes);
  EXPECT_EQ(a.result.dsm.acquires, b.result.dsm.acquires);
  EXPECT_EQ(a.rank_sums, b.rank_sums);
}

TEST_P(AppDeterminism, SorRunsAreBitIdentical) {
  apps::SorParams p;
  p.rows = 48;
  p.cols = 48;
  p.iterations = 3;
  auto a = apps::runSor(cfg(GetParam(), 4, 9), p, apps::SorVariant::kVopp);
  auto b = apps::runSor(cfg(GetParam(), 4, 9), p, apps::SorVariant::kVopp);
  EXPECT_EQ(a.result.seconds, b.result.seconds);
  EXPECT_EQ(a.result.net.messages, b.result.net.messages);
  EXPECT_EQ(a.checksum, b.checksum);
}

INSTANTIATE_TEST_SUITE_P(Protocols, AppDeterminism,
                         ::testing::Values(Protocol::kLrcDiff,
                                           Protocol::kVcDiff,
                                           Protocol::kVcSd),
                         [](const auto& info) {
                           return dsm::protocolName(info.param);
                         });

// Structural invariants the paper's tables rely on.
TEST(AppInvariants, VcSdZeroDiffRequestsOnAllApps) {
  {
    apps::IsParams p;
    p.n_keys = 4096;
    p.max_key = 255;
    p.iterations = 2;
    auto r = apps::runIs(cfg(Protocol::kVcSd, 4), p, apps::IsVariant::kVopp);
    EXPECT_EQ(r.result.dsm.diff_requests, 0u);
  }
  {
    apps::GaussParams p;
    p.n = 64;
    auto r =
        apps::runGauss(cfg(Protocol::kVcSd, 4), p, apps::GaussVariant::kVopp);
    EXPECT_EQ(r.result.dsm.diff_requests, 0u);
  }
  {
    apps::SorParams p;
    p.rows = 48;
    p.cols = 48;
    p.iterations = 2;
    auto r = apps::runSor(cfg(Protocol::kVcSd, 4), p, apps::SorVariant::kVopp);
    EXPECT_EQ(r.result.dsm.diff_requests, 0u);
  }
  {
    apps::NnParams p;
    p.samples = 64;
    p.epochs = 2;
    auto r = apps::runNn(cfg(Protocol::kVcSd, 4), p, apps::NnVariant::kVopp);
    EXPECT_EQ(r.result.dsm.diff_requests, 0u);
  }
}

TEST(AppInvariants, FewerBarriersReallyRemovesEpisodes) {
  apps::IsParams p;
  p.n_keys = 4096;
  p.max_key = 255;
  p.iterations = 5;
  auto with = apps::runIs(cfg(Protocol::kVcSd, 4), p, apps::IsVariant::kVopp);
  auto without = apps::runIs(cfg(Protocol::kVcSd, 4), p,
                             apps::IsVariant::kVoppFewerBarriers);
  EXPECT_EQ(with.result.barrierEpisodes(),
            without.result.barrierEpisodes() + 5);
  EXPECT_EQ(with.rank_sums, without.rank_sums);
  EXPECT_LE(without.result.seconds, with.result.seconds);
}

TEST(AppInvariants, TraditionalVariantsNeverAcquire) {
  apps::IsParams p;
  p.n_keys = 4096;
  p.max_key = 255;
  p.iterations = 2;
  auto r =
      apps::runIs(cfg(Protocol::kLrcDiff, 4), p, apps::IsVariant::kTraditional);
  EXPECT_EQ(r.result.dsm.acquires, 0u);  // paper Table 1's Acquires row
  apps::NnParams np;
  np.samples = 64;
  np.epochs = 2;
  auto rn = apps::runNn(cfg(Protocol::kLrcDiff, 4), np,
                        apps::NnVariant::kTraditional);
  EXPECT_EQ(rn.result.dsm.acquires, 0u);
}

}  // namespace
}  // namespace vodsm
