// Topology layer and scalable-protocol regression tests.
//
// Three guarantees from the scaling work:
//  * the star fabric stays the default and is byte-identical whether it is
//    implied, named, or spelled out — the paper tables depend on it;
//  * tree and butterfly barriers (and the sharded/migrating view
//    directory) change timing, never results: every app's checksum still
//    matches its serial reference, and the protocol does the same number
//    of barriers;
//  * multi-switch fabrics keep the conservative parallel engine's
//    bit-identity guarantee at every --sim-threads value (the trunk FIFOs
//    add cross-lane event paths whose lookahead must stay correct).
#include <gtest/gtest.h>

#include <string>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "harness/run.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;

void expectResultEq(const RunResult& a, const RunResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;  // doubles: bit-identical or bust
  EXPECT_EQ(a.dsm.barriers, b.dsm.barriers) << what;
  EXPECT_EQ(a.dsm.acquires, b.dsm.acquires) << what;
  EXPECT_EQ(a.dsm.page_faults, b.dsm.page_faults) << what;
  EXPECT_EQ(a.dsm.diffs_created, b.dsm.diffs_created) << what;
  EXPECT_EQ(a.dsm.barrier_wait_total, b.dsm.barrier_wait_total) << what;
  EXPECT_EQ(a.net.frames_sent, b.net.frames_sent) << what;
  EXPECT_EQ(a.net.frames_delivered, b.net.frames_delivered) << what;
  EXPECT_EQ(a.net.wire_bytes, b.net.wire_bytes) << what;
  EXPECT_EQ(a.net.messages, b.net.messages) << what;
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions) << what;
}

apps::IsParams smallIs() {
  apps::IsParams is;
  is.n_keys = 1 << 12;
  is.max_key = (1 << 8) - 1;
  is.iterations = 3;
  return is;
}

// --- topology spec grammar ----------------------------------------------

TEST(TopologySpec, ParsesKindsAndParameters) {
  net::TopologyConfig t;
  EXPECT_TRUE(net::parseTopologySpec("star", &t));
  EXPECT_EQ(t.kind, net::TopologyKind::kStar);

  EXPECT_TRUE(net::parseTopologySpec("fattree", &t));
  EXPECT_EQ(t.kind, net::TopologyKind::kFatTree);
  EXPECT_EQ(t.leaf_size, 16);

  EXPECT_TRUE(net::parseTopologySpec(
      "leafspine:leaf=8,spines=3,trunk-gbps=2.5,trunk-us=7", &t));
  EXPECT_EQ(t.kind, net::TopologyKind::kLeafSpine);
  EXPECT_EQ(t.leaf_size, 8);
  EXPECT_EQ(t.spines, 3);
  EXPECT_DOUBLE_EQ(t.trunk_bandwidth_bps, 2.5e9);
  EXPECT_EQ(t.trunk_latency, sim::usec(7));
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  net::TopologyConfig t;
  for (const char* bad :
       {"", "ring", "fattree:leaf=0", "fattree:leaf=-4", "fattree:leaf=",
        "leafspine:spines=x", "fattree:trunk-gbps=0", "fattree:unknown=1"}) {
    EXPECT_FALSE(net::parseTopologySpec(bad, &t)) << "spec '" << bad << "'";
  }
}

// Multi-switch lookahead: the conservative engine windows on the minimum
// per-hop latency, which trunk hops must never undercut silently.
TEST(TopologySpec, MinLatencyStaysPositiveOnTrunkFabrics) {
  net::NetConfig star;
  net::NetConfig fat;
  ASSERT_TRUE(net::parseTopologySpec("fattree:leaf=4,trunk-us=2",
                                     &fat.topology));
  EXPECT_GT(fat.minLatency(), 0);
  EXPECT_LE(fat.minLatency(), star.minLatency());
}

// --- star byte-identity --------------------------------------------------

TEST(Topology, DefaultAndExplicitStarAreByteIdentical) {
  const apps::IsParams is = smallIs();
  RunConfig implied;
  implied.protocol = dsm::Protocol::kVcSd;
  implied.nprocs = 8;

  RunConfig spelled = implied;
  ASSERT_TRUE(net::parseTopologySpec("star", &spelled.net.topology));

  expectResultEq(apps::runIs(implied, is, apps::IsVariant::kVopp).result,
                 apps::runIs(spelled, is, apps::IsVariant::kVopp).result,
                 "star implied vs spelled");
}

// --- barrier algorithm result-equivalence --------------------------------

// Every barrier algorithm must produce the same app answer (serial
// reference checksum) and the same barrier count; only timing and traffic
// may differ.
TEST(BarrierAlg, IsChecksumsMatchSerialUnderEveryAlgorithm) {
  const apps::IsParams is = smallIs();
  const auto ref = apps::isSerialRankSums(is, 8);
  for (auto alg : {dsm::BarrierAlg::kCentral, dsm::BarrierAlg::kTree,
                   dsm::BarrierAlg::kButterfly}) {
    for (auto [proto, variant] :
         {std::pair{dsm::Protocol::kLrcDiff, apps::IsVariant::kTraditional},
          std::pair{dsm::Protocol::kVcSd, apps::IsVariant::kVopp}}) {
      RunConfig c;
      c.protocol = proto;
      c.nprocs = 8;
      c.proto.barrier = alg;
      const auto run = apps::runIs(c, is, variant);
      EXPECT_EQ(run.rank_sums, ref)
          << "alg=" << static_cast<int>(alg)
          << " proto=" << static_cast<int>(proto);
    }
  }
}

TEST(BarrierAlg, GaussSorNnChecksumsMatchSerialUnderEveryAlgorithm) {
  apps::GaussParams gauss;
  gauss.n = 64;
  apps::SorParams sor;
  sor.rows = 64;
  sor.cols = 64;
  sor.iterations = 3;
  apps::NnParams nn;
  nn.samples = 64;
  nn.epochs = 3;

  const double gauss_ref = apps::gaussSerialChecksum(gauss);
  const double sor_ref = apps::sorSerialChecksum(sor);
  const double nn_ref = apps::nnSerialChecksum(nn, 8);

  for (auto alg : {dsm::BarrierAlg::kCentral, dsm::BarrierAlg::kTree,
                   dsm::BarrierAlg::kButterfly}) {
    RunConfig c;
    c.nprocs = 8;
    c.proto.barrier = alg;

    c.protocol = dsm::Protocol::kVcSd;
    EXPECT_EQ(apps::runGauss(c, gauss, apps::GaussVariant::kVopp).checksum,
              gauss_ref)
        << "gauss alg=" << static_cast<int>(alg);
    EXPECT_EQ(apps::runNn(c, nn, apps::NnVariant::kVopp).checksum, nn_ref)
        << "nn alg=" << static_cast<int>(alg);

    c.protocol = dsm::Protocol::kLrcDiff;
    EXPECT_EQ(
        apps::runSor(c, sor, apps::SorVariant::kTraditional).checksum,
        sor_ref)
        << "sor alg=" << static_cast<int>(alg);
  }
}

TEST(BarrierAlg, BarrierCountIsAlgorithmIndependent) {
  const apps::IsParams is = smallIs();
  RunConfig c;
  c.protocol = dsm::Protocol::kVcSd;
  c.nprocs = 8;
  const auto central = apps::runIs(c, is, apps::IsVariant::kVopp).result;
  for (auto alg : {dsm::BarrierAlg::kTree, dsm::BarrierAlg::kButterfly}) {
    c.proto.barrier = alg;
    const auto r = apps::runIs(c, is, apps::IsVariant::kVopp).result;
    EXPECT_EQ(r.dsm.barriers, central.dsm.barriers)
        << "alg=" << static_cast<int>(alg);
  }
}

// --- sharded / migrating view directory ----------------------------------

TEST(ViewHomes, IsChecksumsMatchSerialUnderEveryPolicy) {
  const apps::IsParams is = smallIs();
  const auto ref = apps::isSerialRankSums(is, 8);
  for (auto homes : {dsm::ViewHomes::kDefault, dsm::ViewHomes::kHashed,
                     dsm::ViewHomes::kMigrate}) {
    RunConfig c;
    c.protocol = dsm::Protocol::kVcSd;
    c.nprocs = 8;
    c.proto.view_homes = homes;
    EXPECT_EQ(apps::runIs(c, is, apps::IsVariant::kVopp).rank_sums, ref)
        << "homes=" << static_cast<int>(homes);
  }
}

// --- multi-switch determinism --------------------------------------------

// The whole point of publishing a conservative minLatency for trunk hops:
// every engine schedule must replay multi-switch runs bit-identically.
TEST(Topology, MultiSwitchRunsAreBitIdenticalAcrossSimThreads) {
  const apps::IsParams is = smallIs();
  for (const char* spec : {"fattree:leaf=4", "leafspine:leaf=4,spines=2"}) {
    RunConfig base;
    base.protocol = dsm::Protocol::kVcSd;
    base.nprocs = 8;
    base.proto.barrier = dsm::BarrierAlg::kTree;
    base.proto.view_homes = dsm::ViewHomes::kHashed;
    ASSERT_TRUE(net::parseTopologySpec(spec, &base.net.topology));
    base.sim_threads = 1;
    const auto ref = apps::runIs(base, is, apps::IsVariant::kVopp).result;
    for (int threads : {2, 4, 8}) {
      RunConfig c = base;
      c.sim_threads = threads;
      expectResultEq(ref, apps::runIs(c, is, apps::IsVariant::kVopp).result,
                     std::string(spec) + " sim_threads=" +
                         std::to_string(threads));
    }
  }
}

// Cross-leaf traffic really takes the trunks: a fat tree with every node on
// one leaf is wire-identical to the star, and splitting nodes across leaves
// must route frames over trunk links (visible in the trunk counters).
TEST(Topology, CrossLeafTrafficUsesTrunks) {
  const apps::IsParams is = smallIs();
  RunConfig one_leaf;
  one_leaf.protocol = dsm::Protocol::kVcSd;
  one_leaf.nprocs = 8;
  ASSERT_TRUE(net::parseTopologySpec("fattree:leaf=8",
                                     &one_leaf.net.topology));

  RunConfig star;
  star.protocol = dsm::Protocol::kVcSd;
  star.nprocs = 8;

  expectResultEq(apps::runIs(star, is, apps::IsVariant::kVopp).result,
                 apps::runIs(one_leaf, is, apps::IsVariant::kVopp).result,
                 "single-leaf fat tree vs star");

  RunConfig split = star;
  ASSERT_TRUE(net::parseTopologySpec("fattree:leaf=4", &split.net.topology));
  const auto split_run = apps::runIs(split, is, apps::IsVariant::kVopp);
  EXPECT_EQ(split_run.rank_sums, apps::isSerialRankSums(is, 8));
  // Cross-leaf serialization slows the run relative to the one-big-switch
  // star; equality would mean the trunks were bypassed.
  EXPECT_GT(split_run.result.seconds,
            apps::runIs(star, is, apps::IsVariant::kVopp).result.seconds);
}

}  // namespace
}  // namespace vodsm
