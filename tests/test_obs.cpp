// Observability invariants: tracing must be a pure observer.
//
//  * A traced run is bit-identical to an untraced run (same config/seed).
//  * The recorded event stream and the folded breakdown are bit-identical
//    across repeated runs and across host-thread interleavings.
//  * Spans nest properly per node and the time buckets partition each
//    node's run time exactly.
//  * Per-kind network counters sum to the global counters exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run.hpp"
#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;

apps::IsParams smallIs() {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = (1 << 8) - 1;
  p.iterations = 3;
  return p;
}

RunConfig smallConfig(dsm::Protocol proto) {
  RunConfig c;
  c.protocol = proto;
  c.nprocs = 4;
  return c;
}

apps::IsVariant variantFor(dsm::Protocol proto) {
  return proto == dsm::Protocol::kLrcDiff ? apps::IsVariant::kTraditional
                                          : apps::IsVariant::kVopp;
}

struct TracedRun {
  RunResult result;
  std::vector<obs::Event> events;
};

TracedRun runTracedIs(RunConfig c) {
  obs::TraceRecorder rec;
  c.trace = &rec;
  RunResult r = apps::runIs(c, smallIs(), variantFor(c.protocol)).result;
  return {r, rec.events()};
}

void expectSameSimResult(const RunResult& a, const RunResult& b,
                         const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.dsm.barriers, b.dsm.barriers) << what;
  EXPECT_EQ(a.dsm.acquires, b.dsm.acquires) << what;
  EXPECT_EQ(a.dsm.page_faults, b.dsm.page_faults) << what;
  EXPECT_EQ(a.dsm.diffs_created, b.dsm.diffs_created) << what;
  EXPECT_EQ(a.dsm.barrier_wait_total, b.dsm.barrier_wait_total) << what;
  EXPECT_EQ(a.dsm.acquire_wait_total, b.dsm.acquire_wait_total) << what;
  EXPECT_EQ(a.net.messages, b.net.messages) << what;
  EXPECT_EQ(a.net.payload_bytes, b.net.payload_bytes) << what;
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions) << what;
}

bool sameEvents(const std::vector<obs::Event>& a,
                const std::vector<obs::Event>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(obs::Event)) == 0);
}

const std::vector<dsm::Protocol> kAllProtocols = {
    dsm::Protocol::kLrcDiff, dsm::Protocol::kVcDiff, dsm::Protocol::kVcSd};

TEST(Obs, TracedRunMatchesUntracedRun) {
  for (auto proto : kAllProtocols) {
    RunConfig c = smallConfig(proto);
    RunResult untraced =
        apps::runIs(c, smallIs(), variantFor(proto)).result;
    TracedRun traced = runTracedIs(c);
    expectSameSimResult(untraced, traced.result, "traced vs untraced");
    EXPECT_FALSE(untraced.breakdown.enabled());
    EXPECT_TRUE(traced.result.breakdown.enabled());
    EXPECT_FALSE(traced.events.empty());
  }
}

TEST(Obs, TraceIsBitIdenticalAcrossRuns) {
  for (auto proto : kAllProtocols) {
    TracedRun first = runTracedIs(smallConfig(proto));
    TracedRun second = runTracedIs(smallConfig(proto));
    expectSameSimResult(first.result, second.result, "repeat");
    EXPECT_TRUE(sameEvents(first.events, second.events));
  }
}

TEST(Obs, TraceIsIndependentOfHostThreading) {
  // Same cells as a traced parallel sweep: each cell owns its recorder, so
  // host-thread interleaving must not leak into any event stream.
  std::vector<std::function<TracedRun()>> cells;
  for (auto proto : kAllProtocols)
    cells.push_back([proto] { return runTracedIs(smallConfig(proto)); });

  auto serial = harness::runAll(cells, /*jobs=*/1);
  auto parallel = harness::runAll(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    expectSameSimResult(serial[i].result, parallel[i].result, "jobs");
    EXPECT_TRUE(sameEvents(serial[i].events, parallel[i].events));
  }
}

TEST(Obs, SpansNestPerNode) {
  TracedRun run = runTracedIs(smallConfig(dsm::Protocol::kVcSd));
  // Per-node stack check: every end matches the innermost open begin of the
  // same category, and spans never run backwards in simulated time.
  std::map<uint32_t, std::vector<const obs::Event*>> open;
  for (const obs::Event& e : run.events) {
    if (e.phase == obs::Phase::kBegin) {
      open[e.node].push_back(&e);
    } else if (e.phase == obs::Phase::kEnd) {
      auto& stack = open[e.node];
      ASSERT_FALSE(stack.empty()) << "end without begin";
      EXPECT_EQ(stack.back()->cat, e.cat) << "mismatched span nesting";
      EXPECT_LE(stack.back()->ts, e.ts) << "span ends before it begins";
      stack.pop_back();
    }
  }
  for (auto& [node, stack] : open)
    EXPECT_TRUE(stack.empty()) << "unterminated span on node " << node;
}

TEST(Obs, BucketsPartitionRunTime) {
  for (auto proto : kAllProtocols) {
    TracedRun run = runTracedIs(smallConfig(proto));
    const obs::Breakdown& b = run.result.breakdown;
    ASSERT_TRUE(b.enabled());
    ASSERT_EQ(b.nodes.size(), 4u);
    EXPECT_EQ(sim::toSeconds(b.run_time), run.result.seconds);
    obs::BucketSet sum;
    for (const obs::BucketSet& n : b.nodes) {
      // The five buckets partition this node's time exactly.
      EXPECT_EQ(n.total(), b.run_time);
      EXPECT_GE(n.compute, 0);
      EXPECT_GE(n.idle, 0);
      sum.add(n);
    }
    EXPECT_EQ(sum.compute, b.aggregate.compute);
    EXPECT_EQ(sum.barrier_wait, b.aggregate.barrier_wait);
    EXPECT_EQ(sum.acquire_wait, b.aggregate.acquire_wait);
    EXPECT_EQ(sum.fault_diff, b.aggregate.fault_diff);
    EXPECT_EQ(sum.idle, b.aggregate.idle);
    EXPECT_GT(b.aggregate.compute, 0);
  }
}

TEST(Obs, BreakdownSeesProtocolDifferences) {
  // LRC_d synchronizes through barriers (traditional IS), VC_sd through
  // view acquires; the breakdown must attribute the wait accordingly.
  TracedRun lrc = runTracedIs(smallConfig(dsm::Protocol::kLrcDiff));
  TracedRun vcsd = runTracedIs(smallConfig(dsm::Protocol::kVcSd));
  EXPECT_GT(lrc.result.breakdown.aggregate.barrier_wait, 0);
  EXPECT_EQ(lrc.result.breakdown.aggregate.acquire_wait, 0);
  EXPECT_GT(vcsd.result.breakdown.aggregate.acquire_wait, 0);
}

TEST(Obs, MpiRunsAreNotTraced) {
  apps::NnParams p;
  p.samples = 64;
  p.epochs = 2;
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  obs::TraceRecorder rec;
  obs::MetricsRegistry reg{sim::usec(100)};
  c.trace = &rec;
  c.metrics = &reg;
  RunResult r = apps::runNn(c, p, apps::NnVariant::kMpi).result;
  // NN/MPI runs in the message-passing world, not through the DSM cluster:
  // no trace, no breakdown, no metrics.
  EXPECT_FALSE(r.breakdown.enabled());
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_FALSE(r.metrics.enabled());
  EXPECT_TRUE(reg.samples().empty());
}

TEST(Obs, PerKindStatsSumToGlobals) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  // Lossy network so the per-kind retransmission attribution is exercised.
  c.net.random_loss = 0.02;
  c.net.rto = sim::msec(20);
  RunResult r = apps::runIs(c, smallIs(), apps::IsVariant::kVopp).result;

  uint64_t messages = 0, payload = 0, rexmit = 0;
  for (int k = 0; k < net::kMsgClassCount; ++k) {
    messages += r.net.kind[k].messages;
    payload += r.net.kind[k].payload_bytes;
    rexmit += r.net.kind[k].retransmissions;
  }
  EXPECT_EQ(messages, r.net.messages);
  EXPECT_EQ(payload, r.net.payload_bytes);
  EXPECT_EQ(rexmit, r.net.retransmissions);
  EXPECT_GT(rexmit, 0u) << "lossy run should retransmit";
  // IS under VC_sd moves its data through view grants.
  EXPECT_GT(r.net.of(net::MsgClass::kGrant).payload_bytes, 0u);
  EXPECT_GT(r.net.of(net::MsgClass::kBarrier).messages, 0u);
}

TEST(Obs, CriticalPathOnHandCraftedStream) {
  // Two nodes, known longest chain. All times in microseconds:
  //   node 0: program [0,100], fault page 3 [50,60], barrier_wait [70,95];
  //           grant (view 7 -> node 1) at 25; barrier folds at 72 and 73.
  //   node 1: program [0,85], acquire_wait view 7 [10,40],
  //           barrier_wait [60,85].
  // The walk starts at node 0's finish (makespan 100): compute (95,100],
  // barrier_release from the releasing fold at 73 to the wait end at 95,
  // then local time (0,73] = compute 50 + fault 10 + compute 10 +
  // barrier_wait 3. Exact per-category expectations below.
  obs::TraceRecorder rec;
  auto us = [](int64_t n) { return sim::usec(n); };
  rec.begin(0, obs::Cat::kProgram, us(0));
  rec.begin(1, obs::Cat::kProgram, us(0));
  rec.begin(1, obs::Cat::kAcquireWait, us(10), /*id=*/7);
  rec.instant(0, obs::Cat::kGrant, us(25), /*id=*/7, /*requester=*/1);
  rec.end(1, obs::Cat::kAcquireWait, us(40), 7);
  rec.begin(0, obs::Cat::kFault, us(50), /*page=*/3);
  rec.end(0, obs::Cat::kFault, us(60), 3);
  rec.begin(1, obs::Cat::kBarrierWait, us(60), /*barrier=*/0);
  rec.begin(0, obs::Cat::kBarrierWait, us(70), 0);
  rec.instant(0, obs::Cat::kBarrFold, us(72), 0, /*notices=*/0);
  rec.instant(0, obs::Cat::kBarrFold, us(73), 0, 0);
  rec.end(1, obs::Cat::kBarrierWait, us(85), 0);
  rec.end(1, obs::Cat::kProgram, us(85));
  rec.end(0, obs::Cat::kBarrierWait, us(95), 0);
  rec.end(0, obs::Cat::kProgram, us(100));

  obs::EventGraph g = obs::buildEventGraph(rec, /*nprocs=*/2);
  EXPECT_EQ(g.waits_without_trigger, 0u);
  EXPECT_EQ(g.unmatched_spans, 0u);
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_EQ(g.nodes[0].program_end, us(100));
  ASSERT_EQ(g.nodes[1].waits.size(), 2u);
  // The acquire wait's wakeup edge is the grant instant on node 0.
  EXPECT_EQ(g.nodes[1].waits[0].trigger_node, 0u);
  EXPECT_EQ(g.nodes[1].waits[0].trigger_ts, us(25));
  // Both barrier waits were released by the episode's last fold (t=73).
  EXPECT_EQ(g.nodes[0].waits[0].trigger_ts, us(73));
  EXPECT_EQ(g.nodes[1].waits[1].trigger_ts, us(73));

  obs::CriticalPath cp = obs::computeCriticalPath(g, us(100));
  EXPECT_EQ(cp.makespan, us(100));
  EXPECT_EQ(cp.total(), us(100)) << "attributions must sum to the makespan";
  using PC = obs::PathCat;
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kCompute)], us(65));
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kFault)], us(10));
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kBarrierWait)], us(3));
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kBarrierRelease)], us(22));
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kAcquireWait)], 0);
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kGrantTransfer)], 0);
  EXPECT_EQ(cp.by_cat[static_cast<int>(PC::kDiffCreate)], 0);
  EXPECT_EQ(cp.hops, 1);
  // The whole path stays on node 0 (the fold that released the barrier was
  // recorded there too).
  ASSERT_EQ(cp.by_node.size(), 2u);
  EXPECT_EQ(cp.by_node[0], us(100));
  EXPECT_EQ(cp.by_node[1], 0);
  // Slices are sorted by critical nanoseconds, largest first.
  ASSERT_FALSE(cp.slices.empty());
  EXPECT_EQ(cp.slices[0].cat, PC::kCompute);
  EXPECT_EQ(cp.slices[0].nanos, us(65));
}

TEST(Obs, PageHeatFoldsKnownCounts) {
  obs::TraceRecorder rec;
  auto us = [](int64_t n) { return sim::usec(n); };
  // Two nodes fault page 5 concurrently; the spans must be matched per
  // (page, node), giving 10 + 15 microseconds of fault time.
  rec.begin(0, obs::Cat::kFault, us(10), /*page=*/5);
  rec.begin(1, obs::Cat::kFault, us(15), 5);
  rec.end(0, obs::Cat::kFault, us(20), 5);
  rec.end(1, obs::Cat::kFault, us(30), 5);
  rec.instant(0, obs::Cat::kTwin, us(11), 5);
  rec.instant(1, obs::Cat::kDiffApply, us(29), 5, /*bytes=*/256);
  rec.instant(0, obs::Cat::kNotice, us(40), 5, /*writer=*/1);
  rec.begin(1, obs::Cat::kFault, us(50), /*page=*/9);
  rec.end(1, obs::Cat::kFault, us(52), 9);

  obs::PageHeat heat = obs::foldPageHeat(rec);
  ASSERT_EQ(heat.rows.size(), 2u);
  const obs::PageHeatRow& p5 = heat.rows[0];
  EXPECT_EQ(p5.page, 5u);
  EXPECT_EQ(p5.faults, 2u);
  EXPECT_EQ(p5.fault_time, us(25));
  EXPECT_EQ(p5.twins, 1u);
  EXPECT_EQ(p5.diff_applies, 1u);
  EXPECT_EQ(p5.diff_bytes, 256u);
  EXPECT_EQ(p5.notices, 1u);
  EXPECT_EQ(p5.sharers, 2u);
  EXPECT_EQ(p5.writers, 1u);
  const obs::PageHeatRow& p9 = heat.rows[1];
  EXPECT_EQ(p9.page, 9u);
  EXPECT_EQ(p9.faults, 1u);
  EXPECT_EQ(p9.fault_time, us(2));
  EXPECT_EQ(p9.sharers, 1u);

  std::ostringstream csv;
  obs::writePageHeatCsv(csv, heat);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "page,faults,fault_seconds,twins,diff_applies,diff_bytes,"
            "notices,sharers,writers");
}

TEST(Obs, EventGraphIsCompleteOnRealRuns) {
  for (auto proto : kAllProtocols) {
    for (bool lossy : {false, true}) {
      RunConfig c = smallConfig(proto);
      if (lossy) {
        c.net.random_loss = 0.02;
        c.net.rto = sim::msec(20);
      }
      obs::TraceRecorder rec;
      c.trace = &rec;
      (void)apps::runIs(c, smallIs(), variantFor(proto));
      obs::EventGraph g = obs::buildEventGraph(rec, c.nprocs);
      const std::string what =
          std::string(lossy ? "lossy " : "") + "proto " +
          std::to_string(static_cast<int>(proto));
      // Every deliver has a matching send, every wait a wakeup edge, every
      // span a begin/end pair — even under loss and retransmission.
      EXPECT_EQ(g.delivers_without_send, 0u) << what;
      EXPECT_EQ(g.waits_without_trigger, 0u) << what;
      EXPECT_EQ(g.unmatched_spans, 0u) << what;
      EXPECT_FALSE(g.flows.empty()) << what;
      uint64_t delivered = 0, retransmitted = 0;
      for (const obs::Flow& f : g.flows) {
        EXPECT_NE(f.corr, obs::kNoCorr);
        EXPECT_GE(f.send, 0) << what;
        if (f.deliver >= 0) delivered++;
        retransmitted += f.retransmits;
      }
      EXPECT_GT(delivered, 0u) << what;
      if (lossy) {
        EXPECT_GT(retransmitted, 0u) << what;
      }
    }
  }
}

TEST(Obs, CriticalPathSumsToMakespanOnRealRuns) {
  for (auto proto : kAllProtocols) {
    RunConfig c = smallConfig(proto);
    obs::TraceRecorder rec;
    c.trace = &rec;
    c.critpath = true;
    c.pageheat = true;
    RunResult r = apps::runIs(c, smallIs(), variantFor(proto)).result;
    const obs::CriticalPath& cp = r.critpath;
    ASSERT_TRUE(cp.enabled());
    // The partition invariant: per-category and per-node attributions both
    // sum to the makespan to the nanosecond.
    EXPECT_EQ(cp.total(), cp.makespan);
    sim::Time node_sum = 0;
    for (sim::Time t : cp.by_node) node_sum += t;
    EXPECT_EQ(node_sum, cp.makespan);
    sim::Time slice_sum = 0;
    for (const obs::PathSlice& s : cp.slices) slice_sum += s.nanos;
    EXPECT_EQ(slice_sum, cp.makespan);
    EXPECT_EQ(sim::toSeconds(cp.makespan), r.seconds);
    EXPECT_GT(cp.by_cat[static_cast<int>(obs::PathCat::kCompute)], 0);
    EXPECT_TRUE(r.pageheat.enabled());
    EXPECT_FALSE(r.pageheat.rows.empty());
  }
}

TEST(Obs, CriticalPathOutputIndependentOfHostThreading) {
  // The rendered report — category table, slice order, every digit — must
  // not depend on how many host threads ran the cells.
  std::vector<std::function<std::string()>> cells;
  for (auto proto : kAllProtocols)
    cells.push_back([proto] {
      RunConfig c = smallConfig(proto);
      obs::TraceRecorder rec;
      c.trace = &rec;
      c.critpath = true;
      RunResult r = apps::runIs(c, smallIs(), variantFor(proto)).result;
      std::ostringstream os;
      obs::printCriticalPath(os, r.critpath, "cp");
      return os.str();
    });
  auto serial = harness::runAll(cells, /*jobs=*/1);
  auto parallel = harness::runAll(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]);
}

TEST(Obs, DropAttributionSumsToFrameCounters) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  c.net.random_loss = 0.05;
  c.net.rto = sim::msec(20);
  RunResult r = apps::runIs(c, smallIs(), apps::IsVariant::kVopp).result;
  uint64_t class_drops = 0;
  for (int k = 0; k < net::kMsgClassCount; ++k)
    class_drops += r.net.kind[k].drops;
  EXPECT_EQ(class_drops + r.net.ack_drops,
            r.net.frames_dropped_overflow + r.net.frames_dropped_random +
                r.net.frames_dropped_fault);
  EXPECT_GT(class_drops + r.net.ack_drops, 0u) << "lossy run should drop";
}

TEST(Obs, ChromeTraceExportIsDeterministic) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  obs::TraceRecorder live;
  c.trace = &live;
  (void)apps::runIs(c, smallIs(), apps::IsVariant::kVopp);

  std::ostringstream a, b;
  obs::writeChromeTrace(a, live);
  obs::writeChromeTrace(b, live);
  EXPECT_EQ(a.str(), b.str());
  const std::string& s = a.str();
  EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"acquire_view\""), std::string::npos);
  EXPECT_NE(s.find("\"barrier_wait\""), std::string::npos);
  // Wire events carry flow bindings so the viewer draws send->deliver
  // arrows; sends originate the flow, delivers terminate it.
  EXPECT_NE(s.find("\"bind_id\""), std::string::npos);
  EXPECT_NE(s.find("\"flow_out\":true"), std::string::npos);
  EXPECT_NE(s.find("\"flow_in\":true"), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 3), "]}\n");
}

// ---- counter/gauge metrics (obs/metrics.hpp) ----

using M = obs::Metric;

int64_t finalOf(const obs::MetricsSummary& s, uint32_t node, M m) {
  for (const auto& row : s.rows)
    if (row.node == node && row.metric == m) return row.final_value;
  return 0;
}

RunResult runMeteredIs(RunConfig c, obs::MetricsRegistry* reg) {
  c.metrics = reg;
  return apps::runIs(c, smallIs(), variantFor(c.protocol)).result;
}

TEST(Metrics, RegistryAccountsPeaksFinalsAndMeans) {
  obs::MetricsRegistry reg;  // interval 0: no sampler, aggregates only
  // Node 0 holds 10 over [0, 100) ns then 4 over [100, 200); node 1 holds
  // 3 from t=50 on.
  reg.add(0, M::kTwinBytes, 10, 0);
  reg.add(0, M::kTwinBytes, -6, 100);
  reg.add(1, M::kTwinBytes, 3, 50);
  reg.closeRun(/*nprocs=*/2, /*finish=*/200);
  obs::MetricsSummary s = reg.summary();
  ASSERT_TRUE(s.enabled());
  EXPECT_EQ(s.maxPeak(M::kTwinBytes), 10);
  EXPECT_EQ(s.totalFinal(M::kTwinBytes), 7);
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_EQ(s.rows[0].node, 0u);
  EXPECT_EQ(s.rows[0].peak, 10);
  EXPECT_EQ(s.rows[0].peak_ts, 0);
  EXPECT_EQ(s.rows[0].final_value, 4);
  EXPECT_DOUBLE_EQ(s.rows[0].mean, (10.0 * 100 + 4.0 * 100) / 200.0);
  EXPECT_DOUBLE_EQ(s.rows[1].mean, 3.0 * 150 / 200.0);
  EXPECT_TRUE(reg.samples().empty());
}

TEST(Metrics, MeteredRunMatchesUnmeteredRun) {
  // The tentpole invariant: metering — including the engine-driven sampler
  // — must leave every simulated figure bit-identical.
  for (auto proto : kAllProtocols) {
    RunConfig c = smallConfig(proto);
    RunResult plain = apps::runIs(c, smallIs(), variantFor(proto)).result;
    obs::MetricsRegistry reg{sim::usec(200)};
    RunResult metered = runMeteredIs(c, &reg);
    expectSameSimResult(plain, metered, "metered vs unmetered");
    EXPECT_FALSE(plain.metrics.enabled());
    ASSERT_TRUE(metered.metrics.enabled());
    EXPECT_FALSE(reg.samples().empty());
    EXPECT_GT(metered.metrics.maxPeak(M::kTwinBytes), 0);
    // Metering composes with tracing without disturbing either.
    obs::TraceRecorder rec;
    obs::MetricsRegistry reg2{sim::usec(200)};
    RunConfig c2 = c;
    c2.trace = &rec;
    RunResult both = runMeteredIs(c2, &reg2);
    expectSameSimResult(plain, both, "traced+metered vs plain");
    EXPECT_FALSE(rec.events().empty());
  }
}

TEST(Metrics, ConservationInvariantsOnRealRuns) {
  // Every app ends with a barrier/release, so all twins must be reclaimed;
  // the engine drains, so no bytes remain queued or in flight.
  struct Case {
    const char* name;
    std::function<RunResult(RunConfig&)> run;
  };
  std::vector<Case> cases = {
      {"is", [](RunConfig& c) {
         return apps::runIs(c, smallIs(), apps::IsVariant::kVopp).result;
       }},
      {"gauss", [](RunConfig& c) {
         apps::GaussParams p;
         p.n = 64;
         return apps::runGauss(c, p, apps::GaussVariant::kVopp).result;
       }},
      {"sor", [](RunConfig& c) {
         apps::SorParams p;
         p.rows = 64;
         p.cols = 48;
         p.iterations = 4;
         return apps::runSor(c, p, apps::SorVariant::kVopp).result;
       }},
      {"nn", [](RunConfig& c) {
         apps::NnParams p;
         p.samples = 64;
         p.epochs = 2;
         return apps::runNn(c, p, apps::NnVariant::kVopp).result;
       }},
  };
  for (const Case& app : cases) {
    for (auto proto : {dsm::Protocol::kVcDiff, dsm::Protocol::kVcSd}) {
      RunConfig c = smallConfig(proto);
      obs::MetricsRegistry reg{sim::usec(200)};
      c.metrics = &reg;
      RunResult r = app.run(c);
      ASSERT_TRUE(r.metrics.enabled()) << app.name;
      for (int node = 0; node < c.nprocs; ++node) {
        const uint32_t n = static_cast<uint32_t>(node);
        EXPECT_EQ(finalOf(r.metrics, n, M::kTwinBytes), 0)
            << app.name << " node " << node << ": live twins after the run";
        EXPECT_EQ(finalOf(r.metrics, n, M::kRxQueueBytes), 0) << app.name;
        EXPECT_EQ(finalOf(r.metrics, n, M::kRxQueueFrames), 0) << app.name;
        EXPECT_EQ(finalOf(r.metrics, n, M::kInflightBytes), 0) << app.name;
      }
      EXPECT_EQ(r.metrics.totalFinal(M::kFrameDrops),
                static_cast<int64_t>(r.net.frames_dropped_overflow +
                                     r.net.frames_dropped_random +
                                     r.net.frames_dropped_fault))
          << app.name;
      EXPECT_GT(r.metrics.totalFinal(M::kDiffsCreated), 0) << app.name;
      EXPECT_GT(r.metrics.totalFinal(M::kTwinReclaimBytes), 0) << app.name;
    }
  }
  // The traditional-IS LRC path exercises lock-interval twins.
  RunConfig c = smallConfig(dsm::Protocol::kLrcDiff);
  obs::MetricsRegistry reg{sim::usec(200)};
  RunResult r = runMeteredIs(c, &reg);
  for (int node = 0; node < c.nprocs; ++node)
    EXPECT_EQ(finalOf(r.metrics, static_cast<uint32_t>(node), M::kTwinBytes),
              0);
}

TEST(Metrics, DropCounterMatchesNetStatsOnLossyRuns) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  c.net.random_loss = 0.05;
  c.net.rto = sim::msec(20);
  obs::MetricsRegistry reg{sim::usec(200)};
  RunResult r = runMeteredIs(c, &reg);
  const int64_t dropped = static_cast<int64_t>(r.net.frames_dropped_overflow +
                                               r.net.frames_dropped_random +
                                               r.net.frames_dropped_fault);
  EXPECT_GT(dropped, 0) << "lossy run should drop frames";
  EXPECT_EQ(r.metrics.totalFinal(M::kFrameDrops), dropped);
  // Dropped frames left the sender's in-flight gauge too.
  for (int node = 0; node < c.nprocs; ++node)
    EXPECT_EQ(finalOf(r.metrics, static_cast<uint32_t>(node),
                      M::kInflightBytes),
              0);
}

TEST(Metrics, SdHomeGcBoundsDiffStorage) {
  // The paper's memory argument: LRC_d retains every diff it ever made,
  // while the VC_sd home folds superseded versions into one base diff per
  // page. Same app, same size — VC_sd's high-water mark must be lower and
  // its GC must actually reclaim.
  obs::MetricsRegistry lrc_reg;
  RunResult lrc =
      runMeteredIs(smallConfig(dsm::Protocol::kLrcDiff), &lrc_reg);
  obs::MetricsRegistry sd_reg;
  RunResult sd = runMeteredIs(smallConfig(dsm::Protocol::kVcSd), &sd_reg);
  EXPECT_LT(sd.metrics.maxPeak(M::kDiffStoreBytes),
            lrc.metrics.maxPeak(M::kDiffStoreBytes));
  EXPECT_GT(sd.metrics.totalFinal(M::kDiffReclaimBytes), 0);
  EXPECT_EQ(lrc.metrics.totalFinal(M::kDiffReclaimBytes), 0);
  // Retained + reclaimed can never exceed what the store ever accumulated
  // at peak times the node count, but retained alone must sit below LRC's.
  EXPECT_LT(sd.metrics.totalFinal(M::kDiffStoreBytes),
            lrc.metrics.totalFinal(M::kDiffStoreBytes));
}

TEST(Metrics, CsvAndMemstatsDeterministicAcrossHostThreads) {
  // The rendered CSV and summary table — every digit — must not depend on
  // how many host threads ran the cells.
  std::vector<std::function<std::string()>> cells;
  for (auto proto : kAllProtocols)
    cells.push_back([proto] {
      RunConfig c = smallConfig(proto);
      obs::MetricsRegistry reg{sim::usec(200)};
      RunResult r = runMeteredIs(c, &reg);
      std::ostringstream os;
      obs::writeMetricsCsv(os, reg);
      obs::printMemstats(os, r.metrics, "memstats");
      return os.str();
    });
  auto serial = harness::runAll(cells, /*jobs=*/1);
  auto parallel = harness::runAll(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);
    EXPECT_EQ(serial[i].rfind("t_seconds,node,metric,value\n", 0), 0u);
  }
}

TEST(Metrics, ChromeTraceGainsCounterTracks) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  obs::TraceRecorder rec;
  obs::MetricsRegistry reg{sim::usec(200)};
  c.trace = &rec;
  c.metrics = &reg;
  (void)apps::runIs(c, smallIs(), apps::IsVariant::kVopp);

  std::ostringstream with, without;
  obs::writeChromeTrace(with, rec, &reg);
  obs::writeChromeTrace(without, rec);
  const std::string& s = with.str();
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(s.find("\"dsm.twin_bytes\""), std::string::npos);
  EXPECT_NE(s.find("\"net.inflight_bytes\""), std::string::npos);
  EXPECT_EQ(without.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 3), "]}\n");
}

}  // namespace
}  // namespace vodsm
