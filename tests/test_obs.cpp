// Observability invariants: tracing must be a pure observer.
//
//  * A traced run is bit-identical to an untraced run (same config/seed).
//  * The recorded event stream and the folded breakdown are bit-identical
//    across repeated runs and across host-thread interleavings.
//  * Spans nest properly per node and the time buckets partition each
//    node's run time exactly.
//  * Per-kind network counters sum to the global counters exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run.hpp"
#include "obs/breakdown.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"

namespace vodsm {
namespace {

using harness::RunConfig;
using harness::RunResult;

apps::IsParams smallIs() {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = (1 << 8) - 1;
  p.iterations = 3;
  return p;
}

RunConfig smallConfig(dsm::Protocol proto) {
  RunConfig c;
  c.protocol = proto;
  c.nprocs = 4;
  return c;
}

apps::IsVariant variantFor(dsm::Protocol proto) {
  return proto == dsm::Protocol::kLrcDiff ? apps::IsVariant::kTraditional
                                          : apps::IsVariant::kVopp;
}

struct TracedRun {
  RunResult result;
  std::vector<obs::Event> events;
};

TracedRun runTracedIs(RunConfig c) {
  obs::TraceRecorder rec;
  c.trace = &rec;
  RunResult r = apps::runIs(c, smallIs(), variantFor(c.protocol)).result;
  return {r, rec.events()};
}

void expectSameSimResult(const RunResult& a, const RunResult& b,
                         const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.dsm.barriers, b.dsm.barriers) << what;
  EXPECT_EQ(a.dsm.acquires, b.dsm.acquires) << what;
  EXPECT_EQ(a.dsm.page_faults, b.dsm.page_faults) << what;
  EXPECT_EQ(a.dsm.diffs_created, b.dsm.diffs_created) << what;
  EXPECT_EQ(a.dsm.barrier_wait_total, b.dsm.barrier_wait_total) << what;
  EXPECT_EQ(a.dsm.acquire_wait_total, b.dsm.acquire_wait_total) << what;
  EXPECT_EQ(a.net.messages, b.net.messages) << what;
  EXPECT_EQ(a.net.payload_bytes, b.net.payload_bytes) << what;
  EXPECT_EQ(a.net.retransmissions, b.net.retransmissions) << what;
}

bool sameEvents(const std::vector<obs::Event>& a,
                const std::vector<obs::Event>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(obs::Event)) == 0);
}

const std::vector<dsm::Protocol> kAllProtocols = {
    dsm::Protocol::kLrcDiff, dsm::Protocol::kVcDiff, dsm::Protocol::kVcSd};

TEST(Obs, TracedRunMatchesUntracedRun) {
  for (auto proto : kAllProtocols) {
    RunConfig c = smallConfig(proto);
    RunResult untraced =
        apps::runIs(c, smallIs(), variantFor(proto)).result;
    TracedRun traced = runTracedIs(c);
    expectSameSimResult(untraced, traced.result, "traced vs untraced");
    EXPECT_FALSE(untraced.breakdown.enabled());
    EXPECT_TRUE(traced.result.breakdown.enabled());
    EXPECT_FALSE(traced.events.empty());
  }
}

TEST(Obs, TraceIsBitIdenticalAcrossRuns) {
  for (auto proto : kAllProtocols) {
    TracedRun first = runTracedIs(smallConfig(proto));
    TracedRun second = runTracedIs(smallConfig(proto));
    expectSameSimResult(first.result, second.result, "repeat");
    EXPECT_TRUE(sameEvents(first.events, second.events));
  }
}

TEST(Obs, TraceIsIndependentOfHostThreading) {
  // Same cells as a traced parallel sweep: each cell owns its recorder, so
  // host-thread interleaving must not leak into any event stream.
  std::vector<std::function<TracedRun()>> cells;
  for (auto proto : kAllProtocols)
    cells.push_back([proto] { return runTracedIs(smallConfig(proto)); });

  auto serial = harness::runAll(cells, /*jobs=*/1);
  auto parallel = harness::runAll(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    expectSameSimResult(serial[i].result, parallel[i].result, "jobs");
    EXPECT_TRUE(sameEvents(serial[i].events, parallel[i].events));
  }
}

TEST(Obs, SpansNestPerNode) {
  TracedRun run = runTracedIs(smallConfig(dsm::Protocol::kVcSd));
  // Per-node stack check: every end matches the innermost open begin of the
  // same category, and spans never run backwards in simulated time.
  std::map<uint32_t, std::vector<const obs::Event*>> open;
  for (const obs::Event& e : run.events) {
    if (e.phase == obs::Phase::kBegin) {
      open[e.node].push_back(&e);
    } else if (e.phase == obs::Phase::kEnd) {
      auto& stack = open[e.node];
      ASSERT_FALSE(stack.empty()) << "end without begin";
      EXPECT_EQ(stack.back()->cat, e.cat) << "mismatched span nesting";
      EXPECT_LE(stack.back()->ts, e.ts) << "span ends before it begins";
      stack.pop_back();
    }
  }
  for (auto& [node, stack] : open)
    EXPECT_TRUE(stack.empty()) << "unterminated span on node " << node;
}

TEST(Obs, BucketsPartitionRunTime) {
  for (auto proto : kAllProtocols) {
    TracedRun run = runTracedIs(smallConfig(proto));
    const obs::Breakdown& b = run.result.breakdown;
    ASSERT_TRUE(b.enabled());
    ASSERT_EQ(b.nodes.size(), 4u);
    EXPECT_EQ(sim::toSeconds(b.run_time), run.result.seconds);
    obs::BucketSet sum;
    for (const obs::BucketSet& n : b.nodes) {
      // The five buckets partition this node's time exactly.
      EXPECT_EQ(n.total(), b.run_time);
      EXPECT_GE(n.compute, 0);
      EXPECT_GE(n.idle, 0);
      sum.add(n);
    }
    EXPECT_EQ(sum.compute, b.aggregate.compute);
    EXPECT_EQ(sum.barrier_wait, b.aggregate.barrier_wait);
    EXPECT_EQ(sum.acquire_wait, b.aggregate.acquire_wait);
    EXPECT_EQ(sum.fault_diff, b.aggregate.fault_diff);
    EXPECT_EQ(sum.idle, b.aggregate.idle);
    EXPECT_GT(b.aggregate.compute, 0);
  }
}

TEST(Obs, BreakdownSeesProtocolDifferences) {
  // LRC_d synchronizes through barriers (traditional IS), VC_sd through
  // view acquires; the breakdown must attribute the wait accordingly.
  TracedRun lrc = runTracedIs(smallConfig(dsm::Protocol::kLrcDiff));
  TracedRun vcsd = runTracedIs(smallConfig(dsm::Protocol::kVcSd));
  EXPECT_GT(lrc.result.breakdown.aggregate.barrier_wait, 0);
  EXPECT_EQ(lrc.result.breakdown.aggregate.acquire_wait, 0);
  EXPECT_GT(vcsd.result.breakdown.aggregate.acquire_wait, 0);
}

TEST(Obs, MpiRunsAreNotTraced) {
  apps::NnParams p;
  p.samples = 64;
  p.epochs = 2;
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  obs::TraceRecorder rec;
  c.trace = &rec;
  RunResult r = apps::runNn(c, p, apps::NnVariant::kMpi).result;
  // NN/MPI runs in the message-passing world, not through the DSM cluster:
  // no trace, no breakdown.
  EXPECT_FALSE(r.breakdown.enabled());
  EXPECT_EQ(rec.size(), 0u);
}

TEST(Obs, PerKindStatsSumToGlobals) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  // Lossy network so the per-kind retransmission attribution is exercised.
  c.net.random_loss = 0.02;
  c.net.rto = sim::msec(20);
  RunResult r = apps::runIs(c, smallIs(), apps::IsVariant::kVopp).result;

  uint64_t messages = 0, payload = 0, rexmit = 0;
  for (int k = 0; k < net::kMsgClassCount; ++k) {
    messages += r.net.kind[k].messages;
    payload += r.net.kind[k].payload_bytes;
    rexmit += r.net.kind[k].retransmissions;
  }
  EXPECT_EQ(messages, r.net.messages);
  EXPECT_EQ(payload, r.net.payload_bytes);
  EXPECT_EQ(rexmit, r.net.retransmissions);
  EXPECT_GT(rexmit, 0u) << "lossy run should retransmit";
  // IS under VC_sd moves its data through view grants.
  EXPECT_GT(r.net.of(net::MsgClass::kGrant).payload_bytes, 0u);
  EXPECT_GT(r.net.of(net::MsgClass::kBarrier).messages, 0u);
}

TEST(Obs, ChromeTraceExportIsDeterministic) {
  RunConfig c = smallConfig(dsm::Protocol::kVcSd);
  obs::TraceRecorder live;
  c.trace = &live;
  (void)apps::runIs(c, smallIs(), apps::IsVariant::kVopp);

  std::ostringstream a, b;
  obs::writeChromeTrace(a, live);
  obs::writeChromeTrace(b, live);
  EXPECT_EQ(a.str(), b.str());
  const std::string& s = a.str();
  EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(s.find("\"process_name\""), std::string::npos);
  EXPECT_NE(s.find("\"acquire_view\""), std::string::npos);
  EXPECT_NE(s.find("\"barrier_wait\""), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 3), "]}\n");
}

}  // namespace
}  // namespace vodsm
