// Application correctness: every variant must reproduce its serial
// reference result exactly (all four apps are engineered for bit-exact
// cross-variant results; NN uses fixed-point gradient folding).
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/is.hpp"
#include "apps/nn.hpp"
#include "apps/sor.hpp"

namespace vodsm {
namespace {

using dsm::Protocol;

harness::RunConfig cfg(Protocol proto, int nprocs) {
  harness::RunConfig c;
  c.protocol = proto;
  c.nprocs = nprocs;
  return c;
}

struct Case {
  Protocol proto;
  int nprocs;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return dsm::protocolName(info.param.proto) + "_" +
         std::to_string(info.param.nprocs) + "p";
}

const Case kVoppCases[] = {
    {Protocol::kLrcDiff, 2}, {Protocol::kLrcDiff, 4},
    {Protocol::kVcDiff, 2},  {Protocol::kVcDiff, 4},  {Protocol::kVcDiff, 8},
    {Protocol::kVcSd, 2},    {Protocol::kVcSd, 4},    {Protocol::kVcSd, 8},
};

class VoppAppTest : public ::testing::TestWithParam<Case> {};

TEST_P(VoppAppTest, IsMatchesSerial) {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = 511;
  p.iterations = 3;
  auto run = apps::runIs(cfg(GetParam().proto, GetParam().nprocs), p,
                         apps::IsVariant::kVopp);
  EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, GetParam().nprocs));
}

TEST_P(VoppAppTest, IsFewerBarriersMatchesSerial) {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = 511;
  p.iterations = 3;
  auto run = apps::runIs(cfg(GetParam().proto, GetParam().nprocs), p,
                         apps::IsVariant::kVoppFewerBarriers);
  EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, GetParam().nprocs));
}

TEST_P(VoppAppTest, GaussMatchesSerial) {
  apps::GaussParams p;
  p.n = 64;
  auto run = apps::runGauss(cfg(GetParam().proto, GetParam().nprocs), p,
                            apps::GaussVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum, apps::gaussSerialChecksum(p));
}

TEST_P(VoppAppTest, SorMatchesSerial) {
  apps::SorParams p;
  p.rows = 64;
  p.cols = 48;
  p.iterations = 4;
  auto run = apps::runSor(cfg(GetParam().proto, GetParam().nprocs), p,
                          apps::SorVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum, apps::sorSerialChecksum(p));
}

TEST_P(VoppAppTest, NnMatchesSerial) {
  apps::NnParams p;
  p.samples = 64;
  p.epochs = 3;
  auto run = apps::runNn(cfg(GetParam().proto, GetParam().nprocs), p,
                         apps::NnVariant::kVopp);
  EXPECT_DOUBLE_EQ(run.checksum,
                   apps::nnSerialChecksum(p, GetParam().nprocs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, VoppAppTest, ::testing::ValuesIn(kVoppCases),
                         caseName);

// Traditional variants run on LRC_d only.
class TraditionalAppTest : public ::testing::TestWithParam<int> {};

TEST_P(TraditionalAppTest, IsMatchesSerial) {
  apps::IsParams p;
  p.n_keys = 1 << 12;
  p.max_key = 511;
  p.iterations = 3;
  auto run = apps::runIs(cfg(Protocol::kLrcDiff, GetParam()), p,
                         apps::IsVariant::kTraditional);
  EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, GetParam()));
}

TEST_P(TraditionalAppTest, GaussMatchesSerial) {
  apps::GaussParams p;
  p.n = 64;
  auto run = apps::runGauss(cfg(Protocol::kLrcDiff, GetParam()), p,
                            apps::GaussVariant::kTraditional);
  EXPECT_DOUBLE_EQ(run.checksum, apps::gaussSerialChecksum(p));
}

TEST_P(TraditionalAppTest, SorMatchesSerial) {
  apps::SorParams p;
  p.rows = 64;
  p.cols = 48;
  p.iterations = 4;
  auto run = apps::runSor(cfg(Protocol::kLrcDiff, GetParam()), p,
                          apps::SorVariant::kTraditional);
  EXPECT_DOUBLE_EQ(run.checksum, apps::sorSerialChecksum(p));
}

TEST_P(TraditionalAppTest, NnMatchesSerial) {
  apps::NnParams p;
  p.samples = 64;
  p.epochs = 3;
  auto run = apps::runNn(cfg(Protocol::kLrcDiff, GetParam()), p,
                         apps::NnVariant::kTraditional);
  EXPECT_DOUBLE_EQ(run.checksum, apps::nnSerialChecksum(p, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraditionalAppTest,
                         ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return std::to_string(info.param) + "p";
                         });

// MPI variant.
class MpiAppTest : public ::testing::TestWithParam<int> {};

TEST_P(MpiAppTest, NnMatchesSerial) {
  apps::NnParams p;
  p.samples = 64;
  p.epochs = 3;
  auto run = apps::runNn(cfg(Protocol::kVcSd, GetParam()), p,
                         apps::NnVariant::kMpi);
  EXPECT_DOUBLE_EQ(run.checksum, apps::nnSerialChecksum(p, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MpiAppTest, ::testing::Values(2, 4, 8, 16),
                         [](const auto& info) {
                           return std::to_string(info.param) + "p";
                         });

// Single processor degenerate case must also work.
TEST(AppEdgeCases, SingleProcessor) {
  apps::IsParams p;
  p.n_keys = 1024;
  p.max_key = 127;
  p.iterations = 2;
  for (Protocol proto :
       {Protocol::kLrcDiff, Protocol::kVcDiff, Protocol::kVcSd}) {
    auto run = apps::runIs(cfg(proto, 1), p, apps::IsVariant::kVopp);
    EXPECT_EQ(run.rank_sums, apps::isSerialRankSums(p, 1))
        << dsm::protocolName(proto);
  }
}

}  // namespace
}  // namespace vodsm
