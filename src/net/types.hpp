// Shared identifiers and configuration for the simulated cluster network.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace vodsm::net {

using NodeId = uint32_t;

// Message kinds on the wire. Shared between the transport (which encodes
// them) and the network model (which peeks at them to attribute drops).
enum class FrameKind : uint8_t {
  kData = 0,
  kRequest = 1,
  kReply = 2,
  kAck = 3
};

// Models the paper's testbed: a 100 Mbps N-way switched Ethernet connecting
// Linux PCs, with UDP-style user-level reliability. Every parameter is
// explicit so experiments can ablate them.
struct NetConfig {
  // Per-link, full-duplex bandwidth in bits/second.
  double bandwidth_bps = 100e6;
  // One-way wire + switch cut-through latency.
  sim::Time wire_latency = sim::usec(30);
  // Software cost to push one datagram through the sending stack:
  // fixed syscall/interrupt part plus a copy cost per KB.
  sim::Time send_base = sim::usec(15);
  sim::Time send_per_kb = sim::usec(8);
  // Software cost to pull one datagram out of the receiving stack (same
  // shape). This is also the NIC rx queue's service time, so fan-in bursts
  // faster than the service rate overflow the queue and drop frames.
  sim::Time recv_base = sim::usec(15);
  sim::Time recv_per_kb = sim::usec(8);

  sim::Time sendOverhead(size_t payload) const {
    return send_base +
           send_per_kb * static_cast<sim::Time>(payload / 1024 + 1);
  }
  sim::Time recvOverhead(size_t payload) const {
    return recv_base +
           recv_per_kb * static_cast<sim::Time>(payload / 1024 + 1);
  }
  // Ethernet + IP + UDP header bytes charged per wire fragment.
  size_t header_bytes = 42;
  // Maximum payload bytes per wire fragment (Ethernet MTU minus headers).
  size_t mtu_payload = 1458;
  // NIC receive queue capacity in frames; arrivals beyond this are dropped
  // (tail drop), which is what turns barrier fan-in bursts into the paper's
  // "Rexmit" retransmissions.
  int rx_queue_frames = 256;
  // Uniform random frame loss probability (cable-level noise).
  double random_loss = 0.0;
  // Retransmission timeout for the reliable transport. The paper observes
  // that one retransmission costs about one second of waiting.
  sim::Time rto = sim::sec(1);

  // Wire bytes for a message of `payload` logical bytes (fragment headers
  // included).
  size_t wireBytes(size_t payload) const {
    size_t frags = payload == 0 ? 1 : (payload + mtu_payload - 1) / mtu_payload;
    return payload + frags * header_bytes;
  }

  // Serialization time of `payload` logical bytes onto one link.
  sim::Time txTime(size_t payload) const {
    double bits = static_cast<double>(wireBytes(payload)) * 8.0;
    return static_cast<sim::Time>(bits / bandwidth_bps * sim::kSecond);
  }

  // Lower bound on the time between a sender scheduling a frame and that
  // frame first touching receiver-side state: at least the empty-payload
  // send overhead, the empty-frame serialization, and the wire latency.
  // Both overheads grow monotonically with payload size, so this bounds
  // every frame. Published to the engine as the conservative-parallel
  // lookahead; a zero value (degenerate configs) disables lane parallelism.
  sim::Time minLatency() const {
    return sendOverhead(0) + txTime(0) + wire_latency;
  }
};

}  // namespace vodsm::net
