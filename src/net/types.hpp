// Shared identifiers and configuration for the simulated cluster network.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace vodsm::net {

using NodeId = uint32_t;

// Message kinds on the wire. Shared between the transport (which encodes
// them) and the network model (which peeks at them to attribute drops).
enum class FrameKind : uint8_t {
  kData = 0,
  kRequest = 1,
  kReply = 2,
  kAck = 3
};

// Fabric shape. kStar is the paper's testbed (one switch, every node one
// hop away) and the default; the multi-switch kinds group nodes onto leaf
// (edge) switches joined by spine switches through trunk links that have
// their own FIFO serialization, latency, and contention. The two
// multi-switch kinds differ only in the derived spine count: a fat tree
// provisions full bisection (one spine path per leaf), a leaf-spine fabric
// oversubscribes 2:1.
enum class TopologyKind : uint8_t {
  kStar = 0,
  kFatTree = 1,
  kLeafSpine = 2,
};

inline const char* topologyKindName(TopologyKind k) {
  switch (k) {
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kFatTree:
      return "fattree";
    case TopologyKind::kLeafSpine:
      return "leafspine";
  }
  return "?";
}

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kStar;
  // Nodes per leaf switch (ignored for kStar).
  int leaf_size = 16;
  // Spine switch count; 0 derives it from the leaf count per the kind.
  int spines = 0;
  // Trunk links are an order faster than edge links, as in real fabrics.
  double trunk_bandwidth_bps = 1e9;
  // One-way trunk wire + spine cut-through latency per trunk hop.
  sim::Time trunk_latency = sim::usec(5);
};

// Models the paper's testbed: a 100 Mbps N-way switched Ethernet connecting
// Linux PCs, with UDP-style user-level reliability. Every parameter is
// explicit so experiments can ablate them.
struct NetConfig {
  // Per-link, full-duplex bandwidth in bits/second.
  double bandwidth_bps = 100e6;
  // One-way wire + switch cut-through latency.
  sim::Time wire_latency = sim::usec(30);
  // Software cost to push one datagram through the sending stack:
  // fixed syscall/interrupt part plus a copy cost per KB.
  sim::Time send_base = sim::usec(15);
  sim::Time send_per_kb = sim::usec(8);
  // Software cost to pull one datagram out of the receiving stack (same
  // shape). This is also the NIC rx queue's service time, so fan-in bursts
  // faster than the service rate overflow the queue and drop frames.
  sim::Time recv_base = sim::usec(15);
  sim::Time recv_per_kb = sim::usec(8);

  sim::Time sendOverhead(size_t payload) const {
    return send_base +
           send_per_kb * static_cast<sim::Time>(payload / 1024 + 1);
  }
  sim::Time recvOverhead(size_t payload) const {
    return recv_base +
           recv_per_kb * static_cast<sim::Time>(payload / 1024 + 1);
  }
  // Ethernet + IP + UDP header bytes charged per wire fragment.
  size_t header_bytes = 42;
  // Maximum payload bytes per wire fragment (Ethernet MTU minus headers).
  size_t mtu_payload = 1458;
  // NIC receive queue capacity in frames; arrivals beyond this are dropped
  // (tail drop), which is what turns barrier fan-in bursts into the paper's
  // "Rexmit" retransmissions.
  int rx_queue_frames = 256;
  // Uniform random frame loss probability (cable-level noise).
  double random_loss = 0.0;
  // Retransmission timeout for the reliable transport. The paper observes
  // that one retransmission costs about one second of waiting.
  sim::Time rto = sim::sec(1);

  // Fabric shape; kStar reproduces the pre-topology network byte-for-byte.
  TopologyConfig topology;

  // Wire bytes for a message of `payload` logical bytes (fragment headers
  // included).
  size_t wireBytes(size_t payload) const {
    size_t frags = payload == 0 ? 1 : (payload + mtu_payload - 1) / mtu_payload;
    return payload + frags * header_bytes;
  }

  // Serialization time of `payload` logical bytes onto one link.
  sim::Time txTime(size_t payload) const {
    double bits = static_cast<double>(wireBytes(payload)) * 8.0;
    return static_cast<sim::Time>(bits / bandwidth_bps * sim::kSecond);
  }

  bool multiSwitch() const { return topology.kind != TopologyKind::kStar; }

  // Serialization time of `payload` logical bytes onto one trunk link.
  sim::Time trunkTxTime(size_t payload) const {
    double bits = static_cast<double>(wireBytes(payload)) * 8.0;
    return static_cast<sim::Time>(bits / topology.trunk_bandwidth_bps *
                                  sim::kSecond);
  }

  // Lower bound on every cross-lane hop in the topology, published to the
  // engine as the conservative-parallel lookahead; a zero value (degenerate
  // configs) disables lane parallelism. The star has a single hop class
  // (sender stack -> receiver switch): at least the empty-payload send
  // overhead, the empty-frame serialization, and the wire latency, both
  // overheads growing monotonically with payload size. Multi-switch fabrics
  // add trunk hops (leaf -> spine, spine -> leaf), each at least the
  // empty-frame trunk serialization plus the trunk latency, so the bound is
  // the min over the two hop classes.
  sim::Time minLatency() const {
    const sim::Time edge = sendOverhead(0) + txTime(0) + wire_latency;
    if (!multiSwitch()) return edge;
    return std::min(edge, trunkTxTime(0) + topology.trunk_latency);
  }
};

// Parses a CLI topology spec: `star`, `fattree` or `leafspine`, optionally
// followed by `:key=value,...` pairs (leaf, spines, trunk-gbps, trunk-us).
// Returns false (leaving *out* unspecified) on an unknown kind, unknown
// key, or malformed number — callers print usage and exit 2.
inline bool parseTopologySpec(const std::string& spec, TopologyConfig* out) {
  TopologyConfig cfg;
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "star") {
    cfg.kind = TopologyKind::kStar;
  } else if (kind == "fattree") {
    cfg.kind = TopologyKind::kFatTree;
  } else if (kind == "leafspine") {
    cfg.kind = TopologyKind::kLeafSpine;
  } else {
    return false;
  }
  std::string rest = colon == std::string::npos ? "" : spec.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    try {
      size_t used = 0;
      if (key == "leaf") {
        cfg.leaf_size = std::stoi(val, &used);
        if (cfg.leaf_size <= 0) return false;
      } else if (key == "spines") {
        cfg.spines = std::stoi(val, &used);
        if (cfg.spines < 0) return false;
      } else if (key == "trunk-gbps") {
        cfg.trunk_bandwidth_bps = std::stod(val, &used) * 1e9;
        if (cfg.trunk_bandwidth_bps <= 0) return false;
      } else if (key == "trunk-us") {
        cfg.trunk_latency = sim::usec(std::stoi(val, &used));
        if (cfg.trunk_latency < 0) return false;
      } else {
        return false;
      }
      if (used != val.size() || val.empty()) return false;
    } catch (...) {
      return false;
    }
  }
  *out = cfg;
  return true;
}

}  // namespace vodsm::net
