// Traffic counters for the network and transport layers.
//
// The DSM statistics tables report "Data" and "Num. Msg" as the paper does:
// protocol messages (acks excluded, retransmissions included) and their
// payload bytes. The raw frame counters are kept as well for the network
// micro-benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vodsm::net {

// Coarse protocol-level classification of transport messages, used for the
// per-kind traffic breakdown. The transport itself only sees opaque u16
// message types; the DSM layer installs a classifier on each endpoint
// mapping its types onto these classes (unclassified traffic lands in
// kOther).
enum class MsgClass : uint8_t {
  kAcquire = 0,   // lock/view acquire requests and manager forwards
  kGrant,         // lock/view grants (VC_sd: carries integrated diffs)
  kRelease,       // lock/view releases
  kDiffRequest,
  kDiffReply,
  kBarrier,       // barrier arrive + release
  kData,          // message-passing payload (MPI-style apps)
  kOther,
};
inline constexpr int kMsgClassCount = 8;
inline constexpr const char* kMsgClassName[kMsgClassCount] = {
    "acquire", "grant", "release", "diff req", "diff reply",
    "barrier", "data",  "other",
};

// Maps the opaque u16 message type onto a MsgClass. Installed by the
// protocol layer on endpoints (send attribution) and on the network (drop
// attribution); without one all traffic counts as kOther.
using Classifier = MsgClass (*)(uint16_t type);

// Per-class slice of the transport counters below.
struct KindStats {
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
  uint64_t retransmissions = 0;
  uint64_t drops = 0;  // frames of this class lost in flight (loss/overflow)
};

struct NetStats {
  // Frame-level (what actually crossed the wire). frames_sent counts sender
  // transmissions, so with fault-injected duplication the conservation
  // invariant is: frames_delivered + all drop counters ==
  // frames_sent + frames_duplicated (once the run drains). wire_bytes
  // counts uplink crossings only.
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_dropped_overflow = 0;
  uint64_t frames_dropped_random = 0;
  uint64_t wire_bytes = 0;

  // Fault injection (net::FaultPlan); all zero on fault-free runs.
  uint64_t frames_dropped_fault = 0;  // loss/burst/partition rules
  uint64_t frames_duplicated = 0;     // extra switch-made copies
  uint64_t frames_reordered = 0;      // frames held back by a reorder rule
  uint64_t frames_degraded = 0;       // frames through a degrade window

  // Transport-level (protocol view).
  uint64_t messages = 0;       // non-ack sends, including retransmissions
  uint64_t acks = 0;           // pure ack frames
  uint64_t ack_drops = 0;      // pure ack frames lost in flight
  uint64_t payload_bytes = 0;  // payload of non-ack sends
  uint64_t retransmissions = 0;

  // Transport counters above, split by message class. Sums over the array
  // equal messages/payload_bytes/retransmissions exactly: every send and
  // every retransmission is attributed to one class. Drops are attributed
  // by the class of the dropped frame; per-class drops plus ack_drops equal
  // frames_dropped_overflow + frames_dropped_random +
  // frames_dropped_fault exactly.
  KindStats kind[kMsgClassCount];

  KindStats& of(MsgClass c) { return kind[static_cast<size_t>(c)]; }
  const KindStats& of(MsgClass c) const {
    return kind[static_cast<size_t>(c)];
  }

  void reset() { *this = NetStats{}; }

  // Accumulate another counter set; used to fold the network's per-node
  // shards into one total.
  void add(const NetStats& o) {
    frames_sent += o.frames_sent;
    frames_delivered += o.frames_delivered;
    frames_dropped_overflow += o.frames_dropped_overflow;
    frames_dropped_random += o.frames_dropped_random;
    wire_bytes += o.wire_bytes;
    frames_dropped_fault += o.frames_dropped_fault;
    frames_duplicated += o.frames_duplicated;
    frames_reordered += o.frames_reordered;
    frames_degraded += o.frames_degraded;
    messages += o.messages;
    acks += o.acks;
    ack_drops += o.ack_drops;
    payload_bytes += o.payload_bytes;
    retransmissions += o.retransmissions;
    for (int k = 0; k < kMsgClassCount; ++k) {
      kind[k].messages += o.kind[k].messages;
      kind[k].payload_bytes += o.kind[k].payload_bytes;
      kind[k].retransmissions += o.kind[k].retransmissions;
      kind[k].drops += o.kind[k].drops;
    }
  }
};

}  // namespace vodsm::net
