// Traffic counters for the network and transport layers.
//
// The DSM statistics tables report "Data" and "Num. Msg" as the paper does:
// protocol messages (acks excluded, retransmissions included) and their
// payload bytes. The raw frame counters are kept as well for the network
// micro-benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vodsm::net {

struct NetStats {
  // Frame-level (what actually crossed the wire).
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_dropped_overflow = 0;
  uint64_t frames_dropped_random = 0;
  uint64_t wire_bytes = 0;

  // Transport-level (protocol view).
  uint64_t messages = 0;       // non-ack sends, including retransmissions
  uint64_t acks = 0;           // pure ack frames
  uint64_t payload_bytes = 0;  // payload of non-ack sends
  uint64_t retransmissions = 0;

  void reset() { *this = NetStats{}; }
};

}  // namespace vodsm::net
