// Deterministic fault injection for the simulated network.
//
// A FaultPlan is a list of rules, each scoping one fault kind to a simulated
// time window and a set of links or nodes. The plan is pure data; a
// FaultInjector binds it to one run (its own seeded Rng, per-rule budgets,
// per-node straggler scalers) and is queried by the Network at the switch —
// the same point where random cable loss already applies. Design rules, in
// the same spirit as tracing and metrics:
//
//  * Absent means absent. With no injector installed the network does not
//    allocate, draw randomness, or charge time differently: fault-free runs
//    are byte-identical to builds without this subsystem (asserted in
//    tests/test_faults.cpp and enforced by the bench regression gate).
//  * Deterministic. The injector owns a private Rng seeded from
//    (plan seed, run seed); it never touches the network's loss stream, and
//    rules are evaluated in plan order at engine-ordered arrival times, so
//    a faulted run is a pure function of its seeds.
//  * Sim-clock-driven. Windows, periods, and delays are simulated time;
//    nothing depends on host time or host scheduling.
//
// Plans are composed from a compact CLI spec (`--faults=...`), a JSON file
// (`--faults=@plan.json`), or a named chaos profile (`--faults=profile:NAME`)
// — see parseFaultPlan() in faults.cpp for the grammar.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "net/types.hpp"

namespace vodsm::net {

enum class FaultKind : uint8_t {
  kLoss = 0,   // drop each matching frame with probability p
  kBurst,      // drop every matching frame (budget-capped, optionally
               // periodic: outages of `duty` every `period`)
  kDup,        // deliver a second copy with probability p
  kReorder,    // hold a frame back by `delay` with probability p, letting
               // later frames overtake it on the downlink
  kDegrade,    // stretch downlink serialization by `factor`, add `delay`
  kPartition,  // drop every frame crossing the node_set boundary
  kSlow,       // multiply CPU charges on `node` by `factor` (straggler)
};
inline constexpr int kFaultKindCount = 7;
inline constexpr const char* kFaultKindName[kFaultKindCount] = {
    "loss", "burst", "dup", "reorder", "degrade", "partition", "slow",
};

// Wildcard for the src/dst/node filters below.
inline constexpr NodeId kAnyNode = UINT32_MAX;

struct FaultRule {
  FaultKind kind = FaultKind::kLoss;

  // Active window [t0, t1) in simulated time. With period > 0, only the
  // first `duty` of every `period` within the window is active (periodic
  // outages / degradation bursts).
  sim::Time t0 = 0;
  sim::Time t1 = INT64_MAX;
  sim::Time period = 0;
  sim::Time duty = 0;

  // Frame filters: sender, receiver, or either endpoint (kAnyNode matches
  // all). kSlow uses `node` as the straggler's id; kPartition ignores these
  // and uses node_set.
  NodeId src = kAnyNode;
  NodeId dst = kAnyNode;
  NodeId node = kAnyNode;
  // kPartition: bitmask of isolated nodes (bit i = node i, up to 64 nodes);
  // frames with exactly one endpoint inside the set are dropped.
  uint64_t node_set = 0;

  double p = 1.0;        // per-frame probability (loss / dup / reorder)
  double factor = 1.0;   // degrade: tx-time multiplier; slow: charge mult.
  sim::Time delay = 0;   // reorder hold-back; degrade added latency
  uint64_t budget = UINT64_MAX;  // max frames dropped by this rule
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  // Folded into the run seed for the injector's private Rng, so the same
  // plan can be replayed under independent randomness.
  uint64_t seed = 0;

  bool empty() const { return rules.empty(); }
};

// Parses a plan spec: `kind:key=val,key=val;kind:...`, `@file.json`, or
// `profile:NAME` (profiles may also appear as segments). Throws vodsm::Error
// on malformed input. See faults.cpp for the full grammar and key table.
FaultPlan parseFaultPlan(const std::string& spec);

// Named chaos profiles (lossy, bursty, degraded, partition, straggler,
// flaky, mixed) used by the chaos suite and expandable via `profile:NAME`.
std::string chaosProfileSpec(const std::string& name);
std::vector<std::string> chaosProfileNames();

// What the injector decided about one frame at the switch.
struct FaultAction {
  bool drop = false;
  bool duplicate = false;
  bool reordered = false;
  bool degraded = false;
  FaultKind cause = FaultKind::kLoss;  // rule kind that caused `drop`
  sim::Time extra_delay = 0;           // added before downlink serialization
  double tx_factor = 1.0;              // downlink serialization multiplier
};

// Binds a FaultPlan to one run. The Network queries onFrame() for every
// frame reaching the switch; the cluster installs chargeScalerFor() on each
// node clock. Not copyable: scalers hand out pointers into this object.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, uint64_t run_seed, int n_nodes);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Evaluates non-slow rules in plan order against one frame. Draws from
  // the destination's private Rng only for probabilistic rules that are
  // in-window and match the link, so out-of-window plans consume no
  // randomness. A drop short-circuits the remaining rules. Randomness and
  // rule budgets are sharded per destination node — the switch decision for
  // a frame runs in the receiver's engine lane, so shards are never touched
  // concurrently and the fault stream is independent of lane interleaving.
  // (Budgets therefore cap drops per receiving node, not globally.)
  FaultAction onFrame(NodeId src, NodeId dst, sim::Time now);

  // Charge scaler for `node`, or null when no slow rule can ever match it
  // (so unaffected nodes keep the scaler-free fast path). The scaler stays
  // owned by the injector and must outlive the run.
  const sim::ChargeScaler* chargeScalerFor(NodeId node) const;

  // Frames dropped by rule `i` so far (budget consumption, summed over the
  // per-destination shards), for tests.
  uint64_t droppedBy(size_t i) const;

 private:
  class NodeScaler : public sim::ChargeScaler {
   public:
    explicit NodeScaler(std::vector<const FaultRule*> rules)
        : rules_(std::move(rules)) {}
    sim::Time scale(sim::Time dt, sim::Time now) const override;

   private:
    std::vector<const FaultRule*> rules_;
  };

  // Per-destination-node injection state (see onFrame).
  struct Shard {
    sim::Rng rng;
    std::vector<uint64_t> used;  // per-rule frames dropped at this receiver
  };

  FaultPlan plan_;
  std::vector<Shard> shards_;  // indexed by destination node
  std::vector<std::unique_ptr<NodeScaler>> scalers_;  // per node; may be null
};

}  // namespace vodsm::net
