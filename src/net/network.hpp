// Switched-Ethernet model with a pluggable topology (NetConfig::topology).
//
// Star (default): one switch, one full-duplex link per node. A frame's
// journey: sender software overhead -> uplink serialization (FIFO per
// sender) -> switch latency -> downlink serialization (FIFO per receiver)
// -> NIC receive queue (tail drop when full) -> receive software overhead
// -> delivery callback. Random loss is applied at the switch.
//
// Multi-switch fabrics (fat tree / leaf-spine) group nodes onto leaf
// switches of `leaf_size` nodes. Frames that stay within a leaf take
// exactly the star path above, so star runs and intra-leaf traffic are
// byte-identical to the pre-topology model. Frames that cross leaves
// traverse two trunk hops — leaf(src) -> spine -> leaf(dst), the spine
// picked by a deterministic hash of (src, dst) — each with its own FIFO
// serialization at trunk bandwidth plus the trunk latency, before rejoining
// the star path at the destination leaf's downlink. Trunk FIFO state is
// owned by the leaf's representative lane (its first node): up-trunks by
// the source leaf's rep, down-trunks by the destination leaf's rep, so the
// conservative-parallel engine never races on trunk bookkeeping and every
// cross-lane hop lands at least NetConfig::minLatency() in the future.
//
// All bookkeeping happens inside engine events so concurrent senders are
// ordered by global simulated time.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "net/faults.hpp"
#include "net/stats.hpp"
#include "net/types.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace vodsm::net {

// Frame-header peeking. The layout is owned by the transport's encode()
// (kind u8, seq u64 LE, type u16 LE, length-prefixed blob); the network
// reads it only to attribute drops per message class and to derive wire
// correlation ids — frames stay opaque otherwise. Pure-ack frames are
// header-only (kind + seq) and carry no message type.
inline uint8_t frameKind(const Bytes& frame) {
  return std::to_integer<uint8_t>(frame[0]);
}
inline uint64_t frameSeq(const Bytes& frame) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | std::to_integer<uint64_t>(frame[static_cast<size_t>(1 + i)]);
  return v;
}
inline uint16_t frameMsgType(const Bytes& frame) {
  return static_cast<uint16_t>(std::to_integer<uint16_t>(frame[9]) |
                               (std::to_integer<uint16_t>(frame[10]) << 8));
}

// The node whose sequence-number space `frame` belongs to: replies and acks
// quote the original requester's sequence number, everything else uses the
// sender's own. (send-side view: src is the frame's sender, dst its target.)
inline NodeId frameSeqOwner(const Bytes& frame, NodeId src, NodeId dst) {
  const auto k = static_cast<FrameKind>(frameKind(frame));
  return (k == FrameKind::kReply || k == FrameKind::kAck) ? dst : src;
}

class Network {
 public:
  // Called when a frame clears the receiver's software stack.
  // `arrive` is the time the payload is available to the node.
  using DeliverFn =
      std::function<void(NodeId src, Bytes frame, sim::Time arrive)>;

  Network(sim::Engine& engine, int n_nodes, NetConfig config, uint64_t seed)
      : engine_(engine),
        config_(config),
        ports_(static_cast<size_t>(n_nodes)),
        shards_(static_cast<size_t>(n_nodes)) {
    VODSM_CHECK(n_nodes > 0);
    // Per-receiver loss streams: the switch's random-loss draw for a frame
    // happens in the receiver's lane, so each destination forks its own
    // stream off the run seed and lanes never share an Rng.
    sim::Rng root(seed);
    rngs_.reserve(static_cast<size_t>(n_nodes));
    for (int i = 0; i < n_nodes; ++i) rngs_.push_back(root.fork());
    if (config_.multiSwitch()) {
      VODSM_CHECK(config_.topology.leaf_size > 0);
      const int leaf = config_.topology.leaf_size;
      nleaves_ = (n_nodes + leaf - 1) / leaf;
      nspines_ = config_.topology.spines > 0 ? config_.topology.spines
                 : config_.topology.kind == TopologyKind::kFatTree
                     ? nleaves_
                     : std::max(1, (nleaves_ + 1) / 2);
      trunks_.assign(static_cast<size_t>(nleaves_),
                     TrunkShard{std::vector<Trunk>(static_cast<size_t>(
                                    nspines_)),
                                std::vector<Trunk>(
                                    static_cast<size_t>(nspines_))});
    }
    // The topology's minimum frame latency is the engine's conservative
    // lookahead: cross-lane posts (startUplink -> arriveSwitch, and the
    // trunk hops on multi-switch fabrics) always land at least this far in
    // the destination's future.
    engine_.setLookahead(config_.minLatency());
  }

  int nodeCount() const { return static_cast<int>(ports_.size()); }
  const NetConfig& config() const { return config_; }

  // Counters are sharded per node so lanes never write the same cache
  // lines: sender-side counters (frames_sent, wire_bytes, transport sends)
  // live in the sender's shard, everything decided at the switch or NIC in
  // the receiver's. stats() folds the shards into one total on demand.
  NetStats& statsFor(NodeId node) { return shards_[node]; }
  const NetStats& statsFor(NodeId node) const { return shards_[node]; }
  const NetStats& stats() const {
    total_ = NetStats{};
    for (const NetStats& s : shards_) total_.add(s);
    return total_;
  }

  // One utilization row per trunk link direction; empty on star fabrics.
  // Ordered (leaf, spine, up-before-down) so reports are deterministic.
  struct TrunkUse {
    int leaf = 0;   // edge switch the trunk attaches to
    int spine = 0;  // spine switch at the other end
    bool up = false;  // leaf -> spine (true) or spine -> leaf
    uint64_t frames = 0;
    uint64_t wire_bytes = 0;
    sim::Time busy_ns = 0;  // total serialization time on the trunk
  };
  std::vector<TrunkUse> trunkStats() const {
    std::vector<TrunkUse> out;
    for (int l = 0; l < nleaves_; ++l) {
      for (int s = 0; s < nspines_; ++s) {
        const Trunk& up = trunks_[static_cast<size_t>(l)]
                              .up[static_cast<size_t>(s)];
        const Trunk& down = trunks_[static_cast<size_t>(l)]
                                .down[static_cast<size_t>(s)];
        out.push_back({l, s, true, up.frames, up.wire_bytes, up.busy_ns});
        out.push_back(
            {l, s, false, down.frames, down.wire_bytes, down.busy_ns});
      }
    }
    return out;
  }
  int leafCount() const { return nleaves_; }
  int spineCount() const { return nspines_; }

  void setDeliver(NodeId node, DeliverFn fn) {
    port(node).deliver = std::move(fn);
  }

  // Optional event recorder for frame drops (random loss, NIC overflow).
  // Drops are charged to the would-be receiver's net track.
  void setTrace(obs::TraceRecorder* t) { trace_ = t; }

  // Optional counter/gauge registry. Link metrics use engine time and only
  // read values this layer already computed, so metered runs stay
  // bit-identical to unmetered ones. Uplink busy time and in-flight bytes
  // are charged to the sender's link, queue occupancy, downlink busy time
  // and drops to the receiver's.
  void setMetrics(obs::MetricsRegistry* m) { metrics_ = m; }

  // Maps the dropped frame's u16 message type onto a MsgClass so drops are
  // attributed per class in NetStats. Without one, non-ack drops land in
  // kOther (pure-ack drops are counted separately either way).
  void setClassifier(Classifier c) { classify_ = c; }

  // Optional fault injector, queried once per frame at the switch (the same
  // point where random cable loss applies). Null means no injection: the
  // fault-free path draws no extra randomness and computes identical times,
  // so runs without a plan stay byte-identical. Caller keeps ownership.
  void setFaults(FaultInjector* f) { faults_ = f; }

  // Inject a frame from src to dst no earlier than `earliest` (typically the
  // sender's local clock). The caller has already decided the frame is worth
  // counting; this layer only counts frame/wire statistics.
  void send(NodeId src, NodeId dst, Bytes frame, sim::Time earliest) {
    VODSM_CHECK(src < ports_.size() && dst < ports_.size());
    VODSM_CHECK_MSG(src != dst, "loopback frames never reach the wire");
    sim::Time start = std::max(earliest, engine_.now());
    engine_.at(start, [this, src, dst, f = std::move(frame)]() mutable {
      startUplink(src, dst, std::move(f));
    });
  }

 private:
  struct Port {
    sim::Time uplink_busy_until = 0;
    sim::Time downlink_busy_until = 0;
    sim::Time rx_busy_until = 0;
    int rx_queue_depth = 0;
    DeliverFn deliver;
  };

  // One trunk link direction's FIFO state and counters. Up-trunks of leaf L
  // are written only from lane rep(L) (the leaf's first node), down-trunks
  // of leaf L likewise — single-writer by construction.
  struct Trunk {
    sim::Time busy_until = 0;
    uint64_t frames = 0;
    uint64_t wire_bytes = 0;
    sim::Time busy_ns = 0;
  };
  struct TrunkShard {
    std::vector<Trunk> up;    // indexed by spine: this leaf -> spine
    std::vector<Trunk> down;  // indexed by spine: spine -> this leaf
  };

  Port& port(NodeId id) { return ports_[id]; }

  int leafOf(NodeId n) const {
    return static_cast<int>(n) / config_.topology.leaf_size;
  }
  NodeId repOf(int leaf) const {
    return static_cast<NodeId>(leaf * config_.topology.leaf_size);
  }
  // Deterministic spine pick: a fixed multiplicative hash of the (src, dst)
  // pair, so a flow always takes the same path (no adaptive routing) and
  // runs are identical at every thread count.
  int spineFor(NodeId src, NodeId dst) const {
    const uint32_t h = src * 2654435761u ^ dst * 40503u;
    return static_cast<int>(h % static_cast<uint32_t>(nspines_));
  }
  bool crossLeaf(NodeId src, NodeId dst) const {
    return nleaves_ > 1 && leafOf(src) != leafOf(dst);
  }

  void startUplink(NodeId src, NodeId dst, Bytes frame) {
    const sim::Time now = engine_.now();
    Port& p = port(src);
    const sim::Time tx = config_.txTime(frame.size());
    const sim::Time depart = std::max(now + config_.sendOverhead(frame.size()),
                                      p.uplink_busy_until);
    p.uplink_busy_until = depart + tx;
    statsFor(src).frames_sent++;
    statsFor(src).wire_bytes += config_.wireBytes(frame.size());
    if (auto* m = metrics_) {
      m->add(src, obs::Metric::kInflightBytes,
             static_cast<int64_t>(frame.size()), now);
      m->add(src, obs::Metric::kUplinkBusyNs, tx, now);
    }
    // Cross-lane hop: everything from the switch on happens in the
    // receiver's lane (or, for cross-leaf frames, in the trunk-owning rep
    // lanes first). The arrival time is at least now + minLatency() (send
    // overhead + serialization + wire latency all bound their empty-frame
    // minima), which is the lookahead contract.
    const sim::Time at_switch = depart + tx + config_.wire_latency;
    if (crossLeaf(src, dst)) {
      engine_.atLane(repOf(leafOf(src)), at_switch,
                     [this, src, dst, f = std::move(frame)]() mutable {
                       trunkUp(src, dst, std::move(f));
                     });
    } else {
      engine_.atLane(dst, at_switch,
                     [this, src, dst, f = std::move(frame)]() mutable {
                       arriveSwitch(src, dst, std::move(f));
                     });
    }
  }

  // Claims the next slot on a trunk link's FIFO and returns the time the
  // frame clears its serialization.
  sim::Time trunkHop(Trunk& t, size_t payload) {
    const sim::Time tx = config_.trunkTxTime(payload);
    const sim::Time start = std::max(engine_.now(), t.busy_until);
    t.busy_until = start + tx;
    t.frames++;
    t.wire_bytes += config_.wireBytes(payload);
    t.busy_ns += tx;
    return start + tx;
  }

  // Runs in rep(leaf(src))'s lane: serialize onto the chosen up-trunk, then
  // hop to the destination leaf's rep lane. The post lands at least
  // trunkTxTime(0) + trunk_latency ahead, within the lookahead contract.
  void trunkUp(NodeId src, NodeId dst, Bytes frame) {
    Trunk& t = trunks_[static_cast<size_t>(leafOf(src))]
                   .up[static_cast<size_t>(spineFor(src, dst))];
    const sim::Time clear = trunkHop(t, frame.size());
    engine_.atLane(repOf(leafOf(dst)), clear + config_.topology.trunk_latency,
                   [this, src, dst, f = std::move(frame)]() mutable {
                     trunkDown(src, dst, std::move(f));
                   });
  }

  // Runs in rep(leaf(dst))'s lane: serialize onto the spine's down-trunk,
  // then rejoin the star path at the destination's switch port.
  void trunkDown(NodeId src, NodeId dst, Bytes frame) {
    Trunk& t = trunks_[static_cast<size_t>(leafOf(dst))]
                   .down[static_cast<size_t>(spineFor(src, dst))];
    const sim::Time clear = trunkHop(t, frame.size());
    engine_.atLane(dst, clear + config_.topology.trunk_latency,
                   [this, src, dst, f = std::move(frame)]() mutable {
                     arriveSwitch(src, dst, std::move(f));
                   });
  }

  // Shared bookkeeping for both drop sites: per-class counters plus the
  // kDrop trace instant, charged to the would-be receiver. The correlation
  // id carries the frame kind, so consumers can attribute the drop to the
  // same flow as the original send.
  void recordDrop(NodeId src, NodeId dst, const Bytes& frame) {
    if (static_cast<FrameKind>(frameKind(frame)) == FrameKind::kAck) {
      statsFor(dst).ack_drops++;
    } else {
      MsgClass c =
          classify_ ? classify_(frameMsgType(frame)) : MsgClass::kOther;
      statsFor(dst).of(c).drops++;
    }
    if (trace_)
      trace_->instant(static_cast<uint32_t>(dst), obs::Cat::kDrop,
                      engine_.now(), src, frame.size(),
                      obs::corrId(frameKind(frame),
                                  frameSeqOwner(frame, src, dst),
                                  frameSeq(frame)));
    if (auto* m = metrics_) {
      m->add(src, obs::Metric::kInflightBytes,
             -static_cast<int64_t>(frame.size()), engine_.now());
      m->add(dst, obs::Metric::kFrameDrops, 1, engine_.now());
    }
  }

  // Fault instants share the frame's correlation id, so injected drops,
  // duplicates, and delays join the same flow as the frame in Perfetto and
  // in the run graph.
  void traceFault(FaultKind k, NodeId src, NodeId dst, const Bytes& frame) {
    if (trace_)
      trace_->instant(static_cast<uint32_t>(dst), obs::Cat::kFaultInject,
                      engine_.now(), static_cast<uint64_t>(k), frame.size(),
                      obs::corrId(frameKind(frame),
                                  frameSeqOwner(frame, src, dst),
                                  frameSeq(frame)));
  }

  void arriveSwitch(NodeId src, NodeId dst, Bytes frame) {
    FaultAction fault;
    if (faults_) {
      fault = faults_->onFrame(src, dst, engine_.now());
      if (fault.drop) {
        statsFor(dst).frames_dropped_fault++;
        traceFault(fault.cause, src, dst, frame);
        recordDrop(src, dst, frame);
        return;
      }
    }
    if (config_.random_loss > 0 && rngs_[dst].chance(config_.random_loss)) {
      statsFor(dst).frames_dropped_random++;
      recordDrop(src, dst, frame);
      return;
    }
    Port& p = port(dst);
    sim::Time tx = config_.txTime(frame.size());
    if (fault.degraded) {
      statsFor(dst).frames_degraded++;
      tx = static_cast<sim::Time>(
          std::llround(static_cast<double>(tx) * fault.tx_factor));
      traceFault(FaultKind::kDegrade, src, dst, frame);
    }
    if (fault.reordered) {
      statsFor(dst).frames_reordered++;
      traceFault(FaultKind::kReorder, src, dst, frame);
    }
    // A held-back frame starts its downlink no earlier than now + delay;
    // frames arriving in the meantime claim the link first and overtake it.
    const sim::Time start =
        std::max(engine_.now() + fault.extra_delay, p.downlink_busy_until);
    p.downlink_busy_until = start + tx;
    if (auto* m = metrics_)
      m->add(dst, obs::Metric::kDownlinkBusyNs, tx, engine_.now());
    if (fault.duplicate) {
      // The switch emits a second copy that serializes right behind the
      // original and balances the books like a fresh transmission:
      // +in-flight here, -in-flight at its delivery or drop.
      statsFor(dst).frames_duplicated++;
      traceFault(FaultKind::kDup, src, dst, frame);
      Bytes copy = frame;
      const sim::Time start2 = p.downlink_busy_until;
      p.downlink_busy_until = start2 + tx;
      if (auto* m = metrics_) {
        m->add(src, obs::Metric::kInflightBytes,
               static_cast<int64_t>(copy.size()), engine_.now());
        m->add(dst, obs::Metric::kDownlinkBusyNs, tx, engine_.now());
      }
      engine_.at(start2 + tx,
                 [this, src, dst, f = std::move(copy)]() mutable {
                   arriveNic(src, dst, std::move(f));
                 });
    }
    engine_.at(start + tx, [this, src, dst, f = std::move(frame)]() mutable {
      arriveNic(src, dst, std::move(f));
    });
  }

  void arriveNic(NodeId src, NodeId dst, Bytes frame) {
    Port& p = port(dst);
    if (p.rx_queue_depth >= config_.rx_queue_frames) {
      statsFor(dst).frames_dropped_overflow++;
      recordDrop(src, dst, frame);
      return;
    }
    p.rx_queue_depth++;
    if (auto* m = metrics_) {
      m->add(dst, obs::Metric::kRxQueueFrames, 1, engine_.now());
      m->add(dst, obs::Metric::kRxQueueBytes,
             static_cast<int64_t>(frame.size()), engine_.now());
    }
    const sim::Time start = std::max(engine_.now(), p.rx_busy_until);
    const sim::Time done = start + config_.recvOverhead(frame.size());
    p.rx_busy_until = done;
    engine_.at(done, [this, src, dst, f = std::move(frame)]() mutable {
      Port& q = port(dst);
      q.rx_queue_depth--;
      statsFor(dst).frames_delivered++;
      if (auto* m = metrics_) {
        m->add(dst, obs::Metric::kRxQueueFrames, -1, engine_.now());
        m->add(dst, obs::Metric::kRxQueueBytes,
               -static_cast<int64_t>(f.size()), engine_.now());
        m->add(src, obs::Metric::kInflightBytes,
               -static_cast<int64_t>(f.size()), engine_.now());
      }
      if (q.deliver) q.deliver(src, std::move(f), engine_.now());
    });
  }

  sim::Engine& engine_;
  NetConfig config_;
  std::vector<sim::Rng> rngs_;  // per-destination loss streams
  obs::TraceRecorder* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  Classifier classify_ = nullptr;
  FaultInjector* faults_ = nullptr;
  std::vector<Port> ports_;
  std::vector<NetStats> shards_;  // per-node counters (see statsFor)
  mutable NetStats total_;        // stats() fold cache
  int nleaves_ = 0;               // 0 on star fabrics
  int nspines_ = 0;
  std::vector<TrunkShard> trunks_;  // indexed by leaf; see Trunk
};

}  // namespace vodsm::net
