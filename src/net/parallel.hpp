// Fan-out RPC helper: issue several requests at once and await all replies.
//
// TreadMarks-style DSMs send the diff requests for a page to every writer
// concurrently and wait for all responses; serializing them would add one
// round trip per writer. The requests still serialize on the sender's
// uplink (that is physical), but the round trips overlap.
#pragma once

#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "sim/waiter.hpp"

namespace vodsm::net {

struct RpcCall {
  NodeId dst = 0;
  uint16_t type = 0;
  Bytes payload;
};

inline sim::Task<std::vector<RpcResult>> requestAll(Endpoint& endpoint,
                                                    std::vector<RpcCall> calls,
                                                    sim::Time earliest) {
  auto results = std::make_shared<std::vector<RpcResult>>(calls.size());
  sim::Countdown done(static_cast<int>(calls.size()));
  for (size_t i = 0; i < calls.size(); ++i) {
    sim::spawn(
        [](Endpoint& ep, RpcCall call, sim::Time when,
           std::shared_ptr<std::vector<RpcResult>> out, size_t slot,
           sim::Countdown& counter) -> sim::Task<void> {
          (*out)[slot] = co_await ep.request(call.dst, call.type,
                                             std::move(call.payload), when);
          counter.arrive();
        }(endpoint, std::move(calls[i]), earliest, results, i, done));
  }
  co_await done;
  co_return *results;
}

}  // namespace vodsm::net
