// Fan-out RPC helper: issue several requests at once and await all replies.
//
// TreadMarks-style DSMs send the diff requests for a page to every writer
// concurrently and wait for all responses; serializing them would add one
// round trip per writer. The requests still serialize on the sender's
// uplink (that is physical), but the round trips overlap.
#pragma once

#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "sim/waiter.hpp"

namespace vodsm::net {

struct RpcCall {
  NodeId dst = 0;
  uint16_t type = 0;
  Bytes payload;
};

inline sim::Task<std::vector<RpcResult>> requestAll(Endpoint& endpoint,
                                                    std::vector<RpcCall> calls,
                                                    sim::Time earliest) {
  auto results = std::make_shared<std::vector<RpcResult>>(calls.size());
  sim::Countdown done(static_cast<int>(calls.size()));
  // Declared after `done`: if this frame is destroyed while suspended (an
  // abandoned run), the scope reclaims the in-flight RPC frames first,
  // while `done` and `results` are still alive.
  sim::TaskScope scope;
  for (size_t i = 0; i < calls.size(); ++i) {
    // arrive() lives in the done callback, not the task body: the driver has
    // deregistered from `scope` by then, so when the final arrival resumes
    // (and ultimately destroys) this frame, the scope teardown cannot touch
    // a frame that is still on the call stack.
    sim::spawn(
        scope,
        [](Endpoint& ep, RpcCall call, sim::Time when,
           std::shared_ptr<std::vector<RpcResult>> out,
           size_t slot) -> sim::Task<void> {
          (*out)[slot] = co_await ep.request(call.dst, call.type,
                                             std::move(call.payload), when);
        }(endpoint, std::move(calls[i]), earliest, results, i),
        [&done](std::exception_ptr e) {
          if (e) std::rethrow_exception(e);
          done.arrive();
        });
  }
  co_await done;
  co_return *results;
}

}  // namespace vodsm::net
