#include "net/faults.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/check.hpp"
#include "support/json.hpp"

namespace vodsm::net {

namespace {

// ---------------------------------------------------------------------------
// Rule evaluation.

bool ruleActive(const FaultRule& r, sim::Time now) {
  if (now < r.t0 || now >= r.t1) return false;
  if (r.period > 0) return (now - r.t0) % r.period < r.duty;
  return true;
}

// Membership in a partition set; nodes beyond the 64-bit mask count as
// outside (the simulator never exceeds 64 nodes, but don't shift UB on it).
bool inSet(uint64_t set, NodeId id) {
  return id < 64 && ((set >> id) & 1) != 0;
}

bool linkMatches(const FaultRule& r, NodeId src, NodeId dst) {
  if (r.kind == FaultKind::kPartition)
    return inSet(r.node_set, src) != inSet(r.node_set, dst);
  if (r.src != kAnyNode && r.src != src) return false;
  if (r.dst != kAnyNode && r.dst != dst) return false;
  if (r.node != kAnyNode && r.node != src && r.node != dst) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Spec parsing.
//
//   spec    := segment (';' segment)*
//   segment := 'seed:' <uint>
//            | 'profile:' <name>        (expands a named chaos profile)
//            | <kind> [':' kv (',' kv)*]
//   kind    := loss | burst | dup | reorder | degrade | partition | slow
//   kv      := <key> '=' <value>
//
// Keys (all optional unless noted): p (probability), t0/t1/period/duty
// (seconds), delay/lat (seconds, added delay), from/to/node (node ids),
// nodes (partition/slow set: '3', '0+2+5', or '1-4'; required for
// partition), factor (multiplier; slow requires node or nodes), bw (degrade
// alias: bandwidth divisor), count (max frames dropped by this rule).

[[noreturn]] void specFail(const std::string& what, const std::string& tok) {
  throw Error("bad --faults spec: " + what + " '" + tok + "'");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

double parseDouble(const std::string& tok) {
  size_t used = 0;
  double v = 0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    specFail("not a number", tok);
  }
  if (used != tok.size()) specFail("not a number", tok);
  return v;
}

uint64_t parseUint(const std::string& tok) {
  size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &used);
  } catch (const std::exception&) {
    specFail("not a non-negative integer", tok);
  }
  if (used != tok.size() || tok[0] == '-')
    specFail("not a non-negative integer", tok);
  return v;
}

sim::Time secondsToTime(double s) {
  return static_cast<sim::Time>(std::llround(s * 1e9));
}

FaultKind kindFromName(const std::string& name) {
  for (int i = 0; i < kFaultKindCount; ++i)
    if (name == kFaultKindName[i]) return static_cast<FaultKind>(i);
  specFail("unknown fault kind", name);
}

// Node set syntax: '3' (one node), '0+2+5' (list), '1-4' (inclusive range).
uint64_t parseNodeSet(const std::string& tok) {
  uint64_t set = 0;
  for (const std::string& part : split(tok, '+')) {
    const std::vector<std::string> range = split(part, '-');
    if (range.size() == 1) {
      const uint64_t id = parseUint(range[0]);
      if (id >= 64) specFail("node id out of range (max 63)", part);
      set |= 1ULL << id;
    } else if (range.size() == 2) {
      const uint64_t lo = parseUint(range[0]);
      const uint64_t hi = parseUint(range[1]);
      if (lo > hi || hi >= 64) specFail("bad node range", part);
      for (uint64_t id = lo; id <= hi; ++id) set |= 1ULL << id;
    } else {
      specFail("bad node set", tok);
    }
  }
  return set;
}

// Shared by the CLI and JSON paths; `val` is the parsed numeric value and
// `tok` its original text (for error messages).
void applyNumericKey(FaultRule& r, const std::string& key, double val,
                     const std::string& tok) {
  if (key == "p") {
    r.p = val;
    if (r.p < 0 || r.p > 1) specFail("probability outside [0,1]", tok);
  } else if (key == "t0") {
    r.t0 = secondsToTime(val);
  } else if (key == "t1") {
    r.t1 = secondsToTime(val);
  } else if (key == "period") {
    r.period = secondsToTime(val);
    if (r.period < 0) specFail("negative period", tok);
  } else if (key == "duty") {
    r.duty = secondsToTime(val);
    if (r.duty < 0) specFail("negative duty", tok);
  } else if (key == "delay" || key == "lat") {
    r.delay = secondsToTime(val);
    if (r.delay < 0) specFail("negative delay", tok);
  } else if (key == "from") {
    r.src = static_cast<NodeId>(val);
  } else if (key == "to") {
    r.dst = static_cast<NodeId>(val);
  } else if (key == "node") {
    r.node = static_cast<NodeId>(val);
  } else if (key == "factor") {
    r.factor = val;
    if (r.factor <= 0) specFail("factor must be positive", tok);
  } else if (key == "bw") {
    r.factor = val;
    if (r.factor <= 0) specFail("bw divisor must be positive", tok);
  } else if (key == "count") {
    if (val < 0) specFail("negative count", tok);
    r.budget = static_cast<uint64_t>(val);
  } else {
    specFail("unknown key", key);
  }
}

void applyKey(FaultRule& r, const std::string& key, const std::string& val) {
  if (key == "nodes") {
    r.node_set = parseNodeSet(val);
    return;
  }
  if (key == "from" || key == "to" || key == "node" || key == "count") {
    applyNumericKey(r, key, static_cast<double>(parseUint(val)), val);
    return;
  }
  applyNumericKey(r, key, parseDouble(val), val);
}

void validateRule(const FaultRule& r) {
  if (r.kind == FaultKind::kPartition && r.node_set == 0)
    throw Error("bad --faults spec: partition needs nodes=...");
  if (r.kind == FaultKind::kSlow && r.node == kAnyNode && r.node_set == 0)
    throw Error("bad --faults spec: slow needs node=... or nodes=...");
  if (r.period > 0 && r.duty <= 0)
    throw Error("bad --faults spec: period without duty never fires");
}

void appendSegment(FaultPlan& plan, const std::string& seg, int depth);

void appendSpec(FaultPlan& plan, const std::string& spec, int depth) {
  VODSM_CHECK_MSG(depth < 4, "fault profile expansion too deep");
  for (const std::string& seg : split(spec, ';'))
    if (!seg.empty()) appendSegment(plan, seg, depth);
}

void appendSegment(FaultPlan& plan, const std::string& seg, int depth) {
  const size_t colon = seg.find(':');
  const std::string head = seg.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : seg.substr(colon + 1);
  if (head == "seed") {
    plan.seed = parseUint(rest);
    return;
  }
  if (head == "profile") {
    appendSpec(plan, chaosProfileSpec(rest), depth + 1);
    return;
  }
  FaultRule r;
  r.kind = kindFromName(head);
  if (!rest.empty()) {
    for (const std::string& kv : split(rest, ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) specFail("expected key=value", kv);
      applyKey(r, kv.substr(0, eq), kv.substr(eq + 1));
    }
  }
  // A slow rule over a node set expands to one rule per member so the
  // injector's per-node scaler lookup stays a simple filter.
  if (r.kind == FaultKind::kSlow && r.node_set != 0) {
    for (NodeId id = 0; id < 64; ++id)
      if (inSet(r.node_set, id)) {
        FaultRule one = r;
        one.node = id;
        one.node_set = 0;
        validateRule(one);
        plan.rules.push_back(one);
      }
    return;
  }
  validateRule(r);
  plan.rules.push_back(r);
}

// ---------------------------------------------------------------------------
// JSON plans: either {"seed": N, "rules": [...]} or a bare rule array.
// Rule objects use the same keys as the CLI spec plus "kind"; "nodes" is a
// JSON array of node ids.

FaultRule ruleFromJson(const support::Json& j) {
  FaultRule r;
  r.kind = kindFromName(j.at("kind").asString());
  for (const auto& [key, val] : j.members()) {
    if (key == "kind") continue;
    if (key == "nodes") {
      uint64_t set = 0;
      for (const support::Json& id : val.items()) {
        const double d = id.asNumber();
        if (d < 0 || d >= 64) specFail("node id out of range (max 63)",
                                       std::to_string(d));
        set |= 1ULL << static_cast<uint64_t>(d);
      }
      r.node_set = set;
      continue;
    }
    applyNumericKey(r, key, val.asNumber(), key);
  }
  return r;
}

FaultPlan planFromJson(const support::Json& doc) {
  FaultPlan plan;
  const support::Json* rules = &doc;
  if (doc.isObject()) {
    if (const support::Json* s = doc.find("seed"))
      plan.seed = static_cast<uint64_t>(s->asNumber());
    rules = &doc.at("rules");
  }
  for (const support::Json& j : rules->items()) {
    FaultRule r = ruleFromJson(j);
    if (r.kind == FaultKind::kSlow && r.node_set != 0) {
      for (NodeId id = 0; id < 64; ++id)
        if (inSet(r.node_set, id)) {
          FaultRule one = r;
          one.node = id;
          one.node_set = 0;
          validateRule(one);
          plan.rules.push_back(one);
        }
      continue;
    }
    validateRule(r);
    plan.rules.push_back(r);
  }
  return plan;
}

}  // namespace

FaultPlan parseFaultPlan(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path, std::ios::binary);
    VODSM_CHECK_MSG(in.good(), "cannot read fault plan file: " << path);
    std::ostringstream text;
    text << in.rdbuf();
    return planFromJson(support::Json::parse(text.str()));
  }
  FaultPlan plan;
  appendSpec(plan, spec, 0);
  return plan;
}

std::string chaosProfileSpec(const std::string& name) {
  // Windows and rates are sized for the chaos suite's small app runs
  // (simulated seconds of work on 4-8 nodes). The burst period is chosen
  // not to divide the default 1 s RTO, so a retransmission of a frame lost
  // in one outage does not land in the next outage's phase.
  if (name == "lossy") return "loss:p=0.01";
  if (name == "bursty") return "burst:period=0.313,duty=0.005";
  if (name == "degraded") return "degrade:bw=4,lat=0.0003";
  if (name == "partition") return "partition:nodes=1,t0=0.002,t1=0.012";
  if (name == "straggler") return "slow:node=1,factor=6,t0=0.001,t1=0.25";
  if (name == "flaky") return "dup:p=0.02;reorder:p=0.05,delay=0.0005";
  if (name == "mixed")
    return "loss:p=0.003;dup:p=0.01;reorder:p=0.02,delay=0.0005;"
           "degrade:bw=2,t0=0.1,t1=0.4";
  throw Error("unknown chaos profile: " + name);
}

std::vector<std::string> chaosProfileNames() {
  return {"lossy",     "bursty", "degraded", "partition",
          "straggler", "flaky",  "mixed"};
}

sim::Time FaultInjector::NodeScaler::scale(sim::Time dt,
                                           sim::Time now) const {
  double f = 1.0;
  for (const FaultRule* r : rules_)
    if (ruleActive(*r, now)) f *= r->factor;
  if (f == 1.0) return dt;
  return static_cast<sim::Time>(std::llround(static_cast<double>(dt) * f));
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t run_seed, int n_nodes)
    : plan_(std::move(plan)) {
  const uint64_t base = plan_.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL) ^
                        0x5ca1ab1e0ddba11ULL;
  shards_.reserve(static_cast<size_t>(n_nodes));
  for (NodeId dst = 0; dst < static_cast<NodeId>(n_nodes); ++dst)
    shards_.push_back(
        Shard{sim::Rng(base ^ ((dst + 1) * 0x9e3779b97f4a7c15ULL)),
              std::vector<uint64_t>(plan_.rules.size(), 0)});
  scalers_.resize(static_cast<size_t>(n_nodes));
  for (NodeId node = 0; node < static_cast<NodeId>(n_nodes); ++node) {
    std::vector<const FaultRule*> slow;
    for (const FaultRule& r : plan_.rules)
      if (r.kind == FaultKind::kSlow &&
          (r.node == kAnyNode || r.node == node))
        slow.push_back(&r);
    if (!slow.empty())
      scalers_[node] = std::make_unique<NodeScaler>(std::move(slow));
  }
}

const sim::ChargeScaler* FaultInjector::chargeScalerFor(NodeId node) const {
  if (node >= scalers_.size()) return nullptr;
  return scalers_[node].get();
}

uint64_t FaultInjector::droppedBy(size_t i) const {
  uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.used[i];
  return total;
}

FaultAction FaultInjector::onFrame(NodeId src, NodeId dst, sim::Time now) {
  VODSM_DCHECK(dst < shards_.size());
  Shard& sh = shards_[dst];
  FaultAction a;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& r = plan_.rules[i];
    if (r.kind == FaultKind::kSlow) continue;
    if (!ruleActive(r, now) || !linkMatches(r, src, dst)) continue;
    switch (r.kind) {
      case FaultKind::kLoss:
        if (sh.used[i] < r.budget && sh.rng.chance(r.p)) {
          sh.used[i]++;
          a.drop = true;
          a.cause = r.kind;
          return a;
        }
        break;
      case FaultKind::kBurst:
      case FaultKind::kPartition:
        if (sh.used[i] < r.budget) {
          sh.used[i]++;
          a.drop = true;
          a.cause = r.kind;
          return a;
        }
        break;
      case FaultKind::kDup:
        if (!a.duplicate && sh.rng.chance(r.p)) a.duplicate = true;
        break;
      case FaultKind::kReorder:
        if (sh.rng.chance(r.p)) {
          a.reordered = true;
          a.extra_delay += r.delay;
        }
        break;
      case FaultKind::kDegrade:
        a.degraded = true;
        a.tx_factor *= r.factor;
        a.extra_delay += r.delay;
        break;
      case FaultKind::kSlow:
        break;
    }
  }
  return a;
}

}  // namespace vodsm::net
