// Reliable datagram transport over the lossy network model.
//
// Two primitives, mirroring how TreadMarks-era DSMs used UDP:
//
//  * post()    — one-way reliable message. The receiver acknowledges with a
//                small Ack frame; the sender retransmits on timeout until
//                acked. Used for grants, releases, barrier traffic: anything
//                whose logical response may be arbitrarily delayed.
//  * request() — RPC with bounded service time (diff fetches, notice
//                fetches). The reply acts as the acknowledgement: the sender
//                retransmits the request on timeout, and the responder
//                caches its reply so a duplicate request is answered by a
//                resend instead of re-execution (at-most-once processing).
//
// Duplicate suppression uses per-sender sequence numbers with a watermark +
// sparse-set tracker. Self-addressed messages bypass the wire (and the
// statistics) entirely, modeling intra-node manager access.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/task.hpp"
#include "sim/waiter.hpp"

namespace vodsm::net {

struct Delivery {
  NodeId src = 0;
  uint16_t type = 0;
  Bytes payload;
  sim::Time arrive = 0;
};

// Identifies a request so a handler can answer it (possibly later).
struct ReplyToken {
  NodeId requester = 0;
  uint64_t seq = 0;
};

struct RpcResult {
  uint16_t type = 0;
  Bytes payload;
  sim::Time arrive = 0;
};

// Tracks which sequence numbers from one peer have been processed.
class SeqTracker {
 public:
  // Returns true when `seq` is new (and marks it).
  bool markSeen(uint64_t seq) {
    if (seq < watermark_) return false;
    if (!sparse_.insert(seq).second) return false;
    // Advance the contiguous watermark.
    while (sparse_.count(watermark_)) {
      sparse_.erase(watermark_);
      ++watermark_;
    }
    return true;
  }

 private:
  uint64_t watermark_ = 0;
  std::unordered_set<uint64_t> sparse_;
};

class Endpoint {
 public:
  using Handler = std::function<void(Delivery&&, const ReplyToken&)>;

  Endpoint(sim::Engine& engine, Network& network, NodeId self,
           sim::Time local_delivery = sim::usec(2))
      : engine_(engine),
        network_(network),
        self_(self),
        local_delivery_(local_delivery) {
    network_.setDeliver(self_, [this](NodeId src, Bytes frame,
                                      sim::Time arrive) {
      onFrame(src, std::move(frame), arrive, /*via_wire=*/true);
    });
  }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId self() const { return self_; }
  void setHandler(Handler h) { handler_ = std::move(h); }

  // Maps the opaque u16 message type onto a MsgClass for the per-kind
  // traffic breakdown. Installed by the protocol layer; without one all
  // traffic counts as kOther.
  void setClassifier(Classifier c) { classify_ = c; }

  // Optional event recorder for send/deliver/retransmit instants. Null (the
  // default) disables recording; observation never charges simulated time.
  void setTrace(obs::TraceRecorder* t) { trace_ = t; }

  // Reliable one-way message, leaving the node no earlier than `earliest`.
  void post(NodeId dst, uint16_t type, Bytes payload, sim::Time earliest) {
    const uint64_t seq = next_seq_++;
    Bytes frame = encode(FrameKind::kData, seq, type, payload);
    if (dst == self_) {
      sendLocal(std::move(frame), earliest);
      return;
    }
    countSend(type, payload.size());
    traceSend(type, payload.size(), earliest,
              obs::corrId(static_cast<uint8_t>(FrameKind::kData), self_, seq));
    auto [it, inserted] = pending_posts_.emplace(seq, Pending{dst, frame});
    VODSM_CHECK(inserted);
    network_.send(self_, dst, std::move(frame), earliest);
    armPostTimer(seq, it->second.epoch);
  }

  // RPC. The handler on `dst` must reply (promptly, well under one RTO).
  sim::Task<RpcResult> request(NodeId dst, uint16_t type, Bytes payload,
                               sim::Time earliest) {
    const uint64_t seq = next_seq_++;
    Bytes frame = encode(FrameKind::kRequest, seq, type, payload);
    auto pending = std::make_unique<PendingRpc>();
    PendingRpc* p = pending.get();
    pending_rpcs_.emplace(seq, std::move(pending));
    if (dst == self_) {
      // Self-addressed requests are never retransmitted, so the frame can be
      // moved straight into local delivery instead of copied.
      sendLocal(std::move(frame), earliest);
    } else {
      countSend(type, payload.size());
      traceSend(
          type, payload.size(), earliest,
          obs::corrId(static_cast<uint8_t>(FrameKind::kRequest), self_, seq));
      p->dst = dst;
      p->frame = frame;
      network_.send(self_, dst, std::move(frame), earliest);
      armRpcTimer(seq, p->epoch);
    }
    RpcResult result = co_await p->waiter;
    pending_rpcs_.erase(seq);
    co_return result;
  }

  // Answer a request identified by `token`. May be called from the handler
  // or later (the requester keeps retransmitting until it sees the reply, so
  // replies should not be deferred past ~RTO).
  void reply(const ReplyToken& token, uint16_t type, Bytes payload,
             sim::Time earliest) {
    Bytes frame = encode(FrameKind::kReply, token.seq, type, payload);
    if (token.requester == self_) {
      sendLocal(std::move(frame), earliest);
      return;
    }
    cacheReply(token.requester, token.seq, frame);
    countSend(type, payload.size());
    traceSend(type, payload.size(), earliest,
              obs::corrId(static_cast<uint8_t>(FrameKind::kReply),
                          token.requester, token.seq));
    network_.send(self_, token.requester, std::move(frame), earliest);
  }

  // Transport counters land in this node's shard: every mutation here runs
  // in this node's lane, so shards are never written concurrently.
  NetStats& stats() { return network_.statsFor(self_); }

 private:
  struct Pending {
    NodeId dst = 0;
    Bytes frame;
    uint64_t epoch = 0;  // bumped on completion to invalidate timers
    bool done = false;
  };
  struct PendingRpc {
    NodeId dst = 0;
    Bytes frame;
    uint64_t epoch = 0;
    sim::Waiter<RpcResult> waiter;
  };

  static Bytes encode(FrameKind kind, uint64_t seq, uint16_t type,
                      ByteSpan payload) {
    Writer w(payload.size() + 16);
    w.u8(static_cast<uint8_t>(kind));
    w.u64(seq);
    w.u16(type);
    w.blob(payload);
    return w.take();
  }

  MsgClass classify(uint16_t type) const {
    return classify_ ? classify_(type) : MsgClass::kOther;
  }

  void countSend(uint16_t type, size_t payload_bytes) {
    NetStats& s = stats();
    s.messages++;
    s.payload_bytes += payload_bytes;
    KindStats& k = s.of(classify(type));
    k.messages++;
    k.payload_bytes += payload_bytes;
  }

  void traceSend(uint16_t type, size_t payload_bytes, sim::Time ts,
                 uint64_t corr) {
    if (trace_)
      trace_->instant(static_cast<uint32_t>(self_), obs::Cat::kSend, ts, type,
                      payload_bytes, corr);
  }

  // A retransmission counts as another message of the frame's class (the
  // paper's message counts include retransmissions) and is attributed to
  // that class separately so hot spots under loss are visible. `dst` is the
  // frame's target, needed to recover the sequence-number owner for the
  // correlation id (replies quote the requester's sequence space).
  void countRetransmit(const Bytes& frame, NodeId dst) {
    const uint16_t type = frameMsgType(frame);
    stats().retransmissions++;
    stats().of(classify(type)).retransmissions++;
    countSend(type, payloadSize(frame));
    // Deliberately not also a kSend instant: one event per wire action. The
    // correlation id ties the retransmission to the original send's flow.
    if (trace_)
      trace_->instant(static_cast<uint32_t>(self_), obs::Cat::kRetransmit,
                      engine_.now(), type, payloadSize(frame),
                      obs::corrId(frameKind(frame),
                                  frameSeqOwner(frame, self_, dst),
                                  frameSeq(frame)));
  }

  void sendLocal(Bytes frame, sim::Time earliest) {
    sim::Time at = std::max(earliest + local_delivery_, engine_.now());
    engine_.at(at, [this, f = std::move(frame)]() mutable {
      onFrame(self_, std::move(f), engine_.now(), /*via_wire=*/false);
    });
  }

  void armPostTimer(uint64_t seq, uint64_t epoch) {
    engine_.after(network_.config().rto, [this, seq, epoch] {
      auto it = pending_posts_.find(seq);
      if (it == pending_posts_.end() || it->second.epoch != epoch) return;
      countRetransmit(it->second.frame, it->second.dst);
      network_.send(self_, it->second.dst, Bytes(it->second.frame),
                    engine_.now());
      armPostTimer(seq, epoch);
    });
  }

  void armRpcTimer(uint64_t seq, uint64_t epoch) {
    engine_.after(network_.config().rto, [this, seq, epoch] {
      auto it = pending_rpcs_.find(seq);
      if (it == pending_rpcs_.end() || it->second->epoch != epoch) return;
      countRetransmit(it->second->frame, it->second->dst);
      network_.send(self_, it->second->dst, Bytes(it->second->frame),
                    engine_.now());
      armRpcTimer(seq, epoch);
    });
  }

  static size_t payloadSize(const Bytes& frame) {
    // Header is kind(1) + seq(8) + type(2) + blob length(4).
    return frame.size() - 15;
  }

  void onFrame(NodeId src, Bytes frame, sim::Time arrive, bool via_wire) {
    Reader r(frame);
    const auto kind = static_cast<FrameKind>(r.u8());
    const uint64_t seq = r.u64();
    if (trace_ && via_wire)
      trace_->instant(static_cast<uint32_t>(self_), obs::Cat::kDeliver, arrive,
                      static_cast<uint64_t>(kind), frame.size(),
                      obs::corrId(static_cast<uint8_t>(kind),
                                  frameSeqOwner(frame, src, self_), seq));
    switch (kind) {
      case FrameKind::kAck: {
        auto it = pending_posts_.find(seq);
        if (it != pending_posts_.end()) {
          it->second.epoch++;
          pending_posts_.erase(it);
        }
        return;
      }
      case FrameKind::kReply: {
        auto it = pending_rpcs_.find(seq);
        if (it == pending_rpcs_.end()) return;  // duplicate reply
        PendingRpc& p = *it->second;
        p.epoch++;
        const uint16_t type = r.u16();
        ByteSpan payload = r.blob();
        p.waiter.fulfill(
            RpcResult{type, Bytes(payload.begin(), payload.end()), arrive});
        return;
      }
      case FrameKind::kData: {
        if (via_wire) sendAck(src, seq);
        if (!seen_[src].markSeen(seq)) return;  // duplicate
        const uint16_t type = r.u16();
        ByteSpan payload = r.blob();
        dispatch(src, type, payload, arrive, ReplyToken{});
        return;
      }
      case FrameKind::kRequest: {
        if (!seen_[src].markSeen(seq)) {
          // Duplicate request: resend the cached reply if we already
          // answered; otherwise the original is still being processed and
          // the requester's next timeout will retry.
          auto cit = reply_cache_.find(src);
          if (cit != reply_cache_.end()) {
            auto rit = cit->second.find(seq);
            if (rit != cit->second.end() && via_wire) {
              countRetransmit(rit->second, src);
              network_.send(self_, src, Bytes(rit->second), engine_.now());
            }
          }
          return;
        }
        const uint16_t type = r.u16();
        ByteSpan payload = r.blob();
        dispatch(src, type, payload, arrive, ReplyToken{src, seq});
        return;
      }
    }
  }

  void dispatch(NodeId src, uint16_t type, ByteSpan payload, sim::Time arrive,
                const ReplyToken& token) {
    VODSM_CHECK_MSG(handler_, "no handler installed on endpoint");
    handler_(Delivery{src, type, Bytes(payload.begin(), payload.end()), arrive},
             token);
  }

  // Keep only the most recent replies per requester: a requester
  // retransmits within ~RTO of the original, so old entries are dead.
  void cacheReply(NodeId requester, uint64_t seq, Bytes frame) {
    static constexpr size_t kMaxCached = 64;
    auto& cache = reply_cache_[requester];
    auto& order = reply_order_[requester];
    cache[seq] = std::move(frame);
    order.push_back(seq);
    while (order.size() > kMaxCached) {
      cache.erase(order.front());
      order.pop_front();
    }
  }

  void sendAck(NodeId src, uint64_t seq) {
    Writer w(16);
    w.u8(static_cast<uint8_t>(FrameKind::kAck));
    w.u64(seq);
    stats().acks++;
    // Acks are counted outside the message statistics, but they are traced:
    // graph analysis wants every deliver to have a matching send. Type 0 is
    // reserved (protocol message types start at 1).
    if (trace_)
      trace_->instant(static_cast<uint32_t>(self_), obs::Cat::kSend,
                      engine_.now(), 0, 0,
                      obs::corrId(static_cast<uint8_t>(FrameKind::kAck), src,
                                  seq));
    network_.send(self_, src, w.take(), engine_.now());
  }

  sim::Engine& engine_;
  Network& network_;
  NodeId self_;
  sim::Time local_delivery_;
  Handler handler_;
  Classifier classify_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  uint64_t next_seq_ = 0;
  std::unordered_map<uint64_t, Pending> pending_posts_;
  std::unordered_map<uint64_t, std::unique_ptr<PendingRpc>> pending_rpcs_;
  std::unordered_map<NodeId, SeqTracker> seen_;
  std::unordered_map<NodeId, std::unordered_map<uint64_t, Bytes>> reply_cache_;
  std::unordered_map<NodeId, std::deque<uint64_t>> reply_order_;
};

}  // namespace vodsm::net
