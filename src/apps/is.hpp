// Integer Sort (IS): bucket-sort ranking of N keys in [0, max_key].
//
// Mirrors the paper's IS (Section 5.1): per iteration every processor
// histograms its keys locally, folds the histogram into a shared global
// bucket array, and then ranks its own keys against the global prefix sums.
//
// Variants:
//  * kTraditional       — barrier-only: a shared per-processor histogram
//                         matrix plus a shared global bucket array; three
//                         barriers per iteration. Runs on LRC_d.
//  * kVopp              — the same algorithm converted to views: one
//                         contribution view per (writer, partition) slice —
//                         home-local writes — and one view per reduced
//                         global-count partition; same barrier count.
//  * kVoppFewerBarriers — the paper's Section 3.2 optimization: the barrier
//                         that only guarded buffer reuse is removed (view
//                         exclusivity plus the two phase barriers already
//                         order every reuse).
#pragma once

#include <cstdint>
#include <vector>

#include "harness/run.hpp"

namespace vodsm::apps {

struct IsParams {
  size_t n_keys = 1 << 16;
  uint32_t max_key = (1 << 10) - 1;  // bucket count = max_key + 1
  int iterations = 10;
  uint64_t key_seed = 1234;
  sim::Time op_ns = 25;  // cost of one elementary CPU op (350 MHz era)
};

enum class IsVariant { kTraditional, kVopp, kVoppFewerBarriers };

struct IsRun {
  harness::RunResult result;
  // Per-processor checksum: sum of the ranks of that processor's keys.
  std::vector<int64_t> rank_sums;
};

// Deterministic key stream shared by all variants and the serial reference.
// Keys change every iteration (as in NPB IS) so each ranking round does
// real work; the published checksums are those of the final iteration.
uint32_t isKey(uint64_t seed, int iteration, uint64_t global_index,
               uint32_t max_key);

// Serial reference: per-processor-partition rank checksums of the final
// iteration.
std::vector<int64_t> isSerialRankSums(const IsParams& p, int nprocs);

IsRun runIs(const harness::RunConfig& config, const IsParams& params,
            IsVariant variant);

}  // namespace vodsm::apps
