#include "apps/nn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "msg/world.hpp"
#include "vopp/cluster.hpp"

namespace vodsm::apps {

namespace {

constexpr double kScale = 1099511627776.0;  // 2^40 fixed-point grad scale

double hash01(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t z = seed ^ (a * 0x9e3779b97f4a7c15ULL + b * 0xd1342543de82ef95ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

struct Net {
  int I, H, O;
  size_t weightCount() const {
    return static_cast<size_t>(I + 1) * static_cast<size_t>(H) +
           static_cast<size_t>(H + 1) * static_cast<size_t>(O);
  }
  // w1(i, j) at [i*H + j]; w2(j, k) at [(I+1)*H + j*O + k].
  size_t w1(int i, int j) const {
    return static_cast<size_t>(i) * static_cast<size_t>(H) +
           static_cast<size_t>(j);
  }
  size_t w2(int j, int k) const {
    return static_cast<size_t>(I + 1) * static_cast<size_t>(H) +
           static_cast<size_t>(j) * static_cast<size_t>(O) +
           static_cast<size_t>(k);
  }
};

void initWeights(const NnParams& p, const Net& net, std::vector<double>& w) {
  w.resize(net.weightCount());
  for (size_t i = 0; i < w.size(); ++i)
    w[i] = hash01(p.seed * 31 + 7, i, 0) * 0.5 - 0.25;
}

// Accumulate the batch gradient of one processor's sample slice.
void gradientSlice(const NnParams& p, const Net& net,
                   const std::vector<double>& w, size_t s_lo, size_t s_hi,
                   std::vector<double>& grad) {
  std::fill(grad.begin(), grad.end(), 0.0);
  std::vector<double> x(static_cast<size_t>(net.I));
  std::vector<double> h(static_cast<size_t>(net.H));
  std::vector<double> o(static_cast<size_t>(net.O));
  std::vector<double> t(static_cast<size_t>(net.O));
  std::vector<double> dout(static_cast<size_t>(net.O));
  std::vector<double> dh(static_cast<size_t>(net.H));
  for (size_t s = s_lo; s < s_hi; ++s) {
    for (int i = 0; i < net.I; ++i)
      x[static_cast<size_t>(i)] =
          hash01(p.seed, s, static_cast<uint64_t>(i)) * 2 - 1;
    for (int k = 0; k < net.O; ++k)
      t[static_cast<size_t>(k)] =
          hash01(p.seed * 13 + 5, s, static_cast<uint64_t>(k)) * 2 - 1;
    for (int j = 0; j < net.H; ++j) {
      double a = w[net.w1(net.I, j)];
      for (int i = 0; i < net.I; ++i)
        a += w[net.w1(i, j)] * x[static_cast<size_t>(i)];
      h[static_cast<size_t>(j)] = std::tanh(a);
    }
    for (int k = 0; k < net.O; ++k) {
      double a = w[net.w2(net.H, k)];
      for (int j = 0; j < net.H; ++j)
        a += w[net.w2(j, k)] * h[static_cast<size_t>(j)];
      o[static_cast<size_t>(k)] = std::tanh(a);
    }
    for (int k = 0; k < net.O; ++k) {
      double ok = o[static_cast<size_t>(k)];
      dout[static_cast<size_t>(k)] =
          (ok - t[static_cast<size_t>(k)]) * (1 - ok * ok);
    }
    for (int j = 0; j < net.H; ++j) {
      double acc = 0;
      for (int k = 0; k < net.O; ++k)
        acc += w[net.w2(j, k)] * dout[static_cast<size_t>(k)];
      double hj = h[static_cast<size_t>(j)];
      dh[static_cast<size_t>(j)] = acc * (1 - hj * hj);
    }
    for (int j = 0; j < net.H; ++j) {
      for (int i = 0; i < net.I; ++i)
        grad[net.w1(i, j)] +=
            x[static_cast<size_t>(i)] * dh[static_cast<size_t>(j)];
      grad[net.w1(net.I, j)] += dh[static_cast<size_t>(j)];
    }
    for (int k = 0; k < net.O; ++k) {
      for (int j = 0; j < net.H; ++j)
        grad[net.w2(j, k)] +=
            h[static_cast<size_t>(j)] * dout[static_cast<size_t>(k)];
      grad[net.w2(net.H, k)] += dout[static_cast<size_t>(k)];
    }
  }
}

void quantize(const std::vector<double>& grad, std::vector<int64_t>& q) {
  q.resize(grad.size());
  for (size_t i = 0; i < grad.size(); ++i)
    q[i] = static_cast<int64_t>(std::llround(grad[i] * kScale));
}

void applyDeltas(std::vector<double>& w, const std::vector<int64_t>& q,
                 double lr) {
  for (size_t i = 0; i < w.size(); ++i)
    w[i] -= lr * (static_cast<double>(q[i]) / kScale);
}

double weightChecksum(const std::vector<double>& w) {
  double sum = 0;
  for (double v : w) sum += std::fabs(v);
  return sum;
}

size_t sampleLo(size_t samples, int nprocs, int pid) {
  return static_cast<size_t>(pid) * samples / static_cast<size_t>(nprocs);
}
size_t sampleHi(size_t samples, int nprocs, int pid) {
  return static_cast<size_t>(pid + 1) * samples / static_cast<size_t>(nprocs);
}

sim::Time epochComputeCost(const NnParams& p, const Net& net, size_t mine) {
  const uint64_t flops_per_sample =
      4ull * (static_cast<uint64_t>(net.I) * static_cast<uint64_t>(net.H) +
              static_cast<uint64_t>(net.H) * static_cast<uint64_t>(net.O)) +
      8ull * static_cast<uint64_t>(net.H + net.O);  // tanh etc.
  return static_cast<sim::Time>(flops_per_sample * mine) * p.flop_ns;
}

}  // namespace

double nnSerialChecksum(const NnParams& p, int nprocs) {
  Net net{p.inputs, p.hidden, p.outputs};
  std::vector<double> w;
  initWeights(p, net, w);
  std::vector<double> grad(net.weightCount());
  std::vector<int64_t> q, total(net.weightCount());
  for (int e = 0; e < p.epochs; ++e) {
    std::fill(total.begin(), total.end(), int64_t{0});
    for (int pr = 0; pr < nprocs; ++pr) {
      gradientSlice(p, net, w, sampleLo(p.samples, nprocs, pr),
                    sampleHi(p.samples, nprocs, pr), grad);
      quantize(grad, q);
      for (size_t i = 0; i < total.size(); ++i) total[i] += q[i];
    }
    applyDeltas(w, total, p.lr);
  }
  return weightChecksum(w);
}

namespace {

// Both variants gather per-processor weight deltas at the master each
// epoch ("the errors of the weights are gathered from each processor"):
// every processor publishes its quantized gradient into its own delta slot,
// the master folds them, applies the update, and republishes the weights.
// No locks anywhere — the traditional program is barrier-only, and the VOPP
// conversion turns each slot into a view homed at the master (its consumer)
// plus a master-managed weights view read through acquire_Rview (Section
// 3.4). Homing the delta views at the master means VC_sd's release-time
// diff pushes deliver the gradients to where they are folded.
struct NnLayout {
  size_t nw = 0;
  // VOPP: delta view per processor plus the master-managed weights view.
  std::vector<dsm::ViewId> delta_views;
  dsm::ViewId weights_view = 0;
  dsm::ViewId result_view = 0;
  // traditional
  size_t weights_off = 0;
  size_t deltas_off = 0;  // P rows of nw int64 accumulators
  size_t result_off = 0;
};

sim::Task<void> nnVopp(vopp::Node& node, const NnParams& p,
                       const NnLayout& lay) {
  Net net{p.inputs, p.hidden, p.outputs};
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t s_lo = sampleLo(p.samples, P, pid);
  const size_t s_hi = sampleHi(p.samples, P, pid);

  // Processor 0 publishes the initial weights.
  const size_t woff = node.cluster().viewOffset(lay.weights_view);
  if (pid == 0) {
    std::vector<double> w;
    initWeights(p, net, w);
    co_await node.acquireView(lay.weights_view);
    co_await node.copyIn(woff, ByteSpan(reinterpret_cast<const std::byte*>(
                                            w.data()),
                                        w.size() * 8));
    co_await node.releaseView(lay.weights_view);
  }
  co_await node.barrier();

  std::vector<double> w(lay.nw), grad(lay.nw);
  std::vector<int64_t> q;
  for (int e = 0; e < p.epochs; ++e) {
    // 1. Read the weights concurrently (Section 3.4: acquire_Rview keeps
    // the major phase parallel).
    co_await node.acquireRview(lay.weights_view);
    co_await node.copyOut(woff, MutByteSpan(reinterpret_cast<std::byte*>(
                                                w.data()),
                                            lay.nw * 8));
    co_await node.releaseRview(lay.weights_view);

    // 2. Local training on the local slice of the training set.
    gradientSlice(p, net, w, s_lo, s_hi, grad);
    quantize(grad, q);
    node.charge(epochComputeCost(p, net, s_hi - s_lo));

    // 3. Publish my quantized gradient into my own delta view (the view is
    // self-managed, so this stays off the wire until the master reads it).
    {
      dsm::ViewId v = lay.delta_views[static_cast<size_t>(pid)];
      co_await node.acquireView(v);
      co_await node.copyIn(node.cluster().viewOffset(v),
                           ByteSpan(reinterpret_cast<const std::byte*>(
                                        q.data()),
                                    lay.nw * 8));
      co_await node.releaseView(v);
    }
    co_await node.barrier();

    // 4. The master gathers every processor's deltas, folds them, and
    // republishes the weights.
    if (pid == 0) {
      std::vector<int64_t> total(lay.nw, 0);
      std::vector<int64_t> slot(lay.nw);
      for (int s = 0; s < P; ++s) {
        dsm::ViewId v = lay.delta_views[static_cast<size_t>(s)];
        co_await node.acquireRview(v);
        co_await node.copyOut(node.cluster().viewOffset(v),
                              MutByteSpan(reinterpret_cast<std::byte*>(
                                              slot.data()),
                                          lay.nw * 8));
        for (size_t k = 0; k < lay.nw; ++k) total[k] += slot[k];
        co_await node.releaseRview(v);
      }
      applyDeltas(w, total, p.lr);
      node.chargeOps(lay.nw * 2, 5);
      co_await node.acquireView(lay.weights_view);
      co_await node.copyIn(woff, ByteSpan(reinterpret_cast<const std::byte*>(
                                              w.data()),
                                          lay.nw * 8));
      co_await node.releaseView(lay.weights_view);
    }
    co_await node.barrier();
  }

  if (pid == 0) {
    co_await node.acquireRview(lay.weights_view);
    co_await node.copyOut(woff, MutByteSpan(reinterpret_cast<std::byte*>(
                                                w.data()),
                                            lay.nw * 8));
    co_await node.releaseRview(lay.weights_view);
    double sum = weightChecksum(w);
    co_await node.acquireView(lay.result_view);
    size_t roff = node.cluster().viewOffset(lay.result_view);
    co_await node.touchWrite(roff, 8);
    std::memcpy(node.mem(roff, 8).data(), &sum, 8);
    co_await node.releaseView(lay.result_view);
  }
  co_await node.barrier();
}

sim::Task<void> nnTraditional(vopp::Node& node, const NnParams& p,
                              const NnLayout& lay) {
  Net net{p.inputs, p.hidden, p.outputs};
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t s_lo = sampleLo(p.samples, P, pid);
  const size_t s_hi = sampleHi(p.samples, P, pid);

  if (pid == 0) {
    std::vector<double> w;
    initWeights(p, net, w);
    co_await node.touchWrite(lay.weights_off, lay.nw * 8);
    std::memcpy(node.mem(lay.weights_off, lay.nw * 8).data(), w.data(),
                lay.nw * 8);
  }
  co_await node.barrier();

  std::vector<double> w(lay.nw), grad(lay.nw);
  std::vector<int64_t> q;
  const size_t my_delta_off =
      lay.deltas_off + static_cast<size_t>(pid) * lay.nw * 8;
  for (int e = 0; e < p.epochs; ++e) {
    // Weights read directly from shared memory (faults on every epoch).
    co_await node.touchRead(lay.weights_off, lay.nw * 8);
    std::memcpy(w.data(), node.memView(lay.weights_off, lay.nw * 8).data(),
                lay.nw * 8);
    gradientSlice(p, net, w, s_lo, s_hi, grad);
    quantize(grad, q);
    node.charge(epochComputeCost(p, net, s_hi - s_lo));

    // Publish my delta row (barrier-only: no locks in the original NN).
    co_await node.touchWrite(my_delta_off, lay.nw * 8);
    std::memcpy(node.mem(my_delta_off, lay.nw * 8).data(), q.data(),
                lay.nw * 8);
    node.chargeOps(lay.nw, 5);
    co_await node.barrier();

    if (pid == 0) {
      std::vector<int64_t> total(lay.nw, 0);
      for (int s = 0; s < P; ++s) {
        size_t off = lay.deltas_off + static_cast<size_t>(s) * lay.nw * 8;
        co_await node.touchRead(off, lay.nw * 8);
        auto* row = reinterpret_cast<const int64_t*>(
            node.memView(off, lay.nw * 8).data());
        for (size_t k = 0; k < lay.nw; ++k) total[k] += row[k];
      }
      applyDeltas(w, total, p.lr);
      node.chargeOps(lay.nw * 2, 5);
      co_await node.touchWrite(lay.weights_off, lay.nw * 8);
      std::memcpy(node.mem(lay.weights_off, lay.nw * 8).data(), w.data(),
                  lay.nw * 8);
    }
    co_await node.barrier();
  }

  if (pid == 0) {
    co_await node.touchRead(lay.weights_off, lay.nw * 8);
    std::memcpy(w.data(), node.memView(lay.weights_off, lay.nw * 8).data(),
                lay.nw * 8);
    double sum = weightChecksum(w);
    co_await node.touchWrite(lay.result_off, 8);
    std::memcpy(node.mem(lay.result_off, 8).data(), &sum, 8);
  }
  co_await node.barrier();
}

double runNnMpi(const harness::RunConfig& config, const NnParams& p,
                harness::RunResult& result) {
  Net net{p.inputs, p.hidden, p.outputs};
  msg::World world({.nprocs = config.nprocs,
                    .net = config.net,
                    .seed = config.seed,
                    .sim_threads = config.sim_threads,
                    .faults = config.faults});
  double checksum = 0;
  world.run([&](msg::Rank& rank) -> sim::Task<void> {
    const size_t s_lo = sampleLo(p.samples, rank.size(), rank.id());
    const size_t s_hi = sampleHi(p.samples, rank.size(), rank.id());
    std::vector<double> w;
    initWeights(p, net, w);
    std::vector<double> grad(net.weightCount());
    std::vector<int64_t> q(net.weightCount());
    for (int e = 0; e < p.epochs; ++e) {
      gradientSlice(p, net, w, s_lo, s_hi, grad);
      std::vector<int64_t> total;
      quantize(grad, total);
      rank.charge(epochComputeCost(p, net, s_hi - s_lo));
      co_await rank.allreduce(total);
      applyDeltas(w, total, p.lr);
      rank.chargeOps(net.weightCount(), 5);
    }
    if (rank.id() == 0) checksum = weightChecksum(w);
    co_await rank.barrier();
  });
  result.seconds = world.seconds();
  result.net = world.netStats();
  return checksum;
}

}  // namespace

NnRun runNn(const harness::RunConfig& config, const NnParams& params,
            NnVariant variant) {
  NnRun out;
  if (variant == NnVariant::kMpi) {
    out.checksum = runNnMpi(config, params, out.result);
    return out;
  }
  VODSM_CHECK_MSG(variant != NnVariant::kTraditional ||
                      config.protocol == dsm::Protocol::kLrcDiff,
                  "traditional NN runs on LRC_d only");
  vopp::Cluster cluster({.nprocs = config.nprocs,
                         .protocol = config.protocol,
                         .net = config.net,
                         .costs = config.costs,
                         .proto = config.proto,
                         .seed = config.seed,
                         .sim_threads = config.sim_threads,
                         .trace = config.trace,
                         .metrics = config.metrics,
                         .faults = config.faults});
  NnLayout lay;
  Net net{params.inputs, params.hidden, params.outputs};
  lay.nw = net.weightCount();
  if (variant == NnVariant::kVopp) {
    // Delta views are homed at the master (their consumer): under VC_sd the
    // writers' releases push the gradients straight to node 0, so the
    // gather is local there.
    for (int s = 0; s < config.nprocs; ++s)
      lay.delta_views.push_back(cluster.defineView(lay.nw * 8, 0));
    // The weights view is also master-managed (the master is its writer).
    lay.weights_view = cluster.defineView(lay.nw * 8, 0);
    lay.result_view = cluster.defineView(8, 0);
    lay.result_off = cluster.viewOffset(lay.result_view);
  } else {
    lay.weights_off = cluster.allocShared(lay.nw * 8);
    lay.deltas_off = cluster.allocShared(
        static_cast<size_t>(config.nprocs) * lay.nw * 8);
    lay.result_off = cluster.allocShared(8);
  }
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    return variant == NnVariant::kVopp ? nnVopp(node, params, lay)
                                       : nnTraditional(node, params, lay);
  });
  harness::collectResult(cluster, config, out.result);
  auto raw = cluster.memoryOf(0, lay.result_off, 8);
  std::memcpy(&out.checksum, raw.data(), 8);
  return out;
}

}  // namespace vodsm::apps
