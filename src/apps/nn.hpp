// NN: data-parallel back-propagation training of a feed-forward network
// (inputs -> hidden -> outputs, tanh activations, batch gradient descent).
//
// Every processor trains on its slice of the training set and the weight
// deltas are combined once per epoch. Gradients are accumulated in 64-bit
// fixed point so the combined update is bit-identical regardless of the
// order processors fold their contributions in — which makes the serial,
// DSM, and MPI variants exactly comparable.
//
// Variants:
//  * kTraditional — weights and delta accumulators in shared memory; deltas
//    folded under one lock; runs on LRC_d.
//  * kVopp — the paper's Section 3.1/3.4 conversion: training data in local
//    buffers, weights read concurrently through acquire_Rview, deltas folded
//    into partitioned delta views.
//  * kMpi — the paper's Table 9 baseline: same computation over the msg
//    (MPI-like) library with an allreduce per epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/run.hpp"

namespace vodsm::apps {

struct NnParams {
  int inputs = 9;
  int hidden = 40;
  int outputs = 1;
  size_t samples = 256;
  int epochs = 8;  // paper: 235
  double lr = 0.05;
  uint64_t seed = 55;
  sim::Time flop_ns = 30;
};

enum class NnVariant { kTraditional, kVopp, kMpi };

struct NnRun {
  harness::RunResult result;
  double checksum = 0;  // sum of |w| over the trained weights
};

// Serial reference (same per-processor gradient quantization, so the
// checksum matches the parallel runs bit for bit).
double nnSerialChecksum(const NnParams& p, int nprocs);

NnRun runNn(const harness::RunConfig& config, const NnParams& params,
            NnVariant variant);

}  // namespace vodsm::apps
