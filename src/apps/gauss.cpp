#include "apps/gauss.hpp"

#include <algorithm>
#include <cstring>

#include "vopp/cluster.hpp"

namespace vodsm::apps {

namespace {

double cell(uint64_t seed, size_t i, size_t j, size_t n) {
  uint64_t z = seed ^ (i * 0x9e3779b97f4a7c15ULL + j * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  double v = 1.0 + static_cast<double>(z >> 11) * 0x1.0p-53;
  if (i == j) v += static_cast<double>(n);  // diagonal dominance
  return v;
}

size_t rowLo(size_t n, int nprocs, int pid) {
  return static_cast<size_t>(pid) * n / static_cast<size_t>(nprocs);
}
size_t rowHi(size_t n, int nprocs, int pid) {
  return static_cast<size_t>(pid + 1) * n / static_cast<size_t>(nprocs);
}

void eliminateRow(double* row, const double* pivot, size_t k, size_t n) {
  const double f = row[k] / pivot[k];
  for (size_t j = k; j < n; ++j) row[j] -= f * pivot[j];
}

}  // namespace

double gaussSerialChecksum(const GaussParams& p) {
  const size_t n = p.n;
  std::vector<double> a(n * n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a[i * n + j] = cell(p.seed, i, j, n);
  for (size_t k = 0; k + 1 < n; ++k)
    for (size_t i = k + 1; i < n; ++i)
      eliminateRow(&a[i * n], &a[k * n], k, n);
  double sum = 0;
  for (double v : a) sum += v;
  return sum;
}

namespace {

struct GaussLayout {
  // VOPP
  std::vector<dsm::ViewId> block_views;  // one per processor
  dsm::ViewId pivot_views[2] = {0, 0};   // parity-alternating pivot rows
  dsm::ViewId result_view = 0;
  // traditional
  size_t matrix_off = 0;
  size_t result_off = 0;
};

sim::Task<void> gaussVopp(vopp::Node& node, const GaussParams& p,
                          const GaussLayout& lay) {
  const size_t n = p.n;
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t lo = rowLo(n, P, pid), hi = rowHi(n, P, pid);
  const size_t mine = hi - lo;
  const size_t row_bytes = n * sizeof(double);

  // Processor 0 "reads the matrix in": it fills every block view.
  if (pid == 0) {
    for (int q = 0; q < P; ++q) {
      dsm::ViewId v = lay.block_views[static_cast<size_t>(q)];
      co_await node.acquireView(v);
      const size_t qlo = rowLo(n, P, q), qhi = rowHi(n, P, q);
      size_t off = node.cluster().viewOffset(v);
      co_await node.touchWrite(off, (qhi - qlo) * row_bytes);
      auto* m = reinterpret_cast<double*>(
          node.mem(off, (qhi - qlo) * row_bytes).data());
      for (size_t i = qlo; i < qhi; ++i)
        for (size_t j = 0; j < n; ++j)
          m[(i - qlo) * n + j] = cell(p.seed, i, j, n);
      node.chargeOps((qhi - qlo) * n, p.flop_ns);
      co_await node.releaseView(v);
    }
  }
  co_await node.barrier();

  // Copy own block into a local buffer (paper Section 3.1).
  std::vector<double> block(mine * n);
  {
    dsm::ViewId v = lay.block_views[static_cast<size_t>(pid)];
    co_await node.acquireView(v);
    co_await node.copyOut(
        node.cluster().viewOffset(v),
        MutByteSpan(reinterpret_cast<std::byte*>(block.data()),
                    block.size() * sizeof(double)));
    co_await node.releaseView(v);
  }
  co_await node.barrier();

  std::vector<double> pivot(n);
  int parity = 0;
  for (size_t k = 0; k + 1 < n; ++k) {
    const bool owner = k >= lo && k < hi;
    dsm::ViewId pv = lay.pivot_views[parity];
    if (owner) {
      co_await node.acquireView(pv);
      co_await node.copyIn(node.cluster().viewOffset(pv),
                           ByteSpan(reinterpret_cast<const std::byte*>(
                                        &block[(k - lo) * n]),
                                    row_bytes));
      co_await node.releaseView(pv);
    }
    co_await node.barrier();
    if (owner) {
      std::memcpy(pivot.data(), &block[(k - lo) * n], row_bytes);
    } else if (hi > k + 1) {  // only processors with rows below k need it
      co_await node.acquireRview(pv);
      co_await node.copyOut(node.cluster().viewOffset(pv),
                            MutByteSpan(reinterpret_cast<std::byte*>(
                                            pivot.data()),
                                        row_bytes));
      co_await node.releaseRview(pv);
    }
    // Eliminate my rows below k in the local buffer.
    const size_t first = std::max(lo, k + 1);
    for (size_t i = first; i < hi; ++i)
      eliminateRow(&block[(i - lo) * n], pivot.data(), k, n);
    if (hi > first) node.chargeOps((hi - first) * (n - k), p.flop_ns);
    parity ^= 1;
  }

  // Copy the block back and collect the checksum on processor 0.
  {
    dsm::ViewId v = lay.block_views[static_cast<size_t>(pid)];
    co_await node.acquireView(v);
    co_await node.copyIn(node.cluster().viewOffset(v),
                         ByteSpan(reinterpret_cast<const std::byte*>(
                                      block.data()),
                                  block.size() * sizeof(double)));
    co_await node.releaseView(v);
  }
  co_await node.barrier();
  if (pid == 0) {
    double sum = 0;
    for (int q = 0; q < P; ++q) {
      dsm::ViewId v = lay.block_views[static_cast<size_t>(q)];
      const size_t rows = rowHi(n, P, q) - rowLo(n, P, q);
      co_await node.acquireRview(v);
      size_t off = node.cluster().viewOffset(v);
      co_await node.touchRead(off, rows * row_bytes);
      auto* m = reinterpret_cast<const double*>(
          node.memView(off, rows * row_bytes).data());
      for (size_t i = 0; i < rows * n; ++i) sum += m[i];
      node.chargeOps(rows * n, p.flop_ns);
      co_await node.releaseRview(v);
    }
    co_await node.acquireView(lay.result_view);
    size_t roff = node.cluster().viewOffset(lay.result_view);
    co_await node.touchWrite(roff, 8);
    std::memcpy(node.mem(roff, 8).data(), &sum, 8);
    co_await node.releaseView(lay.result_view);
  }
  co_await node.barrier();
}

sim::Task<void> gaussTraditional(vopp::Node& node, const GaussParams& p,
                                 const GaussLayout& lay) {
  const size_t n = p.n;
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t lo = rowLo(n, P, pid), hi = rowHi(n, P, pid);
  const size_t row_bytes = n * sizeof(double);
  auto rowOff = [&](size_t i) { return lay.matrix_off + i * row_bytes; };

  if (pid == 0) {
    co_await node.touchWrite(lay.matrix_off, n * row_bytes);
    auto* m = reinterpret_cast<double*>(
        node.mem(lay.matrix_off, n * row_bytes).data());
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) m[i * n + j] = cell(p.seed, i, j, n);
    node.chargeOps(n * n, p.flop_ns);
  }
  co_await node.barrier();

  for (size_t k = 0; k + 1 < n; ++k) {
    const size_t first = std::max(lo, k + 1);
    if (hi > first) {
      // Read the pivot row straight from shared memory (page faults fetch
      // the owner's diffs, dragging along falsely shared neighbours).
      co_await node.touchRead(rowOff(k), row_bytes);
      auto* pivot = reinterpret_cast<const double*>(
          node.memView(rowOff(k), row_bytes).data());
      co_await node.touchWrite(rowOff(first), (hi - first) * row_bytes);
      auto* rows = reinterpret_cast<double*>(
          node.mem(rowOff(first), (hi - first) * row_bytes).data());
      for (size_t i = first; i < hi; ++i)
        eliminateRow(&rows[(i - first) * n], pivot, k, n);
      node.chargeOps((hi - first) * (n - k), p.flop_ns);
    }
    co_await node.barrier();
  }

  if (pid == 0) {
    co_await node.touchRead(lay.matrix_off, n * row_bytes);
    auto* m = reinterpret_cast<const double*>(
        node.memView(lay.matrix_off, n * row_bytes).data());
    double sum = 0;
    for (size_t i = 0; i < n * n; ++i) sum += m[i];
    node.chargeOps(n * n, p.flop_ns);
    co_await node.touchWrite(lay.result_off, 8);
    std::memcpy(node.mem(lay.result_off, 8).data(), &sum, 8);
  }
  co_await node.barrier();
}

}  // namespace

GaussRun runGauss(const harness::RunConfig& config, const GaussParams& params,
                  GaussVariant variant) {
  VODSM_CHECK_MSG(variant != GaussVariant::kTraditional ||
                      config.protocol == dsm::Protocol::kLrcDiff,
                  "traditional Gauss runs on LRC_d only");
  vopp::Cluster cluster({.nprocs = config.nprocs,
                         .protocol = config.protocol,
                         .net = config.net,
                         .costs = config.costs,
                         .proto = config.proto,
                         .seed = config.seed,
                         .sim_threads = config.sim_threads,
                         .trace = config.trace,
                         .metrics = config.metrics,
                         .faults = config.faults});
  GaussLayout lay;
  const size_t n = params.n;
  const size_t row_bytes = n * sizeof(double);
  if (variant == GaussVariant::kVopp) {
    for (int q = 0; q < config.nprocs; ++q) {
      size_t rows = rowHi(n, config.nprocs, q) - rowLo(n, config.nprocs, q);
      lay.block_views.push_back(
          cluster.defineView(std::max<size_t>(rows, 1) * row_bytes));
    }
    lay.pivot_views[0] = cluster.defineView(row_bytes);
    lay.pivot_views[1] = cluster.defineView(row_bytes);
    lay.result_view = cluster.defineView(sizeof(double));
    lay.result_off = cluster.viewOffset(lay.result_view);
  } else {
    lay.matrix_off = cluster.allocShared(n * row_bytes);
    lay.result_off = cluster.allocShared(sizeof(double));
  }

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    return variant == GaussVariant::kVopp ? gaussVopp(node, params, lay)
                                          : gaussTraditional(node, params, lay);
  });

  GaussRun out;
  harness::collectResult(cluster, config, out.result);
  auto raw = cluster.memoryOf(0, lay.result_off, 8);
  std::memcpy(&out.checksum, raw.data(), 8);
  return out;
}

}  // namespace vodsm::apps
