// Gauss: parallel Gaussian elimination (no pivoting; the synthetic matrix is
// made diagonally dominant so elimination is numerically stable).
//
// Row-block partitioning. Per elimination step k the owner of row k
// publishes it and every processor below eliminates its own rows.
//
// Variants:
//  * kTraditional — whole matrix in one shared region (rows are not page
//    aligned, so adjacent blocks falsely share pages); one barrier per step;
//    pivot rows read straight out of shared memory. Runs on LRC_d.
//  * kVopp — the paper's Section 3.1 conversion: each processor keeps its
//    row block in a *local buffer*; pivot rows travel through two small
//    parity-alternating pivot views; per-processor views hold the blocks
//    only for the initial distribution and final collection.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/run.hpp"

namespace vodsm::apps {

struct GaussParams {
  size_t n = 256;  // matrix dimension (paper used ~2k x 2k, 1024 steps)
  uint64_t seed = 77;
  sim::Time flop_ns = 30;  // one multiply-add on the 350 MHz testbed
};

enum class GaussVariant { kTraditional, kVopp };

struct GaussRun {
  harness::RunResult result;
  double checksum = 0;  // sum over the eliminated matrix
};

// Serial reference checksum (bit-identical arithmetic to the parallel runs).
double gaussSerialChecksum(const GaussParams& p);

GaussRun runGauss(const harness::RunConfig& config, const GaussParams& params,
                  GaussVariant variant);

}  // namespace vodsm::apps
