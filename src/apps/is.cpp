#include "apps/is.hpp"

#include <algorithm>

#include "vopp/cluster.hpp"

namespace vodsm::apps {

uint32_t isKey(uint64_t seed, int iteration, uint64_t global_index,
               uint32_t max_key) {
  uint64_t z = (seed ^ (static_cast<uint64_t>(iteration) *
                        0xd1342543de82ef95ULL)) +
               global_index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % (static_cast<uint64_t>(max_key) + 1));
}

std::vector<int64_t> isSerialRankSums(const IsParams& p, int nprocs) {
  const size_t buckets = static_cast<size_t>(p.max_key) + 1;
  const int last = p.iterations - 1;
  std::vector<int64_t> counts(buckets, 0);
  for (size_t i = 0; i < p.n_keys; ++i)
    counts[isKey(p.key_seed, last, i, p.max_key)]++;
  // prefix[k] = number of keys strictly smaller than k == rank of key k.
  std::vector<int64_t> prefix(buckets, 0);
  for (size_t k = 1; k < buckets; ++k)
    prefix[k] = prefix[k - 1] + counts[k - 1];
  std::vector<int64_t> sums(static_cast<size_t>(nprocs), 0);
  const size_t per = p.n_keys / static_cast<size_t>(nprocs);
  for (int pr = 0; pr < nprocs; ++pr) {
    const size_t lo = static_cast<size_t>(pr) * per;
    const size_t hi = pr == nprocs - 1 ? p.n_keys : lo + per;
    for (size_t i = lo; i < hi; ++i)
      sums[static_cast<size_t>(pr)] +=
          prefix[isKey(p.key_seed, last, i, p.max_key)];
  }
  return sums;
}

namespace {

// Both variants run the same ranking algorithm: every processor publishes
// its histogram row, reduces one bucket partition across all rows into a
// global section, and then reads the full global counts to rank its keys.
// The VOPP conversion (paper Section 3) replaces the raw shared regions
// with views: one view per histogram row, one per global section — so every
// shared page has a single writer and the buffer-reuse barrier becomes
// redundant (IsVariant::kVoppFewerBarriers removes it, Section 3.2).
struct IsLayout {
  size_t buckets = 0;
  // VOPP: views sized to how they are consumed (the paper's Section 3.6
  // rule of thumb). Contribution view (s, q) holds processor q's counts for
  // bucket partition s; ids are chosen so q manages its own slices, making
  // the per-iteration writes home-local, while the partition owner Rviews
  // exactly the slices it reduces.
  std::vector<dsm::ViewId> contrib_views;  // [s * P + q]: width(s) counts
  std::vector<dsm::ViewId> section_views;  // reduced global count partitions
  dsm::ViewId result_view = 0;
  // traditional: raw regions.
  size_t raw_hist_off = 0;     // [proc][bucket] counts
  size_t raw_buckets_off = 0;  // reduced global counts
  size_t result_off = 0;

  // Bucket partition reduced (and owned) by processor s.
  size_t sectionLo(int s, int nprocs) const {
    return static_cast<size_t>(s) * buckets / static_cast<size_t>(nprocs);
  }
  size_t sectionHi(int s, int nprocs) const {
    return static_cast<size_t>(s + 1) * buckets / static_cast<size_t>(nprocs);
  }
};

IsLayout buildLayout(vopp::Cluster& cluster, const IsParams& p, bool vopp) {
  IsLayout lay;
  lay.buckets = static_cast<size_t>(p.max_key) + 1;
  const int P = cluster.nprocs();
  if (vopp) {
    for (int s = 0; s < P; ++s) {
      size_t n = lay.sectionHi(s, P) - lay.sectionLo(s, P);
      for (int q = 0; q < P; ++q) {
        dsm::ViewId v = cluster.defineView(std::max<size_t>(n, 1) * 4);
        VODSM_CHECK(v % static_cast<uint32_t>(P) ==
                    static_cast<uint32_t>(q));  // q manages its own slice
        lay.contrib_views.push_back(v);
      }
    }
    for (int s = 0; s < P; ++s) {
      size_t n = lay.sectionHi(s, P) - lay.sectionLo(s, P);
      lay.section_views.push_back(
          cluster.defineView(std::max<size_t>(n, 1) * 4));
    }
    lay.result_view =
        cluster.defineView(static_cast<size_t>(P) * sizeof(int64_t));
    lay.result_off = cluster.viewOffset(lay.result_view);
  } else {
    // Traditional barrier-only IS (paper Table 1 reports zero lock acquires
    // for LRC_d).
    lay.raw_hist_off =
        cluster.allocShared(static_cast<size_t>(P) * lay.buckets * 4);
    lay.raw_buckets_off = cluster.allocShared(lay.buckets * 4);
    lay.result_off =
        cluster.allocShared(static_cast<size_t>(P) * sizeof(int64_t));
  }
  return lay;
}

// One processor's run, shared skeleton with per-variant hooks inlined.
sim::Task<void> isProgram(vopp::Node& node, const IsParams& p,
                          const IsLayout& lay, IsVariant variant) {
  const bool vopp = variant != IsVariant::kTraditional;
  const bool keep_reuse_barrier = variant != IsVariant::kVoppFewerBarriers;
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t per = p.n_keys / static_cast<size_t>(P);
  const size_t lo = static_cast<size_t>(pid) * per;
  const size_t hi = pid == P - 1 ? p.n_keys : lo + per;
  const size_t mine = hi - lo;

  // Local buffers (paper Section 3.1): keys and histogram live outside DSM.
  std::vector<uint32_t> keys(mine);
  std::vector<uint32_t> local_counts(lay.buckets, 0);
  std::vector<uint32_t> global_counts(lay.buckets, 0);
  std::vector<int64_t> prefix(lay.buckets, 0);
  int64_t rank_sum = 0;

  const size_t blo = lay.sectionLo(pid, P);
  const size_t bhi = lay.sectionHi(pid, P);

  for (int iter = 0; iter < p.iterations; ++iter) {
    // 1. This round's keys and their local histogram.
    for (size_t i = 0; i < mine; ++i)
      keys[i] = isKey(p.key_seed, iter, lo + i, p.max_key);
    std::fill(local_counts.begin(), local_counts.end(), 0);
    for (uint32_t k : keys) local_counts[k]++;
    node.chargeOps(mine + lay.buckets, p.op_ns);

    // 2. Publish my histogram: one slice per partition's contribution view
    // (VOPP), or my row of the raw histogram matrix (traditional).
    if (vopp) {
      for (int s = 0; s < P; ++s) {
        const size_t slo = lay.sectionLo(s, P);
        const size_t width = lay.sectionHi(s, P) - slo;
        if (width == 0) continue;
        // My own slice view: the manager is this node, so these acquires
        // and the release-time diff push never touch the network.
        dsm::ViewId v =
            lay.contrib_views[static_cast<size_t>(s) * static_cast<size_t>(P) +
                              static_cast<size_t>(pid)];
        co_await node.acquireView(v);
        co_await node.copyIn(node.cluster().viewOffset(v),
                             ByteSpan(reinterpret_cast<const std::byte*>(
                                          local_counts.data() + slo),
                                      width * 4));
        co_await node.releaseView(v);
      }
    } else {
      size_t row_off =
          lay.raw_hist_off + static_cast<size_t>(pid) * lay.buckets * 4;
      co_await node.touchWrite(row_off, lay.buckets * 4);
      std::memcpy(node.mem(row_off, lay.buckets * 4).data(),
                  local_counts.data(), lay.buckets * 4);
      node.chargeOps(lay.buckets, p.op_ns);
    }
    co_await node.barrier();

    // 3. Reduce my bucket partition across every processor's contribution
    // into the shared global section I own.
    if (bhi > blo) {
      const size_t width = bhi - blo;
      std::vector<uint32_t> sum(width, 0);
      if (vopp) {
        for (int q = 0; q < P; ++q) {
          dsm::ViewId v = lay.contrib_views[static_cast<size_t>(pid) *
                                                static_cast<size_t>(P) +
                                            static_cast<size_t>(q)];
          co_await node.acquireRview(v);
          size_t off = node.cluster().viewOffset(v);
          co_await node.touchRead(off, width * 4);
          auto* slice = reinterpret_cast<const uint32_t*>(
              node.memView(off, width * 4).data());
          for (size_t k = 0; k < width; ++k) sum[k] += slice[k];
          co_await node.releaseRview(v);
        }
      } else {
        std::copy(local_counts.begin() + static_cast<ptrdiff_t>(blo),
                  local_counts.begin() + static_cast<ptrdiff_t>(bhi),
                  sum.begin());
        for (int q = 0; q < P; ++q) {
          if (q == pid) continue;  // own row is already in hand
          size_t off = lay.raw_hist_off +
                       static_cast<size_t>(q) * lay.buckets * 4 + blo * 4;
          co_await node.touchRead(off, width * 4);
          auto* row = reinterpret_cast<const uint32_t*>(
              node.memView(off, width * 4).data());
          for (size_t k = 0; k < width; ++k) sum[k] += row[k];
        }
      }
      node.chargeOps(width * static_cast<size_t>(P), p.op_ns);
      if (vopp) {
        dsm::ViewId v = lay.section_views[static_cast<size_t>(pid)];
        co_await node.acquireView(v);
        co_await node.copyIn(node.cluster().viewOffset(v),
                             ByteSpan(reinterpret_cast<const std::byte*>(
                                          sum.data()),
                                      sum.size() * 4));
        co_await node.releaseView(v);
      } else {
        size_t goff = lay.raw_buckets_off + blo * 4;
        co_await node.touchWrite(goff, (bhi - blo) * 4);
        std::memcpy(node.mem(goff, (bhi - blo) * 4).data(), sum.data(),
                    (bhi - blo) * 4);
      }
      std::copy(sum.begin(), sum.end(),
                global_counts.begin() + static_cast<ptrdiff_t>(blo));
    }
    co_await node.barrier();

    // 4. Read phase: pull the other partitions' global counts, build prefix
    // sums, rank this round's keys.
    for (int s = 0; s < P; ++s) {
      if (s == pid) continue;  // own section computed locally
      const size_t slo = lay.sectionLo(s, P);
      const size_t n = lay.sectionHi(s, P) - slo;
      if (n == 0) continue;
      if (vopp) {
        dsm::ViewId v = lay.section_views[static_cast<size_t>(s)];
        co_await node.acquireRview(v);
        size_t off = node.cluster().viewOffset(v);
        co_await node.touchRead(off, n * 4);
        auto* g = reinterpret_cast<const uint32_t*>(
            node.memView(off, n * 4).data());
        std::copy(g, g + n,
                  global_counts.begin() + static_cast<ptrdiff_t>(slo));
        co_await node.releaseRview(v);
      } else {
        size_t off = lay.raw_buckets_off + slo * 4;
        co_await node.touchRead(off, n * 4);
        auto* g = reinterpret_cast<const uint32_t*>(
            node.memView(off, n * 4).data());
        std::copy(g, g + n,
                  global_counts.begin() + static_cast<ptrdiff_t>(slo));
      }
    }
    prefix[0] = 0;
    for (size_t k = 1; k < lay.buckets; ++k)
      prefix[k] = prefix[k - 1] + global_counts[k - 1];
    rank_sum = 0;
    for (uint32_t k : keys) rank_sum += prefix[k];
    node.chargeOps(lay.buckets + 2 * mine, p.op_ns);

    // 5. Buffer-reuse barrier. The traditional program must keep it (the
    // raw rows are about to be overwritten while stragglers may still be
    // reading). Under VOPP, view exclusivity plus the two phase barriers
    // already order every reuse (Section 3.2) — kVoppFewerBarriers drops it.
    if (!vopp || keep_reuse_barrier) co_await node.barrier();
  }

  // Publish the final checksum.
  if (vopp) {
    co_await node.acquireView(lay.result_view);
    co_await node.touchWrite(lay.result_off + static_cast<size_t>(pid) * 8, 8);
    *reinterpret_cast<int64_t*>(
        node.mem(lay.result_off + static_cast<size_t>(pid) * 8, 8).data()) =
        rank_sum;
    co_await node.releaseView(lay.result_view);
  } else {
    // Disjoint slots; barrier-synchronized (data-race free despite the
    // false sharing within the result page).
    co_await node.touchWrite(lay.result_off + static_cast<size_t>(pid) * 8, 8);
    *reinterpret_cast<int64_t*>(
        node.mem(lay.result_off + static_cast<size_t>(pid) * 8, 8).data()) =
        rank_sum;
  }
  co_await node.barrier();
  if (pid == 0) {
    if (vopp) {
      co_await node.acquireRview(lay.result_view);
      co_await node.touchRead(lay.result_off, static_cast<size_t>(P) * 8);
      co_await node.releaseRview(lay.result_view);
    } else {
      co_await node.touchRead(lay.result_off, static_cast<size_t>(P) * 8);
    }
  }
  co_await node.barrier();
}

}  // namespace

IsRun runIs(const harness::RunConfig& config, const IsParams& params,
            IsVariant variant) {
  VODSM_CHECK_MSG(variant != IsVariant::kTraditional ||
                      config.protocol == dsm::Protocol::kLrcDiff,
                  "traditional IS runs on LRC_d only");
  vopp::Cluster cluster({.nprocs = config.nprocs,
                         .protocol = config.protocol,
                         .net = config.net,
                         .costs = config.costs,
                         .proto = config.proto,
                         .seed = config.seed,
                         .sim_threads = config.sim_threads,
                         .trace = config.trace,
                         .metrics = config.metrics,
                         .faults = config.faults});
  IsLayout lay =
      buildLayout(cluster, params, variant != IsVariant::kTraditional);
  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    return isProgram(node, params, lay, variant);
  });

  IsRun out;
  harness::collectResult(cluster, config, out.result);
  out.rank_sums.resize(static_cast<size_t>(config.nprocs));
  auto raw = cluster.memoryOf(0, lay.result_off,
                              static_cast<size_t>(config.nprocs) * 8);
  std::memcpy(out.rank_sums.data(), raw.data(), raw.size());
  return out;
}

}  // namespace vodsm::apps
