// SOR: red-black successive over-relaxation on a 2-D grid.
//
// Row-block partitioning; per iteration two color phases, each ending in a
// barrier (the paper's SOR reports ~2 barriers per iteration).
//
// Variants:
//  * kTraditional — the whole grid lives in one shared region and every
//    processor relaxes its block in place. Neighbouring blocks share pages
//    (rows are not page aligned), so every border exchange drags along
//    falsely shared data. Runs on LRC_d.
//  * kVopp — the paper's Section 3.3 conversion: each block lives in a
//    local buffer; only the border rows travel, through small per-processor
//    border views (parity-alternated so the phase barrier is the only
//    synchronization needed).
#pragma once

#include <cstdint>
#include <vector>

#include "harness/run.hpp"

namespace vodsm::apps {

struct SorParams {
  size_t rows = 256;
  size_t cols = 256;
  int iterations = 10;  // paper: 50
  double omega = 1.5;
  uint64_t seed = 99;
  sim::Time flop_ns = 30;
};

enum class SorVariant { kTraditional, kVopp };

struct SorRun {
  harness::RunResult result;
  double checksum = 0;
};

double sorSerialChecksum(const SorParams& p);

SorRun runSor(const harness::RunConfig& config, const SorParams& params,
              SorVariant variant);

}  // namespace vodsm::apps
