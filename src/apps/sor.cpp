#include "apps/sor.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "vopp/cluster.hpp"

namespace vodsm::apps {

namespace {

double cell0(uint64_t seed, size_t i, size_t j) {
  uint64_t z = seed ^ (i * 0x9e3779b97f4a7c15ULL + j * 0xd1342543de82ef95ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

// Relax all cells of `color` in rows [row_first, row_last] of a grid stored
// with stride `cols`, where grid[0] is global row `base`.
void relaxRows(double* grid, size_t base, size_t row_first, size_t row_last,
               size_t cols, size_t rows_total, int color, double omega) {
  for (size_t i = row_first; i <= row_last; ++i) {
    if (i == 0 || i + 1 >= rows_total) continue;  // fixed boundary
    double* row = grid + (i - base) * cols;
    const double* up = row - cols;
    const double* down = row + cols;
    size_t j = 1 + ((i + 1 + static_cast<size_t>(color)) % 2);
    for (; j + 1 < cols; j += 2) {
      const double nb = up[j] + down[j] + row[j - 1] + row[j + 1];
      row[j] = (1.0 - omega) * row[j] + omega * 0.25 * nb;
    }
  }
}

}  // namespace

double sorSerialChecksum(const SorParams& p) {
  std::vector<double> g(p.rows * p.cols);
  for (size_t i = 0; i < p.rows; ++i)
    for (size_t j = 0; j < p.cols; ++j) g[i * p.cols + j] = cell0(p.seed, i, j);
  for (int it = 0; it < p.iterations; ++it)
    for (int color = 0; color < 2; ++color)
      relaxRows(g.data(), 0, 1, p.rows - 2, p.cols, p.rows, color, p.omega);
  double sum = 0;
  for (double v : g) sum += v;
  return sum;
}

namespace {

struct SorLayout {
  // VOPP
  std::vector<dsm::ViewId> block_views;  // rows lo..hi-1 per proc
  // Border views are split per side so each neighbour fetches exactly the
  // row it consumes: [proc][parity * 2 + side] with side 0 = the block's
  // top row (read by the previous processor's successor... i.e. by proc-1's
  // lower neighbour) and side 1 = the bottom row (read by proc+1).
  std::vector<std::array<dsm::ViewId, 4>> border;
  dsm::ViewId result_view = 0;
  // traditional
  size_t grid_off = 0;
  size_t result_off = 0;
};

size_t rowLo(size_t rows, int nprocs, int pid) {
  return static_cast<size_t>(pid) * rows / static_cast<size_t>(nprocs);
}
size_t rowHi(size_t rows, int nprocs, int pid) {
  return static_cast<size_t>(pid + 1) * rows / static_cast<size_t>(nprocs);
}

sim::Task<void> sorVopp(vopp::Node& node, const SorParams& p,
                        const SorLayout& lay) {
  const size_t R = p.rows, C = p.cols;
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t lo = rowLo(R, P, pid), hi = rowHi(R, P, pid);
  const size_t mine = hi - lo;
  const size_t row_bytes = C * sizeof(double);
  const bool has_prev = pid > 0, has_next = pid < P - 1;

  // Processor 0 distributes the grid through the block views.
  if (pid == 0) {
    for (int q = 0; q < P; ++q) {
      dsm::ViewId v = lay.block_views[static_cast<size_t>(q)];
      const size_t qlo = rowLo(R, P, q), qhi = rowHi(R, P, q);
      co_await node.acquireView(v);
      size_t off = node.cluster().viewOffset(v);
      co_await node.touchWrite(off, (qhi - qlo) * row_bytes);
      auto* m = reinterpret_cast<double*>(
          node.mem(off, (qhi - qlo) * row_bytes).data());
      for (size_t i = qlo; i < qhi; ++i)
        for (size_t j = 0; j < C; ++j)
          m[(i - qlo) * C + j] = cell0(p.seed, i, j);
      node.chargeOps((qhi - qlo) * C, p.flop_ns);
      co_await node.releaseView(v);
    }
  }
  co_await node.barrier();

  // Local buffer: ghost row above + my rows + ghost row below.
  std::vector<double> buf((mine + 2) * C, 0.0);
  auto localRow = [&](size_t global_i) {
    return buf.data() + (global_i - lo + 1) * C;
  };
  {
    dsm::ViewId v = lay.block_views[static_cast<size_t>(pid)];
    co_await node.acquireView(v);
    co_await node.copyOut(
        node.cluster().viewOffset(v),
        MutByteSpan(reinterpret_cast<std::byte*>(localRow(lo)),
                    mine * row_bytes));
    co_await node.releaseView(v);
  }
  co_await node.barrier();

  int parity = 0;
  for (int it = 0; it < p.iterations; ++it) {
    for (int color = 0; color < 2; ++color) {
      // 1. Publish the border rows a neighbour will read.
      if (has_prev) {
        dsm::ViewId bv = lay.border[static_cast<size_t>(pid)]
                                   [static_cast<size_t>(parity * 2)];
        co_await node.acquireView(bv);
        co_await node.copyIn(node.cluster().viewOffset(bv),
                             ByteSpan(reinterpret_cast<const std::byte*>(
                                          localRow(lo)),
                                      row_bytes));
        co_await node.releaseView(bv);
      }
      if (has_next) {
        dsm::ViewId bv = lay.border[static_cast<size_t>(pid)]
                                   [static_cast<size_t>(parity * 2 + 1)];
        co_await node.acquireView(bv);
        co_await node.copyIn(node.cluster().viewOffset(bv),
                             ByteSpan(reinterpret_cast<const std::byte*>(
                                          localRow(hi - 1)),
                                      row_bytes));
        co_await node.releaseView(bv);
      }
      co_await node.barrier();

      // 2. Fetch the neighbours' adjacent rows into the ghost rows. The
      // paper's pseudo-code uses exclusive acquires here; we match it.
      if (has_prev) {
        dsm::ViewId bv = lay.border[static_cast<size_t>(pid - 1)]
                                   [static_cast<size_t>(parity * 2 + 1)];
        co_await node.acquireView(bv);  // their bottom row
        co_await node.copyOut(node.cluster().viewOffset(bv),
                              MutByteSpan(reinterpret_cast<std::byte*>(
                                              buf.data()),
                                          row_bytes));
        co_await node.releaseView(bv);
      }
      if (has_next) {
        dsm::ViewId bv = lay.border[static_cast<size_t>(pid + 1)]
                                   [static_cast<size_t>(parity * 2)];
        co_await node.acquireView(bv);  // their top row
        co_await node.copyOut(node.cluster().viewOffset(bv),
                              MutByteSpan(reinterpret_cast<std::byte*>(
                                              localRow(hi)),
                                          row_bytes));
        co_await node.releaseView(bv);
      }

      // 3. Relax my rows in the local buffer (buf + C is global row `lo`,
      // so ghost rows sit directly above/below the block).
      if (mine > 0) {
        relaxRows(buf.data() + C, lo, std::max(lo, size_t{1}), hi - 1, C, R,
                  color, p.omega);
        node.chargeOps(mine * C / 2 * 4, p.flop_ns);
      }
      parity ^= 1;
    }
  }

  // Collect.
  {
    dsm::ViewId v = lay.block_views[static_cast<size_t>(pid)];
    co_await node.acquireView(v);
    co_await node.copyIn(node.cluster().viewOffset(v),
                         ByteSpan(reinterpret_cast<const std::byte*>(
                                      localRow(lo)),
                                  mine * row_bytes));
    co_await node.releaseView(v);
  }
  co_await node.barrier();
  if (pid == 0) {
    double sum = 0;
    for (int q = 0; q < P; ++q) {
      dsm::ViewId v = lay.block_views[static_cast<size_t>(q)];
      const size_t rows = rowHi(R, P, q) - rowLo(R, P, q);
      co_await node.acquireRview(v);
      size_t off = node.cluster().viewOffset(v);
      co_await node.touchRead(off, rows * row_bytes);
      auto* m = reinterpret_cast<const double*>(
          node.memView(off, rows * row_bytes).data());
      for (size_t i = 0; i < rows * C; ++i) sum += m[i];
      node.chargeOps(rows * C, p.flop_ns);
      co_await node.releaseRview(v);
    }
    co_await node.acquireView(lay.result_view);
    size_t roff = node.cluster().viewOffset(lay.result_view);
    co_await node.touchWrite(roff, 8);
    std::memcpy(node.mem(roff, 8).data(), &sum, 8);
    co_await node.releaseView(lay.result_view);
  }
  co_await node.barrier();
}

sim::Task<void> sorTraditional(vopp::Node& node, const SorParams& p,
                               const SorLayout& lay) {
  const size_t R = p.rows, C = p.cols;
  const int P = node.nprocs();
  const int pid = node.id();
  const size_t lo = rowLo(R, P, pid), hi = rowHi(R, P, pid);
  const size_t row_bytes = C * sizeof(double);
  auto rowOff = [&](size_t i) { return lay.grid_off + i * row_bytes; };

  if (pid == 0) {
    co_await node.touchWrite(lay.grid_off, R * row_bytes);
    auto* m = reinterpret_cast<double*>(
        node.mem(lay.grid_off, R * row_bytes).data());
    for (size_t i = 0; i < R; ++i)
      for (size_t j = 0; j < C; ++j) m[i * C + j] = cell0(p.seed, i, j);
    node.chargeOps(R * C, p.flop_ns);
  }
  co_await node.barrier();

  for (int it = 0; it < p.iterations; ++it) {
    for (int color = 0; color < 2; ++color) {
      const size_t read_lo = lo == 0 ? 0 : lo - 1;
      const size_t read_hi = hi == R ? R : hi + 1;
      const size_t upd_lo = std::max(lo, size_t{1});
      const size_t upd_hi = std::min(hi, R - 1);
      if (upd_hi > upd_lo) {
        co_await node.touchRead(rowOff(read_lo),
                                (read_hi - read_lo) * row_bytes);
        co_await node.touchWrite(rowOff(upd_lo), (upd_hi - upd_lo) * row_bytes);
        auto* g = reinterpret_cast<double*>(
            node.mem(lay.grid_off, R * row_bytes).data());
        relaxRows(g, 0, upd_lo, upd_hi - 1, C, R, color, p.omega);
        node.chargeOps((upd_hi - upd_lo) * C / 2 * 4, p.flop_ns);
      }
      co_await node.barrier();
    }
  }

  if (pid == 0) {
    co_await node.touchRead(lay.grid_off, R * row_bytes);
    auto* m = reinterpret_cast<const double*>(
        node.memView(lay.grid_off, R * row_bytes).data());
    double sum = 0;
    for (size_t i = 0; i < R * C; ++i) sum += m[i];
    node.chargeOps(R * C, p.flop_ns);
    co_await node.touchWrite(lay.result_off, 8);
    std::memcpy(node.mem(lay.result_off, 8).data(), &sum, 8);
  }
  co_await node.barrier();
}

}  // namespace

SorRun runSor(const harness::RunConfig& config, const SorParams& params,
              SorVariant variant) {
  VODSM_CHECK_MSG(variant != SorVariant::kTraditional ||
                      config.protocol == dsm::Protocol::kLrcDiff,
                  "traditional SOR runs on LRC_d only");
  VODSM_CHECK_MSG(params.rows >= static_cast<size_t>(config.nprocs) * 2,
                  "SOR needs at least two rows per processor");
  vopp::Cluster cluster({.nprocs = config.nprocs,
                         .protocol = config.protocol,
                         .net = config.net,
                         .costs = config.costs,
                         .proto = config.proto,
                         .seed = config.seed,
                         .sim_threads = config.sim_threads,
                         .trace = config.trace,
                         .metrics = config.metrics,
                         .faults = config.faults});
  SorLayout lay;
  const size_t row_bytes = params.cols * sizeof(double);
  if (variant == SorVariant::kVopp) {
    for (int q = 0; q < config.nprocs; ++q) {
      size_t rows = rowHi(params.rows, config.nprocs, q) -
                    rowLo(params.rows, config.nprocs, q);
      lay.block_views.push_back(cluster.defineView(rows * row_bytes));
    }
    for (int q = 0; q < config.nprocs; ++q) {
      auto home = static_cast<dsm::NodeId>(q);
      lay.border.push_back({cluster.defineView(row_bytes, home),
                            cluster.defineView(row_bytes, home),
                            cluster.defineView(row_bytes, home),
                            cluster.defineView(row_bytes, home)});
    }
    lay.result_view = cluster.defineView(sizeof(double));
    lay.result_off = cluster.viewOffset(lay.result_view);
  } else {
    lay.grid_off = cluster.allocShared(params.rows * row_bytes);
    lay.result_off = cluster.allocShared(sizeof(double));
  }

  cluster.run([&](vopp::Node& node) -> sim::Task<void> {
    return variant == SorVariant::kVopp ? sorVopp(node, params, lay)
                                        : sorTraditional(node, params, lay);
  });

  SorRun out;
  harness::collectResult(cluster, config, out.result);
  auto raw = cluster.memoryOf(0, lay.result_off, 8);
  std::memcpy(&out.checksum, raw.data(), 8);
  return out;
}

}  // namespace vodsm::apps
