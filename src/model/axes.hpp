// The experiment axes of the analytic performance models.
//
// Every benchmark cell is a point in a four-dimensional configuration
// space: processor count p, problem-size scale n (relative to the default
// paper-table size), link bandwidth (Mbps), and random frame-loss rate
// (percent). The models fitted over these axes use the multiplicative
// performance-model-normal-form family
//
//     T(x) = c * p^e0 * log2(p)^e1 * n^e2 * (bw_ref/bw)^e3
//              * (1 + 100*loss)^e4
//
// which is linear in log space: ln T = ln c + sum_r e_r * regressor_r(x).
// This header defines the axis point and the fixed regressor basis; the
// fitter (model/fit.hpp) selects which regressors a series actually needs.
#pragma once

#include <cmath>

namespace vodsm::model {

// One cell's coordinates. Defaults are the paper-table reference
// configuration (100 Mbps switched Ethernet, no loss, default sizes), so a
// plain speedup-table cell is fully described by `procs`.
struct AxisPoint {
  int procs = 0;
  double n_scale = 1.0;   // problem size relative to the default params
  double bw_mbps = 100.0;  // per-link bandwidth
  double loss_pct = 0.0;   // uniform random frame loss, percent
  // True when the producing cell swept a non-p axis; bench/tables.cpp then
  // records the full "axes" object in BENCH_tables.json.
  bool explicit_axes = false;
};

// Reference bandwidth of the paper's testbed; the bandwidth regressor is
// the slowdown factor relative to it.
inline constexpr double kRefBandwidthMbps = 100.0;

// Regressor indices (the intercept ln c is implicit and always present).
enum Regressor : int {
  kLnP = 0,      // ln p
  kLnLog2P = 1,  // ln log2(p)
  kLnN = 2,      // ln n_scale
  kLnInvBw = 3,  // ln (bw_ref / bw)
  kLnLoss = 4,   // ln (1 + 100 * loss_pct)
  kRegressorCount = 5,
};

// Display names for formulas, in regressor order.
inline constexpr const char* kRegressorTerm[kRegressorCount] = {
    "p", "log2(p)", "n", "(100/bw)", "(1+100*loss)"};

// ln-space value of regressor `r` at axis point `x`. Requires procs >= 2
// (ln log2(p) is undefined below that); every loader excludes 1-processor
// cells before fitting.
inline double regressor(const AxisPoint& x, int r) {
  switch (r) {
    case kLnP: return std::log(static_cast<double>(x.procs));
    case kLnLog2P:
      return std::log(std::log2(static_cast<double>(x.procs)));
    case kLnN: return std::log(x.n_scale);
    case kLnInvBw: return std::log(kRefBandwidthMbps / x.bw_mbps);
    case kLnLoss: return std::log(1.0 + 100.0 * x.loss_pct);
  }
  return 0;
}

}  // namespace vodsm::model
