#include "model/fit.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "model/linear.hpp"

namespace vodsm::model {

namespace {

// Regressor indices selected by `mask`, in fixed order.
std::vector<int> maskTerms(uint32_t mask) {
  std::vector<int> terms;
  for (int r = 0; r < kRegressorCount; ++r)
    if (mask & (1u << r)) terms.push_back(r);
  return terms;
}

// Normal equations for ln T = lnc + sum coef_j * regressor_j over `pts`.
bool solveLogLs(const std::vector<FitSample>& pts,
                const std::vector<int>& terms, std::vector<double>& coef) {
  const size_t dims = terms.size() + 1;
  std::vector<std::vector<double>> m(dims, std::vector<double>(dims + 1, 0));
  std::vector<double> row(dims);
  for (const FitSample& s : pts) {
    row[0] = 1.0;
    for (size_t j = 0; j < terms.size(); ++j)
      row[j + 1] = regressor(s.axes, terms[j]);
    const double y = std::log(s.value);
    for (size_t r = 0; r < dims; ++r) {
      for (size_t c = 0; c < dims; ++c) m[r][c] += row[r] * row[c];
      m[r][dims] += row[r] * y;
    }
  }
  return solveNormal(std::move(m), coef);
}

double predictLog(const std::vector<double>& coef,
                  const std::vector<int>& terms, const AxisPoint& x) {
  double y = coef[0];
  for (size_t j = 0; j < terms.size(); ++j)
    y += coef[j + 1] * regressor(x, terms[j]);
  return y;
}

// True when regressor `r` takes at least two distinct values over `pts` —
// a constant regressor is collinear with the intercept and can never be
// identified.
bool varies(const std::vector<FitSample>& pts, int r) {
  if (pts.empty()) return false;
  const double first = regressor(pts.front().axes, r);
  for (const FitSample& s : pts)
    if (std::fabs(regressor(s.axes, r) - first) > 1e-9) return true;
  return false;
}

}  // namespace

double MultiFit::eval(const AxisPoint& x) const {
  double lnf = 0;
  for (int r = 0; r < kRegressorCount; ++r)
    if (mask & (1u << r)) lnf += exp[r] * regressor(x, r);
  return c * std::exp(lnf);
}

std::string MultiFit::formula() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", c);
  std::string s = buf;
  for (int r = 0; r < kRegressorCount; ++r) {
    if (!(mask & (1u << r))) continue;
    std::snprintf(buf, sizeof(buf), " * %s^%.3f", kRegressorTerm[r], exp[r]);
    s += buf;
  }
  return s;
}

bool fitMask(const std::vector<FitSample>& pts, uint32_t mask,
             MultiFit& out) {
  out = MultiFit{};
  out.mask = mask;
  out.points = static_cast<int>(pts.size());
  if (pts.empty()) return false;
  const std::vector<int> terms = maskTerms(mask);
  std::vector<double> coef;
  if (!solveLogLs(pts, terms, coef)) return false;
  out.c = std::exp(coef[0]);
  for (size_t j = 0; j < terms.size(); ++j) out.exp[terms[j]] = coef[j + 1];
  out.ok = true;

  double mean = 0;
  for (const FitSample& s : pts) mean += std::log(s.value);
  mean /= static_cast<double>(pts.size());
  double ssr = 0, sst = 0;
  for (const FitSample& s : pts) {
    const double d = std::log(s.value) - predictLog(coef, terms, s.axes);
    ssr += d * d;
    const double e = std::log(s.value) - mean;
    sst += e * e;
  }
  out.r2 = sst > 0 ? 1.0 - ssr / sst : 1.0;
  return true;
}

double loocvRelErr(const std::vector<FitSample>& pts, uint32_t mask) {
  const std::vector<int> terms = maskTerms(mask);
  if (pts.size() < terms.size() + 2) return -1;  // nothing left to predict
  double err = 0;
  std::vector<FitSample> train;
  train.reserve(pts.size() - 1);
  for (size_t i = 0; i < pts.size(); ++i) {
    train.clear();
    for (size_t j = 0; j < pts.size(); ++j)
      if (j != i) train.push_back(pts[j]);
    std::vector<double> coef;
    if (!solveLogLs(train, terms, coef)) return -1;
    const double pred = std::exp(predictLog(coef, terms, pts[i].axes));
    err += std::fabs(pred / pts[i].value - 1.0);
  }
  return err / static_cast<double>(pts.size());
}

MultiFit fitMulti(const std::vector<FitSample>& pts) {
  // Candidate masks over the regressors that vary, ordered by term count
  // (then numerically) so the fewest-terms candidate wins ties.
  uint32_t usable = 0;
  for (int r = 0; r < kRegressorCount; ++r)
    if (varies(pts, r)) usable |= 1u << r;
  std::vector<uint32_t> candidates;
  for (int bits = 0; bits <= kRegressorCount; ++bits)
    for (uint32_t mask = 0; mask < (1u << kRegressorCount); ++mask)
      if ((mask & ~usable) == 0 && __builtin_popcount(mask) == bits)
        candidates.push_back(mask);

  MultiFit best;
  double best_loo = std::numeric_limits<double>::infinity();
  double best_rss = std::numeric_limits<double>::infinity();
  bool best_has_loo = false;
  for (uint32_t mask : candidates) {
    MultiFit fit;
    if (!fitMask(pts, mask, fit)) continue;
    const double loo = loocvRelErr(pts, mask);
    fit.loo_rel_err = loo;
    // A candidate only replaces the incumbent when strictly better beyond
    // a numerical margin; LOO-scored candidates always beat residual-only
    // ones (selection by generalization, not by in-sample fit).
    auto better = [](double cand, double best_v) {
      return cand < best_v - std::max(1e-12, 1e-9 * best_v);
    };
    if (loo >= 0) {
      if (!best_has_loo || better(loo, best_loo)) {
        best = fit;
        best_loo = loo;
        best_has_loo = true;
      }
    } else if (!best_has_loo) {
      const double rss = (1.0 - fit.r2);  // monotone in residual
      if (!best.ok || better(rss, best_rss)) {
        best = fit;
        best_rss = rss;
      }
    }
  }
  return best;
}

}  // namespace vodsm::model
