// Extra-P text-format export of the measured benchmark cells.
//
// Extra-P (the compositional performance analyzer this subsystem follows)
// ingests a plain-text experiment format: PARAMETER declarations, then per
// call-path "region" a POINTS line naming the measured coordinates and one
// DATA line per coordinate. We export each (app, impl) series as a region
// tree — app->impl for total time plus app->impl->bucket per breakdown
// bucket — over the four axes (p, n, bw, loss), so the upstream GUI can
// re-fit and browse the same data our own fitter consumes. Output is
// byte-deterministic for a given cell set.
#pragma once

#include <iosfwd>
#include <vector>

#include "model/table_data.hpp"

namespace vodsm::model {

// Writes all fittable cells (p >= 2, non-seq, positive total). Cells are
// grouped by (app, impl) in first-seen order and id-sorted within a
// series, mirroring buildModelSet's training view of the data.
void writeExtrap(std::ostream& os, const std::vector<CellSample>& cells);

}  // namespace vodsm::model
