// Loader turning BENCH_tables.json into fit samples.
//
// A cell id reads "App/Impl/Np" with an optional variation suffix
// ("IS/LRC_d/16p/bw50"); the p axis comes from the id, the off-p axes from
// the cell's optional "axes" object (absent on plain paper-table cells,
// which sit at the reference configuration). Cells repeat across tables
// (the stats and speedup tables share grid points) and are deduplicated by
// id. Sequential cells and p = 1 points are kept in the load — exclusion
// from fitting (ln log2(1) is undefined) happens in the model builder so
// the loader stays a faithful view of the artifact.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "model/axes.hpp"
#include "support/json.hpp"

namespace vodsm::model {

// The five runtime buckets of obs::Breakdown, in its canonical order.
// Node-summed: the buckets of one cell add up to p * sim_seconds.
inline constexpr int kBucketCount = 5;
inline constexpr const char* kBucketName[kBucketCount] = {
    "compute", "barrier_wait", "acquire_wait", "fault_diff", "idle"};

struct CellSample {
  std::string id;    // "IS/LRC_d/16p" or "IS/LRC_d/16p/bw50"
  std::string app;   // "IS"
  std::string impl;  // "LRC_d"
  AxisPoint axes;
  double sim_seconds = 0;
  bool has_breakdown = false;
  std::array<double, kBucketCount> breakdown{};  // node-summed seconds
};

// Splits an id into app/impl/procs(+suffix). Returns false when the id
// does not follow the "App/Impl/Np[...]" convention.
bool parseCellId(const std::string& id, std::string& app, std::string& impl,
                 int& procs);

// All unique cells of a parsed BENCH_tables.json document, in first-seen
// (file) order. Throws vodsm::Error on a structurally unexpected document.
std::vector<CellSample> loadTableCells(const support::Json& root);

// Convenience: read + parse + load. Throws on I/O or parse failure.
std::vector<CellSample> loadTableCellsFile(const std::string& path);

}  // namespace vodsm::model
