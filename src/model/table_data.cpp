#include "model/table_data.hpp"

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace vodsm::model {

bool parseCellId(const std::string& id, std::string& app, std::string& impl,
                 int& procs) {
  const size_t s1 = id.find('/');
  if (s1 == std::string::npos) return false;
  const size_t s2 = id.find('/', s1 + 1);
  if (s2 == std::string::npos) return false;
  size_t s3 = id.find('/', s2 + 1);
  if (s3 == std::string::npos) s3 = id.size();
  app = id.substr(0, s1);
  impl = id.substr(s1 + 1, s2 - s1 - 1);
  const std::string pseg = id.substr(s2 + 1, s3 - s2 - 1);
  if (pseg.size() < 2 || pseg.back() != 'p') return false;
  char* end = nullptr;
  const long p = std::strtol(pseg.c_str(), &end, 10);
  if (end != pseg.c_str() + pseg.size() - 1 || p <= 0) return false;
  procs = static_cast<int>(p);
  return true;
}

namespace {

void loadAxes(const support::Json& cell, CellSample& out) {
  const support::Json* axes = cell.find("axes");
  if (axes == nullptr) return;
  out.axes.explicit_axes = true;
  if (const support::Json* v = axes->find("n_scale"))
    out.axes.n_scale = v->asNumber();
  if (const support::Json* v = axes->find("bw_mbps"))
    out.axes.bw_mbps = v->asNumber();
  if (const support::Json* v = axes->find("loss_pct"))
    out.axes.loss_pct = v->asNumber();
}

}  // namespace

std::vector<CellSample> loadTableCells(const support::Json& root) {
  std::vector<CellSample> out;
  std::set<std::string> seen;
  for (const support::Json& table : root.at("tables").items()) {
    for (const support::Json& cell : table.at("cells").items()) {
      CellSample s;
      s.id = cell.at("id").asString();
      if (!seen.insert(s.id).second) continue;
      VODSM_CHECK_MSG(parseCellId(s.id, s.app, s.impl, s.axes.procs),
                      "unparseable cell id: " + s.id);
      // Screened cells carry a prediction, not a measurement; they are not
      // training data.
      const support::Json* screened = cell.find("screened");
      if (screened != nullptr && screened->asBool()) continue;
      s.sim_seconds = cell.at("sim_seconds").asNumber();
      loadAxes(cell, s);
      if (const support::Json* bd = cell.find("breakdown_seconds")) {
        s.has_breakdown = true;
        for (int b = 0; b < kBucketCount; ++b)
          s.breakdown[b] = bd->at(kBucketName[b]).asNumber();
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<CellSample> loadTableCellsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VODSM_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return loadTableCells(support::Json::parse(ss.str()));
}

}  // namespace vodsm::model
