#include "model/extrap.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "support/json_writer.hpp"  // jsonNumber for fixed formatting

namespace vodsm::model {

namespace {

struct Series {
  std::string app;
  std::string impl;
  std::vector<const CellSample*> cells;
};

std::string point(const AxisPoint& a) {
  return "( " + std::to_string(a.procs) + " " +
         support::jsonNumber(a.n_scale, "%.6g") + " " +
         support::jsonNumber(a.bw_mbps, "%.6g") + " " +
         support::jsonNumber(a.loss_pct, "%.6g") + " )";
}

void region(std::ostream& os, const Series& s, const std::string& name,
            const std::vector<double>& values) {
  os << "REGION " << s.app << "->" << s.impl;
  if (!name.empty()) os << "->" << name;
  os << "\n";
  os << "METRIC time\n";
  os << "POINTS";
  for (const CellSample* c : s.cells) os << " " << point(c->axes);
  os << "\n";
  for (double v : values)
    os << "DATA " << support::jsonNumber(v, "%.6f") << "\n";
}

}  // namespace

void writeExtrap(std::ostream& os, const std::vector<CellSample>& cells) {
  std::vector<Series> series;
  for (const CellSample& c : cells) {
    if (c.axes.procs < 2 || c.impl == "seq" || c.sim_seconds <= 0) continue;
    Series* s = nullptr;
    for (Series& g : series)
      if (g.app == c.app && g.impl == c.impl) s = &g;
    if (s == nullptr) {
      series.push_back({c.app, c.impl, {}});
      s = &series.back();
    }
    s->cells.push_back(&c);
  }
  for (Series& s : series)
    std::sort(s.cells.begin(), s.cells.end(),
              [](const CellSample* a, const CellSample* b) {
                return a->id < b->id;
              });

  os << "PARAMETER p\n";
  os << "PARAMETER n\n";
  os << "PARAMETER bw\n";
  os << "PARAMETER loss\n";
  for (const Series& s : series) {
    os << "\n";
    std::vector<double> totals;
    for (const CellSample* c : s.cells) totals.push_back(c->sim_seconds);
    region(os, s, "", totals);
    const bool buckets = std::all_of(
        s.cells.begin(), s.cells.end(),
        [](const CellSample* c) { return c->has_breakdown; });
    if (!buckets) continue;
    for (int b = 0; b < kBucketCount; ++b) {
      std::vector<double> vals;
      for (const CellSample* c : s.cells) vals.push_back(c->breakdown[b]);
      os << "\n";
      region(os, s, kBucketName[b], vals);
    }
  }
}

}  // namespace vodsm::model
