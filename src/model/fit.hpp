// Multi-axis least-squares fitter with cross-validated model selection.
//
// Extends the single-axis T(p) = c * p^a * log2(p)^b fit of
// bench/fit_model.hpp to the full multiplicative normal form over the axes
// the benchmark suite sweeps (see model/axes.hpp). A candidate model is a
// subset of the five regressors; fitMulti() enumerates every subset whose
// regressors actually vary in the data (32 candidates at most), fits each
// by least squares in log space, and selects by LEAVE-ONE-OUT relative
// error — not raw residual — so a term only survives if it helps predict
// points the fit has not seen. Ties (within a strict numerical margin) go
// to the candidate with fewer terms, which makes selection deterministic
// and makes noise-free synthetic data recover its exact generating subset.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "model/axes.hpp"

namespace vodsm::model {

struct FitSample {
  AxisPoint axes;
  double value = 0;  // must be > 0 (the fit runs in log space)
};

struct MultiFit {
  double c = 0;                                 // multiplicative constant
  std::array<double, kRegressorCount> exp{};    // 0 for absent terms
  uint32_t mask = 0;                            // bit r set = term r used
  double r2 = 0;                                // in log space
  double loo_rel_err = -1;  // mean |pred/actual - 1| over LOO folds; < 0
                            // when no fold was computable
  int points = 0;
  bool ok = false;

  double eval(const AxisPoint& x) const;
  // Human-readable term, e.g. "0.0288 * p^1.705 * log2(p)^0.412".
  std::string formula() const;
};

// Least-squares fit of the fixed candidate `mask` in log space. Returns
// false (out.ok = false) when the normal equations are singular. All
// samples must have value > 0.
bool fitMask(const std::vector<FitSample>& pts, uint32_t mask,
             MultiFit& out);

// Mean leave-one-out relative error of candidate `mask`: each sample is
// held out in turn, the candidate refitted on the rest, and
// |pred/actual - 1| averaged. Returns -1 when any fold is unsolvable
// (too few points or a fold collapses a regressor's variation).
double loocvRelErr(const std::vector<FitSample>& pts, uint32_t mask);

// Model selection: every subset of the regressors that vary in `pts`,
// scored by loocvRelErr (falling back to in-sample residual when no
// candidate has a computable LOO error), fewest-terms tie-break.
MultiFit fitMulti(const std::vector<FitSample>& pts);

}  // namespace vodsm::model
