// Compositional per-series models over BENCH_tables.json.
//
// One SeriesModel per (app, impl) pair: a direct fit of total simulated
// seconds plus — when the series records breakdowns — one fit per runtime
// bucket (compute, barrier_wait, acquire_wait, fault_diff, idle). The
// buckets are node-summed seconds and provably partition p * T, so the
// composed total prediction is sum(bucket predictions) / p — the bucket
// models sum to the total model EXACTLY by construction, and any residual
// against measurement is genuine model error, not bookkeeping slack.
//
// buildModelSet() optionally holds out every k-th cell of each series
// (deterministic by id order) and evaluates predictions on the held-out
// cells — the cross-validation gate. With no holdout it fits on everything
// and records in-sample errors, which is what the analytic screen consumes
// (a cell is only skipped when the model has demonstrated it can hit it).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/fit.hpp"
#include "model/table_data.hpp"

namespace vodsm::model {

struct BucketModel {
  std::string name;
  bool zero = false;  // every training sample was (near) zero
  int dropped = 0;    // non-positive samples excluded from the log fit
  MultiFit fit;       // unused when zero
  double eval(const AxisPoint& x) const { return zero ? 0 : fit.eval(x); }
};

struct SeriesModel {
  std::string app;
  std::string impl;
  int train_points = 0;
  bool has_buckets = false;  // composed model available
  std::vector<BucketModel> buckets;  // kBucketCount entries when composed
  MultiFit total;                    // direct fit of sim_seconds

  bool ok() const { return has_buckets || total.ok; }
  // Composed prediction when buckets exist (sum / p), direct fit otherwise.
  double predictTotal(const AxisPoint& x) const;
  // The dominant model term at `x` — e.g. "fault_diff: 0.137 * p^0.998" —
  // for screen-skip logs and eval notes.
  std::string dominantTerm(const AxisPoint& x) const;
};

struct CellEval {
  std::string id;
  double measured = 0;
  double predicted = 0;
  double rel_err = 0;  // |predicted / measured - 1|
  bool held_out = false;
  std::string note;  // dominant model term
};

struct ModelSet {
  int holdout_every = 0;  // 0 = fitted on every cell
  std::vector<SeriesModel> series;
  std::vector<CellEval> evals;

  // Lower median of held-out relative errors; -1 when nothing was held
  // out. The cross-validation gate compares this against its tolerance.
  double medianHeldOutRelErr() const;
};

// Fits one model per (app, impl) series. `holdout_every` = k withholds
// every k-th cell (id order) of each series from fitting and marks its
// eval held_out; 0 fits on all cells. Cells with p < 2, impl "seq", or a
// non-positive total are excluded entirely (the log-space family cannot
// represent them).
ModelSet buildModelSet(const std::vector<CellSample>& cells,
                       int holdout_every);

// Deterministic JSON serialization (coefficients as %.17g so they
// round-trip; seconds/errors as %.6f). Byte-stable for a given ModelSet.
void writeModelJson(std::ostream& os, const ModelSet& set);

// The per-cell evals of a model JSON document — all the screen needs.
// Throws vodsm::Error on a document that is not a vodsm_model_set.
std::vector<CellEval> loadModelEvals(const support::Json& root);

}  // namespace vodsm::model
