// Dense Gaussian elimination with partial pivoting over an augmented
// matrix — the linear-algebra core shared by the single-axis bench fitter
// (bench/fit_model.hpp) and the multi-axis model fitter (model/fit.hpp).
// Header-only so post-processing tools can use it without linking the
// model library.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace vodsm::model {

// Solves the n x n system encoded as n rows of n + 1 (last column is the
// right-hand side). Returns false when a pivot falls below `eps` — the
// system is singular (collinear regressors or too few points) and the
// caller must drop a term instead of inventing coefficients.
inline bool solveNormal(std::vector<std::vector<double>> m,
                        std::vector<double>& x, double eps = 1e-12) {
  const size_t n = m.size();
  for (size_t col = 0; col < n; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < n; ++r)
      if (std::fabs(m[r][col]) > std::fabs(m[piv][col])) piv = r;
    if (std::fabs(m[piv][col]) < eps) return false;
    std::swap(m[col], m[piv]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (size_t k = col; k <= n; ++k) m[r][k] -= f * m[col][k];
    }
  }
  x.resize(n);
  for (size_t i = 0; i < n; ++i) x[i] = m[i][n] / m[i][i];
  return true;
}

}  // namespace vodsm::model
