#include "model/model_set.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"
#include "support/json_writer.hpp"

namespace vodsm::model {

namespace {

// Below this a bucket is treated as structurally zero rather than fitted —
// well under any real bucket value (the smallest measured bucket is idle
// at ~7e-4 s) but above accumulated float dust.
constexpr double kZeroBucketSeconds = 1e-12;

struct Series {
  std::string app;
  std::string impl;
  std::vector<const CellSample*> cells;  // id-sorted
};

std::vector<Series> groupSeries(const std::vector<CellSample>& cells) {
  std::vector<Series> series;
  for (const CellSample& c : cells) {
    if (c.axes.procs < 2 || c.impl == "seq" || c.sim_seconds <= 0) continue;
    Series* s = nullptr;
    for (Series& g : series)
      if (g.app == c.app && g.impl == c.impl) s = &g;
    if (s == nullptr) {
      series.push_back({c.app, c.impl, {}});
      s = &series.back();
    }
    s->cells.push_back(&c);
  }
  for (Series& s : series)
    std::sort(s.cells.begin(), s.cells.end(),
              [](const CellSample* a, const CellSample* b) {
                return a->id < b->id;
              });
  return series;
}

BucketModel fitBucket(const std::string& name,
                      const std::vector<const CellSample*>& train, int b) {
  BucketModel m;
  m.name = name;
  std::vector<FitSample> pts;
  for (const CellSample* c : train) {
    if (c->breakdown[b] > kZeroBucketSeconds)
      pts.push_back({c->axes, c->breakdown[b]});
    else
      ++m.dropped;
  }
  if (pts.empty()) {
    m.zero = true;
    return m;
  }
  m.fit = fitMulti(pts);
  VODSM_CHECK_MSG(m.fit.ok, "bucket fit failed: " + name);
  return m;
}

}  // namespace

double SeriesModel::predictTotal(const AxisPoint& x) const {
  if (!has_buckets) return total.eval(x);
  double node_sum = 0;
  for (const BucketModel& b : buckets) node_sum += b.eval(x);
  return node_sum / static_cast<double>(x.procs);
}

std::string SeriesModel::dominantTerm(const AxisPoint& x) const {
  if (!has_buckets) return "total: " + total.formula();
  const BucketModel* top = nullptr;
  double top_v = -1;
  for (const BucketModel& b : buckets) {
    const double v = b.eval(x);
    if (v > top_v) {
      top_v = v;
      top = &b;
    }
  }
  return top->name + ": " + top->fit.formula();
}

double ModelSet::medianHeldOutRelErr() const {
  std::vector<double> errs;
  for (const CellEval& e : evals)
    if (e.held_out) errs.push_back(e.rel_err);
  if (errs.empty()) return -1;
  std::sort(errs.begin(), errs.end());
  return errs[(errs.size() - 1) / 2];  // lower median
}

ModelSet buildModelSet(const std::vector<CellSample>& cells,
                       int holdout_every) {
  ModelSet set;
  set.holdout_every = holdout_every;
  for (const Series& g : groupSeries(cells)) {
    std::vector<const CellSample*> train;
    for (size_t i = 0; i < g.cells.size(); ++i) {
      const bool held =
          holdout_every > 0 &&
          i % static_cast<size_t>(holdout_every) ==
              static_cast<size_t>(holdout_every) - 1;
      if (!held) train.push_back(g.cells[i]);
    }
    if (train.empty()) continue;

    SeriesModel m;
    m.app = g.app;
    m.impl = g.impl;
    m.train_points = static_cast<int>(train.size());

    std::vector<FitSample> totals;
    for (const CellSample* c : train)
      totals.push_back({c->axes, c->sim_seconds});
    m.total = fitMulti(totals);

    m.has_buckets = std::all_of(
        train.begin(), train.end(),
        [](const CellSample* c) { return c->has_breakdown; });
    if (m.has_buckets)
      for (int b = 0; b < kBucketCount; ++b)
        m.buckets.push_back(fitBucket(kBucketName[b], train, b));
    if (!m.ok()) continue;

    for (size_t i = 0; i < g.cells.size(); ++i) {
      const CellSample* c = g.cells[i];
      CellEval e;
      e.id = c->id;
      e.measured = c->sim_seconds;
      e.predicted = m.predictTotal(c->axes);
      e.rel_err = std::fabs(e.predicted / e.measured - 1.0);
      e.held_out = holdout_every > 0 &&
                   i % static_cast<size_t>(holdout_every) ==
                       static_cast<size_t>(holdout_every) - 1;
      e.note = m.dominantTerm(c->axes);
      set.evals.push_back(std::move(e));
    }
    set.series.push_back(std::move(m));
  }
  return set;
}

namespace {

void writeFit(support::JsonWriter& w, const MultiFit& f) {
  w.beginObject();
  w.key("ok").value(f.ok);
  w.key("c").value(f.c, "%.17g");
  w.key("mask").value(static_cast<int>(f.mask));
  w.key("exponents").beginObject();
  for (int r = 0; r < kRegressorCount; ++r)
    if (f.mask & (1u << r)) w.key(kRegressorTerm[r]).value(f.exp[r], "%.17g");
  w.endObject();
  w.key("r2").value(f.r2, "%.6f");
  w.key("loo_rel_err").value(f.loo_rel_err, "%.6f");
  w.key("points").value(f.points);
  w.key("formula").value(f.formula());
  w.endObject();
}

}  // namespace

void writeModelJson(std::ostream& os, const ModelSet& set) {
  support::JsonWriter w(os);
  w.beginObject();
  w.key("kind").value("vodsm_model_set");
  w.key("holdout_every").value(set.holdout_every);
  w.key("series").beginArray();
  for (const SeriesModel& m : set.series) {
    w.beginObject();
    w.key("app").value(m.app);
    w.key("impl").value(m.impl);
    w.key("train_points").value(m.train_points);
    w.key("composed").value(m.has_buckets);
    w.key("total");
    writeFit(w, m.total);
    if (m.has_buckets) {
      w.key("buckets").beginArray();
      for (const BucketModel& b : m.buckets) {
        w.beginObject();
        w.key("name").value(b.name);
        w.key("zero").value(b.zero);
        w.key("dropped").value(b.dropped);
        if (!b.zero) {
          w.key("fit");
          writeFit(w, b.fit);
        }
        w.endObject();
      }
      w.endArray();
    }
    w.endObject();
  }
  w.endArray();
  w.key("evals").beginArray();
  for (const CellEval& e : set.evals) {
    w.beginObject();
    w.key("id").value(e.id);
    w.key("measured").value(e.measured, "%.6f");
    w.key("predicted").value(e.predicted, "%.6f");
    w.key("rel_err").value(e.rel_err, "%.6f");
    w.key("held_out").value(e.held_out);
    w.key("note").value(e.note);
    w.endObject();
  }
  w.endArray();
  const double med = set.medianHeldOutRelErr();
  if (med >= 0) w.key("median_held_out_rel_err").value(med, "%.6f");
  w.endObject();
  os << '\n';
}

std::vector<CellEval> loadModelEvals(const support::Json& root) {
  const support::Json* kind = root.find("kind");
  VODSM_CHECK_MSG(kind != nullptr && kind->asString() == "vodsm_model_set",
                  "not a vodsm_model_set document");
  std::vector<CellEval> out;
  for (const support::Json& je : root.at("evals").items()) {
    CellEval e;
    e.id = je.at("id").asString();
    e.measured = je.at("measured").asNumber();
    e.predicted = je.at("predicted").asNumber();
    e.rel_err = je.at("rel_err").asNumber();
    e.held_out = je.at("held_out").asBool();
    e.note = je.at("note").asString();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace vodsm::model
