// Discrete-event engine with an optional conservative parallel schedule.
//
// Events are keyed by (time, stamp, origin-lane) and processed in strictly
// increasing key order, so a run is deterministic. Stamps are per-lane
// Lamport counters: the lane that schedules an event draws the stamp from
// its own counter, and executing an event with stamp c advances the
// executing lane's counter to at least c+1, so causally-later events always
// carry strictly larger keys. With a single lane (the default) stamps
// degenerate to the classic global insertion sequence and the engine
// behaves exactly like the historical serial (time, seq) engine.
//
// Lanes. `configureLanes(n, threads)` partitions events into n lanes (one
// per simulated node). All scheduling APIs are lane-local — an event's
// callbacks schedule into the lane that is executing — except `atLane`,
// which posts into another lane and models a cross-node network frame.
// Cross-lane posts must land at least `lookahead()` after the sender's
// current time (the minimum link latency published by the network), which
// is what makes the conservative schedule below correct.
//
// Parallel schedule (synchronous conservative windows, no rollback): each
// round computes m = min next-event time over all lanes and processes every
// lane's events with t < m + lookahead in parallel, one worker per lane
// group. Any cross-lane post made inside the window lands at or after the
// window end (t >= sender now + lookahead >= m + lookahead), so lanes never
// need events from each other mid-window; posts are buffered per source
// lane and merged at the barrier. The window advance doubles as the
// horizon broadcast of classic null-message schemes: every lane learns the
// global minimum each round, so idle lanes cannot deadlock the run. Within
// a lane, events run in key order; across windows, key ranges are disjoint
// and increasing — so the global execution order is a (deterministic)
// linear extension of the serial canonical order, and any state touched by
// at most one lane observes the exact serial sequence of operations.
// Observers (trace, metrics) that record from worker threads tag entries
// with the executing event's key and replay them in merged key order at
// each barrier, reproducing the serial stream byte for byte.
//
// Aux events. Samplers and other pure observers schedule via `auxAt`:
// aux events draw stamps from a separate per-lane counter (never consuming
// real stamps, so metered and unmetered runs stay bit-identical) and do not
// keep the engine alive — run() stops once all real events drained,
// discarding any trailing aux events.
//
// Storage: callbacks live in a free-list pool of event nodes (reused across
// the run, so steady-state scheduling allocates nothing), and the priority
// queue orders plain POD records — heap sifts move small PODs instead of
// whole closures, and popping the top needs no const_cast.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "support/check.hpp"

namespace vodsm::sim {

// Canonical event key. Orders by time, then stamp, then origin lane; keys
// of distinct events are distinct (a lane never issues a stamp twice).
struct EventKey {
  Time t = 0;
  uint64_t stamp = 0;
  uint32_t origin = 0;
};

inline bool operator<(const EventKey& a, const EventKey& b) {
  if (a.t != b.t) return a.t < b.t;
  if (a.stamp != b.stamp) return a.stamp < b.stamp;
  return a.origin < b.origin;
}

// Hooks for observers that must merge per-lane records deterministically
// when the engine runs its parallel schedule. All hooks are invoked on the
// coordinating thread while workers are quiescent, except none during
// serial runs (a serial run never calls them).
class ParallelObserver {
 public:
  virtual ~ParallelObserver() = default;
  // The parallel run is about to start; size per-lane buffers.
  virtual void onParallelStart(uint32_t nlanes) = 0;
  // A window completed; merge and flush per-lane records. On the final
  // window `limit` is the key of the last real event of the run: records
  // keyed later (trailing aux samples the serial schedule never executed)
  // must be dropped. Otherwise `limit` is null.
  virtual void onWindow(const EventKey* limit) = 0;
  // The parallel run finished; per-lane buffers are empty again.
  virtual void onParallelEnd() = 0;
};

// Resolves a --sim-threads style request: positive passes through, zero
// consults VODSM_SIM_THREADS, anything else (or no env) means serial.
inline int resolveSimThreads(int requested) {
  if (requested > 0) return requested;
  if (requested == 0) {
    if (const char* env = std::getenv("VODSM_SIM_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
  }
  return 1;
}

class Engine {
 public:
  using Callback = sim::Callback;

  // Identifies the event a worker thread is executing during a parallel
  // window. Observers use the key to tag records for deterministic merge
  // and the shared ordinal to preserve intra-event record order.
  struct ExecContext {
    EventKey key;
    uint32_t lane = 0;
    uint64_t ordinal = 0;
    uint64_t nextOrdinal() { return ordinal++; }
  };

  // Non-null only on a worker thread inside a parallel window.
  static ExecContext* execContext() { return exec_tls_; }

  // Pins the scheduling lane for events scheduled outside event context
  // (program spawns during setup). No-op effect with a single lane.
  class LaneGuard {
   public:
    LaneGuard(Engine& e, uint32_t lane) : e_(e), prev_(e.cur_lane_) {
      e_.cur_lane_ = lane < e.nlanes_ ? lane : 0;
    }
    ~LaneGuard() { e_.cur_lane_ = prev_; }
    LaneGuard(const LaneGuard&) = delete;
    LaneGuard& operator=(const LaneGuard&) = delete;

   private:
    Engine& e_;
    uint32_t prev_;
  };

  // Partition events into `nlanes` lanes (one per simulated node) and
  // request `threads` workers for run(); threads <= 0 resolves through
  // VODSM_SIM_THREADS (see resolveSimThreads). Must be called before any
  // event is scheduled. The schedule is bit-identical for every thread
  // count; threads only change how the run is executed on the host.
  void configureLanes(int nlanes, int threads) {
    VODSM_CHECK_MSG(heap_.empty() && lanes_.empty(),
                    "configureLanes must precede scheduling");
    nlanes_ = nlanes > 1 ? static_cast<uint32_t>(nlanes) : 1;
    threads_ = static_cast<uint32_t>(std::clamp(
        resolveSimThreads(threads), 1, static_cast<int>(nlanes_)));
    seqs_.assign(nlanes_, LaneSeq{});
    if (cur_lane_ >= nlanes_) cur_lane_ = 0;
  }

  uint32_t lanes() const { return nlanes_; }
  uint32_t threads() const { return threads_; }

  // Minimum cross-lane latency: every atLane post must land at least this
  // far after the posting lane's current time. Published by the network
  // model; required (> 0) for the parallel schedule to engage.
  void setLookahead(Time t) { lookahead_ = t; }
  Time lookahead() const { return lookahead_; }

  void addParallelObserver(ParallelObserver* o) {
    if (o) observers_.push_back(o);
  }

  // Schedule `cb` at absolute time `t` (must be >= now()) in the lane that
  // is currently executing (or the LaneGuard-pinned lane during setup).
  void at(Time t, Callback cb) { schedule(t, std::move(cb), false); }

  // Schedule `cb` `dt` after the engine's current time.
  void after(Time dt, Callback cb) { at(now() + dt, std::move(cb)); }

  // Schedule into another lane: the cross-node frame hop. `t` must be at
  // least lookahead() after the posting lane's current time.
  void atLane(uint32_t lane, Time t, Callback cb) {
    // Unconfigured engines (nlanes_ == 1) fold every lane into lane 0.
    const uint32_t dst = lane < nlanes_ ? lane : 0;
    if (ExecContext* x = exec_tls_) {
      LaneRt& src = lanes_[x->lane];
      VODSM_DCHECK(t >= src.now + lookahead_);
      src.outbox.push_back(
          Outpost{t, nextStamp(x->lane), x->lane, dst, std::move(cb)});
      return;
    }
    VODSM_DCHECK(t >= now_);
    pushGlobal(Entry{t, nextStamp(cur_lane_), cur_lane_, dst,
                     allocGlobal(std::move(cb))});
    ++real_pending_;
  }

  // Schedule an auxiliary (observer-only) event: it draws from a separate
  // stamp space, never delays engine termination, and trailing aux events
  // past the last real event are discarded. Aux callbacks must not mutate
  // simulated state or schedule real events.
  void auxAt(Time t, Callback cb) { schedule(t, std::move(cb), true); }
  void auxAfter(Time dt, Callback cb) { auxAt(now() + dt, std::move(cb)); }

  // Current simulated time: the executing lane's clock on a worker thread,
  // the global serial clock otherwise.
  Time now() const {
    if (ExecContext* x = exec_tls_) return lanes_[x->lane].now;
    return now_;
  }

  // Run one real event (processing any earlier aux events transparently).
  // Returns false if no real event remains or stop() was called.
  bool step() {
    while (true) {
      const int r = stepImpl();
      if (r == 0) return false;
      if (r == 1) return true;
    }
  }

  // Run until every real event drained or stop() is called. Returns the
  // number of real events processed.
  uint64_t run() {
    if (threads_ > 1 && nlanes_ > 1 && lookahead_ > 0) return runParallel();
    uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  // Run at most `limit` further real events; returns true iff the run is
  // fully drained (no real events left and not stopped). A stopped run
  // always reports drained=false: stopping abandons the queue.
  bool runBounded(uint64_t limit) {
    for (uint64_t n = 0; n < limit; ++n)
      if (!step()) break;
    return pending() == 0 && !stopped();
  }

  // Stop processing. Serial runs halt before the next event; a parallel
  // run halts at the next window barrier (lanes finish the current window).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  // Real events still pending (aux events are not counted: they never keep
  // the engine alive). Not meaningful from inside a parallel window.
  size_t pending() const {
    size_t n = real_pending_;
    for (const LaneRt& l : lanes_) n += l.real_pending;
    return n;
  }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;
  // Marks stamps drawn from the aux counter; aux events sort after every
  // real event at the same time (their stamps are astronomically larger).
  static constexpr uint64_t kAuxBit = uint64_t{1} << 63;

  struct Node {
    Callback cb;
    uint32_t next_free = kNone;
  };
  struct Entry {
    Time t;
    uint64_t stamp;
    uint32_t origin;  // lane whose counter issued the stamp
    uint32_t lane;    // lane the event executes in
    uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.stamp != b.stamp) return a.stamp > b.stamp;
      return a.origin > b.origin;
    }
  };
  struct LaneSeq {
    uint64_t real = 0;
    uint64_t aux = 0;
  };
  // A cross-lane post buffered during a parallel window.
  struct Outpost {
    Time t;
    uint64_t stamp;
    uint32_t origin;
    uint32_t lane;
    Callback cb;
  };
  // Per-lane runtime state, live only during a parallel run.
  struct LaneRt {
    std::vector<Entry> heap;
    std::vector<Node> pool;
    uint32_t free_head = kNone;
    Time now = 0;
    uint64_t real_pending = 0;
    uint64_t real_executed = 0;
    EventKey last_real{};
    bool any_real = false;
    std::vector<Outpost> outbox;
    std::exception_ptr error;
  };

  uint64_t nextStamp(uint32_t lane) { return seqs_[lane].real++; }
  uint64_t nextAuxStamp(uint32_t lane) {
    return seqs_[lane].aux++ | kAuxBit;
  }

  uint32_t allocGlobal(Callback cb) {
    uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = pool_[slot].next_free;
      pool_[slot].cb = std::move(cb);
    } else {
      slot = static_cast<uint32_t>(pool_.size());
      pool_.push_back(Node{std::move(cb), kNone});
    }
    return slot;
  }

  void pushGlobal(Entry e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  static uint32_t allocLane(LaneRt& l, Callback cb) {
    uint32_t slot;
    if (l.free_head != kNone) {
      slot = l.free_head;
      l.free_head = l.pool[slot].next_free;
      l.pool[slot].cb = std::move(cb);
    } else {
      slot = static_cast<uint32_t>(l.pool.size());
      l.pool.push_back(Node{std::move(cb), kNone});
    }
    return slot;
  }

  void schedule(Time t, Callback cb, bool aux) {
    if (ExecContext* x = exec_tls_) {
      LaneRt& l = lanes_[x->lane];
      VODSM_DCHECK(t >= l.now);
      l.heap.push_back(Entry{
          t, aux ? nextAuxStamp(x->lane) : nextStamp(x->lane), x->lane,
          x->lane, allocLane(l, std::move(cb))});
      std::push_heap(l.heap.begin(), l.heap.end(), Later{});
      if (!aux) ++l.real_pending;
      return;
    }
    VODSM_DCHECK(t >= now_);
    pushGlobal(Entry{t, aux ? nextAuxStamp(cur_lane_) : nextStamp(cur_lane_),
                     cur_lane_, cur_lane_, allocGlobal(std::move(cb))});
    if (!aux) ++real_pending_;
  }

  // Serial step: 0 = nothing to do (drained of real events or stopped),
  // 1 = executed a real event, 2 = executed an aux event.
  int stepImpl() {
    if (heap_.empty() || stopped() || real_pending_ == 0) return 0;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry ev = heap_.back();
    heap_.pop_back();
    VODSM_DCHECK(ev.t >= now_);
    now_ = ev.t;
    cur_lane_ = ev.lane;
    const bool aux = (ev.stamp & kAuxBit) != 0;
    LaneSeq& s = seqs_[ev.lane];
    if (aux) {
      s.aux = std::max(s.aux, (ev.stamp & ~kAuxBit) + 1);
    } else {
      s.real = std::max(s.real, ev.stamp + 1);
      --real_pending_;
    }
    // Move the callback out before running it: the callback may schedule
    // new events, which may reuse (or reallocate) this node's slot.
    Callback cb = std::move(pool_[ev.slot].cb);
    pool_[ev.slot].cb.reset();
    pool_[ev.slot].next_free = free_head_;
    free_head_ = ev.slot;
    cb();
    return aux ? 2 : 1;
  }

  // Execute one lane's share of the window [.., wend): pop and run events
  // with t < wend in key order. Runs on a worker thread; all scheduling
  // from inside lands back in this lane (or its outbox for atLane).
  void processWindow(uint32_t li, Time wend) {
    LaneRt& l = lanes_[li];
    ExecContext ctx;
    ctx.lane = li;
    exec_tls_ = &ctx;
    while (!l.heap.empty() && l.heap.front().t < wend) {
      std::pop_heap(l.heap.begin(), l.heap.end(), Later{});
      const Entry ev = l.heap.back();
      l.heap.pop_back();
      l.now = ev.t;
      const bool aux = (ev.stamp & kAuxBit) != 0;
      LaneSeq& s = seqs_[li];
      if (aux) {
        s.aux = std::max(s.aux, (ev.stamp & ~kAuxBit) + 1);
      } else {
        s.real = std::max(s.real, ev.stamp + 1);
        --l.real_pending;
        ++l.real_executed;
        l.last_real = EventKey{ev.t, ev.stamp, ev.origin};
        l.any_real = true;
      }
      ctx.key = EventKey{ev.t, ev.stamp, ev.origin};
      ctx.ordinal = 0;
      Callback cb = std::move(l.pool[ev.slot].cb);
      l.pool[ev.slot].cb.reset();
      l.pool[ev.slot].next_free = l.free_head;
      l.free_head = ev.slot;
      try {
        cb();
      } catch (...) {
        l.error = std::current_exception();
        break;
      }
    }
    exec_tls_ = nullptr;
  }

  void runWorkerShare(uint32_t w, Time wend) {
    for (uint32_t li = w; li < nlanes_; li += threads_)
      processWindow(li, wend);
  }

  void workerLoop(uint32_t w) {
    uint64_t seen = 0;
    while (true) {
      Time wend;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return shutdown_ || round_ != seen; });
        if (shutdown_) return;
        seen = round_;
        wend = wend_;
      }
      runWorkerShare(w, wend);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--working_ == 0) cv_done_.notify_one();
      }
    }
  }

  uint64_t runParallel() {
    VODSM_CHECK_MSG(lookahead_ > 0, "parallel run requires lookahead > 0");
    // Migrate the pending global events into per-lane heaps.
    lanes_ = std::vector<LaneRt>(nlanes_);
    for (LaneRt& l : lanes_) l.now = now_;
    for (const Entry& ev : heap_) {
      LaneRt& l = lanes_[ev.lane];
      l.heap.push_back(Entry{ev.t, ev.stamp, ev.origin, ev.lane,
                             allocLane(l, std::move(pool_[ev.slot].cb))});
      if ((ev.stamp & kAuxBit) == 0) ++l.real_pending;
    }
    heap_.clear();
    pool_.clear();
    free_head_ = kNone;
    real_pending_ = 0;
    for (LaneRt& l : lanes_)
      std::make_heap(l.heap.begin(), l.heap.end(), Later{});
    for (ParallelObserver* o : observers_) o->onParallelStart(nlanes_);

    // One worker per thread; the coordinating thread doubles as worker 0.
    round_ = 0;
    working_ = 0;
    shutdown_ = false;
    std::vector<std::thread> workers;
    workers.reserve(threads_ - 1);
    for (uint32_t w = 1; w < threads_; ++w)
      workers.emplace_back([this, w] { workerLoop(w); });

    EventKey last_real{};
    bool any_real = false;
    std::exception_ptr error;
    while (true) {
      uint64_t pending_real = 0;
      for (const LaneRt& l : lanes_) pending_real += l.real_pending;
      if (pending_real == 0 || stopped()) break;
      Time m = std::numeric_limits<Time>::max();
      for (const LaneRt& l : lanes_)
        if (!l.heap.empty()) m = std::min(m, l.heap.front().t);
      {
        std::lock_guard<std::mutex> lk(mu_);
        wend_ = m + lookahead_;
        working_ = static_cast<int>(threads_) - 1;
        ++round_;
      }
      cv_work_.notify_all();
      runWorkerShare(0, m + lookahead_);
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_done_.wait(lk, [this] { return working_ == 0; });
      }
      for (LaneRt& l : lanes_)
        if (l.error && !error) error = l.error;
      if (error) break;
      // Barrier: distribute the window's cross-lane posts. Heap pop order
      // depends only on the comparator, so merge order is immaterial.
      uint64_t remaining = 0;
      for (LaneRt& src : lanes_) {
        for (Outpost& p : src.outbox) {
          LaneRt& dst = lanes_[p.lane];
          dst.heap.push_back(Entry{p.t, p.stamp, p.origin, p.lane,
                                   allocLane(dst, std::move(p.cb))});
          std::push_heap(dst.heap.begin(), dst.heap.end(), Later{});
          if ((p.stamp & kAuxBit) == 0) ++dst.real_pending;
        }
        src.outbox.clear();
      }
      for (const LaneRt& l : lanes_) remaining += l.real_pending;
      for (const LaneRt& l : lanes_)
        if (l.any_real && (!any_real || last_real < l.last_real)) {
          last_real = l.last_real;
          any_real = true;
        }
      const bool final_window = remaining == 0 || stopped();
      for (ParallelObserver* o : observers_)
        o->onWindow(final_window ? &last_real : nullptr);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers) t.join();

    // Fold the clock to the last real event's time, exactly as the serial
    // schedule leaves it (lanes may have run trailing aux events further).
    uint64_t total_real = 0;
    for (const LaneRt& l : lanes_) total_real += l.real_executed;
    if (any_real) now_ = std::max(now_, last_real.t);
    for (ParallelObserver* o : observers_) o->onParallelEnd();
    if (error) std::rethrow_exception(error);
    return total_real;
  }

  // Serial state. The global heap holds every pending event outside a
  // parallel run; runParallel migrates it into lanes_ and leaves it empty.
  std::vector<Entry> heap_;
  std::vector<Node> pool_;
  uint32_t free_head_ = kNone;
  Time now_ = 0;
  uint64_t real_pending_ = 0;
  std::atomic<bool> stopped_{false};
  uint32_t cur_lane_ = 0;  // scheduling lane outside parallel windows

  // Lane configuration (configureLanes) and per-lane stamp counters. With
  // the default single lane, seqs_[0].real is the classic global sequence.
  uint32_t nlanes_ = 1;
  uint32_t threads_ = 1;
  Time lookahead_ = 0;
  std::vector<LaneSeq> seqs_ = std::vector<LaneSeq>(1);
  std::vector<LaneRt> lanes_;  // non-empty only during/after a parallel run
  std::vector<ParallelObserver*> observers_;

  // Worker-pool plumbing for runParallel.
  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  uint64_t round_ = 0;
  int working_ = 0;
  bool shutdown_ = false;
  Time wend_ = 0;

  inline static thread_local ExecContext* exec_tls_ = nullptr;
};

}  // namespace vodsm::sim
