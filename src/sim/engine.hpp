// Discrete-event engine.
//
// Events are (time, sequence, callback) triples processed in strictly
// nondecreasing (time, sequence) order, so a run is deterministic: two
// events at the same timestamp fire in scheduling order. The engine is
// single-threaded; callbacks may schedule further events and resume
// coroutines, which run to their next suspension point inline.
//
// Storage: callbacks live in a free-list pool of event nodes (reused across
// the run, so steady-state scheduling allocates nothing), and the priority
// queue orders plain {time, seq, slot} records — heap sifts move 24-byte
// PODs instead of whole closures, and popping the top needs no const_cast.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "support/check.hpp"

namespace vodsm::sim {

class Engine {
 public:
  using Callback = sim::Callback;

  // Schedule `cb` at absolute time `t` (must be >= now()).
  void at(Time t, Callback cb) {
    VODSM_DCHECK(t >= now_);
    uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = pool_[slot].next_free;
      pool_[slot].cb = std::move(cb);
    } else {
      slot = static_cast<uint32_t>(pool_.size());
      pool_.push_back(Node{std::move(cb), kNone});
    }
    heap_.push_back(Entry{t, seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  // Schedule `cb` `dt` after the engine's current time.
  void after(Time dt, Callback cb) { at(now_ + dt, std::move(cb)); }

  Time now() const { return now_; }

  // Run one event. Returns false if the queue is empty.
  bool step() {
    if (heap_.empty() || stopped_) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry ev = heap_.back();
    heap_.pop_back();
    VODSM_DCHECK(ev.t >= now_);
    now_ = ev.t;
    // Move the callback out before running it: the callback may schedule
    // new events, which may reuse (or reallocate) this node's slot.
    Callback cb = std::move(pool_[ev.slot].cb);
    pool_[ev.slot].cb.reset();
    pool_[ev.slot].next_free = free_head_;
    free_head_ = ev.slot;
    cb();
    return true;
  }

  // Run until the queue drains or stop() is called. Returns the number of
  // events processed.
  uint64_t run() {
    uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  // Run at most `limit` further events; returns true if the queue drained.
  bool runBounded(uint64_t limit) {
    for (uint64_t n = 0; n < limit; ++n)
      if (!step()) return true;
    return heap_.empty();
  }

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  size_t pending() const { return heap_.size(); }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    Callback cb;
    uint32_t next_free = kNone;
  };
  struct Entry {
    Time t;
    uint64_t seq;
    uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::vector<Node> pool_;
  uint32_t free_head_ = kNone;
  Time now_ = 0;
  uint64_t seq_ = 0;
  bool stopped_ = false;
};

}  // namespace vodsm::sim
