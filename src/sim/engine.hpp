// Discrete-event engine.
//
// Events are (time, sequence, callback) triples processed in strictly
// nondecreasing (time, sequence) order, so a run is deterministic: two
// events at the same timestamp fire in scheduling order. The engine is
// single-threaded; callbacks may schedule further events and resume
// coroutines, which run to their next suspension point inline.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "support/check.hpp"

namespace vodsm::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  // Schedule `cb` at absolute time `t` (must be >= now()).
  void at(Time t, Callback cb) {
    VODSM_DCHECK(t >= now_);
    queue_.push(Event{t, seq_++, std::move(cb)});
  }

  // Schedule `cb` `dt` after the engine's current time.
  void after(Time dt, Callback cb) { at(now_ + dt, std::move(cb)); }

  Time now() const { return now_; }

  // Run one event. Returns false if the queue is empty.
  bool step() {
    if (queue_.empty() || stopped_) return false;
    // The queue stores const refs through top(); move out via const_cast is
    // avoided by copying the small struct's callback after pop bookkeeping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    VODSM_DCHECK(ev.t >= now_);
    now_ = ev.t;
    ev.cb();
    return true;
  }

  // Run until the queue drains or stop() is called. Returns the number of
  // events processed.
  uint64_t run() {
    uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  // Run at most `limit` further events; returns true if the queue drained.
  bool runBounded(uint64_t limit) {
    for (uint64_t n = 0; n < limit; ++n)
      if (!step()) return true;
    return queue_.empty();
  }

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time t;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  uint64_t seq_ = 0;
  bool stopped_ = false;
};

}  // namespace vodsm::sim
