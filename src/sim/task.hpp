// Coroutine task type for simulated node programs.
//
// Task<T> is a lazy coroutine with continuation chaining (symmetric
// transfer): `co_await someTask()` starts the child and resumes the parent
// when it finishes. Node programs are Task<void> coroutines whose only
// suspension points are simulated-time operations (message waits, delays),
// so program order within a node is ordinary C++ control flow.
//
// spawn() turns a Task<void> into a detached, self-destroying run: used by
// the cluster to launch one root task per node. Exceptions escaping a
// spawned task are captured and reported through the spawn callback.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace vodsm::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

// Lazy coroutine returning T. Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        VODSM_DCHECK(p.value.has_value());
        return std::move(*p.value);
      }
    };
    VODSM_CHECK_MSG(h_, "awaiting an empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }

  Handle h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    VODSM_CHECK_MSG(h_, "awaiting an empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }

  Handle h_{};
};

// Owner for detached task frames. A frame spawned into a scope deregisters
// itself when it finishes; any frame still suspended when the scope is
// destroyed (a deadlocked or otherwise abandoned run) is destroyed with it,
// which cascades through every child frame the task was awaiting. The scope
// must outlive nothing the suspended frames reference — declare it as the
// last member of the object that owns the engine and runtimes.
class TaskScope {
 public:
  TaskScope() = default;
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;
  ~TaskScope() { cancelAll(); }

  // Destroy every still-suspended spawned frame. Idempotent. Must not be
  // called while the engine may still resume one of these frames.
  void cancelAll() {
    // Null the slot before destroy(): frame teardown runs the promise
    // destructor, which deregisters itself through this same vector.
    for (size_t i = 0; i < live_.size(); ++i) {
      std::coroutine_handle<> h = std::exchange(live_[i], nullptr);
      if (h) h.destroy();
    }
    live_.clear();
  }

  size_t liveCount() const {
    size_t n = 0;
    for (auto h : live_) n += h != nullptr;
    return n;
  }

  // Registration interface for the spawn driver promise; not for users.
  size_t add(std::coroutine_handle<> h) {
    live_.push_back(h);
    return live_.size() - 1;
  }
  void remove(size_t slot) { live_[slot] = nullptr; }

 private:
  std::vector<std::coroutine_handle<>> live_;
};

namespace detail {

// Self-destroying driver coroutine for detached tasks. initial/final suspend
// never suspend, so the frame is freed as soon as the driven task finishes.
// The promise constructor mirrors drive()'s parameters: when a TaskScope is
// supplied, the frame registers on start and deregisters in the promise
// destructor (which also runs on TaskScope::cancelAll's destroy()).
struct Detached {
  struct promise_type {
    TaskScope* scope_ = nullptr;
    size_t slot_ = 0;

    promise_type(TaskScope* scope, Task<void>&,
                 std::function<void(std::exception_ptr)>&)
        : scope_(scope) {
      if (scope_)
        slot_ = scope_->add(
            std::coroutine_handle<promise_type>::from_promise(*this));
    }
    ~promise_type() { release(); }

    void release() {
      if (scope_) std::exchange(scope_, nullptr)->remove(slot_);
    }

    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

// Non-suspending awaitable that deregisters the driver from its TaskScope.
struct DeregisterSelf {
  bool await_ready() noexcept { return false; }
  bool await_suspend(
      std::coroutine_handle<Detached::promise_type> h) noexcept {
    h.promise().release();
    return false;
  }
  void await_resume() noexcept {}
};

inline Detached drive(TaskScope* scope, Task<void> t,
                      std::function<void(std::exception_ptr)> done) {
  (void)scope;  // consumed by the promise constructor
  std::exception_ptr err;
  try {
    co_await std::move(t);
  } catch (...) {
    err = std::current_exception();
  }
  // Deregister before done(): done may resume a continuation that destroys
  // the scope while this frame is still running, and a scope teardown must
  // never destroy() a frame that is on the call stack.
  co_await DeregisterSelf{};
  done(err);
}

}  // namespace detail

// Start `t` detached. `done` is invoked when the task finishes, with the
// escaped exception (if any). The task frame is owned by the driver; if the
// engine drains while the task is still suspended, the frame is unreachable
// and leaks — prefer the TaskScope overload for tasks that can deadlock.
inline void spawn(Task<void> t,
                  std::function<void(std::exception_ptr)> done =
                      [](std::exception_ptr e) {
                        if (e) std::rethrow_exception(e);
                      }) {
  detail::drive(nullptr, std::move(t), std::move(done));
}

// Start `t` detached under `scope`: frames abandoned mid-suspension (e.g.
// the run was declared deadlocked) are reclaimed when the scope is destroyed.
inline void spawn(TaskScope& scope, Task<void> t,
                  std::function<void(std::exception_ptr)> done =
                      [](std::exception_ptr e) {
                        if (e) std::rethrow_exception(e);
                      }) {
  detail::drive(&scope, std::move(t), std::move(done));
}

}  // namespace vodsm::sim
