// Coroutine task type for simulated node programs.
//
// Task<T> is a lazy coroutine with continuation chaining (symmetric
// transfer): `co_await someTask()` starts the child and resumes the parent
// when it finishes. Node programs are Task<void> coroutines whose only
// suspension points are simulated-time operations (message waits, delays),
// so program order within a node is ordinary C++ control flow.
//
// spawn() turns a Task<void> into a detached, self-destroying run: used by
// the cluster to launch one root task per node. Exceptions escaping a
// spawned task are captured and reported through the spawn callback.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "support/check.hpp"

namespace vodsm::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

// Lazy coroutine returning T. Move-only; owns the coroutine frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.error) std::rethrow_exception(p.error);
        VODSM_DCHECK(p.value.has_value());
        return std::move(*p.value);
      }
    };
    VODSM_CHECK_MSG(h_, "awaiting an empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }

  Handle h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    VODSM_CHECK_MSG(h_, "awaiting an empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }

  Handle h_{};
};

namespace detail {

// Self-destroying driver coroutine for detached tasks. initial/final suspend
// never suspend, so the frame is freed as soon as the driven task finishes.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

inline Detached drive(Task<void> t,
                      std::function<void(std::exception_ptr)> done) {
  std::exception_ptr err;
  try {
    co_await std::move(t);
  } catch (...) {
    err = std::current_exception();
  }
  done(err);
}

}  // namespace detail

// Start `t` detached. `done` is invoked when the task finishes, with the
// escaped exception (if any). The task frame is owned by the driver.
inline void spawn(Task<void> t,
                  std::function<void(std::exception_ptr)> done =
                      [](std::exception_ptr e) {
                        if (e) std::rethrow_exception(e);
                      }) {
  detail::drive(std::move(t), std::move(done));
}

}  // namespace vodsm::sim
