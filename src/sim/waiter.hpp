// One-shot value channel between engine event handlers and coroutines.
//
// A coroutine co_awaits a Waiter<T>; some later engine event calls
// fulfill(v), which resumes the coroutine inline with the value. Exactly one
// awaiter and exactly one fulfill per Waiter. fulfill-before-await is
// supported (the value is stored and picked up without suspending).
#pragma once

#include <coroutine>
#include <optional>
#include <utility>

#include "support/check.hpp"

namespace vodsm::sim {

template <typename T>
class Waiter {
 public:
  Waiter() = default;
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  bool ready() const { return value_.has_value(); }
  bool hasWaiter() const { return static_cast<bool>(waiter_); }

  void fulfill(T v) {
    VODSM_CHECK_MSG(!value_.has_value(), "Waiter fulfilled twice");
    value_.emplace(std::move(v));
    if (waiter_) std::exchange(waiter_, {}).resume();
  }

  auto operator co_await() {
    struct Awaiter {
      Waiter& w;
      bool await_ready() { return w.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        VODSM_CHECK_MSG(!w.waiter_, "Waiter awaited twice");
        w.waiter_ = h;
      }
      T await_resume() {
        VODSM_DCHECK(w.value_.has_value());
        return std::move(*w.value_);
      }
    };
    return Awaiter{*this};
  }

 private:
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
};

template <>
class Waiter<void> {
 public:
  Waiter() = default;
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  bool ready() const { return done_; }
  bool hasWaiter() const { return static_cast<bool>(waiter_); }

  void fulfill() {
    VODSM_CHECK_MSG(!done_, "Waiter fulfilled twice");
    done_ = true;
    if (waiter_) std::exchange(waiter_, {}).resume();
  }

  auto operator co_await() {
    struct Awaiter {
      Waiter& w;
      bool await_ready() { return w.done_; }
      void await_suspend(std::coroutine_handle<> h) {
        VODSM_CHECK_MSG(!w.waiter_, "Waiter awaited twice");
        w.waiter_ = h;
      }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

 private:
  bool done_ = false;
  std::coroutine_handle<> waiter_;
};

// Counts down from n; co_await completes when the count reaches zero.
// Used for join-style synchronization (e.g. wait for all replies).
class Countdown {
 public:
  explicit Countdown(int n) : remaining_(n) {}

  void arrive() {
    VODSM_CHECK_MSG(remaining_ > 0, "Countdown over-arrived");
    if (--remaining_ == 0 && waiter_) std::exchange(waiter_, {}).resume();
  }

  auto operator co_await() {
    struct Awaiter {
      Countdown& c;
      bool await_ready() { return c.remaining_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        VODSM_CHECK_MSG(!c.waiter_, "Countdown awaited twice");
        c.waiter_ = h;
      }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

 private:
  int remaining_;
  std::coroutine_handle<> waiter_;
};

}  // namespace vodsm::sim
