// Move-only callable with small-buffer optimization, sized for the engine's
// event callbacks.
//
// Every scheduling site in the simulator captures at most `this` plus a few
// ids or one Bytes buffer (~40 bytes), so the common case stores the functor
// inline in the event node and scheduling an event performs no heap
// allocation at all (std::function's ~64-byte captures still allocate on
// libstdc++). Larger captures fall back to a single heap cell.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vodsm::sim {

class Callback {
 public:
  // Fits the largest capture the sim/net layers schedule (this + two ids +
  // one std::vector); raising it only trades event-node size for heap hits.
  static constexpr size_t kInlineBytes = 48;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inlineVTable<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = &heapVTable<Fn>;
    }
  }

  Callback(Callback&& o) noexcept { moveFrom(o); }
  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  void reset() {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable inlineVTable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heapVTable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void moveFrom(Callback& o) noexcept {
    vt_ = o.vt_;
    if (vt_) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace vodsm::sim
