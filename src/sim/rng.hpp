// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64. Every stochastic element of the
// simulator (packet loss, application input generation) draws from an
// explicitly seeded Rng so that a run is a pure function of its seeds.
#pragma once

#include <cstdint>

namespace vodsm::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  // Derive an independent stream (e.g. one per node) from this one.
  Rng fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace vodsm::sim
