// Per-node local clock.
//
// A node's coroutine charges CPU work to its local clock without yielding to
// the engine (nodes only interact through messages, so local compute needs
// no global ordering). When a node blocks on a message, the resuming event
// advances the clock to the arrival time via atLeast().
#pragma once

#include <coroutine>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vodsm::sim {

// Optional hook that rescales CPU charges (fault injection uses it to model
// straggler nodes). Stateless from the clock's point of view: scale() must
// be a pure function of (dt, now) so charging is independent of call
// batching. When no scaler is installed the clock behaves exactly as
// before — one null check, no heap, no time effect.
class ChargeScaler {
 public:
  virtual ~ChargeScaler() = default;
  virtual Time scale(Time dt, Time now) const = 0;
};

class Clock {
 public:
  Time now() const { return now_; }

  // Account local CPU work.
  void charge(Time dt) {
    VODSM_DCHECK(dt >= 0);
    now_ += scaler_ ? scaler_->scale(dt, now_) : dt;
  }

  // Clamp forward to an externally observed time (message arrival etc.).
  void atLeast(Time t) {
    if (t > now_) now_ = t;
  }

  // Install (or clear) a charge scaler; caller keeps ownership.
  void setScaler(const ChargeScaler* s) { scaler_ = s; }

 private:
  Time now_ = 0;
  const ChargeScaler* scaler_ = nullptr;
};

// Awaitable that suspends the current coroutine and resumes it once the
// engine reaches clock.now() + dt; afterwards the clock equals that time.
// Useful for modeling pure waiting (e.g. backoff) and for yielding a node so
// its outgoing events are globally ordered.
inline auto sleepFor(Engine& engine, Clock& clock, Time dt) {
  struct Awaiter {
    Engine& engine;
    Clock& clock;
    Time wake;
    bool await_ready() { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine.at(wake, [h]() mutable { h.resume(); });
    }
    void await_resume() { clock.atLeast(wake); }
  };
  return Awaiter{engine, clock, clock.now() + dt};
}

}  // namespace vodsm::sim
