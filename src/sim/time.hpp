// Simulated time. All timestamps in the simulator are signed 64-bit
// nanosecond counts from the start of the run; helpers below build readable
// durations. int64 nanoseconds gives ~292 years of range, far beyond any run.
#pragma once

#include <cstdint>

namespace vodsm::sim {

using Time = std::int64_t;  // nanoseconds

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Time msec(std::int64_t n) { return n * kMillisecond; }
constexpr Time sec(std::int64_t n) { return n * kSecond; }

constexpr double toSeconds(Time t) { return static_cast<double>(t) / kSecond; }
constexpr double toMicros(Time t) {
  return static_cast<double>(t) / kMicrosecond;
}

}  // namespace vodsm::sim
