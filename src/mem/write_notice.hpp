// Write notices and intervals: LRC's record of "who wrote which pages when".
#pragma once

#include <vector>

#include "mem/page.hpp"
#include "mem/vclock.hpp"
#include "support/bytes.hpp"

namespace vodsm::mem {

// One closed interval of one node: the set of pages it dirtied between two
// consecutive synchronization operations, stamped with the node's vector
// clock at the moment the interval was closed.
struct Interval {
  uint32_t node = 0;
  uint32_t index = 0;  // 1-based per-node interval counter
  VClock vc;
  std::vector<PageId> pages;

  void serialize(Writer& w) const {
    w.u32(node);
    w.u32(index);
    vc.serialize(w);
    w.u32(static_cast<uint32_t>(pages.size()));
    for (PageId p : pages) w.u32(p);
  }
  static Interval deserialize(Reader& r) {
    Interval iv;
    iv.node = r.u32();
    iv.index = r.u32();
    iv.vc = VClock::deserialize(r);
    const uint32_t n = r.u32();
    iv.pages.reserve(n);
    for (uint32_t i = 0; i < n; ++i) iv.pages.push_back(r.u32());
    return iv;
  }

  // Approximate bytes on the wire (used for message sizing).
  size_t wireSize() const { return 12 + vc.size() * 4 + pages.size() * 4; }
};

// A write notice as recorded against one page: node `writer`'s interval
// `interval_index` modified the page.
struct WriteNotice {
  uint32_t writer = 0;
  uint32_t interval_index = 0;

  bool operator==(const WriteNotice& o) const {
    return writer == o.writer && interval_index == o.interval_index;
  }
};

}  // namespace vodsm::mem
