// Vector timestamps for Lazy Release Consistency.
//
// VClock[i] counts the intervals of node i that the owner has "seen"
// (applied write notices for). LRC's acquire protocol ships the acquirer's
// clock to the grantor, which answers with every interval the acquirer has
// not yet covered.
#pragma once

#include <vector>

#include "support/bytes.hpp"
#include "support/check.hpp"

namespace vodsm::mem {

class VClock {
 public:
  VClock() = default;
  explicit VClock(size_t n) : v_(n, 0) {}

  size_t size() const { return v_.size(); }
  uint32_t operator[](size_t i) const { return v_[i]; }
  uint32_t& operator[](size_t i) { return v_[i]; }

  // True when this clock has seen at least everything `o` has.
  bool covers(const VClock& o) const {
    VODSM_DCHECK(size() == o.size());
    for (size_t i = 0; i < v_.size(); ++i)
      if (v_[i] < o.v_[i]) return false;
    return true;
  }

  // True when this clock has seen interval `index` of `node` (1-based count:
  // interval k is seen when v_[node] >= k).
  bool hasSeen(size_t node, uint32_t interval_index) const {
    return v_[node] >= interval_index;
  }

  void merge(const VClock& o) {
    VODSM_DCHECK(size() == o.size());
    for (size_t i = 0; i < v_.size(); ++i) v_[i] = std::max(v_[i], o.v_[i]);
  }

  void serialize(Writer& w) const {
    w.u32(static_cast<uint32_t>(v_.size()));
    for (uint32_t x : v_) w.u32(x);
  }
  static VClock deserialize(Reader& r) {
    VClock c;
    const uint32_t n = r.u32();
    c.v_.resize(n);
    for (uint32_t i = 0; i < n; ++i) c.v_[i] = r.u32();
    return c;
  }

  bool operator==(const VClock& o) const { return v_ == o.v_; }

 private:
  std::vector<uint32_t> v_;
};

}  // namespace vodsm::mem
