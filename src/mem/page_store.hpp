// Per-node copy of the shared address space with software page protection.
//
// Each simulated node owns a full private copy of the DSM address space plus
// per-page protection state and optional twins. The protocol layers drive
// the same transitions a SIGSEGV-based implementation would:
//
//   invalid  --read fault-->  read-mapped   (contents fetched/updated first)
//   read     --write fault--> write-mapped  (twin snapshotted for diffing)
//   release/barrier:           diff against twin, downgrade to read
#pragma once

#include <cstdlib>
#include <memory>
#include <vector>

#include "mem/diff.hpp"
#include "mem/page.hpp"
#include "support/check.hpp"

namespace vodsm::mem {

class PageStore {
 public:
  explicit PageStore(size_t bytes)
      : bytes_((bytes + kPageSize - 1) / kPageSize * kPageSize),
        mem_(static_cast<std::byte*>(std::calloc(bytes_ ? bytes_ : 1, 1))),
        pages_(bytes_ / kPageSize) {
    VODSM_CHECK(mem_ != nullptr);
  }

  size_t sizeBytes() const { return bytes_; }
  size_t pageCount() const { return pages_.size(); }

  MutByteSpan page(PageId p) {
    VODSM_DCHECK(p < pageCount());
    return MutByteSpan(mem_.get() + pageStart(p), kPageSize);
  }
  ByteSpan pageView(PageId p) const {
    VODSM_DCHECK(p < pageCount());
    return ByteSpan(mem_.get() + pageStart(p), kPageSize);
  }

  // Arbitrary byte range access (application data path).
  MutByteSpan range(size_t offset, size_t len) {
    VODSM_CHECK(offset + len <= bytes_);
    return MutByteSpan(mem_.get() + offset, len);
  }
  ByteSpan rangeView(size_t offset, size_t len) const {
    VODSM_CHECK(offset + len <= bytes_);
    return ByteSpan(mem_.get() + offset, len);
  }

  Access access(PageId p) const { return pages_[p].access; }
  void setAccess(PageId p, Access a) { pages_[p].access = a; }

  bool hasTwin(PageId p) const { return pages_[p].twin != nullptr; }

  // Snapshot the current page contents as the twin (write-fault action).
  // Twin buffers are recycled through a free list: a steady-state
  // write-fault/release cycle allocates nothing.
  void makeTwin(PageId p) {
    VODSM_DCHECK(!hasTwin(p));
    std::unique_ptr<Bytes> twin;
    if (!twin_pool_.empty()) {
      twin = std::move(twin_pool_.back());
      twin_pool_.pop_back();
    } else {
      twin = std::make_unique<Bytes>(kPageSize);
    }
    ByteSpan cur = pageView(p);
    std::copy(cur.begin(), cur.end(), twin->begin());
    pages_[p].twin = std::move(twin);
  }

  ByteSpan twin(PageId p) const {
    VODSM_DCHECK(hasTwin(p));
    return *pages_[p].twin;
  }

  void dropTwin(PageId p) {
    if (pages_[p].twin) twin_pool_.push_back(std::move(pages_[p].twin));
  }

  // Diff current contents against the twin; the twin is kept (callers drop
  // it once the diff has been recorded). Scans through the store's scratch
  // arena so repeated diffing allocates only the exact-size results.
  Diff diffAgainstTwin(PageId p) const {
    VODSM_DCHECK(hasTwin(p));
    return Diff::create(p, pageView(p), *pages_[p].twin, scratch_);
  }

 private:
  struct PageMeta {
    Access access = Access::kNone;
    std::unique_ptr<Bytes> twin;
  };

  struct FreeDeleter {
    void operator()(std::byte* p) const { std::free(p); }
  };

  size_t bytes_;
  // calloc, not a value-initialized vector: large heaps come from the OS as
  // lazily-faulted zero pages, so a node's resident footprint is only the
  // pages it actually touches. With per-node full copies of an O(p^2)-view
  // address space (IS contribution views), eager zero-fill would make host
  // memory O(p^3) and dominate wall-clock at 256 nodes.
  std::unique_ptr<std::byte[], FreeDeleter> mem_;
  std::vector<PageMeta> pages_;
  std::vector<std::unique_ptr<Bytes>> twin_pool_;  // recycled twin buffers
  mutable Diff::Scratch scratch_;
};

}  // namespace vodsm::mem
