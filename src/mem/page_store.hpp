// Per-node copy of the shared address space with software page protection.
//
// Each simulated node owns a full private copy of the DSM address space plus
// per-page protection state and optional twins. The protocol layers drive
// the same transitions a SIGSEGV-based implementation would:
//
//   invalid  --read fault-->  read-mapped   (contents fetched/updated first)
//   read     --write fault--> write-mapped  (twin snapshotted for diffing)
//   release/barrier:           diff against twin, downgrade to read
#pragma once

#include <memory>
#include <vector>

#include "mem/diff.hpp"
#include "mem/page.hpp"
#include "support/check.hpp"

namespace vodsm::mem {

class PageStore {
 public:
  explicit PageStore(size_t bytes)
      : mem_((bytes + kPageSize - 1) / kPageSize * kPageSize,
             std::byte{0}),
        pages_(mem_.size() / kPageSize) {}

  size_t sizeBytes() const { return mem_.size(); }
  size_t pageCount() const { return pages_.size(); }

  MutByteSpan page(PageId p) {
    VODSM_DCHECK(p < pageCount());
    return MutByteSpan(mem_.data() + pageStart(p), kPageSize);
  }
  ByteSpan pageView(PageId p) const {
    VODSM_DCHECK(p < pageCount());
    return ByteSpan(mem_.data() + pageStart(p), kPageSize);
  }

  // Arbitrary byte range access (application data path).
  MutByteSpan range(size_t offset, size_t len) {
    VODSM_CHECK(offset + len <= mem_.size());
    return MutByteSpan(mem_.data() + offset, len);
  }
  ByteSpan rangeView(size_t offset, size_t len) const {
    VODSM_CHECK(offset + len <= mem_.size());
    return ByteSpan(mem_.data() + offset, len);
  }

  Access access(PageId p) const { return pages_[p].access; }
  void setAccess(PageId p, Access a) { pages_[p].access = a; }

  bool hasTwin(PageId p) const { return pages_[p].twin != nullptr; }

  // Snapshot the current page contents as the twin (write-fault action).
  // Twin buffers are recycled through a free list: a steady-state
  // write-fault/release cycle allocates nothing.
  void makeTwin(PageId p) {
    VODSM_DCHECK(!hasTwin(p));
    std::unique_ptr<Bytes> twin;
    if (!twin_pool_.empty()) {
      twin = std::move(twin_pool_.back());
      twin_pool_.pop_back();
    } else {
      twin = std::make_unique<Bytes>(kPageSize);
    }
    ByteSpan cur = pageView(p);
    std::copy(cur.begin(), cur.end(), twin->begin());
    pages_[p].twin = std::move(twin);
  }

  ByteSpan twin(PageId p) const {
    VODSM_DCHECK(hasTwin(p));
    return *pages_[p].twin;
  }

  void dropTwin(PageId p) {
    if (pages_[p].twin) twin_pool_.push_back(std::move(pages_[p].twin));
  }

  // Diff current contents against the twin; the twin is kept (callers drop
  // it once the diff has been recorded). Scans through the store's scratch
  // arena so repeated diffing allocates only the exact-size results.
  Diff diffAgainstTwin(PageId p) const {
    VODSM_DCHECK(hasTwin(p));
    return Diff::create(p, pageView(p), *pages_[p].twin, scratch_);
  }

 private:
  struct PageMeta {
    Access access = Access::kNone;
    std::unique_ptr<Bytes> twin;
  };

  Bytes mem_;
  std::vector<PageMeta> pages_;
  std::vector<std::unique_ptr<Bytes>> twin_pool_;  // recycled twin buffers
  mutable Diff::Scratch scratch_;
};

}  // namespace vodsm::mem
