#include "mem/diff.hpp"

#include <array>
#include <cstring>

namespace vodsm::mem {

namespace {
constexpr size_t kWord = 4;
static_assert(kPageSize % 8 == 0, "64-bit scan assumes 8-byte-multiple pages");

// 64-bit twin comparison with run coalescing. Semantics are identical to
// the original 4-byte-word memcmp scan (runs are maximal sequences of
// differing 4-byte words), but the clean fast path — an unchanged 8-byte
// block — is one XOR, and the per-word result falls out of the same XOR's
// halves, so scanning a mostly-clean page touches each cache line once.
void scanPage(ByteSpan current, ByteSpan twin, std::vector<Diff::Run>& runs,
              Bytes& data) {
  VODSM_CHECK(current.size() == kPageSize && twin.size() == kPageSize);
  const std::byte* cur = current.data();
  const std::byte* tw = twin.data();

  size_t run_start = kPageSize;  // kPageSize == no run open
  auto flush = [&](size_t end) {
    if (run_start == kPageSize) return;
    runs.push_back(Diff::Run{static_cast<uint16_t>(run_start),
                             static_cast<uint16_t>(end - run_start)});
    data.insert(data.end(), cur + run_start, cur + end);
    run_start = kPageSize;
  };

  for (size_t i = 0; i < kPageSize; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, cur + i, 8);
    std::memcpy(&b, tw + i, 8);
    const uint64_t x = a ^ b;
    if (x == 0) {
      flush(i);
      continue;
    }
    // Little-endian host (as assumed by support/bytes.hpp): the low 32 bits
    // of the XOR cover bytes [i, i+4), the high 32 bits [i+4, i+8).
    const bool lo = (x & 0xFFFFFFFFull) != 0;
    const bool hi = (x >> 32) != 0;
    if (lo) {
      if (run_start == kPageSize) run_start = i;
      if (!hi) flush(i + kWord);
    } else {
      flush(i);
      if (hi) run_start = i + kWord;
    }
  }
  flush(kPageSize);
}
}  // namespace

Diff Diff::create(PageId page, ByteSpan current, ByteSpan twin) {
  Diff d(page);
  scanPage(current, twin, d.runs_, d.data_);
  return d;
}

Diff Diff::create(PageId page, ByteSpan current, ByteSpan twin,
                  Scratch& scratch) {
  scratch.runs.clear();
  scratch.data.clear();
  scanPage(current, twin, scratch.runs, scratch.data);
  Diff d(page);
  d.runs_.assign(scratch.runs.begin(), scratch.runs.end());
  d.data_.assign(scratch.data.begin(), scratch.data.end());
  return d;
}

void Diff::apply(MutByteSpan page_bytes) const {
  VODSM_CHECK(page_bytes.size() == kPageSize);
  size_t pos = 0;
  for (const Run& r : runs_) {
    VODSM_DCHECK(static_cast<size_t>(r.offset) + r.length <= kPageSize);
    std::memcpy(page_bytes.data() + r.offset, data_.data() + pos, r.length);
    pos += r.length;
  }
  VODSM_DCHECK(pos == data_.size());
}

Diff Diff::integrate(const Diff& older, const Diff& newer) {
  VODSM_CHECK(older.page_ == newer.page_);
  // Materialize onto a page-sized scratch overlay: correctness over cleverness
  // (a page is only 4 KB, so this is cheap and obviously right).
  std::array<std::byte, kPageSize> bytes{};
  std::array<bool, kPageSize> covered{};
  auto overlay = [&](const Diff& d) {
    size_t pos = 0;
    for (const Run& r : d.runs_) {
      std::memcpy(bytes.data() + r.offset, d.data_.data() + pos, r.length);
      std::fill(covered.begin() + r.offset,
                covered.begin() + r.offset + r.length, true);
      pos += r.length;
    }
  };
  overlay(older);
  overlay(newer);

  Diff out(older.page_);
  size_t i = 0;
  while (i < kPageSize) {
    if (!covered[i]) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < kPageSize && covered[i]) ++i;
    out.runs_.push_back(Run{static_cast<uint16_t>(start),
                            static_cast<uint16_t>(i - start)});
    out.data_.insert(out.data_.end(), bytes.begin() + start, bytes.begin() + i);
  }
  return out;
}

void Diff::serialize(Writer& w) const {
  w.reserveMore(wireSize());
  w.u32(page_);
  w.u32(static_cast<uint32_t>(runs_.size()));
  for (const Run& r : runs_) {
    w.u16(r.offset);
    w.u16(r.length);
  }
  w.blob(data_);
}

Diff Diff::deserialize(Reader& r) {
  Diff d(r.u32());
  const uint32_t n = r.u32();
  d.runs_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint16_t off = r.u16();
    uint16_t len = r.u16();
    d.runs_.push_back(Run{off, len});
  }
  ByteSpan data = r.blob();
  d.data_.assign(data.begin(), data.end());
  size_t total = 0;
  for (const Run& run : d.runs_) total += run.length;
  VODSM_CHECK_MSG(total == d.data_.size(), "corrupt diff encoding");
  return d;
}

void Diff::addRun(uint16_t offset, ByteSpan bytes) {
  VODSM_CHECK(static_cast<size_t>(offset) + bytes.size() <= kPageSize);
  runs_.push_back(Run{offset, static_cast<uint16_t>(bytes.size())});
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

}  // namespace vodsm::mem
