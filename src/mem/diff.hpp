// Page diffs: the unit of update propagation in all three DSM protocols.
//
// A diff records the byte ranges of one page that changed relative to its
// twin, at 4-byte word granularity (as in TreadMarks). VC_sd additionally
// *integrates* successive diffs of the same page into a single diff whose
// runs cover the union of the inputs, with later bytes taking precedence.
#pragma once

#include <vector>

#include "mem/page.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace vodsm::mem {

class Diff {
 public:
  struct Run {
    uint16_t offset = 0;  // byte offset within the page
    uint16_t length = 0;  // byte count
  };

  Diff() = default;
  explicit Diff(PageId page) : page_(page) {}

  PageId page() const { return page_; }
  bool empty() const { return runs_.empty(); }
  const std::vector<Run>& runs() const { return runs_; }
  ByteSpan data() const { return data_; }

  // Word-granular comparison of `current` against `twin` (both one page).
  static Diff create(PageId page, ByteSpan current, ByteSpan twin);

  // Reusable scan buffers for the arena variant of create() below. One
  // Scratch per owner (e.g. per-node PageStore) keeps the hot diff path
  // free of vector growth: the scan runs in capacity retained across
  // calls and the resulting Diff is sized exactly once.
  struct Scratch {
    std::vector<Run> runs;
    Bytes data;
  };

  // As create(), but scans into `scratch` (capacity retained across calls)
  // and copies the exact-size result out. Produces an identical Diff.
  static Diff create(PageId page, ByteSpan current, ByteSpan twin,
                     Scratch& scratch);

  // Overwrite the covered ranges of `page_bytes` with this diff's data.
  void apply(MutByteSpan page_bytes) const;

  // Equivalent of applying `older` then `newer` to the same base.
  static Diff integrate(const Diff& older, const Diff& newer);

  // Bytes this diff occupies in a message (runs table + data + header).
  size_t wireSize() const { return 12 + runs_.size() * 4 + data_.size(); }

  void serialize(Writer& w) const;
  static Diff deserialize(Reader& r);

  // Test/build helper: add one run with explicit bytes.
  void addRun(uint16_t offset, ByteSpan bytes);

  bool operator==(const Diff& o) const {
    if (page_ != o.page_ || runs_.size() != o.runs_.size()) return false;
    for (size_t i = 0; i < runs_.size(); ++i)
      if (runs_[i].offset != o.runs_[i].offset ||
          runs_[i].length != o.runs_[i].length)
        return false;
    return std::equal(data_.begin(), data_.end(), o.data_.begin(),
                      o.data_.end());
  }

 private:
  PageId page_ = 0;
  std::vector<Run> runs_;
  Bytes data_;
};

}  // namespace vodsm::mem
