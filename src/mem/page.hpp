// Page-granularity constants and access states.
//
// Matches the paper's platform: 4 KB virtual memory pages. Access mirrors
// mprotect protection: None faults on any access, Read faults on write
// (creating a twin), Write is fully mapped.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vodsm::mem {

constexpr size_t kPageSize = 4096;

using PageId = uint32_t;

enum class Access : uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

constexpr PageId pageOf(size_t byte_offset) {
  return static_cast<PageId>(byte_offset / kPageSize);
}

constexpr size_t pageStart(PageId p) {
  return static_cast<size_t>(p) * kPageSize;
}

}  // namespace vodsm::mem
