#include "harness/parallel_runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace vodsm::harness {

int defaultJobs() {
  if (const char* env = std::getenv("VODSM_JOBS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<int>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolveJobs(int requested) {
  if (requested == 0) return defaultJobs();
  return requested < 1 ? 1 : requested;
}

void runIndexed(int jobs, size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  const size_t workers =
      std::min(static_cast<size_t>(resolveJobs(jobs)), n);
  if (workers <= 1) {
    // Serial fallback: same submission order, same thread, zero overhead.
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }

  // Dynamic sharding via one shared index: no work stealing, no per-task
  // queues; a worker that draws a long cell simply draws fewer cells.
  std::atomic<size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto body = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: sibling cells are independent, and finishing them
        // leaves the result vector in a defined state before the rethrow.
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(body);
  body();  // the calling thread is worker 0
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vodsm::harness
