// Deterministic multi-threaded experiment driver.
//
// The paper's evaluation is a sweep of {protocol} x {procs} x {app} cells,
// and every cell is an independent, deterministic simulation: a run builds
// its own sim::Engine, network, and DSM runtimes from a RunConfig + seed
// and shares nothing with any other run. ParallelRunner exploits exactly
// that shape: it shards whole cells across host threads, each worker owning
// the full simulator stack of the cell it is executing, and collects
// results in submission order — so the output of a sweep is byte-identical
// to the serial loop it replaces, independent of thread count or
// scheduling. There is no work stealing and no shared simulation state;
// the only cross-thread traffic is one atomic cell index.
//
// Thread count: explicit argument > VODSM_JOBS env var > hardware
// concurrency. jobs <= 1 degrades to a plain serial loop on the calling
// thread (the fallback path used by the determinism tests).
#pragma once

#include <functional>
#include <vector>

namespace vodsm::harness {

// Worker count from the environment: VODSM_JOBS if set and positive, else
// std::thread::hardware_concurrency(), never less than 1.
int defaultJobs();

// Resolves a requested job count: 0 means defaultJobs(); negatives clamp
// to 1 (serial).
int resolveJobs(int requested);

// Core primitive: invoke task(i) for every i in [0, n), sharded across
// `jobs` threads. Tasks must not share mutable state (each simulator cell
// owns its engine). The first exception thrown by any task is rethrown on
// the calling thread after all workers join.
void runIndexed(int jobs, size_t n, const std::function<void(size_t)>& task);

class ParallelRunner {
 public:
  explicit ParallelRunner(int jobs = 0) : jobs_(resolveJobs(jobs)) {}

  int jobs() const { return jobs_; }

  // Runs every thunk and returns the results in submission order.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& tasks) const {
    std::vector<R> out(tasks.size());
    runIndexed(jobs_, tasks.size(), [&](size_t i) { out[i] = tasks[i](); });
    return out;
  }

  void forEach(size_t n, const std::function<void(size_t)>& task) const {
    runIndexed(jobs_, n, task);
  }

 private:
  int jobs_;
};

// One-shot convenience wrapper.
template <typename R>
std::vector<R> runAll(const std::vector<std::function<R()>>& tasks,
                      int jobs = 0) {
  return ParallelRunner(jobs).run(tasks);
}

}  // namespace vodsm::harness
