// Experiment harness: shared configuration and result records used by the
// application runners, the test suite, and the table benchmarks.
#pragma once

#include <string>

#include "dsm/types.hpp"
#include "net/faults.hpp"
#include "net/stats.hpp"
#include "net/types.hpp"
#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/diagnose.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace vodsm::harness {

struct RunConfig {
  dsm::Protocol protocol = dsm::Protocol::kVcSd;
  int nprocs = 16;
  net::NetConfig net;
  dsm::DsmCosts costs;
  // Barrier algorithm / view-home sharding (defaults reproduce the paper's
  // centralized protocol byte-for-byte); the topology rides in `net`.
  dsm::ProtoOptions proto;
  uint64_t seed = 42;
  // Engine worker threads for the conservative parallel schedule: 1 runs
  // the serial reference, N > 1 runs N workers with bit-identical results,
  // 0 defers to VODSM_SIM_THREADS (default serial). Host-side only — never
  // changes what the run computes.
  int sim_threads = 0;
  // Caller-owned recorder; null disables tracing (see vopp::ClusterOptions).
  obs::TraceRecorder* trace = nullptr;
  // Caller-owned counter/gauge registry; null disables metrics. Like the
  // recorder, metering never changes what the run computes.
  obs::MetricsRegistry* metrics = nullptr;
  // Trace analyses to fold into the result (require `trace`). Pure
  // post-processing: they never change what the run computes.
  bool critpath = false;
  bool pageheat = false;
  // Runs the diagnosis pass catalog over the trace (requires `trace`;
  // consumes the metrics summary too when metered). Post-processing like
  // the other analyses: a diagnosed run is bit-identical to an undiagnosed
  // one, and the report itself is deterministic across --jobs/--sim-threads.
  bool diagnose = false;
  // Builds a persisted run profile (obs::RunProfile) from the trace and
  // metrics (requires `trace`). Pure post-processing like the analyses
  // above: a profiled run is bit-identical to an unprofiled one.
  bool profile = false;
  // Caller-owned fault plan (net::FaultPlan); null or empty disables
  // injection and keeps the run byte-identical to a plan-free build.
  const net::FaultPlan* faults = nullptr;
};

// Everything the paper's statistics tables report about one run.
struct RunResult {
  double seconds = 0;
  dsm::DsmStats dsm;
  net::NetStats net;
  // Per-node time buckets folded from the trace; empty unless the run was
  // traced (RunConfig::trace). Kept by value so it outlives the recorder.
  obs::Breakdown breakdown;
  // Critical-path and per-page contention analyses; empty unless requested
  // via RunConfig::critpath / pageheat on a traced run.
  obs::CriticalPath critpath;
  obs::PageHeat pageheat;
  // Ranked findings from the diagnosis passes; empty unless requested via
  // RunConfig::diagnose on a traced run.
  obs::Diagnosis diagnosis;
  // Persisted run profile; empty unless requested via RunConfig::profile on
  // a traced run. The caller labels it before writing.
  obs::RunProfile profile;
  // Counter/gauge aggregates (peaks, finals, means); empty unless the run
  // was metered via RunConfig::metrics. The MPI reference runner does not
  // meter, so its results leave this empty.
  obs::MetricsSummary metrics;
  // Host-side observability of the engine's parallel schedule: the worker
  // count the run used, and — when a serial reference rerun was timed —
  // host-time serial/parallel ratio (0 = not measured). Never simulated
  // output; the bench gate treats these as host-timing/ignored keys.
  int sim_threads = 1;
  double self_speedup_vs_serial = 0;
  // Analytic screen (bench --screen=model.json): this result was NOT
  // simulated — `seconds` is the fitted model's prediction and every other
  // field is empty. The bench JSON marks such cells "screened" and omits
  // all simulated fields so they can never contaminate a baseline.
  bool screened = false;
  std::string screen_note;  // dominant model term behind the prediction

  double dataMBytes() const {
    return static_cast<double>(net.payload_bytes) / 1e6;
  }
  double dataGBytes() const {
    return static_cast<double>(net.payload_bytes) / 1e9;
  }
  // Barrier *episodes* (program-level barrier count, as the paper reports).
  uint64_t barrierEpisodes() const { return dsm.barriers; }
};

// Copies the standard result fields out of a finished cluster, honoring the
// analysis toggles. Templated so this header does not depend on the vopp
// layer; any type with seconds()/dsmStats()/netStats()/breakdown()/
// criticalPath()/pageHeat() works.
template <typename ClusterT>
void collectResult(const ClusterT& cluster, const RunConfig& cfg,
                   RunResult& out) {
  out.seconds = cluster.seconds();
  out.dsm = cluster.dsmStats();
  out.net = cluster.netStats();
  if (cfg.trace) {
    out.breakdown = cluster.breakdown();
    if (cfg.critpath) out.critpath = cluster.criticalPath();
    if (cfg.pageheat) out.pageheat = cluster.pageHeat();
    if (cfg.diagnose) out.diagnosis = cluster.diagnosis();
    if (cfg.profile) out.profile = cluster.runProfile();
  }
  if (cfg.metrics) out.metrics = cluster.metricsSummary();
}

}  // namespace vodsm::harness
