// Experiment harness: shared configuration and result records used by the
// application runners, the test suite, and the table benchmarks.
#pragma once

#include <string>

#include "dsm/types.hpp"
#include "net/stats.hpp"
#include "net/types.hpp"
#include "obs/breakdown.hpp"
#include "obs/trace.hpp"

namespace vodsm::harness {

struct RunConfig {
  dsm::Protocol protocol = dsm::Protocol::kVcSd;
  int nprocs = 16;
  net::NetConfig net;
  dsm::DsmCosts costs;
  uint64_t seed = 42;
  // Caller-owned recorder; null disables tracing (see vopp::ClusterOptions).
  obs::TraceRecorder* trace = nullptr;
};

// Everything the paper's statistics tables report about one run.
struct RunResult {
  double seconds = 0;
  dsm::DsmStats dsm;
  net::NetStats net;
  // Per-node time buckets folded from the trace; empty unless the run was
  // traced (RunConfig::trace). Kept by value so it outlives the recorder.
  obs::Breakdown breakdown;

  double dataMBytes() const {
    return static_cast<double>(net.payload_bytes) / 1e6;
  }
  double dataGBytes() const {
    return static_cast<double>(net.payload_bytes) / 1e9;
  }
  // Barrier *episodes* (program-level barrier count, as the paper reports).
  uint64_t barrierEpisodes() const { return dsm.barriers; }
};

}  // namespace vodsm::harness
