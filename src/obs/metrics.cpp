#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/table.hpp"

namespace vodsm::obs {

int64_t MetricsSummary::maxPeak(Metric m) const {
  int64_t best = 0;
  for (const MetricSummaryRow& r : rows)
    if (r.metric == m) best = std::max(best, r.peak);
  return best;
}

int64_t MetricsSummary::totalFinal(Metric m) const {
  int64_t total = 0;
  for (const MetricSummaryRow& r : rows)
    if (r.metric == m) total += r.final_value;
  return total;
}

double MetricsSummary::meanLinkUtilization() const {
  if (nprocs <= 0 || finish <= 0) return 0;
  const double busy =
      static_cast<double>(totalFinal(Metric::kUplinkBusyNs)) +
      static_cast<double>(totalFinal(Metric::kDownlinkBusyNs));
  return busy / (2.0 * static_cast<double>(nprocs) *
                 static_cast<double>(finish));
}

void MetricsRegistry::startSampling(sim::Engine& engine) {
  if (interval_ <= 0) return;
  engine.auxAfter(interval_, [this, &engine] { sampleTick(engine); });
}

void MetricsRegistry::sampleTick(sim::Engine& engine) {
  // On a parallel worker the snapshot is deferred: a marker entry replays
  // it at the window barrier, after every add() with an earlier key.
  if (sim::Engine::ExecContext* x = sim::Engine::execContext()) {
    journals_[x->lane].push_back(Journal{x->key, x->nextOrdinal(),
                                         engine.now(), 0, 0,
                                         Metric::kTwinBytes, true});
  } else {
    snapshot(engine.now(), /*force=*/false);
  }
  // Reschedule unconditionally: ticks are aux events, so they never keep
  // the run alive — the engine drains at exactly the event it would have
  // drained at unmetered and discards the one trailing tick left enqueued.
  engine.auxAfter(interval_, [this, &engine] { sampleTick(engine); });
}

void MetricsRegistry::onParallelStart(uint32_t nlanes) {
  journals_.assign(nlanes, {});
}

void MetricsRegistry::onWindow(const sim::EventKey* limit) {
  merge_.clear();
  for (std::vector<Journal>& lane : journals_) {
    merge_.insert(merge_.end(), lane.begin(), lane.end());
    lane.clear();
  }
  std::sort(merge_.begin(), merge_.end(),
            [](const Journal& a, const Journal& b) {
              if (a.key < b.key) return true;
              if (b.key < a.key) return false;
              return a.ord < b.ord;
            });
  for (const Journal& j : merge_) {
    if (limit && *limit < j.key) continue;  // trailing aux past the last
                                            // real event; serial never ran it
    if (j.marker)
      snapshot(j.ts, /*force=*/false);
    else
      applyAdd(j.node, j.metric, j.delta, j.ts);
  }
}

void MetricsRegistry::onParallelEnd() { journals_.clear(); }

void MetricsRegistry::snapshot(sim::Time ts, bool force) {
  for (uint32_t node = 0; node < nodes_.size(); ++node) {
    for (size_t m = 0; m < kMetricCount; ++m) {
      Series& s = nodes_[node][m];
      if (!s.touched) continue;
      if (!force && s.sampled_once && s.value == s.last_sampled) continue;
      samples_.push_back(
          MetricSample{ts, node, static_cast<Metric>(m), s.value});
      s.last_sampled = s.value;
      s.sampled_once = true;
    }
  }
}

void MetricsRegistry::closeRun(int nprocs, sim::Time finish) {
  if (closed_) return;
  closed_ = true;
  nprocs_ = nprocs;
  // Lossy runs can carry metric updates past the last program clock (dead
  // retransmission timers fire after every node finished); never truncate
  // an integral below its own last update.
  for (const auto& node : nodes_)
    for (const Series& s : node) finish = std::max(finish, s.last_ts);
  finish_ = finish;
  for (auto& node : nodes_) {
    for (Series& s : node) {
      if (!s.touched || finish <= s.last_ts) continue;
      s.area += static_cast<__int128>(s.value) *
                static_cast<__int128>(finish - s.last_ts);
      s.last_ts = finish;
    }
  }
  if (interval_ > 0) snapshot(finish, /*force=*/true);
}

MetricsSummary MetricsRegistry::summary() const {
  MetricsSummary out;
  out.on = true;
  out.nprocs = nprocs_;
  out.finish = finish_;
  for (size_t m = 0; m < kMetricCount; ++m) {
    for (uint32_t node = 0; node < nodes_.size(); ++node) {
      const Series& s = nodes_[node][m];
      if (!s.touched) continue;
      MetricSummaryRow row;
      row.node = node;
      row.metric = static_cast<Metric>(m);
      row.peak = s.peak;
      row.peak_ts = s.peak_ts;
      row.final_value = s.value;
      row.mean = finish_ > 0 ? static_cast<double>(s.area) /
                                   static_cast<double>(finish_)
                             : 0;
      out.rows.push_back(row);
    }
  }
  return out;
}

void writeMetricsCsv(std::ostream& os, const MetricsRegistry& reg) {
  os << "t_seconds,node,metric,value\n";
  char buf[128];
  for (const MetricSample& s : reg.samples()) {
    std::snprintf(buf, sizeof(buf), "%.9f,%" PRIu32 ",%s,%" PRId64 "\n",
                  sim::toSeconds(s.ts), s.node, metricInfo(s.metric).name,
                  s.value);
    os << buf;
  }
}

void printMemstats(std::ostream& os, const MetricsSummary& s,
                   const std::string& title) {
  os << "\n" << title << "\n";
  TextTable t;
  t.header({"metric", "unit", "peak", "peak node", "peak t (ms)", "final sum",
            "mean"});
  char buf[64];
  for (size_t m = 0; m < kMetricCount; ++m) {
    const Metric metric = static_cast<Metric>(m);
    // Find the node holding the high-water mark; skip untouched metrics.
    const MetricSummaryRow* peak_row = nullptr;
    double mean_sum = 0;
    for (const MetricSummaryRow& r : s.rows) {
      if (r.metric != metric) continue;
      if (!peak_row || r.peak > peak_row->peak) peak_row = &r;
      mean_sum += r.mean;
    }
    if (!peak_row) continue;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  sim::toSeconds(peak_row->peak_ts) * 1e3);
    t.rowv(metricInfo(metric).name, metricInfo(metric).unit, peak_row->peak,
           static_cast<uint64_t>(peak_row->node), std::string(buf),
           s.totalFinal(metric), mean_sum);
  }
  t.print(os);
  std::snprintf(buf, sizeof(buf), "%.4f", s.meanLinkUtilization() * 100.0);
  os << "mean link utilization: " << buf << "% over "
     << s.nprocs << " links, " << sim::toSeconds(s.finish) << " s\n";
}

}  // namespace vodsm::obs
