#include "obs/profile.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/graph.hpp"
#include "support/check.hpp"
#include "support/json_writer.hpp"

namespace vodsm::obs {
namespace {

struct Arrival {
  uint32_t node = 0;
  sim::Time begin = 0;
  sim::Time end = 0;
};

// Groups barrier waits into episodes exactly like passes/imbalance.cpp: the
// j-th wait of a node on barrier b belongs to episode (b, j).
std::vector<ProfileEpisode> foldEpisodes(const EventGraph& g,
                                         uint64_t* total) {
  std::map<uint64_t, std::vector<std::vector<Arrival>>> episodes;
  for (uint32_t n = 0; n < g.nodes.size(); ++n) {
    std::map<uint64_t, size_t> seen;
    for (const Wait& w : g.nodes[n].waits) {
      if (w.cat != Cat::kBarrierWait) continue;
      const size_t j = seen[w.id]++;
      auto& eps = episodes[w.id];
      if (eps.size() <= j) eps.resize(j + 1);
      eps[j].push_back({n, w.begin, w.end});
    }
  }

  std::vector<ProfileEpisode> out;
  *total = 0;
  for (const auto& [barrier, eps] : episodes) {
    for (size_t j = 0; j < eps.size(); ++j) {
      std::vector<Arrival> a = eps[j];
      if (a.size() < 2) continue;
      ++*total;
      if (out.size() >= kMaxProfileEpisodes) continue;
      std::sort(a.begin(), a.end(), [](const Arrival& x, const Arrival& y) {
        if (x.begin != y.begin) return x.begin < y.begin;
        return x.node < y.node;
      });
      ProfileEpisode e;
      e.barrier = barrier;
      e.episode = static_cast<uint32_t>(j);
      e.slow_node = a.back().node;
      e.first = a.front().begin;
      e.second = a[a.size() - 2].begin;
      e.last = a.back().begin;
      e.release = 0;
      for (const Arrival& ar : a) e.release = std::max(e.release, ar.end);
      out.push_back(e);
    }
  }
  return out;
}

std::vector<PageHeatRow> hottestPages(const PageHeat& heat, uint64_t* total) {
  *total = heat.rows.size();
  std::vector<PageHeatRow> rows = heat.rows;
  if (rows.size() > kMaxProfilePages) {
    std::sort(rows.begin(), rows.end(),
              [](const PageHeatRow& x, const PageHeatRow& y) {
                if (x.fault_time != y.fault_time)
                  return x.fault_time > y.fault_time;
                if (x.faults != y.faults) return x.faults > y.faults;
                return x.page < y.page;
              });
    rows.resize(kMaxProfilePages);
    std::sort(rows.begin(), rows.end(),
              [](const PageHeatRow& x, const PageHeatRow& y) {
                return x.page < y.page;
              });
  }
  return rows;
}

std::vector<ProfileMetricRow> foldMetrics(const MetricsSummary& s) {
  // Summary rows are sorted by (metric, node), so one linear scan folds each
  // touched metric into a single row in enum order.
  std::vector<ProfileMetricRow> out;
  for (const MetricSummaryRow& r : s.rows) {
    if (out.empty() || out.back().metric != r.metric) {
      ProfileMetricRow row;
      row.metric = r.metric;
      out.push_back(row);
    }
    ProfileMetricRow& row = out.back();
    row.peak = std::max(row.peak, r.peak);
    row.final_total += r.final_value;
    row.mean_total += r.mean;
  }
  return out;
}

long long ll(sim::Time t) { return static_cast<long long>(t); }
long long ll(uint64_t v) { return static_cast<long long>(v); }

int64_t asInt(const support::Json& j) {
  return static_cast<int64_t>(j.asNumber());
}
uint64_t asUint(const support::Json& j) {
  return static_cast<uint64_t>(j.asNumber());
}

PathCat pathCatFromName(const std::string& name) {
  for (int c = 0; c < kPathCatCount; ++c)
    if (name == kPathCatName[c]) return static_cast<PathCat>(c);
  throw Error("unknown critical-path category '" + name + "' in profile");
}

Metric metricFromName(const std::string& name) {
  for (size_t m = 0; m < kMetricCount; ++m)
    if (name == kMetricInfo[m].name) return static_cast<Metric>(m);
  throw Error("unknown metric '" + name + "' in profile");
}

}  // namespace

RunProfile buildRunProfile(const TraceRecorder& trace, int nprocs,
                           sim::Time finish, const MetricsSummary* metrics) {
  RunProfile p;
  p.on = true;
  p.nprocs = nprocs;
  p.makespan = finish;

  const EventGraph graph = buildEventGraph(trace, nprocs);
  const Breakdown bd = foldBreakdown(trace, nprocs, finish);
  p.buckets = bd.nodes;

  const CriticalPath cp = computeCriticalPath(graph, finish);
  for (int c = 0; c < kPathCatCount; ++c) p.critpath[c] = cp.by_cat[c];
  p.slices = cp.slices;
  if (p.slices.size() > kMaxProfileSlices) p.slices.resize(kMaxProfileSlices);

  p.episodes = foldEpisodes(graph, &p.episodes_total);
  p.pages = hottestPages(foldPageHeat(trace), &p.pages_total);
  if (metrics && metrics->enabled()) p.metrics = foldMetrics(*metrics);
  return p;
}

void writeRunProfileJson(std::ostream& os, const RunProfile& p) {
  support::JsonWriter w(os);
  w.beginObject();
  w.key("profile").value("vodsm_run_profile");
  w.key("version").value(1);
  w.key("label").value(p.label);
  w.key("nprocs").value(p.nprocs);
  w.key("makespan_ns").value(ll(p.makespan));

  w.key("buckets_ns").beginArray();
  for (const BucketSet& b : p.buckets) {
    w.beginObject();
    w.key("compute").value(ll(b.compute));
    w.key("barrier_wait").value(ll(b.barrier_wait));
    w.key("acquire_wait").value(ll(b.acquire_wait));
    w.key("fault_diff").value(ll(b.fault_diff));
    w.key("idle").value(ll(b.idle));
    w.endObject();
  }
  w.endArray();

  w.key("critpath_ns").beginObject();
  for (int c = 0; c < kPathCatCount; ++c)
    w.key(kPathCatName[c]).value(ll(p.critpath[c]));
  w.endObject();

  w.key("critpath_slices").beginArray();
  for (const PathSlice& s : p.slices) {
    w.beginObject();
    w.key("node").value(static_cast<int>(s.node));
    w.key("cat").value(kPathCatName[static_cast<int>(s.cat)]);
    w.key("id").value(ll(s.id));
    w.key("ns").value(ll(s.nanos));
    w.endObject();
  }
  w.endArray();

  w.key("episodes_total").value(ll(p.episodes_total));
  w.key("episodes").beginArray();
  for (const ProfileEpisode& e : p.episodes) {
    w.beginObject();
    w.key("barrier").value(ll(e.barrier));
    w.key("episode").value(static_cast<int>(e.episode));
    w.key("slow_node").value(static_cast<int>(e.slow_node));
    w.key("first_ns").value(ll(e.first));
    w.key("second_ns").value(ll(e.second));
    w.key("last_ns").value(ll(e.last));
    w.key("release_ns").value(ll(e.release));
    w.endObject();
  }
  w.endArray();

  w.key("pages_total").value(ll(p.pages_total));
  w.key("pages").beginArray();
  for (const PageHeatRow& r : p.pages) {
    w.beginObject();
    w.key("page").value(ll(r.page));
    w.key("faults").value(ll(r.faults));
    w.key("fault_time_ns").value(ll(r.fault_time));
    w.key("twins").value(ll(r.twins));
    w.key("diff_applies").value(ll(r.diff_applies));
    w.key("diff_bytes").value(ll(r.diff_bytes));
    w.key("notices").value(ll(r.notices));
    w.key("sharers").value(static_cast<int>(r.sharers));
    w.key("writers").value(static_cast<int>(r.writers));
    w.endObject();
  }
  w.endArray();

  w.key("metrics").beginArray();
  for (const ProfileMetricRow& m : p.metrics) {
    w.beginObject();
    w.key("metric").value(metricInfo(m.metric).name);
    w.key("peak").value(ll(m.peak));
    w.key("final").value(ll(m.final_total));
    w.key("mean").value(m.mean_total, "%.17g");
    w.endObject();
  }
  w.endArray();

  if (p.has_net) {
    w.key("net").beginObject();
    w.key("messages").value(ll(p.net_messages));
    w.key("payload_bytes").value(ll(p.net_payload_bytes));
    w.key("retransmissions").value(ll(p.net_retransmissions));
    w.key("acks").value(ll(p.net_acks));
    w.key("ack_drops").value(ll(p.net_ack_drops));
    w.key("frames_sent").value(ll(p.net_frames_sent));
    w.key("frames_delivered").value(ll(p.net_frames_delivered));
    w.key("classes").beginObject();
    for (int c = 0; c < kProfileClassCount; ++c) {
      const ProfileClass& k = p.classes[c];
      w.key(kProfileClassName[c]).beginObject();
      w.key("messages").value(ll(k.messages));
      w.key("payload_bytes").value(ll(k.payload_bytes));
      w.key("retransmissions").value(ll(k.retransmissions));
      w.key("drops").value(ll(k.drops));
      w.endObject();
    }
    w.endObject();
    w.endObject();
  }
  w.endObject();
  os << "\n";
}

RunProfile loadRunProfile(const support::Json& doc) {
  VODSM_CHECK_MSG(doc.isObject() &&
                      doc.at("profile").asString() == "vodsm_run_profile",
                  "not a vodsm run profile document");
  VODSM_CHECK_MSG(asInt(doc.at("version")) == 1,
                  "unsupported run profile version");

  RunProfile p;
  p.on = true;
  p.label = doc.at("label").asString();
  p.nprocs = static_cast<int>(asInt(doc.at("nprocs")));
  p.makespan = asInt(doc.at("makespan_ns"));

  for (const support::Json& j : doc.at("buckets_ns").items()) {
    BucketSet b;
    b.compute = asInt(j.at("compute"));
    b.barrier_wait = asInt(j.at("barrier_wait"));
    b.acquire_wait = asInt(j.at("acquire_wait"));
    b.fault_diff = asInt(j.at("fault_diff"));
    b.idle = asInt(j.at("idle"));
    p.buckets.push_back(b);
  }

  for (const auto& [key, val] : doc.at("critpath_ns").members())
    p.critpath[static_cast<int>(pathCatFromName(key))] = asInt(val);

  for (const support::Json& j : doc.at("critpath_slices").items()) {
    PathSlice s;
    s.node = static_cast<uint32_t>(asUint(j.at("node")));
    s.cat = pathCatFromName(j.at("cat").asString());
    s.id = asUint(j.at("id"));
    s.nanos = asInt(j.at("ns"));
    p.slices.push_back(s);
  }

  p.episodes_total = asUint(doc.at("episodes_total"));
  for (const support::Json& j : doc.at("episodes").items()) {
    ProfileEpisode e;
    e.barrier = asUint(j.at("barrier"));
    e.episode = static_cast<uint32_t>(asUint(j.at("episode")));
    e.slow_node = static_cast<uint32_t>(asUint(j.at("slow_node")));
    e.first = asInt(j.at("first_ns"));
    e.second = asInt(j.at("second_ns"));
    e.last = asInt(j.at("last_ns"));
    e.release = asInt(j.at("release_ns"));
    p.episodes.push_back(e);
  }

  p.pages_total = asUint(doc.at("pages_total"));
  for (const support::Json& j : doc.at("pages").items()) {
    PageHeatRow r;
    r.page = asUint(j.at("page"));
    r.faults = asUint(j.at("faults"));
    r.fault_time = asInt(j.at("fault_time_ns"));
    r.twins = asUint(j.at("twins"));
    r.diff_applies = asUint(j.at("diff_applies"));
    r.diff_bytes = asUint(j.at("diff_bytes"));
    r.notices = asUint(j.at("notices"));
    r.sharers = static_cast<uint32_t>(asUint(j.at("sharers")));
    r.writers = static_cast<uint32_t>(asUint(j.at("writers")));
    p.pages.push_back(r);
  }

  for (const support::Json& j : doc.at("metrics").items()) {
    ProfileMetricRow m;
    m.metric = metricFromName(j.at("metric").asString());
    m.peak = asInt(j.at("peak"));
    m.final_total = asInt(j.at("final"));
    m.mean_total = j.at("mean").asNumber();
    p.metrics.push_back(m);
  }

  if (const support::Json* net = doc.find("net")) {
    p.has_net = true;
    p.net_messages = asUint(net->at("messages"));
    p.net_payload_bytes = asUint(net->at("payload_bytes"));
    p.net_retransmissions = asUint(net->at("retransmissions"));
    p.net_acks = asUint(net->at("acks"));
    p.net_ack_drops = asUint(net->at("ack_drops"));
    p.net_frames_sent = asUint(net->at("frames_sent"));
    p.net_frames_delivered = asUint(net->at("frames_delivered"));
    const support::Json& classes = net->at("classes");
    for (int c = 0; c < kProfileClassCount; ++c) {
      const support::Json& k = classes.at(kProfileClassName[c]);
      p.classes[c].messages = asUint(k.at("messages"));
      p.classes[c].payload_bytes = asUint(k.at("payload_bytes"));
      p.classes[c].retransmissions = asUint(k.at("retransmissions"));
      p.classes[c].drops = asUint(k.at("drops"));
    }
  }
  return p;
}

RunProfile loadRunProfileFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VODSM_CHECK_MSG(in.good(), "cannot open profile file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return loadRunProfile(support::Json::parse(text.str()));
}

}  // namespace vodsm::obs
