// Time-breakdown accounting over a recorded trace.
//
// Folds the spans of a TraceRecorder into five per-node buckets that
// partition the run's simulated time exactly:
//
//   compute      — local work the program charged (everything not below)
//   barrier_wait — inside barrier_wait spans (arrive sent -> released)
//   acquire_wait — inside acquire_wait spans (request sent -> granted)
//   fault_diff   — page-fault service (incl. remote diff fetch) plus
//                  release-time diff creation
//   idle         — node finished before the slowest node; dead time until
//                  the run's finish timestamp
//
// The span categories above never overlap on one node (faults happen
// outside synchronization waits, diff creation precedes the release/arrive
// message), so the buckets are disjoint and, with compute defined as the
// remainder of the node's active time, they sum to the run's finish time on
// every node — an invariant the test suite asserts.
#pragma once

#include <ostream>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

struct BucketSet {
  sim::Time compute = 0;
  sim::Time barrier_wait = 0;
  sim::Time acquire_wait = 0;
  sim::Time fault_diff = 0;
  sim::Time idle = 0;

  sim::Time total() const {
    return compute + barrier_wait + acquire_wait + fault_diff + idle;
  }
  void add(const BucketSet& o) {
    compute += o.compute;
    barrier_wait += o.barrier_wait;
    acquire_wait += o.acquire_wait;
    fault_diff += o.fault_diff;
    idle += o.idle;
  }
};

struct Breakdown {
  sim::Time run_time = 0;          // finish time; per-node bucket sum
  std::vector<BucketSet> nodes;    // index = node id
  BucketSet aggregate;             // sum over nodes

  bool enabled() const { return !nodes.empty(); }
};

// Folds `trace` into per-node buckets. `finish` is the run's finish time
// (the slowest node's clock); nodes missing a program-end span (e.g. the
// engine drained early) are treated as active until `finish`.
Breakdown foldBreakdown(const TraceRecorder& trace, int nprocs,
                        sim::Time finish);

// Renders per-node rows plus an aggregate row as a fixed-width table:
// seconds per bucket with percent-of-total.
void printBreakdown(std::ostream& os, const Breakdown& b,
                    const std::string& title);

}  // namespace vodsm::obs
