// Chrome trace-event JSON exporter for recorded traces.
//
// The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing: one
// trace process per simulated node (plus one for the engine), with "app",
// "proto" and "net" threads per node. Span events become B/E pairs, instant
// events become thread-scoped instants; the two argument words of each event
// are emitted under the names from obs::kCatInfo (page/view/lock ids,
// payload sizes). Timestamps are simulated microseconds.
#pragma once

#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vodsm::obs {

// Writes the whole trace as {"traceEvents": [...]}. Events are emitted in
// (timestamp, recording order) so viewers need no resorting; the output is
// a pure function of the event list, hence deterministic across runs.
// When a sampled metrics registry is supplied, its time series is appended
// as "C" (counter) events — one counter track per metric per node, rendered
// alongside that node's span tracks.
void writeChromeTrace(std::ostream& os, const TraceRecorder& trace,
                      const MetricsRegistry* metrics);
inline void writeChromeTrace(std::ostream& os, const TraceRecorder& trace) {
  writeChromeTrace(os, trace, nullptr);
}

}  // namespace vodsm::obs
