#include "obs/page_heat.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "support/table.hpp"

namespace vodsm::obs {

namespace {

struct Acc {
  PageHeatRow row;
  std::set<uint32_t> sharers;
  std::set<uint32_t> writers;
};

}  // namespace

PageHeat foldPageHeat(const TraceRecorder& trace) {
  // Keyed by page id; std::map keeps the output order deterministic.
  std::map<uint64_t, Acc> pages;
  // Different nodes can fault on the same page concurrently, so open fault
  // spans are matched per (page, node); a node faults one page at a time.
  std::map<std::pair<uint64_t, uint32_t>, sim::Time> open_faults;
  auto touch = [&](uint64_t page, uint32_t node) -> Acc& {
    Acc& a = pages[page];
    a.row.page = page;
    a.sharers.insert(node);
    return a;
  };

  for (const Event& e : trace.events()) {
    if (e.node == kEngineNode) continue;
    switch (e.cat) {
      case Cat::kFault: {
        Acc& a = touch(e.a0, e.node);
        if (e.phase == Phase::kBegin) {
          open_faults[{e.a0, e.node}] = e.ts;
          break;
        }
        if (e.phase != Phase::kEnd) break;
        auto it = open_faults.find({e.a0, e.node});
        if (it == open_faults.end()) break;
        a.row.faults++;
        a.row.fault_time += e.ts - it->second;
        open_faults.erase(it);
        break;
      }
      case Cat::kTwin:
        touch(e.a0, e.node).row.twins++;
        break;
      case Cat::kDiffApply: {
        Acc& a = touch(e.a0, e.node);
        a.row.diff_applies++;
        a.row.diff_bytes += e.a1;
        break;
      }
      case Cat::kNotice: {
        Acc& a = touch(e.a0, e.node);
        a.row.notices++;
        a.writers.insert(static_cast<uint32_t>(e.a1));
        break;
      }
      default:
        break;
    }
  }

  PageHeat out;
  out.rows.reserve(pages.size());
  for (auto& [page, a] : pages) {
    a.row.sharers = static_cast<uint32_t>(a.sharers.size());
    a.row.writers = static_cast<uint32_t>(a.writers.size());
    out.rows.push_back(a.row);
  }
  return out;
}

void printPageHeat(std::ostream& os, const PageHeat& heat,
                   const std::string& title, size_t max_rows) {
  os << "\n" << title << "\n";
  std::vector<const PageHeatRow*> hot;
  hot.reserve(heat.rows.size());
  for (const PageHeatRow& r : heat.rows) hot.push_back(&r);
  std::sort(hot.begin(), hot.end(),
            [](const PageHeatRow* a, const PageHeatRow* b) {
              if (a->fault_time != b->fault_time)
                return a->fault_time > b->fault_time;
              if (a->faults != b->faults) return a->faults > b->faults;
              return a->page < b->page;
            });
  TextTable t;
  t.header({"page", "faults", "fault ms", "twins", "applies", "diff KB",
            "notices", "sharers", "writers"});
  for (size_t i = 0; i < hot.size() && i < max_rows; ++i) {
    const PageHeatRow& r = *hot[i];
    std::ostringstream ms, kb;
    ms << std::fixed << std::setprecision(3)
       << sim::toSeconds(r.fault_time) * 1e3;
    kb << std::fixed << std::setprecision(1)
       << static_cast<double>(r.diff_bytes) / 1024.0;
    t.row({std::to_string(r.page), TextTable::format(r.faults), ms.str(),
           TextTable::format(r.twins), TextTable::format(r.diff_applies),
           kb.str(), TextTable::format(r.notices),
           std::to_string(r.sharers), std::to_string(r.writers)});
  }
  t.print(os);
  if (hot.size() > max_rows)
    os << "(" << hot.size() - max_rows << " cooler pages elided; CSV export "
       << "has all " << hot.size() << ")\n";
}

void writePageHeatCsv(std::ostream& os, const PageHeat& heat) {
  os << "page,faults,fault_seconds,twins,diff_applies,diff_bytes,notices,"
     << "sharers,writers\n";
  for (const PageHeatRow& r : heat.rows) {
    os << r.page << ',' << r.faults << ',' << sim::toSeconds(r.fault_time)
       << ',' << r.twins << ',' << r.diff_applies << ',' << r.diff_bytes
       << ',' << r.notices << ',' << r.sharers << ',' << r.writers << '\n';
  }
}

}  // namespace vodsm::obs
