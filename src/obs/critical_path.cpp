#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "support/table.hpp"

namespace vodsm::obs {

namespace {

// One entry of a node's merged timeline: a local service span or a wait,
// all mutually disjoint on a node, sorted by begin (hence also by end).
struct Ival {
  sim::Time b = 0;
  sim::Time e = 0;
  PathCat cat = PathCat::kCompute;
  uint64_t id = 0;
};

PathCat pathCatOf(Cat c) {
  switch (c) {
    case Cat::kFault: return PathCat::kFault;
    case Cat::kDiffCreate: return PathCat::kDiffCreate;
    case Cat::kAcquireWait: return PathCat::kAcquireWait;
    case Cat::kBarrierWait: return PathCat::kBarrierWait;
    default: return PathCat::kCompute;
  }
}

}  // namespace

CriticalPath computeCriticalPath(const EventGraph& g, sim::Time finish) {
  CriticalPath cp;
  cp.makespan = finish;
  cp.by_node.assign(g.nodes.size(), 0);
  if (g.nodes.empty() || finish <= 0) return cp;

  // Merged per-node interval lists for classifying local time. Waits are
  // included: when the walk lands *inside* another node's wait (the grant
  // it sent was serviced while it was itself blocked), that time is the
  // wait's category, not compute.
  std::vector<std::vector<Ival>> merged(g.nodes.size());
  for (size_t n = 0; n < g.nodes.size(); ++n) {
    const NodeTimeline& tl = g.nodes[n];
    auto& ivs = merged[n];
    ivs.reserve(tl.spans.size() + tl.waits.size());
    for (const LocalSpan& s : tl.spans)
      ivs.push_back({s.begin, s.end, pathCatOf(s.cat), s.id});
    for (const Wait& w : tl.waits)
      ivs.push_back({w.begin, w.end, pathCatOf(w.cat), w.id});
    std::sort(ivs.begin(), ivs.end(), [](const Ival& a, const Ival& b) {
      return a.b != b.b ? a.b < b.b : a.e < b.e;
    });
  }

  std::map<std::tuple<uint32_t, uint8_t, uint64_t>, sim::Time> acc;
  auto credit = [&](uint32_t node, PathCat c, uint64_t id, sim::Time nanos) {
    if (nanos <= 0) return;
    acc[{node, static_cast<uint8_t>(c), id}] += nanos;
    cp.by_cat[static_cast<int>(c)] += nanos;
    cp.by_node[node] += nanos;
  };

  // Attributes the half-open interval (lo, hi] of `node`'s timeline:
  // pieces inside merged intervals get their category, gaps are compute.
  auto local = [&](uint32_t node, sim::Time lo, sim::Time hi) {
    if (lo >= hi) return;
    const auto& ivs = merged[node];
    sim::Time cursor = lo;
    auto it = std::partition_point(ivs.begin(), ivs.end(),
                                   [&](const Ival& v) { return v.e <= lo; });
    for (; it != ivs.end() && it->b < hi; ++it) {
      const sim::Time b = std::max(lo, it->b);
      const sim::Time e = std::min(hi, it->e);
      if (b > cursor) credit(node, PathCat::kCompute, 0, b - cursor);
      if (e > b) credit(node, it->cat, it->id, e - b);
      if (e > cursor) cursor = e;
    }
    if (hi > cursor) credit(node, PathCat::kCompute, 0, hi - cursor);
  };

  // Start on the node whose program end owns the finish time (ties break
  // toward the lowest id; nodes without a program end count as `finish`).
  uint32_t cur = 0;
  sim::Time best_end = -1;
  for (uint32_t n = 0; n < g.nodes.size(); ++n) {
    const sim::Time pe =
        g.nodes[n].program_end >= 0 ? g.nodes[n].program_end : finish;
    if (pe > best_end) {
      best_end = pe;
      cur = n;
    }
  }

  // Backward walk. Every iteration strictly decreases `t` and covers the
  // skipped-over interval exactly once, so the credits telescope to
  // [0, finish].
  sim::Time t = finish;
  while (t > 0) {
    const NodeTimeline& tl = g.nodes[cur];
    // Latest nonzero-length wait ending at or before t.
    auto it = std::partition_point(tl.waits.begin(), tl.waits.end(),
                                   [&](const Wait& w) { return w.end <= t; });
    const Wait* w = nullptr;
    while (it != tl.waits.begin()) {
      const Wait& cand = *std::prev(it);
      if (cand.end > cand.begin) {
        w = &cand;
        break;
      }
      --it;
    }
    if (!w) {
      local(cur, 0, t);
      break;
    }
    local(cur, w->end, t);
    if (w->trigger < 0 || w->trigger_ts >= w->end || w->trigger_ts < 0) {
      // No usable wakeup edge: the wait itself is the critical segment.
      credit(cur, pathCatOf(w->cat), w->id, w->end - w->begin);
      t = w->begin;
      continue;
    }
    // The tail of the wait — from the producer's grant/fold to the wait's
    // end — is the transfer latency the waiter was truly blocked on; before
    // that instant the producer was the bottleneck, so jump there.
    credit(cur,
           w->cat == Cat::kAcquireWait ? PathCat::kGrantTransfer
                                       : PathCat::kBarrierRelease,
           w->id, w->end - w->trigger_ts);
    cp.hops++;
    cur = w->trigger_node;
    t = w->trigger_ts;
  }

  cp.slices.reserve(acc.size());
  for (const auto& [key, nanos] : acc)
    cp.slices.push_back({std::get<0>(key),
                         static_cast<PathCat>(std::get<1>(key)),
                         std::get<2>(key), nanos});
  std::sort(cp.slices.begin(), cp.slices.end(),
            [](const PathSlice& a, const PathSlice& b) {
              if (a.nanos != b.nanos) return a.nanos > b.nanos;
              if (a.node != b.node) return a.node < b.node;
              if (a.cat != b.cat) return a.cat < b.cat;
              return a.id < b.id;
            });
  return cp;
}

CriticalPath computeCriticalPath(const TraceRecorder& trace, int nprocs,
                                 sim::Time finish) {
  return computeCriticalPath(buildEventGraph(trace, nprocs), finish);
}

namespace {

std::string idLabel(PathCat c, uint64_t id) {
  switch (c) {
    case PathCat::kFault: return "page " + std::to_string(id);
    case PathCat::kAcquireWait:
    case PathCat::kGrantTransfer: return "id " + std::to_string(id);
    case PathCat::kBarrierWait:
    case PathCat::kBarrierRelease: return "barrier " + std::to_string(id);
    default: return "-";
  }
}

std::string fmtSecs(sim::Time t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << sim::toSeconds(t);
  return os.str();
}

std::string pct(sim::Time part, sim::Time whole) {
  double p = whole > 0 ? 100.0 * static_cast<double>(part) /
                             static_cast<double>(whole)
                       : 0.0;
  return TextTable::format(p) + "%";
}

}  // namespace

void printCriticalPath(std::ostream& os, const CriticalPath& cp,
                       const std::string& title, size_t max_slices) {
  os << "\n" << title << "\n";
  os << "makespan " << fmtSecs(cp.makespan)
     << " s, " << cp.hops << " cross-node hops\n";
  TextTable cats;
  cats.header({"category", "seconds", "share"});
  for (int c = 0; c < kPathCatCount; ++c) {
    if (cp.by_cat[c] == 0) continue;
    cats.row({kPathCatName[c],
              fmtSecs(cp.by_cat[c]),
              pct(cp.by_cat[c], cp.makespan)});
  }
  cats.print(os);

  TextTable top;
  top.header({"node", "category", "id", "seconds", "share"});
  for (size_t i = 0; i < cp.slices.size() && i < max_slices; ++i) {
    const PathSlice& s = cp.slices[i];
    top.row({std::to_string(s.node), kPathCatName[static_cast<int>(s.cat)],
             idLabel(s.cat, s.id),
             fmtSecs(s.nanos),
             pct(s.nanos, cp.makespan)});
  }
  os << "top attributions:\n";
  top.print(os);
}

}  // namespace vodsm::obs
