// Per-node event tracing on the simulated clock.
//
// A TraceRecorder collects timestamped spans (begin/end pairs) and instant
// events from every layer of a run: node programs (app track), the DSM
// protocol engines (proto track), and the transport/network (net track).
// Design constraints, in order:
//
//  * Observation must not perturb the experiment. Events carry only
//    simulated timestamps that the run already computed (node clocks,
//    message arrival times); recording never charges simulated time, so a
//    traced run is bit-identical to an untraced one.
//  * Near-zero overhead when disabled. Every instrumentation site guards on
//    a runtime-checked recorder pointer (`if (auto* t = ctx.trace) ...`);
//    when the pointer is null the cost is one predictable branch.
//  * No formatting on the hot path. An Event is a 40-byte POD — category
//    and phase enums, two opaque argument words, and a wire correlation id;
//    names and argument labels are resolved from static tables only at
//    export time.
//
// Consumers: obs/perfetto.hpp renders the event list as Chrome trace-event
// JSON (one process per node, one thread per track); obs/breakdown.hpp
// folds the spans into per-node time buckets; obs/graph.hpp reconstructs
// the run DAG (send->deliver via correlation ids, grant/fold wakeup edges)
// for obs/critical_path.hpp; obs/page_heat.hpp folds page-indexed instants
// into a contention table.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

// One trace "thread" per node. App is what the program called, proto is
// what the DSM runtime did about it, net is what crossed the wire.
enum class Track : uint8_t { kApp = 0, kProto = 1, kNet = 2 };
inline constexpr int kTrackCount = 3;

// Event categories. Span categories come first; everything from kTwin on
// is only ever recorded as an instant.
enum class Cat : uint8_t {
  // app track (spans)
  kProgram = 0,    // whole node program, spawn -> finish
  kAcquireView,    // a0 = view, a1 = readonly
  kReleaseView,    // a0 = view, a1 = readonly
  kAcquireLock,    // a0 = lock
  kBarrier,        // a0 = barrier
  // proto track (spans)
  kAcquireWait,    // a0 = lock/view id — request sent -> grant incorporated
  kBarrierWait,    // a0 = barrier — arrive sent -> release incorporated
  kFault,          // a0 = page — fault service incl. diff fetch + twin
  kDiffCreate,     // a0 = page count, a1 = diff bytes — release/interval close
  // proto track (instants)
  kTwin,           // a0 = page
  kDiffApply,      // a0 = page, a1 = diff bytes
  kNotice,         // a0 = page, a1 = writer — write notice recorded
  kGrant,          // a0 = lock/view id, a1 = requester (manager side)
  kBarrFold,       // a0 = barrier, a1 = notices merged (manager side)
  // net track (instants)
  kSend,           // a0 = message type, a1 = payload bytes (corr set)
  kDeliver,        // a0 = frame kind, a1 = frame bytes (corr set)
  kRetransmit,     // a0 = message type, a1 = payload bytes (corr set)
  kDrop,           // a0 = sender, a1 = frame bytes (corr carries frame kind)
  kFaultInject,    // a0 = net::FaultKind, a1 = frame bytes (corr set)
  // engine pseudo-node (span)
  kEngineRun,      // a0 = events processed (on end)
  kCatCount,
};

enum class Phase : uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

// Pseudo-node id for events that belong to the simulation itself rather
// than to one simulated node (engine lifecycle).
inline constexpr uint32_t kEngineNode = UINT32_MAX;

// Wire correlation id: a nonzero token shared by every net-track event that
// concerns the same transport frame (send, its retransmissions, its drops,
// its delivery), so graph analysis can match send->deliver edges. The id is
// *derived*, never carried on the wire: both sides compute it from the frame
// header they already have — the frame kind, the node that owns the sequence
// number (the original requester for replies and acks, the sender
// otherwise), and the per-owner sequence number. This keeps frame sizes, and
// therefore every simulated transmission time, identical to untraced runs.
inline constexpr uint64_t kNoCorr = 0;
inline constexpr uint64_t corrId(uint8_t frame_kind, uint32_t seq_owner,
                                 uint64_t seq) {
  // kind+1 in the top byte keeps the id nonzero; 40 bits of sequence is
  // ~10^12 messages per owner, far beyond any run.
  return (static_cast<uint64_t>(frame_kind + 1) << 56) |
         (static_cast<uint64_t>(seq_owner) << 40) |
         (seq & 0xFF'FFFF'FFFFull);
}
inline constexpr uint8_t corrKind(uint64_t corr) {
  return static_cast<uint8_t>((corr >> 56) - 1);
}
inline constexpr uint32_t corrOwner(uint64_t corr) {
  return static_cast<uint32_t>((corr >> 40) & 0xFFFF);
}
inline constexpr uint64_t corrSeq(uint64_t corr) {
  return corr & 0xFF'FFFF'FFFFull;
}

struct Event {
  sim::Time ts = 0;   // simulated nanoseconds
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t corr = kNoCorr;  // wire correlation id; 0 = not a wire event
  uint32_t node = 0;
  Cat cat = Cat::kProgram;
  Phase phase = Phase::kInstant;
  Track track = Track::kApp;
  // Explicit tail byte instead of padding, so whole-record memcmp (the
  // determinism tests compare event streams bytewise) sees defined memory.
  uint8_t reserved = 0;
};
static_assert(sizeof(Event) == 40, "Event is sized for bulk recording");

// Export-time metadata for one category; resolved from kCatInfo, never on
// the recording path.
struct CatInfo {
  const char* name;
  Track track;
  const char* arg0;
  const char* arg1;
};

inline constexpr CatInfo kCatInfo[static_cast<size_t>(Cat::kCatCount)] = {
    {"program", Track::kApp, "node", nullptr},
    {"acquire_view", Track::kApp, "view", "readonly"},
    {"release_view", Track::kApp, "view", "readonly"},
    {"acquire_lock", Track::kApp, "lock", nullptr},
    {"barrier", Track::kApp, "barrier", nullptr},
    {"acquire_wait", Track::kProto, "id", nullptr},
    {"barrier_wait", Track::kProto, "barrier", nullptr},
    {"page_fault", Track::kProto, "page", nullptr},
    {"diff_create", Track::kProto, "pages", "bytes"},
    {"twin", Track::kProto, "page", nullptr},
    {"diff_apply", Track::kProto, "page", "bytes"},
    {"write_notice", Track::kProto, "page", "writer"},
    {"grant", Track::kProto, "id", "requester"},
    {"barrier_fold", Track::kProto, "barrier", "notices"},
    {"send", Track::kNet, "type", "bytes"},
    {"deliver", Track::kNet, "kind", "bytes"},
    {"retransmit", Track::kNet, "type", "bytes"},
    {"drop", Track::kNet, "sender", "bytes"},
    {"fault_inject", Track::kNet, "fault", "bytes"},
    {"engine_run", Track::kApp, "events", nullptr},
};

inline const CatInfo& catInfo(Cat c) {
  return kCatInfo[static_cast<size_t>(c)];
}

// During a parallel engine run, events recorded from worker threads land in
// per-lane buffers tagged with the executing event's key; at each window
// barrier the buffers are merged in (key, ordinal) order and appended to the
// main list. Windows replay in global key order, so the merged stream is
// byte-identical to the insertion order a serial run would have produced.
class TraceRecorder : public sim::ParallelObserver {
 public:
  void begin(uint32_t node, Cat c, sim::Time ts, uint64_t a0 = 0,
             uint64_t a1 = 0) {
    push({ts, a0, a1, kNoCorr, node, c, Phase::kBegin, catInfo(c).track});
  }
  void end(uint32_t node, Cat c, sim::Time ts, uint64_t a0 = 0,
           uint64_t a1 = 0) {
    push({ts, a0, a1, kNoCorr, node, c, Phase::kEnd, catInfo(c).track});
  }
  void instant(uint32_t node, Cat c, sim::Time ts, uint64_t a0 = 0,
               uint64_t a1 = 0, uint64_t corr = kNoCorr) {
    push({ts, a0, a1, corr, node, c, Phase::kInstant, catInfo(c).track});
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  void onParallelStart(uint32_t nlanes) override {
    lanes_.assign(nlanes, {});
  }
  void onWindow(const sim::EventKey* limit) override {
    merge_.clear();
    for (std::vector<Tagged>& lane : lanes_) {
      merge_.insert(merge_.end(), lane.begin(), lane.end());
      lane.clear();
    }
    std::sort(merge_.begin(), merge_.end(), [](const Tagged& a,
                                               const Tagged& b) {
      if (a.key < b.key) return true;
      if (b.key < a.key) return false;
      return a.ord < b.ord;
    });
    for (const Tagged& t : merge_)
      if (!limit || !(*limit < t.key)) events_.push_back(t.ev);
  }
  void onParallelEnd() override { lanes_.clear(); }

 private:
  struct Tagged {
    sim::EventKey key;
    uint64_t ord;
    Event ev;
  };

  void push(const Event& ev) {
    if (sim::Engine::ExecContext* x = sim::Engine::execContext()) {
      lanes_[x->lane].push_back(Tagged{x->key, x->nextOrdinal(), ev});
      return;
    }
    events_.push_back(ev);
  }

  std::vector<Event> events_;
  std::vector<std::vector<Tagged>> lanes_;  // non-empty only mid-parallel-run
  std::vector<Tagged> merge_;
};

}  // namespace vodsm::obs
