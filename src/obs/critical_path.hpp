// Critical-path extraction over an EventGraph.
//
// Walks the longest dependency chain of a run backwards from the finish
// timestamp (owned by the slowest node's program end) and attributes every
// critical nanosecond to a (node, category, id) triple:
//
//   compute          — local work on the path's current node
//   fault            — page-fault service spans (id = page)
//   diff_create      — release-time diff creation on the path
//   acquire_wait     — wait time not explained by a wakeup edge
//   barrier_wait     — likewise for barriers
//   grant_transfer   — grant posted on the producer -> wait end on the
//                      consumer (id = lock/view); the wire + diff-apply
//                      latency of the grant that the waiter was blocked on
//   barrier_release  — releasing fold on the manager -> wait end
//                      (id = barrier); the release fan-out latency
//
// The walk telescopes: each step covers a half-open interval of the
// timeline exactly once, so the attributions partition [0, finish] and sum
// to the run's makespan to the nanosecond — the invariant the test suite
// asserts. When a wait has no wakeup edge (hand-crafted or truncated
// traces), its span is attributed to the wait category itself and the walk
// continues on the same node, preserving the partition.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/graph.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

enum class PathCat : uint8_t {
  kCompute = 0,
  kFault,
  kDiffCreate,
  kAcquireWait,
  kBarrierWait,
  kGrantTransfer,
  kBarrierRelease,
  kPathCatCount,
};
inline constexpr int kPathCatCount =
    static_cast<int>(PathCat::kPathCatCount);
inline constexpr const char* kPathCatName[kPathCatCount] = {
    "compute",      "fault",          "diff_create",     "acquire_wait",
    "barrier_wait", "grant_transfer", "barrier_release",
};

// One aggregated attribution: `nanos` of critical time on `node` doing
// `cat` for `id` (page for fault, lock/view for acquire/grant, barrier for
// barrier categories, 0 otherwise).
struct PathSlice {
  uint32_t node = 0;
  PathCat cat = PathCat::kCompute;
  uint64_t id = 0;
  sim::Time nanos = 0;
};

struct CriticalPath {
  sim::Time makespan = 0;  // run finish time; equals the attribution sum
  sim::Time by_cat[kPathCatCount] = {};
  std::vector<sim::Time> by_node;   // index = node id
  std::vector<PathSlice> slices;    // sorted by nanos desc, then key
  int hops = 0;                     // cross-node jumps taken by the walk

  sim::Time total() const {
    sim::Time t = 0;
    for (int c = 0; c < kPathCatCount; ++c) t += by_cat[c];
    return t;
  }
  bool enabled() const { return makespan > 0 || !slices.empty(); }
};

// Walks the critical path of a prebuilt graph. `finish` is the run's finish
// time (the slowest node's clock).
CriticalPath computeCriticalPath(const EventGraph& graph, sim::Time finish);

// Convenience: build the graph and walk it.
CriticalPath computeCriticalPath(const TraceRecorder& trace, int nprocs,
                                 sim::Time finish);

// Renders the per-category totals plus the top-`max_slices` attributions.
void printCriticalPath(std::ostream& os, const CriticalPath& cp,
                       const std::string& title, size_t max_slices = 12);

}  // namespace vodsm::obs
