// Critical-path hotspot summarizer: the catch-all pass that names the
// dominant critical-path category and its heaviest slice.
//
// Severity calibration — the hotspot describes where the time went, while
// the other detectors describe why, so a root cause with the same
// explanatory power must outrank it:
//  * compute is scored by its *excess* over a uniform 1/nprocs share
//    (perfectly balanced compute is not a finding);
//  * wait categories (barrier_wait, acquire_wait) are halved: the
//    critical-path walk attributes a manager's own wait span to itself, so
//    it cannot tell how much of a wait is the waiter's problem versus the
//    straggler/partition/contention that kept the wakeup away;
//  * service categories keep a light 0.95 discount.

#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

constexpr double kServiceDiscount = 0.95;
constexpr double kWaitDiscount = 0.5;

bool isWaitCat(int c) {
  return c == static_cast<int>(PathCat::kAcquireWait) ||
         c == static_cast<int>(PathCat::kBarrierWait);
}

std::string idLabel(PathCat c, uint64_t id) {
  switch (c) {
    case PathCat::kFault: return " page " + std::to_string(id);
    case PathCat::kAcquireWait:
    case PathCat::kGrantTransfer: return " id " + std::to_string(id);
    case PathCat::kBarrierWait:
    case PathCat::kBarrierRelease: return " barrier " + std::to_string(id);
    default: return "";
  }
}

const char* remedyFor(PathCat c) {
  switch (c) {
    case PathCat::kBarrierWait:
    case PathCat::kBarrierRelease:
      return "reduce barrier frequency or balance the work between "
             "barriers; a tree barrier cuts manager fan-in";
    case PathCat::kAcquireWait:
    case PathCat::kGrantTransfer:
      return "the id is contended; split the view/lock or privatize "
             "read-mostly data per node";
    case PathCat::kFault:
    case PathCat::kDiffCreate:
      return "page-fault and diff service dominate; improve locality or "
             "coarsen views so fewer pages ping-pong";
    default:
      return "compute on one node dominates the path; rebalance the "
             "decomposition";
  }
}

class HotspotPass : public Pass {
 public:
  const char* name() const override { return "critical_path_hotspot"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    const CriticalPath* cp = in.critpath;
    if (!cp || cp->makespan <= 0 || in.nprocs <= 0) return;
    const double makespan = static_cast<double>(cp->makespan);

    // Dominant category by calibrated severity.
    int best_cat = -1;
    double best_sev = 0;
    for (int c = 0; c < kPathCatCount; ++c) {
      const double share = static_cast<double>(cp->by_cat[c]) / makespan;
      double sev;
      if (c == static_cast<int>(PathCat::kCompute))
        sev = share - 1.0 / in.nprocs;
      else if (isWaitCat(c))
        sev = kWaitDiscount * share;
      else
        sev = kServiceDiscount * share;
      if (sev > best_sev) {
        best_sev = sev;
        best_cat = c;
      }
    }
    if (best_cat < 0) return;

    // Heaviest slice inside the dominant category (slices are sorted by
    // nanos desc then key, so the first match is the deterministic winner).
    const PathSlice* top = nullptr;
    for (const PathSlice& s : cp->slices) {
      if (static_cast<int>(s.cat) == best_cat) {
        top = &s;
        break;
      }
    }

    Finding f;
    f.cat = FindingCat::kHotspot;
    f.severity = clamp01(best_sev);
    const PathCat cat = static_cast<PathCat>(best_cat);
    f.location = std::string(kPathCatName[best_cat]);
    if (top) {
      f.location += " on node " + std::to_string(top->node) +
                    idLabel(cat, top->id);
      f.node = top->node;
      f.id = static_cast<int64_t>(top->id);
    }
    std::string ev = "critical path:";
    bool first = true;
    for (const PathSlice& s : cp->slices) {
      // Top three slices overall give the reader the path's shape.
      if (&s - cp->slices.data() >= 3) break;
      ev += first ? " " : ", ";
      first = false;
      ev += "node " + std::to_string(s.node) + " " +
            kPathCatName[static_cast<int>(s.cat)] + idLabel(s.cat, s.id) +
            " " + fmtPct(static_cast<double>(s.nanos) / makespan);
    }
    ev += "; " + std::string(kPathCatName[best_cat]) + " explains " +
          fmtPct(static_cast<double>(cp->by_cat[best_cat]) / makespan) +
          " of the makespan overall";
    f.evidence = ev;
    f.remedy = remedyFor(cat);
    out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makeHotspotPass() {
  return std::make_unique<HotspotPass>();
}

}  // namespace vodsm::obs::passes
