// Network-anomaly detectors: partitions (a blackout window in which every
// drop involves one node) and retransmission storms (loss-triggered RTO
// stalls). Both build on the shared drop-window detector in common.hpp so a
// partition's own drops are claimed once: flows dropped inside the
// partition window are excluded from the storm pass, keeping the partition
// finding ranked above the generic loss symptom it causes.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

class PartitionPass : public Pass {
 public:
  const char* name() const override { return "partition"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (!in.trace || !in.graph || in.finish <= 0) return;
    const DropWindow w = detectDropWindow(in);
    if (!w.found) return;
    const sim::Time recovery = partitionRecoveryEnd(in, w);

    Finding f;
    f.cat = FindingCat::kPartition;
    f.severity = clamp01(static_cast<double>(recovery - w.t0) /
                         static_cast<double>(in.finish));
    f.location = "node " + std::to_string(w.node) + " cut off [" +
                 fmtSecs(w.t0) + ", " + fmtSecs(w.t1) + "]";
    f.node = w.node;
    f.window_begin = w.t0;
    f.window_end = w.t1;
    f.evidence = std::to_string(w.involved) + " of " +
                 std::to_string(w.total) +
                 " dropped frames cross node " + std::to_string(w.node) +
                 " inside a " + fmtDur(w.t1 - w.t0) +
                 " window; the last affected flow recovered at " +
                 fmtSecs(recovery);
    f.remedy = "the drop pattern matches a network partition isolating the "
               "node; check its link/switch, and lower the transport RTO so "
               "recovery stalls shrink";
    out.push_back(std::move(f));
  }
};

class RetransmitStormPass : public Pass {
 public:
  const char* name() const override { return "retransmission_storm"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (!in.trace || !in.graph || in.finish <= 0) return;
    const DropWindow w = detectDropWindow(in);
    const auto& events = in.trace->events();

    // Clean-flow median latency is the baseline for "how long should a
    // frame take".
    std::vector<sim::Time> clean;
    for (const Flow& fl : in.graph->flows)
      if (fl.retransmits == 0 && fl.drops == 0 && fl.send >= 0 &&
          fl.deliver >= 0)
        clean.push_back(events[static_cast<size_t>(fl.deliver)].ts -
                        events[static_cast<size_t>(fl.send)].ts);
    const sim::Time baseline = medianOf(clean);

    uint64_t affected = 0, retransmits = 0, dropped = 0;
    sim::Time excess = 0;
    std::set<uint64_t> affected_corrs;
    for (const Flow& fl : in.graph->flows) {
      if (fl.retransmits == 0 && fl.drops == 0) continue;
      if (w.found && w.corrs.count(fl.corr)) continue;  // partition's claim
      affected++;
      retransmits += fl.retransmits;
      dropped += fl.drops;
      affected_corrs.insert(fl.corr);
      if (fl.send >= 0 && fl.deliver >= 0) {
        const sim::Time lat = events[static_cast<size_t>(fl.deliver)].ts -
                              events[static_cast<size_t>(fl.send)].ts;
        if (lat > baseline) excess += lat - baseline;
      }
    }
    if (affected < 2 || excess <= 0) return;

    // If one link owns at least half the affected drops, name it.
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> links;
    uint64_t link_drops = 0;
    for (const Event& ev : in.trace->events()) {
      if (ev.cat != Cat::kDrop || ev.phase != Phase::kInstant) continue;
      if (!affected_corrs.count(ev.corr)) continue;
      links[{static_cast<uint32_t>(ev.a0), ev.node}]++;
      link_drops++;
    }
    std::pair<uint32_t, uint32_t> top_link{0, 0};
    uint64_t top_count = 0;
    for (const auto& [link, cnt] : links)
      if (cnt > top_count) {
        top_link = link;
        top_count = cnt;
      }

    Finding f;
    f.cat = FindingCat::kRetransmitStorm;
    f.severity = clamp01(static_cast<double>(excess) /
                         static_cast<double>(in.finish));
    if (link_drops >= 4 && 2 * top_count >= link_drops) {
      f.location = "link node " + std::to_string(top_link.first) +
                   " -> node " + std::to_string(top_link.second);
      f.node = top_link.second;
    } else {
      f.location = "cluster-wide (" + std::to_string(affected) + " flows)";
    }
    f.evidence = std::to_string(affected) + " flows saw " +
                 std::to_string(retransmits) + " retransmissions and " +
                 std::to_string(dropped) +
                 " drops; their delivery ran a combined " + fmtDur(excess) +
                 " over the clean median latency of " + fmtDur(baseline);
    f.remedy = "loss is triggering retransmit-timer stalls; improve link "
               "quality, and lower the RTO or add negative acks so a drop "
               "costs less than a full timeout";
    out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makePartitionPass() {
  return std::make_unique<PartitionPass>();
}

std::unique_ptr<Pass> makeRetransmitStormPass() {
  return std::make_unique<RetransmitStormPass>();
}

}  // namespace vodsm::obs::passes
