// Diff-store growth detector, from the metrics integrals: a retained diff
// log whose time-weighted mean tracks its peak and whose final value never
// comes back down is growing monotonically — the signature that led to the
// VC_sd home-diff GC. Informational: severity is capped low because memory
// growth explains footprint, not makespan.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

constexpr int64_t kMinPeakBytes = 64 * 1024;
constexpr double kSeverityCap = 0.05;

class DiffStoreGrowthPass : public Pass {
 public:
  const char* name() const override { return "diff_store_growth"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    const MetricsSummary* m = in.metrics;
    if (!m || !m->enabled()) return;

    int64_t sum_peak = 0, sum_final = 0, max_peak = 0;
    double sum_mean = 0;
    uint32_t peak_node = 0;
    sim::Time peak_ts = 0;
    for (const MetricSummaryRow& r : m->rows) {
      if (r.metric != Metric::kDiffStoreBytes) continue;
      sum_peak += r.peak;
      sum_final += r.final_value;
      sum_mean += r.mean;
      if (r.peak > max_peak) {
        max_peak = r.peak;
        peak_node = r.node;
        peak_ts = r.peak_ts;
      }
    }
    if (sum_peak < kMinPeakBytes) return;
    const double retained =
        static_cast<double>(sum_final) / static_cast<double>(sum_peak);
    if (retained < 0.7) return;  // the log is being reclaimed; healthy

    Finding f;
    f.cat = FindingCat::kDiffStoreGrowth;
    f.severity = kSeverityCap * clamp01(retained);
    f.location = "node " + std::to_string(peak_node) + " diff store";
    f.node = peak_node;
    f.evidence = "the retained diff log peaks at " + fmtBytes(max_peak) +
                 " (node " + std::to_string(peak_node) + " at " +
                 fmtSecs(peak_ts) + "); " + fmtPct(retained) +
                 " of the cluster-wide peak is still retained at finish "
                 "(mean occupancy " +
                 fmtBytes(static_cast<int64_t>(sum_mean)) + ")";
    f.remedy = "the diff log grows without reclamation; enable or "
               "strengthen home-side diff GC, or shorten release intervals";
    out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makeDiffStoreGrowthPass() {
  return std::make_unique<DiffStoreGrowthPass>();
}

}  // namespace vodsm::obs::passes
