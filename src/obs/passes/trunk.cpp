// Trunk-saturation detector for multi-switch fabrics: an inter-switch trunk
// whose FIFO serialization kept it busy for a large fraction of the run is a
// bisection-bandwidth bottleneck — traffic is queueing behind it no matter
// how idle the edge links are. Severity is the trunk's busy fraction of the
// makespan, damped because trunk occupancy overlaps with useful compute.
// Star topologies have no trunks, so the pass is inert there.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

constexpr double kBusyThreshold = 0.40;  // of the makespan
constexpr double kSeverityDamp = 0.5;

class TrunkSaturationPass : public Pass {
 public:
  const char* name() const override { return "trunk_saturation"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (in.finish <= 0 || in.trunks.empty()) return;
    for (const TrunkUtilization& t : in.trunks) {
      const double busy =
          static_cast<double>(t.busy) / static_cast<double>(in.finish);
      if (busy < kBusyThreshold) continue;
      Finding f;
      f.cat = FindingCat::kTrunkSaturation;
      f.severity = kSeverityDamp * clamp01(busy);
      f.location = std::string(t.up ? "uplink" : "downlink") + " trunk leaf " +
                   std::to_string(t.leaf) + " <-> spine " +
                   std::to_string(t.spine);
      f.id = t.leaf;
      f.evidence = "the trunk serialized " + std::to_string(t.frames) +
                   " frames (" + fmtBytes(static_cast<int64_t>(t.wire_bytes)) +
                   " on the wire) and was busy " + fmtDur(t.busy) + " — " +
                   fmtPct(busy) + " of the makespan";
      f.remedy = "cross-leaf traffic is queueing on this trunk; add spines "
                 "(or raise trunk bandwidth), rebalance view homes across "
                 "leaves, or prefer a barrier algorithm with leaf-local "
                 "traffic";
      out.push_back(std::move(f));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> makeTrunkSaturationPass() {
  return std::make_unique<TrunkSaturationPass>();
}

}  // namespace vodsm::obs::passes
