// Whole-run skew detectors: stragglers (charge-scaled compute skew from the
// breakdown) and degraded links (per-node downlink busy time versus the
// serialization time the delivered bytes should have cost).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

// A straggler burns notably more charged CPU time than the median node;
// every barrier episode then waits for it, so the skew is pure added
// makespan. "Charged CPU time" is compute + fault/diff service: a slow
// host's charge scaler stretches both its application compute and the
// local CPU half of its DSM service, so either bucket alone understates
// the skew.
class StragglerPass : public Pass {
 public:
  const char* name() const override { return "straggler"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    const Breakdown* b = in.breakdown;
    if (!b || b->nodes.size() < 2 || in.finish <= 0) return;

    std::vector<sim::Time> busy;
    busy.reserve(b->nodes.size());
    for (const BucketSet& n : b->nodes)
      busy.push_back(n.compute + n.fault_diff);
    const sim::Time med = medianOf(busy);
    uint32_t slow = 0;
    sim::Time mx = 0;
    for (uint32_t n = 0; n < busy.size(); ++n)
      if (busy[n] > mx) {
        mx = busy[n];
        slow = n;
      }
    const sim::Time skew = mx - std::min(mx, med);
    const double sev =
        static_cast<double>(skew) / static_cast<double>(in.finish);
    // Fire on a clear outlier only: >= 1.5x the median and >= 10% of the
    // makespan, so ordinary decomposition roughness stays below the radar.
    if (sev < 0.1 || 2 * mx < 3 * med) return;

    const double ratio = med > 0 ? static_cast<double>(mx) /
                                       static_cast<double>(med)
                                 : 0.0;
    Finding f;
    f.cat = FindingCat::kStraggler;
    f.severity = clamp01(sev);
    f.location = "node " + std::to_string(slow);
    f.node = slow;
    f.evidence = "node " + std::to_string(slow) + " charged " +
                 fmtSecs(mx) + " of CPU time (compute + fault/diff "
                 "service) against a median " +
                 fmtSecs(med) +
                 (med > 0 ? " (" + fmtTimes(ratio) + ")" : "") +
                 "; the rest of the cluster idles at every barrier waiting "
                 "for it";
    f.remedy = "the node runs slow (degraded CPU or oversized shard); "
               "rebalance work away from it or replace the host";
    out.push_back(std::move(f));
  }
};

// A degraded link stretches frame serialization, so the downlink's metered
// busy time exceeds what tx_time says the delivered bytes should cost.
// Ratios near 1 are healthy; a single downlink at >= 2x the cluster median
// names that link, and a median >= 2 across nodes means every link is
// degraded (uniform bandwidth cuts have no outlier to compare against).
class DegradedLinkPass : public Pass {
 public:
  const char* name() const override { return "degraded_link"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (!in.metrics || !in.metrics->enabled() || !in.tx_time || !in.trace ||
        in.finish <= 0)
      return;

    // Expected serialization per downlink: every frame that crossed it,
    // delivered or dropped at the NIC, at the undegraded rate.
    std::vector<sim::Time> expected(static_cast<size_t>(in.nprocs), 0);
    for (const Event& ev : in.trace->events()) {
      if (ev.phase != Phase::kInstant) continue;
      if (ev.cat != Cat::kDeliver && ev.cat != Cat::kDrop) continue;
      if (ev.node >= expected.size()) continue;
      expected[ev.node] += in.tx_time(ev.a1);
    }
    std::vector<sim::Time> actual(static_cast<size_t>(in.nprocs), 0);
    for (const MetricSummaryRow& r : in.metrics->rows)
      if (r.metric == Metric::kDownlinkBusyNs && r.node < actual.size())
        actual[r.node] = r.final_value;

    constexpr sim::Time kMinExpected = 50'000;  // 50 us of traffic
    std::vector<double> ratios;
    for (size_t n = 0; n < expected.size(); ++n)
      if (expected[n] >= kMinExpected)
        ratios.push_back(static_cast<double>(actual[n]) /
                         static_cast<double>(expected[n]));
    if (ratios.size() < 2) return;
    const double med = medianOf(ratios);

    int worst = -1;
    double worst_ratio = 0;
    for (size_t n = 0; n < expected.size(); ++n) {
      if (expected[n] < kMinExpected) continue;
      const double r = static_cast<double>(actual[n]) /
                       static_cast<double>(expected[n]);
      if (r >= 2.0 && r >= 2.0 * med && r > worst_ratio) {
        worst = static_cast<int>(n);
        worst_ratio = r;
      }
    }

    Finding f;
    f.cat = FindingCat::kDegradedLink;
    if (worst >= 0) {
      const size_t n = static_cast<size_t>(worst);
      f.severity = clamp01(static_cast<double>(actual[n] - expected[n]) /
                           static_cast<double>(in.finish));
      f.location = "downlink to node " + std::to_string(worst);
      f.node = worst;
      f.evidence = "node " + std::to_string(worst) +
                   "'s downlink was busy " + fmtDur(actual[n]) +
                   " serializing traffic that should cost " +
                   fmtDur(expected[n]) + " (" + fmtTimes(worst_ratio) +
                   "; cluster median " + fmtTimes(med) + ")";
      f.remedy = "one link runs far below nominal bandwidth; check the "
                 "node's NIC/cable/switch port";
    } else if (med >= 2.0) {
      sim::Time worst_extra = 0;
      size_t worst_node = 0;
      for (size_t n = 0; n < expected.size(); ++n)
        if (expected[n] >= kMinExpected &&
            actual[n] - expected[n] > worst_extra) {
          worst_extra = actual[n] - expected[n];
          worst_node = n;
        }
      f.severity = clamp01(static_cast<double>(worst_extra) /
                           static_cast<double>(in.finish));
      f.location = "all links (median " + fmtTimes(med) + " nominal cost)";
      f.evidence = "every measured downlink serializes at ~" + fmtTimes(med) +
                   " its nominal cost; the worst (node " +
                   std::to_string(worst_node) + ") spent " +
                   fmtDur(worst_extra) + " extra on the wire";
      f.remedy = "the whole fabric runs below nominal bandwidth; check "
                 "switch uplinks or provisioned rate limits";
    } else {
      return;
    }
    out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makeStragglerPass() {
  return std::make_unique<StragglerPass>();
}

std::unique_ptr<Pass> makeDegradedLinkPass() {
  return std::make_unique<DegradedLinkPass>();
}

}  // namespace vodsm::obs::passes
