// Shared helpers for the built-in diagnosis passes: deterministic number
// formatting (fixed precision, no locale) and small math utilities. Internal
// to src/obs/passes/ — not part of the diagnose.hpp API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "sim/time.hpp"

namespace vodsm::obs::passes {

inline double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

inline std::string fmtSecs(sim::Time t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << sim::toSeconds(t) << " s";
  return os.str();
}

// Duration with a unit scaled to its magnitude (fixed precision per band,
// so output stays deterministic).
inline std::string fmtDur(sim::Time t) {
  std::ostringstream os;
  os << std::fixed;
  if (t < sim::usec(1000)) {
    os << std::setprecision(2) << static_cast<double>(t) / 1e3 << " us";
  } else if (t < sim::msec(1000)) {
    os << std::setprecision(3) << static_cast<double>(t) / 1e6 << " ms";
  } else {
    os << std::setprecision(4) << sim::toSeconds(t) << " s";
  }
  return os.str();
}

inline std::string fmtBytes(int64_t b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const double v = static_cast<double>(b);
  if (b < 64 * 1024) {
    os << v / 1024.0 << " KiB";
  } else if (b < 64 * 1024 * 1024) {
    os << v / (1024.0 * 1024.0) << " MiB";
  } else {
    os << v / (1024.0 * 1024.0 * 1024.0) << " GiB";
  }
  return os.str();
}

inline std::string fmtPct(double frac) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << frac * 100.0 << "%";
  return os.str();
}

inline std::string fmtTimes(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio << "x";
  return os.str();
}

// Median of a scratch copy; lower-middle element for even sizes, so one
// outlier among n >= 2 values never drags the reference point toward itself.
template <typename T>
T medianOf(std::vector<T> v) {
  if (v.empty()) return T{};
  std::sort(v.begin(), v.end());
  return v[(v.size() - 1) / 2];
}

// A partition window: a node such that (a) it is involved in at least
// three drops, (b) those drops span at most half the run, (c) at least 90%
// of all drops inside that span involve the node, and (d) the node's drops
// are at least half of all drops in the run. Uniform random loss fails (c)
// and (d); a real partition of one node satisfies all four. Shared between
// the partition pass (which reports it) and the storm/grant passes (which
// must not re-claim the stall it causes).
struct DropWindow {
  bool found = false;
  uint32_t node = 0;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  uint64_t involved = 0;
  uint64_t total = 0;
  std::set<uint64_t> corrs;  // corr ids of the windowed drops
};

inline DropWindow detectDropWindow(const DiagnosisInput& in) {
  struct DropRec {
    sim::Time ts;
    uint32_t src;
    uint32_t dst;
    uint64_t corr;
  };
  DropWindow w;
  if (!in.trace) return w;
  std::vector<DropRec> drops;
  for (const Event& ev : in.trace->events()) {
    if (ev.cat != Cat::kDrop || ev.phase != Phase::kInstant) continue;
    drops.push_back({ev.ts, static_cast<uint32_t>(ev.a0), ev.node, ev.corr});
  }
  w.total = drops.size();
  if (drops.size() < 3) return w;

  for (uint32_t n = 0; n < static_cast<uint32_t>(in.nprocs); ++n) {
    std::vector<const DropRec*> mine;
    for (const DropRec& d : drops)
      if (d.src == n || d.dst == n) mine.push_back(&d);
    if (mine.size() < 3 || 2 * mine.size() < drops.size()) continue;
    sim::Time t0 = mine.front()->ts, t1 = mine.front()->ts;
    for (const DropRec* d : mine) {
      t0 = std::min(t0, d->ts);
      t1 = std::max(t1, d->ts);
    }
    if (in.finish > 0 && t1 - t0 > in.finish / 2) continue;
    uint64_t in_window = 0;
    for (const DropRec& d : drops)
      if (d.ts >= t0 && d.ts <= t1) in_window++;
    if (10 * mine.size() < 9 * in_window) continue;  // < 90% consistency
    if (w.found && mine.size() <= w.involved) continue;
    w.found = true;
    w.node = n;
    w.t0 = t0;
    w.t1 = t1;
    w.involved = mine.size();
    w.corrs.clear();
    for (const DropRec* d : mine)
      if (d->corr != kNoCorr) w.corrs.insert(d->corr);
  }
  return w;
}

// When the window's last affected flow finally delivered; a flow that
// never delivered keeps the stall open until the run's finish.
inline sim::Time partitionRecoveryEnd(const DiagnosisInput& in,
                                      const DropWindow& w) {
  sim::Time recovery = w.t1;
  if (!in.graph || !in.trace) return recovery;
  const auto& events = in.trace->events();
  for (uint64_t corr : w.corrs) {
    const Flow* fl = in.graph->flowOf(corr);
    if (fl && fl->deliver >= 0)
      recovery =
          std::max(recovery, events[static_cast<size_t>(fl->deliver)].ts);
    else
      recovery = in.finish;
  }
  return recovery;
}

}  // namespace vodsm::obs::passes
