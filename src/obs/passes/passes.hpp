// Factory functions for the built-in diagnosis pass catalog. Each pass is
// self-contained in its .cpp; the Diagnoser constructor instantiates them in
// this order (order does not affect the ranking, which is severity-based).
#pragma once

#include <memory>

#include "obs/diagnose.hpp"

namespace vodsm::obs::passes {

// Detectors for injected/physical faults (root causes).
std::unique_ptr<Pass> makePartitionPass();      // anomalies.cpp
std::unique_ptr<Pass> makeStragglerPass();      // skew.cpp
std::unique_ptr<Pass> makeDegradedLinkPass();   // skew.cpp
std::unique_ptr<Pass> makeRetransmitStormPass();  // anomalies.cpp

// Communication-pattern detectors.
std::unique_ptr<Pass> makeTrunkSaturationPass();  // trunk.cpp
std::unique_ptr<Pass> makeGrantStormPass();    // comm_patterns.cpp
std::unique_ptr<Pass> makeAllToAllDiffPass();  // comm_patterns.cpp

// Load / memory structure.
std::unique_ptr<Pass> makeImbalancePass();        // imbalance.cpp
std::unique_ptr<Pass> makePageImbalancePass();    // page_imbalance.cpp
std::unique_ptr<Pass> makeDiffStoreGrowthPass();  // memory.cpp

// Catch-all critical-path summarizer (always emits when a path exists).
std::unique_ptr<Pass> makeHotspotPass();  // hotspot.cpp

}  // namespace vodsm::obs::passes
