// Page-granular refinement of barrier imbalance.
//
// The imbalance pass (imbalance.cpp) says *which node* arrived late at
// *which barrier episode*; this pass says *which pages* that node was
// stalled on inside the gap. It recomputes the single largest-gap episode
// with the imbalance pass's exact grouping, folds the slow node's kFault
// spans that overlap the gap interval by page id, and emits the top pages
// with severity strictly below the parent imbalance finding (the page view
// is a localization, never the headline), enriched with the run-wide
// page-heat row so the sharer/writer structure of the page is visible.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

constexpr double kMinSeverity = 0.005;  // episode gate, as imbalance.cpp
constexpr double kPageDiscount = 0.9;   // strictly below the parent finding
constexpr size_t kMaxPages = 2;

struct Arrival {
  uint32_t node = 0;
  sim::Time begin = 0;
  sim::Time end = 0;
};

class PageImbalancePass : public Pass {
 public:
  const char* name() const override { return "page_imbalance"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    const EventGraph* g = in.graph;
    if (!g || in.finish <= 0 || in.nprocs < 2) return;

    // Same episode grouping as imbalance.cpp: episodes[barrier][j] holds
    // each node's j-th wait on the barrier.
    std::map<uint64_t, std::vector<std::vector<Arrival>>> episodes;
    for (uint32_t n = 0; n < g->nodes.size(); ++n) {
      std::map<uint64_t, size_t> seen;
      for (const Wait& w : g->nodes[n].waits) {
        if (w.cat != Cat::kBarrierWait) continue;
        const size_t j = seen[w.id]++;
        auto& eps = episodes[w.id];
        if (eps.size() <= j) eps.resize(j + 1);
        eps[j].push_back({n, w.begin, w.end});
      }
    }

    // Pick the single largest gap (ties: lower barrier id, earlier window —
    // the same order the imbalance ranking would surface first).
    bool found = false;
    uint64_t barrier = 0;
    size_t episode = 0;
    uint32_t slow_node = 0;
    sim::Time gap_begin = 0, gap_end = 0, gap = 0;
    for (const auto& [b, eps] : episodes) {
      for (size_t j = 0; j < eps.size(); ++j) {
        std::vector<Arrival> a = eps[j];
        if (a.size() < 2) continue;
        std::sort(a.begin(), a.end(),
                  [](const Arrival& x, const Arrival& y) {
                    if (x.begin != y.begin) return x.begin < y.begin;
                    return x.node < y.node;
                  });
        const sim::Time gb = a[a.size() - 2].begin;
        const sim::Time ge = a.back().begin;
        if (ge - gb > gap) {
          found = true;
          barrier = b;
          episode = j;
          slow_node = a.back().node;
          gap_begin = gb;
          gap_end = ge;
          gap = ge - gb;
        }
      }
    }
    const double gap_sev =
        static_cast<double>(gap) / static_cast<double>(in.finish);
    if (!found || gap <= 0 || gap_sev < kMinSeverity) return;

    // Fold the slow node's fault spans inside the gap by page.
    std::map<uint64_t, sim::Time> by_page;
    for (const LocalSpan& s : g->nodes[slow_node].spans) {
      if (s.begin >= gap_end) break;  // spans sorted by begin
      if (s.cat != Cat::kFault) continue;
      const sim::Time b = std::max(s.begin, gap_begin);
      const sim::Time e = std::min(s.end, gap_end);
      if (e > b) by_page[s.id] += e - b;
    }
    if (by_page.empty()) return;

    std::vector<std::pair<uint64_t, sim::Time>> pages(by_page.begin(),
                                                      by_page.end());
    std::sort(pages.begin(), pages.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
    if (pages.size() > kMaxPages) pages.resize(kMaxPages);

    for (const auto& [page, stalled] : pages) {
      Finding f;
      f.cat = FindingCat::kPageImbalance;
      // Strictly below the parent load_imbalance finding: the discounted
      // share of the *page's* stall, which is at most the gap.
      f.severity = kPageDiscount *
                   clamp01(static_cast<double>(stalled) /
                           static_cast<double>(in.finish));
      f.location = "page " + std::to_string(page) + " at barrier " +
                   std::to_string(barrier) + " episode " +
                   std::to_string(episode) + ", node " +
                   std::to_string(slow_node);
      f.node = slow_node;
      f.id = static_cast<int64_t>(page);
      f.window_begin = gap_begin;
      f.window_end = gap_end;
      f.evidence = "node " + std::to_string(slow_node) + " spent " +
                   fmtDur(stalled) + " of the " + fmtDur(gap) +
                   " imbalance gap faulting on page " + std::to_string(page);
      if (in.pageheat) {
        for (const PageHeatRow& r : in.pageheat->rows) {
          if (r.page != page) continue;
          f.evidence += " (run-wide: " + std::to_string(r.faults) +
                        " faults, " + fmtDur(r.fault_time) + ", " +
                        std::to_string(r.sharers) + " sharers, " +
                        std::to_string(r.writers) + " writers)";
          break;
        }
      }
      f.remedy =
          "re-home or pre-fetch this page for the slow node, or "
          "restructure the phase so its writers do not precede the "
          "slow node's reads";
      out.push_back(std::move(f));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> makePageImbalancePass() {
  return std::make_unique<PageImbalancePass>();
}

}  // namespace vodsm::obs::passes
