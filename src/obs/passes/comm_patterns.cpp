// Communication-pattern detectors: broadcast-like grant storms on one
// lock/view id, and all-to-all diff exchange across the node set.

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

// A grant storm is one id being granted over and over to (nearly) every
// node — broadcast-like sharing that serializes on the id's manager.
// Severity is what the critical path already charges to the id (its
// acquire_wait + grant_transfer slices), i.e. the makespan fraction the
// contention explains — minus any acquire-wait time that overlaps a
// detected partition's recovery interval, so a manager going dark is
// reported as a partition, not as contention on the ids it manages.
class GrantStormPass : public Pass {
 public:
  const char* name() const override { return "grant_storm"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (!in.trace || in.finish <= 0 || in.nprocs < 2) return;
    const DropWindow w = detectDropWindow(in);
    const sim::Time stall_begin = w.found ? w.t0 : 0;
    const sim::Time stall_end = w.found ? partitionRecoveryEnd(in, w) : 0;

    struct PerId {
      uint64_t grants = 0;
      std::set<uint64_t> requesters;
      std::map<uint32_t, uint64_t> grantors;  // manager node -> count
    };
    std::map<uint64_t, PerId> ids;
    for (const Event& ev : in.trace->events()) {
      if (ev.cat != Cat::kGrant || ev.phase != Phase::kInstant) continue;
      PerId& p = ids[ev.a0];
      p.grants++;
      p.requesters.insert(ev.a1);
      p.grantors[ev.node]++;
    }

    const uint64_t min_requesters =
        std::max<uint64_t>(2, static_cast<uint64_t>(in.nprocs) - 1);
    std::vector<Finding> found;
    for (const auto& [id, p] : ids) {
      if (p.requesters.size() < min_requesters) continue;
      if (p.grants < 2 * static_cast<uint64_t>(in.nprocs)) continue;

      sim::Time charged = 0;
      if (in.critpath) {
        for (const PathSlice& s : in.critpath->slices)
          if ((s.cat == PathCat::kAcquireWait ||
               s.cat == PathCat::kGrantTransfer) &&
              s.id == id)
            charged += s.nanos;
      }
      if (w.found && in.graph && charged > 0) {
        // Subtract the id's acquire waits that overlap the partition
        // stall (conservatively, across all nodes — the path's waits are
        // a subset of these).
        sim::Time overlap = 0;
        for (const NodeTimeline& nt : in.graph->nodes)
          for (const Wait& wt : nt.waits) {
            if (wt.cat != Cat::kAcquireWait || wt.id != id) continue;
            const sim::Time b = std::max(wt.begin, stall_begin);
            const sim::Time e = std::min(wt.end, stall_end);
            if (e > b) overlap += e - b;
          }
        charged -= std::min(charged, overlap);
      }
      uint32_t manager = 0;
      uint64_t manager_grants = 0;
      for (const auto& [node, cnt] : p.grantors)
        if (cnt > manager_grants) {
          manager = node;
          manager_grants = cnt;
        }

      Finding f;
      f.cat = FindingCat::kGrantStorm;
      f.severity = clamp01(static_cast<double>(charged) /
                           static_cast<double>(in.finish));
      f.location =
          "id " + std::to_string(id) + " (manager node " +
          std::to_string(manager) + ")";
      f.node = manager;
      f.id = static_cast<int64_t>(id);
      f.evidence = "id " + std::to_string(id) + " granted " +
                   std::to_string(p.grants) + " times to " +
                   std::to_string(p.requesters.size()) +
                   " distinct requesters; its acquire + grant transfer "
                   "explains " +
                   fmtPct(f.severity) + " of the critical path";
      f.remedy = "broadcast-like sharing serializes on the manager; split "
                 "the view, privatize read-mostly data, or shard the id's "
                 "home";
      found.push_back(std::move(f));
    }

    std::sort(found.begin(), found.end(),
              [](const Finding& x, const Finding& y) {
                if (x.severity != y.severity) return x.severity > y.severity;
                return x.id < y.id;
              });
    if (found.size() > 3) found.resize(3);
    for (Finding& f : found) out.push_back(std::move(f));
  }
};

// All-to-all diff exchange: diff request/reply flows cover (nearly) every
// ordered node pair. Needs the wire-class hook; without it the detector is
// silent (the obs layer cannot name message types by itself).
class AllToAllDiffPass : public Pass {
 public:
  const char* name() const override { return "all_to_all_diff"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    if (!in.graph || !in.trace || !in.classify) return;
    if (in.nprocs < 4 || in.finish <= 0) return;

    const auto& events = in.trace->events();
    std::set<std::pair<uint32_t, uint32_t>> pairs;
    uint64_t diff_flows = 0;
    for (const Flow& fl : in.graph->flows) {
      if (fl.send < 0 || fl.deliver < 0) continue;
      const Event& s = events[static_cast<size_t>(fl.send)];
      const WireClass cls = in.classify(s.a0);
      if (cls != WireClass::kDiffRequest && cls != WireClass::kDiffReply)
        continue;
      diff_flows++;
      const Event& d = events[static_cast<size_t>(fl.deliver)];
      if (s.node != d.node) pairs.insert({s.node, d.node});
    }

    const uint64_t possible = static_cast<uint64_t>(in.nprocs) *
                              static_cast<uint64_t>(in.nprocs - 1);
    if (possible == 0 || diff_flows < 2 * possible) return;
    const double coverage =
        static_cast<double>(pairs.size()) / static_cast<double>(possible);
    if (coverage < 0.75) return;

    sim::Time charged = 0;
    if (in.critpath)
      charged = in.critpath->by_cat[static_cast<int>(PathCat::kFault)] +
                in.critpath->by_cat[static_cast<int>(PathCat::kDiffCreate)];

    Finding f;
    f.cat = FindingCat::kAllToAllDiff;
    f.severity = clamp01(static_cast<double>(charged) /
                         static_cast<double>(in.finish));
    f.location = std::to_string(pairs.size()) + " of " +
                 std::to_string(possible) + " node pairs";
    f.evidence = std::to_string(diff_flows) +
                 " diff request/reply flows cover " + fmtPct(coverage) +
                 " of the ordered node pairs; fault + diff_create explain " +
                 fmtPct(f.severity) + " of the critical path";
    f.remedy = "every node exchanges diffs with every other; pin view homes "
               "to their dominant writers or coarsen views to cut the "
               "exchange degree";
    out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makeGrantStormPass() {
  return std::make_unique<GrantStormPass>();
}

std::unique_ptr<Pass> makeAllToAllDiffPass() {
  return std::make_unique<AllToAllDiffPass>();
}

}  // namespace vodsm::obs::passes
