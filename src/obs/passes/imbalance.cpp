// Per-barrier-episode load-imbalance attribution.
//
// For every barrier episode (the j-th arrival of each node at barrier b)
// the cost of imbalance is the gap between the slowest arrival and the
// next-slowest one: that gap is exactly how much earlier the episode would
// have released had the slowest node kept up. The gap interval on the
// slowest node is attributed to fault/diff service (its LocalSpans that
// overlap it) versus plain compute, and episodes are ranked by cost —
// severity is one episode's gap as a fraction of the makespan, never a sum
// across episodes, so a whole-run straggler finding always outranks the
// per-episode symptoms it causes.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/passes/common.hpp"
#include "obs/passes/passes.hpp"

namespace vodsm::obs::passes {
namespace {

constexpr double kMinSeverity = 0.005;
constexpr size_t kMaxFindings = 3;

struct Arrival {
  uint32_t node = 0;
  sim::Time begin = 0;  // arrive-at-barrier timestamp (wait begin)
  sim::Time end = 0;    // release incorporated
};

class ImbalancePass : public Pass {
 public:
  const char* name() const override { return "load_imbalance"; }

  void run(const DiagnosisInput& in,
           std::vector<Finding>& out) const override {
    const EventGraph* g = in.graph;
    if (!g || in.finish <= 0 || in.nprocs < 2) return;

    // episodes[barrier][j] = arrivals of each node's j-th wait on barrier.
    std::map<uint64_t, std::vector<std::vector<Arrival>>> episodes;
    for (uint32_t n = 0; n < g->nodes.size(); ++n) {
      std::map<uint64_t, size_t> seen;
      for (const Wait& w : g->nodes[n].waits) {
        if (w.cat != Cat::kBarrierWait) continue;
        const size_t j = seen[w.id]++;
        auto& eps = episodes[w.id];
        if (eps.size() <= j) eps.resize(j + 1);
        eps[j].push_back({n, w.begin, w.end});
      }
    }

    std::vector<Finding> found;
    for (const auto& [barrier, eps] : episodes) {
      for (size_t j = 0; j < eps.size(); ++j) {
        std::vector<Arrival> a = eps[j];
        if (a.size() < 2) continue;
        std::sort(a.begin(), a.end(), [](const Arrival& x, const Arrival& y) {
          if (x.begin != y.begin) return x.begin < y.begin;
          return x.node < y.node;
        });
        const Arrival& slow = a.back();
        const sim::Time gap_begin = a[a.size() - 2].begin;
        const sim::Time gap = slow.begin - gap_begin;
        const double sev =
            static_cast<double>(gap) / static_cast<double>(in.finish);
        if (gap <= 0 || sev < kMinSeverity) continue;

        // Attribute the gap interval on the slowest node.
        sim::Time fault_part = 0;
        for (const LocalSpan& s : g->nodes[slow.node].spans) {
          if (s.begin >= slow.begin) break;  // spans sorted by begin
          const sim::Time b = std::max(s.begin, gap_begin);
          const sim::Time e = std::min(s.end, slow.begin);
          if (e > b) fault_part += e - b;
        }
        const sim::Time compute_part = gap - std::min(gap, fault_part);

        Finding f;
        f.cat = FindingCat::kLoadImbalance;
        f.severity = clamp01(sev);
        f.location = "barrier " + std::to_string(barrier) + " episode " +
                     std::to_string(j) + ", node " +
                     std::to_string(slow.node);
        f.node = slow.node;
        f.id = static_cast<int64_t>(barrier);
        f.window_begin = gap_begin;
        f.window_end = slow.begin;
        f.evidence = "node " + std::to_string(slow.node) + " arrived " +
                     fmtDur(gap) + " after the next-slowest node (" +
                     fmtDur(compute_part) + " compute, " + fmtDur(fault_part) +
                     " fault/diff in the gap); episode released at " +
                     fmtSecs(slow.end);
        f.remedy = compute_part >= fault_part
                       ? "shift work off the slow node for this phase of "
                         "the program"
                       : "the slow node stalls on fault/diff service before "
                         "this barrier; pre-fetch or re-home its hot pages";
        found.push_back(std::move(f));
      }
    }

    std::sort(found.begin(), found.end(),
              [](const Finding& x, const Finding& y) {
                if (x.severity != y.severity) return x.severity > y.severity;
                if (x.id != y.id) return x.id < y.id;
                return x.window_begin < y.window_begin;
              });
    if (found.size() > kMaxFindings) found.resize(kMaxFindings);
    for (Finding& f : found) out.push_back(std::move(f));
  }
};

}  // namespace

std::unique_ptr<Pass> makeImbalancePass() {
  return std::make_unique<ImbalancePass>();
}

}  // namespace vodsm::obs::passes
