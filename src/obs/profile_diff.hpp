// Differential run analysis: why is run B slower (or faster) than run A?
//
// diffProfiles aligns two persisted RunProfiles by program structure —
// critical-path categories, barrier episodes keyed (barrier, episode),
// pages keyed by page id, wire message classes — and explains the makespan
// delta as ranked Finding records (the Diagnoser's record and ranking
// rules, with differential categories).
//
// The foundation is exact: each profile's critical-path category totals
// partition its makespan to the nanosecond (obs/critical_path.hpp), so the
// per-category deltas partition `makespan_b - makespan_a` exactly — an
// identity diffProfiles asserts and tests pin. Severity is the fraction of
// the *delta* a finding explains (not of either makespan), clamped to
// [0, 1], and the calibration follows the Diagnoser's
// root-cause-over-symptom rule: a detected transfer shift (time moving
// between fault/diff service and grant transfer — the LRC-vs-VC signature)
// outranks the per-category deltas it manifests as, which outrank the
// secondary episode / page / wire attributions.
//
// Pure post-processing over two loaded profiles: deterministic for a given
// pair of inputs, byte-identical text and JSON reports on any host.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/diagnose.hpp"
#include "obs/profile.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

struct DiffReport {
  bool on = false;
  std::string label_a;
  std::string label_b;
  int nprocs_a = 0;
  int nprocs_b = 0;
  sim::Time makespan_a = 0;
  sim::Time makespan_b = 0;
  sim::Time delta = 0;  // makespan_b - makespan_a, exact
  // Critical-path category totals of both runs; (cat_b[c] - cat_a[c]) sums
  // to `delta` exactly.
  sim::Time cat_a[kPathCatCount] = {};
  sim::Time cat_b[kPathCatCount] = {};
  std::vector<Finding> findings;  // ranked like a Diagnosis

  bool enabled() const { return on; }
  const Finding* top() const {
    return findings.empty() ? nullptr : &findings.front();
  }
};

// Aligns `a` (baseline) with `b` (candidate) and ranks the delta findings.
// Both profiles must be enabled; nprocs may differ (a structure finding
// flags it). Asserts the exact-partition invariant on both inputs.
DiffReport diffProfiles(const RunProfile& a, const RunProfile& b);

// Renders the makespan header, the per-category delta table, and the ranked
// findings. Deterministic: fixed precision, no host state.
void printDiffReport(std::ostream& os, const DiffReport& r,
                     const std::string& title);

// Machine-readable report via support::JsonWriter; byte-stable.
void writeDiffReportJson(std::ostream& os, const DiffReport& r);

}  // namespace vodsm::obs
