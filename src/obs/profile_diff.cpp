#include "obs/profile_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>

#include "obs/passes/common.hpp"
#include "support/check.hpp"
#include "support/json_writer.hpp"

namespace vodsm::obs {
namespace {

using passes::clamp01;
using passes::fmtBytes;
using passes::fmtDur;
using passes::fmtPct;

// Calibration. All fractions are of |delta| (the makespan difference being
// explained), mirroring the Diagnoser's severity = fraction-of-makespan
// convention at the differential level.
constexpr double kMinCatFrac = 0.01;     // ignore category deltas below 1%
constexpr double kMinShiftShare = 0.05;  // per-side makespan-share movement
                                         // (5 points) for a transfer shift
constexpr double kServiceWeight = 0.95;  // service categories (cf. hotspot)
constexpr double kWaitWeight = 0.5;      // wait categories are symptoms
constexpr double kShiftedWeight = 0.45;  // categories a shift already claims
constexpr double kEpisodeWeight = 0.9;   // secondary attributions never
constexpr double kPageWeight = 0.9;      // outrank the category they refine
constexpr double kNetWeight = 0.6;
constexpr double kShiftedNetWeight = 0.25;  // wire echo of a detected shift
constexpr double kStructureSeverity = 0.02;
constexpr double kMetricSeverityCap = 0.05;  // cf. passes/memory.cpp
constexpr size_t kMaxEpisodeFindings = 3;
constexpr size_t kMaxPageFindings = 3;

std::string fmtSignedDur(sim::Time d) {
  return (d < 0 ? "-" : "+") + fmtDur(d < 0 ? -d : d);
}

const ProfileMetricRow* findMetric(const RunProfile& p, Metric m) {
  for (const ProfileMetricRow& r : p.metrics)
    if (r.metric == m) return &r;
  return nullptr;
}

sim::Time pageFaultTime(const RunProfile& p, uint64_t page) {
  for (const PageHeatRow& r : p.pages)
    if (r.page == page) return r.fault_time;
  return 0;
}

// Union of the two profiles' page tables with per-page fault-time deltas,
// sorted by |delta| desc then page id — the differential page-heat fold.
std::vector<std::pair<uint64_t, sim::Time>> pageDeltas(const RunProfile& a,
                                                       const RunProfile& b) {
  std::map<uint64_t, sim::Time> delta;
  for (const PageHeatRow& r : b.pages) delta[r.page] += r.fault_time;
  for (const PageHeatRow& r : a.pages) delta[r.page] -= r.fault_time;
  std::vector<std::pair<uint64_t, sim::Time>> out(delta.begin(), delta.end());
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    const sim::Time ax = x.second < 0 ? -x.second : x.second;
    const sim::Time ay = y.second < 0 ? -y.second : y.second;
    if (ax != ay) return ax > ay;
    return x.first < y.first;
  });
  return out;
}

void checkPartition(const RunProfile& p, const char* which) {
  sim::Time sum = 0;
  for (int c = 0; c < kPathCatCount; ++c) sum += p.critpath[c];
  VODSM_CHECK_MSG(sum == p.makespan,
                  std::string("profile ") + which +
                      ": critical-path categories do not sum to the "
                      "makespan — stale or hand-edited profile");
}

}  // namespace

DiffReport diffProfiles(const RunProfile& a, const RunProfile& b) {
  VODSM_CHECK_MSG(a.enabled() && b.enabled(),
                  "diffProfiles needs two enabled profiles");
  checkPartition(a, "A");
  checkPartition(b, "B");

  DiffReport r;
  r.on = true;
  r.label_a = a.label;
  r.label_b = b.label;
  r.nprocs_a = a.nprocs;
  r.nprocs_b = b.nprocs;
  r.makespan_a = a.makespan;
  r.makespan_b = b.makespan;
  r.delta = b.makespan - a.makespan;
  for (int c = 0; c < kPathCatCount; ++c) {
    r.cat_a[c] = a.critpath[c];
    r.cat_b[c] = b.critpath[c];
  }

  const sim::Time denom = std::max<sim::Time>(1, std::llabs(r.delta));
  const double dd = static_cast<double>(denom);
  sim::Time cat_delta[kPathCatCount];
  for (int c = 0; c < kPathCatCount; ++c)
    cat_delta[c] = r.cat_b[c] - r.cat_a[c];

  // Transfer shift: update movement changing protocol point between
  // fault-time diff fetch and grant-time carriage — the LRC_d-vs-VC_sd
  // signature. Absolute times shrink together when one run is uniformly
  // faster, so the detector looks at makespan *shares*: the fault/diff side
  // and the grant side each moved at least kMinShiftShare of their run's
  // makespan, in opposite directions. The finding's severity is the
  // fraction of the delta the whole transfer chain (fault + grant transfer
  // + diff creation) accounts for — the root cause the discounted
  // per-category, page, and wire findings below are symptoms of.
  const sim::Time ft = cat_delta[static_cast<int>(PathCat::kFault)];
  const sim::Time gt = cat_delta[static_cast<int>(PathCat::kGrantTransfer)];
  const sim::Time dc = cat_delta[static_cast<int>(PathCat::kDiffCreate)];
  auto share = [](sim::Time part, sim::Time whole) {
    return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                     : 0.0;
  };
  const double fault_shift =
      share(r.cat_b[static_cast<int>(PathCat::kFault)] +
                r.cat_b[static_cast<int>(PathCat::kDiffCreate)],
            b.makespan) -
      share(r.cat_a[static_cast<int>(PathCat::kFault)] +
                r.cat_a[static_cast<int>(PathCat::kDiffCreate)],
            a.makespan);
  const double grant_shift =
      share(r.cat_b[static_cast<int>(PathCat::kGrantTransfer)], b.makespan) -
      share(r.cat_a[static_cast<int>(PathCat::kGrantTransfer)], a.makespan);
  const bool shift =
      (fault_shift > 0) != (grant_shift > 0) &&
      std::min(std::abs(fault_shift), std::abs(grant_shift)) >=
          kMinShiftShare;
  if (shift) {
    const double chain = static_cast<double>(std::llabs(ft) + std::llabs(gt) +
                                             std::llabs(dc));
    Finding f;
    f.cat = FindingCat::kTransferShift;
    f.severity = clamp01(chain / dd);
    f.location = "critical path: fault/diff <-> grant_transfer";
    f.evidence =
        "update transfer changed protocol point: fault/diff service is " +
        fmtPct(std::abs(fault_shift)) + " of the makespan " +
        (fault_shift < 0 ? "smaller" : "larger") +
        " in B while grant transfer is " + fmtPct(std::abs(grant_shift)) +
        " " + (grant_shift < 0 ? "smaller" : "larger") +
        "; critical-path deltas: fault " + fmtSignedDur(ft) +
        ", grant transfer " + fmtSignedDur(gt) + ", diff creation " +
        fmtSignedDur(dc);
    f.remedy =
        "the runs ship the same updates at different protocol points "
        "(fault-time diff fetch vs grant-time carriage); compare their "
        "diff_request/diff_reply and grant wire volumes before crediting "
        "either side";
    r.findings.push_back(std::move(f));
  }

  // Per-category critical-path deltas: the exact partition of the makespan
  // difference. Waits are discounted as symptoms (cf. passes/hotspot.cpp),
  // and the categories a detected shift already explains are discounted
  // below the shift finding (root cause over symptom).
  for (int c = 0; c < kPathCatCount; ++c) {
    const sim::Time d = cat_delta[c];
    if (static_cast<double>(std::llabs(d)) < dd * kMinCatFrac) continue;
    const PathCat cat = static_cast<PathCat>(c);
    double weight = kServiceWeight;
    if (cat == PathCat::kCompute) weight = 1.0;
    if (cat == PathCat::kAcquireWait || cat == PathCat::kBarrierWait)
      weight = kWaitWeight;
    if (shift && (cat == PathCat::kFault || cat == PathCat::kGrantTransfer ||
                  cat == PathCat::kDiffCreate))
      weight = kShiftedWeight;
    Finding f;
    f.cat = FindingCat::kPathDelta;
    f.severity = weight * clamp01(static_cast<double>(std::llabs(d)) / dd);
    f.location = std::string("critical path: ") + kPathCatName[c];
    f.id = c;
    f.evidence = std::string(kPathCatName[c]) + " " + fmtDur(r.cat_a[c]) +
                 " in A vs " + fmtDur(r.cat_b[c]) + " in B (" +
                 fmtSignedDur(d) + ", " +
                 fmtPct(static_cast<double>(std::llabs(d)) / dd) +
                 " of the makespan delta)";
    f.remedy = d > 0 ? "B spends more critical-path time here; drill into "
                       "this category's slices on B's single-run report"
                     : "B spends less critical-path time here; this "
                       "category is where B wins";
    r.findings.push_back(std::move(f));
  }

  // Barrier-episode alignment: same (barrier, episode) key in both runs,
  // delta of the imbalance gap (slowest minus next-slowest arrival).
  const auto pages = pageDeltas(a, b);
  {
    std::map<std::pair<uint64_t, uint32_t>, const ProfileEpisode*> in_a;
    for (const ProfileEpisode& e : a.episodes)
      in_a[{e.barrier, e.episode}] = &e;
    std::vector<Finding> eps;
    for (const ProfileEpisode& eb : b.episodes) {
      auto it = in_a.find({eb.barrier, eb.episode});
      if (it == in_a.end()) continue;
      const ProfileEpisode& ea = *it->second;
      const sim::Time gd = eb.gap() - ea.gap();
      if (static_cast<double>(std::llabs(gd)) < dd * kMinCatFrac) continue;
      Finding f;
      f.cat = FindingCat::kEpisodeDelta;
      f.severity =
          kEpisodeWeight * clamp01(static_cast<double>(std::llabs(gd)) / dd);
      f.location = "barrier " + std::to_string(eb.barrier) + " episode " +
                   std::to_string(eb.episode);
      f.id = static_cast<int64_t>(eb.barrier);
      f.node = eb.slow_node;
      f.evidence = "imbalance gap " + fmtDur(ea.gap()) + " in A (node " +
                   std::to_string(ea.slow_node) + ") vs " + fmtDur(eb.gap()) +
                   " in B (node " + std::to_string(eb.slow_node) + "), " +
                   fmtSignedDur(gd);
      if (!pages.empty() && pages.front().second != 0) {
        f.evidence += "; run-wide page fault-time deltas: ";
        size_t shown = 0;
        for (const auto& [page, pdt] : pages) {
          if (pdt == 0 || shown == 2) break;
          if (shown) f.evidence += ", ";
          f.evidence +=
              "page " + std::to_string(page) + " " + fmtSignedDur(pdt);
          ++shown;
        }
      }
      f.remedy = gd > 0 ? "this phase got more imbalanced in B; check what "
                          "the slow node stalls on before this barrier"
                        : "this phase is better balanced in B";
      eps.push_back(std::move(f));
    }
    std::sort(eps.begin(), eps.end(), [](const Finding& x, const Finding& y) {
      if (x.severity != y.severity) return x.severity > y.severity;
      if (x.id != y.id) return x.id < y.id;
      return x.location < y.location;
    });
    if (eps.size() > kMaxEpisodeFindings) eps.resize(kMaxEpisodeFindings);
    for (Finding& f : eps) r.findings.push_back(std::move(f));
  }

  // Page-heat alignment: fault-time delta per page over the union of both
  // page tables. A localization of the fault-side category delta, so it is
  // discounted like that category when a shift already claims it.
  {
    const double page_weight = shift ? kShiftedWeight : kPageWeight;
    size_t emitted = 0;
    for (const auto& [page, pdt] : pages) {
      if (emitted == kMaxPageFindings) break;
      if (static_cast<double>(std::llabs(pdt)) < dd * kMinCatFrac) break;
      Finding f;
      f.cat = FindingCat::kPageDelta;
      f.severity =
          page_weight * clamp01(static_cast<double>(std::llabs(pdt)) / dd);
      f.location = "page " + std::to_string(page);
      f.id = static_cast<int64_t>(page);
      f.evidence = "fault time " + fmtDur(pageFaultTime(a, page)) +
                   " in A vs " + fmtDur(pageFaultTime(b, page)) + " in B (" +
                   fmtSignedDur(pdt) + ")";
      f.remedy = pdt > 0 ? "B faults longer on this page; check its sharer "
                           "and writer sets for new false sharing"
                         : "B resolves this page's faults faster";
      r.findings.push_back(std::move(f));
      ++emitted;
    }
  }

  // Wire-level delta: uplink serialization time (the transport's own view
  // of how much longer the wire was busy), with per-class volume evidence.
  const ProfileMetricRow* ua = findMetric(a, Metric::kUplinkBusyNs);
  const ProfileMetricRow* ub = findMetric(b, Metric::kUplinkBusyNs);
  if (ua && ub) {
    const sim::Time ud = ub->final_total - ua->final_total;
    if (static_cast<double>(std::llabs(ud)) >= dd * kMinCatFrac) {
      Finding f;
      f.cat = FindingCat::kNetDelta;
      // The wire's busy-time delta is itself an echo of a detected transfer
      // shift (the same bytes moved to another message class), so it is
      // discounted harder than the time attributions when one fired.
      f.severity = (shift ? kShiftedNetWeight : kNetWeight) *
                   clamp01(static_cast<double>(std::llabs(ud)) / dd);
      f.location = "wire: uplink busy time";
      f.evidence = "summed uplink serialization " + fmtDur(ua->final_total) +
                   " in A vs " + fmtDur(ub->final_total) + " in B (" +
                   fmtSignedDur(ud) + ")";
      if (a.has_net && b.has_net) {
        std::vector<std::pair<int64_t, int>> by_class;
        for (int c = 0; c < kProfileClassCount; ++c) {
          const int64_t pd =
              static_cast<int64_t>(b.classes[c].payload_bytes) -
              static_cast<int64_t>(a.classes[c].payload_bytes);
          if (pd != 0) by_class.push_back({pd, c});
        }
        std::sort(by_class.begin(), by_class.end(),
                  [](const auto& x, const auto& y) {
                    const int64_t ax = std::llabs(x.first);
                    const int64_t ay = std::llabs(y.first);
                    if (ax != ay) return ax > ay;
                    return x.second < y.second;
                  });
        if (by_class.size() > 3) by_class.resize(3);
        for (size_t i = 0; i < by_class.size(); ++i) {
          f.evidence += i == 0 ? "; payload deltas: " : ", ";
          const int c = by_class[i].second;
          f.evidence += std::string(kProfileClassName[c]) +
                        (by_class[i].first < 0 ? " -" : " +") +
                        fmtBytes(std::llabs(by_class[i].first));
        }
      }
      f.remedy = ud > 0 ? "B pushes more bytes (or the same bytes in more "
                          "serialized turns); the class deltas say which "
                          "message type grew"
                        : "B keeps the wire less busy";
      r.findings.push_back(std::move(f));
    }
  }

  // Protocol-memory delta: diff-store peak growth, capped like the
  // single-run memory pass so a memory observation never outranks a time
  // attribution.
  const ProfileMetricRow* ma = findMetric(a, Metric::kDiffStoreBytes);
  const ProfileMetricRow* mb = findMetric(b, Metric::kDiffStoreBytes);
  if (ma && mb && mb->peak > 2 * ma->peak && mb->peak >= 64 * 1024) {
    const double growth =
        static_cast<double>(mb->peak - ma->peak) /
        static_cast<double>(std::max<int64_t>(mb->peak, 1));
    Finding f;
    f.cat = FindingCat::kMetricDelta;
    f.severity = kMetricSeverityCap * clamp01(growth);
    f.location = "metric: dsm.diff_store_bytes peak";
    f.evidence = "peak retained diff store " + fmtBytes(ma->peak) +
                 " in A vs " + fmtBytes(mb->peak) + " in B";
    f.remedy =
        "B retains a much larger diff log; check home GC effectiveness "
        "and write-notice fan-out";
    r.findings.push_back(std::move(f));
  }

  // Structure mismatch: the runs are not the same program shape, so the
  // alignments above are partial. Low fixed severity — a caveat, not a
  // cause.
  if (a.nprocs != b.nprocs || a.episodes_total != b.episodes_total) {
    Finding f;
    f.cat = FindingCat::kStructureDelta;
    f.severity = kStructureSeverity;
    f.location = "program structure";
    f.evidence = "A has " + std::to_string(a.nprocs) + " nodes / " +
                 std::to_string(a.episodes_total) +
                 " barrier episodes, B has " + std::to_string(b.nprocs) +
                 " nodes / " + std::to_string(b.episodes_total) +
                 "; unmatched episodes are not compared";
    f.remedy =
        "the runs differ structurally; prefer comparing runs of the same "
        "program at the same scale";
    r.findings.push_back(std::move(f));
  }

  for (Finding& f : r.findings)
    f.severity = std::clamp(f.severity, 0.0, 1.0);
  // The Diagnoser's ranking: severity desc, then category (root causes
  // enumerate before symptoms), then location — a deterministic total order.
  std::sort(r.findings.begin(), r.findings.end(),
            [](const Finding& x, const Finding& y) {
              if (x.severity != y.severity) return x.severity > y.severity;
              if (x.cat != y.cat) return x.cat < y.cat;
              if (x.location != y.location) return x.location < y.location;
              if (x.node != y.node) return x.node < y.node;
              return x.id < y.id;
            });
  return r;
}

namespace {

std::string fmtSecs6(sim::Time t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << sim::toSeconds(t);
  return os.str();
}

std::string fmtSeverity(double sev) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << std::setw(5) << sev * 100.0;
  return os.str();
}

}  // namespace

void printDiffReport(std::ostream& os, const DiffReport& r,
                     const std::string& title) {
  os << "\n" << title << "\n";
  os << "A: " << r.label_a << " — makespan " << fmtSecs6(r.makespan_a)
     << " s over " << r.nprocs_a << " nodes\n";
  os << "B: " << r.label_b << " — makespan " << fmtSecs6(r.makespan_b)
     << " s over " << r.nprocs_b << " nodes\n";
  os << "delta: " << (r.delta < 0 ? "-" : "+")
     << fmtSecs6(r.delta < 0 ? -r.delta : r.delta) << " s (B is ";
  if (r.makespan_a > 0) {
    std::ostringstream pct;
    pct << std::fixed << std::setprecision(1)
        << std::abs(static_cast<double>(r.delta)) /
               static_cast<double>(r.makespan_a) * 100.0;
    os << pct.str() << "% " << (r.delta <= 0 ? "faster" : "slower")
       << " than A)\n";
  } else {
    os << "incomparable)\n";
  }

  os << "\ncritical path (seconds)\n";
  os << "  category                 A           B       delta\n";
  for (int c = 0; c < kPathCatCount; ++c) {
    const sim::Time d = r.cat_b[c] - r.cat_a[c];
    os << "  " << std::left << std::setw(16) << kPathCatName[c] << std::right
       << std::setw(12) << fmtSecs6(r.cat_a[c]) << std::setw(12)
       << fmtSecs6(r.cat_b[c]) << std::setw(12)
       << ((d < 0 ? "-" : "+") + fmtSecs6(d < 0 ? -d : d)) << "\n";
  }
  os << "  " << std::left << std::setw(16) << "total" << std::right
     << std::setw(12) << fmtSecs6(r.makespan_a) << std::setw(12)
     << fmtSecs6(r.makespan_b) << std::setw(12)
     << ((r.delta < 0 ? "-" : "+") +
         fmtSecs6(r.delta < 0 ? -r.delta : r.delta))
     << "\n";

  os << "\n" << r.findings.size()
     << (r.findings.size() == 1 ? " finding" : " findings") << "\n";
  if (r.findings.empty()) {
    os << "no significant delta pattern; the runs look equivalent\n";
    return;
  }
  int rank = 0;
  for (const Finding& f : r.findings) {
    os << "#" << ++rank << " [" << fmtSeverity(f.severity) << "%] "
       << findingCatName(f.cat) << ": " << f.location << "\n";
    os << "    evidence: " << f.evidence << "\n";
    os << "    remedy:   " << f.remedy << "\n";
  }
}

void writeDiffReportJson(std::ostream& os, const DiffReport& r) {
  support::JsonWriter w(os);
  w.beginObject();
  w.key("report").value("vodsm_diff_report");
  w.key("version").value(1);
  w.key("label_a").value(r.label_a);
  w.key("label_b").value(r.label_b);
  w.key("nprocs_a").value(r.nprocs_a);
  w.key("nprocs_b").value(r.nprocs_b);
  w.key("makespan_a_ns").value(static_cast<long long>(r.makespan_a));
  w.key("makespan_b_ns").value(static_cast<long long>(r.makespan_b));
  w.key("delta_ns").value(static_cast<long long>(r.delta));
  w.key("critpath_delta_ns").beginObject();
  for (int c = 0; c < kPathCatCount; ++c)
    w.key(kPathCatName[c])
        .value(static_cast<long long>(r.cat_b[c] - r.cat_a[c]));
  w.endObject();
  w.key("findings").beginArray();
  int rank = 0;
  for (const Finding& f : r.findings) {
    w.beginObject();
    w.key("rank").value(++rank);
    w.key("category").value(findingCatName(f.cat));
    w.key("severity").value(f.severity, "%.6f");
    w.key("location").value(f.location);
    w.key("node").value(static_cast<long long>(f.node));
    w.key("id").value(static_cast<long long>(f.id));
    w.key("evidence").value(f.evidence);
    w.key("remedy").value(f.remedy);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << "\n";
}

}  // namespace vodsm::obs
