#include "obs/graph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace vodsm::obs {

namespace {

// (id, node) composite key for grant matching and per-node wait lists.
using IdNode = std::pair<uint64_t, uint32_t>;

}  // namespace

const Flow* EventGraph::flowOf(uint64_t corr) const {
  auto it = std::lower_bound(
      flows.begin(), flows.end(), corr,
      [](const Flow& f, uint64_t c) { return f.corr < c; });
  if (it == flows.end() || it->corr != corr) return nullptr;
  return &*it;
}

EventGraph buildEventGraph(const TraceRecorder& trace, int nprocs) {
  EventGraph g;
  g.nodes.resize(static_cast<size_t>(nprocs));
  const std::vector<Event>& ev = trace.events();

  // Pass 1: per-node timelines (waits + local spans), flows, and the raw
  // producer-side instants (grants, folds) for pass 2's edge matching.
  // std::map keys keep every derived order deterministic.
  std::map<IdNode, std::vector<int64_t>> grants;  // (id, requester) -> events
  std::map<uint64_t, std::vector<int64_t>> folds;  // barrier -> fold events
  std::map<IdNode, sim::Time> open;  // (cat, node) -> open begin ts
  std::map<uint64_t, Flow> flows;

  auto openKey = [](Cat c, uint32_t node) {
    return IdNode{static_cast<uint64_t>(c), node};
  };

  for (size_t i = 0; i < ev.size(); ++i) {
    const Event& e = ev[i];
    if (e.node == kEngineNode) continue;
    switch (e.cat) {
      case Cat::kProgram:
        if (e.phase == Phase::kEnd && e.node < g.nodes.size())
          g.nodes[e.node].program_end = e.ts;
        break;
      case Cat::kAcquireWait:
      case Cat::kBarrierWait: {
        if (e.node >= g.nodes.size()) break;
        if (e.phase == Phase::kBegin) {
          open[openKey(e.cat, e.node)] = e.ts;
        } else if (e.phase == Phase::kEnd) {
          auto it = open.find(openKey(e.cat, e.node));
          if (it == open.end()) {
            g.unmatched_spans++;
            break;
          }
          g.nodes[e.node].waits.push_back({it->second, e.ts, e.cat, e.a0, -1});
          open.erase(it);
        }
        break;
      }
      case Cat::kFault:
      case Cat::kDiffCreate: {
        if (e.node >= g.nodes.size()) break;
        if (e.phase == Phase::kBegin) {
          open[openKey(e.cat, e.node)] = e.ts;
        } else if (e.phase == Phase::kEnd) {
          auto it = open.find(openKey(e.cat, e.node));
          if (it == open.end()) {
            g.unmatched_spans++;
            break;
          }
          // kFault carries the page in a0 on both phases; kDiffCreate's end
          // args are (pages, bytes), which are not an identity — use 0.
          const uint64_t id = e.cat == Cat::kFault ? e.a0 : 0;
          g.nodes[e.node].spans.push_back({it->second, e.ts, e.cat, id});
          open.erase(it);
        }
        break;
      }
      case Cat::kGrant:
        // a0 = lock/view id, a1 = requester (recorded on the granting node).
        grants[{e.a0, static_cast<uint32_t>(e.a1)}].push_back(
            static_cast<int64_t>(i));
        break;
      case Cat::kBarrFold:
        folds[e.a0].push_back(static_cast<int64_t>(i));
        break;
      case Cat::kSend:
      case Cat::kDeliver:
      case Cat::kRetransmit:
      case Cat::kDrop: {
        if (e.corr == kNoCorr) break;
        Flow& f = flows[e.corr];
        f.corr = e.corr;
        if (e.cat == Cat::kSend) {
          if (f.send < 0) f.send = static_cast<int64_t>(i);
        } else if (e.cat == Cat::kDeliver) {
          if (f.deliver < 0) f.deliver = static_cast<int64_t>(i);
        } else if (e.cat == Cat::kRetransmit) {
          f.retransmits++;
        } else {
          f.drops++;
        }
        break;
      }
      default:
        break;
    }
  }
  g.unmatched_spans += open.size();

  // Sort timelines. Waits are recorded at their end timestamps in engine
  // order, but sort defensively so hand-crafted traces work too.
  for (NodeTimeline& tl : g.nodes) {
    std::stable_sort(tl.waits.begin(), tl.waits.end(),
                     [](const Wait& a, const Wait& b) {
                       return a.end != b.end ? a.end < b.end
                                             : a.begin < b.begin;
                     });
    std::stable_sort(tl.spans.begin(), tl.spans.end(),
                     [](const LocalSpan& a, const LocalSpan& b) {
                       return a.begin != b.begin ? a.begin < b.begin
                                                 : a.end < b.end;
                     });
  }
  // Per-(id, node) wait index lists in sorted (end-time) order, the order
  // edge matching pairs against.
  std::map<IdNode, std::vector<size_t>> acq_waits;
  std::map<IdNode, std::vector<size_t>> barr_waits;
  for (uint32_t n = 0; n < g.nodes.size(); ++n) {
    NodeTimeline& tl = g.nodes[n];
    for (size_t w = 0; w < tl.waits.size(); ++w) {
      auto& list =
          (tl.waits[w].cat == Cat::kAcquireWait ? acq_waits : barr_waits);
      list[{tl.waits[w].id, n}].push_back(w);
    }
  }

  // Pass 2a: grant wakeup edges. Grants for one (id, requester) pair are
  // already in recording order; sort by timestamp for safety and pair the
  // j-th grant with the requester's j-th wait on that id.
  for (auto& [key, list] : grants) {
    std::stable_sort(list.begin(), list.end(), [&](int64_t a, int64_t b) {
      return ev[static_cast<size_t>(a)].ts < ev[static_cast<size_t>(b)].ts;
    });
    auto it = acq_waits.find(key);
    if (it == acq_waits.end()) continue;
    const std::vector<size_t>& waits = it->second;
    for (size_t j = 0; j < waits.size() && j < list.size(); ++j) {
      Wait& w = g.nodes[key.second].waits[waits[j]];
      const Event& trig = ev[static_cast<size_t>(list[j])];
      w.trigger = list[j];
      w.trigger_node = trig.node;
      w.trigger_ts = trig.ts;
    }
  }

  // Pass 2b: barrier wakeup edges. Fold instants for one barrier arrive in
  // episodes of nprocs; the episode's last fold released every waiter of
  // that episode, and a node's j-th wait on the barrier belongs to episode j.
  for (auto& [barrier, list] : folds) {
    std::stable_sort(list.begin(), list.end(), [&](int64_t a, int64_t b) {
      return ev[static_cast<size_t>(a)].ts < ev[static_cast<size_t>(b)].ts;
    });
    for (uint32_t n = 0; n < g.nodes.size(); ++n) {
      auto it = barr_waits.find({barrier, n});
      if (it == barr_waits.end()) continue;
      const std::vector<size_t>& waits = it->second;
      for (size_t j = 0; j < waits.size(); ++j) {
        const size_t release = (j + 1) * static_cast<size_t>(nprocs) - 1;
        if (release >= list.size()) continue;
        Wait& w = g.nodes[n].waits[waits[j]];
        const Event& trig = ev[static_cast<size_t>(list[release])];
        w.trigger = list[release];
        w.trigger_node = trig.node;
        w.trigger_ts = trig.ts;
      }
    }
  }

  for (const NodeTimeline& tl : g.nodes)
    for (const Wait& w : tl.waits)
      if (w.trigger < 0) g.waits_without_trigger++;

  g.flows.reserve(flows.size());
  for (auto& [corr, f] : flows) {
    if (f.deliver >= 0 && f.send < 0) g.delivers_without_send++;
    g.flows.push_back(f);
  }
  return g;
}

}  // namespace vodsm::obs
