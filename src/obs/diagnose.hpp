// Automated "why is this run slow" diagnosis over the observability stack.
//
// A Diagnoser runs a catalog of composable analysis passes (PerFlow-style)
// over the artifacts the obs layer already reconstructs — the run DAG
// (obs/graph.hpp), the exact critical path, the five-bucket breakdown, the
// page-heat fold, and the metrics summary — and emits ranked Finding
// records: what pattern was detected, how much of the makespan it explains,
// where it lives (node / link / id / barrier episode / time window), the
// evidence behind the claim, and a remediation hint.
//
// Contracts, asserted in tests/test_diagnose.cpp:
//  * Pure post-processing: diagnosing a run never touches simulated state,
//    so a diagnosed run is bit-identical to an undiagnosed one.
//  * Deterministic output: every pass iterates ordered containers and the
//    final ranking breaks severity ties by category then location, so the
//    text and JSON reports are byte-identical across --jobs and
//    --sim-threads values.
//  * Root causes outrank symptoms: on an injected-fault run the top-ranked
//    finding names the injected fault class and its location. Detector
//    severities are calibrated for this — e.g. the hotspot summarizer
//    scores compute slices by their *excess* over a uniform share so a
//    straggler's own compute never outranks the straggler finding.
//
// Layering: vodsm_obs sits below net and dsm, so passes that need
// network-config or message-class knowledge receive it through the plain
// std::function hooks on DiagnosisInput (wired by the vopp layer); null
// hooks degrade those detectors gracefully instead of breaking the build
// layering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

// Finding categories. Enum order is the ranking tie-break (lower wins), so
// injected-fault root causes come before generic communication patterns,
// which come before the catch-all critical-path hotspot.
enum class FindingCat : uint8_t {
  kPartition = 0,
  kStraggler,
  kDegradedLink,
  kRetransmitStorm,
  // A multi-switch trunk link whose serialization kept it busy for a large
  // fraction of the run (passes/trunk.cpp; star topologies have no trunks).
  kTrunkSaturation,
  kGrantStorm,
  kAllToAllDiff,
  kLoadImbalance,
  kDiffStoreGrowth,
  kHotspot,
  // Page-granular refinement of a barrier-imbalance finding: which pages
  // the slow node was stalled on inside the gap (passes/page_imbalance.cpp).
  kPageImbalance,
  // Differential categories, emitted only by obs::diffProfiles
  // (profile_diff.hpp) when explaining the makespan delta between two run
  // profiles — never by the single-run passes. Order encodes the same
  // root-cause-over-symptom rule: a detected transfer shift outranks the
  // per-category deltas it manifests as, which outrank the secondary
  // episode/page/wire attributions.
  kTransferShift,
  kPathDelta,
  kEpisodeDelta,
  kPageDelta,
  kNetDelta,
  kMetricDelta,
  kStructureDelta,
  kFindingCatCount,
};
inline constexpr int kFindingCatCount =
    static_cast<int>(FindingCat::kFindingCatCount);
inline constexpr const char* kFindingCatName[kFindingCatCount] = {
    "partition",       "straggler",
    "degraded_link",   "retransmission_storm",
    "trunk_saturation", "grant_storm",
    "all_to_all_diff", "load_imbalance",
    "diff_store_growth", "critical_path_hotspot",
    "page_imbalance",
    "transfer_shift",  "critical_path_delta",
    "episode_delta",   "page_heat_delta",
    "net_delta",       "metric_delta",
    "structure_delta",
};

inline const char* findingCatName(FindingCat c) {
  return kFindingCatName[static_cast<int>(c)];
}

// One scored diagnosis record. `severity` is the fraction of the run's
// makespan the detected pattern explains, clamped to [0, 1]; machine
// location fields are -1 when not applicable.
struct Finding {
  FindingCat cat = FindingCat::kHotspot;
  double severity = 0;          // fraction of makespan explained
  std::string location;         // human-readable: node / link / id / window
  int64_t node = -1;            // machine location: node id
  int64_t id = -1;              // machine location: page/lock/view/barrier
  sim::Time window_begin = -1;  // machine location: time window
  sim::Time window_end = -1;
  std::string evidence;  // why the detector believes this
  std::string remedy;    // what to try about it
};

struct Diagnosis {
  bool on = false;
  sim::Time makespan = 0;
  int nprocs = 0;
  std::vector<Finding> findings;  // ranked: severity desc, cat, location

  bool enabled() const { return on; }
  const Finding* top() const {
    return findings.empty() ? nullptr : &findings.front();
  }
};

// Wire message classes, mirroring net::MsgClass order so the vopp layer can
// wire `DiagnosisInput::classify` with a plain cast (asserted where wired).
enum class WireClass : uint8_t {
  kAcquire = 0,
  kGrant,
  kRelease,
  kDiffRequest,
  kDiffReply,
  kBarrier,
  kData,
  kOther,
};

// One inter-switch trunk's utilization, mirrored from
// net::Network::TrunkUse by the vopp layer (obs sits below net, so this is
// a plain copy, not a dependency). Empty on single-switch topologies.
struct TrunkUtilization {
  int leaf = 0;
  int spine = 0;
  bool up = false;  // leaf -> spine direction (false: spine -> leaf)
  uint64_t frames = 0;
  uint64_t wire_bytes = 0;
  sim::Time busy = 0;  // total serialization time on the trunk
};

// Everything a pass may consume. `trace` and `graph` are required; the
// analysis folds are optional (null disables the passes that need them).
struct DiagnosisInput {
  const TraceRecorder* trace = nullptr;
  const EventGraph* graph = nullptr;
  const CriticalPath* critpath = nullptr;
  const Breakdown* breakdown = nullptr;
  const PageHeat* pageheat = nullptr;
  const MetricsSummary* metrics = nullptr;
  int nprocs = 0;
  sim::Time finish = 0;
  // Classifies a kSend event's a0 (wire message type) into a WireClass.
  std::function<WireClass(uint64_t)> classify;
  // Undegraded serialization time of a frame of `bytes` total bytes
  // (net::NetConfig::txTime on the run's config).
  std::function<sim::Time(uint64_t)> tx_time;
  // Multi-switch trunk utilization (empty on the star).
  std::vector<TrunkUtilization> trunks;
};

// One analysis pass: reads the input, appends zero or more findings.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void run(const DiagnosisInput& in,
                   std::vector<Finding>& out) const = 0;
};

// Runs a pass catalog and ranks the merged findings. Constructed with the
// default catalog (see src/obs/passes/); addPass() appends custom passes.
class Diagnoser {
 public:
  Diagnoser();  // default catalog
  explicit Diagnoser(bool with_default_catalog);

  void addPass(std::unique_ptr<Pass> pass);
  size_t passCount() const { return passes_.size(); }

  Diagnosis run(const DiagnosisInput& in) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Convenience entry point: builds graph, critical path, breakdown, and page
// heat from the trace, then runs the default catalog. `metrics` may be
// null; `classify` / `tx_time` may be empty (see DiagnosisInput).
Diagnosis diagnose(const TraceRecorder& trace, int nprocs, sim::Time finish,
                   const MetricsSummary* metrics = nullptr,
                   std::function<WireClass(uint64_t)> classify = {},
                   std::function<sim::Time(uint64_t)> tx_time = {},
                   std::vector<TrunkUtilization> trunks = {});

// Renders the ranked findings as a fixed-width report with evidence and
// remediation lines. Deterministic: fixed precision, no host state.
void printDiagnosis(std::ostream& os, const Diagnosis& d,
                    const std::string& title);

// Machine-readable report. Hand-written fixed-precision JSON (the support
// Json class is a parser, not a writer); parses back via support/json.hpp.
void writeDiagnosisJson(std::ostream& os, const Diagnosis& d);

}  // namespace vodsm::obs
