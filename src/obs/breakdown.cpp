#include "obs/breakdown.hpp"

#include <string>
#include <unordered_map>

#include "support/check.hpp"
#include "support/table.hpp"

namespace vodsm::obs {

namespace {

// Spans of one category never self-nest on a node, so one open-begin slot
// per (node, category) is enough to match ends to begins.
uint64_t slotKey(uint32_t node, Cat c) {
  return (static_cast<uint64_t>(node) << 8) | static_cast<uint64_t>(c);
}

sim::Time* bucketOf(BucketSet& b, Cat c) {
  switch (c) {
    case Cat::kBarrierWait: return &b.barrier_wait;
    case Cat::kAcquireWait: return &b.acquire_wait;
    case Cat::kFault:
    case Cat::kDiffCreate: return &b.fault_diff;
    default: return nullptr;
  }
}

}  // namespace

Breakdown foldBreakdown(const TraceRecorder& trace, int nprocs,
                        sim::Time finish) {
  Breakdown out;
  out.run_time = finish;
  out.nodes.resize(static_cast<size_t>(nprocs));
  std::vector<sim::Time> node_end(static_cast<size_t>(nprocs), finish);
  std::unordered_map<uint64_t, sim::Time> open;

  for (const Event& e : trace.events()) {
    if (e.node == kEngineNode || e.node >= static_cast<uint32_t>(nprocs))
      continue;
    if (e.cat == Cat::kProgram) {
      if (e.phase == Phase::kEnd) node_end[e.node] = e.ts;
      continue;
    }
    BucketSet& b = out.nodes[e.node];
    sim::Time* bucket = bucketOf(b, e.cat);
    if (!bucket) continue;
    if (e.phase == Phase::kBegin) {
      open[slotKey(e.node, e.cat)] = e.ts;
    } else if (e.phase == Phase::kEnd) {
      auto it = open.find(slotKey(e.node, e.cat));
      VODSM_CHECK_MSG(it != open.end(), "trace span end without begin (node "
                                            << e.node << ")");
      VODSM_CHECK_MSG(e.ts >= it->second, "trace span ends before it begins");
      *bucket += e.ts - it->second;
      open.erase(it);
    }
  }
  VODSM_CHECK_MSG(open.empty(), "trace has " << open.size()
                                             << " unterminated spans");

  for (int n = 0; n < nprocs; ++n) {
    BucketSet& b = out.nodes[static_cast<size_t>(n)];
    const sim::Time end = node_end[static_cast<size_t>(n)];
    b.idle = finish - end;
    b.compute = end - b.barrier_wait - b.acquire_wait - b.fault_diff;
    out.aggregate.add(b);
  }
  return out;
}

namespace {

std::string cell(sim::Time t, sim::Time total) {
  std::string secs = TextTable::format(sim::toSeconds(t));
  double pct = total > 0 ? 100.0 * static_cast<double>(t) /
                               static_cast<double>(total)
                         : 0.0;
  return secs + " (" + TextTable::format(pct) + "%)";
}

}  // namespace

void printBreakdown(std::ostream& os, const Breakdown& b,
                    const std::string& title) {
  os << "\n" << title << "\n";
  TextTable t;
  t.header({"node", "compute", "barrier wait", "acquire wait", "fault+diff",
            "idle", "total (s)"});
  auto row = [&](const std::string& label, const BucketSet& s,
                 sim::Time total) {
    t.row({label, cell(s.compute, total), cell(s.barrier_wait, total),
           cell(s.acquire_wait, total), cell(s.fault_diff, total),
           cell(s.idle, total), TextTable::format(sim::toSeconds(total))});
  };
  for (size_t n = 0; n < b.nodes.size(); ++n)
    row(std::to_string(n), b.nodes[n], b.run_time);
  row("all", b.aggregate,
      b.run_time * static_cast<sim::Time>(b.nodes.size()));
  t.print(os);
}

}  // namespace vodsm::obs
