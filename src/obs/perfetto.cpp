#include "obs/perfetto.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <vector>

namespace vodsm::obs {

namespace {

const char* trackName(Track t) {
  switch (t) {
    case Track::kApp: return "app";
    case Track::kProto: return "proto";
    case Track::kNet: return "net";
  }
  return "?";
}

char phaseChar(Phase p) {
  switch (p) {
    case Phase::kBegin: return 'B';
    case Phase::kEnd: return 'E';
    case Phase::kInstant: return 'i';
  }
  return '?';
}

}  // namespace

void writeChromeTrace(std::ostream& os, const TraceRecorder& trace,
                      const MetricsRegistry* metrics) {
  const auto& events = trace.events();

  // One process per node plus one for the engine pseudo-node; pids are the
  // node ids, the engine gets the first unused one.
  uint32_t max_node = 0;
  for (const Event& e : events)
    if (e.node != kEngineNode) max_node = std::max(max_node, e.node);
  const uint32_t engine_pid = max_node + 1;

  // Stable (ts, recording order) sort: begins precede their ends at equal
  // timestamps because they were recorded first.
  std::vector<uint32_t> order(events.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return events[a].ts < events[b].ts;
  });

  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const char* line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };
  char buf[320];

  std::vector<bool> named(static_cast<size_t>(engine_pid) + 1, false);
  for (const Event& e : events) {
    const uint32_t pid = e.node == kEngineNode ? engine_pid : e.node;
    if (named[pid]) continue;
    named[pid] = true;
    if (pid == engine_pid)
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                    ",\"args\":{\"name\":\"sim engine\"}}",
                    pid);
    else
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                    ",\"args\":{\"name\":\"node %" PRIu32 "\"}}",
                    pid, pid);
    emit(buf);
    for (int t = 0; t < kTrackCount; ++t) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                    ",\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                    pid, t, trackName(static_cast<Track>(t)));
      emit(buf);
    }
  }

  for (uint32_t idx : order) {
    const Event& e = events[idx];
    const CatInfo& info = catInfo(e.cat);
    const uint32_t pid = e.node == kEngineNode ? engine_pid : e.node;
    const double ts_us = static_cast<double>(e.ts) / 1000.0;
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%" PRIu32
        ",\"tid\":%d,\"ts\":%.3f",
        info.name, trackName(e.track), phaseChar(e.phase), pid,
        static_cast<int>(e.track), ts_us);
    if (e.phase == Phase::kInstant)
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                         ",\"s\":\"t\"");
    // Flow binding: net-track events sharing a wire correlation id are
    // connected with arrows in the viewer. Sends and retransmissions start
    // (or continue) the flow; delivers and drops terminate a step of it.
    if (e.corr != kNoCorr) {
      const bool out = e.cat == Cat::kSend || e.cat == Cat::kRetransmit;
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                         ",\"bind_id\":\"0x%" PRIx64 "\",\"%s\":true",
                         e.corr, out ? "flow_out" : "flow_in");
    }
    // End events inherit the begin's args in the viewer; skip re-encoding.
    if (e.phase != Phase::kEnd && info.arg0) {
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                         ",\"args\":{\"%s\":%" PRIu64, info.arg0, e.a0);
      if (info.arg1)
        n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                           ",\"%s\":%" PRIu64, info.arg1, e.a1);
      // kDrop's correlation id carries the dropped frame's kind; decode it
      // so drops are attributable per class without chasing the flow.
      if (e.cat == Cat::kDrop && e.corr != kNoCorr)
        n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                           ",\"kind\":%u",
                           static_cast<unsigned>(corrKind(e.corr)));
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n), "}");
    }
    std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n), "}");
    emit(buf);
  }

  // Counter tracks: one per (node, metric), already in timestamp order
  // within each series (the sampler emits rows tick by tick). Counter
  // events are process-scoped, so no tid is needed.
  if (metrics) {
    for (const MetricSample& s : metrics->samples()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%" PRIu32
                    ",\"ts\":%.3f,\"args\":{\"value\":%" PRId64 "}}",
                    metricInfo(s.metric).name, s.node,
                    static_cast<double>(s.ts) / 1000.0, s.value);
      emit(buf);
    }
  }
  os << "\n]}\n";
}

}  // namespace vodsm::obs
