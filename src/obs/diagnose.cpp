#include "obs/diagnose.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/passes/passes.hpp"

namespace vodsm::obs {

Diagnoser::Diagnoser() : Diagnoser(true) {}

Diagnoser::Diagnoser(bool with_default_catalog) {
  if (!with_default_catalog) return;
  // Catalog order is documentation only; the report ranks by severity.
  passes_.push_back(passes::makePartitionPass());
  passes_.push_back(passes::makeStragglerPass());
  passes_.push_back(passes::makeDegradedLinkPass());
  passes_.push_back(passes::makeRetransmitStormPass());
  passes_.push_back(passes::makeTrunkSaturationPass());
  passes_.push_back(passes::makeGrantStormPass());
  passes_.push_back(passes::makeAllToAllDiffPass());
  passes_.push_back(passes::makeImbalancePass());
  passes_.push_back(passes::makePageImbalancePass());
  passes_.push_back(passes::makeDiffStoreGrowthPass());
  passes_.push_back(passes::makeHotspotPass());
}

void Diagnoser::addPass(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

Diagnosis Diagnoser::run(const DiagnosisInput& in) const {
  Diagnosis d;
  d.on = true;
  d.makespan = in.finish;
  d.nprocs = in.nprocs;
  for (const auto& pass : passes_) pass->run(in, d.findings);
  for (Finding& f : d.findings)
    f.severity = std::clamp(f.severity, 0.0, 1.0);
  // Rank: severity desc, then category (root causes enumerate before
  // symptoms), then location — a total order, so the report is
  // deterministic regardless of pass registration order.
  std::sort(d.findings.begin(), d.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.cat != b.cat) return a.cat < b.cat;
              if (a.location != b.location) return a.location < b.location;
              if (a.node != b.node) return a.node < b.node;
              return a.id < b.id;
            });
  return d;
}

Diagnosis diagnose(const TraceRecorder& trace, int nprocs, sim::Time finish,
                   const MetricsSummary* metrics,
                   std::function<WireClass(uint64_t)> classify,
                   std::function<sim::Time(uint64_t)> tx_time,
                   std::vector<TrunkUtilization> trunks) {
  const EventGraph graph = buildEventGraph(trace, nprocs);
  const CriticalPath cp = computeCriticalPath(graph, finish);
  const Breakdown bd = foldBreakdown(trace, nprocs, finish);
  const PageHeat heat = foldPageHeat(trace);

  DiagnosisInput in;
  in.trace = &trace;
  in.graph = &graph;
  in.critpath = &cp;
  in.breakdown = &bd;
  in.pageheat = &heat;
  in.metrics = metrics && metrics->enabled() ? metrics : nullptr;
  in.nprocs = nprocs;
  in.finish = finish;
  in.classify = std::move(classify);
  in.tx_time = std::move(tx_time);
  in.trunks = std::move(trunks);
  return Diagnoser().run(in);
}

namespace {

std::string fmtSecs(sim::Time t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << sim::toSeconds(t);
  return os.str();
}

std::string fmtSeverity(double sev) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << std::setw(5)
     << sev * 100.0;
  return os.str();
}

void jsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void printDiagnosis(std::ostream& os, const Diagnosis& d,
                    const std::string& title) {
  os << "\n" << title << "\n";
  os << "makespan " << fmtSecs(d.makespan) << " s over " << d.nprocs
     << " nodes; " << d.findings.size()
     << (d.findings.size() == 1 ? " finding" : " findings") << "\n";
  if (d.findings.empty()) {
    os << "no significant pattern detected; the run looks healthy\n";
    return;
  }
  int rank = 0;
  for (const Finding& f : d.findings) {
    os << "#" << ++rank << " [" << fmtSeverity(f.severity) << "%] "
       << findingCatName(f.cat) << ": " << f.location << "\n";
    os << "    evidence: " << f.evidence << "\n";
    os << "    remedy:   " << f.remedy << "\n";
  }
}

void writeDiagnosisJson(std::ostream& os, const Diagnosis& d) {
  os << std::fixed << std::setprecision(6);
  os << "{\n";
  os << "  \"makespan_seconds\": " << sim::toSeconds(d.makespan) << ",\n";
  os << "  \"nprocs\": " << d.nprocs << ",\n";
  os << "  \"findings\": [";
  int rank = 0;
  for (const Finding& f : d.findings) {
    os << (rank == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"rank\": " << ++rank << ",\n";
    os << "      \"category\": \"" << findingCatName(f.cat) << "\",\n";
    os << "      \"severity\": " << f.severity << ",\n";
    os << "      \"location\": ";
    jsonEscape(os, f.location);
    os << ",\n";
    os << "      \"node\": " << f.node << ",\n";
    os << "      \"id\": " << f.id << ",\n";
    os << "      \"window_begin_seconds\": ";
    if (f.window_begin >= 0)
      os << sim::toSeconds(f.window_begin);
    else
      os << "null";
    os << ",\n";
    os << "      \"window_end_seconds\": ";
    if (f.window_end >= 0)
      os << sim::toSeconds(f.window_end);
    else
      os << "null";
    os << ",\n";
    os << "      \"evidence\": ";
    jsonEscape(os, f.evidence);
    os << ",\n";
    os << "      \"remedy\": ";
    jsonEscape(os, f.remedy);
    os << "\n    }";
  }
  os << (rank == 0 ? "]\n" : "\n  ]\n");
  os << "}\n";
}

}  // namespace vodsm::obs
