// Per-page contention accounting over a recorded trace.
//
// Folds the page-indexed protocol events — kFault spans, kTwin, kDiffApply
// and kNotice instants — by page id into one row per page: how often the
// page faulted and how long those faults took, how many twins and diff
// applications it saw, how many distinct nodes touched it, and how many
// distinct writers its write notices named. Sorting by fault time surfaces
// exactly the false-sharing hot spots the paper's Gauss in-place vs
// local-buffer contrast is about: a page with many sharers, many notices
// and heavy diff traffic is being ping-ponged.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

struct PageHeatRow {
  uint64_t page = 0;
  uint64_t faults = 0;          // completed kFault spans
  sim::Time fault_time = 0;     // summed kFault span length
  uint64_t twins = 0;
  uint64_t diff_applies = 0;
  uint64_t diff_bytes = 0;      // summed kDiffApply bytes
  uint64_t notices = 0;
  uint32_t sharers = 0;         // distinct nodes with any event on the page
  uint32_t writers = 0;         // distinct writer nodes named by notices
};

struct PageHeat {
  std::vector<PageHeatRow> rows;  // sorted by page id

  bool enabled() const { return !rows.empty(); }
};

// Folds `trace` into per-page rows. Engine pseudo-node events are skipped.
PageHeat foldPageHeat(const TraceRecorder& trace);

// Renders the `max_rows` hottest pages (by fault time, then fault count) as
// a fixed-width table.
void printPageHeat(std::ostream& os, const PageHeat& heat,
                   const std::string& title, size_t max_rows = 16);

// Writes every row as CSV (header + one line per page, page-id order).
void writePageHeatCsv(std::ostream& os, const PageHeat& heat);

}  // namespace vodsm::obs
