// Run-DAG reconstruction from a recorded trace.
//
// An EventGraph turns the flat event stream of a TraceRecorder into the
// dependency structure a critical-path walk needs:
//
//  * program-order edges — implicit: per-node timelines of waits and local
//    service spans (page faults, diff creation), each sorted by time;
//  * message edges — kSend -> kDeliver pairs matched by the wire
//    correlation id, with retransmissions and drops folded into the same
//    Flow record;
//  * wakeup edges — the cross-node event that ended each wait: the kGrant
//    instant on the granting node for an acquire_wait, the releasing
//    kBarrFold instant on the barrier manager for a barrier_wait.
//
// Wakeup matching is exact, not heuristic. A node has at most one
// outstanding acquire per lock/view id, so the j-th grant recorded for
// (id, requester) — in timestamp order — is the grant that ended the
// requester's j-th wait on that id. Barrier folds are grouped into episodes
// of nprocs folds per barrier id (every node arrives exactly once per
// episode, and episode k+1 arrivals strictly follow the episode-k release),
// and the last fold of an episode is the one that released all its waiters.
//
// Like every obs consumer this is pure post-processing: building a graph
// never touches simulated state.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

// One matched wait span on a node's timeline, with the cross-node trigger
// event (index into the trace's event vector) that ended it, or -1 when no
// trigger was found (self-grant on the same node still counts as a trigger;
// -1 means the trace is genuinely missing the producer side).
struct Wait {
  sim::Time begin = 0;
  sim::Time end = 0;
  Cat cat = Cat::kAcquireWait;  // kAcquireWait or kBarrierWait
  uint64_t id = 0;              // lock/view id or barrier id
  int64_t trigger = -1;         // event index of kGrant / releasing kBarrFold
  uint32_t trigger_node = 0;    // denormalized trigger event fields, valid
  sim::Time trigger_ts = 0;     // when trigger >= 0
};

// A local service span (page fault or diff creation) on a node's timeline.
struct LocalSpan {
  sim::Time begin = 0;
  sim::Time end = 0;
  Cat cat = Cat::kFault;  // kFault or kDiffCreate
  uint64_t id = 0;        // page for kFault, 0 for kDiffCreate
};

struct NodeTimeline {
  // Program end timestamp, or -1 when the node has no program-end event
  // (the engine drained early); consumers substitute the run finish time.
  sim::Time program_end = -1;
  std::vector<Wait> waits;        // sorted by end
  std::vector<LocalSpan> spans;   // sorted by begin; mutually disjoint
};

// All net-track events concerning one transport frame, keyed by the wire
// correlation id. Indices point into the trace's event vector; -1 = absent.
struct Flow {
  uint64_t corr = kNoCorr;
  int64_t send = -1;     // first kSend with this id
  int64_t deliver = -1;  // first kDeliver (later ones are duplicates)
  uint32_t retransmits = 0;
  uint32_t drops = 0;
};

struct EventGraph {
  std::vector<NodeTimeline> nodes;  // index = node id
  std::vector<Flow> flows;          // sorted by corr (deterministic)

  // Diagnostics; all zero on a well-formed trace (asserted in tests).
  uint64_t delivers_without_send = 0;
  uint64_t waits_without_trigger = 0;
  uint64_t unmatched_spans = 0;  // begin/end pairing failures

  const Flow* flowOf(uint64_t corr) const;  // nullptr when unknown
};

// Builds the graph from a recorded trace. `nprocs` bounds the node ids
// considered (engine pseudo-node events are skipped) and sets the barrier
// episode size.
EventGraph buildEventGraph(const TraceRecorder& trace, int nprocs);

}  // namespace vodsm::obs
