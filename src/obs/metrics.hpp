// Per-node counters and gauges sampled on the simulated clock.
//
// Where obs/trace.hpp answers "what happened and when", the MetricsRegistry
// answers "how much protocol state existed over time": live twin bytes,
// stored diff bytes, pending write notices, NIC queue occupancy, link busy
// time, held views. The same observation invariant applies, and is asserted
// in tests/test_obs.cpp:
//
//  * Zero effect on simulated results. Instrumentation sites only *read*
//    values the run already computed (deltas and timestamps it had in hand);
//    recording never charges simulated time. The fixed-interval sampler runs
//    as engine events, but its callbacks are read-only with respect to all
//    simulated state (clocks, RNG, queues), so a metered run is bit-identical
//    to an unmetered one.
//  * Near-zero overhead when disabled: every site guards on a runtime-checked
//    registry pointer (`if (auto* m = ctx.metrics) ...`).
//  * No formatting on the hot path. add() updates a small per-(node, metric)
//    accumulator; names and units live in a static table used only at export.
//
// Two recording granularities coexist:
//  * On-change accounting is always on: every add() maintains the current
//    value, the high-water mark (peak + its timestamp), and the time-weighted
//    integral used for means. This is what the bench tables consume
//    (peak_twin_bytes etc.) and costs no engine events at all.
//  * The fixed-interval sampler (startSampling with interval > 0) snapshots
//    every live series into a long-format time-series row when its value
//    changed since the last tick. Consumers: --metrics-csv and the Perfetto
//    counter tracks.
//
// Timestamps come from whatever clock the instrumented layer already uses:
// node-local clocks for dsm/vopp sites, engine time for network sites. A
// series mixes domains only in rare handler-vs-program cases; add() clamps
// backward timestamps so integrals stay well-defined (peaks are exact either
// way).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vodsm::obs {

// Metric identity. Grouped by the instrumented layer; the dotted names in
// kMetricInfo mirror the grouping.
enum class Metric : uint8_t {
  // dsm: protocol memory footprint (lrc.cpp, vc.cpp, runtime.hpp)
  kTwinBytes = 0,     // gauge: live twin pages * page size
  kDiffStoreBytes,    // gauge: retained diff log, wire-encoded bytes
  kDiffStoreCount,    // gauge: retained diff log, entry count
  kPendingNotices,    // gauge: write notices awaiting a fault
  kDiffsCreated,      // counter: diffs produced at release/interval close
  kDiffsApplied,      // counter: diffs merged into pages
  kTwinReclaimBytes,  // counter: twin bytes freed at release/interval close
  kDiffReclaimBytes,  // counter: stored diff bytes freed by home-side GC
  // net: link and queue occupancy (network.hpp)
  kRxQueueFrames,   // gauge: NIC receive queue depth
  kRxQueueBytes,    // gauge: NIC receive queue bytes
  kInflightBytes,   // gauge: frame bytes between send and delivery/drop
  kUplinkBusyNs,    // counter: cumulative uplink serialization time
  kDownlinkBusyNs,  // counter: cumulative downlink serialization time
  kFrameDrops,      // counter: frames lost (random loss + NIC overflow)
  // vopp: synchronization state (cluster.hpp)
  kHeldViews,         // gauge: views (read or write) currently held
  kHeldLocks,         // gauge: locks currently held
  kBlockedAtBarrier,  // gauge: 1 while the node waits at a barrier
  kMetricCount,
};
inline constexpr size_t kMetricCount =
    static_cast<size_t>(Metric::kMetricCount);

enum class MetricKind : uint8_t { kGauge = 0, kCounter = 1 };

// Export-time metadata; never consulted by add().
struct MetricInfo {
  const char* name;  // dotted, stable: "<layer>.<what>"
  MetricKind kind;
  const char* unit;
};

inline constexpr MetricInfo kMetricInfo[kMetricCount] = {
    {"dsm.twin_bytes", MetricKind::kGauge, "bytes"},
    {"dsm.diff_store_bytes", MetricKind::kGauge, "bytes"},
    {"dsm.diff_store_count", MetricKind::kGauge, "diffs"},
    {"dsm.pending_notices", MetricKind::kGauge, "notices"},
    {"dsm.diffs_created", MetricKind::kCounter, "diffs"},
    {"dsm.diffs_applied", MetricKind::kCounter, "diffs"},
    {"dsm.twin_reclaim_bytes", MetricKind::kCounter, "bytes"},
    {"dsm.diff_reclaim_bytes", MetricKind::kCounter, "bytes"},
    {"net.rx_queue_frames", MetricKind::kGauge, "frames"},
    {"net.rx_queue_bytes", MetricKind::kGauge, "bytes"},
    {"net.inflight_bytes", MetricKind::kGauge, "bytes"},
    {"net.uplink_busy_ns", MetricKind::kCounter, "ns"},
    {"net.downlink_busy_ns", MetricKind::kCounter, "ns"},
    {"net.frame_drops", MetricKind::kCounter, "frames"},
    {"vopp.held_views", MetricKind::kGauge, "views"},
    {"vopp.held_locks", MetricKind::kGauge, "locks"},
    {"vopp.blocked_at_barrier", MetricKind::kGauge, "procs"},
};

inline const MetricInfo& metricInfo(Metric m) {
  return kMetricInfo[static_cast<size_t>(m)];
}

// One long-format time-series row: "at simulated time ts, node's metric had
// this value". Emitted by the sampler (change-deduplicated per series) plus
// one final row per live series at run finish.
struct MetricSample {
  sim::Time ts = 0;
  uint32_t node = 0;
  Metric metric = Metric::kTwinBytes;
  int64_t value = 0;
};

// Per-(node, metric) aggregate available after the run.
struct MetricSummaryRow {
  uint32_t node = 0;
  Metric metric = Metric::kTwinBytes;
  int64_t peak = 0;
  sim::Time peak_ts = 0;
  int64_t final_value = 0;
  double mean = 0;  // time-weighted over [0, finish]
};

struct MetricsSummary {
  bool on = false;
  int nprocs = 0;
  sim::Time finish = 0;
  // Only series that were ever touched, sorted by (metric, node).
  std::vector<MetricSummaryRow> rows;

  bool enabled() const { return on; }
  // Max peak across nodes; 0 when no node touched the metric.
  int64_t maxPeak(Metric m) const;
  // Sum of final values across nodes (the natural total for counters).
  int64_t totalFinal(Metric m) const;
  // Busy time summed over both directions of every link, divided by total
  // link-direction-time 2 * nprocs * finish. In [0, 1] for any run.
  double meanLinkUtilization() const;
};

// During a parallel engine run, add() calls from worker threads are
// journaled per lane, tagged with the executing event's key, and replayed
// into the series state at each window barrier in merged (key, ordinal)
// order — the exact order a serial run applies them in, so peaks, areas,
// and sampled rows come out bit-identical. Sampler ticks journal a marker
// entry and snapshot at replay time for the same reason.
class MetricsRegistry : public sim::ParallelObserver {
 public:
  // interval == 0 keeps on-change accounting (peaks, finals, means) but
  // schedules no sampler events and records no time series.
  explicit MetricsRegistry(sim::Time sample_interval = 0)
      : interval_(sample_interval) {}

  sim::Time sampleInterval() const { return interval_; }

  // Apply a delta to one series. `ts` is the simulated time the change
  // happened at, in whatever clock domain the caller's layer runs on.
  void add(uint32_t node, Metric m, int64_t delta, sim::Time ts) {
    if (sim::Engine::ExecContext* x = sim::Engine::execContext()) {
      journals_[x->lane].push_back(Journal{x->key, x->nextOrdinal(), ts,
                                           delta, node, m, false});
      return;
    }
    applyAdd(node, m, delta, ts);
  }

  int64_t value(uint32_t node, Metric m) const {
    if (node >= nodes_.size()) return 0;
    return nodes_[node][static_cast<size_t>(m)].value;
  }

  // Begin the fixed-interval sampler (no-op when interval == 0). The tick
  // callback snapshots changed series and reschedules itself only while the
  // engine has real work pending, so it never keeps the run alive on its
  // own and the engine drains exactly as it would unmetered.
  void startSampling(sim::Engine& engine);

  // Called once after the engine drains: extends every integral to the
  // finish time and appends a final time-series row per live series.
  void closeRun(int nprocs, sim::Time finish);

  const std::vector<MetricSample>& samples() const { return samples_; }

  // Aggregate view; valid after closeRun().
  MetricsSummary summary() const;

  void onParallelStart(uint32_t nlanes) override;
  void onWindow(const sim::EventKey* limit) override;
  void onParallelEnd() override;

 private:
  struct Series {
    int64_t value = 0;
    int64_t peak = 0;
    sim::Time peak_ts = 0;
    sim::Time last_ts = 0;
    __int128 area = 0;  // integral of value over time, for means
    int64_t last_sampled = 0;
    bool sampled_once = false;
    bool touched = false;
  };
  // One deferred add() (or, with marker set, one deferred sampler snapshot)
  // recorded from a worker thread during a parallel window.
  struct Journal {
    sim::EventKey key;
    uint64_t ord = 0;
    sim::Time ts = 0;
    int64_t delta = 0;
    uint32_t node = 0;
    Metric metric = Metric::kTwinBytes;
    bool marker = false;
  };

  void applyAdd(uint32_t node, Metric m, int64_t delta, sim::Time ts) {
    if (node >= nodes_.size()) nodes_.resize(static_cast<size_t>(node) + 1);
    Series& s = nodes_[node][static_cast<size_t>(m)];
    if (ts > s.last_ts) {
      s.area += static_cast<__int128>(s.value) *
                static_cast<__int128>(ts - s.last_ts);
      s.last_ts = ts;
    }
    s.value += delta;
    s.touched = true;
    if (s.value > s.peak) {
      s.peak = s.value;
      s.peak_ts = s.last_ts;
    }
  }

  void sampleTick(sim::Engine& engine);
  void snapshot(sim::Time ts, bool force);

  sim::Time interval_;
  std::vector<std::vector<Journal>> journals_;  // per lane, mid-parallel-run
  std::vector<Journal> merge_;
  std::vector<std::array<Series, kMetricCount>> nodes_;
  std::vector<MetricSample> samples_;
  int nprocs_ = 0;
  sim::Time finish_ = 0;
  bool closed_ = false;
};

// Long-format CSV of the sampled time series: t_seconds,node,metric,value.
// Deterministic for a given run (pure function of the sample list).
void writeMetricsCsv(std::ostream& os, const MetricsRegistry& reg);

// Fixed-width summary table: peak (with owning node and time), end-of-run
// total, and time-weighted mean per metric.
void printMemstats(std::ostream& os, const MetricsSummary& s,
                   const std::string& title);

}  // namespace vodsm::obs
