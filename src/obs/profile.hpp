// Persisted run profiles: a compact, deterministic, committable summary of
// one run, built from the observability artifacts the obs layer already
// reconstructs and written as byte-stable JSON.
//
// A RunProfile holds bounded aggregates only — never raw events:
//
//   * the per-node five-bucket time breakdown (obs/breakdown.hpp),
//   * per-barrier-episode arrival timelines (first / next-slowest / slowest
//     arrival and release, from the run DAG's matched barrier waits),
//   * the exact critical-path attribution (per-category totals that
//     partition the makespan to the nanosecond, plus the top slices),
//   * the page-heat table (hottest pages by fault time),
//   * metric peaks and integrals (obs/metrics.hpp summary rows folded
//     across nodes), and
//   * per-class wire counters (filled by the vopp layer, which sees
//     net::NetStats; obs itself stays below net).
//
// All times are integer nanoseconds, so two profiles of the same program
// can be differenced exactly (obs/profile_diff.hpp). The writer emits a
// fixed member order with explicit number formats and the loader reads the
// same schema back, so write -> load -> write is byte-identical — the
// profile can live in git and be compared across commits like
// BENCH_tables.json. Building a profile is pure post-processing: a
// profiled run is bit-identical to an unprofiled one.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/breakdown.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/page_heat.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "support/json.hpp"

namespace vodsm::obs {

// Wire message classes as stable profile keys, mirroring net::MsgClass
// order (the vopp layer asserts the mirror where it fills these, like
// WireClass in diagnose.hpp).
inline constexpr int kProfileClassCount = 8;
inline constexpr const char* kProfileClassName[kProfileClassCount] = {
    "acquire", "grant", "release", "diff_request",
    "diff_reply", "barrier", "data", "other",
};

// Bounds on the variable-size tables. A profile of any run stays a few KB:
// episodes and pages beyond the cap are dropped (the *_total counters keep
// the truncation visible), slices keep the heaviest attributions.
inline constexpr size_t kMaxProfileSlices = 48;
inline constexpr size_t kMaxProfileEpisodes = 512;
inline constexpr size_t kMaxProfilePages = 128;

// One barrier episode: the j-th arrival of every node at barrier `barrier`.
// `second` is the next-slowest arrival — the gap `last - second` is the
// episode's imbalance cost (see passes/imbalance.cpp).
struct ProfileEpisode {
  uint64_t barrier = 0;
  uint32_t episode = 0;
  uint32_t slow_node = 0;  // node of the slowest arrival
  sim::Time first = 0;     // earliest arrival
  sim::Time second = 0;    // next-slowest arrival
  sim::Time last = 0;      // slowest arrival
  sim::Time release = 0;   // latest wait end (release incorporated)

  sim::Time gap() const { return last - second; }
};

// Per-metric aggregate folded over nodes: max peak, summed final values,
// and the summed time-weighted means (the "integral" view of a gauge).
struct ProfileMetricRow {
  Metric metric = Metric::kTwinBytes;
  int64_t peak = 0;         // max over nodes
  int64_t final_total = 0;  // sum of final values
  double mean_total = 0;    // sum of time-weighted means
};

// Per-class slice of the transport counters (net::KindStats shape).
struct ProfileClass {
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
  uint64_t retransmissions = 0;
  uint64_t drops = 0;
};

struct RunProfile {
  bool on = false;
  std::string label;  // free text: cell id or runner title
  int nprocs = 0;
  sim::Time makespan = 0;

  std::vector<BucketSet> buckets;  // per node; each sums to makespan
  // Critical-path category totals; sum to makespan exactly (the invariant
  // the differential engine's exact partition rests on).
  sim::Time critpath[kPathCatCount] = {};
  std::vector<PathSlice> slices;  // heaviest attributions, nanos desc

  uint64_t episodes_total = 0;  // before the kMaxProfileEpisodes cap
  std::vector<ProfileEpisode> episodes;  // (barrier, episode) order

  uint64_t pages_total = 0;  // before the kMaxProfilePages cap
  std::vector<PageHeatRow> pages;  // hottest pages, stored in page order

  std::vector<ProfileMetricRow> metrics;  // touched metrics, enum order

  // Wire counters; has_net false when the run had no transport view (e.g.
  // a hand-built trace profile).
  bool has_net = false;
  ProfileClass classes[kProfileClassCount];
  uint64_t net_messages = 0;
  uint64_t net_payload_bytes = 0;
  uint64_t net_retransmissions = 0;
  uint64_t net_acks = 0;
  uint64_t net_ack_drops = 0;
  uint64_t net_frames_sent = 0;
  uint64_t net_frames_delivered = 0;

  bool enabled() const { return on; }
};

// Builds the trace-derived parts of a profile (buckets, critical path,
// episodes, pages, metrics). The caller fills label and the net counters;
// vopp::Cluster::runProfile() wires both.
RunProfile buildRunProfile(const TraceRecorder& trace, int nprocs,
                           sim::Time finish, const MetricsSummary* metrics);

// Byte-stable JSON writer: fixed member order, integer nanoseconds,
// "%.17g" for the one double field, so equal profiles serialize to equal
// bytes on any host.
void writeRunProfileJson(std::ostream& os, const RunProfile& p);

// Parses a document written by writeRunProfileJson. Throws vodsm::Error on
// schema mismatch; write(load(write(p))) == write(p) byte-for-byte.
RunProfile loadRunProfile(const support::Json& doc);

// Convenience: read and parse a profile file. Throws vodsm::Error when the
// file is unreadable or malformed.
RunProfile loadRunProfileFile(const std::string& path);

}  // namespace vodsm::obs
