#include "msg/world.hpp"

#include <algorithm>

#include "dsm/msgs.hpp"  // for the kMsgData wire type id

namespace vodsm::msg {

Rank::Rank(World& world, int id) : world_(world), id_(id) {
  endpoint_ = std::make_unique<net::Endpoint>(
      world_.engine(), world_.network(), static_cast<net::NodeId>(id));
  endpoint_->setHandler([this](net::Delivery&& d, const net::ReplyToken&) {
    onDelivery(std::move(d));
  });
}

int Rank::size() const { return world_.nprocs(); }

void Rank::send(int dst, uint32_t tag, Bytes payload) {
  clock_.charge(world_.options().pack_per_kb *
                static_cast<sim::Time>(payload.size() / 1024 + 1));
  Writer w(payload.size() + 8);
  w.u32(tag);
  w.blob(payload);
  endpoint_->post(static_cast<net::NodeId>(dst), dsm::kMsgData, w.take(),
                  clock_.now());
}

void Rank::onDelivery(net::Delivery&& d) {
  VODSM_CHECK(d.type == dsm::kMsgData);
  Reader r(d.payload);
  const uint32_t tag = r.u32();
  ByteSpan body = r.blob();
  Mailbox& box = mail_[{static_cast<int>(d.src), tag}];
  Bytes data(body.begin(), body.end());
  if (box.waiter) {
    auto waiter = std::move(box.waiter);
    clock_.atLeast(d.arrive);
    waiter->fulfill(std::move(data));
  } else {
    box.messages.push_back(std::move(data));
  }
}

sim::Task<Bytes> Rank::recv(int src, uint32_t tag) {
  Mailbox& box = mail_[{src, tag}];
  if (!box.messages.empty()) {
    Bytes out = std::move(box.messages.front());
    box.messages.pop_front();
    clock_.charge(world_.options().pack_per_kb *
                  static_cast<sim::Time>(out.size() / 1024 + 1));
    co_return out;
  }
  VODSM_CHECK_MSG(!box.waiter, "two concurrent recv() on one (src, tag)");
  box.waiter = std::make_unique<sim::Waiter<Bytes>>();
  Bytes out = co_await *box.waiter;
  box.waiter.reset();
  clock_.charge(world_.options().pack_per_kb *
                static_cast<sim::Time>(out.size() / 1024 + 1));
  co_return out;
}

namespace {
constexpr uint32_t kBarrierTag = 0xffff0001;
constexpr uint32_t kBcastTag = 0xffff0002;
constexpr uint32_t kReduceTag = 0xffff0003;

Bytes packInt64(const std::vector<int64_t>& v) {
  Writer w(v.size() * 8);
  for (int64_t x : v) w.i64(x);
  return w.take();
}
void unpackInt64(ByteSpan b, std::vector<int64_t>& out) {
  Reader r(b);
  for (auto& x : out) x = r.i64();
}
}  // namespace

sim::Task<void> Rank::barrier() {
  if (id_ == 0) {
    for (int i = 1; i < size(); ++i) (void)co_await recv(i, kBarrierTag);
    for (int i = 1; i < size(); ++i) send(i, kBarrierTag, Bytes{});
  } else {
    send(0, kBarrierTag, Bytes{});
    (void)co_await recv(0, kBarrierTag);
  }
}

sim::Task<void> Rank::bcast(int root, Bytes& buf) {
  if (id_ == root) {
    for (int i = 0; i < size(); ++i)
      if (i != root) send(i, kBcastTag, buf);
  } else {
    buf = co_await recv(root, kBcastTag);
  }
}

sim::Task<void> Rank::reduce(int root, std::vector<int64_t>& inout) {
  if (id_ == root) {
    std::vector<int64_t> incoming(inout.size());
    for (int i = 0; i < size(); ++i) {
      if (i == root) continue;
      Bytes b = co_await recv(i, kReduceTag);
      unpackInt64(b, incoming);
      for (size_t k = 0; k < inout.size(); ++k) inout[k] += incoming[k];
      chargeOps(inout.size(), 5);
    }
  } else {
    send(root, kReduceTag, packInt64(inout));
  }
}

sim::Task<void> Rank::allreduce(std::vector<int64_t>& inout) {
  co_await reduce(0, inout);
  Bytes buf = id_ == 0 ? packInt64(inout) : Bytes{};
  co_await bcast(0, buf);
  if (id_ != 0) unpackInt64(buf, inout);
}

void World::run(const Program& program) {
  VODSM_CHECK_MSG(network_ == nullptr, "World::run called twice");
  // One engine lane per rank; the schedule is identical for any thread
  // count (see sim::Engine).
  engine_.configureLanes(opts_.nprocs, opts_.sim_threads);
  network_ =
      std::make_unique<net::Network>(engine_, opts_.nprocs, opts_.net,
                                     opts_.seed);
  if (opts_.faults && !opts_.faults->empty()) {
    faults_ = std::make_unique<net::FaultInjector>(*opts_.faults, opts_.seed,
                                                   opts_.nprocs);
    network_->setFaults(faults_.get());
  }
  ranks_.reserve(static_cast<size_t>(opts_.nprocs));
  for (int i = 0; i < opts_.nprocs; ++i) {
    ranks_.push_back(std::make_unique<Rank>(*this, i));
    if (faults_)
      ranks_.back()->clock_.setScaler(
          faults_->chargeScalerFor(static_cast<net::NodeId>(i)));
  }

  // Per-rank completion slots: finish callbacks run inside each rank's lane
  // (possibly on worker threads); folds happen after the engine drains.
  std::vector<unsigned char> finished(static_cast<size_t>(opts_.nprocs), 0);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(opts_.nprocs));
  std::vector<sim::Time> done_times(static_cast<size_t>(opts_.nprocs), 0);
  for (int i = 0; i < opts_.nprocs; ++i) {
    Rank& rank = *ranks_[static_cast<size_t>(i)];
    sim::Engine::LaneGuard lane(engine_, static_cast<net::NodeId>(i));
    sim::spawn(scope_, program(rank),
               [i, &rank, &finished, &errors,
                &done_times](std::exception_ptr e) {
                 finished[static_cast<size_t>(i)] = 1;
                 if (e) errors[static_cast<size_t>(i)] = e;
                 done_times[static_cast<size_t>(i)] = rank.now();
               });
  }
  engine_.run();
  for (int i = 0; i < opts_.nprocs; ++i)
    finish_time_ = std::max(finish_time_, done_times[static_cast<size_t>(i)]);
  for (int i = 0; i < opts_.nprocs; ++i)
    if (errors[static_cast<size_t>(i)])
      std::rethrow_exception(errors[static_cast<size_t>(i)]);
  for (int i = 0; i < opts_.nprocs; ++i)
    VODSM_CHECK_MSG(finished[static_cast<size_t>(i)],
                    "deadlock: rank " << i << " never finished");
}

}  // namespace vodsm::msg
