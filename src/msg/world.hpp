// MPI-like message-passing library on the simulated cluster network.
//
// This is the baseline substrate for the paper's NN-MPI comparison
// (Table 9): the same wire model as the DSM runtimes, but programs move data
// explicitly. Point-to-point send/recv matches on (source, tag); the
// collectives (barrier, bcast, reduce, allreduce) are linear rooted at rank
// 0, which is faithful to early-2000s MPICH over TCP/UDP on small clusters.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/faults.hpp"
#include "net/transport.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/waiter.hpp"

namespace vodsm::msg {

struct WorldOptions {
  int nprocs = 4;
  net::NetConfig net;
  uint64_t seed = 42;
  // Engine worker threads (same semantics as vopp::ClusterOptions).
  int sim_threads = 0;
  // Software cost to pack/unpack one KB of message payload.
  sim::Time pack_per_kb = sim::usec(8);
  // Caller-owned fault plan; null or empty means no injection (same
  // contract as vopp::ClusterOptions::faults).
  const net::FaultPlan* faults = nullptr;
};

class World;

// Per-rank environment handed to the program coroutine.
class Rank {
 public:
  Rank(World& world, int id);

  int id() const { return id_; }
  int size() const;
  sim::Time now() const { return clock_.now(); }
  void charge(sim::Time t) { clock_.charge(t); }
  void chargeOps(uint64_t ops, sim::Time per_op) {
    clock_.charge(static_cast<sim::Time>(ops) * per_op);
  }

  // Buffered, reliable, non-blocking send.
  void send(int dst, uint32_t tag, Bytes payload);
  // Blocking receive matching (src, tag).
  sim::Task<Bytes> recv(int src, uint32_t tag);

  // --- collectives (must be called by every rank) ---
  sim::Task<void> barrier();
  sim::Task<void> bcast(int root, Bytes& buf);
  // Element-wise int64 sum reduction to root (in place on root).
  sim::Task<void> reduce(int root, std::vector<int64_t>& inout);
  sim::Task<void> allreduce(std::vector<int64_t>& inout);

 private:
  friend class World;
  void onDelivery(net::Delivery&& d);

  struct Mailbox {
    std::deque<Bytes> messages;
    std::unique_ptr<sim::Waiter<Bytes>> waiter;
  };

  World& world_;
  int id_;
  sim::Clock clock_;
  std::unique_ptr<net::Endpoint> endpoint_;
  std::map<std::pair<int, uint32_t>, Mailbox> mail_;
};

class World {
 public:
  explicit World(WorldOptions opts) : opts_(std::move(opts)) {
    VODSM_CHECK(opts_.nprocs > 0);
  }

  using Program = std::function<sim::Task<void>(Rank&)>;
  void run(const Program& program);

  int nprocs() const { return opts_.nprocs; }
  const WorldOptions& options() const { return opts_; }
  sim::Engine& engine() { return engine_; }
  net::Network& network() { return *network_; }
  double seconds() const { return sim::toSeconds(finish_time_); }
  const net::NetStats& netStats() const { return network_->stats(); }

 private:
  friend class Rank;
  WorldOptions opts_;
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  sim::Time finish_time_ = 0;
  // Last member: rank frames abandoned by a deadlocked run must be reclaimed
  // before the engine/network/ranks they reference go away.
  sim::TaskScope scope_;
};

}  // namespace vodsm::msg
