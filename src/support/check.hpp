// Lightweight runtime checking used across the library.
//
// VODSM_CHECK   — invariant that must hold regardless of build type; throws
//                 vodsm::Error so API misuse is testable.
// VODSM_DCHECK  — debug-only assertion for internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vodsm {

// Exception thrown on violated API contracts (e.g. nested acquire_view).
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void failCheck(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace vodsm

#define VODSM_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr))                                                      \
      ::vodsm::detail::failCheck(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define VODSM_CHECK_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream vodsm_os_;                                   \
      vodsm_os_ << msg;                                               \
      ::vodsm::detail::failCheck(#expr, __FILE__, __LINE__,           \
                                 vodsm_os_.str());                    \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define VODSM_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define VODSM_DCHECK(expr) VODSM_CHECK(expr)
#endif
