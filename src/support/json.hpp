// Minimal JSON DOM with a recursive-descent parser; no dependencies.
//
// Just enough of RFC 8259 for the repo's own artifacts (BENCH_tables.json,
// exported traces): null/bool/number/string/array/object, nesting, and the
// usual escapes (\uXXXX is decoded to UTF-8). Numbers are stored as double —
// fine for the second-resolution figures the bench tools consume. Object
// members keep file order and are looked up linearly; the documents involved
// have a handful of keys per object, so no index is worth its weight.
//
// Malformed input throws vodsm::Error with a byte offset, as do type-mismatch
// accessors, so tools fail loudly on a stale or hand-edited artifact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace vodsm::support {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() = default;

  static Json parse(std::string_view text) {
    Parser p{text, 0};
    Json v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size()) p.fail("trailing characters after value");
    return v;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isObject() const { return type_ == Type::kObject; }
  bool isArray() const { return type_ == Type::kArray; }

  bool asBool() const {
    expect(Type::kBool, "bool");
    return num_ != 0;
  }
  double asNumber() const {
    expect(Type::kNumber, "number");
    return num_;
  }
  const std::string& asString() const {
    expect(Type::kString, "string");
    return str_;
  }
  const std::vector<Json>& items() const {
    expect(Type::kArray, "array");
    return items_;
  }
  const std::vector<Member>& members() const {
    expect(Type::kObject, "object");
    return members_;
  }

  // Object lookup; null when the key is absent.
  const Json* find(std::string_view key) const {
    expect(Type::kObject, "object");
    for (const Member& m : members_)
      if (m.first == key) return &m.second;
    return nullptr;
  }
  const Json& at(std::string_view key) const {
    const Json* v = find(key);
    VODSM_CHECK_MSG(v != nullptr, "missing JSON key: " + std::string(key));
    return *v;
  }

 private:
  void expect(Type t, const char* name) const {
    VODSM_CHECK_MSG(type_ == t,
                    std::string("JSON value is not a ") + name);
  }

  struct Parser {
    std::string_view text;
    size_t pos;

    [[noreturn]] void fail(const std::string& why) const {
      throw Error("JSON parse error at byte " + std::to_string(pos) + ": " +
                  why);
    }
    void skipWs() {
      while (pos < text.size() &&
             (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
              text[pos] == '\r'))
        ++pos;
    }
    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }
    void consume(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }
    bool eat(char c) {
      if (pos < text.size() && text[pos] == c) {
        ++pos;
        return true;
      }
      return false;
    }
    void literal(std::string_view word) {
      if (text.substr(pos, word.size()) != word)
        fail("invalid literal");
      pos += word.size();
    }

    Json parseValue() {
      skipWs();
      switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return Json::str(parseString());
        case 't': literal("true"); return Json::boolean(true);
        case 'f': literal("false"); return Json::boolean(false);
        case 'n': literal("null"); return Json();
        default: return parseNumber();
      }
    }

    Json parseObject() {
      consume('{');
      Json v;
      v.type_ = Type::kObject;
      skipWs();
      if (eat('}')) return v;
      while (true) {
        skipWs();
        std::string key = parseString();
        skipWs();
        consume(':');
        v.members_.emplace_back(std::move(key), parseValue());
        skipWs();
        if (eat('}')) return v;
        consume(',');
      }
    }

    Json parseArray() {
      consume('[');
      Json v;
      v.type_ = Type::kArray;
      skipWs();
      if (eat(']')) return v;
      while (true) {
        v.items_.push_back(parseValue());
        skipWs();
        if (eat(']')) return v;
        consume(',');
      }
    }

    std::string parseString() {
      consume('"');
      std::string out;
      while (true) {
        char c = peek();
        ++pos;
        if (c == '"') return out;
        if (static_cast<unsigned char>(c) < 0x20)
          fail("unescaped control character in string");
        if (c != '\\') {
          out.push_back(c);
          continue;
        }
        char e = peek();
        ++pos;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': appendCodepoint(out, parseHex4()); break;
          default: fail("invalid escape");
        }
      }
    }

    uint32_t parseHex4() {
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        char c = peek();
        ++pos;
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
        else fail("invalid \\u escape");
      }
      return v;
    }

    void appendCodepoint(std::string& out, uint32_t cp) {
      // Combine a surrogate pair when one follows; a lone surrogate is kept
      // as-is (these artifacts never contain one, but don't crash on it).
      if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
          text[pos] == '\\' && text[pos + 1] == 'u') {
        pos += 2;
        uint32_t lo = parseHex4();
        if (lo >= 0xDC00 && lo <= 0xDFFF)
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      }
      if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    }

    Json parseNumber() {
      const size_t start = pos;
      eat('-');
      while (pos < text.size() &&
             ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
              text[pos] == '-'))
        ++pos;
      if (pos == start) fail("invalid value");
      const std::string tok(text.substr(start, pos - start));
      size_t used = 0;
      double d = 0;
      try {
        d = std::stod(tok, &used);
      } catch (const std::exception&) {
        fail("invalid number '" + tok + "'");
      }
      if (used != tok.size()) fail("invalid number '" + tok + "'");
      Json v;
      v.type_ = Type::kNumber;
      v.num_ = d;
      return v;
    }
  };

  static Json boolean(bool b) {
    Json v;
    v.type_ = Type::kBool;
    v.num_ = b ? 1 : 0;
    return v;
  }
  static Json str(std::string s) {
    Json v;
    v.type_ = Type::kString;
    v.str_ = std::move(s);
    return v;
  }

  Type type_ = Type::kNull;
  double num_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

}  // namespace vodsm::support
