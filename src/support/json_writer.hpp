// Streaming JSON writer with deterministic, byte-stable output.
//
// The repo's emitters (BENCH_tables.json, model JSON) are regression-gated
// byte-for-byte, so the writer never reorders members, never varies
// whitespace, and formats every number through an explicit printf format
// chosen by the caller ("%.6f" for seconds, "%.17g" for model coefficients
// that must round-trip). Comma/indent bookkeeping lives here so emitters
// read as a flat sequence of key()/value() calls.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vodsm::support {

// RFC 8259 string escaping: quotes, backslash, control characters.
inline std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// printf-formatted double; callers pick the precision their artifact gates
// on. "%.17g" round-trips any double exactly.
inline std::string jsonNumber(double v, const char* fmt = "%.17g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject() {
    open('{');
    return *this;
  }
  JsonWriter& endObject() {
    close('}');
    return *this;
  }
  JsonWriter& beginArray() {
    open('[');
    return *this;
  }
  JsonWriter& endArray() {
    close(']');
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    indent();
    os_ << '"' << jsonEscape(k) << "\": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    lead();
    os_ << '"' << jsonEscape(s) << '"';
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    lead();
    os_ << (b ? "true" : "false");
    return *this;
  }
  JsonWriter& value(int v) {
    lead();
    os_ << v;
    return *this;
  }
  JsonWriter& value(long long v) {
    lead();
    os_ << v;
    return *this;
  }
  JsonWriter& value(double v, const char* fmt = "%.17g") {
    lead();
    os_ << jsonNumber(v, fmt);
    return *this;
  }

 private:
  void open(char c) {
    lead();
    os_ << c;
    stack_.push_back(false);
  }
  void close(char c) {
    const bool had_items = !stack_.empty() && stack_.back();
    if (!stack_.empty()) stack_.pop_back();
    if (had_items) {
      os_ << '\n';
      indentRaw();
    }
    os_ << c;
  }
  // Before a value: either it completes a pending key, or it is an array /
  // top-level element and needs its own comma + indent.
  void lead() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    comma();
    indent();
  }
  void comma() {
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }
  void indent() {
    if (!stack_.empty()) {
      os_ << '\n';
      indentRaw();
    }
  }
  void indentRaw() {
    for (size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // per open container: "has emitted an item"
  bool pending_key_ = false;
};

}  // namespace vodsm::support
