// Byte-buffer and serialization helpers for protocol messages.
//
// All wire formats in the DSM and msg layers are built from these two
// primitives: Writer appends fixed-width little-endian integers and raw byte
// ranges; Reader consumes them with bounds checking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace vodsm {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutByteSpan = std::span<std::byte>;

// Appends primitive values to a growable byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void u8(uint8_t v) { appendRaw(&v, 1); }
  void u16(uint16_t v) { appendLe(v); }
  void u32(uint32_t v) { appendLe(v); }
  void u64(uint64_t v) { appendLe(v); }
  void i64(int64_t v) { appendLe(static_cast<uint64_t>(v)); }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    appendLe(bits);
  }
  void bytes(ByteSpan b) { appendRaw(b.data(), b.size()); }

  // Pre-size for `n` further bytes so hot serialization paths (diff-heavy
  // messages) append without intermediate reallocations.
  void reserveMore(size_t n) { buf_.reserve(buf_.size() + n); }

  // Length-prefixed byte range.
  void blob(ByteSpan b) {
    u32(static_cast<uint32_t>(b.size()));
    bytes(b);
  }

  size_t size() const { return buf_.size(); }
  Bytes take() { return std::move(buf_); }
  ByteSpan view() const { return buf_; }

 private:
  template <typename T>
  void appendLe(T v) {
    // Host is little-endian on every supported platform; memcpy keeps this
    // well-defined either way since both ends use the same routine.
    appendRaw(&v, sizeof(T));
  }
  void appendRaw(const void* p, size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  Bytes buf_;
};

// Consumes primitive values from a byte range, with bounds checks.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  uint8_t u8() { return static_cast<uint8_t>(takeRaw(1)[0]); }
  uint16_t u16() { return takeLe<uint16_t>(); }
  uint32_t u32() { return takeLe<uint32_t>(); }
  uint64_t u64() { return takeLe<uint64_t>(); }
  int64_t i64() { return static_cast<int64_t>(takeLe<uint64_t>()); }
  double f64() {
    uint64_t bits = takeLe<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  ByteSpan bytes(size_t n) { return takeRaw(n); }
  ByteSpan blob() { return takeRaw(u32()); }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T takeLe() {
    ByteSpan raw = takeRaw(sizeof(T));
    T v;
    std::memcpy(&v, raw.data(), sizeof(T));
    return v;
  }
  ByteSpan takeRaw(size_t n) {
    VODSM_CHECK_MSG(remaining() >= n, "short read: want " << n << ", have "
                                                          << remaining());
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace vodsm
