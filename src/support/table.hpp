// Fixed-width text table printer used by the benchmark harness to render
// paper-style statistics and speedup tables.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace vodsm {

// Column-aligned table; first column is left-aligned row labels, the rest are
// right-aligned values.
class TextTable {
 public:
  void header(std::vector<std::string> cells) { header_ = std::move(cells); }

  void row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Convenience for numeric rows: label + already formatted values.
  template <typename... Ts>
  void rowv(const std::string& label, Ts&&... vals) {
    std::vector<std::string> cells{label};
    (cells.push_back(format(std::forward<Ts>(vals))), ...);
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<size_t> widths = columnWidths();
    if (!header_.empty()) {
      printRow(os, header_, widths);
      printRule(os, widths);
    }
    for (const auto& r : rows_) printRow(os, r, widths);
  }

  static std::string format(const std::string& s) { return s; }
  static std::string format(const char* s) { return s; }
  static std::string format(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  template <typename T>
  static std::string format(T v)
    requires std::is_integral_v<T>
  {
    return withThousands(static_cast<long long>(v));
  }

  // 1234567 -> "1,234,567", matching the paper's table style.
  static std::string withThousands(long long v) {
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
      if (count != 0 && count % 3 == 0) out.push_back(',');
      out.push_back(*it);
      ++count;
    }
    if (v < 0) out.push_back('-');
    return {out.rbegin(), out.rend()};
  }

 private:
  std::vector<size_t> columnWidths() const {
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string>& r) {
      if (widths.size() < r.size()) widths.resize(r.size());
      for (size_t i = 0; i < r.size(); ++i)
        widths[i] = std::max(widths[i], r[i].size());
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);
    return widths;
  }

  static void printRow(std::ostream& os, const std::vector<std::string>& r,
                       const std::vector<size_t>& widths) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i == 0)
        os << std::left << std::setw(static_cast<int>(widths[i])) << r[i];
      else
        os << "  " << std::right << std::setw(static_cast<int>(widths[i]))
           << r[i];
    }
    os << '\n';
  }

  static void printRule(std::ostream& os, const std::vector<size_t>& widths) {
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i)
      total += widths[i] + (i == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vodsm
