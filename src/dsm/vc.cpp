#include "dsm/vc.hpp"

#include <algorithm>
#include <map>

#include "net/parallel.hpp"

namespace vodsm::dsm {

VcRuntime::VcRuntime(NodeCtx& ctx, bool integrated)
    : Runtime(ctx), sd_(integrated), last_seen_(ctx.views.viewCount(), 0) {
  if (ctx_.proto.view_homes == ViewHomes::kMigrate) {
    const size_t nv = ctx_.views.viewCount();
    home_cache_.resize(nv);
    is_home_.resize(nv);
    for (ViewId v = 0; v < nv; ++v) {
      home_cache_[v] = viewManager(v);
      is_home_[v] = home_cache_[v] == ctx_.id ? 1 : 0;
    }
  }
  ctx_.endpoint.setHandler(
      [this](net::Delivery&& d, const net::ReplyToken& token) {
        onMessage(std::move(d), token);
      });
}

void VcRuntime::onMessage(net::Delivery&& d, const net::ReplyToken& token) {
  switch (d.type) {
    case kViewAcq:
      onViewAcq(ViewAcqMsg::decode(d.payload), d.arrive);
      return;
    case kViewGrant: {
      ViewGrantMsg g = ViewGrantMsg::decode(d.payload);
      // The sender is the view's current home; remember it so the release
      // (and the next acquire) go straight there after a migration.
      if (ctx_.proto.view_homes == ViewHomes::kMigrate)
        home_cache_[g.view] = d.src;
      auto it = grant_waiters_.find(g.view);
      VODSM_CHECK_MSG(it != grant_waiters_.end(),
                      "unexpected view grant for view " << g.view);
      ctx_.clock.atLeast(d.arrive);
      it->second->fulfill(std::move(g));
      return;
    }
    case kViewRelease:
      onViewRelease(ViewReleaseMsg::decode(d.payload), d.arrive);
      return;
    case kViewReadRelease:
      onViewReadRelease(ViewReadReleaseMsg::decode(d.payload), d.arrive);
      return;
    case kViewMigrate:
      onViewMigrate(ViewMigrateMsg::decode(d.payload), d.arrive);
      return;
    case kVcDiffReq:
      onVcDiffReq(DiffReqMsg::decode(d.payload), token, d.arrive);
      return;
    case kBarrArrive:
      onBarrArrive(BarrArriveMsg::decode(d.payload), d.arrive);
      return;
    case kBarrRelease: {
      BarrReleaseMsg rel = BarrReleaseMsg::decode(d.payload);
      if (ctx_.proto.barrier == BarrierAlg::kTree) {
        const sim::Time when = d.arrive + ctx_.costs.handler_service;
        for (int k = 0; k < treeChildCount(); ++k)
          ctx_.endpoint.post(treeChild(k), kBarrRelease, Bytes(d.payload),
                             when);
      }
      auto it = barrier_waiters_.find(rel.barrier);
      VODSM_CHECK_MSG(it != barrier_waiters_.end(),
                      "unexpected barrier release " << rel.barrier);
      ctx_.clock.atLeast(d.arrive);
      it->second->fulfill(std::move(rel));
      return;
    }
    case kBarrRound: {
      BarrRoundMsg rm = BarrRoundMsg::decode(d.payload);
      const auto key = std::make_pair(rm.barrier, rm.round);
      auto it = round_waiters_.find(key);
      if (it != round_waiters_.end()) {
        ctx_.clock.atLeast(d.arrive);
        it->second->fulfill(std::move(rm));
      } else {
        const bool parked =
            round_early_.emplace(key, std::make_pair(std::move(rm), d.arrive))
                .second;
        VODSM_CHECK_MSG(parked, "duplicate early barrier round message");
      }
      return;
    }
    default:
      VODSM_CHECK_MSG(false, "VC: unknown message type " << d.type);
  }
}

// ---------- acquire / release ----------

sim::Task<void> VcRuntime::acquireView(ViewId v, bool readonly) {
  VODSM_CHECK_MSG(v < ctx_.views.viewCount(), "unknown view " << v);
  if (!readonly) {
    VODSM_CHECK_MSG(!write_held_.has_value(),
                    "acquire_view(" << v << ") nested inside acquire_view("
                                    << *write_held_ << ")");
    VODSM_CHECK_MSG(!holdsForRead(v),
                    "acquire_view(" << v << ") while holding it read-only");
  } else {
    VODSM_CHECK_MSG(write_held_ != v,
                    "acquire_Rview(" << v << ") while write-holding it");
  }
  ctx_.stats.acquires++;
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kAcquireWait, t0, v);
  auto waiter = std::make_unique<sim::Waiter<ViewGrantMsg>>();
  auto* waiter_ptr = waiter.get();
  VODSM_CHECK_MSG(!grant_waiters_.count(v),
                  "concurrent acquisitions of view " << v << " on one node");
  grant_waiters_[v] = std::move(waiter);
  ViewAcqMsg req{v, ctx_.id, static_cast<uint8_t>(readonly ? 0 : 1),
                 last_seen_[v]};
  ctx_.endpoint.post(homeFor(v), kViewAcq, req.encode(), ctx_.clock.now());
  ViewGrantMsg g = co_await *waiter_ptr;
  grant_waiters_.erase(v);

  if (sd_) {
    // Integrated diffs arrive with the grant: apply them now; the view's
    // pages are fully valid afterwards (no remote faults ever).
    for (const mem::Diff& d : g.diffs) {
      VODSM_DCHECK(!ctx_.store.hasTwin(d.page()));
      d.apply(ctx_.store.page(d.page()));
      ctx_.clock.charge(ctx_.costs.diffApply(d.wireSize()));
      ctx_.stats.diffs_applied++;
      ctx_.store.setAccess(d.page(), mem::Access::kRead);
      if (auto* t = ctx_.trace)
        t->instant(ctx_.id, obs::Cat::kDiffApply, ctx_.clock.now(), d.page(),
                   d.wireSize());
      if (auto* m = ctx_.metrics)
        m->add(ctx_.id, obs::Metric::kDiffsApplied, 1, ctx_.clock.now());
    }
  } else {
    for (const VcNotice& n : g.notices) {
      ctx_.stats.notices_recorded++;
      ctx_.clock.charge(ctx_.costs.apply_notice);
      if (auto* t = ctx_.trace)
        t->instant(ctx_.id, obs::Cat::kNotice, ctx_.clock.now(), n.page,
                   n.writer);
      if (auto* m = ctx_.metrics)
        m->add(ctx_.id, obs::Metric::kPendingNotices, 1, ctx_.clock.now());
      pending_[n.page].push_back(n);
      ctx_.store.setAccess(n.page, mem::Access::kNone);
    }
  }
  last_seen_[v] = g.cur_version;
  if (readonly) {
    read_depth_[v]++;
  } else {
    write_held_ = v;
    write_version_ = g.write_version;
  }
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kAcquireWait, ctx_.clock.now(), v);
  ctx_.stats.acquire_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.acquire_waits++;
}

sim::Task<void> VcRuntime::releaseView(ViewId v, bool readonly) {
  if (readonly) {
    auto it = read_depth_.find(v);
    VODSM_CHECK_MSG(it != read_depth_.end() && it->second > 0,
                    "release_Rview(" << v << ") not read-held");
    it->second--;
    ViewReadReleaseMsg rel{v, ctx_.id};
    ctx_.endpoint.post(homeFor(v), kViewReadRelease, rel.encode(),
                       ctx_.clock.now());
    co_return;
  }
  VODSM_CHECK_MSG(write_held_ == v, "release_view(" << v << ") not held");
  ViewReleaseMsg rel;
  rel.view = v;
  rel.writer = ctx_.id;
  rel.version = write_version_;
  if (auto* t = ctx_.trace; t && !dirty_.empty())
    t->begin(ctx_.id, obs::Cat::kDiffCreate, ctx_.clock.now());
  uint64_t diff_bytes = 0;
  const size_t dirty_pages = dirty_.size();
  for (mem::PageId p : dirty_) {
    mem::Diff d = ctx_.store.diffAgainstTwin(p);
    ctx_.clock.charge(ctx_.costs.diffCreate(d.wireSize()));
    diff_bytes += d.wireSize();
    ctx_.store.dropTwin(p);
    if (auto* m = ctx_.metrics) {
      m->add(ctx_.id, obs::Metric::kTwinBytes,
             -static_cast<int64_t>(mem::kPageSize), ctx_.clock.now());
      m->add(ctx_.id, obs::Metric::kTwinReclaimBytes,
             static_cast<int64_t>(mem::kPageSize), ctx_.clock.now());
    }
    ctx_.store.setAccess(p, mem::Access::kRead);
    if (d.empty()) continue;
    ctx_.stats.diffs_created++;
    if (auto* m = ctx_.metrics)
      m->add(ctx_.id, obs::Metric::kDiffsCreated, 1, ctx_.clock.now());
    rel.pages.push_back(p);
    if (sd_) {
      // The single diff leaves this node with the release message; its home
      // storage is accounted on the manager in onViewRelease.
      rel.diffs.push_back(std::move(d));
    } else {
      if (auto* m = ctx_.metrics) {
        m->add(ctx_.id, obs::Metric::kDiffStoreBytes,
               static_cast<int64_t>(d.wireSize()), ctx_.clock.now());
        m->add(ctx_.id, obs::Metric::kDiffStoreCount, 1, ctx_.clock.now());
      }
      diff_log_[p].emplace_back(write_version_, std::move(d));
    }
  }
  if (auto* t = ctx_.trace; t && dirty_pages > 0)
    t->end(ctx_.id, obs::Cat::kDiffCreate, ctx_.clock.now(), dirty_pages,
           diff_bytes);
  dirty_.clear();
  last_seen_[v] = write_version_;
  write_held_.reset();
  ctx_.endpoint.post(homeFor(v), kViewRelease, rel.encode(), ctx_.clock.now());
  co_return;
}

sim::Task<void> VcRuntime::acquireLock(LockId) {
  VODSM_CHECK_MSG(false, "VC runtimes do not provide lock primitives; "
                         "use views (VOPP) instead");
  co_return;  // unreachable
}

sim::Task<void> VcRuntime::releaseLock(LockId) {
  VODSM_CHECK_MSG(false, "VC runtimes do not provide lock primitives");
  co_return;  // unreachable
}

// ---------- manager side ----------

void VcRuntime::onViewAcq(const ViewAcqMsg& m, sim::Time arrive) {
  if (ctx_.proto.view_homes == ViewHomes::kMigrate && !is_home_[m.view]) {
    auto mit = migrate_.find(m.view);
    if (mit != migrate_.end() && mit->second.moved_to) {
      // We gave this view away; bounce the request to where it went. A
      // chain of moves terminates at the current home (or loops briefly
      // until an in-flight migration back to us lands and clears moved_to).
      ctx_.endpoint.post(*mit->second.moved_to, kViewAcq, m.encode(),
                         arrive + ctx_.costs.handler_service);
    } else {
      // We are the new home but the acquire overtook the migration state
      // (retransmission reorders old-home traffic under loss); park it.
      pending_home_[m.view].emplace_back(m, arrive);
    }
    return;
  }
  ViewMgrState& st = mgr_[m.view];
  const sim::Time when = arrive + ctx_.costs.handler_service;
  const bool want_write = m.write != 0;
  // Strict FIFO: anyone queues behind an incompatible holder or a nonempty
  // queue (prevents writer starvation).
  const bool must_wait =
      !st.queue.empty() || st.write_held || (want_write && st.readers > 0);
  if (must_wait)
    st.queue.push_back(m);
  else
    grantNow(m, st, when);
}

void VcRuntime::grantNow(const ViewAcqMsg& m, ViewMgrState& st,
                         sim::Time when) {
  ViewGrantMsg g;
  g.view = m.view;
  g.cur_version = st.cur_version;
  if (m.write) {
    st.write_held = true;
    g.write_version = st.cur_version + 1;
  } else {
    st.readers++;
  }
  if (sd_) {
    // One integrated diff per page modified in (last_seen, cur].
    std::set<mem::PageId> stale;
    for (uint32_t ver = m.last_seen + 1; ver <= st.cur_version; ++ver)
      for (mem::PageId p : st.history[ver - 1].second) stale.insert(p);
    VODSM_CHECK_MSG(m.last_seen == 0 || m.last_seen >= st.gc_version,
                    "view " << m.view << " GC ran past node " << m.requester
                            << "'s last seen version");
    size_t bytes = 0;
    for (mem::PageId p : stale) {
      const auto& log = st.diff_log[p];
      std::optional<mem::Diff> acc;
      // A first-time acquirer starts from the GC'd integration prefix; it
      // is the same left fold over versions [1, gc_version] grantNow used
      // to compute from the log, so the shipped diff is bit-identical.
      if (m.last_seen == 0) {
        auto bit = st.base.find(p);
        if (bit != st.base.end()) acc = bit->second;
      }
      for (const auto& [ver, d] : log) {
        if (ver <= m.last_seen) continue;
        acc = acc ? mem::Diff::integrate(*acc, d) : d;
      }
      VODSM_DCHECK(acc.has_value());
      bytes += acc->wireSize();
      g.diffs.push_back(std::move(*acc));
    }
    // Integration work happens on the manager before the grant leaves.
    when += ctx_.costs.diffApply(bytes);
  } else {
    for (uint32_t ver = m.last_seen + 1; ver <= st.cur_version; ++ver) {
      const auto& [writer, pages] = st.history[ver - 1];
      for (mem::PageId p : pages) g.notices.push_back(VcNotice{p, ver, writer});
    }
  }
  if (auto* t = ctx_.trace)
    t->instant(ctx_.id, obs::Cat::kGrant, when, m.view, m.requester);
  ctx_.endpoint.post(m.requester, kViewGrant, g.encode(), when);
  if (sd_) {
    // The grant fixes what the requester will claim as last_seen next time:
    // the granted version for readers, the version it is about to write for
    // writers (releaseView sets last_seen_ = write_version_).
    uint32_t& s = st.seen[m.requester];
    s = std::max(s, m.write ? g.write_version : g.cur_version);
    sdGc(st, when);
  }
}

// Home-side diff GC. Every per-version diff at or below the minimum granted
// version can only ever be consumed as part of the full (0, cur] prefix (a
// node past it never asks again, and a first-time acquirer needs the whole
// prefix), so fold it into the per-page base diff and drop it. Pure
// bookkeeping: charges no simulated time, sends nothing.
void VcRuntime::sdGc(ViewMgrState& st, sim::Time when) {
  uint32_t min_seen = st.cur_version;
  for (const auto& [node, ver] : st.seen) min_seen = std::min(min_seen, ver);
  if (st.seen.empty() || min_seen <= st.gc_version) return;
  int64_t delta_bytes = 0;
  int64_t delta_count = 0;
  for (auto& [p, log] : st.diff_log) {
    size_t k = 0;
    auto bit = st.base.find(p);
    while (k < log.size() && log[k].first <= min_seen) {
      mem::Diff& d = log[k].second;
      if (bit == st.base.end()) {
        bit = st.base.emplace(p, std::move(d)).first;
      } else {
        const int64_t before = static_cast<int64_t>(bit->second.wireSize()) +
                               static_cast<int64_t>(d.wireSize());
        bit->second = mem::Diff::integrate(bit->second, d);
        delta_bytes += static_cast<int64_t>(bit->second.wireSize()) - before;
        delta_count -= 1;
      }
      ++k;
    }
    log.erase(log.begin(), log.begin() + static_cast<ptrdiff_t>(k));
  }
  st.gc_version = min_seen;
  if (auto* mr = ctx_.metrics; mr && (delta_bytes != 0 || delta_count != 0)) {
    mr->add(ctx_.id, obs::Metric::kDiffStoreBytes, delta_bytes, when);
    mr->add(ctx_.id, obs::Metric::kDiffStoreCount, delta_count, when);
    mr->add(ctx_.id, obs::Metric::kDiffReclaimBytes, -delta_bytes, when);
  }
}

void VcRuntime::onViewRelease(const ViewReleaseMsg& m, sim::Time arrive) {
  ViewMgrState& st = mgr_[m.view];
  VODSM_CHECK_MSG(st.write_held && m.version == st.cur_version + 1,
                  "out-of-order view release");
  st.cur_version = m.version;
  st.history.emplace_back(m.writer, m.pages);
  sim::Time when = arrive + ctx_.costs.handler_service;
  if (sd_) {
    size_t bytes = 0;
    for (const mem::Diff& d : m.diffs) {
      bytes += d.wireSize();
      if (auto* mr = ctx_.metrics) {
        mr->add(ctx_.id, obs::Metric::kDiffStoreBytes,
                static_cast<int64_t>(d.wireSize()), arrive);
        mr->add(ctx_.id, obs::Metric::kDiffStoreCount, 1, arrive);
      }
      st.diff_log[d.page()].emplace_back(m.version, d);
    }
    when += ctx_.costs.diffApply(bytes);  // home-side bookkeeping
  }
  st.write_held = false;
  pumpQueue(m.view, st, when);
  maybeMigrate(m.view, m.writer, when);
}

// Track consecutive same-writer releases; once the streak reaches the
// threshold and the view is idle, ship the whole manager state to that
// writer so its future acquisitions and releases stay node-local.
void VcRuntime::maybeMigrate(ViewId view, NodeId writer, sim::Time when) {
  if (ctx_.proto.view_homes != ViewHomes::kMigrate) return;
  if (ctx_.views.view(view).home) return;  // pinned homes never move
  MigrateInfo& mi = migrate_[view];
  if (writer == mi.last_writer) {
    mi.streak++;
  } else {
    mi.last_writer = writer;
    mi.streak = 1;
  }
  if (writer == ctx_.id) return;  // already local to the dominant writer
  if (mi.streak < ctx_.proto.migrate_threshold) return;
  ViewMgrState& st = mgr_[view];
  if (st.write_held || st.readers > 0 || !st.queue.empty()) return;

  ViewMigrateMsg msg;
  msg.view = view;
  msg.cur_version = st.cur_version;
  msg.gc_version = st.gc_version;
  msg.history = st.history;
  msg.diff_log.assign(st.diff_log.begin(), st.diff_log.end());
  std::sort(msg.diff_log.begin(), msg.diff_log.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  msg.base.assign(st.base.begin(), st.base.end());
  std::sort(msg.base.begin(), msg.base.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  msg.seen.assign(st.seen.begin(), st.seen.end());
  std::sort(msg.seen.begin(), msg.seen.end());

  // The home storage leaves with the state.
  int64_t bytes = 0;
  int64_t count = 0;
  for (const auto& [page, log] : msg.diff_log) {
    for (const auto& [ver, d] : log) {
      bytes += static_cast<int64_t>(d.wireSize());
      count++;
    }
  }
  for (const auto& [page, d] : msg.base) {
    bytes += static_cast<int64_t>(d.wireSize());
    count++;
  }
  if (auto* mr = ctx_.metrics; mr && count > 0) {
    mr->add(ctx_.id, obs::Metric::kDiffStoreBytes, -bytes, when);
    mr->add(ctx_.id, obs::Metric::kDiffStoreCount, -count, when);
  }

  ctx_.stats.view_migrations++;
  ctx_.endpoint.post(writer, kViewMigrate, msg.encode(), when);
  mi.moved_to = writer;
  mi.streak = 0;
  is_home_[view] = 0;
  mgr_.erase(view);
}

void VcRuntime::onViewMigrate(const ViewMigrateMsg& m, sim::Time arrive) {
  VODSM_CHECK(ctx_.proto.view_homes == ViewHomes::kMigrate);
  VODSM_CHECK_MSG(!mgr_.count(m.view),
                  "view " << m.view << " migrated into live manager state");
  ViewMgrState st;
  st.cur_version = m.cur_version;
  st.gc_version = m.gc_version;
  st.history = m.history;
  int64_t bytes = 0;
  int64_t count = 0;
  for (const auto& [page, log] : m.diff_log) {
    for (const auto& [ver, d] : log) {
      bytes += static_cast<int64_t>(d.wireSize());
      count++;
    }
    st.diff_log[page] = log;
  }
  for (const auto& [page, d] : m.base) {
    bytes += static_cast<int64_t>(d.wireSize());
    count++;
    st.base[page] = d;
  }
  for (const auto& [node, ver] : m.seen) st.seen[node] = ver;
  // Installing the shipped diff store is real work on the new home.
  const sim::Time when = arrive + ctx_.costs.handler_service +
                         ctx_.costs.diffApply(static_cast<size_t>(bytes));
  if (auto* mr = ctx_.metrics; mr && count > 0) {
    mr->add(ctx_.id, obs::Metric::kDiffStoreBytes, bytes, arrive);
    mr->add(ctx_.id, obs::Metric::kDiffStoreCount, count, arrive);
  }
  mgr_.emplace(m.view, std::move(st));
  is_home_[m.view] = 1;
  home_cache_[m.view] = ctx_.id;
  if (auto mit = migrate_.find(m.view); mit != migrate_.end())
    mit->second.moved_to.reset();
  // Serve acquires that overtook the migration.
  auto pit = pending_home_.find(m.view);
  if (pit != pending_home_.end()) {
    auto parked = std::move(pit->second);
    pending_home_.erase(pit);
    for (auto& [req, at] : parked) onViewAcq(req, std::max(at, when));
  }
}

void VcRuntime::onViewReadRelease(const ViewReadReleaseMsg& m,
                                  sim::Time arrive) {
  ViewMgrState& st = mgr_[m.view];
  VODSM_CHECK_MSG(st.readers > 0, "read release without readers");
  st.readers--;
  pumpQueue(m.view, st, arrive + ctx_.costs.handler_service);
}

void VcRuntime::pumpQueue(ViewId view, ViewMgrState& st, sim::Time when) {
  (void)view;
  while (!st.queue.empty()) {
    const ViewAcqMsg& front = st.queue.front();
    if (front.write) {
      if (st.write_held || st.readers > 0) break;
      ViewAcqMsg m = front;
      st.queue.pop_front();
      grantNow(m, st, when);
      break;
    }
    if (st.write_held) break;
    ViewAcqMsg m = front;
    st.queue.pop_front();
    grantNow(m, st, when);
  }
}

// ---------- faults / diff serving (VC_d only paths) ----------

sim::Task<void> VcRuntime::readFault(mem::PageId p) {
  auto it = pending_.find(p);
  if (it == pending_.end() || it->second.empty()) {
    ctx_.store.setAccess(p, ctx_.store.hasTwin(p) ? mem::Access::kWrite
                                                  : mem::Access::kRead);
    co_return;
  }
  VODSM_CHECK_MSG(!sd_, "VC_sd pages are updated at acquire; no remote fault");
  std::map<NodeId, std::vector<uint32_t>> by_writer;
  for (const VcNotice& n : it->second) by_writer[n.writer].push_back(n.version);

  // One request per writer, all in flight at once (TreadMarks style).
  std::vector<net::RpcCall> calls;
  for (auto& [writer, versions] : by_writer) {
    std::sort(versions.begin(), versions.end());
    ctx_.stats.diff_requests++;
    calls.push_back(
        net::RpcCall{writer, kVcDiffReq, DiffReqMsg{p, versions}.encode()});
  }
  std::vector<net::RpcResult> responses =
      co_await net::requestAll(ctx_.endpoint, std::move(calls),
                               ctx_.clock.now());
  std::vector<std::pair<uint32_t, mem::Diff>> collected;
  for (const net::RpcResult& resp : responses) {
    ctx_.clock.atLeast(resp.arrive);
    VODSM_CHECK(resp.type == kVcDiffResp);
    DiffRespMsg dr = DiffRespMsg::decode(resp.payload);
    for (auto& kv : dr.diffs) collected.push_back(std::move(kv));
  }
  std::sort(collected.begin(), collected.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [ver, d] : collected) {
    d.apply(ctx_.store.page(p));
    ctx_.clock.charge(ctx_.costs.diffApply(d.wireSize()));
    ctx_.stats.diffs_applied++;
    if (auto* t = ctx_.trace)
      t->instant(ctx_.id, obs::Cat::kDiffApply, ctx_.clock.now(), p,
                 d.wireSize());
    if (auto* m = ctx_.metrics)
      m->add(ctx_.id, obs::Metric::kDiffsApplied, 1, ctx_.clock.now());
  }
  if (auto* m = ctx_.metrics)
    m->add(ctx_.id, obs::Metric::kPendingNotices,
           -static_cast<int64_t>(it->second.size()), ctx_.clock.now());
  pending_.erase(p);
  ctx_.store.setAccess(p, ctx_.store.hasTwin(p) ? mem::Access::kWrite
                                                : mem::Access::kRead);
}

void VcRuntime::onVcDiffReq(const DiffReqMsg& m, const net::ReplyToken& token,
                            sim::Time arrive) {
  auto it = diff_log_.find(m.page);
  VODSM_CHECK_MSG(it != diff_log_.end(),
                  "VC diff request for page " << m.page << " with no diffs");
  DiffRespMsg resp;
  for (uint32_t want : m.interval_indices) {
    auto dit = std::lower_bound(
        it->second.begin(), it->second.end(), want,
        [](const auto& e, uint32_t v) { return e.first < v; });
    VODSM_CHECK_MSG(dit != it->second.end() && dit->first == want,
                    "missing VC diff for page " << m.page << " version "
                                                << want);
    resp.diffs.emplace_back(want, dit->second);
  }
  ctx_.endpoint.reply(token, kVcDiffResp, resp.encode(),
                      arrive + ctx_.costs.handler_service);
}

// ---------- dirty tracking & VOPP access checks ----------

void VcRuntime::onPageDirtied(mem::PageId p) {
  VODSM_DCHECK(write_held_.has_value());
  dirty_.insert(p);
}

void VcRuntime::checkReadAllowed(size_t offset, size_t len) {
  auto v = ctx_.views.viewOfPage(mem::pageOf(offset));
  VODSM_CHECK_MSG(v.has_value(),
                  "VOPP read at offset " << offset
                                         << " is outside every view");
  VODSM_CHECK_MSG(ctx_.views.viewContainsRange(*v, offset, len),
                  "VOPP read [" << offset << ", " << offset + len
                                << ") crosses view " << *v << " boundary");
  VODSM_CHECK_MSG(holdsForRead(*v),
                  "VOPP read of view " << *v << " without acquiring it");
}

void VcRuntime::checkWriteAllowed(size_t offset, size_t len) {
  auto v = ctx_.views.viewOfPage(mem::pageOf(offset));
  VODSM_CHECK_MSG(v.has_value(),
                  "VOPP write at offset " << offset
                                          << " is outside every view");
  VODSM_CHECK_MSG(ctx_.views.viewContainsRange(*v, offset, len),
                  "VOPP write [" << offset << ", " << offset + len
                                 << ") crosses view " << *v << " boundary");
  VODSM_CHECK_MSG(write_held_ == *v, "VOPP write to view "
                                         << *v
                                         << " without write-acquiring it");
}

// ---------- barriers (pure synchronization) ----------

sim::Task<void> VcRuntime::barrier(BarrierId b) {
  VODSM_CHECK_MSG(!write_held_.has_value(),
                  "barrier while holding view " << *write_held_);
  if (ctx_.proto.barrier == BarrierAlg::kButterfly) {
    co_await barrierButterfly(b);
    co_return;
  }
  BarrArriveMsg arrive_msg;
  arrive_msg.barrier = b;
  arrive_msg.node = ctx_.id;
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kBarrierWait, t0, b);
  auto waiter = std::make_unique<sim::Waiter<BarrReleaseMsg>>();
  auto* waiter_ptr = waiter.get();
  VODSM_CHECK_MSG(!barrier_waiters_.count(b),
                  "barrier " << b << " re-entered concurrently");
  barrier_waiters_[b] = std::move(waiter);
  const NodeId arrive_at =
      ctx_.proto.barrier == BarrierAlg::kTree ? ctx_.id : barrierManager();
  ctx_.endpoint.post(arrive_at, kBarrArrive, arrive_msg.encode(),
                     ctx_.clock.now());
  BarrReleaseMsg rel = co_await *waiter_ptr;
  barrier_waiters_.erase(b);
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kBarrierWait, ctx_.clock.now(), b);
  ctx_.stats.barrier_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.barrier_waits++;
}

void VcRuntime::onBarrArrive(const BarrArriveMsg& m, sim::Time arrive) {
  BarrierMgrState& st = barrier_mgr_[m.barrier];
  st.busy_until = std::max(st.busy_until, arrive) + ctx_.costs.barrier_fold;
  if (auto* t = ctx_.trace)
    t->instant(ctx_.id, obs::Cat::kBarrFold, st.busy_until, m.barrier, 0);
  st.arrived++;
  if (ctx_.proto.barrier == BarrierAlg::kTree) {
    treeBarrierStep(m.barrier, st);
    return;
  }
  if (st.arrived < ctx_.nprocs) return;
  ctx_.stats.barriers++;
  BarrReleaseMsg rel;
  rel.barrier = m.barrier;
  Bytes encoded = rel.encode();
  for (NodeId n = 0; n < static_cast<NodeId>(ctx_.nprocs); ++n)
    ctx_.endpoint.post(n, kBarrRelease, Bytes(encoded), st.busy_until);
  barrier_mgr_.erase(m.barrier);
}

void VcRuntime::treeBarrierStep(BarrierId b, BarrierMgrState& st) {
  if (st.arrived < 1 + treeChildCount()) return;
  if (ctx_.id == barrierManager()) {
    ctx_.stats.barriers++;
    BarrReleaseMsg rel;
    rel.barrier = b;
    // Self-post: the release fans down the tree from the root.
    ctx_.endpoint.post(ctx_.id, kBarrRelease, rel.encode(), st.busy_until);
  } else {
    BarrArriveMsg up;
    up.barrier = b;
    up.node = ctx_.id;
    ctx_.endpoint.post(treeParent(), kBarrArrive, up.encode(), st.busy_until);
  }
  barrier_mgr_.erase(b);
}

sim::Task<void> VcRuntime::barrierButterfly(BarrierId b) {
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kBarrierWait, t0, b);
  const auto p = static_cast<uint32_t>(ctx_.nprocs);
  for (uint32_t step = 1, round = 0; step < p; step <<= 1, ++round) {
    BarrRoundMsg out;
    out.barrier = b;
    out.round = round;
    out.node = ctx_.id;
    ctx_.endpoint.post((ctx_.id + step) % p, kBarrRound, out.encode(),
                       ctx_.clock.now());
    co_await awaitRound(b, round);
    ctx_.clock.charge(ctx_.costs.barrier_fold);
  }
  // One logical barrier per instance in the aggregate count.
  if (ctx_.id == 0) ctx_.stats.barriers++;
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kBarrierWait, ctx_.clock.now(), b);
  ctx_.stats.barrier_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.barrier_waits++;
}

sim::Task<BarrRoundMsg> VcRuntime::awaitRound(BarrierId b, uint32_t round) {
  const auto key = std::make_pair(b, round);
  auto eit = round_early_.find(key);
  if (eit != round_early_.end()) {
    BarrRoundMsg m = std::move(eit->second.first);
    ctx_.clock.atLeast(eit->second.second);
    round_early_.erase(eit);
    co_return m;
  }
  auto waiter = std::make_unique<sim::Waiter<BarrRoundMsg>>();
  auto* waiter_ptr = waiter.get();
  round_waiters_[key] = std::move(waiter);
  BarrRoundMsg m = co_await *waiter_ptr;
  round_waiters_.erase(key);
  co_return m;
}

}  // namespace vodsm::dsm
