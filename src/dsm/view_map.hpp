// Shared-address-space layout: views and raw allocations.
//
// A ViewMap is built once (before a run) and shared read-only by all nodes,
// mirroring how a VOPP program's views are fixed for the whole program.
// Views are page-aligned and never overlap (a VOPP requirement the library
// enforces); raw allocations (for traditional DSM programs) pack with
// natural alignment so distinct data structures can share pages — which is
// exactly what produces the false-sharing the paper's traditional programs
// suffer from.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "dsm/types.hpp"
#include "mem/page.hpp"
#include "support/check.hpp"

namespace vodsm::dsm {

class ViewMap {
 public:
  struct ViewDef {
    size_t offset = 0;  // byte offset in the shared space (page aligned)
    size_t bytes = 0;   // requested size
    mem::PageId first_page = 0;
    uint32_t page_count = 0;
    // Manager/home node. By default views are distributed round-robin
    // (id mod nprocs); a program with a known consumer can pin the home
    // there so VC_sd's release-time diff pushes land where they are read.
    std::optional<NodeId> home;
  };

  // Define a new view of `bytes` bytes. Returns its id (dense, 0-based).
  ViewId defineView(size_t bytes, std::optional<NodeId> home = std::nullopt) {
    VODSM_CHECK_MSG(bytes > 0, "empty view");
    alignTo(mem::kPageSize);
    ViewDef d;
    d.offset = top_;
    d.bytes = bytes;
    d.first_page = mem::pageOf(top_);
    size_t span = (bytes + mem::kPageSize - 1) / mem::kPageSize;
    d.page_count = static_cast<uint32_t>(span);
    d.home = home;
    top_ += span * mem::kPageSize;
    views_.push_back(d);
    const ViewId id = static_cast<ViewId>(views_.size() - 1);
    // Maintain the flat page -> view table (kNoView for gaps left by
    // allocRaw); viewOfPage is a hot per-fault lookup.
    page_view_.resize(d.first_page + d.page_count, kNoView);
    std::fill(page_view_.begin() + d.first_page, page_view_.end(), id);
    return id;
  }

  // The manager (home) node of view `v` on an `nprocs`-node cluster.
  NodeId managerOf(ViewId v, int nprocs) const {
    return managerOf(v, nprocs, ViewHomes::kDefault);
  }

  // Policy-aware placement: pinned homes are always honored; unpinned views
  // go id mod p by default, or through homeHash under kHashed/kMigrate so
  // dense id ranges (hot app structures) spread instead of striping.
  NodeId managerOf(ViewId v, int nprocs, ViewHomes policy) const {
    const ViewDef& d = view(v);
    if (d.home)
      return *d.home % static_cast<uint32_t>(nprocs);
    if (policy == ViewHomes::kDefault)
      return v % static_cast<uint32_t>(nprocs);
    return homeHash(v) % static_cast<uint32_t>(nprocs);
  }

  // Raw shared allocation for traditional (non-VOPP) programs. Natural
  // alignment only, so consecutive allocations share pages.
  size_t allocRaw(size_t bytes, size_t align = 8) {
    VODSM_CHECK(bytes > 0 && align > 0 && (align & (align - 1)) == 0);
    alignTo(align);
    size_t off = top_;
    top_ += bytes;
    return off;
  }

  size_t viewCount() const { return views_.size(); }
  const ViewDef& view(ViewId v) const {
    VODSM_CHECK_MSG(v < views_.size(), "unknown view " << v);
    return views_[v];
  }

  // The view containing page `p`, if any. O(1): a flat per-page table is
  // maintained by defineView (this is on the page-fault hot path).
  std::optional<ViewId> viewOfPage(mem::PageId p) const {
    if (p >= page_view_.size() || page_view_[p] == kNoView)
      return std::nullopt;
    return page_view_[p];
  }

  bool viewContainsRange(ViewId v, size_t offset, size_t len) const {
    const ViewDef& d = view(v);
    return offset >= d.offset && offset + len <= d.offset + d.bytes;
  }

  // Total shared space implied by the allocations (page-rounded).
  size_t heapBytes() const {
    return (top_ + mem::kPageSize - 1) / mem::kPageSize * mem::kPageSize;
  }

 private:
  static constexpr ViewId kNoView = static_cast<ViewId>(-1);

  void alignTo(size_t align) { top_ = (top_ + align - 1) / align * align; }

  std::vector<ViewDef> views_;
  std::vector<ViewId> page_view_;  // page -> owning view, kNoView if none
  size_t top_ = 0;
};

}  // namespace vodsm::dsm
