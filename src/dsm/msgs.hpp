// Wire formats for the DSM protocols.
//
// Every payload serializes through support/bytes.hpp, so message sizes in
// the statistics tables are the real encoded sizes.
#pragma once

#include <vector>

#include "dsm/types.hpp"
#include "mem/diff.hpp"
#include "mem/write_notice.hpp"
#include "net/stats.hpp"
#include "support/bytes.hpp"

namespace vodsm::dsm {

enum MsgType : uint16_t {
  // LRC lock protocol.
  kLockAcq = 1,      // requester -> manager {lock, requester, vclock}
  kLockAuth = 2,     // manager -> last releaser {lock, requester, vclock}
  kLockGrant = 3,    // last releaser -> requester {lock, vclock, intervals}
  kLockRelease = 14, // holder -> manager {lock}
  // LRC diff fetch.
  kDiffReq = 4,   // faulting node -> writer {page, interval indices}
  kDiffResp = 5,  // writer -> faulting node {diffs}
  // Barriers (shared types; payloads differ between LRC and VC).
  kBarrArrive = 6,
  kBarrRelease = 7,
  // VC view protocol.
  kViewAcq = 8,          // requester -> manager {view, write?, last_seen}
  kViewGrant = 9,        // manager -> requester
  kViewRelease = 10,     // writer -> manager {view, version, pages, [diffs]}
  kViewReadRelease = 11, // reader -> manager {view}
  // VC_d diff fetch.
  kVcDiffReq = 12,   // faulting node -> writer {page, versions}
  kVcDiffResp = 13,  // writer -> faulting node {diffs}
  // Butterfly (dissemination) barrier round: peer -> peer
  // {barrier, round, node, intervals}.
  kBarrRound = 15,
  // View home migration (ViewHomes::kMigrate): old home -> new home, the
  // view's full manager state.
  kViewMigrate = 16,
  // MPI-like point-to-point payloads (msg library).
  kMsgData = 64,
};

// Maps DSM message types onto the transport's traffic classes; installed on
// each endpoint so NetStats can attribute messages and retransmissions per
// kind.
inline net::MsgClass classifyMsg(uint16_t type) {
  switch (type) {
    case kLockAcq:
    case kLockAuth:
    case kViewAcq: return net::MsgClass::kAcquire;
    case kLockGrant:
    case kViewGrant: return net::MsgClass::kGrant;
    case kLockRelease:
    case kViewRelease:
    case kViewReadRelease: return net::MsgClass::kRelease;
    case kDiffReq:
    case kVcDiffReq: return net::MsgClass::kDiffRequest;
    case kDiffResp:
    case kVcDiffResp: return net::MsgClass::kDiffReply;
    case kBarrArrive:
    case kBarrRelease:
    case kBarrRound: return net::MsgClass::kBarrier;
    case kMsgData: return net::MsgClass::kData;
    default: return net::MsgClass::kOther;
  }
}

// ---- LRC payloads ----

struct LockAcqMsg {
  LockId lock = 0;
  NodeId requester = 0;
  mem::VClock vc;

  Bytes encode() const {
    Writer w;
    w.u32(lock);
    w.u32(requester);
    vc.serialize(w);
    return w.take();
  }
  static LockAcqMsg decode(ByteSpan b) {
    Reader r(b);
    LockAcqMsg m;
    m.lock = r.u32();
    m.requester = r.u32();
    m.vc = mem::VClock::deserialize(r);
    return m;
  }
};

struct LockGrantMsg {
  LockId lock = 0;
  mem::VClock grantor_vc;
  std::vector<mem::Interval> intervals;

  Bytes encode() const {
    Writer w;
    w.u32(lock);
    grantor_vc.serialize(w);
    w.u32(static_cast<uint32_t>(intervals.size()));
    for (const auto& iv : intervals) iv.serialize(w);
    return w.take();
  }
  static LockGrantMsg decode(ByteSpan b) {
    Reader r(b);
    LockGrantMsg m;
    m.lock = r.u32();
    m.grantor_vc = mem::VClock::deserialize(r);
    const uint32_t n = r.u32();
    m.intervals.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
      m.intervals.push_back(mem::Interval::deserialize(r));
    return m;
  }
};

struct DiffReqMsg {
  mem::PageId page = 0;
  std::vector<uint32_t> interval_indices;  // which intervals of the writer

  Bytes encode() const {
    Writer w;
    w.u32(page);
    w.u32(static_cast<uint32_t>(interval_indices.size()));
    for (uint32_t i : interval_indices) w.u32(i);
    return w.take();
  }
  static DiffReqMsg decode(ByteSpan b) {
    Reader r(b);
    DiffReqMsg m;
    m.page = r.u32();
    const uint32_t n = r.u32();
    m.interval_indices.reserve(n);
    for (uint32_t i = 0; i < n; ++i) m.interval_indices.push_back(r.u32());
    return m;
  }
};

struct DiffRespMsg {
  // (ordering key, diff) pairs; the key is the writer interval index (LRC)
  // or the view version (VC_d).
  std::vector<std::pair<uint32_t, mem::Diff>> diffs;

  Bytes encode() const {
    size_t total = 4;
    for (const auto& [key, d] : diffs) total += 4 + d.wireSize();
    Writer w(total);
    w.u32(static_cast<uint32_t>(diffs.size()));
    for (const auto& [key, d] : diffs) {
      w.u32(key);
      d.serialize(w);
    }
    return w.take();
  }
  static DiffRespMsg decode(ByteSpan b) {
    Reader r(b);
    DiffRespMsg m;
    const uint32_t n = r.u32();
    m.diffs.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t key = r.u32();
      m.diffs.emplace_back(key, mem::Diff::deserialize(r));
    }
    return m;
  }
};

// Barrier arrival. VC protocols leave `intervals` empty (pure sync).
struct BarrArriveMsg {
  BarrierId barrier = 0;
  NodeId node = 0;
  std::vector<mem::Interval> intervals;

  Bytes encode() const {
    Writer w;
    w.u32(barrier);
    w.u32(node);
    w.u32(static_cast<uint32_t>(intervals.size()));
    for (const auto& iv : intervals) iv.serialize(w);
    return w.take();
  }
  static BarrArriveMsg decode(ByteSpan b) {
    Reader r(b);
    BarrArriveMsg m;
    m.barrier = r.u32();
    m.node = r.u32();
    const uint32_t n = r.u32();
    m.intervals.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
      m.intervals.push_back(mem::Interval::deserialize(r));
    return m;
  }
};

// One dissemination-barrier round. VC protocols leave `intervals` empty;
// LRC carries everything the sender has accumulated since entering the
// barrier (its own fresh intervals plus those learned in earlier rounds),
// which is exactly the dissemination invariant receivers need.
struct BarrRoundMsg {
  BarrierId barrier = 0;
  uint32_t round = 0;
  NodeId node = 0;
  std::vector<mem::Interval> intervals;

  Bytes encode() const {
    Writer w;
    w.u32(barrier);
    w.u32(round);
    w.u32(node);
    w.u32(static_cast<uint32_t>(intervals.size()));
    for (const auto& iv : intervals) iv.serialize(w);
    return w.take();
  }
  static BarrRoundMsg decode(ByteSpan b) {
    Reader r(b);
    BarrRoundMsg m;
    m.barrier = r.u32();
    m.round = r.u32();
    m.node = r.u32();
    const uint32_t n = r.u32();
    m.intervals.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
      m.intervals.push_back(mem::Interval::deserialize(r));
    return m;
  }
};

struct BarrReleaseMsg {
  BarrierId barrier = 0;
  std::vector<mem::Interval> intervals;  // LRC: global merged set

  Bytes encode() const {
    Writer w;
    w.u32(barrier);
    w.u32(static_cast<uint32_t>(intervals.size()));
    for (const auto& iv : intervals) iv.serialize(w);
    return w.take();
  }
  static BarrReleaseMsg decode(ByteSpan b) {
    Reader r(b);
    BarrReleaseMsg m;
    m.barrier = r.u32();
    const uint32_t n = r.u32();
    m.intervals.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
      m.intervals.push_back(mem::Interval::deserialize(r));
    return m;
  }
};

// ---- VC payloads ----

struct ViewAcqMsg {
  ViewId view = 0;
  NodeId requester = 0;
  uint8_t write = 1;
  uint32_t last_seen = 0;  // last view version this node has incorporated

  Bytes encode() const {
    Writer w;
    w.u32(view);
    w.u32(requester);
    w.u8(write);
    w.u32(last_seen);
    return w.take();
  }
  static ViewAcqMsg decode(ByteSpan b) {
    Reader r(b);
    ViewAcqMsg m;
    m.view = r.u32();
    m.requester = r.u32();
    m.write = r.u8();
    m.last_seen = r.u32();
    return m;
  }
};

// One stale page in a view grant (VC_d): fetch version `version` from
// `writer`.
struct VcNotice {
  mem::PageId page = 0;
  uint32_t version = 0;
  NodeId writer = 0;
};

struct ViewGrantMsg {
  ViewId view = 0;
  uint32_t cur_version = 0;    // committed version at grant time
  uint32_t write_version = 0;  // version assigned to the writer (0 for reads)
  std::vector<VcNotice> notices;  // VC_d: stale pages to invalidate
  std::vector<mem::Diff> diffs;   // VC_sd: integrated diffs, applied eagerly

  Bytes encode() const {
    size_t total = 20 + notices.size() * 12;
    for (const auto& d : diffs) total += d.wireSize();
    Writer w(total);
    w.u32(view);
    w.u32(cur_version);
    w.u32(write_version);
    w.u32(static_cast<uint32_t>(notices.size()));
    for (const auto& n : notices) {
      w.u32(n.page);
      w.u32(n.version);
      w.u32(n.writer);
    }
    w.u32(static_cast<uint32_t>(diffs.size()));
    for (const auto& d : diffs) d.serialize(w);
    return w.take();
  }
  static ViewGrantMsg decode(ByteSpan b) {
    Reader r(b);
    ViewGrantMsg m;
    m.view = r.u32();
    m.cur_version = r.u32();
    m.write_version = r.u32();
    const uint32_t nn = r.u32();
    m.notices.reserve(nn);
    for (uint32_t i = 0; i < nn; ++i) {
      VcNotice n;
      n.page = r.u32();
      n.version = r.u32();
      n.writer = r.u32();
      m.notices.push_back(n);
    }
    const uint32_t nd = r.u32();
    m.diffs.reserve(nd);
    for (uint32_t i = 0; i < nd; ++i)
      m.diffs.push_back(mem::Diff::deserialize(r));
    return m;
  }
};

struct ViewReleaseMsg {
  ViewId view = 0;
  NodeId writer = 0;
  uint32_t version = 0;
  std::vector<mem::PageId> pages;  // pages dirtied in this version
  std::vector<mem::Diff> diffs;    // VC_sd: their diffs (home update)

  Bytes encode() const {
    size_t total = 20 + pages.size() * 4;
    for (const auto& d : diffs) total += d.wireSize();
    Writer w(total);
    w.u32(view);
    w.u32(writer);
    w.u32(version);
    w.u32(static_cast<uint32_t>(pages.size()));
    for (mem::PageId p : pages) w.u32(p);
    w.u32(static_cast<uint32_t>(diffs.size()));
    for (const auto& d : diffs) d.serialize(w);
    return w.take();
  }
  static ViewReleaseMsg decode(ByteSpan b) {
    Reader r(b);
    ViewReleaseMsg m;
    m.view = r.u32();
    m.writer = r.u32();
    m.version = r.u32();
    const uint32_t np = r.u32();
    m.pages.reserve(np);
    for (uint32_t i = 0; i < np; ++i) m.pages.push_back(r.u32());
    const uint32_t nd = r.u32();
    m.diffs.reserve(nd);
    for (uint32_t i = 0; i < nd; ++i)
      m.diffs.push_back(mem::Diff::deserialize(r));
    return m;
  }
};

// Full manager state of one view, shipped old home -> new home on a
// ViewHomes::kMigrate handoff (only ever sent while the view is idle: no
// writer, no readers, empty queue). Maps are flattened in ascending key
// order so the encoded bytes — and hence the simulated wire cost — are
// deterministic at every thread count.
struct ViewMigrateMsg {
  ViewId view = 0;
  uint32_t cur_version = 0;
  uint32_t gc_version = 0;
  // history[v-1] = (writer, pages) of version v.
  std::vector<std::pair<NodeId, std::vector<mem::PageId>>> history;
  // VC_sd home storage, per page ascending: version-tail and GC base.
  std::vector<std::pair<mem::PageId,
                        std::vector<std::pair<uint32_t, mem::Diff>>>>
      diff_log;
  std::vector<std::pair<mem::PageId, mem::Diff>> base;
  // Last granted version per node that ever acquired the view.
  std::vector<std::pair<NodeId, uint32_t>> seen;

  Bytes encode() const {
    Writer w;
    w.u32(view);
    w.u32(cur_version);
    w.u32(gc_version);
    w.u32(static_cast<uint32_t>(history.size()));
    for (const auto& [writer, pages] : history) {
      w.u32(writer);
      w.u32(static_cast<uint32_t>(pages.size()));
      for (mem::PageId p : pages) w.u32(p);
    }
    w.u32(static_cast<uint32_t>(diff_log.size()));
    for (const auto& [page, log] : diff_log) {
      w.u32(page);
      w.u32(static_cast<uint32_t>(log.size()));
      for (const auto& [ver, d] : log) {
        w.u32(ver);
        d.serialize(w);
      }
    }
    w.u32(static_cast<uint32_t>(base.size()));
    for (const auto& [page, d] : base) {
      w.u32(page);
      d.serialize(w);
    }
    w.u32(static_cast<uint32_t>(seen.size()));
    for (const auto& [node, ver] : seen) {
      w.u32(node);
      w.u32(ver);
    }
    return w.take();
  }
  static ViewMigrateMsg decode(ByteSpan b) {
    Reader r(b);
    ViewMigrateMsg m;
    m.view = r.u32();
    m.cur_version = r.u32();
    m.gc_version = r.u32();
    const uint32_t nh = r.u32();
    m.history.reserve(nh);
    for (uint32_t i = 0; i < nh; ++i) {
      NodeId writer = r.u32();
      const uint32_t np = r.u32();
      std::vector<mem::PageId> pages;
      pages.reserve(np);
      for (uint32_t k = 0; k < np; ++k) pages.push_back(r.u32());
      m.history.emplace_back(writer, std::move(pages));
    }
    const uint32_t nl = r.u32();
    m.diff_log.reserve(nl);
    for (uint32_t i = 0; i < nl; ++i) {
      mem::PageId page = r.u32();
      const uint32_t nd = r.u32();
      std::vector<std::pair<uint32_t, mem::Diff>> log;
      log.reserve(nd);
      for (uint32_t k = 0; k < nd; ++k) {
        uint32_t ver = r.u32();
        log.emplace_back(ver, mem::Diff::deserialize(r));
      }
      m.diff_log.emplace_back(page, std::move(log));
    }
    const uint32_t nb = r.u32();
    m.base.reserve(nb);
    for (uint32_t i = 0; i < nb; ++i) {
      mem::PageId page = r.u32();
      m.base.emplace_back(page, mem::Diff::deserialize(r));
    }
    const uint32_t ns = r.u32();
    m.seen.reserve(ns);
    for (uint32_t i = 0; i < ns; ++i) {
      NodeId node = r.u32();
      uint32_t ver = r.u32();
      m.seen.emplace_back(node, ver);
    }
    return m;
  }
};

struct ViewReadReleaseMsg {
  ViewId view = 0;
  NodeId reader = 0;

  Bytes encode() const {
    Writer w;
    w.u32(view);
    w.u32(reader);
    return w.take();
  }
  static ViewReadReleaseMsg decode(ByteSpan b) {
    Reader r(b);
    ViewReadReleaseMsg m;
    m.view = r.u32();
    m.reader = r.u32();
    return m;
  }
};

}  // namespace vodsm::dsm
