// LRC_d: diff-based Lazy Release Consistency (TreadMarks-style).
//
// - Vector-timestamped intervals close at lock releases and barriers.
// - Lock grants travel manager -> last owner -> requester, piggybacking
//   every interval (write notices) the requester has not covered.
// - A page fault sends diff requests to each writer named by the page's
//   pending write notices and merges the replies.
// - Barriers are consistency points: every node ships its fresh intervals
//   to the centralized barrier manager, which merges and rebroadcasts the
//   global set. This is the centralized hot spot the paper measures.
//   ProtoOptions can swap the centralized manager for a radix-k combining
//   tree (arrivals merge level by level, the release fans back down) or a
//   dissemination (butterfly) barrier (ceil(log2 p) peer-exchange rounds,
//   each round carrying everything accumulated since barrier entry) — see
//   DESIGN.md §3.12.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "dsm/msgs.hpp"
#include "dsm/runtime.hpp"
#include "mem/vclock.hpp"
#include "mem/write_notice.hpp"
#include "sim/waiter.hpp"

namespace vodsm::dsm {

class LrcRuntime : public Runtime {
 public:
  explicit LrcRuntime(NodeCtx& ctx);

  sim::Task<void> acquireLock(LockId l) override;
  sim::Task<void> releaseLock(LockId l) override;
  sim::Task<void> barrier(BarrierId b) override;

  // VOPP programs can run on LRC by mapping views onto locks (used by the
  // correctness test suite; the paper's measurements run traditional
  // programs on LRC_d).
  sim::Task<void> acquireView(ViewId v, bool readonly) override;
  sim::Task<void> releaseView(ViewId v, bool readonly) override;

 protected:
  sim::Task<void> readFault(mem::PageId p) override;
  void onPageDirtied(mem::PageId p) override { dirty_.insert(p); }

 private:
  struct LockState {
    bool held = false;
    bool waiting = false;
  };
  // Manager-side lock record. Grants are *authorized* by the manager and
  // *served* by the last releaser (which carries the LRC knowledge): the
  // manager never authorizes a node that might still be holding, so the
  // protocol has no deferred-forward state at the nodes and cannot deadlock
  // on crossing re-acquisitions.
  struct LockMgrState {
    bool held = false;
    NodeId holder = 0;
    NodeId last_releaser;  // initialized to the manager itself
    std::deque<LockAcqMsg> queue;
    explicit LockMgrState(NodeId mgr) : last_releaser(mgr) {}
  };
  struct BarrierMgrState {
    int arrived = 0;
    sim::Time busy_until = 0;
    std::map<std::pair<uint32_t, uint32_t>, mem::Interval> merged;
  };

  void onMessage(net::Delivery&& d, const net::ReplyToken& token);
  void onLockAcq(const LockAcqMsg& m, sim::Time arrive);
  void onLockAuth(const LockAcqMsg& m, sim::Time arrive);
  void onLockRelease(LockId lock, sim::Time arrive);
  void onDiffReq(const DiffReqMsg& m, const net::ReplyToken& token,
                 sim::Time arrive);
  void onBarrArrive(const BarrArriveMsg& m, sim::Time arrive);
  // Tree mode: forward the merged subtree arrival up (or, at the root,
  // start the release fan-down) once this node and all its children are in.
  void treeBarrierStep(BarrierId b, BarrierMgrState& st);
  // Butterfly mode: the whole barrier is peer-exchange rounds.
  sim::Task<void> barrierButterfly(BarrierId b);
  sim::Task<BarrRoundMsg> awaitRound(BarrierId b, uint32_t round);

  // Close the current write interval: diff dirty pages, log them, record
  // the interval.
  void closeInterval();
  // Record a foreign interval: store it, note-invalidate its pages, bump vc.
  void recordForeignInterval(const mem::Interval& iv);
  // Build and send a lock grant to `req` no earlier than `when`.
  void sendGrant(const LockAcqMsg& req, sim::Time when);
  // All intervals this node knows that `vc` does not cover.
  std::vector<mem::Interval> intervalsNotCoveredBy(const mem::VClock& vc) const;

  LockId viewLock(ViewId v) const {
    // Views map onto a disjoint lock namespace when VOPP runs on LRC.
    return static_cast<LockId>(v) + 0x40000000u;
  }

  mem::VClock vc_;
  mem::VClock last_barrier_vc_;
  std::set<mem::PageId> dirty_;
  // [writer] -> intervals in ascending index order (contiguous from 1:
  // LRC knowledge is prefix-closed per writer).
  std::vector<std::vector<mem::Interval>> intervals_by_writer_;
  // page -> pending write notices (diffs not yet fetched)
  std::unordered_map<mem::PageId, std::vector<mem::WriteNotice>> pending_;
  // own diffs: page -> (interval index, diff), ascending
  std::unordered_map<mem::PageId,
                     std::vector<std::pair<uint32_t, mem::Diff>>>
      diff_log_;

  std::unordered_map<LockId, LockState> locks_;
  std::unordered_map<LockId, std::unique_ptr<sim::Waiter<LockGrantMsg>>>
      grant_waiters_;
  std::unordered_map<BarrierId, std::unique_ptr<sim::Waiter<BarrReleaseMsg>>>
      barrier_waiters_;
  // Butterfly rounds: exactly one peer sends per (barrier, round), but its
  // message can overtake this node's progress — park early arrivals with
  // their arrival time.
  std::map<std::pair<BarrierId, uint32_t>,
           std::unique_ptr<sim::Waiter<BarrRoundMsg>>>
      round_waiters_;
  std::map<std::pair<BarrierId, uint32_t>, std::pair<BarrRoundMsg, sim::Time>>
      round_early_;

  // Manager-side state (meaningful only for ids this node manages).
  std::unordered_map<LockId, LockMgrState> lock_mgr_;
  std::unordered_map<BarrierId, BarrierMgrState> barrier_mgr_;
};

}  // namespace vodsm::dsm
