// Per-node DSM runtime: the interface the VOPP layer and applications call,
// plus the shared page-fault skeleton. Concrete protocols (LRC_d, VC_d,
// VC_sd) subclass this and implement the synchronization operations and the
// fault handlers.
#pragma once

#include <algorithm>
#include <memory>

#include "dsm/msgs.hpp"
#include "dsm/types.hpp"
#include "dsm/view_map.hpp"
#include "mem/page_store.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vodsm::dsm {

// Everything one simulated node owns. Built by the cluster, handed to the
// runtime and the application environment.
struct NodeCtx {
  NodeCtx(NodeId id_, int nprocs_, sim::Engine& engine_, net::Network& network,
          const ViewMap& views_, const DsmCosts& costs_,
          obs::TraceRecorder* trace_ = nullptr,
          obs::MetricsRegistry* metrics_ = nullptr, ProtoOptions proto_ = {})
      : id(id_),
        nprocs(nprocs_),
        engine(engine_),
        endpoint(engine_, network, id_),
        store(views_.heapBytes()),
        views(views_),
        costs(costs_),
        proto(proto_),
        trace(trace_),
        metrics(metrics_) {
    endpoint.setClassifier(&classifyMsg);
    endpoint.setTrace(trace);
  }

  NodeId id;
  int nprocs;
  sim::Engine& engine;
  net::Endpoint endpoint;
  sim::Clock clock;
  mem::PageStore store;
  const ViewMap& views;
  DsmCosts costs;
  ProtoOptions proto;
  DsmStats stats;
  obs::TraceRecorder* trace;      // null when tracing is off
  obs::MetricsRegistry* metrics;  // null when metrics are off
};

class Runtime {
 public:
  explicit Runtime(NodeCtx& ctx) : ctx_(ctx) {
    // All nodes start with identical zeroed pages mapped read-only, the
    // canonical initial DSM state.
    for (mem::PageId p = 0; p < ctx_.store.pageCount(); ++p)
      ctx_.store.setAccess(p, mem::Access::kRead);
  }
  virtual ~Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  NodeCtx& ctx() { return ctx_; }

  // --- synchronization API (app side; may block) ---
  virtual sim::Task<void> acquireView(ViewId v, bool readonly) = 0;
  virtual sim::Task<void> releaseView(ViewId v, bool readonly) = 0;
  virtual sim::Task<void> acquireLock(LockId l) = 0;
  virtual sim::Task<void> releaseLock(LockId l) = 0;
  virtual sim::Task<void> barrier(BarrierId b) = 0;

  // --- memory access declaration (app side; may block on faults) ---
  // Validate the byte range for reading; triggers simulated read faults.
  sim::Task<void> touchRead(size_t offset, size_t len) {
    checkReadAllowed(offset, len);
    const mem::PageId first = mem::pageOf(offset);
    const mem::PageId last = mem::pageOf(offset + len - 1);
    for (mem::PageId p = first; p <= last; ++p) {
      if (ctx_.store.access(p) == mem::Access::kNone) {
        ctx_.stats.page_faults++;
        if (auto* t = ctx_.trace)
          t->begin(ctx_.id, obs::Cat::kFault, ctx_.clock.now(), p);
        ctx_.clock.charge(ctx_.costs.page_fault);
        co_await readFault(p);
        if (auto* t = ctx_.trace)
          t->end(ctx_.id, obs::Cat::kFault, ctx_.clock.now(), p);
      }
    }
  }

  // Validate the byte range for writing; read-faults stale pages, then
  // creates twins (write faults).
  sim::Task<void> touchWrite(size_t offset, size_t len) {
    checkWriteAllowed(offset, len);
    const mem::PageId first = mem::pageOf(offset);
    const mem::PageId last = mem::pageOf(offset + len - 1);
    for (mem::PageId p = first; p <= last; ++p) {
      if (ctx_.store.access(p) == mem::Access::kWrite) continue;
      ctx_.stats.page_faults++;
      if (auto* t = ctx_.trace)
        t->begin(ctx_.id, obs::Cat::kFault, ctx_.clock.now(), p);
      ctx_.clock.charge(ctx_.costs.page_fault);
      if (ctx_.store.access(p) == mem::Access::kNone) co_await readFault(p);
      if (!ctx_.store.hasTwin(p)) {
        ctx_.store.makeTwin(p);
        ctx_.clock.charge(ctx_.costs.twin_copy);
        if (auto* t = ctx_.trace)
          t->instant(ctx_.id, obs::Cat::kTwin, ctx_.clock.now(), p);
        if (auto* m = ctx_.metrics)
          m->add(ctx_.id, obs::Metric::kTwinBytes,
                 static_cast<int64_t>(mem::kPageSize), ctx_.clock.now());
      }
      ctx_.store.setAccess(p, mem::Access::kWrite);
      onPageDirtied(p);
      if (auto* t = ctx_.trace)
        t->end(ctx_.id, obs::Cat::kFault, ctx_.clock.now(), p);
    }
  }

 protected:
  // Bring one invalid page up to date (protocol-specific).
  virtual sim::Task<void> readFault(mem::PageId p) = 0;
  // Record that `p` is being written under the current synchronization
  // scope (protocol-specific bookkeeping).
  virtual void onPageDirtied(mem::PageId p) = 0;
  // VOPP-model access checking (VC protocols enforce view coverage; LRC
  // allows everything).
  virtual void checkReadAllowed(size_t, size_t) {}
  virtual void checkWriteAllowed(size_t, size_t) {}

  // Lock managers follow the directory sharding policy: id mod p by
  // default, a multiplicative hash under kHashed/kMigrate (locks never
  // migrate; kMigrate only moves VC view homes).
  NodeId managerOf(LockId l) const {
    const auto p = static_cast<uint32_t>(ctx_.nprocs);
    if (ctx_.proto.view_homes == ViewHomes::kDefault)
      return static_cast<NodeId>(l % p);
    return static_cast<NodeId>(homeHash(l) % p);
  }
  // Root of the barrier structure: the centralized manager, and the root of
  // the combining tree (the butterfly has no distinguished node).
  NodeId barrierManager() const { return 0; }

  // Combining-tree shape (BarrierAlg::kTree): node i's parent is
  // (i-1)/radix, its children radix*i+1 .. radix*i+radix, clamped to p.
  NodeId treeParent() const {
    const int r = ctx_.proto.barrier_radix;
    return static_cast<NodeId>((static_cast<int>(ctx_.id) - 1) / r);
  }
  int treeChildCount() const {
    const int r = ctx_.proto.barrier_radix;
    const int first = r * static_cast<int>(ctx_.id) + 1;
    if (first >= ctx_.nprocs) return 0;
    return std::min(r, ctx_.nprocs - first);
  }
  NodeId treeChild(int k) const {
    return static_cast<NodeId>(ctx_.proto.barrier_radix *
                                   static_cast<int>(ctx_.id) +
                               1 + k);
  }

  NodeCtx& ctx_;
};

}  // namespace vodsm::dsm
