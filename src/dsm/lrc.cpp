#include "dsm/lrc.hpp"

#include <algorithm>

#include "net/parallel.hpp"

namespace vodsm::dsm {

LrcRuntime::LrcRuntime(NodeCtx& ctx)
    : Runtime(ctx),
      vc_(static_cast<size_t>(ctx.nprocs)),
      last_barrier_vc_(static_cast<size_t>(ctx.nprocs)),
      intervals_by_writer_(static_cast<size_t>(ctx.nprocs)) {
  ctx_.endpoint.setHandler(
      [this](net::Delivery&& d, const net::ReplyToken& token) {
        onMessage(std::move(d), token);
      });
}

void LrcRuntime::onMessage(net::Delivery&& d, const net::ReplyToken& token) {
  switch (d.type) {
    case kLockAcq:
      onLockAcq(LockAcqMsg::decode(d.payload), d.arrive);
      return;
    case kLockAuth:
      onLockAuth(LockAcqMsg::decode(d.payload), d.arrive);
      return;
    case kLockRelease: {
      Reader r(d.payload);
      onLockRelease(r.u32(), d.arrive);
      return;
    }
    case kLockGrant: {
      LockGrantMsg g = LockGrantMsg::decode(d.payload);
      auto it = grant_waiters_.find(g.lock);
      VODSM_CHECK_MSG(it != grant_waiters_.end(),
                      "unexpected lock grant for lock " << g.lock);
      ctx_.clock.atLeast(d.arrive);
      it->second->fulfill(std::move(g));
      return;
    }
    case kDiffReq:
      onDiffReq(DiffReqMsg::decode(d.payload), token, d.arrive);
      return;
    case kBarrArrive:
      onBarrArrive(BarrArriveMsg::decode(d.payload), d.arrive);
      return;
    case kBarrRelease: {
      BarrReleaseMsg rel = BarrReleaseMsg::decode(d.payload);
      if (ctx_.proto.barrier == BarrierAlg::kTree) {
        // Fan the release down to our subtree before unblocking ourselves;
        // the payload is the complete global set, forwarded verbatim.
        const sim::Time when = d.arrive + ctx_.costs.handler_service;
        for (int k = 0; k < treeChildCount(); ++k)
          ctx_.endpoint.post(treeChild(k), kBarrRelease, Bytes(d.payload),
                             when);
      }
      auto it = barrier_waiters_.find(rel.barrier);
      VODSM_CHECK_MSG(it != barrier_waiters_.end(),
                      "unexpected barrier release " << rel.barrier);
      ctx_.clock.atLeast(d.arrive);
      it->second->fulfill(std::move(rel));
      return;
    }
    case kBarrRound: {
      BarrRoundMsg rm = BarrRoundMsg::decode(d.payload);
      const auto key = std::make_pair(rm.barrier, rm.round);
      auto it = round_waiters_.find(key);
      if (it != round_waiters_.end()) {
        ctx_.clock.atLeast(d.arrive);
        it->second->fulfill(std::move(rm));
      } else {
        // The peer can be one barrier instance ahead of us (the classic
        // dissemination-barrier overlap); park its message until we enter.
        const bool parked =
            round_early_.emplace(key, std::make_pair(std::move(rm), d.arrive))
                .second;
        VODSM_CHECK_MSG(parked, "duplicate early barrier round message");
      }
      return;
    }
    default:
      VODSM_CHECK_MSG(false, "LRC: unknown message type " << d.type);
  }
}

// ---------- locks ----------

sim::Task<void> LrcRuntime::acquireLock(LockId l) {
  LockState& st = locks_[l];
  VODSM_CHECK_MSG(!st.held && !st.waiting,
                  "lock " << l << " acquired while already held/waited on");
  ctx_.stats.acquires++;
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kAcquireWait, t0, l);
  st.waiting = true;
  auto waiter = std::make_unique<sim::Waiter<LockGrantMsg>>();
  auto* waiter_ptr = waiter.get();
  grant_waiters_[l] = std::move(waiter);
  LockAcqMsg req{l, ctx_.id, vc_};
  ctx_.endpoint.post(managerOf(l), kLockAcq, req.encode(), ctx_.clock.now());
  LockGrantMsg g = co_await *waiter_ptr;
  grant_waiters_.erase(l);
  for (const auto& iv : g.intervals) recordForeignInterval(iv);
  vc_.merge(g.grantor_vc);
  st.waiting = false;
  st.held = true;
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kAcquireWait, ctx_.clock.now(), l);
  ctx_.stats.acquire_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.acquire_waits++;
}

sim::Task<void> LrcRuntime::releaseLock(LockId l) {
  LockState& st = locks_[l];
  VODSM_CHECK_MSG(st.held, "releasing lock " << l << " not held");
  closeInterval();
  st.held = false;
  Writer w;
  w.u32(l);
  ctx_.endpoint.post(managerOf(l), kLockRelease, w.take(), ctx_.clock.now());
  co_return;
}

void LrcRuntime::onLockAcq(const LockAcqMsg& m, sim::Time arrive) {
  auto it = lock_mgr_.try_emplace(m.lock, ctx_.id).first;
  LockMgrState& st = it->second;
  if (st.held) {
    st.queue.push_back(m);
    return;
  }
  st.held = true;
  st.holder = m.requester;
  const sim::Time when = arrive + ctx_.costs.handler_service;
  if (st.last_releaser == ctx_.id) {
    onLockAuth(m, when);
  } else {
    ctx_.endpoint.post(st.last_releaser, kLockAuth, m.encode(), when);
  }
}

void LrcRuntime::onLockAuth(const LockAcqMsg& m, sim::Time arrive) {
  // We are the last releaser of this lock, hence by construction no longer
  // holding it: grant immediately from our accumulated knowledge.
  sendGrant(m, arrive + ctx_.costs.handler_service);
}

void LrcRuntime::onLockRelease(LockId lock, sim::Time arrive) {
  auto it = lock_mgr_.find(lock);
  VODSM_CHECK_MSG(it != lock_mgr_.end() && it->second.held,
                  "release of unheld lock " << lock);
  LockMgrState& st = it->second;
  st.held = false;
  st.last_releaser = st.holder;
  if (st.queue.empty()) return;
  LockAcqMsg next = std::move(st.queue.front());
  st.queue.pop_front();
  st.held = true;
  st.holder = next.requester;
  const sim::Time when = arrive + ctx_.costs.handler_service;
  if (st.last_releaser == ctx_.id) {
    onLockAuth(next, when);
  } else {
    ctx_.endpoint.post(st.last_releaser, kLockAuth, next.encode(), when);
  }
}

void LrcRuntime::sendGrant(const LockAcqMsg& req, sim::Time when) {
  LockGrantMsg g;
  g.lock = req.lock;
  g.grantor_vc = vc_;
  g.intervals = intervalsNotCoveredBy(req.vc);
  if (auto* t = ctx_.trace)
    t->instant(ctx_.id, obs::Cat::kGrant, when, req.lock, req.requester);
  ctx_.endpoint.post(req.requester, kLockGrant, g.encode(), when);
}

std::vector<mem::Interval> LrcRuntime::intervalsNotCoveredBy(
    const mem::VClock& vc) const {
  std::vector<mem::Interval> out;
  for (size_t w = 0; w < intervals_by_writer_.size(); ++w) {
    const auto& ivs = intervals_by_writer_[w];
    // ivs[i] has index i+1; send everything past vc[w].
    for (size_t i = vc[w]; i < ivs.size(); ++i) out.push_back(ivs[i]);
  }
  return out;
}

void LrcRuntime::recordForeignInterval(const mem::Interval& iv) {
  if (vc_[iv.node] >= iv.index) return;  // already known
  auto& ivs = intervals_by_writer_[iv.node];
  VODSM_CHECK_MSG(iv.index == ivs.size() + 1,
                  "non-contiguous interval knowledge for node " << iv.node);
  ivs.push_back(iv);
  for (mem::PageId p : iv.pages) {
    ctx_.stats.notices_recorded++;
    ctx_.clock.charge(ctx_.costs.apply_notice);
    if (auto* t = ctx_.trace)
      t->instant(ctx_.id, obs::Cat::kNotice, ctx_.clock.now(), p, iv.node);
    if (auto* m = ctx_.metrics)
      m->add(ctx_.id, obs::Metric::kPendingNotices, 1, ctx_.clock.now());
    pending_[p].push_back(mem::WriteNotice{iv.node, iv.index});
    // Invalidate; a local twin (concurrent false-sharing writes) survives so
    // the fault can merge foreign diffs under our uncommitted changes.
    ctx_.store.setAccess(p, mem::Access::kNone);
  }
  vc_[iv.node] = iv.index;
}

void LrcRuntime::closeInterval() {
  if (dirty_.empty()) return;
  if (auto* t = ctx_.trace)
    t->begin(ctx_.id, obs::Cat::kDiffCreate, ctx_.clock.now());
  std::vector<mem::PageId> pages;
  std::vector<mem::Diff> diffs;
  uint64_t diff_bytes = 0;
  for (mem::PageId p : dirty_) {
    mem::Diff d = ctx_.store.diffAgainstTwin(p);
    ctx_.clock.charge(ctx_.costs.diffCreate(d.wireSize()));
    diff_bytes += d.wireSize();
    ctx_.store.dropTwin(p);
    if (auto* m = ctx_.metrics) {
      m->add(ctx_.id, obs::Metric::kTwinBytes,
             -static_cast<int64_t>(mem::kPageSize), ctx_.clock.now());
      m->add(ctx_.id, obs::Metric::kTwinReclaimBytes,
             static_cast<int64_t>(mem::kPageSize), ctx_.clock.now());
    }
    if (ctx_.store.access(p) == mem::Access::kWrite)
      ctx_.store.setAccess(p, mem::Access::kRead);
    if (d.empty()) continue;  // touched but unchanged: nothing to propagate
    ctx_.stats.diffs_created++;
    if (auto* m = ctx_.metrics)
      m->add(ctx_.id, obs::Metric::kDiffsCreated, 1, ctx_.clock.now());
    pages.push_back(p);
    diffs.push_back(std::move(d));
  }
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kDiffCreate, ctx_.clock.now(), dirty_.size(),
           diff_bytes);
  dirty_.clear();
  if (pages.empty()) return;
  const uint32_t idx = ++vc_[ctx_.id];
  for (size_t i = 0; i < pages.size(); ++i) {
    if (auto* m = ctx_.metrics) {
      m->add(ctx_.id, obs::Metric::kDiffStoreBytes,
             static_cast<int64_t>(diffs[i].wireSize()), ctx_.clock.now());
      m->add(ctx_.id, obs::Metric::kDiffStoreCount, 1, ctx_.clock.now());
    }
    diff_log_[pages[i]].emplace_back(idx, std::move(diffs[i]));
  }
  mem::Interval iv;
  iv.node = ctx_.id;
  iv.index = idx;
  iv.vc = vc_;
  iv.pages = std::move(pages);
  VODSM_DCHECK(intervals_by_writer_[ctx_.id].size() + 1 == idx);
  intervals_by_writer_[ctx_.id].push_back(std::move(iv));
}

// ---------- page faults / diff serving ----------

sim::Task<void> LrcRuntime::readFault(mem::PageId p) {
  auto it = pending_.find(p);
  if (it == pending_.end() || it->second.empty()) {
    // Cold page: the initial zeroed copy is valid.
    ctx_.store.setAccess(p, ctx_.store.hasTwin(p) ? mem::Access::kWrite
                                                  : mem::Access::kRead);
    co_return;
  }
  std::map<NodeId, std::vector<uint32_t>> by_writer;
  for (const mem::WriteNotice& wn : it->second)
    by_writer[wn.writer].push_back(wn.interval_index);

  struct Fetched {
    uint64_t vc_sum;  // linear extension of happens-before
    NodeId writer;
    uint32_t index;
    mem::Diff diff;
  };
  // One request per writer, all in flight at once (TreadMarks style).
  std::vector<net::RpcCall> calls;
  std::vector<NodeId> writers;
  for (auto& [writer, indices] : by_writer) {
    std::sort(indices.begin(), indices.end());
    ctx_.stats.diff_requests++;
    calls.push_back(
        net::RpcCall{writer, kDiffReq, DiffReqMsg{p, indices}.encode()});
    writers.push_back(writer);
  }
  std::vector<net::RpcResult> responses =
      co_await net::requestAll(ctx_.endpoint, std::move(calls),
                               ctx_.clock.now());
  std::vector<Fetched> collected;
  for (size_t r = 0; r < responses.size(); ++r) {
    const net::RpcResult& resp = responses[r];
    const NodeId writer = writers[r];
    ctx_.clock.atLeast(resp.arrive);
    VODSM_CHECK(resp.type == kDiffResp);
    DiffRespMsg dr = DiffRespMsg::decode(resp.payload);
    for (auto& [index, diff] : dr.diffs) {
      // The interval's vector clock is known locally (its write notice came
      // with the interval). vc-sum linearizes happens-before: if a hb b,
      // a.vc <= b.vc pointwise and strictly somewhere, so sum(a) < sum(b).
      // Concurrent intervals (false sharing) touch disjoint bytes, so their
      // relative order is irrelevant.
      const mem::Interval& iv = intervals_by_writer_[writer][index - 1];
      uint64_t sum = 0;
      for (size_t k = 0; k < iv.vc.size(); ++k) sum += iv.vc[k];
      collected.push_back(Fetched{sum, writer, index, std::move(diff)});
    }
  }
  std::sort(collected.begin(), collected.end(), [](const auto& a,
                                                   const auto& b) {
    return std::tie(a.vc_sum, a.writer, a.index) <
           std::tie(b.vc_sum, b.writer, b.index);
  });
  for (const Fetched& f : collected) {
    f.diff.apply(ctx_.store.page(p));
    ctx_.clock.charge(ctx_.costs.diffApply(f.diff.wireSize()));
    ctx_.stats.diffs_applied++;
    if (auto* t = ctx_.trace)
      t->instant(ctx_.id, obs::Cat::kDiffApply, ctx_.clock.now(), p,
                 f.diff.wireSize());
    if (auto* m = ctx_.metrics)
      m->add(ctx_.id, obs::Metric::kDiffsApplied, 1, ctx_.clock.now());
  }
  if (auto* m = ctx_.metrics)
    m->add(ctx_.id, obs::Metric::kPendingNotices,
           -static_cast<int64_t>(it->second.size()), ctx_.clock.now());
  pending_.erase(p);
  ctx_.store.setAccess(p, ctx_.store.hasTwin(p) ? mem::Access::kWrite
                                                : mem::Access::kRead);
}

void LrcRuntime::onDiffReq(const DiffReqMsg& m, const net::ReplyToken& token,
                           sim::Time arrive) {
  auto it = diff_log_.find(m.page);
  VODSM_CHECK_MSG(it != diff_log_.end(),
                  "diff request for page " << m.page << " with no diffs");
  DiffRespMsg resp;
  for (uint32_t want : m.interval_indices) {
    auto dit = std::lower_bound(
        it->second.begin(), it->second.end(), want,
        [](const auto& e, uint32_t v) { return e.first < v; });
    VODSM_CHECK_MSG(dit != it->second.end() && dit->first == want,
                    "missing diff for page " << m.page << " interval "
                                             << want);
    resp.diffs.emplace_back(want, dit->second);
  }
  ctx_.endpoint.reply(token, kDiffResp, resp.encode(),
                      arrive + ctx_.costs.handler_service);
}

// ---------- barriers ----------

sim::Task<void> LrcRuntime::barrier(BarrierId b) {
  if (ctx_.proto.barrier == BarrierAlg::kButterfly) {
    co_await barrierButterfly(b);
    co_return;
  }
  closeInterval();
  BarrArriveMsg arrive_msg;
  arrive_msg.barrier = b;
  arrive_msg.node = ctx_.id;
  arrive_msg.intervals = intervalsNotCoveredBy(last_barrier_vc_);
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kBarrierWait, t0, b);
  auto waiter = std::make_unique<sim::Waiter<BarrReleaseMsg>>();
  auto* waiter_ptr = waiter.get();
  VODSM_CHECK_MSG(!barrier_waiters_.count(b),
                  "barrier " << b << " re-entered concurrently");
  barrier_waiters_[b] = std::move(waiter);
  // Tree mode: arrivals combine bottom-up, so every node (leaves included)
  // first folds its own arrival locally; node 0's target is unchanged.
  const NodeId arrive_at =
      ctx_.proto.barrier == BarrierAlg::kTree ? ctx_.id : barrierManager();
  ctx_.endpoint.post(arrive_at, kBarrArrive, arrive_msg.encode(),
                     ctx_.clock.now());
  BarrReleaseMsg rel = co_await *waiter_ptr;
  barrier_waiters_.erase(b);
  for (const auto& iv : rel.intervals) recordForeignInterval(iv);
  last_barrier_vc_ = vc_;
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kBarrierWait, ctx_.clock.now(), b);
  ctx_.stats.barrier_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.barrier_waits++;
}

void LrcRuntime::onBarrArrive(const BarrArriveMsg& m, sim::Time arrive) {
  BarrierMgrState& st = barrier_mgr_[m.barrier];
  size_t notice_count = 0;
  for (const auto& iv : m.intervals) {
    notice_count += iv.pages.size();
    st.merged.try_emplace({iv.node, iv.index}, iv);
  }
  // The manager folds arrivals serially; consistency-carrying barriers pay
  // per-notice merge cost, which is what makes LRC barriers centralized and
  // slow at scale.
  st.busy_until = std::max(st.busy_until, arrive) + ctx_.costs.barrier_fold +
                  ctx_.costs.barrier_per_notice *
                      static_cast<sim::Time>(notice_count);
  if (auto* t = ctx_.trace)
    t->instant(ctx_.id, obs::Cat::kBarrFold, st.busy_until, m.barrier,
               notice_count);
  st.arrived++;
  if (ctx_.proto.barrier == BarrierAlg::kTree) {
    treeBarrierStep(m.barrier, st);
    return;
  }
  if (st.arrived < ctx_.nprocs) return;

  ctx_.stats.barriers++;
  BarrReleaseMsg rel;
  rel.barrier = m.barrier;
  rel.intervals.reserve(st.merged.size());
  for (auto& [key, iv] : st.merged) rel.intervals.push_back(std::move(iv));
  // Keyed by (node, index): already sorted per writer ascending, which the
  // receivers' contiguity check requires.
  Bytes encoded = rel.encode();
  for (NodeId n = 0; n < static_cast<NodeId>(ctx_.nprocs); ++n)
    ctx_.endpoint.post(n, kBarrRelease, Bytes(encoded), st.busy_until);
  barrier_mgr_.erase(m.barrier);
}

void LrcRuntime::treeBarrierStep(BarrierId b, BarrierMgrState& st) {
  // Wait for this node's own arrival plus one merged arrival per child
  // subtree; then the (node, index)-keyed map holds the subtree's interval
  // set sorted per writer ascending, as the contiguity check downstream
  // requires.
  if (st.arrived < 1 + treeChildCount()) return;
  if (ctx_.id == barrierManager()) {
    ctx_.stats.barriers++;
    BarrReleaseMsg rel;
    rel.barrier = b;
    rel.intervals.reserve(st.merged.size());
    for (auto& [key, iv] : st.merged) rel.intervals.push_back(std::move(iv));
    // Self-post: the release fans down the tree from the root.
    ctx_.endpoint.post(ctx_.id, kBarrRelease, rel.encode(), st.busy_until);
  } else {
    BarrArriveMsg up;
    up.barrier = b;
    up.node = ctx_.id;
    up.intervals.reserve(st.merged.size());
    for (auto& [key, iv] : st.merged) up.intervals.push_back(std::move(iv));
    ctx_.endpoint.post(treeParent(), kBarrArrive, up.encode(), st.busy_until);
  }
  barrier_mgr_.erase(b);
}

sim::Task<void> LrcRuntime::barrierButterfly(BarrierId b) {
  closeInterval();
  const sim::Time t0 = ctx_.clock.now();
  if (auto* t = ctx_.trace) t->begin(ctx_.id, obs::Cat::kBarrierWait, t0, b);
  const auto p = static_cast<uint32_t>(ctx_.nprocs);
  // Everything learned since the last barrier (all nodes share that
  // baseline, so per-writer contiguity from the baseline holds at every
  // receiver). Each round ships the whole accumulated set, doubling the
  // reach of every interval per round.
  std::vector<mem::Interval> acc = intervalsNotCoveredBy(last_barrier_vc_);
  for (uint32_t step = 1, round = 0; step < p; step <<= 1, ++round) {
    BarrRoundMsg out;
    out.barrier = b;
    out.round = round;
    out.node = ctx_.id;
    out.intervals = acc;
    ctx_.endpoint.post((ctx_.id + step) % p, kBarrRound, out.encode(),
                       ctx_.clock.now());
    BarrRoundMsg in = co_await awaitRound(b, round);
    ctx_.clock.charge(ctx_.costs.barrier_fold);
    for (const auto& iv : in.intervals) {
      if (vc_[iv.node] >= iv.index) continue;
      recordForeignInterval(iv);
      acc.push_back(iv);
    }
  }
  last_barrier_vc_ = vc_;
  // One logical barrier per instance in the aggregate count, as in the
  // managed variants.
  if (ctx_.id == 0) ctx_.stats.barriers++;
  if (auto* t = ctx_.trace)
    t->end(ctx_.id, obs::Cat::kBarrierWait, ctx_.clock.now(), b);
  ctx_.stats.barrier_wait_total += ctx_.clock.now() - t0;
  ctx_.stats.barrier_waits++;
}

sim::Task<BarrRoundMsg> LrcRuntime::awaitRound(BarrierId b, uint32_t round) {
  const auto key = std::make_pair(b, round);
  auto eit = round_early_.find(key);
  if (eit != round_early_.end()) {
    BarrRoundMsg m = std::move(eit->second.first);
    ctx_.clock.atLeast(eit->second.second);
    round_early_.erase(eit);
    co_return m;
  }
  auto waiter = std::make_unique<sim::Waiter<BarrRoundMsg>>();
  auto* waiter_ptr = waiter.get();
  round_waiters_[key] = std::move(waiter);
  BarrRoundMsg m = co_await *waiter_ptr;
  round_waiters_.erase(key);
  co_return m;
}

// ---------- VOPP-on-LRC mapping (testing aid) ----------

sim::Task<void> LrcRuntime::acquireView(ViewId v, bool readonly) {
  // Both read and write view acquisitions map to exclusive locks: correct
  // (SC for DRF programs) but without read concurrency.
  (void)readonly;
  co_await acquireLock(viewLock(v));
}

sim::Task<void> LrcRuntime::releaseView(ViewId v, bool readonly) {
  (void)readonly;
  co_await releaseLock(viewLock(v));
}

}  // namespace vodsm::dsm
