// Shared identifiers, cost model and statistics for the DSM runtimes.
#pragma once

#include <cstdint>
#include <string>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace vodsm::dsm {

using net::NodeId;
using ViewId = uint32_t;
using LockId = uint32_t;
using BarrierId = uint32_t;

// The three DSM implementations the paper evaluates.
enum class Protocol {
  kLrcDiff,  // LRC_d : TreadMarks-style diff-based Lazy Release Consistency
  kVcDiff,   // VC_d  : diff-based View-based Consistency (homeless diffs)
  kVcSd,     // VC_sd : VC with integrated single diffs piggybacked on grants
};

inline std::string protocolName(Protocol p) {
  switch (p) {
    case Protocol::kLrcDiff: return "LRC_d";
    case Protocol::kVcDiff: return "VC_d";
    case Protocol::kVcSd: return "VC_sd";
  }
  return "?";
}

// CPU costs of DSM-internal operations, calibrated for the paper's 350 MHz
// testbed (TreadMarks-era measurements: page fault handling tens of
// microseconds, twin/diff work dominated by 4 KB memory traffic at roughly
// 100 MB/s).
struct DsmCosts {
  // Trap + fault handler entry/exit.
  sim::Time page_fault = sim::usec(20);
  // Snapshot a 4 KB page as a twin.
  sim::Time twin_copy = sim::usec(40);
  // Word-compare a page against its twin, plus encoding, per run output.
  sim::Time diff_create_base = sim::usec(40);
  sim::Time diff_create_per_kb = sim::usec(10);
  // Patch a page with a diff.
  sim::Time diff_apply_base = sim::usec(10);
  sim::Time diff_apply_per_kb = sim::usec(10);
  // Generic protocol handler service time (request parsing, table lookups).
  sim::Time handler_service = sim::usec(10);
  // Barrier manager: cost to fold one arrival into the barrier state.
  sim::Time barrier_fold = sim::usec(8);
  // LRC barrier manager: additional cost per write notice merged/deduped.
  sim::Time barrier_per_notice = sim::usec(5);
  // Cost for a node to record one incoming write notice (invalidate).
  sim::Time apply_notice = sim::usec(10);
  // memcpy cost per KB for shared<->local buffer copies done by VOPP apps.
  sim::Time copy_per_kb = sim::usec(10);

  sim::Time diffCreate(size_t diff_bytes) const {
    return diff_create_base +
           diff_create_per_kb * static_cast<sim::Time>(diff_bytes / 1024 + 1);
  }
  sim::Time diffApply(size_t diff_bytes) const {
    return diff_apply_base +
           diff_apply_per_kb * static_cast<sim::Time>(diff_bytes / 1024 + 1);
  }
};

// Counters matching the rows of the paper's statistics tables, aggregated
// over all nodes of a run.
struct DsmStats {
  uint64_t barriers = 0;       // barrier() calls (all nodes)
  uint64_t acquires = 0;       // lock/view acquire messages
  uint64_t diff_requests = 0;  // diff request messages
  uint64_t page_faults = 0;
  uint64_t diffs_created = 0;
  uint64_t diffs_applied = 0;
  uint64_t notices_recorded = 0;

  sim::Time barrier_wait_total = 0;  // sum over (node, barrier) of wait time
  uint64_t barrier_waits = 0;
  sim::Time acquire_wait_total = 0;
  uint64_t acquire_waits = 0;

  double avgBarrierMicros() const {
    return barrier_waits == 0
               ? 0.0
               : sim::toMicros(barrier_wait_total) /
                     static_cast<double>(barrier_waits);
  }
  double avgAcquireMicros() const {
    return acquire_waits == 0
               ? 0.0
               : sim::toMicros(acquire_wait_total) /
                     static_cast<double>(acquire_waits);
  }

  void add(const DsmStats& o) {
    barriers += o.barriers;
    acquires += o.acquires;
    diff_requests += o.diff_requests;
    page_faults += o.page_faults;
    diffs_created += o.diffs_created;
    diffs_applied += o.diffs_applied;
    notices_recorded += o.notices_recorded;
    barrier_wait_total += o.barrier_wait_total;
    barrier_waits += o.barrier_waits;
    acquire_wait_total += o.acquire_wait_total;
    acquire_waits += o.acquire_waits;
  }
};

}  // namespace vodsm::dsm
