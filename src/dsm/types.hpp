// Shared identifiers, cost model and statistics for the DSM runtimes.
#pragma once

#include <cstdint>
#include <string>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace vodsm::dsm {

using net::NodeId;
using ViewId = uint32_t;
using LockId = uint32_t;
using BarrierId = uint32_t;

// The three DSM implementations the paper evaluates.
enum class Protocol {
  kLrcDiff,  // LRC_d : TreadMarks-style diff-based Lazy Release Consistency
  kVcDiff,   // VC_d  : diff-based View-based Consistency (homeless diffs)
  kVcSd,     // VC_sd : VC with integrated single diffs piggybacked on grants
};

inline std::string protocolName(Protocol p) {
  switch (p) {
    case Protocol::kLrcDiff: return "LRC_d";
    case Protocol::kVcDiff: return "VC_d";
    case Protocol::kVcSd: return "VC_sd";
  }
  return "?";
}

// Scalable protocol structures (DESIGN.md §3.12). The defaults reproduce
// the paper's centralized protocol byte-for-byte; the alternatives exist to
// push the cluster past the paper's 32-node ceiling.
enum class BarrierAlg : uint8_t {
  kCentral = 0,    // every node arrives at one manager (the paper's shape)
  kTree = 1,       // radix-k combining tree rooted at node 0
  kButterfly = 2,  // dissemination barrier, ceil(log2 p) rounds
};

// View (and LRC lock) home placement policy.
enum class ViewHomes : uint8_t {
  kDefault = 0,  // id mod p (the pre-sharding placement)
  kHashed = 1,   // multiplicative hash of the id, spreading hot ranges
  kMigrate = 2,  // hashed, plus VC homes migrate toward the dominant writer
};

inline const char* barrierAlgName(BarrierAlg a) {
  switch (a) {
    case BarrierAlg::kCentral: return "central";
    case BarrierAlg::kTree: return "tree";
    case BarrierAlg::kButterfly: return "butterfly";
  }
  return "?";
}

inline const char* viewHomesName(ViewHomes h) {
  switch (h) {
    case ViewHomes::kDefault: return "default";
    case ViewHomes::kHashed: return "hashed";
    case ViewHomes::kMigrate: return "migrate";
  }
  return "?";
}

inline bool parseBarrierAlg(const std::string& s, BarrierAlg* out) {
  if (s == "central") *out = BarrierAlg::kCentral;
  else if (s == "tree") *out = BarrierAlg::kTree;
  else if (s == "butterfly") *out = BarrierAlg::kButterfly;
  else return false;
  return true;
}

inline bool parseViewHomes(const std::string& s, ViewHomes* out) {
  if (s == "default") *out = ViewHomes::kDefault;
  else if (s == "hashed") *out = ViewHomes::kHashed;
  else if (s == "migrate") *out = ViewHomes::kMigrate;
  else return false;
  return true;
}

// Protocol-structure selection, threaded from the CLI through
// harness::RunConfig and vopp::ClusterOptions into every NodeCtx.
struct ProtoOptions {
  BarrierAlg barrier = BarrierAlg::kCentral;
  ViewHomes view_homes = ViewHomes::kDefault;
  // Fan-in of the combining-tree barrier.
  int barrier_radix = 4;
  // Consecutive same-writer view releases before a kMigrate home hands the
  // view to that writer.
  int migrate_threshold = 3;
};

// Stable hash for kHashed home placement (splitmix32 finalizer). Not the
// identity, so consecutive ids spread across nodes instead of striping.
inline uint32_t homeHash(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

// CPU costs of DSM-internal operations, calibrated for the paper's 350 MHz
// testbed (TreadMarks-era measurements: page fault handling tens of
// microseconds, twin/diff work dominated by 4 KB memory traffic at roughly
// 100 MB/s).
struct DsmCosts {
  // Trap + fault handler entry/exit.
  sim::Time page_fault = sim::usec(20);
  // Snapshot a 4 KB page as a twin.
  sim::Time twin_copy = sim::usec(40);
  // Word-compare a page against its twin, plus encoding, per run output.
  sim::Time diff_create_base = sim::usec(40);
  sim::Time diff_create_per_kb = sim::usec(10);
  // Patch a page with a diff.
  sim::Time diff_apply_base = sim::usec(10);
  sim::Time diff_apply_per_kb = sim::usec(10);
  // Generic protocol handler service time (request parsing, table lookups).
  sim::Time handler_service = sim::usec(10);
  // Barrier manager: cost to fold one arrival into the barrier state.
  sim::Time barrier_fold = sim::usec(8);
  // LRC barrier manager: additional cost per write notice merged/deduped.
  sim::Time barrier_per_notice = sim::usec(5);
  // Cost for a node to record one incoming write notice (invalidate).
  sim::Time apply_notice = sim::usec(10);
  // memcpy cost per KB for shared<->local buffer copies done by VOPP apps.
  sim::Time copy_per_kb = sim::usec(10);

  sim::Time diffCreate(size_t diff_bytes) const {
    return diff_create_base +
           diff_create_per_kb * static_cast<sim::Time>(diff_bytes / 1024 + 1);
  }
  sim::Time diffApply(size_t diff_bytes) const {
    return diff_apply_base +
           diff_apply_per_kb * static_cast<sim::Time>(diff_bytes / 1024 + 1);
  }
};

// Counters matching the rows of the paper's statistics tables, aggregated
// over all nodes of a run.
struct DsmStats {
  uint64_t barriers = 0;       // barrier() calls (all nodes)
  uint64_t acquires = 0;       // lock/view acquire messages
  uint64_t diff_requests = 0;  // diff request messages
  uint64_t page_faults = 0;
  uint64_t diffs_created = 0;
  uint64_t diffs_applied = 0;
  uint64_t notices_recorded = 0;
  uint64_t view_migrations = 0;  // kMigrate home handoffs (VC runtimes)

  sim::Time barrier_wait_total = 0;  // sum over (node, barrier) of wait time
  uint64_t barrier_waits = 0;
  sim::Time acquire_wait_total = 0;
  uint64_t acquire_waits = 0;

  double avgBarrierMicros() const {
    return barrier_waits == 0
               ? 0.0
               : sim::toMicros(barrier_wait_total) /
                     static_cast<double>(barrier_waits);
  }
  double avgAcquireMicros() const {
    return acquire_waits == 0
               ? 0.0
               : sim::toMicros(acquire_wait_total) /
                     static_cast<double>(acquire_waits);
  }

  void add(const DsmStats& o) {
    barriers += o.barriers;
    acquires += o.acquires;
    diff_requests += o.diff_requests;
    page_faults += o.page_faults;
    diffs_created += o.diffs_created;
    diffs_applied += o.diffs_applied;
    notices_recorded += o.notices_recorded;
    view_migrations += o.view_migrations;
    barrier_wait_total += o.barrier_wait_total;
    barrier_waits += o.barrier_waits;
    acquire_wait_total += o.acquire_wait_total;
    acquire_waits += o.acquire_waits;
  }
};

}  // namespace vodsm::dsm
