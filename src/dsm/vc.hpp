// VC_d and VC_sd: View-based Consistency runtimes.
//
// Each view has a manager (view id mod nprocs — so a "per-processor" view is
// self-managed and its acquisitions stay off the wire). Acquisitions are
// exclusive for writes and shared for Rviews, granted FIFO.
//
// VC_d (homeless diffs): the grant carries write notices for the view's
// pages modified since the requester's last acquisition; faults fetch the
// diffs from the writers, exactly like LRC's fault path.
//
// VC_sd (integrated single diff, home-based): releases ship the diffs to
// the view's manager, which keeps a per-page version log; grants piggyback
// one *integrated* diff per stale page, applied eagerly — so VC_sd issues
// zero diff requests and takes no remote faults. The manager also garbage-
// collects its log: once every node that ever acquired the view is past a
// version, the per-version diffs up to it are folded into one base diff
// per page (the integration prefix grantNow would compute anyway, memoized)
// and dropped. This bounds home storage by the view's footprint instead of
// its write history — the paper's memory argument for single diffs — and
// is invisible to the simulation: grants are bit-identical and GC charges
// no simulated time.
//
// Barriers are pure synchronization in both: no consistency payload, no
// invalidation — the paper's key structural difference from LRC.
//
// ProtoOptions scale both structures past the paper's 32 nodes: the barrier
// can run as a radix-k combining tree or a dissemination (butterfly)
// barrier, and view homes can be hash-sharded (ViewHomes::kHashed) or
// additionally migrate to a view's dominant writer (ViewHomes::kMigrate) —
// the full manager state ships old home -> new home while the view is idle,
// and requesters learn the new home from the next grant's sender. See
// DESIGN.md §3.12.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "dsm/msgs.hpp"
#include "dsm/runtime.hpp"
#include "sim/waiter.hpp"

namespace vodsm::dsm {

class VcRuntime : public Runtime {
 public:
  // `integrated` selects VC_sd; false selects VC_d.
  VcRuntime(NodeCtx& ctx, bool integrated);

  sim::Task<void> acquireView(ViewId v, bool readonly) override;
  sim::Task<void> releaseView(ViewId v, bool readonly) override;
  sim::Task<void> barrier(BarrierId b) override;

  // Traditional lock primitives are not part of the VC model.
  sim::Task<void> acquireLock(LockId) override;
  sim::Task<void> releaseLock(LockId) override;

 protected:
  sim::Task<void> readFault(mem::PageId p) override;
  void onPageDirtied(mem::PageId p) override;
  void checkReadAllowed(size_t offset, size_t len) override;
  void checkWriteAllowed(size_t offset, size_t len) override;

 private:
  struct ViewMgrState {
    uint32_t cur_version = 0;
    bool write_held = false;
    int readers = 0;
    std::deque<ViewAcqMsg> queue;
    // history[v-1] = (writer, pages) of version v (VC_d notice source).
    std::vector<std::pair<NodeId, std::vector<mem::PageId>>> history;
    // VC_sd home storage: page -> (version, diff), ascending. Only the tail
    // with version > gc_version lives here; older versions are folded into
    // `base`.
    std::unordered_map<mem::PageId,
                       std::vector<std::pair<uint32_t, mem::Diff>>>
        diff_log;
    // VC_sd GC state: per-page left-fold of all diffs with version in
    // [1, gc_version]. A requester claims last_seen == 0 (first acquisition,
    // needs base + tail exactly) or last_seen >= gc_version (tail suffices);
    // both reproduce the pre-GC integration bit for bit.
    std::unordered_map<mem::PageId, mem::Diff> base;
    uint32_t gc_version = 0;
    // Last version granted to each node that ever acquired this view; the
    // minimum bounds how far gc_version may advance.
    std::unordered_map<NodeId, uint32_t> seen;
  };
  struct BarrierMgrState {
    int arrived = 0;
    sim::Time busy_until = 0;
  };
  // Home-side migration tracking (ViewHomes::kMigrate).
  struct MigrateInfo {
    NodeId last_writer = static_cast<NodeId>(-1);
    int streak = 0;  // consecutive releases by last_writer
    // Set while the view lives elsewhere: acquires that still reach us
    // bounce there.
    std::optional<NodeId> moved_to;
  };

  // The policy home (does not follow migrations).
  NodeId viewManager(ViewId v) const {
    return ctx_.views.managerOf(v, ctx_.nprocs, ctx_.proto.view_homes);
  }
  // Where this node sends view traffic: the last home it learned from a
  // grant under kMigrate, the policy home otherwise.
  NodeId homeFor(ViewId v) const {
    return ctx_.proto.view_homes == ViewHomes::kMigrate ? home_cache_[v]
                                                        : viewManager(v);
  }

  void onMessage(net::Delivery&& d, const net::ReplyToken& token);
  void onViewAcq(const ViewAcqMsg& m, sim::Time arrive);
  void onViewRelease(const ViewReleaseMsg& m, sim::Time arrive);
  void onViewReadRelease(const ViewReadReleaseMsg& m, sim::Time arrive);
  void onViewMigrate(const ViewMigrateMsg& m, sim::Time arrive);
  void onVcDiffReq(const DiffReqMsg& m, const net::ReplyToken& token,
                   sim::Time arrive);
  void onBarrArrive(const BarrArriveMsg& m, sim::Time arrive);
  void treeBarrierStep(BarrierId b, BarrierMgrState& st);
  sim::Task<void> barrierButterfly(BarrierId b);
  sim::Task<BarrRoundMsg> awaitRound(BarrierId b, uint32_t round);
  void grantNow(const ViewAcqMsg& m, ViewMgrState& st, sim::Time when);
  void sdGc(ViewMgrState& st, sim::Time when);
  void pumpQueue(ViewId view, ViewMgrState& st, sim::Time when);
  void maybeMigrate(ViewId view, NodeId writer, sim::Time when);

  bool holdsForRead(ViewId v) const {
    auto it = read_depth_.find(v);
    return (it != read_depth_.end() && it->second > 0) || write_held_ == v;
  }

  const bool sd_;

  // Node-side state.
  std::optional<ViewId> write_held_;
  uint32_t write_version_ = 0;
  std::unordered_map<ViewId, int> read_depth_;
  std::vector<uint32_t> last_seen_;  // per view: last incorporated version
  std::set<mem::PageId> dirty_;
  // VC_d: pending notices per page and own diff log for serving fetches.
  std::unordered_map<mem::PageId, std::vector<VcNotice>> pending_;
  std::unordered_map<mem::PageId,
                     std::vector<std::pair<uint32_t, mem::Diff>>>
      diff_log_;

  std::unordered_map<ViewId, std::unique_ptr<sim::Waiter<ViewGrantMsg>>>
      grant_waiters_;
  std::unordered_map<BarrierId, std::unique_ptr<sim::Waiter<BarrReleaseMsg>>>
      barrier_waiters_;
  // Butterfly rounds (see lrc.hpp): one peer per (barrier, round); early
  // arrivals park until this node enters the round.
  std::map<std::pair<BarrierId, uint32_t>,
           std::unique_ptr<sim::Waiter<BarrRoundMsg>>>
      round_waiters_;
  std::map<std::pair<BarrierId, uint32_t>, std::pair<BarrRoundMsg, sim::Time>>
      round_early_;

  // kMigrate state (sized/filled only under that policy).
  std::vector<NodeId> home_cache_;  // per view: last known home
  std::vector<uint8_t> is_home_;    // per view: this node currently hosts it
  std::unordered_map<ViewId, MigrateInfo> migrate_;
  // Acquires that reached a new home before its migration state did
  // (reliable-transport retransmission can reorder old-home traffic).
  std::unordered_map<ViewId, std::vector<std::pair<ViewAcqMsg, sim::Time>>>
      pending_home_;

  // Manager-side state.
  std::unordered_map<ViewId, ViewMgrState> mgr_;
  std::unordered_map<BarrierId, BarrierMgrState> barrier_mgr_;
};

}  // namespace vodsm::dsm
